(* Cycle-timestamped causal tracing: a bounded ring-buffer event
   collector behind the same zero-cost hook discipline as the rest of
   lib/obs.  Producers (the kernel's CCall/CReturn/trap paths, span
   enter/exit, the serve request loop) pass the timestamp explicitly —
   simulated cycles, never host time — so a trace is bit-for-bit
   deterministic and byte-identical across interpreter engines and
   worker-domain counts.

   The buffer is a flight recorder: a fixed-capacity ring that drops the
   *oldest* events once full and counts what it dropped, so attaching a
   trace to a million-request sweep is bounded-memory by construction
   (stride sampling in lib/serve bounds it further: only 1-in-K requests
   arm the collector at all).

   Request scoping: [begin_request] arms the collector and stamps every
   subsequent event with the request's trace id; [skip_request] disarms
   it, so kernel transitions inside unsampled requests cost one mutable
   read and record nothing.  Collectors that never see requests (e.g. a
   profiled Olden run) stay armed from creation and stamp events with
   req = -1.

   The Chrome trace-event exporter ([to_chrome_events]) lays the events
   out Perfetto-style: one "requests" track of B/E spans, one track per
   worker compartment (tid = the sealed pair's otype, named through
   [set_labels]), a "kernel" track of trap instants, and a "phases"
   track for span markers.  B/E pairing is reconstructed with per-track
   stacks; opens evicted by the ring (or never closed) are dropped
   rather than emitted unbalanced, so the exported JSON always
   validates. *)

type kind =
  | Req_begin of { req_kind : int; declared : int; actual : int; route : int; worker : int }
  | Req_end of { code : int }
  | Ccall of { otype : int }
  | Creturn of { otype : int; unwound : bool }
      (* unwound: the frame was popped by the fault-recovery unwind, not
         by an architectural CReturn — the worker span was truncated. *)
  | Trap of { exc : string; cause : string; pc : int64 }
  | Phase_begin of string
  | Phase_end (* closes the innermost open phase; the name is on the open *)

type event = { ts : int; (* simulated cycles *) req : int; kind : kind }

type t = {
  capacity : int;
  ring : event array;
  mutable head : int; (* index of the oldest surviving event *)
  mutable len : int; (* events currently held (<= capacity) *)
  mutable recorded : int; (* events ever recorded, dropped ones included *)
  mutable armed : bool;
  mutable cur_req : int;
  mutable labels : (int * string) list; (* otype -> compartment name *)
}

let default_capacity = 1 lsl 16
let dummy = { ts = 0; req = -1; kind = Phase_end }

let create ?(capacity = default_capacity) () =
  if capacity < 0 then invalid_arg "Trace.create: capacity";
  {
    capacity;
    ring = Array.make (max 1 capacity) dummy;
    head = 0;
    len = 0;
    recorded = 0;
    armed = true;
    cur_req = -1;
    labels = [];
  }

let set_labels t labels = t.labels <- labels
let labels t = t.labels

let label t otype =
  match List.assoc_opt otype t.labels with
  | Some name -> name
  | None -> Printf.sprintf "otype-0x%x" otype

let length t = t.len
let recorded t = t.recorded
let dropped t = t.recorded - t.len

(* Unconditional append (drop-oldest once full); [record] below is the
   armed-gated variant producers use. *)
let push t e =
  if t.capacity > 0 then
    if t.len < t.capacity then begin
      t.ring.((t.head + t.len) mod t.capacity) <- e;
      t.len <- t.len + 1
    end
    else begin
      t.ring.(t.head) <- e;
      t.head <- (t.head + 1) mod t.capacity
    end;
  t.recorded <- t.recorded + 1

let record t ~ts kind = if t.armed then push t { ts; req = t.cur_req; kind }

(* --- request scoping ------------------------------------------------------ *)

let begin_request t ~ts ~id ~kind ~declared ~actual ~route ~worker =
  t.armed <- true;
  t.cur_req <- id;
  record t ~ts (Req_begin { req_kind = kind; declared; actual; route; worker })

let skip_request t =
  t.armed <- false;
  t.cur_req <- -1

let end_request t ~ts ~code =
  record t ~ts (Req_end { code });
  t.armed <- false;
  t.cur_req <- -1

(* --- producer shorthands -------------------------------------------------- *)

let ccall t ~ts ~otype = record t ~ts (Ccall { otype })
let creturn t ~ts ~otype ~unwound = record t ~ts (Creturn { otype; unwound })
let trap t ~ts ~exc ~cause ~pc = record t ~ts (Trap { exc; cause; pc })
let phase_begin t ~ts name = record t ~ts (Phase_begin name)
let phase_end t ~ts = record t ~ts Phase_end

(* Surviving events, oldest first. *)
let events t = List.init t.len (fun i -> t.ring.((t.head + i) mod t.capacity))

(* Append [src]'s surviving events into [into] with their timestamps
   shifted — the shard-in-order merge: each chunk records with its own
   machine's cycle clock starting at 0, and the merger offsets chunk i
   by the total cycles of chunks 0..i-1, reconstructing one monotonic
   sweep-wide clock regardless of --jobs. *)
let append src ~ts_offset ~into =
  List.iter (fun e -> push into { e with ts = e.ts + ts_offset }) (events src);
  into.recorded <- into.recorded + dropped src

(* --- Chrome trace-event export -------------------------------------------- *)

(* Fixed track (tid) assignments; worker-compartment tracks use the
   sealed pair's otype as the tid, which the scenario keeps >= 0x40 so
   the fixed ids never collide. *)
let tid_requests = 1
let tid_kernel = 2
let tid_phases = 3

let ev ~pid ~tid ~ph ~name ~ts args =
  Json.Obj
    ([
       ("name", Json.String name);
       ("ph", Json.String ph);
       ("pid", Json.Int (Int64.of_int pid));
       ("tid", Json.Int (Int64.of_int tid));
       ("ts", Json.Int (Int64.of_int ts));
     ]
    @ match args with [] -> [] | args -> [ ("args", Json.Obj args) ])

let meta ~pid ?tid ~name value =
  Json.Obj
    ([ ("name", Json.String name); ("ph", Json.String "M"); ("pid", Json.Int (Int64.of_int pid)) ]
    @ (match tid with Some tid -> [ ("tid", Json.Int (Int64.of_int tid)) ] | None -> [])
    @ [ ("args", Json.Obj [ ("name", Json.String value) ]) ])

let req_arg req = ("req", Json.Int (Int64.of_int req))

(* One point's events as a flat Chrome trace-event list.  Every duration
   event is emitted through an aliveness cell and per-track open stacks:
   a close with no matching open is skipped, and an open that never
   closes (evicted or truncated) is retracted at the end, so the output
   is balanced by construction. *)
let to_chrome_events ?(pid = 1) ?process t =
  let items = ref [] in
  let emit ?(alive = ref true) json =
    items := (alive, json) :: !items;
    alive
  in
  let used_tids = ref [] in
  let use tid name =
    if not (List.mem_assoc tid !used_tids) then used_tids := (tid, name) :: !used_tids
  in
  let req_open = ref None in
  let worker_stack = ref [] in
  let phase_stack = ref [] in
  List.iter
    (fun e ->
      match e.kind with
      | Req_begin { req_kind; declared; actual; route; worker } ->
          use tid_requests "requests";
          (match !req_open with Some alive -> alive := false | None -> ());
          req_open :=
            Some
              (emit
                 (ev ~pid ~tid:tid_requests ~ph:"B" ~name:"req" ~ts:e.ts
                    [
                      req_arg e.req;
                      ("kind", Json.Int (Int64.of_int req_kind));
                      ("declared", Json.Int (Int64.of_int declared));
                      ("actual", Json.Int (Int64.of_int actual));
                      ("route", Json.Int (Int64.of_int route));
                      ("worker", Json.Int (Int64.of_int worker));
                    ]))
      | Req_end { code } -> (
          match !req_open with
          | None -> ()
          | Some _ ->
              req_open := None;
              ignore
                (emit
                   (ev ~pid ~tid:tid_requests ~ph:"E" ~name:"req" ~ts:e.ts
                      [ req_arg e.req; ("code", Json.Int (Int64.of_int code)) ])))
      | Ccall { otype } ->
          let name = label t otype in
          use otype name;
          let alive = emit (ev ~pid ~tid:otype ~ph:"B" ~name ~ts:e.ts [ req_arg e.req ]) in
          worker_stack := (otype, alive) :: !worker_stack
      | Creturn { otype; unwound } -> (
          (* Pop the innermost open span of this otype; an orphan close
             (its open was evicted) is skipped. *)
          let rec split acc = function
            | [] -> None
            | (ot, _alive) :: rest when ot = otype -> Some (List.rev_append acc rest)
            | frame :: rest -> split (frame :: acc) rest
          in
          match split [] !worker_stack with
          | None -> ()
          | Some rest ->
              worker_stack := rest;
              let args =
                req_arg e.req :: (if unwound then [ ("unwound", Json.Bool true) ] else [])
              in
              ignore (emit (ev ~pid ~tid:otype ~ph:"E" ~name:(label t otype) ~ts:e.ts args)))
      | Trap { exc; cause; pc } ->
          use tid_kernel "kernel";
          ignore
            (emit
               (ev ~pid ~tid:tid_kernel ~ph:"i" ~name:exc ~ts:e.ts
                  [
                    req_arg e.req;
                    ("cause", Json.String cause);
                    ("pc", Json.String (Printf.sprintf "0x%Lx" pc));
                  ]))
      | Phase_begin name ->
          use tid_phases "phases";
          let alive = emit (ev ~pid ~tid:tid_phases ~ph:"B" ~name ~ts:e.ts []) in
          phase_stack := (name, alive) :: !phase_stack
      | Phase_end -> (
          match !phase_stack with
          | [] -> ()
          | (name, _alive) :: rest ->
              phase_stack := rest;
              ignore (emit (ev ~pid ~tid:tid_phases ~ph:"E" ~name ~ts:e.ts []))))
    (events t);
  (* Retract opens that never closed. *)
  (match !req_open with Some alive -> alive := false | None -> ());
  List.iter (fun (_, alive) -> alive := false) !worker_stack;
  List.iter (fun (_, alive) -> alive := false) !phase_stack;
  let metadata =
    (match process with Some name -> [ meta ~pid ~name:"process_name" name ] | None -> [])
    @ List.map
        (fun (tid, name) -> meta ~pid ~tid ~name:"thread_name" name)
        (List.sort compare !used_tids)
  in
  metadata @ List.filter_map (fun (alive, j) -> if !alive then Some j else None) (List.rev !items)

(* The top-level Chrome trace document: Perfetto and about://tracing both
   accept the object form. *)
let chrome_document parts = Json.Obj [ ("traceEvents", Json.List parts) ]

let write_chrome path parts =
  let oc = open_out path in
  output_string oc (Json.to_string (chrome_document parts));
  output_char oc '\n';
  close_out oc
