(* Miss attribution: per-PC and per-virtual-region tables of
   microarchitectural events — which instructions miss in L1I/L1D/L2/TLB
   and the tag cache, and which generate DRAM traffic and tag writes.
   This is the layer that turns the whole-run counter file into the
   paper's Section 8 arguments ("capability loads dominate tag traffic",
   "the overhead is cache-miss-driven"): the same events the hierarchy
   already counts, keyed by the PC of the access and by a configurable
   power-of-two address granule.

   Events arrive through [record], called from the memory hierarchy's
   [on_event] hook (and the tag table's [on_write] hook) via a closure
   the machine installs in [Machine.set_probe]; the machine supplies the
   PC of the in-flight instruction.  With no probe attached the hooks
   are [None] and the access path pays one pattern match, exactly like
   the step probe.  Attribution is a pure observer: it never charges
   cycles or touches architectural state, so an attributed run is
   bit-identical to a bare one.

   Invariant (asserted by test_obs): for every miss class, the per-PC
   table, the per-region table, and the running totals all sum to the
   same value — and, when the probe was attached for the whole run, to
   the whole-run counter file's value. *)

(* One microarchitectural event at a data/fetch address.  Miss and
   traffic events feed the attribution cells; [Load]/[Store] feed the
   access-size histograms; [Tag_write] is the tag-table write stream
   (set = a tagged capability store, clear = any other store). *)
type event =
  | L1i_miss
  | L1d_miss
  | L2_miss
  | Tlb_miss
  | Tag_miss
  | Dram_read of int (* bytes *)
  | Dram_write of int (* bytes *)
  | Load of int (* access size, bytes *)
  | Store of int
  | Tag_write of bool (* true = tag set, false = tag cleared *)

(* Attribution classes: the columns of the per-PC / per-region tables.
   Order is the presentation and JSON order. *)
let class_names =
  [|
    "l1i_miss";
    "l1d_miss";
    "l2_miss";
    "tlb_miss";
    "tag_miss";
    "dram_read_bytes";
    "dram_write_bytes";
    "tag_sets";
    "tag_clears";
  |]

let n_classes = Array.length class_names
let c_l1i_miss = 0
let c_l1d_miss = 1
let c_l2_miss = 2
let c_tlb_miss = 3
let c_tag_miss = 4
let c_dram_read_bytes = 5
let c_dram_write_bytes = 6
let c_tag_sets = 7
let c_tag_clears = 8

let class_index name =
  let found = ref None in
  Array.iteri (fun i n -> if n = name then found := Some i) class_names;
  !found

type t = {
  granule_bits : int; (* region size = 2^granule_bits bytes *)
  by_pc : (int64, int array) Hashtbl.t;
  by_region : (int64, int array) Hashtbl.t; (* key = addr lsr granule_bits *)
  totals : int array;
  load_size : Hist.t;
  store_size : Hist.t;
  reuse : Hist.t; (* L1D miss-reuse distance, in intervening misses *)
  cap_len : Hist.t; (* bounds length of capabilities moved to/from memory *)
  last_miss : (int64, int) Hashtbl.t; (* D-line -> ordinal of its last miss *)
  mutable miss_seq : int;
  mutable labels : (int64 * int64 * string) list;
      (* (base, length, label) address-range annotations: compartment
         and section names for the region table.  Empty = unlabeled
         output, byte-identical to the pre-label rendering. *)
}

let default_granule_bits = 12 (* 4 KB pages *)

let create ?(granule_bits = default_granule_bits) () =
  if granule_bits < 0 || granule_bits > 62 then invalid_arg "Attrib.create: granule_bits";
  {
    granule_bits;
    by_pc = Hashtbl.create 1024;
    by_region = Hashtbl.create 256;
    totals = Array.make n_classes 0;
    load_size = Hist.create ~name:"load size [B]" ();
    store_size = Hist.create ~name:"store size [B]" ();
    reuse = Hist.create ~name:"L1D miss-reuse distance [misses]" ();
    cap_len = Hist.create ~name:"capability bounds length [B]" ();
    last_miss = Hashtbl.create 1024;
    miss_seq = 0;
    labels = [];
  }

(* Label address ranges — compartment regions, mailboxes, loaded
   sections — so the per-region report attributes misses to names, not
   just hex bases.  Ranges are matched first-wins in the given order. *)
let set_labels t labels = t.labels <- labels

let label_of t addr =
  let rec go = function
    | [] -> ""
    | (base, length, label) :: rest ->
        if
          Int64.unsigned_compare addr base >= 0
          && Int64.unsigned_compare addr (Int64.add base length) < 0
        then label
        else go rest
  in
  go t.labels

let granule_bytes t = 1 lsl t.granule_bits

let cell tbl key =
  match Hashtbl.find_opt tbl key with
  | Some c -> c
  | None ->
      let c = Array.make n_classes 0 in
      Hashtbl.add tbl key c;
      c

let bump t ~pc ~addr cls amount =
  let pc_cell = cell t.by_pc pc in
  pc_cell.(cls) <- pc_cell.(cls) + amount;
  let region_cell = cell t.by_region (Int64.shift_right_logical addr t.granule_bits) in
  region_cell.(cls) <- region_cell.(cls) + amount;
  t.totals.(cls) <- t.totals.(cls) + amount

(* Reuse distance of an L1D miss: how many other misses occurred since
   this line last missed (32-byte line granularity, the hierarchy
   default).  First-touch misses are not observations. *)
let note_reuse t addr =
  let line = Int64.shift_right_logical addr 5 in
  (match Hashtbl.find_opt t.last_miss line with
  | Some prev -> Hist.observe_int t.reuse (t.miss_seq - prev - 1)
  | None -> ());
  Hashtbl.replace t.last_miss line t.miss_seq;
  t.miss_seq <- t.miss_seq + 1

let record t ~pc ~addr ev =
  match ev with
  | L1i_miss -> bump t ~pc ~addr c_l1i_miss 1
  | L1d_miss ->
      bump t ~pc ~addr c_l1d_miss 1;
      note_reuse t addr
  | L2_miss -> bump t ~pc ~addr c_l2_miss 1
  | Tlb_miss -> bump t ~pc ~addr c_tlb_miss 1
  | Tag_miss -> bump t ~pc ~addr c_tag_miss 1
  | Dram_read bytes -> bump t ~pc ~addr c_dram_read_bytes bytes
  | Dram_write bytes -> bump t ~pc ~addr c_dram_write_bytes bytes
  | Load size -> Hist.observe_int t.load_size size
  | Store size -> Hist.observe_int t.store_size size
  | Tag_write set -> bump t ~pc ~addr (if set then c_tag_sets else c_tag_clears) 1

let observe_cap_len t len = Hist.observe t.cap_len len

(* --- read-side views ---------------------------------------------------- *)

let total t cls = t.totals.(cls)

let table_total tbl cls =
  Hashtbl.fold (fun _ (c : int array) acc -> acc + c.(cls)) tbl 0

let pc_total t cls = table_total t.by_pc cls
let region_total t cls = table_total t.by_region cls

(* All rows of a table sorted by the [by] class descending (key ascending
   as the deterministic tie-break), truncated to [n] when given. *)
let top tbl ~by ?n () =
  let rows = Hashtbl.fold (fun k (c : int array) acc -> (k, c) :: acc) tbl [] in
  let rows =
    List.sort
      (fun (k1, c1) (k2, c2) ->
        match compare c2.(by) c1.(by) with 0 -> Int64.compare k1 k2 | cmp -> cmp)
      rows
  in
  match n with Some n -> List.filteri (fun i _ -> i < n) rows | None -> rows

let top_pcs t ~by ?n () = top t.by_pc ~by ?n ()
let top_regions t ~by ?n () = top t.by_region ~by ?n ()
let hists t = [ t.load_size; t.store_size; t.reuse; t.cap_len ]

(* --- rendering ----------------------------------------------------------- *)

let row_to_json key_name key_str (c : int array) =
  Json.Obj
    ((key_name, Json.String key_str)
    :: Array.to_list (Array.mapi (fun i n -> (n, Json.Int (Int64.of_int c.(i)))) class_names))

let to_json ?(resolve = fun pc -> Printf.sprintf "0x%Lx" pc) ?n t =
  Json.Obj
    [
      ("granule_bytes", Json.Int (Int64.of_int (granule_bytes t)));
      ( "totals",
        Json.Obj
          (Array.to_list
             (Array.mapi (fun i n -> (n, Json.Int (Int64.of_int t.totals.(i)))) class_names)) );
      ( "by_pc",
        Json.List
          (List.map
             (fun (pc, c) ->
               (match row_to_json "pc" (Printf.sprintf "0x%Lx" pc) c with
               | Json.Obj fields -> Json.Obj (fields @ [ ("where", Json.String (resolve pc)) ])
               | j -> j))
             (top_pcs t ~by:c_l1d_miss ?n ())) );
      ( "by_region",
        Json.List
          (List.map
             (fun (region, c) ->
               let base = Int64.shift_left region t.granule_bits in
               let row = row_to_json "base" (Printf.sprintf "0x%Lx" base) c in
               match (t.labels, row) with
               | [], _ -> row
               | _, Json.Obj fields ->
                   Json.Obj (fields @ [ ("label", Json.String (label_of t base)) ])
               | _, j -> j)
             (top_regions t ~by:c_l1d_miss ?n ())) );
      ("hists", Json.List (List.map Hist.to_json (hists t)));
    ]

(* The per-PC table, hottest first by [by], symbolized via [resolve]. *)
let pp_pcs ?(resolve = fun pc -> Printf.sprintf "0x%Lx" pc) ~by ~n ppf t =
  Fmt.pf ppf "@[<v>%-12s %-22s" "pc" "where";
  Array.iter (fun name -> Fmt.pf ppf " %11s" name) class_names;
  Fmt.pf ppf "@,";
  List.iter
    (fun (pc, c) ->
      Fmt.pf ppf "0x%-10Lx %-22s" pc (resolve pc);
      Array.iteri (fun i _ -> Fmt.pf ppf " %11d" c.(i)) class_names;
      Fmt.pf ppf "@,")
    (top_pcs t ~by ~n ());
  Fmt.pf ppf "(%d attributed PCs; sorted by %s)@]" (Hashtbl.length t.by_pc) class_names.(by)

let pp_regions ?(by = c_l1d_miss) ~n ppf t =
  let labeled = t.labels <> [] in
  Fmt.pf ppf "@[<v>%-14s" (Printf.sprintf "region[%dB]" (granule_bytes t));
  if labeled then Fmt.pf ppf " %-18s" "label";
  Array.iter (fun name -> Fmt.pf ppf " %11s" name) class_names;
  Fmt.pf ppf "@,";
  List.iter
    (fun (region, c) ->
      let base = Int64.shift_left region t.granule_bits in
      Fmt.pf ppf "0x%-12Lx" base;
      if labeled then Fmt.pf ppf " %-18s" (label_of t base);
      Array.iteri (fun i _ -> Fmt.pf ppf " %11d" c.(i)) class_names;
      Fmt.pf ppf "@,")
    (top_regions t ~by ~n ());
  Fmt.pf ppf "(%d attributed regions; sorted by %s)@]"
    (Hashtbl.length t.by_region) class_names.(by)

let pp_hists ppf t =
  Fmt.pf ppf "@[<v>%a@,%a@,%a@,%a@]" Hist.pp t.load_size Hist.pp t.store_size Hist.pp t.reuse
    Hist.pp t.cap_len
