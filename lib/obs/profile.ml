(* The sampling PC profiler: every [period]-th retired instruction
   records the PC (a flat histogram for hot-loop reports) and the current
   call stack (for collapsed-stack / flamegraph output).

   The call stack is a shadow structure maintained from the instruction
   stream by the probe — push on jal/jalr/cjalr, pop on jr $ra / cjr —
   so it is a heuristic for hand-written assembly that plays games with
   $ra, but exact for the minic code generator's calling convention.
   Sampling on a fixed retirement period keeps the profile bit-for-bit
   deterministic across runs of a deterministic machine. *)

type t = {
  period : int;
  mutable countdown : int;
  hist : (int64, int ref) Hashtbl.t; (* pc -> samples *)
  stacks : (int64 list, int ref) Hashtbl.t; (* root-first callee-entry chain -> samples *)
  mutable stack : int64 list; (* innermost first; entries are callee entry PCs *)
  mutable depth : int;
  mutable total : int;
}

(* Keep the shadow stack bounded: runaway recursion under fault injection
   must not turn the profiler into the memory hog. *)
let max_depth = 256

let create ?(period = 97) () =
  if period <= 0 then invalid_arg "Profile.create: period must be positive";
  {
    period;
    countdown = period;
    hist = Hashtbl.create 1024;
    stacks = Hashtbl.create 256;
    stack = [];
    depth = 0;
    total = 0;
  }

let call t entry =
  if t.depth < max_depth then begin
    t.stack <- entry :: t.stack;
    t.depth <- t.depth + 1
  end

let ret t =
  match t.stack with
  | [] -> () (* return without a tracked call: hand-written entry code *)
  | _ :: rest ->
      t.stack <- rest;
      t.depth <- t.depth - 1

let bump tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> Stdlib.incr r
  | None -> Hashtbl.add tbl key (ref 1)

(* Called once per retired instruction; records a sample when the period
   elapses.  Returns [true] when this instruction was sampled (the probe
   uses it to keep the [samples] counter in the counter file). *)
let step t pc =
  t.countdown <- t.countdown - 1;
  if t.countdown > 0 then false
  else begin
    t.countdown <- t.period;
    t.total <- t.total + 1;
    bump t.hist pc;
    bump t.stacks (List.rev t.stack);
    true
  end

let total_samples t = t.total

(* Hottest PCs, by sample count then PC (the tie-break keeps reports
   deterministic). *)
let top t ~n =
  Hashtbl.fold (fun pc r acc -> (pc, !r) :: acc) t.hist []
  |> List.sort (fun (pc1, n1) (pc2, n2) ->
         match compare n2 n1 with 0 -> Int64.compare pc1 pc2 | c -> c)
  |> List.filteri (fun i _ -> i < n)

(* Collapsed-stack (Brendan Gregg flamegraph.pl) lines: semicolon-joined
   frames root-first, a space, and the sample count.  [resolve] names a
   frame from its callee entry PC; the synthetic root frame covers
   samples taken outside any tracked call. *)
let collapsed ?(resolve = fun pc -> Printf.sprintf "0x%Lx" pc) t =
  Hashtbl.fold
    (fun frames r acc ->
      let names = "all" :: List.map resolve frames in
      (String.concat ";" names ^ " " ^ string_of_int !r) :: acc)
    t.stacks []
  |> List.sort compare

let pct t samples =
  if t.total = 0 then 0.0 else 100.0 *. float_of_int samples /. float_of_int t.total
