(* The differential half of the regression harness: compare two loaded
   baselines (Obs.Baseline) run-by-run, counter-by-counter, and classify
   every delta against a threshold policy.

   The policy encodes the determinism argument: every counter in the
   file — instret, cycles, cache/TLB/tag events, capability instruction
   mix, span aggregates — is *architectural* on this simulator, so the
   policy demands exact equality; only host-side wall-clock numbers
   (`wall_s`, `sim_mips`, `interp_instr_per_s`) get a tolerance band, and by default
   exceeding it is reported but not fatal (committed baselines travel
   across hosts).  `cheri_diff` and `bench regress` exit non-zero iff
   [ok] is false: an architectural counter changed, or a run appeared
   or disappeared. *)

type verdict =
  | Arch_mismatch (* exact-match counter differs: the regression signal *)
  | Wall_within (* wall-clock delta inside the tolerance band *)
  | Wall_exceeded (* outside the band: fatal only under [fail_on_wall] *)
  | Only_in_a (* run present in A but missing from B *)
  | Only_in_b

let verdict_name = function
  | Arch_mismatch -> "arch-mismatch"
  | Wall_within -> "wall-within"
  | Wall_exceeded -> "wall-exceeded"
  | Only_in_a -> "only-in-a"
  | Only_in_b -> "only-in-b"

type row = {
  key : string; (* "bench/mode/param", or "(run)" for file-level fields *)
  field : string; (* "counters.instret", "spans.alloc.cycles", "wall_s", ... *)
  va : string; (* rendered values ("-" when absent on that side) *)
  vb : string;
  rel_pct : float option; (* (b-a)/a, when both sides are present and a <> 0 *)
  verdict : verdict;
}

type policy = {
  ignore_counters : string list; (* counter names exempt from comparison *)
  wall_tol_pct : float; (* tolerance band for wall-clock fields *)
  fail_on_wall : bool; (* treat Wall_exceeded as fatal *)
}

(* `samples` is profiler configuration, not workload behaviour (and
   schema /1 vs /2 files disagree on whether it exists at all).  The
   `sb_*` counters are interpreter-engine telemetry: they differ between
   `--engine plain` and `--engine superblock` runs of the *same*
   architectural behaviour, so comparing them exactly would turn an
   engine choice into a spurious regression.  The kernel domain-crossing
   detail counters (`creturns`, `ctx_saves`, `ctx_restores`, schema /5)
   are deterministic but one-sided against /1–/4 baselines — exact
   comparison would flag every pre-/5 file — so they too sit on the
   ignore list; the serve harness pins them in its own smoke tallies. *)
let default_policy =
  {
    ignore_counters =
      [
        "samples";
        "sb_translations";
        "sb_dispatches";
        "sb_retired";
        "creturns";
        "ctx_saves";
        "ctx_restores";
      ];
    wall_tol_pct = 50.0;
    fail_on_wall = false;
  }

type report = {
  policy : policy;
  compared : int; (* fields compared across all matched runs *)
  rows : row list; (* every non-equal comparison, in run order *)
  arch_mismatches : int;
  wall_flagged : int;
  missing : int; (* runs present on only one side *)
}

let rel a b = if a = 0.0 then None else Some (100.0 *. (b -. a) /. a)

(* --- field comparisons ------------------------------------------------------ *)

let exact_row ~key ~field a b =
  match (a, b) with
  | Some a, Some b when Int64.equal a b -> None
  | _ ->
      let render = function Some v -> Int64.to_string v | None -> "-" in
      let rel_pct =
        match (a, b) with
        | Some a, Some b -> rel (Int64.to_float a) (Int64.to_float b)
        | _ -> None
      in
      Some { key; field; va = render a; vb = render b; rel_pct; verdict = Arch_mismatch }

let wall_row ~policy ~key ~field a b =
  if a <= 0.0 || b <= 0.0 then None (* absent or unmeasured on a side: nothing to judge *)
  else
    let rel_pct = 100.0 *. (b -. a) /. a in
    let verdict = if Float.abs rel_pct <= policy.wall_tol_pct then Wall_within else Wall_exceeded in
    if verdict = Wall_within then None
    else
      Some
        {
          key;
          field;
          va = Printf.sprintf "%.3f" a;
          vb = Printf.sprintf "%.3f" b;
          rel_pct = Some rel_pct;
          verdict;
        }

(* Union of assoc keys, preserving A's order and appending B-only names. *)
let union_names a b =
  let names = List.map fst a in
  names @ List.filter (fun n -> not (List.mem n names)) (List.map fst b)

let compare_assoc ~policy ~key ~prefix a b =
  let names =
    List.filter (fun n -> not (List.mem n policy.ignore_counters)) (union_names a b)
  in
  let rows =
    List.filter_map
      (fun name ->
        exact_row ~key ~field:(prefix ^ name) (List.assoc_opt name a) (List.assoc_opt name b))
      names
  in
  (List.length names, rows)

let compare_entry ~policy (a : Baseline.entry) (b : Baseline.entry) =
  let key = Baseline.key a in
  let counters_compared, counter_rows =
    compare_assoc ~policy ~key ~prefix:"counters." a.Baseline.counters b.Baseline.counters
  in
  let span_names = union_names a.Baseline.spans b.Baseline.spans in
  let span_results =
    List.map
      (fun name ->
        let fields side = Option.value ~default:[] (List.assoc_opt name side) in
        compare_assoc ~policy ~key
          ~prefix:("spans." ^ name ^ ".")
          (fields a.Baseline.spans) (fields b.Baseline.spans))
      span_names
  in
  let wall = wall_row ~policy ~key ~field:"wall_s" a.Baseline.wall_s b.Baseline.wall_s in
  (* sim_mips is host timing like wall_s: banded, never exact (and
     skipped entirely against pre-/3 baselines, where it loads as 0.0). *)
  let mips = wall_row ~policy ~key ~field:"sim_mips" a.Baseline.sim_mips b.Baseline.sim_mips in
  let compared =
    2 + counters_compared + List.fold_left (fun acc (n, _) -> acc + n) 0 span_results
  in
  ( compared,
    counter_rows
    @ List.concat_map snd span_results
    @ (match wall with Some r -> [ r ] | None -> [])
    @ (match mips with Some r -> [ r ] | None -> []) )

(* --- the whole-file diff ----------------------------------------------------- *)

let run ?(policy = default_policy) (a : Baseline.t) (b : Baseline.t) =
  let throughput =
    wall_row ~policy ~key:"(run)" ~field:"interp_instr_per_s" a.Baseline.interp_instr_per_s
      b.Baseline.interp_instr_per_s
  in
  let keys =
    List.map Baseline.key a.Baseline.entries
    @ List.filter
        (fun k -> not (List.exists (fun e -> Baseline.key e = k) a.Baseline.entries))
        (List.map Baseline.key b.Baseline.entries)
  in
  let compared = ref 1 and rows = ref [] in
  List.iter
    (fun k ->
      match (Baseline.find a k, Baseline.find b k) with
      | Some ea, Some eb ->
          let n, rs = compare_entry ~policy ea eb in
          compared := !compared + n;
          rows := !rows @ rs
      | Some _, None ->
          rows := !rows @ [ { key = k; field = ""; va = "present"; vb = "-"; rel_pct = None; verdict = Only_in_a } ]
      | None, Some _ ->
          rows := !rows @ [ { key = k; field = ""; va = "-"; vb = "present"; rel_pct = None; verdict = Only_in_b } ]
      | None, None -> ())
    keys;
  let rows = !rows @ (match throughput with Some r -> [ r ] | None -> []) in
  let count v = List.length (List.filter (fun r -> r.verdict = v) rows) in
  {
    policy;
    compared = !compared;
    rows;
    arch_mismatches = count Arch_mismatch;
    wall_flagged = count Wall_exceeded;
    missing = count Only_in_a + count Only_in_b;
  }

(* The regression gate: architectural counters identical, run sets
   identical, and (under [fail_on_wall] only) wall clocks in band. *)
let ok r =
  r.arch_mismatches = 0 && r.missing = 0 && ((not r.policy.fail_on_wall) || r.wall_flagged = 0)

let exit_code r = if ok r then 0 else 1

(* --- rendering ---------------------------------------------------------------- *)

let pp_rel ppf = function
  | Some pct -> Fmt.pf ppf "%+9.2f%%" pct
  | None -> Fmt.pf ppf "%10s" "-"

let pp ppf r =
  Fmt.pf ppf "@[<v>";
  if r.rows = [] then Fmt.pf ppf "identical: %d fields compared, no deltas@,"
      r.compared
  else begin
    Fmt.pf ppf "%-22s %-26s %16s %16s %10s %s@," "run" "field" "A" "B" "rel" "verdict";
    List.iter
      (fun row ->
        Fmt.pf ppf "%-22s %-26s %16s %16s %a %s@," row.key row.field row.va row.vb pp_rel
          row.rel_pct (verdict_name row.verdict))
      r.rows
  end;
  Fmt.pf ppf
    "%d fields compared: %d architectural mismatches, %d wall-clock deltas out of band \
     (tolerance %.0f%%), %d runs missing@,verdict: %s@]"
    r.compared r.arch_mismatches r.wall_flagged r.policy.wall_tol_pct r.missing
    (if ok r then "OK" else "REGRESSION")

let to_json r =
  Json.Obj
    [
      ("schema", Json.String "cheri-obs-diff/1");
      ("compared", Json.Int (Int64.of_int r.compared));
      ("arch_mismatches", Json.Int (Int64.of_int r.arch_mismatches));
      ("wall_flagged", Json.Int (Int64.of_int r.wall_flagged));
      ("missing", Json.Int (Int64.of_int r.missing));
      ("wall_tol_pct", Json.Float r.policy.wall_tol_pct);
      ("ok", Json.Bool (ok r));
      ( "rows",
        Json.List
          (List.map
             (fun row ->
               Json.Obj
                 [
                   ("run", Json.String row.key);
                   ("field", Json.String row.field);
                   ("a", Json.String row.va);
                   ("b", Json.String row.vb);
                   ( "rel_pct",
                     match row.rel_pct with Some p -> Json.Float p | None -> Json.Null );
                   ("verdict", Json.String (verdict_name row.verdict));
                 ])
             r.rows) );
    ]
