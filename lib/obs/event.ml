(* The structured-event bus: a single ordered stream that spans, kernel
   faults, fault-injection campaign verdicts, and allocation markers all
   flow onto, so one consumer (a JSONL sink, a test assertion, a live
   dashboard) sees the whole run in causal order.

   Events are cheap plain data; emitting to a bus with no sinks is a
   single list match.  The JSONL representation is one self-contained
   object per line — the machine-readable trace format the ISSUE's
   exporters build on. *)

type t = {
  seq : int; (* per-bus sequence number: total order of emission *)
  kind : string; (* event class: "span-enter" | "span-exit" | "alloc" | "fault" | ... *)
  name : string; (* instance name within the class (span name, exc name, ...) *)
  data : (string * Json.t) list; (* free-form payload *)
}

type sink = t -> unit
type bus = { mutable seq : int; mutable sinks : sink list }

let create () = { seq = 0; sinks = [] }

(* Sinks fire in subscription order. *)
let subscribe bus sink = bus.sinks <- bus.sinks @ [ sink ]

let emit bus ~kind ?(name = "") data =
  match bus.sinks with
  | [] -> bus.seq <- bus.seq + 1
  | sinks ->
      let e = { seq = bus.seq; kind; name; data } in
      bus.seq <- bus.seq + 1;
      List.iter (fun sink -> sink e) sinks

let to_json (e : t) =
  Json.Obj
    ([ ("seq", Json.Int (Int64.of_int e.seq)); ("kind", Json.String e.kind) ]
    @ (if e.name = "" then [] else [ ("name", Json.String e.name) ])
    @ e.data)

(* A sink appending one JSON object per line to [buf]. *)
let jsonl_sink buf e =
  Buffer.add_string buf (Json.to_string (to_json e));
  Buffer.add_char buf '\n'

(* A sink writing JSONL straight to an out_channel (cheri_prof --events). *)
let channel_sink oc e =
  output_string oc (Json.to_string (to_json e));
  output_char oc '\n'

let pp ppf (e : t) = Fmt.pf ppf "#%d %s %s %a" e.seq e.kind e.name Json.pp (Json.Obj e.data)
