(* Retirement-driven counter time-series: snapshot the counter file
   every [interval] retired instructions and keep the per-interval
   deltas, turning the end-of-run aggregates into a timeline of miss
   rates, DRAM traffic, and domain-crossing rate over simulated time.

   The sampler is driven from the machine's per-instruction step hook
   ([Machine.set_step_hook]), which both interpreter engines invoke at
   exactly the same architectural points — so the sample boundaries,
   and therefore the series, are identical under --engine plain and
   --engine superblock (host-side sb_* counters aside; [sanitize]
   zeroes those for engine-comparable exports).  Sampling never touches
   architectural state: a tick reads the counter file and allocates on
   the host, nothing more.

   Like Trace, a per-chunk series carries its own machine's clock;
   [append] shifts a chunk's samples by the cumulative instret/cycle
   totals of the chunks before it, so the merged sweep-wide series is
   byte-identical for any --jobs. *)

type sample = {
  at_instret : int; (* retirements at the sample boundary *)
  at_cycles : int; (* simulated cycles at the sample boundary *)
  delta : Counters.t; (* counter movement since the previous sample *)
}

type t = {
  interval : int;
  read : unit -> Counters.t;
  mutable base : Counters.t;
  mutable next_at : int;
  mutable rev_samples : sample list;
  mutable count : int;
}

let create ~interval ?(read = fun () -> Counters.create ()) () =
  if interval < 1 then invalid_arg "Series.create: interval";
  { interval; read; base = read (); next_at = interval; rev_samples = []; count = 0 }

let interval t = t.interval
let count t = t.count

(* The step-hook body: called with the current retirement count before
   every instruction; cheap no-op until the boundary passes. *)
let tick t ~instret =
  if instret >= t.next_at then begin
    let now = t.read () in
    let delta = Counters.diff now t.base in
    t.base <- now;
    t.rev_samples <-
      { at_instret = instret; at_cycles = Int64.to_int (Counters.get now Counters.cycles); delta }
      :: t.rev_samples;
    t.count <- t.count + 1;
    while t.next_at <= instret do
      t.next_at <- t.next_at + t.interval
    done
  end

let samples t = List.rev t.rev_samples

(* Freeze a sampler mid-stream: an independent series with the same
   interval, samples, delta base, and next boundary, sharing only the
   (stateless) counter-read closure.  The serving pool clones the
   boot-period series out of a server's checkpoint so every warm chunk
   starts its timeline with exactly the samples — and exactly the
   sampler state — a cold boot would have accumulated. *)
let copy t =
  {
    t with
    base = Counters.copy t.base;
    rev_samples =
      List.map (fun s -> { s with delta = Counters.copy s.delta }) t.rev_samples;
  }

let append src ~instret_offset ~cycles_offset ~into =
  List.iter
    (fun s ->
      into.rev_samples <-
        {
          at_instret = s.at_instret + instret_offset;
          at_cycles = s.at_cycles + cycles_offset;
          delta = Counters.copy s.delta;
        }
        :: into.rev_samples;
      into.count <- into.count + 1)
    (samples src)

(* Zero the host-side counters (profiler samples, superblock telemetry)
   in every delta, so serialized series compare byte-identical across
   interpreter engines — the same discipline as the serve sweep's
   architectural-counter exports. *)
let sanitize t =
  List.iter
    (fun s ->
      Counters.set_int s.delta Counters.samples 0;
      Counters.set_int s.delta Counters.sb_translations 0;
      Counters.set_int s.delta Counters.sb_dispatches 0;
      Counters.set_int s.delta Counters.sb_retired 0)
    t.rev_samples

(* --- Chrome counter-track export ------------------------------------------ *)

(* One "C" (counter) event per derived metric per sample: miss-rate
   percentages, DRAM bytes moved, domain crossings, and superblock
   dispatches (meaningful only in single-engine diagnostic traces;
   zero after [sanitize]). *)
let to_chrome_events ?(pid = 1) t =
  let track name ts value =
    Json.Obj
      [
        ("name", Json.String name);
        ("ph", Json.String "C");
        ("pid", Json.Int (Int64.of_int pid));
        ("ts", Json.Int (Int64.of_int ts));
        ("args", Json.Obj [ ("value", value) ]);
      ]
  in
  List.concat_map
    (fun s ->
      let c = s.delta in
      let pct ~hits ~misses = Json.Float (Counters.miss_rate_pct c ~hits ~misses) in
      [
        track "l1d_miss_pct" s.at_cycles (pct ~hits:Counters.l1d_hits ~misses:Counters.l1d_misses);
        track "l2_miss_pct" s.at_cycles (pct ~hits:Counters.l2_hits ~misses:Counters.l2_misses);
        track "tlb_miss_pct" s.at_cycles (pct ~hits:Counters.tlb_hits ~misses:Counters.tlb_misses);
        track "dram_bytes" s.at_cycles
          (Json.Int
             (Int64.add
                (Counters.get c Counters.dram_read_bytes)
                (Counters.get c Counters.dram_write_bytes)));
        track "ccalls" s.at_cycles (Json.Int (Counters.get c Counters.ccalls));
        track "sb_dispatches" s.at_cycles (Json.Int (Counters.get c Counters.sb_dispatches));
      ])
    (samples t)
