(* A minimal JSON value type and serializer for the observability
   exporters (the toolchain image carries no yojson; the subsystem only
   ever *emits* JSON, so a printer is all that is needed).  Output is
   strict RFC 8259: strings are escaped, non-finite floats degrade to
   null, and Int64 counters are emitted as bare integers (all our
   counters fit in 63 bits, below the 2^53 interop threshold only for
   pathological runs — consumers of the bench schema read them as
   integers). *)

type t =
  | Null
  | Bool of bool
  | Int of int64
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (Int64.to_string i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.12g" f)
      else Buffer.add_string buf "null"
  | String s -> add_escaped buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let pp ppf v = Fmt.string ppf (to_string v)
