(* A minimal JSON value type, serializer, and parser for the
   observability exporters and the differential regression harness (the
   toolchain image carries no yojson).  Output is strict RFC 8259:
   strings are escaped, non-finite floats degrade to null, and Int64
   counters are emitted as bare integers (all our counters fit in 63
   bits, below the 2^53 interop threshold only for pathological runs —
   consumers of the bench schema read them as integers).  The parser
   accepts exactly what the emitter produces plus standard JSON:
   integral numbers that fit come back as [Int], everything else as
   [Float]. *)

type t =
  | Null
  | Bool of bool
  | Int of int64
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (Int64.to_string i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.12g" f)
      else Buffer.add_string buf "null"
  | String s -> add_escaped buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let pp ppf v = Fmt.string ppf (to_string v)

(* Serialize one value to [path] with a trailing newline — the shape
   every exporter in the repo writes. *)
let to_file path v =
  let oc = open_out path in
  output_string oc (to_string v);
  output_char oc '\n';
  close_out oc

(* --- parsing -------------------------------------------------------------- *)

exception Parse_error of string * int (* message, byte offset *)

let parse_error pos fmt = Printf.ksprintf (fun m -> raise (Parse_error (m, pos))) fmt

(* Recursive-descent parser over a string.  [pos] is a byte cursor. *)
let parse (s : string) : t =
  let len = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> parse_error !pos "expected %C, got %C" c got
    | None -> parse_error !pos "expected %C, got end of input" c
  in
  let skip_ws () =
    while
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          true
      | _ -> false
    do
      ()
    done
  in
  let literal word value =
    if !pos + String.length word <= len && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      value
    end
    else parse_error !pos "invalid literal"
  in
  (* Encode a Unicode scalar value as UTF-8 into [buf]. *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > len then parse_error !pos "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> parse_error !pos "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'u' ->
              advance ();
              let cp = hex4 () in
              (* Surrogate pair: a high surrogate must be followed by
                 \uDC00-\uDFFF; combine into one scalar value. *)
              let cp =
                if cp >= 0xD800 && cp <= 0xDBFF then begin
                  if
                    !pos + 2 <= len
                    && s.[!pos] = '\\'
                    && s.[!pos + 1] = 'u'
                  then begin
                    pos := !pos + 2;
                    let lo = hex4 () in
                    if lo < 0xDC00 || lo > 0xDFFF then
                      parse_error !pos "invalid low surrogate";
                    0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                  end
                  else parse_error !pos "lone high surrogate"
                end
                else cp
              in
              add_utf8 buf cp;
              go ()
          | _ -> parse_error !pos "invalid escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') ->
          advance ();
          go ()
      | Some ('.' | 'e' | 'E') ->
          is_float := true;
          advance ();
          go ()
      | _ -> ()
    in
    go ();
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> parse_error start "invalid number %S" text
    else
      match Int64.of_string_opt text with
      | Some i -> Int i
      | None -> (
          (* Out of int64 range: degrade to float rather than failing. *)
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> parse_error start "invalid number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_error !pos "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> parse_error !pos "unexpected character %C" c
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then parse_error !pos "trailing garbage";
  v

let of_string s =
  match parse s with
  | v -> Ok v
  | exception Parse_error (msg, pos) -> Error (Printf.sprintf "JSON parse error at byte %d: %s" pos msg)

let of_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      of_string s

(* --- accessors (the loader's vocabulary) ----------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_list_opt = function List items -> Some items | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None

(* Numeric coercion: counters written by hand or by other tools may carry
   integral floats. *)
let to_float_opt = function Float f -> Some f | Int i -> Some (Int64.to_float i) | _ -> None
