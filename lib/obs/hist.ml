(* Log2-bucket histograms: the distribution primitive behind load/store
   sizes, capability bounds lengths, miss-reuse distances, and span
   durations.  Bucket 0 holds exact zeros; bucket k >= 1 holds values in
   [2^(k-1), 2^k), so one 64-slot array covers the full non-negative
   int64 range and [observe] is a handful of shifts — cheap enough to
   sit on the memory-access path when a probe is attached.

   Everything is deterministic plain data; [merge] folds one histogram
   into another element-wise (per-shard aggregation). *)

type t = {
  name : string;
  counts : int array; (* counts.(k) = values in bucket k *)
  mutable total : int;
  mutable sum : int64;
  mutable vmin : int64; (* meaningful only when total > 0 *)
  mutable vmax : int64;
}

let buckets = 64

let create ~name () =
  { name; counts = Array.make buckets 0; total = 0; sum = 0L; vmin = Int64.max_int; vmax = 0L }

(* Bucket index of [v]: the bit-length of v (0 for v <= 0). *)
let bucket_of v =
  if Int64.compare v 0L <= 0 then 0
  else begin
    let b = ref 0 and v = ref v in
    while Int64.compare !v 0L > 0 do
      incr b;
      v := Int64.shift_right_logical !v 1
    done;
    !b
  end

(* Inclusive-exclusive value range [lo, hi) covered by bucket [k]. *)
let bucket_bounds k =
  if k = 0 then (0L, 1L)
  else (Int64.shift_left 1L (k - 1), if k >= 63 then Int64.max_int else Int64.shift_left 1L k)

let observe t v =
  let v = if Int64.compare v 0L < 0 then 0L else v in
  t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
  t.total <- t.total + 1;
  t.sum <- Int64.add t.sum v;
  if Int64.compare v t.vmin < 0 then t.vmin <- v;
  if Int64.compare v t.vmax > 0 then t.vmax <- v

let observe_int t v = observe t (Int64.of_int v)
let total t = t.total
let mean t = if t.total = 0 then 0.0 else Int64.to_float t.sum /. float_of_int t.total

(* Fold [src] into [dst]; min/max/total/sum follow. *)
let merge dst src =
  for k = 0 to buckets - 1 do
    dst.counts.(k) <- dst.counts.(k) + src.counts.(k)
  done;
  dst.total <- dst.total + src.total;
  dst.sum <- Int64.add dst.sum src.sum;
  if Int64.compare src.vmin dst.vmin < 0 then dst.vmin <- src.vmin;
  if Int64.compare src.vmax dst.vmax > 0 then dst.vmax <- src.vmax

(* Occupied buckets in ascending value order: (bucket index, count). *)
let nonempty t =
  let acc = ref [] in
  for k = buckets - 1 downto 0 do
    if t.counts.(k) > 0 then acc := (k, t.counts.(k)) :: !acc
  done;
  !acc

(* Smallest value v such that at least [q] (0..1) of observations are in
   buckets covering values <= v — a log2-resolution quantile, good
   enough for "p99 span duration" style reporting. *)
let quantile t q =
  if t.total = 0 then 0L
  else begin
    let target = int_of_float (ceil (q *. float_of_int t.total)) in
    let target = if target < 1 then 1 else target in
    let rec go k seen =
      if k >= buckets then t.vmax
      else
        let seen = seen + t.counts.(k) in
        if seen >= target then snd (bucket_bounds k) else go (k + 1) seen
    in
    let v = go 0 0 in
    if Int64.compare v t.vmax > 0 then t.vmax else v
  end

let to_json t =
  Json.Obj
    [
      ("name", Json.String t.name);
      ("total", Json.Int (Int64.of_int t.total));
      ("sum", Json.Int t.sum);
      ("mean", Json.Float (mean t));
      ("min", Json.Int (if t.total = 0 then 0L else t.vmin));
      ("max", Json.Int t.vmax);
      ( "buckets",
        Json.List
          (List.map
             (fun (k, n) ->
               let lo, hi = bucket_bounds k in
               Json.Obj
                 [ ("lo", Json.Int lo); ("hi", Json.Int hi); ("count", Json.Int (Int64.of_int n)) ])
             (nonempty t)) );
    ]

let pp ppf t =
  Fmt.pf ppf "@[<v>%s: %d values" t.name t.total;
  if t.total > 0 then
    Fmt.pf ppf ", mean %.1f, min %Ld, max %Ld" (mean t) t.vmin t.vmax;
  let peak = Array.fold_left max 1 t.counts in
  List.iter
    (fun (k, n) ->
      let lo, hi = bucket_bounds k in
      let bar = String.make (max 1 (n * 40 / peak)) '#' in
      Fmt.pf ppf "@,  [%12Ld,%12Ld) %10d %s" lo hi n bar)
    (nonempty t);
  Fmt.pf ppf "@]"
