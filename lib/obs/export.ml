(* Machine-readable bench export: the `BENCH_obs.json` summary that
   `bench/main.exe --json` writes, establishing the repo's perf
   trajectory (interpreter instructions/second, per-benchmark simulated
   cycle totals, and the full counter file per run) so future PRs have a
   baseline to diff against.

   Schema (documented in docs/OBSERVABILITY.md):

     { "schema": "cheri-obs-bench/5",
       "interp_instr_per_s": <host-side interpreter throughput>,
       "benchmarks": [
         { "bench": ..., "mode": ..., "param": ...,
           "cycles": ..., "instret": ..., "wall_s": ..., "sim_mips": ...,
           "counters": { <counter name>: <int>, ... },
           "spans": { <span name>: { "instret": ..., "cycles": ... }, ... } } ] }

   cheri-obs-bench/3 adds `sim_mips` per run: simulated millions of
   instructions per host second (instret / wall_s / 1e6; 0.0 when the
   run's wall clock was not measured) — the per-run resolution of the
   file-level `interp_instr_per_s` perf trajectory.  Host-timing fields
   (`wall_s`, `sim_mips`, `interp_instr_per_s`) are never compared
   exactly by the diff harness, only banded.

   cheri-obs-bench/2 dropped the `samples` counter from the per-run
   counter object: bench runs attach a classification probe but no
   sampling profiler, so the field was always zero.

   cheri-obs-bench/4 adds the superblock-engine telemetry counters
   (`sb_translations`, `sb_dispatches`, `sb_retired`) to the per-run
   counter object.  Like the host-timing fields they describe the
   interpreter, not the simulated machine — the diff harness ignores
   them (Diff.default_policy), so baselines recorded under either
   `--engine` compare clean against runs under the other.

   cheri-obs-bench/5 adds the kernel domain-crossing detail counters
   (`creturns`, `ctx_saves`, `ctx_restores`) alongside the aggregate
   `ccalls`.  They are architectural, but one-sided against /1–/4
   baselines, so the diff harness ignores them like the sb telemetry;
   the serve smoke tallies pin them instead.  The baseline loader
   (Obs.Baseline) accepts /1 through /5 files. *)

type entry = {
  bench : string;
  mode : string;
  param : int;
  wall_s : float; (* host seconds spent simulating this run *)
  counters : Counters.t;
  spans : (string * Counters.t) list;
}

let schema_version = "cheri-obs-bench/5"
let schema_v1 = "cheri-obs-bench/1"
let schema_v2 = "cheri-obs-bench/2"
let schema_v3 = "cheri-obs-bench/3"
let schema_v4 = "cheri-obs-bench/4"

(* The trace export rides the same file shape (schema / benchmarks /
   counters / spans) with its own schema tag: spans carry per-request-
   class and per-compartment latency histogram fields instead of
   instret/cycles pairs.  [Baseline] loads it like any bench file — the
   span decoder accepts arbitrary integer fields — and [Diff] pins the
   fields exactly.  Written by Serve.Sweep.trace_obs_json. *)
let schema_trace = "cheri-obs-trace/1"

(* Simulated MIPS of one run: how many millions of simulated instructions
   the interpreter retired per host second.  0.0 when the wall clock was
   not measured (deterministic-output mode). *)
let sim_mips e =
  if e.wall_s <= 0.0 then 0.0
  else Int64.to_float (Counters.get e.counters Counters.instret) /. e.wall_s /. 1e6

(* The counter fields a bench export carries: every counter except the
   profiler's [samples] (meaningless without a profiler attached).
   Shared with [Baseline.of_entries] so live runs and loaded files
   compare over exactly the same keys. *)
let counter_fields (c : Counters.t) =
  List.filter (fun (name, _) -> name <> "samples") (Counters.to_assoc c)

let entry_to_json e =
  Json.Obj
    [
      ("bench", Json.String e.bench);
      ("mode", Json.String e.mode);
      ("param", Json.Int (Int64.of_int e.param));
      ("cycles", Json.Int (Counters.get e.counters Counters.cycles));
      ("instret", Json.Int (Counters.get e.counters Counters.instret));
      ("wall_s", Json.Float e.wall_s);
      ("sim_mips", Json.Float (sim_mips e));
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) (counter_fields e.counters)));
      ( "spans",
        Json.Obj
          (List.map
             (fun (name, c) ->
               ( name,
                 Json.Obj
                   [
                     ("instret", Json.Int (Counters.get c Counters.instret));
                     ("cycles", Json.Int (Counters.get c Counters.cycles));
                   ] ))
             e.spans) );
    ]

(* Aggregate interpreter throughput over all entries: total simulated
   instructions per host second — the number the perf trajectory tracks. *)
let interp_instr_per_s entries =
  let instrs =
    List.fold_left
      (fun acc e -> Int64.add acc (Counters.get e.counters Counters.instret))
      0L entries
  in
  let wall = List.fold_left (fun acc e -> acc +. e.wall_s) 0.0 entries in
  if wall <= 0.0 then 0.0 else Int64.to_float instrs /. wall

let summary entries =
  Json.Obj
    [
      ("schema", Json.String schema_version);
      ("interp_instr_per_s", Json.Float (interp_instr_per_s entries));
      ("benchmarks", Json.List (List.map entry_to_json entries));
    ]

let write_file path entries =
  let oc = open_out path in
  output_string oc (Json.to_string (summary entries));
  output_char oc '\n';
  close_out oc
