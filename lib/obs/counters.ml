(* The hardware-counter file (the subsystem's analogue of RISC-V
   hpmcounters / BERI's statcounters): a flat vector of monotonically
   increasing Int64 event counts populated by [lib/machine] (retirement,
   cycles, capability ops), [lib/mem] (cache/TLB/tag-controller events),
   and [lib/kernel] (syscalls, domain crossings).

   Represented as one int64 array indexed by the constants below so that
   snapshot, diff, and accumulate are element-wise loops rather than
   28 lines of record plumbing; [names] gives each index its stable,
   machine-readable name (the JSON schema key). *)

type t = int64 array

(* Index constants.  Order is the presentation and schema order; append
   only — the names array below must stay in sync. *)
let instret = 0
let cycles = 1
let retired_stores = 2
let kernel_entries = 3
let syscalls = 4
let ccalls = 5
let loads = 6
let stores = 7
let load_bytes = 8
let store_bytes = 9
let l1i_hits = 10
let l1i_misses = 11
let l1d_hits = 12
let l1d_misses = 13
let l2_hits = 14
let l2_misses = 15
let tlb_hits = 16
let tlb_misses = 17
let tag_hits = 18
let tag_misses = 19
let tag_dram_fills = 20
let dram_read_bytes = 21
let dram_write_bytes = 22
let cap_ops = 23
let cap_loads = 24
let cap_stores = 25
let branches = 26
let samples = 27

(* Superblock-engine telemetry (host-side, not architectural): regions
   translated, block dispatches, and instructions retired inside blocks.
   Zero under the plain engine; the diff harness must treat them like
   [samples] — engine configuration, not simulated behaviour. *)
let sb_translations = 28
let sb_dispatches = 29
let sb_retired = 30

(* Kernel domain-crossing detail (schema /5): protected procedure
   returns and trusted-stack context save/restore counts, complementing
   the aggregate [ccalls].  Architectural workload behaviour — but new
   counters are one-sided against older baselines, so the diff harness
   ignores them like the sb telemetry until baselines are regenerated. *)
let creturns = 31
let ctx_saves = 32
let ctx_restores = 33

let names =
  [|
    "instret";
    "cycles";
    "retired_stores";
    "kernel_entries";
    "syscalls";
    "ccalls";
    "loads";
    "stores";
    "load_bytes";
    "store_bytes";
    "l1i_hits";
    "l1i_misses";
    "l1d_hits";
    "l1d_misses";
    "l2_hits";
    "l2_misses";
    "tlb_hits";
    "tlb_misses";
    "tag_hits";
    "tag_misses";
    "tag_dram_fills";
    "dram_read_bytes";
    "dram_write_bytes";
    "cap_ops";
    "cap_loads";
    "cap_stores";
    "branches";
    "samples";
    "sb_translations";
    "sb_dispatches";
    "sb_retired";
    "creturns";
    "ctx_saves";
    "ctx_restores";
  |]

let count = Array.length names

(* Index of a schema key ([names] entry), for consumers that arrive at
   counters by name (the baseline loader, attribution reports). *)
let index_of_name name =
  let found = ref None in
  Array.iteri (fun i n -> if n = name then found := Some i) names;
  !found

let create () : t = Array.make count 0L
let copy (c : t) : t = Array.copy c
let reset (c : t) = Array.fill c 0 count 0L
let get (c : t) i = c.(i)
let set (c : t) i v = c.(i) <- v
let set_int (c : t) i v = c.(i) <- Int64.of_int v
let add (c : t) i v = c.(i) <- Int64.add c.(i) v
let incr (c : t) i = add c i 1L

(* [diff now before] — the counter deltas over a region (span close). *)
let diff (now : t) (before : t) : t = Array.init count (fun i -> Int64.sub now.(i) before.(i))

(* Element-wise accumulate [src] into [dst] (span aggregation). *)
let accumulate (dst : t) (src : t) =
  for i = 0 to count - 1 do
    dst.(i) <- Int64.add dst.(i) src.(i)
  done

let equal (a : t) (b : t) =
  let rec go i = i >= count || (Int64.equal a.(i) b.(i) && go (i + 1)) in
  go 0

let to_assoc (c : t) = Array.to_list (Array.mapi (fun i n -> (n, c.(i))) names)
let to_json (c : t) = Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) (to_assoc c))

(* Derived ratios the reports print; total = 0 yields 0. *)
let ratio_pct num den =
  if Int64.equal den 0L then 0.0 else 100.0 *. Int64.to_float num /. Int64.to_float den

let miss_rate_pct (c : t) ~hits ~misses =
  ratio_pct c.(misses) (Int64.add c.(hits) c.(misses))

let pp ppf (c : t) =
  Fmt.pf ppf "@[<v>";
  Array.iteri (fun i n -> Fmt.pf ppf "%-18s %14Ld@," n c.(i)) names;
  Fmt.pf ppf "L1I miss rate      %13.2f%%@,L1D miss rate      %13.2f%%@,L2 miss rate       %13.2f%%@,TLB miss rate      %13.2f%%@,tag-$ miss rate    %13.2f%%"
    (miss_rate_pct c ~hits:l1i_hits ~misses:l1i_misses)
    (miss_rate_pct c ~hits:l1d_hits ~misses:l1d_misses)
    (miss_rate_pct c ~hits:l2_hits ~misses:l2_misses)
    (miss_rate_pct c ~hits:tlb_hits ~misses:tlb_misses)
    (miss_rate_pct c ~hits:tag_hits ~misses:tag_misses);
  Fmt.pf ppf "@]"
