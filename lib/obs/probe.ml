(* The machine-side hook state: the zero-cost-when-disabled half of the
   counter file.  [lib/machine] carries an optional probe; when absent
   the per-step overhead is one pattern match (exactly like the existing
   [on_step] hook), and when present the probe classifies each retired
   instruction (capability ops, capability loads/stores, branches),
   drives the sampling profiler, and maintains the profiler's shadow
   call stack.

   The probe never touches the architectural state and never charges
   cycles, so a probed run is architecturally identical to an unprobed
   one — test_obs.ml asserts this bit-for-bit. *)

open Beri

type t = {
  mutable cap_ops : int64; (* all CP2 instructions *)
  mutable cap_loads : int64; (* loads via a capability (CLC, CL[BHWD], CLLD) *)
  mutable cap_stores : int64; (* stores via a capability (CSC, CS[BHWD], CSCD) *)
  mutable branches : int64; (* control-flow instructions of any kind *)
  profile : Profile.t option;
  attrib : Attrib.t option;
      (* per-PC / per-region miss attribution; when present the machine
         additionally routes memory-hierarchy and tag-table events here *)
  mutable sampled : int64; (* profiler samples taken (mirrors Profile.total) *)
}

let create ?profile ?attrib () =
  { cap_ops = 0L; cap_loads = 0L; cap_stores = 0L; branches = 0L; profile; attrib; sampled = 0L }

let attrib t = t.attrib

(* Bounds length of a tagged capability moved to or from memory (CLC/CSC
   paths); feeds the attribution layer's bounds-length histogram. *)
let note_cap_bounds t ~len =
  match t.attrib with Some a -> Attrib.observe_cap_len a len | None -> ()

let is_cap_op = function
  | Insn.CGetBase _ | Insn.CGetLen _ | Insn.CGetTag _ | Insn.CGetPerm _ | Insn.CGetPCC _
  | Insn.CGetCause _ | Insn.CIncBase _ | Insn.CSetLen _ | Insn.CClearTag _ | Insn.CAndPerm _
  | Insn.CMove _ | Insn.CToPtr _ | Insn.CFromPtr _ | Insn.CBTU _ | Insn.CBTS _ | Insn.CLC _
  | Insn.CSC _ | Insn.CLoad _ | Insn.CStore _ | Insn.CLLD _ | Insn.CSCD _ | Insn.CJR _
  | Insn.CJALR _ | Insn.CSeal _ | Insn.CUnseal _ | Insn.CCall _ | Insn.CReturn ->
      true
  | _ -> false

let is_branch = function
  | Insn.J _ | Insn.Jal _ | Insn.Jr _ | Insn.Jalr _ | Insn.Beq _ | Insn.Bne _ | Insn.Blez _
  | Insn.Bgtz _ | Insn.Bltz _ | Insn.Bgez _ | Insn.CBTU _ | Insn.CBTS _ | Insn.CJR _
  | Insn.CJALR _ ->
      true
  | _ -> false

(* Classify and sample one retired instruction at [pc].  Called by the
   machine in the same place [instret] is bumped, so the sample stream
   and the instruction counters describe exactly the same population. *)
let note t insn ~pc =
  if is_cap_op insn then t.cap_ops <- Int64.add t.cap_ops 1L;
  (match insn with
  | Insn.CLC _ | Insn.CLoad _ | Insn.CLLD _ -> t.cap_loads <- Int64.add t.cap_loads 1L
  | Insn.CSC _ | Insn.CStore _ | Insn.CSCD _ -> t.cap_stores <- Int64.add t.cap_stores 1L
  | _ -> ());
  if is_branch insn then t.branches <- Int64.add t.branches 1L;
  match t.profile with
  | Some p -> if Profile.step p pc then t.sampled <- Int64.add t.sampled 1L
  | None -> ()

(* Call-graph tracking for collapsed stacks: the machine reports the
   *resolved* control transfer after executing a call or return (for
   register-indirect calls the target is only known post-execute). *)
let enter_frame t ~callee =
  match t.profile with Some p -> Profile.call p callee | None -> ()

let exit_frame t = match t.profile with Some p -> Profile.ret p | None -> ()

(* Deposit the probe-owned counters into a counter file snapshot. *)
let fill t (c : Counters.t) =
  Counters.set c Counters.cap_ops t.cap_ops;
  Counters.set c Counters.cap_loads t.cap_loads;
  Counters.set c Counters.cap_stores t.cap_stores;
  Counters.set c Counters.branches t.branches;
  Counters.set c Counters.samples t.sampled
