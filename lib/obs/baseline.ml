(* Loading `BENCH_obs.json`-schema files back into structured form: the
   read half of the differential regression harness.  A baseline is a
   set of benchmark runs keyed by bench/mode/param, each carrying its
   wall time, counter file, and span aggregates; [Diff] compares two of
   them.  Accepts cheri-obs-bench/1 (with the `samples` counter), /2
   (without), /3 (with per-run `sim_mips`; absent in older files and
   defaulted to 0.0 = unmeasured), /4 (with the superblock-engine
   telemetry counters, which the diff policy ignores), and /5 (with the
   kernel domain-crossing detail counters, also diff-ignored); the
   simulator is deterministic, so a loaded baseline is an exact
   architectural oracle, not just a dashboard. *)

type entry = {
  bench : string;
  mode : string;
  param : int;
  wall_s : float;
  sim_mips : float; (* schema /3; 0.0 in older files = unmeasured *)
  counters : (string * int64) list; (* schema order preserved *)
  spans : (string * (string * int64) list) list;
}

type t = {
  schema : string;
  interp_instr_per_s : float;
  entries : entry list;
}

let supported_schemas =
  [
    Export.schema_v1;
    Export.schema_v2;
    Export.schema_v3;
    Export.schema_v4;
    Export.schema_version;
    (* The serve trace export (cheri-obs-trace/1) shares the file shape;
       its spans are latency-histogram field sets, which the arbitrary-
       integer-field span decoder below already handles. *)
    Export.schema_trace;
  ]

(* "bench/mode/param": the identity of a run across baseline files. *)
let key e = Printf.sprintf "%s/%s/%d" e.bench e.mode e.param
let find t k = List.find_opt (fun e -> key e = k) t.entries

(* --- decoding -------------------------------------------------------------- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field_ctx ctx name = if ctx = "" then name else ctx ^ "." ^ name

let require ctx name conv json =
  match Json.member name json with
  | None -> Error (Printf.sprintf "missing field %S" (field_ctx ctx name))
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S has the wrong type" (field_ctx ctx name)))

let int_fields ctx json =
  match json with
  | Json.Obj fields ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (name, Json.Int v) :: rest -> go ((name, v) :: acc) rest
        | (name, _) :: _ ->
            Error (Printf.sprintf "field %S is not an integer" (field_ctx ctx name))
      in
      go [] fields
  | _ -> Error (Printf.sprintf "%S is not an object" ctx)

let entry_of_json i json =
  let ctx = Printf.sprintf "benchmarks[%d]" i in
  let* bench = require ctx "bench" Json.to_string_opt json in
  let* mode = require ctx "mode" Json.to_string_opt json in
  let* param = require ctx "param" Json.to_int_opt json in
  let* wall_s = require ctx "wall_s" Json.to_float_opt json in
  (* Schema /3 only; absent in /1 and /2 files. *)
  let* sim_mips =
    match Json.member "sim_mips" json with
    | None -> Ok 0.0
    | Some v -> (
        match Json.to_float_opt v with
        | Some f -> Ok f
        | None ->
            Error (Printf.sprintf "field %S has the wrong type" (field_ctx ctx "sim_mips")))
  in
  let* counters_json = require ctx "counters" (fun v -> Some v) json in
  let* counters = int_fields (field_ctx ctx "counters") counters_json in
  let* spans =
    match Json.member "spans" json with
    | None | Some Json.Null -> Ok []
    | Some (Json.Obj span_fields) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | (name, span_json) :: rest ->
              let* fields = int_fields (field_ctx ctx ("spans." ^ name)) span_json in
              go ((name, fields) :: acc) rest
        in
        go [] span_fields
    | Some _ -> Error (Printf.sprintf "field %S is not an object" (field_ctx ctx "spans"))
  in
  Ok { bench; mode; param = Int64.to_int param; wall_s; sim_mips; counters; spans }

let of_json json =
  let* schema = require "" "schema" Json.to_string_opt json in
  if not (List.mem schema supported_schemas) then
    Error
      (Printf.sprintf "unsupported schema %S (expected %s)" schema
         (String.concat " or " supported_schemas))
  else
    let* interp_instr_per_s = require "" "interp_instr_per_s" Json.to_float_opt json in
    let* benchmarks = require "" "benchmarks" Json.to_list_opt json in
    let rec go i acc = function
      | [] -> Ok (List.rev acc)
      | b :: rest ->
          let* e = entry_of_json i b in
          go (i + 1) (e :: acc) rest
    in
    let* entries = go 0 [] benchmarks in
    (* Duplicate keys would make diffs ambiguous; reject them here. *)
    let rec dup = function
      | [] -> None
      | e :: rest -> if List.exists (fun e' -> key e' = key e) rest then Some (key e) else dup rest
    in
    match dup entries with
    | Some k -> Error (Printf.sprintf "duplicate benchmark entry %S" k)
    | None -> Ok { schema; interp_instr_per_s; entries }

let of_string s =
  let* json = Json.of_string s in
  of_json json

let load path =
  match Json.of_file path with
  | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
  | Ok json -> (
      match of_json json with
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
      | Ok t -> Ok t)

(* A live run, in loaded-baseline form: what `bench regress` diffs
   against a committed file without a serialization round trip.  Uses
   [Export.counter_fields] so the key set matches what [Export] writes
   (schema /2: no `samples`). *)
let of_entries (entries : Export.entry list) =
  {
    schema = Export.schema_version;
    interp_instr_per_s = Export.interp_instr_per_s entries;
    entries =
      List.map
        (fun (e : Export.entry) ->
          {
            bench = e.Export.bench;
            mode = e.Export.mode;
            param = e.Export.param;
            wall_s = e.Export.wall_s;
            sim_mips = Export.sim_mips e;
            counters = Export.counter_fields e.Export.counters;
            spans =
              List.map
                (fun (name, c) ->
                  ( name,
                    [
                      ("instret", Counters.get c Counters.instret);
                      ("cycles", Counters.get c Counters.cycles);
                    ] ))
                e.Export.spans;
          })
        entries;
  }
