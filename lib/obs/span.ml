(* Phase/region-scoped counter snapshots: open a named span, do work,
   close it, and the span's cost is the element-wise counter delta.
   Closing folds the delta into a per-name aggregate (a phase entered
   many times — e.g. "alloc" around every malloc — accumulates), so the
   fig4/fig5 phase splits fall out of [totals] instead of bespoke
   accounting in each experiment.

   Spans nest (a stack); a child's cost is included in its parent's, the
   same convention the trace markers always had.  [read] supplies the
   counter file — typically [Os.Kernel.read_counters] — so the span
   machinery itself is independent of where the counters come from. *)

type t = {
  read : unit -> Counters.t;
  bus : Event.bus option;
  durations : Hist.t option; (* per-close span duration (cycles), log2 buckets *)
  trace : Trace.t option; (* phase begin/end events on the cycle timeline *)
  mutable stack : (string * Counters.t) list; (* open spans, innermost first *)
  mutable totals : (string * Counters.t) list; (* closed-span aggregates, reverse order *)
  mutable opened : int;
  mutable closed : int;
}

let create ?bus ?durations ?trace ~read () =
  { read; bus; durations; trace; stack = []; totals = []; opened = 0; closed = 0 }

(* The cycle timestamp of a snapshot, for the trace's phase events: the
   span already reads the counter file at every enter/exit, so tracing
   adds no extra read. *)
let ts_of c = Int64.to_int (Counters.get c Counters.cycles)

let enter t name =
  let c = t.read () in
  t.stack <- (name, c) :: t.stack;
  t.opened <- t.opened + 1;
  (match t.trace with Some tr -> Trace.phase_begin tr ~ts:(ts_of c) name | None -> ());
  match t.bus with
  | Some bus -> Event.emit bus ~kind:"span-enter" ~name []
  | None -> ()

let accumulate t name delta =
  match List.assoc_opt name t.totals with
  | Some acc -> Counters.accumulate acc delta
  | None -> t.totals <- (name, delta) :: t.totals

(* Close the innermost span; unbalanced closes (a trace marker fired
   with no matching open, e.g. after a fault skipped the begin) are
   ignored rather than corrupting the aggregate. *)
let exit t =
  match t.stack with
  | [] -> ()
  | (name, start) :: rest ->
      t.stack <- rest;
      t.closed <- t.closed + 1;
      let now = t.read () in
      let delta = Counters.diff now start in
      accumulate t name delta;
      (match t.trace with Some tr -> Trace.phase_end tr ~ts:(ts_of now) | None -> ());
      (match t.durations with
      | Some h -> Hist.observe h (Counters.get delta Counters.cycles)
      | None -> ());
      (match t.bus with
      | Some bus ->
          Event.emit bus ~kind:"span-exit" ~name
            [
              ("instret", Json.Int (Counters.get delta Counters.instret));
              ("cycles", Json.Int (Counters.get delta Counters.cycles));
            ]
      | None -> ())

(* Close everything still open (end-of-run cleanup for aborted runs). *)
let rec close_all t = if t.stack <> [] then (exit t; close_all t)

(* Aggregated per-span deltas in first-opened order. *)
let totals t = List.rev t.totals
let find t name = List.assoc_opt name (totals t)

let cycles_of t name =
  match find t name with Some c -> Counters.get c Counters.cycles | None -> 0L

(* Render a totals list (from [totals], or any (name, delta) assoc) as a
   phase-breakdown table; [total_cycles] adds a share column. *)
let pp_totals ?total_cycles ppf spans =
  Fmt.pf ppf "@[<v>%-12s %14s %14s %10s %10s %8s@," "span" "instret" "cycles" "l1d-miss"
    "tlb-miss" "share";
  List.iter
    (fun (name, c) ->
      let cyc = Counters.get c Counters.cycles in
      let share =
        match total_cycles with
        | Some total when Int64.compare total 0L > 0 ->
            Fmt.str "%6.1f%%" (100.0 *. Int64.to_float cyc /. Int64.to_float total)
        | _ -> "-"
      in
      Fmt.pf ppf "%-12s %14Ld %14Ld %10Ld %10Ld %8s@," name
        (Counters.get c Counters.instret) cyc
        (Counters.get c Counters.l1d_misses)
        (Counters.get c Counters.tlb_misses)
        share)
    spans;
  Fmt.pf ppf "@]"

let pp ppf t = pp_totals ppf (totals t)
