(** A set-associative, write-back, write-allocate cache model with LRU
    replacement.

    Purely a performance model: data lives in {!Phys}; the cache tracks
    which lines are resident so both the machine and the trace-replay
    simulators can drive it.  The model is on the simulator's
    per-instruction path, so geometry is restricted to powers of two and
    {!access} is allocation-free (int shift/mask indexing, loop-based way
    and victim search, preallocated outcomes). *)

type t = {
  name : string;
  line_bytes : int;
  sets : int;
  assoc : int;
  line_bits : int;  (** log2 [line_bytes] *)
  set_bits : int;  (** log2 [sets] *)
  data : line array array;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
  mutable mru_line : int;
      (** one-line MRU front: line index of the previous access (-1 =
          empty); repeats skip the way search with bit-identical counter
          and LRU updates *)
  mutable mru_way : line;  (** the way holding [mru_line] *)
}

and line = { mutable tag : int; mutable valid : bool; mutable dirty : bool; mutable lru : int }

(** [create ~name ~size_bytes ~line_bytes ~assoc] — capacity must be a
    multiple of [line_bytes * assoc], and both [line_bytes] and the
    derived set count must be powers of two (shift/mask indexing).
    @raise Invalid_argument otherwise, naming the offending parameter. *)
val create : name:string -> size_bytes:int -> line_bytes:int -> assoc:int -> t

val size_bytes : t -> int

(** Line index of an address ([addr / line_bytes] as a native int): the
    unit {!access_line} operates on. *)
val line_index : t -> int64 -> int

type outcome =
  | Hit
  | Miss of { writeback : bool }  (** the victim line was dirty *)

(** [access t ~addr ~write] touches the line containing [addr]; on a miss
    the LRU way is evicted and the line installed.  Never allocates. *)
val access : t -> addr:int64 -> write:bool -> outcome

(** [access_line t ~line ~write] — the int-indexed equivalent of
    {!access} for callers that already hold a line index. *)
val access_line : t -> line:int -> write:bool -> outcome

(** Line-aligned addresses of every line a [size]-byte access at [addr]
    touches.  (The memory hierarchy's hot path iterates line indices
    directly instead; this remains for external consumers.) *)
val lines_spanned : t -> addr:int64 -> size:int -> int64 list

val reset_stats : t -> unit

(** Invalidate every line (drops dirty data — a model-level reset). *)
val flush : t -> unit

val pp_stats : Format.formatter -> t -> unit

(** {1 Snapshot / restore} — residency, dirty bits, LRU order, and stats
    captured into flat arrays and restored in place; the host-only MRU
    front is emptied (bit-exact — the full way search it fronts makes
    identical updates). *)

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
