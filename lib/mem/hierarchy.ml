(* The BERI/CHERI memory hierarchy performance model.

   Mirrors the FPGA prototype of Sections 4 and 8: split 16 KB L1 caches,
   a 64 KB L2, 32-byte lines, a TLB covering 1 MB, and a tag controller
   below the L2 with an 8 KB tag cache.  Access functions return a cycle
   cost and accumulate DRAM traffic statistics; data itself moves through
   [Phys] separately.  All capacities and penalties are configurable so
   benches can run ablations.

   The access functions sit on the simulator's per-instruction path, so
   they are allocation-free in the common case: line spans are iterated
   as native-int line indices (no intermediate list), the caches are
   indexed by shift/mask, and observability events are only constructed
   when a probe is actually attached. *)

type config = {
  l1_size : int;
  l2_size : int;
  line_bytes : int;
  assoc : int;
  tlb_entries : int;
  tag_cache_size : int; (* bytes of tag SRAM; each byte covers 8 lines *)
  l2_hit_cycles : int; (* L1 miss, L2 hit *)
  dram_cycles : int; (* L2 miss *)
  tlb_refill_cycles : int; (* software TLB refill *)
}

let default_config =
  {
    l1_size = 16 * 1024;
    l2_size = 64 * 1024;
    line_bytes = 32;
    assoc = 4;
    tlb_entries = 256;
    tag_cache_size = 8 * 1024;
    (* Penalties in cycles of a 100 MHz FPGA soft core (Section 4): DRAM
       at ~120 ns is only ~12 cycles away, which is why the paper's
       worst-case slowdowns stay modest. *)
    l2_hit_cycles = 4;
    dram_cycles = 12;
    tlb_refill_cycles = 30;
  }

type t = {
  config : config;
  l1i : Cache.t;
  l1d : Cache.t;
  l2 : Cache.t;
  tag_cache : Cache.t;
  tlb : Tlb.t;
  line_bits : int; (* log2 of the (shared) line size: line index <-> addr *)
  mutable dram_read_bytes : int;
  mutable dram_write_bytes : int;
  mutable loads : int;
  mutable stores : int;
  mutable load_bytes : int;
  mutable store_bytes : int;
  mutable tag_dram_accesses : int;
  mutable on_event : (Obs.Attrib.event -> addr:int64 -> unit) option;
      (* the widened observability probe: every miss, DRAM transfer, and
         data access is reported with its address.  [None] (the default)
         costs one pattern match per event site — the event value itself
         is only constructed when a probe is attached.  The machine
         installs a closure that adds the in-flight PC and feeds
         [Obs.Attrib].  Purely an observer — firing never changes costs
         or state. *)
}

let create ?(config = default_config) () =
  let l1d =
    Cache.create ~name:"L1D" ~size_bytes:config.l1_size ~line_bytes:config.line_bytes
      ~assoc:config.assoc
  in
  {
    config;
    l1i = Cache.create ~name:"L1I" ~size_bytes:config.l1_size ~line_bytes:config.line_bytes ~assoc:config.assoc;
    l1d;
    l2 = Cache.create ~name:"L2" ~size_bytes:config.l2_size ~line_bytes:config.line_bytes ~assoc:config.assoc;
    tag_cache = Cache.create ~name:"TagCache" ~size_bytes:config.tag_cache_size ~line_bytes:config.line_bytes ~assoc:config.assoc;
    tlb = Tlb.create ~entries:config.tlb_entries ();
    line_bits = l1d.Cache.line_bits;
    dram_read_bytes = 0;
    dram_write_bytes = 0;
    loads = 0;
    stores = 0;
    load_bytes = 0;
    store_bytes = 0;
    tag_dram_accesses = 0;
    on_event = None;
  }

(* Report one observability event at [addr]; free when no probe is attached. *)
let fire t ev ~addr = match t.on_event with None -> () | Some f -> f ev ~addr

(* Tag controller: each DRAM transaction consults the tag table; the 8 KB
   tag cache covers 2 MB of memory (one bit per 32-byte line), so misses
   are rare (the paper: "does not noticeably degrade performance").
   Attribution events carry the *data* address, not the tag-table
   address — "which access caused the tag fill" is the question.
   [line] is the data line index; one tag-cache line (32 B = 256 tag
   bits) covers 256 lines = 8 KB, so the tag-table line index is the
   data address divided by 256 then by the line size. *)
let tag_lookup t ~line ~write =
  let tag_line = line lsr 8 in
  match Cache.access_line t.tag_cache ~line:tag_line ~write with
  | Cache.Hit -> 0
  | Cache.Miss { writeback } ->
      t.tag_dram_accesses <- t.tag_dram_accesses + 1;
      t.dram_read_bytes <- t.dram_read_bytes + t.config.line_bytes;
      (match t.on_event with
      | None -> ()
      | Some f ->
          let addr = Int64.of_int (line lsl t.line_bits) in
          f Obs.Attrib.Tag_miss ~addr;
          f (Obs.Attrib.Dram_read t.config.line_bytes) ~addr);
      if writeback then begin
        t.dram_write_bytes <- t.dram_write_bytes + t.config.line_bytes;
        match t.on_event with
        | None -> ()
        | Some f ->
            f (Obs.Attrib.Dram_write t.config.line_bytes)
              ~addr:(Int64.of_int (line lsl t.line_bits))
      end;
      (* Fetched in parallel with the DRAM line fill; charge a single cycle. *)
      1

(* One L2 lookup (with its DRAM and tag-controller consequences) for data
   line index [line]. *)
let l2_access t ~line ~write =
  match Cache.access_line t.l2 ~line ~write with
  | Cache.Hit -> 0
  | Cache.Miss { writeback } ->
      t.dram_read_bytes <- t.dram_read_bytes + t.config.line_bytes;
      (match t.on_event with
      | None -> ()
      | Some f ->
          let addr = Int64.of_int (line lsl t.line_bits) in
          f Obs.Attrib.L2_miss ~addr;
          f (Obs.Attrib.Dram_read t.config.line_bytes) ~addr);
      if writeback then begin
        t.dram_write_bytes <- t.dram_write_bytes + t.config.line_bytes;
        match t.on_event with
        | None -> ()
        | Some f ->
            f (Obs.Attrib.Dram_write t.config.line_bytes)
              ~addr:(Int64.of_int (line lsl t.line_bits))
      end;
      1

(* Touch one line through L1 -> L2 -> DRAM, returning a cycle cost.
   [l1_ev] is the attribution class of a miss in [l1] (L1I vs L1D). *)
let line_access t ~l1 ~l1_ev ~line ~write =
  match Cache.access_line l1 ~line ~write with
  | Cache.Hit -> 0
  | Cache.Miss { writeback = l1_wb } ->
      let cost = ref t.config.l2_hit_cycles in
      (match t.on_event with
      | None -> ()
      | Some f -> f l1_ev ~addr:(Int64.of_int (line lsl t.line_bits)));
      if l1_wb then ignore (l2_access t ~line ~write:true);
      (match Cache.access_line t.l2 ~line ~write:false with
      | Cache.Hit -> ()
      | Cache.Miss { writeback } ->
          cost := !cost + t.config.dram_cycles;
          t.dram_read_bytes <- t.dram_read_bytes + t.config.line_bytes;
          (match t.on_event with
          | None -> ()
          | Some f ->
              let addr = Int64.of_int (line lsl t.line_bits) in
              f Obs.Attrib.L2_miss ~addr;
              f (Obs.Attrib.Dram_read t.config.line_bytes) ~addr);
          if writeback then begin
            t.dram_write_bytes <- t.dram_write_bytes + t.config.line_bytes;
            (match t.on_event with
            | None -> ()
            | Some f ->
                f (Obs.Attrib.Dram_write t.config.line_bytes)
                  ~addr:(Int64.of_int (line lsl t.line_bits)))
          end;
          cost := !cost + tag_lookup t ~line ~write);
      !cost

(* Hand-inlined TLB and L1 hit fast paths.  [access_insn]/[access_data]
   run once or twice per simulated instruction, so the call overhead of
   the layered dispatch (touch -> line_access -> access_line) is itself
   measurable.  Each helper replicates the corresponding fast branch of
   lib/mem/tlb.ml / lib/mem/cache.ml with byte-identical state updates;
   on [false] it has touched nothing and the caller runs the full layered
   path, so every access takes exactly the transitions the layers would
   make.  TLB hits fire no events, so [tlb_fast_hit] is safe with an
   observer attached; per-access Load/Store events make [access_data]
   skip its cache fast path when a probe is installed. *)

(* [Tlb.touch]'s first two branches: same page as the previous
   translation, or a verified residency-memo hit. *)
let tlb_fast_hit tlb p =
  if p = tlb.Tlb.last_vpn then begin
    tlb.Tlb.tick <- tlb.Tlb.tick + 1;
    tlb.Tlb.hits <- tlb.Tlb.hits + 1;
    Array.unsafe_set tlb.Tlb.slot_tick tlb.Tlb.last_slot tlb.Tlb.tick;
    true
  end
  else begin
    let mi = p land (Array.length tlb.Tlb.slot_memo_vpn - 1) in
    let mslot = Array.unsafe_get tlb.Tlb.slot_memo_slot mi in
    if
      Array.unsafe_get tlb.Tlb.slot_memo_vpn mi = p
      && Array.unsafe_get tlb.Tlb.slot_vpn mslot = p
    then begin
      tlb.Tlb.tick <- tlb.Tlb.tick + 1;
      tlb.Tlb.hits <- tlb.Tlb.hits + 1;
      Array.unsafe_set tlb.Tlb.slot_tick mslot tlb.Tlb.tick;
      tlb.Tlb.last_vpn <- p;
      tlb.Tlb.last_slot <- mslot;
      true
    end
    else false
  end

(* [Cache.access_line]'s MRU-front branch. *)
let l1_fast_hit l1 line write =
  if line = l1.Cache.mru_line then begin
    l1.Cache.tick <- l1.Cache.tick + 1;
    l1.Cache.hits <- l1.Cache.hits + 1;
    let w = l1.Cache.mru_way in
    w.Cache.lru <- l1.Cache.tick;
    if write then w.Cache.dirty <- true;
    true
  end
  else false

(* A data access of [size] bytes at [addr]; returns the cycle penalty beyond
   the single-cycle pipeline occupancy. *)
let access_data t ~addr ~size ~write =
  if write then begin
    t.stores <- t.stores + 1;
    t.store_bytes <- t.store_bytes + size
  end
  else begin
    t.loads <- t.loads + 1;
    t.load_bytes <- t.load_bytes + size
  end;
  (match t.on_event with
  | None -> ()
  | Some f -> f (if write then Obs.Attrib.Store size else Obs.Attrib.Load size) ~addr);
  let iaddr = Int64.to_int addr in
  let first = iaddr lsr t.line_bits in
  let last = (iaddr + max 1 size - 1) lsr t.line_bits in
  let tlb_cost =
    if tlb_fast_hit t.tlb (iaddr lsr Tlb.page_bits) then 0
    else if Tlb.touch t.tlb addr then 0
    else begin
      fire t Obs.Attrib.Tlb_miss ~addr;
      t.config.tlb_refill_cycles
    end
  in
  if
    first = last
    && (match t.on_event with None -> true | Some _ -> false)
    && l1_fast_hit t.l1d first write
  then tlb_cost
  else begin
    let cost = ref tlb_cost in
    for line = first to last do
      cost := !cost + line_access t ~l1:t.l1d ~l1_ev:Obs.Attrib.L1d_miss ~line ~write
    done;
    !cost
  end

let access_insn t ~addr =
  let iaddr = Int64.to_int addr in
  let line = iaddr lsr t.line_bits in
  let tlb_cost =
    if tlb_fast_hit t.tlb (iaddr lsr Tlb.page_bits) then 0
    else if Tlb.touch t.tlb addr then 0
    else begin
      fire t Obs.Attrib.Tlb_miss ~addr;
      t.config.tlb_refill_cycles
    end
  in
  if l1_fast_hit t.l1i line false then tlb_cost
  else tlb_cost + line_access t ~l1:t.l1i ~l1_ev:Obs.Attrib.L1i_miss ~line ~write:false

(* Deposit the hierarchy's internal statistics into an observability
   counter file (lib/obs).  This is the lib/mem half of the counter
   population: the model already counts every cache/TLB/tag event for
   its own reports, so the obs view reads the same accumulators rather
   than double-counting on the access path. *)
let fill_counters t (c : Obs.Counters.t) =
  let open Obs.Counters in
  set_int c loads t.loads;
  set_int c stores t.stores;
  set_int c load_bytes t.load_bytes;
  set_int c store_bytes t.store_bytes;
  set_int c l1i_hits t.l1i.Cache.hits;
  set_int c l1i_misses t.l1i.Cache.misses;
  set_int c l1d_hits t.l1d.Cache.hits;
  set_int c l1d_misses t.l1d.Cache.misses;
  set_int c l2_hits t.l2.Cache.hits;
  set_int c l2_misses t.l2.Cache.misses;
  set_int c tlb_hits t.tlb.Tlb.hits;
  set_int c tlb_misses t.tlb.Tlb.misses;
  set_int c tag_hits t.tag_cache.Cache.hits;
  set_int c tag_misses t.tag_cache.Cache.misses;
  set_int c tag_dram_fills t.tag_dram_accesses;
  set_int c dram_read_bytes t.dram_read_bytes;
  set_int c dram_write_bytes t.dram_write_bytes

let reset_stats t =
  Cache.reset_stats t.l1i;
  Cache.reset_stats t.l1d;
  Cache.reset_stats t.l2;
  Cache.reset_stats t.tag_cache;
  Tlb.reset_stats t.tlb;
  t.dram_read_bytes <- 0;
  t.dram_write_bytes <- 0;
  t.loads <- 0;
  t.stores <- 0;
  t.load_bytes <- 0;
  t.store_bytes <- 0;
  t.tag_dram_accesses <- 0

(* Snapshot/restore for the warm-server reset: compose the caches' and
   TLB's snapshots with the hierarchy's own traffic accumulators. *)
type snapshot = {
  s_l1i : Cache.snapshot;
  s_l1d : Cache.snapshot;
  s_l2 : Cache.snapshot;
  s_tag_cache : Cache.snapshot;
  s_tlb : Tlb.snapshot;
  s_dram_read_bytes : int;
  s_dram_write_bytes : int;
  s_loads : int;
  s_stores : int;
  s_load_bytes : int;
  s_store_bytes : int;
  s_tag_dram_accesses : int;
}

let snapshot t =
  {
    s_l1i = Cache.snapshot t.l1i;
    s_l1d = Cache.snapshot t.l1d;
    s_l2 = Cache.snapshot t.l2;
    s_tag_cache = Cache.snapshot t.tag_cache;
    s_tlb = Tlb.snapshot t.tlb;
    s_dram_read_bytes = t.dram_read_bytes;
    s_dram_write_bytes = t.dram_write_bytes;
    s_loads = t.loads;
    s_stores = t.stores;
    s_load_bytes = t.load_bytes;
    s_store_bytes = t.store_bytes;
    s_tag_dram_accesses = t.tag_dram_accesses;
  }

let restore t (s : snapshot) =
  Cache.restore t.l1i s.s_l1i;
  Cache.restore t.l1d s.s_l1d;
  Cache.restore t.l2 s.s_l2;
  Cache.restore t.tag_cache s.s_tag_cache;
  Tlb.restore t.tlb s.s_tlb;
  t.dram_read_bytes <- s.s_dram_read_bytes;
  t.dram_write_bytes <- s.s_dram_write_bytes;
  t.loads <- s.s_loads;
  t.stores <- s.s_stores;
  t.load_bytes <- s.s_load_bytes;
  t.store_bytes <- s.s_store_bytes;
  t.tag_dram_accesses <- s.s_tag_dram_accesses

let pp_stats ppf t =
  Fmt.pf ppf "@[<v>%a@,%a@,%a@,%a@,TLB: %d hits, %d misses@,DRAM: %d B read, %d B written (%d tag fills)@]"
    Cache.pp_stats t.l1i Cache.pp_stats t.l1d Cache.pp_stats t.l2
    Cache.pp_stats t.tag_cache t.tlb.Tlb.hits t.tlb.Tlb.misses t.dram_read_bytes
    t.dram_write_bytes t.tag_dram_accesses
