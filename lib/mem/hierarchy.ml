(* The BERI/CHERI memory hierarchy performance model.

   Mirrors the FPGA prototype of Sections 4 and 8: split 16 KB L1 caches,
   a 64 KB L2, 32-byte lines, a TLB covering 1 MB, and a tag controller
   below the L2 with an 8 KB tag cache.  Access functions return a cycle
   cost and accumulate DRAM traffic statistics; data itself moves through
   [Phys] separately.  All capacities and penalties are configurable so
   benches can run ablations. *)

type config = {
  l1_size : int;
  l2_size : int;
  line_bytes : int;
  assoc : int;
  tlb_entries : int;
  tag_cache_size : int; (* bytes of tag SRAM; each byte covers 8 lines *)
  l2_hit_cycles : int; (* L1 miss, L2 hit *)
  dram_cycles : int; (* L2 miss *)
  tlb_refill_cycles : int; (* software TLB refill *)
}

let default_config =
  {
    l1_size = 16 * 1024;
    l2_size = 64 * 1024;
    line_bytes = 32;
    assoc = 4;
    tlb_entries = 256;
    tag_cache_size = 8 * 1024;
    (* Penalties in cycles of a 100 MHz FPGA soft core (Section 4): DRAM
       at ~120 ns is only ~12 cycles away, which is why the paper's
       worst-case slowdowns stay modest. *)
    l2_hit_cycles = 4;
    dram_cycles = 12;
    tlb_refill_cycles = 30;
  }

type t = {
  config : config;
  l1i : Cache.t;
  l1d : Cache.t;
  l2 : Cache.t;
  tag_cache : Cache.t;
  tlb : Tlb.t;
  mutable dram_read_bytes : int;
  mutable dram_write_bytes : int;
  mutable loads : int;
  mutable stores : int;
  mutable load_bytes : int;
  mutable store_bytes : int;
  mutable tag_dram_accesses : int;
  mutable on_event : (Obs.Attrib.event -> addr:int64 -> unit) option;
      (* the widened observability probe: every miss, DRAM transfer, and
         data access is reported with its address.  [None] (the default)
         costs one pattern match per event; the machine installs a
         closure that adds the in-flight PC and feeds [Obs.Attrib].
         Purely an observer — firing never changes costs or state. *)
}

let create ?(config = default_config) () =
  {
    config;
    l1i = Cache.create ~name:"L1I" ~size_bytes:config.l1_size ~line_bytes:config.line_bytes ~assoc:config.assoc;
    l1d = Cache.create ~name:"L1D" ~size_bytes:config.l1_size ~line_bytes:config.line_bytes ~assoc:config.assoc;
    l2 = Cache.create ~name:"L2" ~size_bytes:config.l2_size ~line_bytes:config.line_bytes ~assoc:config.assoc;
    tag_cache = Cache.create ~name:"TagCache" ~size_bytes:config.tag_cache_size ~line_bytes:config.line_bytes ~assoc:config.assoc;
    tlb = Tlb.create ~entries:config.tlb_entries ();
    dram_read_bytes = 0;
    dram_write_bytes = 0;
    loads = 0;
    stores = 0;
    load_bytes = 0;
    store_bytes = 0;
    tag_dram_accesses = 0;
    on_event = None;
  }

(* Report one observability event at [addr]; free when no probe is attached. *)
let fire t ev ~addr = match t.on_event with None -> () | Some f -> f ev ~addr

(* Tag controller: each DRAM transaction consults the tag table; the 8 KB
   tag cache covers 2 MB of memory (one bit per 32-byte line), so misses
   are rare (the paper: "does not noticeably degrade performance").
   Attribution events carry the *data* address, not the tag-table
   address — "which access caused the tag fill" is the question. *)
let tag_lookup t ~addr ~write =
  (* One tag-cache line (32 B = 256 tag bits) covers 256 lines = 8 KB. *)
  let tag_addr = Int64.div addr 256L in
  match Cache.access t.tag_cache ~addr:tag_addr ~write with
  | Cache.Hit -> 0
  | Cache.Miss { writeback } ->
      t.tag_dram_accesses <- t.tag_dram_accesses + 1;
      t.dram_read_bytes <- t.dram_read_bytes + t.config.line_bytes;
      fire t Obs.Attrib.Tag_miss ~addr;
      fire t (Obs.Attrib.Dram_read t.config.line_bytes) ~addr;
      if writeback then begin
        t.dram_write_bytes <- t.dram_write_bytes + t.config.line_bytes;
        fire t (Obs.Attrib.Dram_write t.config.line_bytes) ~addr
      end;
      (* Fetched in parallel with the DRAM line fill; charge a single cycle. *)
      1

(* Touch one line through L1 -> L2 -> DRAM, returning a cycle cost.
   [l1_ev] is the attribution class of a miss in [l1] (L1I vs L1D). *)
let line_access t ~l1 ~l1_ev ~addr ~write =
  match Cache.access l1 ~addr ~write with
  | Cache.Hit -> 0
  | Cache.Miss { writeback = l1_wb } ->
      let cost = ref t.config.l2_hit_cycles in
      fire t l1_ev ~addr;
      if l1_wb then begin
        match Cache.access t.l2 ~addr ~write:true with
        | Cache.Hit -> ()
        | Cache.Miss { writeback } ->
            t.dram_read_bytes <- t.dram_read_bytes + t.config.line_bytes;
            fire t Obs.Attrib.L2_miss ~addr;
            fire t (Obs.Attrib.Dram_read t.config.line_bytes) ~addr;
            if writeback then begin
              t.dram_write_bytes <- t.dram_write_bytes + t.config.line_bytes;
              fire t (Obs.Attrib.Dram_write t.config.line_bytes) ~addr
            end
      end;
      (match Cache.access t.l2 ~addr ~write:false with
      | Cache.Hit -> ()
      | Cache.Miss { writeback } ->
          cost := !cost + t.config.dram_cycles;
          t.dram_read_bytes <- t.dram_read_bytes + t.config.line_bytes;
          fire t Obs.Attrib.L2_miss ~addr;
          fire t (Obs.Attrib.Dram_read t.config.line_bytes) ~addr;
          if writeback then begin
            t.dram_write_bytes <- t.dram_write_bytes + t.config.line_bytes;
            fire t (Obs.Attrib.Dram_write t.config.line_bytes) ~addr
          end;
          cost := !cost + tag_lookup t ~addr ~write);
      !cost

(* A data access of [size] bytes at [addr]; returns the cycle penalty beyond
   the single-cycle pipeline occupancy. *)
let access_data t ~addr ~size ~write =
  if write then begin
    t.stores <- t.stores + 1;
    t.store_bytes <- t.store_bytes + size;
    fire t (Obs.Attrib.Store size) ~addr
  end
  else begin
    t.loads <- t.loads + 1;
    t.load_bytes <- t.load_bytes + size;
    fire t (Obs.Attrib.Load size) ~addr
  end;
  let tlb_cost =
    if Tlb.touch t.tlb addr then 0
    else begin
      fire t Obs.Attrib.Tlb_miss ~addr;
      t.config.tlb_refill_cycles
    end
  in
  List.fold_left
    (fun acc line -> acc + line_access t ~l1:t.l1d ~l1_ev:Obs.Attrib.L1d_miss ~addr:line ~write)
    tlb_cost
    (Cache.lines_spanned t.l1d ~addr ~size)

let access_insn t ~addr =
  let tlb_cost =
    if Tlb.touch t.tlb addr then 0
    else begin
      fire t Obs.Attrib.Tlb_miss ~addr;
      t.config.tlb_refill_cycles
    end
  in
  tlb_cost + line_access t ~l1:t.l1i ~l1_ev:Obs.Attrib.L1i_miss ~addr ~write:false

(* Deposit the hierarchy's internal statistics into an observability
   counter file (lib/obs).  This is the lib/mem half of the counter
   population: the model already counts every cache/TLB/tag event for
   its own reports, so the obs view reads the same accumulators rather
   than double-counting on the access path. *)
let fill_counters t (c : Obs.Counters.t) =
  let open Obs.Counters in
  set_int c loads t.loads;
  set_int c stores t.stores;
  set_int c load_bytes t.load_bytes;
  set_int c store_bytes t.store_bytes;
  set_int c l1i_hits t.l1i.Cache.hits;
  set_int c l1i_misses t.l1i.Cache.misses;
  set_int c l1d_hits t.l1d.Cache.hits;
  set_int c l1d_misses t.l1d.Cache.misses;
  set_int c l2_hits t.l2.Cache.hits;
  set_int c l2_misses t.l2.Cache.misses;
  set_int c tlb_hits t.tlb.Tlb.hits;
  set_int c tlb_misses t.tlb.Tlb.misses;
  set_int c tag_hits t.tag_cache.Cache.hits;
  set_int c tag_misses t.tag_cache.Cache.misses;
  set_int c tag_dram_fills t.tag_dram_accesses;
  set_int c dram_read_bytes t.dram_read_bytes;
  set_int c dram_write_bytes t.dram_write_bytes

let reset_stats t =
  Cache.reset_stats t.l1i;
  Cache.reset_stats t.l1d;
  Cache.reset_stats t.l2;
  Cache.reset_stats t.tag_cache;
  Tlb.reset_stats t.tlb;
  t.dram_read_bytes <- 0;
  t.dram_write_bytes <- 0;
  t.loads <- 0;
  t.stores <- 0;
  t.load_bytes <- 0;
  t.store_bytes <- 0;
  t.tag_dram_accesses <- 0

let pp_stats ppf t =
  Fmt.pf ppf "@[<v>%a@,%a@,%a@,%a@,TLB: %d hits, %d misses@,DRAM: %d B read, %d B written (%d tag fills)@]"
    Cache.pp_stats t.l1i Cache.pp_stats t.l1d Cache.pp_stats t.l2
    Cache.pp_stats t.tag_cache t.tlb.Tlb.hits t.tlb.Tlb.misses t.dram_read_bytes
    t.dram_write_bytes t.tag_dram_accesses
