(* A set-associative, write-back, write-allocate cache model with LRU
   replacement.  Purely a performance model: data lives in [Phys]; the
   cache tracks only which lines are resident, so it can be driven by both
   the machine and the trace-replay simulators.

   The model sits on the simulator's per-instruction path (every fetch and
   every data access touches it), so [access] is engineered to be
   allocation-free: geometry is restricted to powers of two and indexing
   is native-int shift/mask (no boxed [Int64.div]/[unsigned_rem]), way
   search and victim selection are loops over the set (no intermediate
   lists), and the two possible [Miss] outcomes are preallocated
   constants. *)

type line = { mutable tag : int; mutable valid : bool; mutable dirty : bool; mutable lru : int }

type t = {
  name : string;
  line_bytes : int;
  sets : int;
  assoc : int;
  line_bits : int; (* log2 line_bytes: addr -> line index by shift *)
  set_bits : int; (* log2 sets: line index -> (set, tag) by mask/shift *)
  data : line array array; (* [set].[way] *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
  (* One-line MRU front: the line index touched by the previous access
     and the way holding it.  Sequential fetch and streaming data runs
     hit the same line many times in a row; the front turns those
     repeats into one compare + the same counter/LRU updates the full
     way search would make, bit-exactly.  [mru_way] always backs
     [mru_line] because every access (including the eviction of that
     way) re-points the front at its own line.  -1 = empty. *)
  mutable mru_line : int;
  mutable mru_way : line;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

(* log2 of a power of two. *)
let log2 n =
  let rec go b v = if v <= 1 then b else go (b + 1) (v lsr 1) in
  go 0 n

let create ~name ~size_bytes ~line_bytes ~assoc =
  if line_bytes <= 0 || assoc <= 0 || size_bytes mod (line_bytes * assoc) <> 0 then
    invalid_arg
      (Printf.sprintf "Cache.create %s: size %d B is not a multiple of line_bytes*assoc = %d*%d"
         name size_bytes line_bytes assoc);
  if not (is_pow2 line_bytes) then
    invalid_arg
      (Printf.sprintf
         "Cache.create %s: line_bytes %d is not a power of two (required by shift/mask indexing)"
         name line_bytes);
  let sets = size_bytes / (line_bytes * assoc) in
  if not (is_pow2 sets) then
    invalid_arg
      (Printf.sprintf
         "Cache.create %s: derived set count %d (= %d B / (%d B lines x %d ways)) is not a \
          power of two (required by shift/mask indexing)"
         name sets size_bytes line_bytes assoc);
  {
    name;
    line_bytes;
    sets;
    assoc;
    line_bits = log2 line_bytes;
    set_bits = log2 sets;
    data =
      Array.init sets (fun _ ->
          Array.init assoc (fun _ -> { tag = 0; valid = false; dirty = false; lru = 0 }));
    tick = 0;
    hits = 0;
    misses = 0;
    writebacks = 0;
    mru_line = -1;
    mru_way = { tag = 0; valid = false; dirty = false; lru = 0 };
  }

let size_bytes t = t.sets * t.assoc * t.line_bytes

(* Line index of an address: the unit the hierarchy iterates over.
   Physical addresses fit a native int (63 bits), so this is a plain
   shift. *)
let line_index t addr = Int64.to_int addr lsr t.line_bits

(* Result of touching one line. *)
type outcome = Hit | Miss of { writeback : bool }

(* Preallocated outcomes: [access] never allocates. *)
let miss_clean = Miss { writeback = false }
let miss_writeback = Miss { writeback = true }

(* [access_line t ~line ~write] touches line index [line] (= addr /
   line_bytes).  On a miss the first invalid way — or, with the set full,
   the least-recently-used way — is evicted (recording a writeback if it
   was dirty) and the new line installed. *)
let access_line_slow t ~line ~write =
  t.tick <- t.tick + 1;
  let set = t.data.(line land (t.sets - 1)) in
  let tag = line lsr t.set_bits in
  let n = t.assoc in
  let rec find i =
    if i >= n then -1
    else
      let l = Array.unsafe_get set i in
      if l.valid && l.tag = tag then i else find (i + 1)
  in
  let way = find 0 in
  if way >= 0 then begin
    let l = Array.unsafe_get set way in
    t.hits <- t.hits + 1;
    l.lru <- t.tick;
    if write then l.dirty <- true;
    t.mru_line <- line;
    t.mru_way <- l;
    Hit
  end
  else begin
    t.misses <- t.misses + 1;
    (* Prefer the first invalid way; otherwise evict the least recently
       used (earliest way wins ties, matching the reference fold). *)
    let rec pick i best =
      if i >= n then best
      else
        let l = Array.unsafe_get set i in
        if not l.valid then l
        else pick (i + 1) (if l.lru < best.lru then l else best)
    in
    let w0 = Array.unsafe_get set 0 in
    let v = if not w0.valid then w0 else pick 1 w0 in
    let writeback = v.valid && v.dirty in
    if writeback then t.writebacks <- t.writebacks + 1;
    v.valid <- true;
    v.dirty <- write;
    v.tag <- tag;
    v.lru <- t.tick;
    (* Installing may have evicted the way behind the front; re-pointing
       the front at the line just installed restores the invariant. *)
    t.mru_line <- line;
    t.mru_way <- v;
    if writeback then miss_writeback else miss_clean
  end

let access_line t ~line ~write =
  if line = t.mru_line then begin
    (* MRU-front hit: same line as the previous access, still resident by
       the front invariant (every access, including the eviction of the
       fronted way, re-points the front at its own line).  Counter and
       LRU updates are exactly the full hit path's. *)
    t.tick <- t.tick + 1;
    let l = t.mru_way in
    t.hits <- t.hits + 1;
    l.lru <- t.tick;
    if write then l.dirty <- true;
    Hit
  end
  else access_line_slow t ~line ~write

(* [access t ~addr ~write] touches the line containing [addr]. *)
let access t ~addr ~write = access_line t ~line:(line_index t addr) ~write

(* Lines touched by a [size]-byte access at [addr].  Kept for external
   consumers; the hierarchy's hot path iterates line indices directly
   instead of building this list. *)
let lines_spanned t ~addr ~size =
  let first = line_index t addr in
  let last = line_index t (Int64.add addr (Int64.of_int (max 1 size - 1))) in
  let rec go acc l =
    if l < first then acc else go (Int64.of_int (l lsl t.line_bits) :: acc) (l - 1)
  in
  go [] last

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.writebacks <- 0

let flush t =
  Array.iter (Array.iter (fun l -> l.valid <- false; l.dirty <- false)) t.data;
  t.mru_line <- -1

(* Snapshot/restore for the warm-server reset: residency, tags, dirty
   bits, LRU order, and stats are captured into flat int arrays (one
   copy, no per-line allocation on restore) and written back in place.
   The MRU front is emptied like [flush] does — the next access takes
   the full way search, which makes identical counter and LRU updates,
   so replay after restore is bit-exact. *)
type snapshot = {
  s_tag : int array; (* [set * assoc + way] *)
  s_lru : int array;
  s_flags : Bytes.t; (* bit0 valid, bit1 dirty *)
  s_tick : int;
  s_hits : int;
  s_misses : int;
  s_writebacks : int;
}

let snapshot t =
  let n = t.sets * t.assoc in
  let s_tag = Array.make n 0 and s_lru = Array.make n 0 and s_flags = Bytes.make n '\000' in
  for s = 0 to t.sets - 1 do
    let set = t.data.(s) in
    for w = 0 to t.assoc - 1 do
      let l = set.(w) in
      let i = (s * t.assoc) + w in
      s_tag.(i) <- l.tag;
      s_lru.(i) <- l.lru;
      Bytes.unsafe_set s_flags i
        (Char.unsafe_chr ((if l.valid then 1 else 0) lor if l.dirty then 2 else 0))
    done
  done;
  { s_tag; s_lru; s_flags; s_tick = t.tick; s_hits = t.hits; s_misses = t.misses; s_writebacks = t.writebacks }

let restore t (s : snapshot) =
  for set = 0 to t.sets - 1 do
    let ways = t.data.(set) in
    for w = 0 to t.assoc - 1 do
      let l = ways.(w) in
      let i = (set * t.assoc) + w in
      let f = Char.code (Bytes.unsafe_get s.s_flags i) in
      l.tag <- s.s_tag.(i);
      l.lru <- s.s_lru.(i);
      l.valid <- f land 1 <> 0;
      l.dirty <- f land 2 <> 0
    done
  done;
  t.tick <- s.s_tick;
  t.hits <- s.s_hits;
  t.misses <- s.s_misses;
  t.writebacks <- s.s_writebacks;
  t.mru_line <- -1

let pp_stats ppf t =
  let total = t.hits + t.misses in
  Fmt.pf ppf "%s: %d accesses, %d misses (%.2f%%), %d writebacks" t.name total
    t.misses
    (if total = 0 then 0.0 else 100.0 *. float_of_int t.misses /. float_of_int total)
    t.writebacks
