(** Address translation: a page table plus a TLB-reach model.

    The model uses identity virtual-to-physical mapping; what matters
    architecturally is (a) per-page permissions, including the CHERI page
    table extension bits authorising capability loads and stores (§6.1),
    and (b) TLB reach — Figure 5's steps come from a TLB covering 1 MB
    (256 x 4 KB entries), reproduced by counting hits and misses over a
    fully-associative LRU entry set.

    The hot paths are allocation-free: {!touch} fronts its VPN -> slot
    hashtable with a one-entry last-translation cache and scans an int
    array for the LRU victim; {!protection} memoises page-table lookups
    in a small direct-mapped array invalidated on {!map}/{!unmap}.
    Replacement is true LRU with unique ticks, so hit/miss counts are
    bit-exact with the reference implementation. *)

val page_bits : int
val page_bytes : int

type prot = {
  valid : bool;
  writable : bool;
  executable : bool;
  cap_load : bool;  (** CHERI PTE extension: authorise capability loads *)
  cap_store : bool;  (** ... and capability stores *)
}

val prot_none : prot

(** Read/write/execute plus both capability bits. *)
val prot_rwx : prot

type t = {
  entries : int;
  table : (int, prot) Hashtbl.t;
  slot_of : (int, int) Hashtbl.t;
  slot_vpn : int array;
  slot_tick : int array;
  mutable used : int;
  mutable last_vpn : int;
  mutable last_slot : int;
  prot_vpn : int array;
  prot_val : prot array;
  slot_memo_vpn : int array;
  slot_memo_slot : int array;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable version : int;
}

val create : ?entries:int -> unit -> t

(** Map (or remap) the pages covering [vaddr, vaddr+len). *)
val map : t -> vaddr:int64 -> len:int -> prot -> unit

val unmap : t -> vaddr:int64 -> len:int -> unit

(** Protections of the page containing the address ({!prot_none} when
    unmapped). *)
val protection : t -> int64 -> prot

(** Touch the TLB for a translation; [false] = miss (LRU refill
    modelled). *)
val touch : t -> int64 -> bool

val flush : t -> unit
val reset_stats : t -> unit
val mapped_pages : t -> int

(** {1 Snapshot / restore} — architectural state (page table, residency,
    LRU ticks, stats) restored exactly; host-only memos are emptied,
    which is bit-exact because the slow paths they front make identical
    hit/miss decisions and counter updates. *)

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
