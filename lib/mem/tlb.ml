(* Address translation: a page table plus a TLB reach model.

   The reproduction uses identity virtual-to-physical mapping (each process
   image is loaded at its virtual addresses), so what matters
   architecturally is (a) per-page permissions — including the CHERI page
   table extension bits that authorise capability loads and stores
   (Section 6.1) — and (b) TLB reach: the paper's Figure 5 'steps' come
   from a TLB covering 1 MB (256 entries x 4 KB), which this model
   reproduces by counting hits and misses over a fully-associative LRU
   entry set.

   The TLB is consulted at least twice per simulated instruction (I-fetch
   and any data access), so the hot paths are engineered to be
   allocation-free:

   - [touch] keeps a one-entry last-translation cache (same page as the
     previous translation: two int compares, no hashing) in front of a
     VPN -> slot hashtable; residency ticks live in a plain int array so
     the LRU victim scan on a miss is an array minimum instead of an
     allocating [Hashtbl.fold].
   - [protection] memoises page-table lookups in a small direct-mapped
     array keyed by VPN, invalidated whole on [map]/[unmap]; the common
     case is two array reads and an int compare.

   Replacement decisions are identical to the reference model (true LRU,
   ticks are unique so there are no ties): hit/miss counters are
   bit-exact with the pre-optimisation implementation. *)

let page_bits = 12
let page_bytes = 1 lsl page_bits

type prot = {
  valid : bool;
  writable : bool;
  executable : bool;
  cap_load : bool; (* CHERI PTE extension: authorise capability loads *)
  cap_store : bool; (* ... and capability stores *)
}

let prot_none = { valid = false; writable = false; executable = false; cap_load = false; cap_store = false }
let prot_rwx = { valid = true; writable = true; executable = true; cap_load = true; cap_store = true }

(* Direct-mapped [protection] memo size; indexed by the low VPN bits. *)
let prot_memo_slots = 64

(* Direct-mapped VPN -> residency-slot memo size.  The one-entry
   last-translation cache in [touch] dies under I/D ping-pong (every
   instruction translates the code page, then its data access translates
   a data page), sending every fetch through the hashtable; a small
   direct-mapped memo keeps both pages' slots one compare away.  Entries
   are verified against [slot_vpn] before use, so stale ones (slot since
   evicted or reused) fall through to the hashtable — hit/miss decisions
   and LRU updates stay bit-exact. *)
let slot_memo_slots = 64

type t = {
  entries : int; (* TLB capacity in page entries *)
  table : (int, prot) Hashtbl.t; (* the page table: VPN -> protections *)
  slot_of : (int, int) Hashtbl.t; (* resident VPN -> slot index *)
  slot_vpn : int array; (* slot -> VPN (valid for slots < used) *)
  slot_tick : int array; (* slot -> last-use tick, the LRU order *)
  mutable used : int; (* live slots; eviction starts at [entries] *)
  mutable last_vpn : int; (* one-entry last-translation cache (-1 empty) *)
  mutable last_slot : int;
  prot_vpn : int array; (* protection memo: VPN per memo slot (-1 empty) *)
  prot_val : prot array;
  slot_memo_vpn : int array; (* residency memo: VPN per memo slot (-1 empty) *)
  slot_memo_slot : int array; (* ... and the TLB slot it mapped to *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable version : int; (* bumped by map/unmap; lets restore skip the
                            page-table copy when mappings never changed *)
}

let create ?(entries = 256) () =
  {
    entries;
    table = Hashtbl.create 1024;
    slot_of = Hashtbl.create 512;
    slot_vpn = Array.make entries (-1);
    slot_tick = Array.make entries 0;
    used = 0;
    last_vpn = -1;
    last_slot = -1;
    prot_vpn = Array.make prot_memo_slots (-1);
    prot_val = Array.make prot_memo_slots prot_none;
    slot_memo_vpn = Array.make slot_memo_slots (-1);
    slot_memo_slot = Array.make slot_memo_slots 0;
    tick = 0;
    hits = 0;
    misses = 0;
    version = 0;
  }

(* Addresses are below 2^63, so the VPN fits a native int. *)
let vpn addr = Int64.to_int addr lsr page_bits

let invalidate_prot_memo t = Array.fill t.prot_vpn 0 prot_memo_slots (-1)

let map t ~vaddr ~len prot =
  let first = vpn vaddr in
  let last = vpn (Int64.add vaddr (Int64.of_int (max 1 len - 1))) in
  for p = first to last do
    Hashtbl.replace t.table p prot
  done;
  t.version <- t.version + 1;
  invalidate_prot_memo t

let protection t vaddr =
  let p = vpn vaddr in
  let i = p land (prot_memo_slots - 1) in
  if Array.unsafe_get t.prot_vpn i = p then Array.unsafe_get t.prot_val i
  else begin
    let pr = match Hashtbl.find_opt t.table p with Some pr -> pr | None -> prot_none in
    Array.unsafe_set t.prot_vpn i p;
    Array.unsafe_set t.prot_val i pr;
    pr
  end

(* Touch the TLB for a translation; returns [true] on a TLB hit.  On a miss
   the least-recently-used entry is evicted (modelling the software refill
   the timing model charges for). *)
let touch t vaddr =
  t.tick <- t.tick + 1;
  let p = vpn vaddr in
  if p = t.last_vpn then begin
    (* Same page as the previous translation: resident by construction. *)
    t.hits <- t.hits + 1;
    Array.unsafe_set t.slot_tick t.last_slot t.tick;
    true
  end
  else begin
    let mi = p land (slot_memo_slots - 1) in
    let mslot = Array.unsafe_get t.slot_memo_slot mi in
    if Array.unsafe_get t.slot_memo_vpn mi = p && Array.unsafe_get t.slot_vpn mslot = p
    then begin
      (* Memoised residency, verified still live: same updates as the
         hashtable hit below. *)
      t.hits <- t.hits + 1;
      Array.unsafe_set t.slot_tick mslot t.tick;
      t.last_vpn <- p;
      t.last_slot <- mslot;
      true
    end
    else
      match Hashtbl.find t.slot_of p with
      | slot ->
          t.hits <- t.hits + 1;
          t.slot_tick.(slot) <- t.tick;
          t.last_vpn <- p;
          t.last_slot <- slot;
          t.slot_memo_vpn.(mi) <- p;
          t.slot_memo_slot.(mi) <- slot;
          true
      | exception Not_found ->
        t.misses <- t.misses + 1;
        let slot =
          if t.used >= t.entries then begin
            (* Evict true LRU: the minimum tick (ticks are unique). *)
            let best = ref 0 in
            for i = 1 to t.entries - 1 do
              if t.slot_tick.(i) < t.slot_tick.(!best) then best := i
            done;
            Hashtbl.remove t.slot_of t.slot_vpn.(!best);
            !best
          end
          else begin
            let s = t.used in
            t.used <- t.used + 1;
            s
          end
        in
        t.slot_vpn.(slot) <- p;
        t.slot_tick.(slot) <- t.tick;
        Hashtbl.replace t.slot_of p slot;
        t.last_vpn <- p;
        t.last_slot <- slot;
        t.slot_memo_vpn.(mi) <- p;
        t.slot_memo_slot.(mi) <- slot;
        false
  end

let flush t =
  Hashtbl.reset t.slot_of;
  Array.fill t.slot_vpn 0 t.entries (-1);
  t.used <- 0;
  t.last_vpn <- -1;
  t.last_slot <- -1

(* Drop a page from residency: move the last live slot into the hole so
   slots [0, used) stay dense (membership and ticks are preserved, so LRU
   decisions are unaffected). *)
let evict_page t p =
  match Hashtbl.find_opt t.slot_of p with
  | None -> ()
  | Some slot ->
      Hashtbl.remove t.slot_of p;
      let last = t.used - 1 in
      if slot <> last then begin
        let moved = t.slot_vpn.(last) in
        t.slot_vpn.(slot) <- moved;
        t.slot_tick.(slot) <- t.slot_tick.(last);
        Hashtbl.replace t.slot_of moved slot
      end;
      t.slot_vpn.(last) <- -1;
      t.used <- last;
      if t.last_vpn = p then begin
        t.last_vpn <- -1;
        t.last_slot <- -1
      end
      else if t.last_slot = last then t.last_slot <- slot

let unmap t ~vaddr ~len =
  let first = vpn vaddr in
  let last = vpn (Int64.add vaddr (Int64.of_int (max 1 len - 1))) in
  for p = first to last do
    Hashtbl.remove t.table p;
    evict_page t p
  done;
  t.version <- t.version + 1;
  invalidate_prot_memo t

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

let mapped_pages t = Hashtbl.length t.table

(* Snapshot/restore for the warm-server reset.  Architectural state
   (page table, residency set, LRU ticks, hit/miss stats) is restored
   exactly; the host-only fast paths (last-translation cache, residency
   and protection memos) are merely emptied — a memo miss takes the slow
   path, which performs the identical hit/miss decision, counter update,
   and LRU tick write, so replay after restore is bit-exact.  The page
   table copy is skipped on restore when [version] shows no map/unmap
   happened since the snapshot (the common case: servers never remap). *)
type snapshot = {
  s_version : int;
  s_table : (int, prot) Hashtbl.t;
  s_slot_of : (int, int) Hashtbl.t;
  s_slot_vpn : int array;
  s_slot_tick : int array;
  s_used : int;
  s_tick : int;
  s_hits : int;
  s_misses : int;
}

let snapshot t =
  {
    s_version = t.version;
    s_table = Hashtbl.copy t.table;
    s_slot_of = Hashtbl.copy t.slot_of;
    s_slot_vpn = Array.copy t.slot_vpn;
    s_slot_tick = Array.copy t.slot_tick;
    s_used = t.used;
    s_tick = t.tick;
    s_hits = t.hits;
    s_misses = t.misses;
  }

let restore t (s : snapshot) =
  if t.version <> s.s_version then begin
    Hashtbl.reset t.table;
    Hashtbl.iter (fun k v -> Hashtbl.replace t.table k v) s.s_table;
    t.version <- s.s_version
  end;
  Hashtbl.reset t.slot_of;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.slot_of k v) s.s_slot_of;
  Array.blit s.s_slot_vpn 0 t.slot_vpn 0 t.entries;
  Array.blit s.s_slot_tick 0 t.slot_tick 0 t.entries;
  t.used <- s.s_used;
  t.tick <- s.s_tick;
  t.hits <- s.s_hits;
  t.misses <- s.s_misses;
  t.last_vpn <- -1;
  t.last_slot <- -1;
  invalidate_prot_memo t;
  Array.fill t.slot_memo_vpn 0 slot_memo_slots (-1)
