(* The capability tag table (Section 4.2).

   CHERI tags *physical* memory: one tag bit per 256-bit (32-byte) line,
   i.e. 4 MB of tag space per gigabyte.  A tag manager below the last-level
   cache associates each transaction with its tag.  The architectural
   rules, enforced here:

     - a capability store with a valid tag sets the line's tag;
     - a capability store of an untagged register leaves the tag clear
       (capability registers may carry plain data — this is what lets
       memcpy move mixed data/capability structures);
     - ANY other store to the line clears the tag, protecting capability
       integrity against forgery through data writes. *)

type t = {
  bits : Bytes.t;
  mem_size : int;
  line_bytes : int;
  mutable on_write : (set:bool -> addr:int64 -> unit) option;
      (* observability hook: every architectural tag write (capability
         store sets or clears; general-purpose store clears) is reported
         with the data address.  [None] (the default) costs one pattern
         match; purely an observer — never changes the tag bits. *)
}

(* Default tag granularity: one bit per 256-bit (32-byte) line; a 128-bit
   capability machine tags 16-byte lines instead. *)
let line_bytes = 32

let create ?(line_bytes = line_bytes) ~mem_size () =
  {
    bits = Bytes.make (((mem_size / line_bytes) + 7) / 8) '\000';
    mem_size;
    line_bytes;
    on_write = None;
  }

let line_index t addr = Int64.to_int (Int64.div addr (Int64.of_int t.line_bytes))
let granularity t = t.line_bytes

let get t addr =
  let i = line_index t addr in
  Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set_bit t i v =
  let b = Char.code (Bytes.get t.bits (i lsr 3)) in
  let b = if v then b lor (1 lsl (i land 7)) else b land lnot (1 lsl (i land 7)) in
  Bytes.set t.bits (i lsr 3) (Char.chr b)

let set_on_write t f = t.on_write <- f
let fire t ~set ~addr = match t.on_write with None -> () | Some f -> f ~set ~addr

let set t addr v =
  set_bit t (line_index t addr) v;
  fire t ~set:v ~addr

(* Clear the tags of every line overlapped by a [size]-byte store at [addr]:
   the consequence of a general-purpose (non-capability) store.  One
   [on_write] event fires per store, not per line — attribution counts
   architectural tag writes, not bit flips. *)
let clear_range t addr size =
  let first = line_index t addr in
  let last = line_index t (Int64.add addr (Int64.of_int (size - 1))) in
  for i = first to last do
    set_bit t i false
  done;
  fire t ~set:false ~addr

(* Snapshot/restore for the warm-server reset: the tag table is tiny
   (one bit per line, a few KiB for a 16 MiB machine) so the snapshot is
   a plain copy; restore follows the physical memory's dirty-page list,
   blitting back the byte range of tag bits covering each dirty page.
   With line_bytes >= 16 and 4 KiB pages each page covers a whole number
   of tag bytes, so the blit is byte-aligned; the arithmetic clamps for
   safety anyway. *)
type snapshot = Bytes.t

let snapshot t = Bytes.copy t.bits

let restore_page t (snap : snapshot) ~page_bytes p =
  let lines_per_page = page_bytes / t.line_bytes in
  let first_bit = p * lines_per_page in
  let first = first_bit lsr 3 in
  let last = (first_bit + lines_per_page - 1) lsr 3 in
  let last = min last (Bytes.length t.bits - 1) in
  if first <= last then Bytes.blit snap first t.bits first (last - first + 1)

let restore_all t (snap : snapshot) = Bytes.blit snap 0 t.bits 0 (Bytes.length t.bits)

let count_set t =
  let n = ref 0 in
  Bytes.iter
    (fun c ->
      let c = Char.code c in
      for b = 0 to 7 do
        if c land (1 lsl b) <> 0 then incr n
      done)
    t.bits;
  !n
