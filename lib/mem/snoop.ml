(* Store-snoop coherence filter for translated code.

   The machine's superblock tier caches pre-decoded straight-line regions
   of the instruction stream.  Like a hardware trace cache, those copies
   must be kept coherent with the memory image: a store that lands inside
   a translated region has to retire the translation before it can next
   execute.  This module is the filter in front of that (expensive)
   retirement: it tracks a conservative over-approximation — the convex
   hull, as physical byte addresses, of every region translated since the
   last flush — so the per-store probe is two integer compares and almost
   never fires for ordinary data traffic (code and data live in disjoint
   address ranges in every workload this machine runs).

   False positives (a store between two translated regions) cost a
   redundant flush, never correctness; false negatives cannot occur
   because [cover] is called for every translation. *)

type t = {
  mutable lo : int; (* inclusive lower bound of the covered hull *)
  mutable hi : int; (* exclusive upper bound of the covered hull *)
  mutable probes : int; (* stores checked against the filter *)
  mutable hits : int; (* stores that intersected the hull *)
}

let create () = { lo = max_int; hi = min_int; probes = 0; hits = 0 }

(* Forget all covered ranges (the owner just retired its translations). *)
let clear t =
  t.lo <- max_int;
  t.hi <- min_int

(* Extend the hull to include [lo, hi). *)
let cover t ~lo ~hi =
  if lo < t.lo then t.lo <- lo;
  if hi > t.hi then t.hi <- hi

let is_empty t = t.hi <= t.lo

(* Does a store of [size] bytes at [addr] intersect the covered hull?
   The caller retires its translations (and [clear]s) on [true]. *)
let hit t ~addr ~size =
  t.probes <- t.probes + 1;
  let h = addr < t.hi && addr + size > t.lo in
  if h then t.hits <- t.hits + 1;
  h

let probes t = t.probes
let hits t = t.hits
