(* Physical memory: a flat byte array with little-endian scalar accessors.

   (BERI is big-endian MIPS; we model memory little-endian since no
   reproduced result depends on byte order — noted in DESIGN.md.)  Raises
   [Bus_error] for accesses outside the populated range, which the machine
   turns into an address-error exception. *)

exception Bus_error of int64

type t = { data : Bytes.t; size : int }

let create ~size_bytes =
  { data = Bytes.make size_bytes '\000'; size = size_bytes }

let size t = t.size

let index t addr size =
  let i = Int64.to_int addr in
  if i < 0 || i + size > t.size || Int64.compare addr (Int64.of_int t.size) >= 0
  then raise (Bus_error addr)
  else i

let read_u8 t addr = Char.code (Bytes.get t.data (index t addr 1))
let write_u8 t addr v = Bytes.set t.data (index t addr 1) (Char.chr (v land 0xFF))

let read_u16 t addr = Bytes.get_uint16_le t.data (index t addr 2)
let write_u16 t addr v = Bytes.set_uint16_le t.data (index t addr 2) (v land 0xFFFF)

let read_u32 t addr = Int32.to_int (Bytes.get_int32_le t.data (index t addr 4)) land 0xFFFF_FFFF
let write_u32 t addr v = Bytes.set_int32_le t.data (index t addr 4) (Int32.of_int v)

let read_u64 t addr = Bytes.get_int64_le t.data (index t addr 8)
let write_u64 t addr v = Bytes.set_int64_le t.data (index t addr 8) v

(* Multi-word image access (capability loads/stores): one bounds check
   for the whole [len]-byte image, then per-word reads/writes at byte
   indices — no intermediate buffer. *)
let image_index t addr len = index t addr len
let get_u64 t i = Bytes.get_int64_le t.data i
let set_u64 t i v = Bytes.set_int64_le t.data i v

let read_bytes t addr len =
  let i = index t addr len in
  Bytes.sub t.data i len

let write_bytes t addr b =
  let i = index t addr (Bytes.length b) in
  Bytes.blit b 0 t.data i (Bytes.length b)
