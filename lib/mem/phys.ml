(* Physical memory: a flat byte array with little-endian scalar accessors.

   (BERI is big-endian MIPS; we model memory little-endian since no
   reproduced result depends on byte order — noted in DESIGN.md.)  Raises
   [Bus_error] for accesses outside the populated range, which the machine
   turns into an address-error exception.

   Dirty-page tracking: every write path marks its 4 KiB page in a
   byte-per-page map so a [restore] after [snapshot] only has to copy
   back the pages actually written since the snapshot — the warm-server
   reset in lib/serve restores a 16 MiB machine by touching a few dozen
   pages instead of re-blitting (or re-booting) the whole image.  The
   map costs one unsafe byte store per write (two when a scalar spans a
   page boundary), which is noise next to the existing bounds check. *)

exception Bus_error of int64

let page_bits = 12
let page_bytes = 1 lsl page_bits

type t = {
  data : Bytes.t;
  size : int;
  dirty : Bytes.t; (* one byte per page; '\001' = written since snapshot *)
  mutable snap_stamp : int; (* bumped by [snapshot]; restore checks it *)
}

type snapshot = { base : Bytes.t; stamp : int }

let create ~size_bytes =
  let pages = (size_bytes + page_bytes - 1) lsr page_bits in
  {
    data = Bytes.make size_bytes '\000';
    size = size_bytes;
    dirty = Bytes.make (max 1 pages) '\000';
    snap_stamp = 0;
  }

let size t = t.size

let index t addr size =
  let i = Int64.to_int addr in
  if i < 0 || i + size > t.size || Int64.compare addr (Int64.of_int t.size) >= 0
  then raise (Bus_error addr)
  else i

(* Mark the page(s) covered by a write of [len] bytes at byte index [i].
   Scalars are at most 8 bytes so they span at most two pages; the
   common case is one unsafe store. *)
let[@inline] mark t i len =
  Bytes.unsafe_set t.dirty (i lsr page_bits) '\001';
  let last = (i + len - 1) lsr page_bits in
  if last <> i lsr page_bits then Bytes.unsafe_set t.dirty last '\001'

let mark_range t i len =
  if len > 0 then
    for p = i lsr page_bits to (i + len - 1) lsr page_bits do
      Bytes.unsafe_set t.dirty p '\001'
    done

let read_u8 t addr = Char.code (Bytes.get t.data (index t addr 1))

let write_u8 t addr v =
  let i = index t addr 1 in
  mark t i 1;
  Bytes.set t.data i (Char.chr (v land 0xFF))

let read_u16 t addr = Bytes.get_uint16_le t.data (index t addr 2)

let write_u16 t addr v =
  let i = index t addr 2 in
  mark t i 2;
  Bytes.set_uint16_le t.data i (v land 0xFFFF)

let read_u32 t addr = Int32.to_int (Bytes.get_int32_le t.data (index t addr 4)) land 0xFFFF_FFFF

let write_u32 t addr v =
  let i = index t addr 4 in
  mark t i 4;
  Bytes.set_int32_le t.data i (Int32.of_int v)

let read_u64 t addr = Bytes.get_int64_le t.data (index t addr 8)

let write_u64 t addr v =
  let i = index t addr 8 in
  mark t i 8;
  Bytes.set_int64_le t.data i v

(* Multi-word image access (capability loads/stores): one bounds check
   for the whole [len]-byte image, then per-word reads/writes at byte
   indices — no intermediate buffer. *)
let image_index t addr len = index t addr len
let get_u64 t i = Bytes.get_int64_le t.data i

let set_u64 t i v =
  mark t i 8;
  Bytes.set_int64_le t.data i v

let read_bytes t addr len =
  let i = index t addr len in
  Bytes.sub t.data i len

let write_bytes t addr b =
  let i = index t addr (Bytes.length b) in
  mark_range t i (Bytes.length b);
  Bytes.blit b 0 t.data i (Bytes.length b)

let pages t = Bytes.length t.dirty

let snapshot t =
  t.snap_stamp <- t.snap_stamp + 1;
  Bytes.fill t.dirty 0 (Bytes.length t.dirty) '\000';
  { base = Bytes.copy t.data; stamp = t.snap_stamp }

let dirty_pages t =
  let acc = ref [] in
  for p = Bytes.length t.dirty - 1 downto 0 do
    if Bytes.unsafe_get t.dirty p <> '\000' then acc := p :: !acc
  done;
  !acc

let restore t snap =
  if snap.stamp <> t.snap_stamp then
    invalid_arg "Phys.restore: stale snapshot (a newer snapshot exists)";
  let n = ref 0 in
  for p = 0 to Bytes.length t.dirty - 1 do
    if Bytes.unsafe_get t.dirty p <> '\000' then begin
      let off = p lsl page_bits in
      let len = min page_bytes (t.size - off) in
      Bytes.blit snap.base off t.data off len;
      Bytes.unsafe_set t.dirty p '\000';
      incr n
    end
  done;
  !n
