(** The capability tag table (Section 4.2 of the paper).

    CHERI tags {e physical} memory: one tag bit per capability-sized line
    (32 bytes for the 256-bit format, 16 for the compressed machine).
    The architectural rules enforced through this module:

    - a capability store with a valid tag sets the line's tag;
    - storing an untagged register leaves the tag clear;
    - any general-purpose store to the line {e clears} the tag — in-memory
      capabilities cannot be forged by data writes. *)

type t

(** Default tag granularity in bytes (32 = one bit per 256 bits). *)
val line_bytes : int

val create : ?line_bytes:int -> mem_size:int -> unit -> t

(** Install (or with [None] remove) the observability hook: called with
    the data address on every architectural tag write — [set = true] for
    a tagged capability store, [false] for any clearing store.  Purely an
    observer; the default [None] costs one pattern match per write. *)
val set_on_write : t -> (set:bool -> addr:int64 -> unit) option -> unit

(** Index of the tag line covering a physical address. *)
val line_index : t -> int64 -> int

(** The table's own line granularity in bytes (32 or 16). *)
val granularity : t -> int

(** Tag of the line containing the address. *)
val get : t -> int64 -> bool

val set : t -> int64 -> bool -> unit

(** Clear the tags of every line overlapped by a [size]-byte store at the
    address: the effect of a general-purpose store. *)
val clear_range : t -> int64 -> int -> unit

(** Number of tagged lines (used by sweeps and tests). *)
val count_set : t -> int

(** {1 Snapshot / restore} — rides the physical memory's dirty-page
    list: {!restore_page} blits back the tag bits covering one dirty
    [page_bytes]-sized physical page. *)

type snapshot

val snapshot : t -> snapshot

val restore_page : t -> snapshot -> page_bytes:int -> int -> unit

(** Restore the whole table (tests / non-dirty-tracked callers). *)
val restore_all : t -> snapshot -> unit
