(** Physical memory: a flat byte array with little-endian scalar
    accessors.  Raises {!Bus_error} outside the populated range, which the
    machine turns into an address-error exception. *)

exception Bus_error of int64

type t

val create : size_bytes:int -> t
val size : t -> int

val read_u8 : t -> int64 -> int
val write_u8 : t -> int64 -> int -> unit
val read_u16 : t -> int64 -> int
val write_u16 : t -> int64 -> int -> unit
val read_u32 : t -> int64 -> int
val write_u32 : t -> int64 -> int -> unit
val read_u64 : t -> int64 -> int64
val write_u64 : t -> int64 -> int64 -> unit

(** One bounds check for a [len]-byte image at [addr]; the returned byte
    index feeds {!get_u64}/{!set_u64} at word offsets within the image.
    @raise Bus_error when the image overruns the populated range. *)
val image_index : t -> int64 -> int -> int

val get_u64 : t -> int -> int64

val set_u64 : t -> int -> int64 -> unit

val read_bytes : t -> int64 -> int -> bytes
val write_bytes : t -> int64 -> bytes -> unit
