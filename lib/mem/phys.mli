(** Physical memory: a flat byte array with little-endian scalar
    accessors.  Raises {!Bus_error} outside the populated range, which the
    machine turns into an address-error exception. *)

exception Bus_error of int64

type t

val create : size_bytes:int -> t
val size : t -> int

val read_u8 : t -> int64 -> int
val write_u8 : t -> int64 -> int -> unit
val read_u16 : t -> int64 -> int
val write_u16 : t -> int64 -> int -> unit
val read_u32 : t -> int64 -> int
val write_u32 : t -> int64 -> int -> unit
val read_u64 : t -> int64 -> int64
val write_u64 : t -> int64 -> int64 -> unit

(** One bounds check for a [len]-byte image at [addr]; the returned byte
    index feeds {!get_u64}/{!set_u64} at word offsets within the image.
    @raise Bus_error when the image overruns the populated range. *)
val image_index : t -> int64 -> int -> int

val get_u64 : t -> int -> int64

val set_u64 : t -> int -> int64 -> unit

val read_bytes : t -> int64 -> int -> bytes
val write_bytes : t -> int64 -> bytes -> unit

(** {1 Snapshot / restore}

    Every write path marks its 4 KiB page dirty; {!snapshot} copies the
    whole image once and clears the dirty map, after which {!restore}
    only blits back the pages written since — the fast-reset primitive
    behind the warm server pool (docs/PERFORMANCE.md). *)

val page_bytes : int
(** Dirty-tracking granule: 4096. *)

type snapshot

val snapshot : t -> snapshot
(** Capture the full image and start dirty tracking from a clean slate.
    Taking a new snapshot invalidates earlier ones (stamp check). *)

val restore : t -> snapshot -> int
(** Blit back every dirty page from the snapshot and clear the dirty
    map; returns the number of pages restored.  @raise Invalid_argument
    on a snapshot made stale by a later {!snapshot}. *)

val dirty_pages : t -> int list
(** Page indices written since the last {!snapshot} (ascending). *)

val pages : t -> int
(** Total pages in the dirty map. *)
