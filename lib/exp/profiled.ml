(* A profiled benchmark run: Bench_run with a lib/obs probe attached,
   plus post-run symbolization so hot PCs come back with a disassembly
   line and a `label+offset` location, and collapsed call stacks come
   back with label names.  This is the engine behind `bin/cheri_prof`
   and the obs-smoke test. *)

type hot = {
  pc : int64;
  samples : int;
  pct : float; (* of all samples *)
  where : string; (* nearest label + offset *)
  disasm : string; (* decoded instruction at the PC *)
}

type report = {
  result : Bench_run.result;
  counters : Obs.Counters.t;
  spans : (string * Obs.Counters.t) list;
  period : int;
  total_samples : int;
  hot : hot list;
  collapsed : string list; (* flamegraph.pl-compatible lines *)
  attrib : Obs.Attrib.t; (* per-PC / per-region miss attribution *)
  durations : Obs.Hist.t; (* span-duration histogram (cycles per close) *)
  symbol : int64 -> string; (* the run's nearest-label symbolizer *)
}

(* Nearest-preceding-label symbolizer over the assembler's symbol table. *)
let symbolizer (symbols : (string, int64) Hashtbl.t) =
  let sorted =
    Hashtbl.fold (fun name addr acc -> (addr, name) :: acc) symbols []
    |> List.sort compare |> Array.of_list
  in
  fun pc ->
    if Int64.compare pc 0L < 0 || Array.length sorted = 0 then Printf.sprintf "0x%Lx" pc
    else begin
      (* binary search: greatest label address <= pc *)
      let lo = ref 0 and hi = ref (Array.length sorted - 1) and best = ref None in
      while !lo <= !hi do
        let mid = (!lo + !hi) / 2 in
        let addr, name = sorted.(mid) in
        if Int64.compare addr pc <= 0 then begin
          best := Some (addr, name);
          lo := mid + 1
        end
        else hi := mid - 1
      done;
      match !best with
      | Some (addr, name) when Int64.equal addr pc -> name
      | Some (addr, name) -> Printf.sprintf "%s+0x%Lx" name (Int64.sub pc addr)
      | None -> Printf.sprintf "0x%Lx" pc
    end

let validate_bench bench =
  if not (List.mem_assoc bench Olden.Minic_src.all) then
    Fmt.invalid_arg "unknown benchmark %S (expected %s)" bench
      (String.concat "|" (List.map fst Olden.Minic_src.all))

(* Run [bench] under [mode] with a sampling profiler attached.  [period]
   is the sampling interval in retired instructions; [top] bounds the
   hot-PC table; [granule_bits] sets the attribution region size
   (default 4 KB pages). *)
let run ?max_insns ?(iters = 1) ?(period = 97) ?(top = 10) ?granule_bits ?bus ?engine ?trace
    ?series_interval ~bench ~mode ~param () =
  validate_bench bench;
  let source = List.assoc bench Olden.Minic_src.all in
  (* Re-derive the program image the harness will run, for its symbol
     table (compilation is deterministic and cheap next to simulation). *)
  let program =
    Asm.Assembler.assemble
      (Minic.Driver.compile ~mode (Olden.Minic_src.instantiate ~iters source ~param))
  in
  let symbol = symbolizer program.Asm.Assembler.symbols in
  let profile = Obs.Profile.create ~period () in
  let attrib = Obs.Attrib.create ?granule_bits () in
  let durations = Obs.Hist.create ~name:"span duration [cycles]" () in
  let probe = Obs.Probe.create ~profile ~attrib () in
  let hot = ref [] and collapsed = ref [] in
  let inspect (m : Machine.t) =
    let disasm pc =
      match Mem.Phys.read_u32 m.Machine.phys pc with
      | w -> (try Asm.Disasm.word w with _ -> Printf.sprintf ".word 0x%08x" w)
      | exception _ -> "<unmapped>"
    in
    hot :=
      List.map
        (fun (pc, n) ->
          { pc; samples = n; pct = Obs.Profile.pct profile n; where = symbol pc; disasm = disasm pc })
        (Obs.Profile.top profile ~n:top);
    collapsed := Obs.Profile.collapsed ~resolve:symbol profile
  in
  let result =
    Bench_run.run ?max_insns ~iters ?engine ~probe ?bus ?trace ?series_interval
      ~span_durations:durations ~bench ~mode ~param source ~inspect
  in
  {
    result;
    counters = result.Bench_run.counters;
    spans = result.Bench_run.spans;
    period;
    total_samples = Obs.Profile.total_samples profile;
    hot = !hot;
    collapsed = !collapsed;
    attrib;
    durations;
    symbol;
  }

let pp_hot ppf (report : report) =
  Fmt.pf ppf "@[<v>%-6s %7s %-18s %-22s %s@," "rank" "pct" "pc" "where" "instruction";
  List.iteri
    (fun i h ->
      Fmt.pf ppf "%-6d %6.2f%% 0x%-16Lx %-22s %s@," (i + 1) h.pct h.pc h.where h.disasm)
    report.hot;
  Fmt.pf ppf "(%d samples, 1 per %d retired instructions)@]" report.total_samples report.period
