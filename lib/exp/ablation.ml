(* Ablation experiments for the design choices DESIGN.md calls out.

   1. Capability compression (Section 8: "These results reconfirm that
      CHERI will benefit from capability compression"): the same Olden
      benchmarks compiled for the 256-bit and the 128-bit capability
      machines, overheads vs. the unprotected baseline.

   2. Tag-cache sizing (Section 4.2: the 8 KB tag cache "does not
      noticeably degrade performance"): sweep the tag-cache capacity and
      measure the fraction of DRAM transactions that need an extra
      tag-table fill.

   3. Memory-latency sensitivity: the Figure 5 plateau as a function of
      the DRAM penalty, showing the slowdown is miss-driven. *)

(* --- 1: capability width ---------------------------------------------------- *)

type width_row = {
  bench : string;
  cheri256_total_pct : float;
  cheri128_total_pct : float;
  heap256_kb : int;
  heap128_kb : int;
}

let compression ?(benches = [ ("treeadd", 12); ("bisort", 10); ("mst", 96); ("perimeter", 7) ])
    ?jobs () =
  Pool.map ?jobs
    (fun (bench, param) ->
      let src = List.assoc bench Olden.Minic_src.all in
      let legacy = Bench_run.run ~bench ~mode:Minic.Layout.Legacy ~param src in
      let c256 = Bench_run.run ~bench ~mode:Minic.Layout.Cheri ~param src in
      let c128 = Bench_run.run ~bench ~mode:Minic.Layout.Cheri128 ~param src in
      {
        bench;
        cheri256_total_pct =
          Bench_run.pct_overhead ~baseline:legacy.Bench_run.cycles c256.Bench_run.cycles;
        cheri128_total_pct =
          Bench_run.pct_overhead ~baseline:legacy.Bench_run.cycles c128.Bench_run.cycles;
        heap256_kb = Int64.to_int (Int64.div c256.Bench_run.heap_bytes 1024L);
        heap128_kb = Int64.to_int (Int64.div c128.Bench_run.heap_bytes 1024L);
      })
    benches

(* --- 2: tag-cache size -------------------------------------------------------- *)

type tag_row = {
  tag_cache_bytes : int;
  tag_fills : int; (* extra DRAM transactions for tag lines *)
  data_fills : int; (* DRAM transactions for data lines *)
  fill_ratio_pct : float;
}

let tag_cache_sweep ?(sizes = [ 256; 1024; 4096; 8192; 16384 ]) ?jobs () =
  Pool.map ?jobs
    (fun size ->
      let config =
        {
          Machine.default_config with
          Machine.hierarchy = { Mem.Hierarchy.default_config with Mem.Hierarchy.tag_cache_size = size };
        }
      in
      let m = Machine.create ~config () in
      let k = Os.Kernel.attach m in
      let src =
        Olden.Minic_src.instantiate (List.assoc "treeadd" Olden.Minic_src.all) ~param:13
      in
      let asm = Minic.Driver.compile ~mode:Minic.Layout.Cheri src in
      let code, _ = Os.Kernel.run_program ~max_insns:200_000_000L k asm in
      assert (code = 0);
      (* The fill ratio comes straight off the obs counter file rather
         than reaching into the hierarchy's internals. *)
      let c = Machine.read_counters m in
      let tag_fills = Int64.to_int (Obs.Counters.get c Obs.Counters.tag_dram_fills) in
      let l2_misses = Int64.to_int (Obs.Counters.get c Obs.Counters.l2_misses) in
      {
        tag_cache_bytes = size;
        tag_fills;
        data_fills = l2_misses;
        fill_ratio_pct =
          (if l2_misses = 0 then 0.0
           else 100.0 *. float_of_int tag_fills /. float_of_int l2_misses);
      })
    sizes

(* --- 3: DRAM latency sensitivity ------------------------------------------------ *)

type latency_row = { dram_cycles : int; treeadd_slowdown_pct : float }

let latency_sweep ?(latencies = [ 4; 12; 30; 60 ]) ?jobs () =
  Pool.map ?jobs
    (fun dram ->
      let config =
        {
          Machine.default_config with
          Machine.hierarchy = { Mem.Hierarchy.default_config with Mem.Hierarchy.dram_cycles = dram };
        }
      in
      let run mode =
        let src =
          Olden.Minic_src.instantiate ~iters:2 (List.assoc "treeadd" Olden.Minic_src.all)
            ~param:13
        in
        let asm = Minic.Driver.compile ~mode src in
        let m = Machine.create ~config () in
        let k = Os.Kernel.attach m in
        let code, _ = Os.Kernel.run_program ~max_insns:200_000_000L k asm in
        assert (code = 0);
        Int64.of_int m.Machine.cycles
      in
      let legacy = run Minic.Layout.Legacy in
      let cheri = run Minic.Layout.Cheri in
      { dram_cycles = dram; treeadd_slowdown_pct = Bench_run.pct_overhead ~baseline:legacy cheri })
    latencies
