(* The obs export set: the benchmark runs behind `bench --json`, `bench
   regress`, and the regress-smoke / parallel-determinism tests, factored
   into one definition so every consumer builds *exactly* the same
   entries.

   Each point runs one Olden kernel in one pointer mode with a
   classification probe attached and returns an [Obs.Export.entry]: the
   full counter file, phase spans, and the host wall-clock seconds the
   simulation took (from which the export derives simulated MIPS).
   Points are independent, so [~jobs] fans them across domains via
   [Pool]; results come back in input order, making parallel output
   byte-identical to sequential — except for the wall-clock fields, which
   genuinely differ run to run.  Pass [~wall:false] to record 0.0 instead
   (the diff policy treats non-positive wall fields as unmeasured), which
   makes the *entire* export deterministic — that is what the
   parallel-determinism test byte-compares. *)

type point = { bench : string; mode : Minic.Layout.mode; param : int }

let point ~bench ~mode ~param = { bench; mode; param }

(* A run that exits non-zero has no meaningful counters; fail loudly
   rather than export garbage. *)
exception Run_failed of { bench : string; mode : string; exit_code : int }

let () =
  Printexc.register_printer (function
    | Run_failed { bench; mode; exit_code } ->
        Some (Printf.sprintf "obs-bench: %s/%s exited %d" bench mode exit_code)
    | _ -> None)

let run_point ?engine ~wall { bench; mode; param } =
  let src = List.assoc bench Olden.Minic_src.all in
  let probe = Obs.Probe.create () in
  let t0 = if wall then Unix.gettimeofday () else 0.0 in
  let r = Bench_run.run ?engine ~probe ~bench ~mode ~param src in
  let wall_s = if wall then Unix.gettimeofday () -. t0 else 0.0 in
  if r.Bench_run.exit_code <> 0 then
    raise
      (Run_failed
         { bench; mode = Minic.Layout.mode_name mode; exit_code = r.Bench_run.exit_code });
  {
    Obs.Export.bench;
    mode = Minic.Layout.mode_name mode;
    param;
    wall_s;
    counters = r.Bench_run.counters;
    spans = r.Bench_run.spans;
  }

let run_points ?(jobs = 1) ?(wall = true) ?engine points =
  Pool.map ~jobs (run_point ?engine ~wall) points

(* The full fig4 set (all benchmarks x all three modes, scaled-down
   parameters): what `bench --json` exports and `bench regress` replays. *)
let fig4_points =
  List.concat_map
    (fun (bench, param, _paper) ->
      List.map (fun mode -> point ~bench ~mode ~param) Fig4.modes)
    Fig4.benchmarks

let fig4_entries ?jobs ?wall ?engine () = run_points ?jobs ?wall ?engine fig4_points

(* The smoke set (treeadd param 6 x all three modes — seconds, not
   minutes): what regress-smoke and the parallel-determinism test use. *)
let smoke_bench = "treeadd"
let smoke_param = 6

let smoke_points =
  List.map (fun mode -> point ~bench:smoke_bench ~mode ~param:smoke_param) Fig4.modes

let smoke_entries ?jobs ?wall ?engine () = run_points ?jobs ?wall ?engine smoke_points
