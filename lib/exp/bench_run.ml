(* Compile-and-execute harness for the Section 8 experiments: runs a minic
   source on the simulated machine and collects the measurements Figures 4
   and 5 are built from.  All accounting is delegated to lib/obs: the
   trace markers open and close counter-file spans, and the result record
   carries the final counter snapshot plus the per-phase aggregates (the
   markers are free, so instrumentation does not perturb the clock). *)

type phase_times = { alloc_cycles : int64; compute_cycles : int64 }

type result = {
  bench : string;
  mode : Minic.Layout.mode;
  exit_code : int;
  output : string list; (* print_int lines *)
  cycles : int64;
  instrs : int64;
  phases : phase_times;
  heap_bytes : int64;
  l1d_misses : int;
  l2_misses : int;
  tlb_misses : int;
  counters : Obs.Counters.t; (* the full counter file at exit *)
  spans : (string * Obs.Counters.t) list; (* per-phase counter deltas *)
  series : Obs.Series.t option; (* counter time-series, when sampled *)
}

(* Phase ids the minic runtime passes to trace.phase_begin. *)
let phase_name id =
  match Int64.to_int id with
  | 0 -> "alloc"
  | 1 -> "compute"
  | n -> Printf.sprintf "phase-%d" n

(* A machine configured for the mode: cheri128 code needs the 128-bit
   capability machine (16-byte capability accesses, 16-byte tag lines);
   [big_mem] (paper-size workloads) provisions 512 MB. *)
let machine_for ?(big_mem = false) (mode : Minic.Layout.mode) =
  let config =
    match mode with
    | Minic.Layout.Cheri128 -> { Machine.default_config with Machine.cap_width = Machine.W128 }
    | _ -> Machine.default_config
  in
  let config =
    if big_mem then { config with Machine.mem_size = 512 * 1024 * 1024 } else config
  in
  Machine.create ~config ()

(* Execute [source] (after @PARAM@ substitution) under [mode].

   [probe] attaches an observability probe (instruction-class counters,
   PC-sample profiling); [bus] routes span/alloc/fault events onto a
   shared event stream; [inspect] runs against the machine after the
   program exits, before it is dropped — profilers use it to resolve
   sampled PCs against the loaded image. *)
let run ?(max_insns = 20_000_000_000L) ?(iters = 1) ?(big_mem = false) ?engine ?probe ?bus
    ?trace ?series_interval ?span_durations ?inspect ~bench ~mode ~param source =
  let source = Olden.Minic_src.instantiate ~iters source ~param in
  let asm = Minic.Driver.compile ~mode source in
  let m = machine_for ~big_mem mode in
  (* [engine] selects the interpreter engine (plain vs superblock) — a
     host-speed knob with no architectural effect; [None] keeps the
     machine default. *)
  (match engine with Some e -> Machine.set_engine m e | None -> ());
  let k = Os.Kernel.attach m in
  Machine.set_probe m probe;
  let span =
    Obs.Span.create ?bus ?durations:span_durations ?trace
      ~read:(fun () -> Os.Kernel.read_counters k)
      ()
  in
  Os.Kernel.set_obs ?bus ~span ?trace k;
  let series =
    match series_interval with
    | Some interval ->
        let s = Obs.Series.create ~interval ~read:(fun () -> Os.Kernel.read_counters k) () in
        Machine.set_step_hook m (Some (fun m -> Obs.Series.tick s ~instret:m.Machine.instret));
        Some s
    | None -> None
  in
  let allocated_bytes = ref 0L in
  Machine.set_trace_hook m (fun _m marker a _b ->
      match marker with
      | Beri.Insn.M_phase_begin -> Obs.Span.enter span (phase_name a)
      | Beri.Insn.M_phase_end -> Obs.Span.exit span
      | Beri.Insn.M_alloc ->
          allocated_bytes := Int64.add !allocated_bytes a;
          (match bus with
          | Some bus -> Obs.Event.emit bus ~kind:"alloc" [ ("bytes", Obs.Json.Int a) ]
          | None -> ())
      | Beri.Insn.M_free -> ());
  let exit_code, console = Os.Kernel.run_program ~max_insns k asm in
  Obs.Span.close_all span;
  (match inspect with Some f -> f m | None -> ());
  let counters = Os.Kernel.read_counters k in
  let spans = Obs.Span.totals span in
  let get = Obs.Counters.get counters in
  let output =
    String.split_on_char '\n' console |> List.filter (fun s -> String.trim s <> "")
  in
  {
    bench;
    mode;
    exit_code;
    output;
    cycles = get Obs.Counters.cycles;
    instrs = get Obs.Counters.instret;
    phases =
      {
        alloc_cycles = Obs.Span.cycles_of span "alloc";
        compute_cycles = Obs.Span.cycles_of span "compute";
      };
    heap_bytes = !allocated_bytes;
    l1d_misses = Int64.to_int (get Obs.Counters.l1d_misses);
    l2_misses = Int64.to_int (get Obs.Counters.l2_misses);
    tlb_misses = Int64.to_int (get Obs.Counters.tlb_misses);
    counters;
    spans;
    series;
  }

let pct_overhead ~baseline v =
  if Int64.equal baseline 0L then 0.0
  else 100.0 *. Int64.to_float (Int64.sub v baseline) /. Int64.to_float baseline
