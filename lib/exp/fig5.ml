(* Figure 5: CHERI slowdown relative to MIPS as the working set grows
   (4 KB .. 1024 KB heaps).  As the set of live capabilities outgrows the
   16 KB L1, the 64 KB L2, and the 1 MB TLB reach, the slowdown climbs in
   visible steps — the effect this sweep reproduces. *)

type point = {
  bench : string;
  param : int;
  heap_kb : int; (* measured baseline heap footprint *)
  slowdown_pct : float;
  cheri_l1d_misses : int;
  legacy_l1d_misses : int;
}

(* Parameters chosen so the *legacy* heap footprint lands near each target
   size; treeadd/bisort double per level. *)
let sweeps =
  [
    ("treeadd", [ 7; 8; 9; 10; 11; 12; 13; 14; 15 ]);
    ("bisort", [ 7; 8; 9; 10; 11; 12; 13; 14; 15 ]);
    ("perimeter", [ 4; 5; 6; 7; 8; 9; 10 ]);
    ("mst", [ 16; 32; 64; 128; 256; 384; 512 ]);
  ]

let source name = List.assoc name Olden.Minic_src.all

(* Iterate the computation enough to amortize cold-cache effects (the
   paper's FPGA runs are long; a single traversal of a tiny tree would be
   all compulsory misses). *)
let iters_for ~bench ~param =
  match bench with
  | "treeadd" | "bisort" -> max 1 (1 lsl (max 0 (14 - param)))
  | _ -> 1

let run_point ~bench ~param =
  let src = source bench in
  let iters = iters_for ~bench ~param in
  let legacy = Bench_run.run ~iters ~bench ~mode:Minic.Layout.Legacy ~param src in
  let cheri = Bench_run.run ~iters ~bench ~mode:Minic.Layout.Cheri ~param src in
  {
    bench;
    param;
    heap_kb = Int64.to_int (Int64.div legacy.Bench_run.heap_bytes 1024L);
    slowdown_pct =
      (* steady-state: compare the computation phases *)
      Bench_run.pct_overhead
        ~baseline:legacy.Bench_run.phases.Bench_run.compute_cycles
        cheri.Bench_run.phases.Bench_run.compute_cycles;
    cheri_l1d_misses =
      Int64.to_int (Obs.Counters.get cheri.Bench_run.counters Obs.Counters.l1d_misses);
    legacy_l1d_misses =
      Int64.to_int (Obs.Counters.get legacy.Bench_run.counters Obs.Counters.l1d_misses);
  }

(* Fan the (bench, param) points across domains; [Pool.map] preserves
   input order, so the sweep's output is identical for any [jobs]. *)
let run_sweep ?(benches = [ "treeadd"; "bisort"; "perimeter"; "mst" ]) ?jobs () =
  let points =
    List.concat_map
      (fun (name, params) ->
        if List.mem name benches then List.map (fun p -> (name, p)) params else [])
      sweeps
  in
  Pool.map ?jobs (fun (bench, param) -> run_point ~bench ~param) points
