(* Fault-injection detection coverage (EXPERIMENTS.md): the robustness
   counterpart of the Figure 4 performance comparison.  The same Olden
   kernel runs under N seeded single-event upsets in each pointer mode,
   and every run is classified against the golden execution
   ([Fault.Campaign]).  The paper's Sections 3-4 argue that capabilities
   turn pointer corruption into precise, catchable events; the coverage
   table quantifies that as detection mass (capability exceptions plus
   invariant-monitor diagnostics) the unprotected baseline does not have. *)

let modes = [ Fault.Campaign.Baseline; Fault.Campaign.Cheri; Fault.Campaign.Cheri128 ]

let run ?(bench = "treeadd") ?(seeds = 100) ?(param = 8) () =
  let summaries =
    List.map
      (fun mode ->
        Fault.Campaign.run
          {
            Fault.Campaign.bench;
            mode;
            seeds;
            base_seed = 1L;
            param;
            sites = Fault.Injector.all_sites;
            monitor = true;
          })
      modes
  in
  Fault.Campaign.print_table summaries;
  summaries
