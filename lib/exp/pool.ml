(* A deterministic Domain pool for experiment sweeps.

   Every figure in the evaluation is a list of independent simulator runs
   (benchmark x mode x parameter points), each a pure function of its
   inputs — the simulator has no global mutable state.  [map ~jobs f xs]
   fans those points across [jobs] domains and returns the results *in
   input order*, so a parallel sweep produces byte-identical tables and
   JSON to the sequential one; only the wall clock changes.

   Work distribution is a shared atomic cursor: each worker repeatedly
   claims the next unclaimed index and writes its result into that slot
   of a results array.  Slots are disjoint and [Domain.join] publishes
   the writes, so no further synchronisation is needed.  Exceptions are
   captured per-slot and re-raised (with their backtrace) in input order
   after all workers finish — a failing point does not tear down the
   others mid-run. *)

let map ?(jobs = 1) f xs =
  let n = List.length xs in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let items = Array.of_list xs in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (results.(i) <-
           Some
             (match f items.(i) with
             | v -> Ok v
             | exception e -> Error (e, Printexc.get_raw_backtrace ())));
        worker ()
      end
    in
    let spawned = List.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false (* every index was claimed by some worker *))
  end

(* A per-domain memo table for expensive resources a pool worker reuses
   across the work items it claims — the serve sweep's warm-server pool
   keeps one booted machine per (isolation, n, engine) it has seen.

   Domain-local storage keeps the cache lock-free and keeps each cached
   value confined to the domain that built it: a mutable resource (a
   simulator instance, say) is never visible to two domains, so reuse
   needs no synchronisation and cannot perturb [map]'s determinism —
   which item lands on which domain may vary, but every item finds
   either a fresh resource or one reset by its own domain.

   Values are evicted oldest-first once a domain holds [cap] of them;
   there is no cross-domain eviction or accounting, so peak footprint is
   [cap] values per spawned domain. *)
module Cache = struct
  type ('k, 'v) t = {
    slot : (('k, 'v) Hashtbl.t * 'k Queue.t) Domain.DLS.key;
    cap : int;
  }

  let create ?(cap = 16) () =
    if cap < 1 then invalid_arg "Pool.Cache.create: cap";
    { slot = Domain.DLS.new_key (fun () -> (Hashtbl.create 8, Queue.create ())); cap }

  (* [find_or_make t k make] returns this domain's cached value for [k],
     building (and caching) it with [make] on first use. *)
  let find_or_make t k make =
    let tbl, order = Domain.DLS.get t.slot in
    match Hashtbl.find_opt tbl k with
    | Some v -> v
    | None ->
        let v = make () in
        Hashtbl.replace tbl k v;
        Queue.push k order;
        if Queue.length order > t.cap then Hashtbl.remove tbl (Queue.pop order);
        v
end
