(* Figure 4: execution-time overhead of CCured-style software enforcement
   and CHERI hardware enforcement over the unsafe MIPS baseline, for four
   Olden benchmarks, decomposed into allocation and computation phases.

   Paper parameters: bisort 250000, mst 1024, treeadd 21, perimeter 12.
   The interpreter runs scaled-down defaults (EXPERIMENTS.md); pass
   [~paper_size:true] for the original sizes. *)

type row = {
  bench : string;
  mode : Minic.Layout.mode;
  alloc_overhead_pct : float;
  compute_overhead_pct : float;
  total_overhead_pct : float;
  result : Bench_run.result;
}

(* (benchmark, default param, paper param).  treeadd/bisort parameters are
   tree levels (the paper's 250000-node bisort ~ 2^18 nodes; treeadd 21
   levels); perimeter is quadtree depth; mst is the vertex count. *)
let benchmarks =
  [
    ("bisort", 12, 18);
    ("mst", 160, 1024);
    ("treeadd", 14, 21);
    ("perimeter", 8, 12);
  ]

(* Beyond the paper's four: the same three-way comparison on our minic
   ports of em3d and health (the latter exercises free()). *)
let extended_benchmarks = [ ("em3d", 250, 1500); ("health", 4, 6) ]

let source name = List.assoc name Olden.Minic_src.all

let modes = [ Minic.Layout.Legacy; Minic.Layout.Softcheck; Minic.Layout.Cheri ]

(* One (benchmark, mode) point: the unit of work a parallel sweep fans
   across domains. *)
let run_point ~paper_size ~bench:name ~mode =
  let _, small, paper =
    List.find (fun (n, _, _) -> n = name) (benchmarks @ extended_benchmarks)
  in
  let param = if paper_size then paper else small in
  (* iterated kernels: em3d sweeps, health timesteps *)
  let iters = match name with "em3d" -> 4 | "health" -> 40 | _ -> 1 in
  Bench_run.run ~iters ~big_mem:paper_size ~bench:name ~mode ~param (source name)

(* Overhead rows for one benchmark from its per-mode results ([modes]
   order, Legacy first — the baseline). *)
let rows_of_results name (results : Bench_run.result list) =
  let baseline = List.hd results in
  List.map
    (fun (r : Bench_run.result) ->
      {
        bench = name;
        mode = r.Bench_run.mode;
        alloc_overhead_pct =
          Bench_run.pct_overhead
            ~baseline:baseline.Bench_run.phases.Bench_run.alloc_cycles
            r.Bench_run.phases.Bench_run.alloc_cycles;
        compute_overhead_pct =
          Bench_run.pct_overhead
            ~baseline:baseline.Bench_run.phases.Bench_run.compute_cycles
            r.Bench_run.phases.Bench_run.compute_cycles;
        total_overhead_pct =
          Bench_run.pct_overhead ~baseline:baseline.Bench_run.cycles r.Bench_run.cycles;
        result = r;
      })
    results

let run_benchmark ?(paper_size = false) ?jobs name =
  rows_of_results name
    (Pool.map ?jobs (fun mode -> run_point ~paper_size ~bench:name ~mode) modes)

(* Fan (benchmark x mode) across domains; [Pool.map] returns results in
   input order, so regrouping into per-benchmark rows — and therefore
   every table and export downstream — is independent of [jobs]. *)
let run_set ?(paper_size = false) ?jobs set =
  let points =
    List.concat_map (fun (name, _, _) -> List.map (fun m -> (name, m)) modes) set
  in
  let results =
    Pool.map ?jobs (fun (name, mode) -> run_point ~paper_size ~bench:name ~mode) points
  in
  let n_modes = List.length modes in
  List.concat
    (List.mapi
       (fun i (name, _, _) ->
         rows_of_results name
           (List.filteri (fun j _ -> j / n_modes = i) results))
       set)

let run_all ?paper_size ?jobs () = run_set ?paper_size ?jobs benchmarks
let run_extended ?paper_size ?jobs () = run_set ?paper_size ?jobs extended_benchmarks
