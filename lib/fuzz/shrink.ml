(* Greedy shrinking of a failing program against an arbitrary failure
   predicate.

   Two passes, each run to a fixpoint:

     1. instruction deletion — try removing each instruction in turn,
        keeping any deletion under which the program still fails;
     2. operand simplification — rewrite surviving instructions toward
        canonical operands (immediate 0, index register $zero, branch
        offset 1), keeping any rewrite under which the program still
        fails.

   The predicate re-runs the whole harness (single or lockstep) on each
   candidate, so the result is a genuinely minimal *reproducer*, not a
   syntactic trim.  Everything is deterministic: candidates are tried in
   a fixed order, so the same failure always shrinks to the same
   program. *)

open Beri

let remove_at a i = Array.append (Array.sub a 0 i) (Array.sub a (i + 1) (Array.length a - i - 1))

(* Strictly-simpler variants of one instruction, most aggressive first. *)
let simpler = function
  | Insn.Daddiu (d, s, i) when i <> 0 -> [ Insn.Daddiu (d, s, 0) ]
  | Insn.Load (w, u, rt, b, o) when o <> 0 -> [ Insn.Load (w, u, rt, b, 0) ]
  | Insn.Store (w, rt, b, o) when o <> 0 -> [ Insn.Store (w, rt, b, 0) ]
  | Insn.CLoad (w, u, rd, cb, rt, i) ->
      (if rt <> 0 then [ Insn.CLoad (w, u, rd, cb, 0, i) ] else [])
      @ (if i <> 0 then [ Insn.CLoad (w, u, rd, cb, rt, 0) ] else [])
  | Insn.CStore (w, rs, cb, rt, i) ->
      (if rt <> 0 then [ Insn.CStore (w, rs, cb, 0, i) ] else [])
      @ (if i <> 0 then [ Insn.CStore (w, rs, cb, rt, 0) ] else [])
  | Insn.CLC (cd, cb, rt, i) ->
      (if rt <> 0 then [ Insn.CLC (cd, cb, 0, i) ] else [])
      @ (if i <> 0 then [ Insn.CLC (cd, cb, rt, 0) ] else [])
  | Insn.CSC (cs, cb, rt, i) ->
      (if rt <> 0 then [ Insn.CSC (cs, cb, 0, i) ] else [])
      @ (if i <> 0 then [ Insn.CSC (cs, cb, rt, 0) ] else [])
  | Insn.Beq (s, t, o) when o <> 1 -> [ Insn.Beq (s, t, 1) ]
  | Insn.Bne (s, t, o) when o <> 1 -> [ Insn.Bne (s, t, 1) ]
  | Insn.CBTU (c, o) when o <> 1 -> [ Insn.CBTU (c, 1) ]
  | Insn.CBTS (c, o) when o <> 1 -> [ Insn.CBTS (c, 1) ]
  | _ -> []

(* [minimize ~check program] requires [check program = true] ("still
   fails") and returns the minimized program together with the number of
   predicate evaluations spent. *)
let minimize ~check (program : Insn.t array) =
  let checks = ref 0 in
  let fails p =
    incr checks;
    check p
  in
  let cur = ref (Array.copy program) in
  (* pass 1: deletion to a fixpoint *)
  let changed = ref true in
  while !changed do
    changed := false;
    let i = ref 0 in
    while !i < Array.length !cur && Array.length !cur > 1 do
      let cand = remove_at !cur !i in
      if fails cand then begin
        cur := cand;
        changed := true
      end
      else incr i
    done
  done;
  (* pass 2: operand simplification to a fixpoint *)
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to Array.length !cur - 1 do
      List.iter
        (fun insn' ->
          if not !changed then begin
            let cand = Array.copy !cur in
            cand.(i) <- insn';
            if fails cand then begin
              cur := cand;
              changed := true
            end
          end)
        (simpler (!cur).(i))
    done
  done;
  (!cur, !checks)
