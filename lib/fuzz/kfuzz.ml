(* Kernel protected-call surface fuzzing (`cheri_fuzz --mode kernel`).

   The instruction-level campaigns ([Gen]/[Exec]) fuzz the architecture;
   this module fuzzes the *kernel model* itself: the trap-emulated
   CCall/CReturn handlers and their trusted stack (Section 11).  Each
   seed generates a scenario — a sequence of protected-call attempts
   with deliberately damaged capability pairs (untagged, unsealed,
   mismatched object types) interleaved with returns, including returns
   on an empty trusted stack — and drives the kernel handlers directly
   with host-minted capabilities, no simulated instructions in between.

   The oracle is a pure model of the protected-call contract, advanced
   in lockstep:

     - refusal order and architectural cause: tags before seals before
       object types, with the precise [Cap.Cause] in capcause;
     - trusted-stack depth after every operation;
     - the ccall/creturn/ctx_save/ctx_restore counter file;
     - domain entry/exit: PCC and C0 must land on the invoked pair's
       segments on entry and be restored exactly on return.

   Any disagreement is a campaign failure (the kernel handler and the
   written contract diverge); refusals themselves are expected outcomes
   and are tallied, mirroring the instruction campaigns' trap classes. *)

open Beri
module Prng = Fault.Prng

(* One protected-call attempt: how to mint the C1/C2 pair. *)
type pair_spec = {
  code_otype : int;
  data_otype : int; (* <> code_otype models a confused-deputy pair *)
  code_tag : bool;
  data_tag : bool;
  code_sealed : bool;
  data_sealed : bool;
  code_base : int64;
  data_base : int64;
}

type op = Call of pair_spec | Return

let pp_op ppf = function
  | Return -> Fmt.string ppf "creturn"
  | Call s ->
      Fmt.pf ppf "ccall code(base=0x%Lx ot=%d%s%s) data(base=0x%Lx ot=%d%s%s)" s.code_base
        s.code_otype
        (if s.code_tag then "" else " untagged")
        (if s.code_sealed then "" else " unsealed")
        s.data_base s.data_otype
        (if s.data_tag then "" else " untagged")
        (if s.data_sealed then "" else " unsealed")

(* --- generation ----------------------------------------------------------- *)

type cfg = { programs : int; ops : int; base_seed : int64 }

let default = { programs = 1000; ops = 24; base_seed = 1L }

let segment_length = 0x100L

let gen_pair rng =
  let region () = Int64.of_int (0x2000 * (1 + Prng.int rng 1024)) in
  let ot = 1 + Prng.int rng 48 in
  let spec =
    {
      code_otype = ot;
      data_otype = ot;
      code_tag = true;
      data_tag = true;
      code_sealed = true;
      data_sealed = true;
      code_base = region ();
      data_base = region ();
    }
  in
  (* Most pairs are valid; each damage class hits one side at random so
     the check-order oracle sees every combination over a campaign. *)
  match Prng.int rng 6 with
  | 0 -> if Prng.bool rng then { spec with code_tag = false } else { spec with data_tag = false }
  | 1 ->
      if Prng.bool rng then { spec with code_sealed = false }
      else { spec with data_sealed = false }
  | 2 -> { spec with data_otype = (if ot = 1 then 2 else ot - 1) }
  | _ -> spec

let generate cfg seed =
  let rng = Prng.create seed in
  let depth = ref 0 in
  List.init cfg.ops (fun _ ->
      (* Returns get likelier as the stack deepens; 1 in 8 ops attempts a
         return even when the stack is empty (the Return_trap path). *)
      let want_return =
        if Prng.int rng 8 = 0 then true
        else !depth > 0 && Prng.int rng (2 + !depth) <> 0 && Prng.bool rng
      in
      if want_return then begin
        if !depth > 0 then decr depth;
        Return
      end
      else
        let spec = gen_pair rng in
        if spec.code_tag && spec.data_tag && spec.code_sealed && spec.data_sealed
           && spec.code_otype = spec.data_otype
        then incr depth;
        Call spec)

(* --- the pure model ------------------------------------------------------- *)

type expectation =
  | Enter (* push a frame; PCC/C0 move to the pair's segments *)
  | Refuse of Cap.Cause.t (* Halt 96 with this capcause *)
  | Pop (* restore the top frame *)
  | Empty_return (* Halt 97, capcause Return_trap *)

let expect_call s =
  if not (s.code_tag && s.data_tag) then Refuse Cap.Cause.Tag_violation
  else if not (s.code_sealed && s.data_sealed) then Refuse Cap.Cause.Seal_violation
  else if s.code_otype <> s.data_otype then Refuse Cap.Cause.Type_violation
  else Enter

let expectation_key = function
  | Enter -> "entered"
  | Refuse Cap.Cause.Tag_violation -> "refused-tag"
  | Refuse Cap.Cause.Seal_violation -> "refused-seal"
  | Refuse Cap.Cause.Type_violation -> "refused-type"
  | Refuse _ -> "refused-other"
  | Pop -> "returned"
  | Empty_return -> "empty-return"

(* --- scenario execution --------------------------------------------------- *)

let seal_authority =
  Cap.Capability.make ~perms:Cap.Perms.all ~base:0L ~length:Cap.U64.max_value

let mint spec ~base ~otype ~tagged ~sealed =
  let c = Cap.Capability.make ~perms:Cap.Perms.all ~base ~length:segment_length in
  let c =
    if sealed then
      match Cap.Capability.seal c ~authority:seal_authority ~otype with
      | Ok c -> c
      | Error e -> Fmt.invalid_arg "Kfuzz.mint: %s" (Cap.Cause.to_string e)
    else c
  in
  ignore spec;
  if tagged then c else Cap.Capability.clear_tag c

(* A model frame mirrors what the kernel must restore. *)
type frame = { f_pcc : int64; f_c0 : int64; f_return : int64 }

type outcome = {
  tallies : (string * int) list; (* expectation_key counts, scenario-local *)
  mismatch : string option; (* first divergence, if any *)
}

let run_scenario machine cfg seed =
  let m = machine in
  let k = Os.Kernel.attach m in
  (* A recognizable caller domain: the model tracks its bases. *)
  let caller_pcc = 0x1_0000L and caller_c0 = 0x2_0000L in
  m.Machine.pcc <-
    Cap.Capability.make ~perms:Cap.Perms.all ~base:caller_pcc ~length:0x1_0000L;
  Machine.set_cap m 0
    (Cap.Capability.make ~perms:Cap.Perms.all ~base:caller_c0 ~length:0x1_0000L);
  m.Machine.cp0.Cp0.capcause <- Cap.Cause.None_;
  let ops = generate cfg seed in
  let stack = ref [] in
  let calls = ref 0 and returns = ref 0 and saves = ref 0 and restores = ref 0 in
  let tallies = Hashtbl.create 8 in
  let tally key = Hashtbl.replace tallies key (1 + Option.value ~default:0 (Hashtbl.find_opt tallies key)) in
  let mismatch = ref None in
  let fail idx fmt =
    Fmt.kstr
      (fun s ->
        if !mismatch = None then
          mismatch := Some (Fmt.str "seed %Ld op %d: %s" seed idx s))
      fmt
  in
  let check_counters idx =
    if k.Os.Kernel.ccalls <> !calls then
      fail idx "ccalls %d, model %d" k.Os.Kernel.ccalls !calls;
    if k.Os.Kernel.creturns <> !returns then
      fail idx "creturns %d, model %d" k.Os.Kernel.creturns !returns;
    if k.Os.Kernel.ctx_saves <> !saves then
      fail idx "ctx_saves %d, model %d" k.Os.Kernel.ctx_saves !saves;
    if k.Os.Kernel.ctx_restores <> !restores then
      fail idx "ctx_restores %d, model %d" k.Os.Kernel.ctx_restores !restores;
    if Os.Kernel.trusted_stack_depth k <> List.length !stack then
      fail idx "trusted-stack depth %d, model %d"
        (Os.Kernel.trusted_stack_depth k)
        (List.length !stack)
  in
  List.iteri
    (fun idx op ->
      if !mismatch = None then
        match op with
        | Call spec ->
            let code =
              mint spec ~base:spec.code_base ~otype:spec.code_otype ~tagged:spec.code_tag
                ~sealed:spec.code_sealed
            in
            let data =
              mint spec ~base:spec.data_base ~otype:spec.data_otype ~tagged:spec.data_tag
                ~sealed:spec.data_sealed
            in
            Machine.set_cap m 1 code;
            Machine.set_cap m 2 data;
            let epc = Int64.of_int (0x100 + (8 * idx)) in
            m.Machine.cp0.Cp0.epc <- epc;
            let expected = expect_call spec in
            tally (expectation_key expected);
            incr calls;
            (* The caller's domain, as the kernel must restore it later. *)
            let caller_frame =
              {
                f_pcc = Cap.Capability.base m.Machine.pcc;
                f_c0 = Cap.Capability.base (Machine.cap m 0);
                f_return = Int64.add epc 4L;
              }
            in
            let action = Os.Kernel.handle_ccall k in
            (match (expected, action) with
            | Enter, Machine.Resume_at pc ->
                incr saves;
                stack := caller_frame :: !stack;
                (* ... which must now be the *callee's* domain. *)
                if pc <> spec.code_base then
                  fail idx "entered at 0x%Lx, expected code base 0x%Lx" pc spec.code_base;
                if Cap.Capability.base m.Machine.pcc <> spec.code_base then
                  fail idx "PCC base 0x%Lx, expected 0x%Lx"
                    (Cap.Capability.base m.Machine.pcc)
                    spec.code_base;
                if Cap.Capability.base (Machine.cap m 0) <> spec.data_base then
                  fail idx "C0 base 0x%Lx, expected 0x%Lx"
                    (Cap.Capability.base (Machine.cap m 0))
                    spec.data_base
            | Enter, Machine.Halt c -> fail idx "valid pair refused (halt %d)" c
            | Refuse cause, Machine.Halt 96 ->
                if m.Machine.cp0.Cp0.capcause <> cause then
                  fail idx "capcause %s, expected %s"
                    (Cap.Cause.to_string m.Machine.cp0.Cp0.capcause)
                    (Cap.Cause.to_string cause)
            | Refuse _, Machine.Resume_at pc -> fail idx "damaged pair entered at 0x%Lx" pc
            | _, action ->
                fail idx "unexpected kernel action %s"
                  (match action with
                  | Machine.Resume_at pc -> Printf.sprintf "resume@0x%Lx" pc
                  | Machine.Halt c -> Printf.sprintf "halt %d" c
                  | _ -> "fatal"));
            check_counters idx
        | Return ->
            let expected = match !stack with [] -> Empty_return | _ :: _ -> Pop in
            tally (expectation_key expected);
            incr returns;
            let action = Os.Kernel.handle_creturn k in
            (match (expected, action) with
            | Pop, Machine.Resume_at pc ->
                incr restores;
                (match !stack with
                | [] -> assert false
                | frame :: rest ->
                    stack := rest;
                    if pc <> frame.f_return then
                      fail idx "returned to 0x%Lx, expected 0x%Lx" pc frame.f_return;
                    if Cap.Capability.base m.Machine.pcc <> frame.f_pcc then
                      fail idx "PCC base 0x%Lx not restored to 0x%Lx"
                        (Cap.Capability.base m.Machine.pcc)
                        frame.f_pcc;
                    if Cap.Capability.base (Machine.cap m 0) <> frame.f_c0 then
                      fail idx "C0 base 0x%Lx not restored to 0x%Lx"
                        (Cap.Capability.base (Machine.cap m 0))
                        frame.f_c0)
            | Pop, Machine.Halt c -> fail idx "return with frames halted %d" c
            | Empty_return, Machine.Halt 97 ->
                if m.Machine.cp0.Cp0.capcause <> Cap.Cause.Return_trap then
                  fail idx "empty-return capcause %s, expected %s"
                    (Cap.Cause.to_string m.Machine.cp0.Cp0.capcause)
                    (Cap.Cause.to_string Cap.Cause.Return_trap)
            | Empty_return, Machine.Resume_at pc ->
                fail idx "empty-stack return resumed at 0x%Lx" pc
            | _, Machine.Halt c -> fail idx "unexpected halt %d" c
            | _, _ -> fail idx "unexpected kernel action");
            check_counters idx)
    ops;
  {
    tallies = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tallies [];
    mismatch = !mismatch;
  }

(* --- the campaign --------------------------------------------------------- *)

let outcome_keys =
  [| "entered"; "refused-tag"; "refused-seal"; "refused-type"; "returned"; "empty-return"; "mismatch" |]

type result = {
  cfg : cfg;
  programs_done : int;
  tallies : int64 array; (* indexed per [outcome_keys] *)
  wall_s : float;
  failures : (int64 * string) list; (* capped example mismatches, seed order *)
}

let chunk_size = 128
let max_failures = 32

let key_index key =
  let rec go i =
    if i >= Array.length outcome_keys then invalid_arg ("Kfuzz.key_index: " ^ key)
    else if String.equal outcome_keys.(i) key then i
    else go (i + 1)
  in
  go 0

let run ?(jobs = 1) ?(wall = true) cfg =
  let t0 = if wall then Unix.gettimeofday () else 0.0 in
  let chunks =
    let rec go i acc =
      if i >= cfg.programs then List.rev acc
      else
        let e = min cfg.programs (i + chunk_size) in
        go e ((i, e - i) :: acc)
    in
    go 0 []
  in
  let run_chunk (lo, len) =
    let m = Machine.create () in
    let tallies = Array.make (Array.length outcome_keys) 0L in
    let failures = ref [] in
    for i = 0 to len - 1 do
      let seed = Int64.add cfg.base_seed (Int64.of_int (lo + i)) in
      let o = run_scenario m cfg seed in
      List.iter
        (fun (key, n) ->
          let idx = key_index key in
          tallies.(idx) <- Int64.add tallies.(idx) (Int64.of_int n))
        o.tallies;
      match o.mismatch with
      | Some reason ->
          tallies.(Array.length outcome_keys - 1) <-
            Int64.add tallies.(Array.length outcome_keys - 1) 1L;
          if List.length !failures < max_failures then failures := (seed, reason) :: !failures
      | None -> ()
    done;
    (tallies, List.rev !failures)
  in
  let shards = Exp.Pool.map ~jobs run_chunk chunks in
  let tallies = Array.make (Array.length outcome_keys) 0L in
  let failures = ref [] in
  List.iter
    (fun (t, fs) ->
      Array.iteri (fun i v -> tallies.(i) <- Int64.add tallies.(i) v) t;
      List.iter
        (fun f -> if List.length !failures < max_failures then failures := f :: !failures)
        fs)
    shards;
  {
    cfg;
    programs_done = cfg.programs;
    tallies;
    wall_s = (if wall then Unix.gettimeofday () -. t0 else 0.0);
    failures = List.rev !failures;
  }

let clean r = Int64.equal r.tallies.(Array.length outcome_keys - 1) 0L

(* Deterministic replay of one seed: print the scenario and its verdict. *)
let replay cfg ~seed =
  let m = Machine.create () in
  let ops = generate cfg seed in
  let o = run_scenario m cfg seed in
  let desc =
    Fmt.str "@[<v>%a@,%s@]"
      (Fmt.list ~sep:Fmt.cut (fun ppf op -> Fmt.pf ppf "  %a" pp_op op))
      ops
      (match o.mismatch with Some r -> "MISMATCH: " ^ r | None -> "clean")
  in
  (desc, o.mismatch <> None)

let pp ppf r =
  Fmt.pf ppf "kernel fuzz campaign: programs=%d ops=%d base-seed=%Ld@." r.programs_done r.cfg.ops
    r.cfg.base_seed;
  Array.iteri
    (fun i key -> if r.tallies.(i) <> 0L then Fmt.pf ppf "  %-16s %Ld@." key r.tallies.(i))
    outcome_keys;
  if r.wall_s > 0.0 then Fmt.pf ppf "  %-16s %.2f@." "wall_s" r.wall_s;
  if r.failures <> [] then begin
    Fmt.pf ppf "  mismatching seeds:@.";
    List.iter (fun (seed, reason) -> Fmt.pf ppf "    %Ld: %s@." seed reason) r.failures
  end

(* Export through the lib/obs schema, same shape as the instruction
   campaigns: tallies as spans, scenario count in samples. *)
let export_entry r =
  let counters = Obs.Counters.create () in
  Obs.Counters.set_int counters Obs.Counters.samples r.programs_done;
  let spans =
    Array.to_list
      (Array.mapi
         (fun i key ->
           let c = Obs.Counters.create () in
           Obs.Counters.set c Obs.Counters.instret r.tallies.(i);
           ("outcome:" ^ key, c))
         outcome_keys)
  in
  { Obs.Export.bench = "fuzz"; mode = "kernel"; param = r.programs_done; wall_s = r.wall_s; counters; spans }
