(* Single-machine fuzz harness: run one generated program under the
   instruction budget and the [Fault.Monitor] oracles, and classify the
   outcome.

   The monitor rides the machine's per-retirement step hook.  An oracle
   violation cannot abort the run by raising (the run loop's catch-all
   would fold a stray exception into [Trap_unhandled] and destroy the
   classification), so the hook records the first violation set in a ref
   and the run simply plays out its budget; the program is short enough
   that this costs nothing.

   Memory sweeps are sampled every [mem_period] retirements *relative to
   the program's own start*: the machine object is reused across
   thousands of programs and [instret] is monotone across them, so an
   absolute phase would make a program's sampling points — and in the
   limit its classification — depend on which programs ran before it on
   the same machine, breaking sharded/resumed determinism. *)

type outcome =
  | Clean (* ran to the Break terminator *)
  | Cap_trap of Cap.Cause.t (* capability coprocessor exception *)
  | Other_trap of Beri.Cp0.exc (* any other architectural exception *)
  | Monitor of Fault.Monitor.violation list (* an oracle fired: a machine bug *)
  | Hang (* exhausted the budget: straight-line code cannot loop, so also a bug *)

let outcome_key = function
  | Clean -> "ok"
  | Cap_trap _ -> "trap-cap"
  | Other_trap _ -> "trap-other"
  | Monitor _ -> "monitor"
  | Hang -> "hang"

let pp_outcome ppf = function
  | Clean -> Fmt.string ppf "clean exit"
  | Cap_trap c -> Fmt.pf ppf "capability trap (%s)" (Cap.Cause.to_string c)
  | Other_trap e -> Fmt.pf ppf "trap (%s)" (Beri.Cp0.exc_to_string e)
  | Monitor vs ->
      Fmt.pf ppf "monitor violation: %a" (Fmt.list ~sep:Fmt.semi Fault.Monitor.pp_violation) vs
  | Hang -> Fmt.string ppf "budget exhausted"

let mem_period = 32

type monitor = {
  violations : Fault.Monitor.violation list ref;
  finish : unit -> unit; (* detach the hook and run the final full sweep *)
}

let attach_monitor m (cfg : Gen.cfg) =
  let root = Gen.monitor_root cfg in
  let violations = ref [] in
  let start = m.Machine.instret in
  let sweep_mem () =
    match Fault.Monitor.check_memory ~root m ~base:Gen.scalar_base ~len:Gen.region_len with
    | [] -> Fault.Monitor.check_memory ~root m ~base:Gen.cap_base ~len:Gen.region_len
    | vs -> vs
  in
  let note vs = if !violations = [] && vs <> [] then violations := vs in
  Machine.set_step_hook m
    (Some
       (fun m ->
         if !violations = [] then begin
           note (Fault.Monitor.check_regs ~root m);
           if !violations = [] && (m.Machine.instret - start) land (mem_period - 1) = 0 then
             note (sweep_mem ())
         end));
  let finish () =
    Machine.set_step_hook m None;
    note (Fault.Monitor.check_regs ~root m);
    if !violations = [] then note (sweep_mem ())
  in
  { violations; finish }

(* Classify a finished run from the machine's recorded last exception.
   The generator terminates every program with Break, so a clean exit
   reports [Breakpoint]. *)
let classify_exit (m : Machine.t) =
  match m.Machine.cp0.Beri.Cp0.last_exc with
  | Some Beri.Cp0.Breakpoint | None -> Clean
  | Some (Beri.Cp0.Cp2 cause) -> Cap_trap cause
  | Some exc -> Other_trap exc

(* Run [program] for [seed] on [m] (any prior state is overwritten by the
   deterministic reset).  Returns the outcome and the retired-instruction
   count. *)
let run m (cfg : Gen.cfg) ~seed ~program =
  Gen.reset m cfg seed;
  Gen.load m program;
  let mon = attach_monitor m cfg in
  let start = m.Machine.instret in
  let result = Machine.run_result ~max_insns:(Int64.of_int (Gen.budget cfg)) m in
  mon.finish ();
  let retired = m.Machine.instret - start in
  let outcome =
    if !(mon.violations) <> [] then Monitor !(mon.violations)
    else
      match result with
      | Machine.Exited _ -> classify_exit m
      | Machine.Budget_exhausted _ | Machine.Watchdog_hang _ -> Hang
      | Machine.Trap_unhandled (ctx, _) -> Other_trap ctx.Machine.exc
  in
  (outcome, retired)
