(* Random well-formed instruction-sequence generator for the
   observational-correctness fuzzer (ROADMAP item 4).

   Programs are straight-line MIPS+CHERI sequences with forward-only
   branches, biased toward the capability operations the paper's security
   argument rests on: derivation chains (CIncBase/CSetLen/CAndPerm),
   sealing (CSeal/CUnseal/CCall), capability loads and stores that
   straddle bounds, and tag-clearing scalar writes over capability lines.
   Every program is a pure function of its 64-bit seed ([Fault.Prng] is
   splitmix64, stable across OCaml versions), so one seed names one
   program forever — the property replay, shrinking, and checkpointed
   resume all lean on.

   The machine world the programs run in is fixed and rebuilt from the
   seed before each run ([reset]): a 1 MiB flat machine with the code at
   [code_base], a scalar data window at [scalar_base] (seed-filled), and
   a capability storage window at [cap_base] (zeroed, tags clear).

   Register discipline (what keeps the differential mode honest): the
   same program must be *observationally comparable* on the 256-bit and
   the 128-bit machine.  Capability registers split into a clean pool
   {c0..c4, c7, c8} whose field values are width-independent (they only
   ever hold capabilities derived from [Capability.make] roots, which
   round-trip the compressed format exactly), and a dirty pool {c5, c6}
   that CLC may fill with untagged line residue — 32 raw bytes decode
   differently than 16, so dirty fields are only observable through
   their tag (CGetTag) and the comparator treats untagged registers as
   equal.  CGet*/CToPtr and derivations read the clean pool only; CLC
   and CMove land in the dirty pool.  For the same reason all CLC/CSC
   offsets and all tag-clearing stores into the capability window are
   32-byte aligned: the two widths tag at different granularities (32 vs
   16 bytes), and line-aligned traffic is exactly the traffic on which
   their tag observations agree.

   GPR roles: r8-r15 scratch (r8-r11 seeded small, r12-r15 full-random),
   r16/r17 small aligned offsets, r18 a 32-byte line index, r19 a
   near-bounds straddler (region_len minus a few words), r20 the legacy
   base (legacy loads/stores are C0-relative), r21 a W128-unrepresentable
   length (wide mode only).

   Bounds-aware operand selection: generated code never writes r16-r21,
   so the generator learns their values by replaying the reset PRNG's
   register prefix ([world_of_seed]) and tracks a small static model of
   each capability register (guaranteed length, surely-tagged,
   seal state).  Operands for memory ops and derivations are drawn to
   satisfy the model — offsets that fit the bounds, derivation sources
   that are surely tagged and unsealed, unseals only of surely-sealed
   capabilities — except for a deliberate 1-in-8 "stray" fraction per
   risky arm that falls back to unconstrained draws, keeping every trap
   class represented.  Instructions in a forward branch's shadow may or
   may not execute, so while a shadow is open model updates are joined
   pessimistically with the pre-instruction state.  The result is that
   most programs run to their terminator (exercising long superblock
   chains and the comparison logic on real data flow) instead of
   trapping within a few instructions, without giving up trap
   coverage. *)

open Beri

let mem_size = 1 lsl 20
let code_base = 0x1000L
let scalar_base = 0x20000L
let cap_base = 0x30000L
let region_len = 4096L

(* Longer than the 40-bit compressed bounds field: a capability this long
   lives happily in registers on either machine but cannot be stored by
   the 128-bit one ([Cap128.compress] refuses with [Non_exact_bounds]). *)
let wide_len = Int64.shift_left 1L 50

(* Seal authority segment base = the otype programs seal with; kept below
   2^16 so the compressed otype field round-trips it. *)
let seal_otype = 0x40

(* Architectural permission bits only (0..8): the compressed format keeps
   16 perms bits, so these survive a store-reload on either width
   unchanged and a comparison never sees a perms-masking artefact. *)
let fuzz_perms = Cap.Perms.of_int 0x1FF

type cfg = {
  insns : int; (* generated instructions per program (before the Break terminator) *)
  wide : bool; (* arm c8/r21 with W128-unrepresentable bounds (lockstep mode) *)
}

let default = { insns = 24; wide = false }

(* The monotonicity root the invariant monitor checks reachable
   capabilities against: it must dominate every capability [reset]
   installs. *)
let monitor_root cfg =
  Cap.Capability.make ~perms:fuzz_perms ~base:0L
    ~length:(if cfg.wide then wide_len else Int64.of_int mem_size)

(* Instruction budget for one program: straight-line code with
   forward-only branches cannot loop, so this is pure slack. *)
let budget cfg = (2 * cfg.insns) + 64

let create_machine ?engine width =
  let config = { Machine.default_config with Machine.mem_size; Machine.cap_width = width } in
  let m = Machine.create ~config () in
  (match engine with Some e -> Machine.set_engine m e | None -> ());
  (* Fuzzing measures observational correctness, not cycles. *)
  Machine.set_timing m false;
  Machine.map_identity m ~vaddr:0L ~len:mem_size Mem.Tlb.prot_rwx;
  (* Any exception ends the program: the exit code names the exception
     class, [cp0.last_exc] carries the precise identity. *)
  Machine.set_kernel m (fun _ ctx -> Machine.Halt (100 + Cp0.exc_code ctx.Machine.exc));
  m

(* Deterministic full reset: the same machine object is reused across
   thousands of programs, so every piece of state a program can observe
   is rewritten from the seed — data windows, tags, the whole register
   file, CP0.  A program's outcome is therefore independent of which
   programs ran before it on the same machine, which is what makes
   sharding, checkpoint/resume, and replay all agree bit-for-bit. *)
let reset m cfg seed =
  let p = Fault.Prng.create (Int64.logxor seed 0xDA7A_5EEDL) in
  (* Register draws come FIRST in the PRNG stream: the generator replays
     exactly this prefix ([world_of_seed]) to learn the offset registers'
     values without paying for the memory image draws. *)
  for i = 1 to 31 do
    Machine.set_gpr m i 0L
  done;
  m.Machine.regs.Regs.hi <- 0L;
  m.Machine.regs.Regs.lo <- 0L;
  for i = 8 to 11 do
    Machine.set_gpr m i (Fault.Prng.int64 p 4096L)
  done;
  for i = 12 to 15 do
    Machine.set_gpr m i (Fault.Prng.next p)
  done;
  Machine.set_gpr m 16 (Int64.of_int (8 * Fault.Prng.int p 512));
  Machine.set_gpr m 17 (Int64.of_int (8 * Fault.Prng.int p 512));
  Machine.set_gpr m 18 (Int64.of_int (32 * Fault.Prng.int p 128));
  Machine.set_gpr m 19 (Int64.sub region_len (Int64.of_int (8 * Fault.Prng.int p 5)));
  Machine.set_gpr m 20 scalar_base;
  Machine.set_gpr m 21 (Int64.add (Int64.shift_left 1L 41) (Fault.Prng.int64 p (Int64.shift_left 1L 45)));
  let phys = m.Machine.phys in
  let len = Int64.to_int region_len in
  let off = ref 0 in
  while !off < len do
    Mem.Phys.write_u64 phys (Int64.add scalar_base (Int64.of_int !off)) (Fault.Prng.next p);
    Mem.Phys.write_u64 phys (Int64.add cap_base (Int64.of_int !off)) 0L;
    off := !off + 8
  done;
  Mem.Tags.clear_range m.Machine.tags scalar_base len;
  Mem.Tags.clear_range m.Machine.tags cap_base len;
  let mk b l = Cap.Capability.make ~perms:fuzz_perms ~base:b ~length:l in
  for i = 0 to 31 do
    Machine.set_cap m i Cap.Capability.null
  done;
  Machine.set_cap m 0 (mk 0L (Int64.of_int mem_size));
  Machine.set_cap m 1 (mk scalar_base region_len);
  Machine.set_cap m 2 (mk cap_base region_len);
  Machine.set_cap m 3 (mk scalar_base region_len);
  Machine.set_cap m 4 (mk cap_base region_len);
  Machine.set_cap m 7 (mk (Int64.of_int seal_otype) 64L);
  Machine.set_cap m 8 (if cfg.wide then mk 0L wide_len else mk 0L (Int64.of_int mem_size));
  m.Machine.pcc <- mk 0L (Int64.of_int mem_size);
  m.Machine.pc <- code_base;
  m.Machine.ll_bit <- false;
  let cp0 = m.Machine.cp0 in
  cp0.Cp0.mode <- Cp0.Kernel;
  cp0.Cp0.exl <- false;
  cp0.Cp0.epc <- 0L;
  cp0.Cp0.badvaddr <- 0L;
  cp0.Cp0.last_exc <- None;
  cp0.Cp0.capcause <- Cap.Cause.None_;
  cp0.Cp0.capcause_reg <- 0

(* Breaks past the program end: a not-taken final branch can overshoot
   its own terminator by up to the maximum forward offset. *)
let terminator_pad = 4

let load m (program : Insn.t array) =
  let phys = m.Machine.phys in
  Array.iteri
    (fun i insn ->
      Mem.Phys.write_u32 phys (Int64.add code_base (Int64.of_int (4 * i))) (Code.encode insn))
    program;
  let n = Array.length program in
  let brk = Code.encode Insn.Break in
  for i = n to n + terminator_pad do
    Mem.Phys.write_u32 phys (Int64.add code_base (Int64.of_int (4 * i))) brk
  done;
  Machine.invalidate_icache m

(* --- the generator proper ----------------------------------------------- *)

(* The values [reset] gives the never-overwritten offset registers,
   recovered by replaying the same PRNG prefix.  [w21] is the wide
   length; the rest are small offsets into the 4 KiB windows. *)
type world = { w16 : int; w17 : int; w18 : int; w19 : int; w21 : int64 }

let world_of_seed seed =
  let p = Fault.Prng.create (Int64.logxor seed 0xDA7A_5EEDL) in
  for _ = 8 to 11 do
    ignore (Fault.Prng.int64 p 4096L)
  done;
  for _ = 12 to 15 do
    ignore (Fault.Prng.next p)
  done;
  let w16 = 8 * Fault.Prng.int p 512 in
  let w17 = 8 * Fault.Prng.int p 512 in
  let w18 = 32 * Fault.Prng.int p 128 in
  let w19 = Int64.to_int region_len - (8 * Fault.Prng.int p 5) in
  let w21 = Int64.add (Int64.shift_left 1L 41) (Fault.Prng.int64 p (Int64.shift_left 1L 45)) in
  { w16; w17; w18; w19; w21 }

let scratch = [ 8; 9; 10; 11; 12; 13; 14; 15 ]
let small_offsets = [ 16; 17; 19 ] (* r19 is the bounds straddler *)
let derive_dst = [ 3; 4 ]
let clean_src = [ 0; 1; 2; 3; 4; 7; 8 ]
let dirty_dst = [ 5; 6 ]
let any_cap = [ 1; 2; 3; 4; 5; 6; 7; 8 ]
let widths = [ Insn.B; Insn.H; Insn.W; Insn.D ]

(* Static model of one capability register: what the generator can
   guarantee about it at the current program point.  [avail] is the
   guaranteed length (a lower bound — joins take the min), [tagged]
   means *surely* tagged, [seal] is three-valued because a branch shadow
   can leave it genuinely unknown. *)
type seal_state = Unsealed | Sealed | Unknown_seal

type cmodel = { mutable avail : int; mutable tagged : bool; mutable seal : seal_state }

let copy_model m = { avail = m.avail; tagged = m.tagged; seal = m.seal }

(* Matches the capability file [reset] installs. *)
let initial_model cfg =
  let mk avail = { avail; tagged = true; seal = Unsealed } in
  let dirty () = { avail = 0; tagged = false; seal = Unknown_seal } in
  let len = Int64.to_int region_len in
  [|
    mk mem_size (* c0 *);
    mk len (* c1 *);
    mk len (* c2 *);
    mk len (* c3 *);
    mk len (* c4 *);
    dirty () (* c5 *);
    dirty () (* c6 *);
    mk 64 (* c7: seal authority *);
    mk (if cfg.wide then Int64.to_int wide_len else mem_size) (* c8 *);
  |]

(* Weighted draw over closures.  Every random operand below is bound with
   an explicit [let ... in] before the constructor is applied: OCaml's
   argument evaluation order is unspecified, and the generator's whole
   contract is that one seed names one program. *)
let weighted p table =
  let total = List.fold_left (fun a (w, _) -> a + w) 0 table in
  let n = ref (Fault.Prng.int p total) in
  let rec go = function
    | (w, f) :: rest ->
        if !n < w then f ()
        else begin
          n := !n - w;
          go rest
        end
    | [] -> assert false
  in
  go table

let generate cfg seed : Insn.t array =
  let p = Fault.Prng.create (Int64.logxor seed 0xC0DE_F22DL) in
  let world = world_of_seed seed in
  let model = initial_model cfg in
  let shadow = ref 0 in
  let r () = Fault.Prng.choose p scratch in
  let small () = Fault.Prng.choose p small_offsets in
  let dst () = Fault.Prng.choose p derive_dst in
  let src () = Fault.Prng.choose p clean_src in
  let width () = Fault.Prng.choose p widths in
  (* CLC/CSC index: $zero or the 32-aligned line register. *)
  let line_index () = if Fault.Prng.bool p then 0 else 18 in
  let line_imm () = 32 * Fault.Prng.int p 4 in
  (* CLoad/CStore immediates are signed 8-bit in the encoding; keep them
     small, aligned, and positive — reach comes from the index register. *)
  let imm_for w =
    let size = Insn.width_bytes w in
    size * Fault.Prng.int p (128 / size)
  in
  let legacy_off w =
    let size = Insn.width_bytes w in
    size * Fault.Prng.int p (Int64.to_int region_len / size)
  in
  (* The known value of an offset register ($zero included). *)
  let rval = function
    | 0 -> 0
    | 16 -> world.w16
    | 17 -> world.w17
    | 18 -> world.w18
    | 19 -> world.w19
    | _ -> assert false
  in
  (* The deliberate stray fraction: 1 in 8 risky operands ignores the
     model so every trap class stays represented. *)
  let stray () = Fault.Prng.int p 8 = 0 in
  let usable c = model.(c).tagged && model.(c).seal = Unsealed in
  (* Never empty: c0/c1/c2 are never written, so they always qualify. *)
  let usable_srcs () = List.filter usable clean_src in
  (* An in-bounds immediate for a [size]-byte access at known offset
     [rtv] into a 4 KiB window, quantised to [step] with at most
     [max_slots] choices (the encoding's immediate field). *)
  let fit ~step ~max_slots ~size rtv =
    let room = Int64.to_int region_len - rtv - size in
    let slots = min max_slots ((room / step) + 1) in
    step * Fault.Prng.int p slots
  in
  let set_model c ~avail ~tagged ~seal =
    let m = model.(c) in
    m.avail <- avail;
    m.tagged <- tagged;
    m.seal <- seal
  in
  (* After a stray (or otherwise unpredictable) write: assume nothing. *)
  let taint c = set_model c ~avail:0 ~tagged:false ~seal:Unknown_seal in
  let table =
    [
      ( 10,
        fun () ->
          let d = r () in
          let s = r () in
          let t = r () in
          let op =
            Fault.Prng.choose p
              [
                (fun () -> Insn.Daddu (d, s, t));
                (fun () -> Insn.Dsubu (d, s, t));
                (fun () -> Insn.And (d, s, t));
                (fun () -> Insn.Or (d, s, t));
                (fun () -> Insn.Xor (d, s, t));
                (fun () -> Insn.Sltu (d, s, t));
              ]
          in
          op () );
      ( 4,
        fun () ->
          let d = r () in
          let s = r () in
          let i = Fault.Prng.int p 512 - 256 in
          Insn.Daddiu (d, s, i) );
      ( 2,
        fun () ->
          let d = r () in
          let s = r () in
          let sh = Fault.Prng.int p 32 in
          if Fault.Prng.bool p then Insn.Dsll (d, s, sh) else Insn.Dsrl (d, s, sh) );
      ( 5,
        fun () ->
          let w = width () in
          (* no unsigned form of the 64-bit legacy load exists *)
          let u = Fault.Prng.bool p && w <> Insn.D in
          let rt = r () in
          let off = legacy_off w in
          Insn.Load (w, u, rt, 20, off) );
      ( 4,
        fun () ->
          let w = width () in
          let rt = r () in
          let off = legacy_off w in
          Insn.Store (w, rt, 20, off) );
      ( 8,
        fun () ->
          let w = width () in
          let u = Fault.Prng.bool p in
          let rd = r () in
          if stray () then begin
            let rt = if Fault.Prng.int p 4 = 0 then 0 else small () in
            let i = imm_for w in
            Insn.CLoad (w, u, rd, 1, rt, i)
          end
          else begin
            let rt = Fault.Prng.choose p [ 0; 16; 17 ] in
            let size = Insn.width_bytes w in
            let i = fit ~step:size ~max_slots:(128 / size) ~size (rval rt) in
            Insn.CLoad (w, u, rd, 1, rt, i)
          end );
      ( 6,
        fun () ->
          let w = width () in
          let rs = r () in
          if stray () then begin
            let rt = if Fault.Prng.int p 4 = 0 then 0 else small () in
            let i = imm_for w in
            Insn.CStore (w, rs, 1, rt, i)
          end
          else begin
            let rt = Fault.Prng.choose p [ 0; 16; 17 ] in
            let size = Insn.width_bytes w in
            let i = fit ~step:size ~max_slots:(128 / size) ~size (rval rt) in
            Insn.CStore (w, rs, 1, rt, i)
          end );
      (* Tag-clearing arithmetic: a scalar write over a capability line. *)
      ( 4,
        fun () ->
          let rs = r () in
          let rt = line_index () in
          let i = if stray () then line_imm () else fit ~step:32 ~max_slots:4 ~size:8 (rval rt) in
          Insn.CStore (Insn.D, rs, 2, rt, i) );
      ( 5,
        fun () ->
          let cd = Fault.Prng.choose p dirty_dst in
          let rt = line_index () in
          let i =
            if stray () then line_imm () else fit ~step:32 ~max_slots:4 ~size:32 (rval rt)
          in
          (* whatever the line holds: only the tag is comparable *)
          taint cd;
          Insn.CLC (cd, 2, rt, i) );
      ( 7,
        fun () ->
          let cs = Fault.Prng.choose p any_cap in
          let rt = line_index () in
          let i =
            if stray () then line_imm () else fit ~step:32 ~max_slots:4 ~size:32 (rval rt)
          in
          Insn.CSC (cs, 2, rt, i) );
      ( 6,
        fun () ->
          let cd = dst () in
          if stray () then begin
            let cb = src () in
            let rt = small () in
            taint cd;
            Insn.CIncBase (cd, cb, rt)
          end
          else begin
            let cb = Fault.Prng.choose p (usable_srcs ()) in
            let avail = model.(cb).avail in
            let rts = 0 :: List.filter (fun x -> rval x <= avail) [ 16; 17; 19 ] in
            let rt = Fault.Prng.choose p rts in
            set_model cd ~avail:(avail - rval rt) ~tagged:true ~seal:Unsealed;
            Insn.CIncBase (cd, cb, rt)
          end );
      ( 5,
        fun () ->
          let cd = dst () in
          if stray () then begin
            let cb = src () in
            let rt = small () in
            taint cd;
            Insn.CSetLen (cd, cb, rt)
          end
          else begin
            let cb = Fault.Prng.choose p (usable_srcs ()) in
            let avail = model.(cb).avail in
            let rts = 0 :: List.filter (fun x -> rval x <= avail) [ 16; 17; 19 ] in
            let rt = Fault.Prng.choose p rts in
            set_model cd ~avail:(rval rt) ~tagged:true ~seal:Unsealed;
            Insn.CSetLen (cd, cb, rt)
          end );
      ( 3,
        fun () ->
          let cd = dst () in
          let rt = r () in
          if stray () then begin
            let cb = src () in
            taint cd;
            Insn.CAndPerm (cd, cb, rt)
          end
          else begin
            let cb = Fault.Prng.choose p (usable_srcs ()) in
            set_model cd ~avail:model.(cb).avail ~tagged:true ~seal:Unsealed;
            Insn.CAndPerm (cd, cb, rt)
          end );
      ( 2,
        fun () ->
          let cd = dst () in
          let cb = src () in
          let m = model.(cb) in
          set_model cd ~avail:m.avail ~tagged:false ~seal:m.seal;
          Insn.CClearTag (cd, cb) );
      ( 2,
        fun () ->
          let cd = Fault.Prng.choose p dirty_dst in
          let cb = Fault.Prng.choose p any_cap in
          let m = model.(cb) in
          set_model cd ~avail:m.avail ~tagged:m.tagged ~seal:m.seal;
          Insn.CMove (cd, cb) );
      ( 4,
        fun () ->
          let d = r () in
          let c = src () in
          let op =
            Fault.Prng.choose p
              [
                (fun () -> Insn.CGetBase (d, c));
                (fun () -> Insn.CGetLen (d, c));
                (fun () -> Insn.CGetPerm (d, c));
                (fun () -> Insn.CGetTag (d, c));
              ]
          in
          op () );
      (* Tag visibility is comparable even for the dirty pool. *)
      ( 2,
        fun () ->
          let d = r () in
          let c = Fault.Prng.choose p any_cap in
          Insn.CGetTag (d, c) );
      ( 1,
        fun () ->
          let d = r () in
          let cd = dst () in
          set_model cd ~avail:mem_size ~tagged:true ~seal:Unsealed;
          Insn.CGetPCC (d, cd) );
      ( 2,
        fun () ->
          let d = r () in
          let c = src () in
          Insn.CToPtr (d, c, 0) );
      ( 2,
        fun () ->
          let cd = dst () in
          let cb = Fault.Prng.choose p [ 0; 1; 2 ] in
          let rt = small () in
          let v = rval rt in
          (* from_ptr of 0 is the NULL cast: cd is the untagged null cap *)
          if v = 0 then set_model cd ~avail:0 ~tagged:false ~seal:Unsealed
          else set_model cd ~avail:(model.(cb).avail - v) ~tagged:true ~seal:Unsealed;
          Insn.CFromPtr (cd, cb, rt) );
      ( 4,
        fun () ->
          let cd = dst () in
          match List.filter usable derive_dst with
          | [] ->
              let cs = Fault.Prng.choose p derive_dst in
              taint cd;
              Insn.CSeal (cd, cs, 7)
          | pool ->
              let cs = Fault.Prng.choose p pool in
              set_model cd ~avail:model.(cs).avail ~tagged:true ~seal:Sealed;
              Insn.CSeal (cd, cs, 7) );
      ( 3,
        fun () ->
          let cd = dst () in
          match
            List.filter (fun c -> model.(c).tagged && model.(c).seal = Sealed) derive_dst
          with
          | cs_pool when cs_pool <> [] ->
              let cs = Fault.Prng.choose p cs_pool in
              set_model cd ~avail:model.(cs).avail ~tagged:true ~seal:Unsealed;
              Insn.CUnseal (cd, cs, 7)
          | _ -> (
              (* nothing surely sealed to unseal: seal something instead
                 when possible, otherwise take the seal-violation trap *)
              match List.filter usable derive_dst with
              | [] ->
                  let cs = Fault.Prng.choose p derive_dst in
                  taint cd;
                  Insn.CUnseal (cd, cs, 7)
              | pool ->
                  let cs = Fault.Prng.choose p pool in
                  set_model cd ~avail:model.(cs).avail ~tagged:true ~seal:Sealed;
                  Insn.CSeal (cd, cs, 7)) );
      ( 2,
        fun () ->
          let c = Fault.Prng.choose p any_cap in
          let off = 1 + Fault.Prng.int p 3 in
          shadow := max !shadow off;
          if Fault.Prng.bool p then Insn.CBTU (c, off) else Insn.CBTS (c, off) );
      ( 3,
        fun () ->
          let s = r () in
          let t = r () in
          let off = 1 + Fault.Prng.int p 3 in
          shadow := max !shadow off;
          if Fault.Prng.bool p then Insn.Beq (s, t, off) else Insn.Bne (s, t, off) );
    ]
  in
  let table =
    if cfg.wide then
      (* Push the compressed machine toward representability refusals:
         derive from the almighty-length c8 and bound with the
         unrepresentable length in r21, then let the CSC bias above try
         to store the result. *)
      ( 6,
        fun () ->
          let cd = dst () in
          set_model cd ~avail:(Int64.to_int world.w21) ~tagged:true ~seal:Unsealed;
          Insn.CSetLen (cd, 8, 21) )
      :: ( 3,
           fun () ->
             let cd = dst () in
             let rt = small () in
             set_model cd
               ~avail:(Int64.to_int wide_len - rval rt)
               ~tagged:true ~seal:Unsealed;
             Insn.CIncBase (cd, 8, rt) )
      :: table
    else table
  in
  (* CCall/CReturn unconditionally trap to the kernel (domain-crossing
     software path), ending the program — so they only appear in the
     last quarter, where they cost little of the straight-line tail. *)
  let terminal_table = (1, fun () -> Insn.CCall (3, 4)) :: (1, fun () -> Insn.CReturn) :: table in
  Array.init cfg.insns (fun idx ->
      (* Instructions inside a forward branch's shadow may be skipped:
         consume one shadow slot first (so a nested branch extends it
         correctly), then join this instruction's model updates with the
         pre-state, keeping only what holds on both paths. *)
      let pre =
        if !shadow > 0 then begin
          decr shadow;
          Some (Array.map copy_model model)
        end
        else None
      in
      let insn = weighted p (if 4 * idx >= 3 * cfg.insns then terminal_table else table) in
      (match pre with
      | None -> ()
      | Some old ->
          Array.iteri
            (fun i o ->
              let n = model.(i) in
              n.avail <- min n.avail o.avail;
              n.tagged <- n.tagged && o.tagged;
              if n.seal <> o.seal then n.seal <- Unknown_seal)
            old);
      insn)
