(* Engine-differential execution: the same seeded program runs on two
   256-bit machines that differ in exactly one respect — the interpreter
   engine (superblock vs plain step loop).  The two engines are required
   to be architecturally indistinguishable, so *everything* observable
   must agree at the end of the run: the outcome class, the exception
   identity, PC, the scalar and capability register files, PCC, the
   retired-instruction count, the cycle count (timing is ON here, unlike
   the other fuzz modes — the superblock tier charges its own I-side
   costs, and this is the harness that checks them), the memory
   hierarchy's event counters, and the full store stream.

   Unlike [Lockstep], the comparison is per *run*, not per retirement:
   stepping the superblock machine one instruction at a time (or hanging
   a step hook off it) would force its hook-aware paths and leave the
   unhooked fast loop — the code that actually runs full-size
   benchmarks — untested.  The store stream closes the per-step
   observability gap: every store an instruction performs is folded
   (address, kind, payload) into a running digest through the machine's
   store hook, which fires identically under both engines and does not
   perturb superblock formation.  Any intermediate architectural
   divergence either changes a later store / final state (caught) or was
   never observable in the first place. *)

type outcome =
  | Agree of Exec.outcome * int (* identical observations; shared outcome + retired count *)
  | Engine_mismatch of { what : string } (* any observable difference: an engine bug *)

let outcome_key = function
  | Agree (o, _) -> Exec.outcome_key o
  | Engine_mismatch _ -> "mismatch"

let pp_outcome ppf = function
  | Agree (o, n) -> Fmt.pf ppf "engines agree after %d retirements: %a" n Exec.pp_outcome o
  | Engine_mismatch { what } -> Fmt.pf ppf "ENGINE MISMATCH: %s" what

(* One machine per engine.  Timing stays ON (see above); both sides see
   the same program sequence, so reused machines' cache/TLB states evolve
   identically and never desynchronize the comparison. *)
let create_pair () =
  let mk engine =
    let m = Gen.create_machine ~engine Machine.W256 in
    Machine.set_timing m true;
    m
  in
  (mk Machine.Superblock, mk Machine.Plain)

(* Store-stream digest: splitmix-style fold of (addr, kind, payload)
   triples, plus a count.  Collisions would need an adversarial engine
   bug; any plausible divergence perturbs the digest. *)
type stream = { mutable count : int; mutable digest : int64 }

let mix h v =
  let h = Int64.mul (Int64.logxor h v) 0xFF51_AFD7_ED55_8CCDL in
  Int64.logxor h (Int64.shift_right_logical h 33)

let record st addr kind payload =
  st.count <- st.count + 1;
  st.digest <- mix (mix (mix st.digest addr) (Int64.of_int kind)) payload

(* A run on one machine: outcome class + retired count + store stream +
   cycle count.  [last_exc] and register state are read off the machine
   afterwards (the caller compares the two sides' final states). *)
let run_one m (cfg : Gen.cfg) seed program =
  Gen.reset m cfg seed;
  Gen.load m program;
  let st = { count = 0; digest = 0x9E37_79B9_7F4A_7C15L } in
  Machine.set_store_hook m (Some (fun addr kind payload -> record st addr kind payload));
  let start_i = m.Machine.instret and start_c = m.Machine.cycles in
  let result = Machine.run_result ~max_insns:(Int64.of_int (Gen.budget cfg)) m in
  Machine.set_store_hook m None;
  (result, m.Machine.instret - start_i, m.Machine.cycles - start_c, st)

let result_class = function
  | Machine.Exited code -> Printf.sprintf "exited(%d)" code
  | Machine.Budget_exhausted _ -> "budget-exhausted"
  | Machine.Watchdog_hang _ -> "watchdog-hang"
  | Machine.Trap_unhandled (ctx, _) ->
      Printf.sprintf "trap-unhandled(%s)" (Beri.Cp0.exc_to_string ctx.Machine.exc)

(* First observable difference between the two finished machines, or
   [None].  The register comparison is exact ([Capability.equal], not the
   cross-width observational rule): both machines are W256, so even
   untagged CLC residue must match bit for bit. *)
let compare_final (ms : Machine.t) (mp : Machine.t) =
  let diff = ref None in
  let note what = if !diff = None then diff := Some what in
  if ms.Machine.pc <> mp.Machine.pc then
    note (Printf.sprintf "pc: 0x%Lx vs 0x%Lx" ms.Machine.pc mp.Machine.pc);
  for i = 1 to 31 do
    let a = Machine.gpr ms i and b = Machine.gpr mp i in
    if a <> b then note (Printf.sprintf "r%d: 0x%Lx vs 0x%Lx" i a b)
  done;
  if ms.Machine.regs.Beri.Regs.hi <> mp.Machine.regs.Beri.Regs.hi then note "hi differs";
  if ms.Machine.regs.Beri.Regs.lo <> mp.Machine.regs.Beri.Regs.lo then note "lo differs";
  for j = 0 to 31 do
    if not (Cap.Capability.equal (Machine.cap ms j) (Machine.cap mp j)) then
      note
        (Printf.sprintf "c%d: %s vs %s" j
           (Fmt.str "%a" Cap.Capability.pp (Machine.cap ms j))
           (Fmt.str "%a" Cap.Capability.pp (Machine.cap mp j)))
  done;
  if not (Cap.Capability.equal ms.Machine.pcc mp.Machine.pcc) then note "pcc differs";
  (match (ms.Machine.cp0.Beri.Cp0.last_exc, mp.Machine.cp0.Beri.Cp0.last_exc) with
  | Some a, Some b when a <> b ->
      note
        (Printf.sprintf "last exception: %s vs %s" (Beri.Cp0.exc_to_string a)
           (Beri.Cp0.exc_to_string b))
  | Some a, None -> note (Printf.sprintf "last exception: %s vs none" (Beri.Cp0.exc_to_string a))
  | None, Some b -> note (Printf.sprintf "last exception: none vs %s" (Beri.Cp0.exc_to_string b))
  | _ -> ());
  (* Memory-hierarchy event counters: the superblock tier charges the
     timing model itself, so hit/miss totals are part of the contract. *)
  let cs = Obs.Counters.create () and cp = Obs.Counters.create () in
  Mem.Hierarchy.fill_counters ms.Machine.hier cs;
  Mem.Hierarchy.fill_counters mp.Machine.hier cp;
  Array.iteri
    (fun i name ->
      if
        (* engine telemetry legitimately differs; everything else may not *)
        i <> Obs.Counters.sb_translations && i <> Obs.Counters.sb_dispatches
        && i <> Obs.Counters.sb_retired
        && Obs.Counters.get cs i <> Obs.Counters.get cp i
      then
        note
          (Printf.sprintf "counter %s: %Ld vs %Ld" name (Obs.Counters.get cs i)
             (Obs.Counters.get cp i)))
    Obs.Counters.names;
  !diff

(* Run [program] for [seed] on the engine pair.  Both machines are
   deterministically reset; they may be reused across calls. *)
let run (cfg : Gen.cfg) ~seed ~program ~(m_sb : Machine.t) ~(m_plain : Machine.t) =
  let r_sb, i_sb, c_sb, st_sb = run_one m_sb cfg seed program in
  let r_plain, i_plain, c_plain, st_plain = run_one m_plain cfg seed program in
  let mismatch what = Engine_mismatch { what } in
  if result_class r_sb <> result_class r_plain then
    mismatch
      (Printf.sprintf "outcome: %s vs %s" (result_class r_sb) (result_class r_plain))
  else if i_sb <> i_plain then mismatch (Printf.sprintf "instret: %d vs %d" i_sb i_plain)
  else if c_sb <> c_plain then mismatch (Printf.sprintf "cycles: %d vs %d" c_sb c_plain)
  else if st_sb.count <> st_plain.count then
    mismatch (Printf.sprintf "store count: %d vs %d" st_sb.count st_plain.count)
  else if st_sb.digest <> st_plain.digest then
    mismatch
      (Printf.sprintf "store stream digest: 0x%Lx vs 0x%Lx" st_sb.digest st_plain.digest)
  else
    match compare_final m_sb m_plain with
    | Some what -> mismatch ("final state: " ^ what)
    | None ->
        let outcome =
          match r_sb with
          | Machine.Exited _ -> Exec.classify_exit m_sb
          | Machine.Budget_exhausted _ | Machine.Watchdog_hang _ -> Exec.Hang
          | Machine.Trap_unhandled (ctx, _) -> Exec.Other_trap ctx.Machine.exc
        in
        Agree (outcome, i_sb)
