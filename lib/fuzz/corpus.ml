(* Persisted corpus of minimized fuzz failures.

   One JSON file per failure, named by mode and seed.  The file carries
   both the encoded instruction words (the authoritative program — replay
   decodes these, so a corpus file reproduces *exactly* the minimized
   program even if the generator's biases later change) and a
   disassembly for the human reading the corpus.  The seed alone also
   replays the original un-shrunk program via [--replay SEED], since the
   generator is a pure function of the seed.

   Schema:

     { "schema": "cheri-fuzz-failure/1",
       "seed": <int64>, "mode": "cheri"|"cheri128"|"lockstep",
       "wide": bool, "insns": <generator length>,
       "reason": <first-divergence / oracle description>,
       "words": [ <encoded u32>, ... ],
       "disasm": [ <string>, ... ] } *)

open Beri

type failure = {
  seed : int64;
  mode : string; (* campaign mode key *)
  wide : bool;
  insns : int; (* generator program length the seed was drawn under *)
  reason : string;
  program : Insn.t array; (* the minimized failing program *)
}

let schema = "cheri-fuzz-failure/1"

let to_json f =
  let words =
    Array.to_list f.program
    |> List.map (fun i -> Obs.Json.Int (Int64.of_int (Code.encode i land 0xFFFFFFFF)))
  in
  let disasm = Array.to_list f.program |> List.map (fun i -> Obs.Json.String (Fmt.str "%a" Insn.pp i)) in
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String schema);
      ("seed", Obs.Json.Int f.seed);
      ("mode", Obs.Json.String f.mode);
      ("wide", Obs.Json.Bool f.wide);
      ("insns", Obs.Json.Int (Int64.of_int f.insns));
      ("reason", Obs.Json.String f.reason);
      ("words", Obs.Json.List words);
      ("disasm", Obs.Json.List disasm);
    ]

exception Malformed = Fault.Checkpoint.Malformed

let of_json j =
  (match Fault.Checkpoint.get_string "schema" j with
  | s when String.equal s schema -> ()
  | s -> raise (Malformed (Printf.sprintf "unsupported schema %S (want %S)" s schema)));
  let words =
    match Fault.Checkpoint.get "words" j with
    | Obs.Json.List ws ->
        List.map
          (function
            | Obs.Json.Int w -> Int64.to_int w
            | _ -> raise (Malformed "words: expected integers"))
          ws
    | _ -> raise (Malformed "words: expected list")
  in
  let bool_field key =
    match Fault.Checkpoint.get key j with
    | Obs.Json.Bool b -> b
    | _ -> raise (Malformed (key ^ ": expected bool"))
  in
  {
    seed = Fault.Checkpoint.get_i64 "seed" j;
    mode = Fault.Checkpoint.get_string "mode" j;
    wide = bool_field "wide";
    insns = Fault.Checkpoint.get_int "insns" j;
    reason = Fault.Checkpoint.get_string "reason" j;
    program = Array.of_list (List.map Code.decode words);
  }

let path ~dir f = Filename.concat dir (Printf.sprintf "fuzz-%s-%Ld.json" f.mode f.seed)

let save ~dir f =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let p = path ~dir f in
  let oc = open_out p in
  output_string oc (Obs.Json.to_string (to_json f));
  output_char oc '\n';
  close_out oc;
  p

let load file =
  match
    let ic = open_in_bin file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    of_json (Obs.Json.parse s)
  with
  | f -> Ok f
  | exception Malformed msg -> Error (Printf.sprintf "%s: %s" file msg)
  | exception Obs.Json.Parse_error (msg, off) ->
      Error (Printf.sprintf "%s: JSON parse error at byte %d: %s" file off msg)
  | exception Sys_error msg -> Error msg
