(* Differential lockstep execution: the same seeded program runs on a
   256-bit and a 128-bit machine, stepping both one instruction at a
   time and diffing everything architecturally observable at each
   retirement — PC, the scalar register file (including HI/LO), the
   capability register file and PCC, the store stream, and on
   termination the exit path (exception identity and halt code).

   Exactly one divergence class is *permitted*, and it is classified
   rather than ignored: the compressed machine refusing to store a
   capability whose bounds its 40-bit fields cannot represent
   ([Cp2 Non_exact_bounds] out of CSC, per the paper's Section 3.7
   fat-pointer compression discussion).  The wide generator arms c8/r21
   precisely to provoke these.  Anything else — a value difference, a
   tag difference, one machine trapping where the other retires, store
   streams out of agreement — is a [Mismatch]: a genuine observational
   bug in one of the two implementations.

   Capability registers compare by *observation*, not representation: a
   tag disagreement is a mismatch; two untagged registers are equal
   (their field bits may be width-dependent CLC residue, which no
   capability-respecting observation can distinguish); two tagged
   registers compare all fields.  The store stream uses the machine's
   store hook: scalar stores compare (addr, width, value) exactly,
   capability stores compare (addr, [Machine.cap_digest]) — the digest
   folds base/length/perms/otype/seal for tagged stores and collapses
   untagged stores to a constant, mirroring the register rule.

   The invariant monitor runs on the 256-bit side only: in wide mode the
   clean pool legitimately holds W128-unrepresentable capabilities, which
   the 128-bit machine's well-formedness oracle would (correctly, per its
   own model) reject. *)

type divergence = {
  step : int; (* joint retirement index at which the streams split *)
  what : string; (* description of the first difference *)
}

type outcome =
  | Joint of Exec.outcome * int (* streams agreed at every retirement; shared outcome + length *)
  | Representability of divergence (* the one permitted class, classified *)
  | Mismatch of divergence (* observational disagreement: a bug *)

let outcome_key = function
  | Joint (o, _) -> Exec.outcome_key o
  | Representability _ -> "rep-divergence"
  | Mismatch _ -> "mismatch"

let pp_outcome ppf = function
  | Joint (o, n) -> Fmt.pf ppf "agree after %d steps: %a" n Exec.pp_outcome o
  | Representability d -> Fmt.pf ppf "representability divergence at step %d: %s" d.step d.what
  | Mismatch d -> Fmt.pf ppf "MISMATCH at step %d: %s" d.step d.what

(* --- store-stream recording --------------------------------------------- *)

(* One record per side, overwritten at every joint step: the generated
   subset issues at most one store per instruction. [count] guards that
   assumption rather than trusting it. *)
type events = {
  mutable count : int;
  mutable addr : int64;
  mutable kind : int; (* scalar width in bytes; 0 = capability store *)
  mutable payload : int64; (* scalar value, or the capability digest *)
}

let fresh_events () = { count = 0; addr = 0L; kind = 0; payload = 0L }

let clear ev = ev.count <- 0

let record ev addr kind payload =
  ev.count <- ev.count + 1;
  ev.addr <- addr;
  ev.kind <- kind;
  ev.payload <- payload

(* --- state comparison ---------------------------------------------------- *)

let cap_obs_equal a b =
  if Cap.Capability.tag a <> Cap.Capability.tag b then false
  else if not (Cap.Capability.tag a) then true
  else Cap.Capability.equal a b

(* First observable difference between the two machines after a joint
   step, or [None].  Descriptions are only materialised on the failure
   path. *)
let compare_states (m256 : Machine.t) (m128 : Machine.t) ev256 ev128 =
  if m256.Machine.pc <> m128.Machine.pc then
    Some (Printf.sprintf "pc: 0x%Lx vs 0x%Lx" m256.Machine.pc m128.Machine.pc)
  else begin
    let diff = ref None in
    (* scalar registers *)
    let i = ref 1 in
    while !diff = None && !i < 32 do
      let a = Machine.gpr m256 !i and b = Machine.gpr m128 !i in
      if a <> b then diff := Some (Printf.sprintf "r%d: 0x%Lx vs 0x%Lx" !i a b);
      incr i
    done;
    if !diff = None && m256.Machine.regs.Beri.Regs.hi <> m128.Machine.regs.Beri.Regs.hi then
      diff := Some "hi differs";
    if !diff = None && m256.Machine.regs.Beri.Regs.lo <> m128.Machine.regs.Beri.Regs.lo then
      diff := Some "lo differs";
    (* capability registers + pcc *)
    let j = ref 0 in
    while !diff = None && !j < 32 do
      let a = Machine.cap m256 !j and b = Machine.cap m128 !j in
      if not (cap_obs_equal a b) then
        diff :=
          Some
            (Printf.sprintf "c%d: %s vs %s" !j
               (Fmt.str "%a" Cap.Capability.pp a)
               (Fmt.str "%a" Cap.Capability.pp b));
      incr j
    done;
    if !diff = None && not (cap_obs_equal m256.Machine.pcc m128.Machine.pcc) then
      diff := Some "pcc differs";
    (* store stream *)
    if !diff = None then begin
      if ev256.count <> ev128.count then
        diff := Some (Printf.sprintf "store count: %d vs %d" ev256.count ev128.count)
      else if
        ev256.count > 0
        && (ev256.addr <> ev128.addr || ev256.kind <> ev128.kind || ev256.payload <> ev128.payload)
      then
        diff :=
          Some
            (Printf.sprintf "store: addr 0x%Lx kind %d payload 0x%Lx vs addr 0x%Lx kind %d payload 0x%Lx"
               ev256.addr ev256.kind ev256.payload ev128.addr ev128.kind ev128.payload)
    end;
    !diff
  end

(* --- the lockstep loop --------------------------------------------------- *)

type side = Running | Ended of int (* kernel halt code *)

let step_once m =
  match Machine.step m with
  | () -> Running
  | exception Machine.Halted code -> Ended code
  | exception Machine.Unhandled ctx -> Ended (1000 + Beri.Cp0.exc_code ctx.Machine.exc)

let last_exc (m : Machine.t) = m.Machine.cp0.Beri.Cp0.last_exc

(* The permitted divergence: the 128-bit side ended this step on a
   compressed-bounds refusal while the 256-bit side did not end the same
   way (same-cause joint traps compare equal and never reach here). *)
let is_representability s128 m128 =
  match s128 with
  | Ended _ -> (
      match last_exc m128 with
      | Some (Beri.Cp0.Cp2 c) -> Cap.Cause.equal c Cap.Cause.Non_exact_bounds
      | _ -> false)
  | Running -> false

let classify step what s128 m128 =
  if is_representability s128 m128 then Representability { step; what }
  else Mismatch { step; what }

(* Run [program] for [seed] on the machine pair.  Both machines are
   deterministically reset; they may be reused across calls. *)
let run (cfg : Gen.cfg) ~seed ~program ~(m256 : Machine.t) ~(m128 : Machine.t) =
  Gen.reset m256 cfg seed;
  Gen.reset m128 cfg seed;
  Gen.load m256 program;
  Gen.load m128 program;
  let ev256 = fresh_events () and ev128 = fresh_events () in
  Machine.set_store_hook m256 (Some (fun addr kind payload -> record ev256 addr kind payload));
  Machine.set_store_hook m128 (Some (fun addr kind payload -> record ev128 addr kind payload));
  let mon = Exec.attach_monitor m256 cfg in
  let budget = Gen.budget cfg in
  let detach () =
    Machine.set_store_hook m256 None;
    Machine.set_store_hook m128 None;
    mon.Exec.finish ()
  in
  let rec go step =
    if step >= budget then begin
      detach ();
      Joint (Exec.Hang, step)
    end
    else begin
      clear ev256;
      clear ev128;
      let s256 = step_once m256 in
      let s128 = step_once m128 in
      match (s256, s128) with
      | Running, Running -> (
          if !(mon.Exec.violations) <> [] then begin
            let vs = !(mon.Exec.violations) in
            detach ();
            Joint (Exec.Monitor vs, step)
          end
          else
            match compare_states m256 m128 ev256 ev128 with
            | None -> go (step + 1)
            | Some what ->
                detach ();
                classify step what s128 m128)
      | Ended a, Ended b ->
          detach ();
          let exc_agree =
            match (last_exc m256, last_exc m128) with
            | Some (Beri.Cp0.Cp2 ca), Some (Beri.Cp0.Cp2 cb) -> Cap.Cause.equal ca cb
            | ea, eb -> ea = eb
          in
          if a = b && exc_agree then begin
            match compare_states m256 m128 ev256 ev128 with
            | None ->
                if !(mon.Exec.violations) <> [] then
                  Joint (Exec.Monitor !(mon.Exec.violations), step)
                else Joint (Exec.classify_exit m256, step)
            | Some what -> classify step ("final state: " ^ what) s128 m128
          end
          else
            classify step
              (Printf.sprintf "exit: code %d (%s) vs code %d (%s)" a
                 (match last_exc m256 with Some e -> Beri.Cp0.exc_to_string e | None -> "none")
                 b
                 (match last_exc m128 with Some e -> Beri.Cp0.exc_to_string e | None -> "none"))
              s128 m128
      | Ended a, Running ->
          detach ();
          classify step
            (Printf.sprintf "w256 ended (code %d, %s) while w128 retired" a
               (match last_exc m256 with Some e -> Beri.Cp0.exc_to_string e | None -> "none"))
            s128 m128
      | Running, Ended b ->
          detach ();
          classify step
            (Printf.sprintf "w128 ended (code %d, %s) while w256 retired" b
               (match last_exc m128 with Some e -> Beri.Cp0.exc_to_string e | None -> "none"))
            s128 m128
    end
  in
  go 0
