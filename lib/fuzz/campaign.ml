(* Checkpointed fuzzing campaigns: N seeded programs through the chosen
   harness, fanned across domains, with deterministic aggregation.

   Determinism contract (what the @par-determ and resume tests pin):
   a campaign's final result is a pure function of its [cfg].  Three
   mechanisms deliver that —

     - every program's outcome is a pure function of its seed ([Gen]'s
       full reset makes machine reuse invisible);
     - sharding partitions the seed range into fixed 128-seed chunks at
       *absolute* seed indices and merges shard results in seed order
       ([Exp.Pool.map] preserves input order), so [--jobs N] changes
       wall-clock only;
     - checkpoints snapshot the seed cursor plus the aggregates
       ([Fault.Checkpoint]), and resume folds them back in and continues
       at the cursor, so an interrupted-and-resumed campaign's final
       export is byte-identical to an uninterrupted one.

   The one thing a checkpoint does not carry is the capped example-seed
   list for failures found before the interruption: those live in the
   corpus directory (if one was given), not in the aggregate state. *)

type mode =
  | Cheri (* single 256-bit machine, oracles on every retirement *)
  | Cheri128 (* single 128-bit machine (narrow bounds: every cap representable) *)
  | Lockstep (* W256 vs W128 differential, the tentpole mode *)
  | Engines (* W256 superblock vs W256 plain engine differential *)

let mode_key = function
  | Cheri -> "cheri"
  | Cheri128 -> "cheri128"
  | Lockstep -> "lockstep"
  | Engines -> "engines"

let mode_of_string = function
  | "cheri" -> Some Cheri
  | "cheri128" -> Some Cheri128
  | "lockstep" -> Some Lockstep
  | "engines" -> Some Engines
  | _ -> None

type cfg = {
  mode : mode;
  programs : int; (* seeds in the campaign *)
  insns : int; (* instructions per generated program *)
  base_seed : int64; (* seed of program i is base_seed + i *)
  wide : bool; (* arm W128-unrepresentable bounds (lockstep only; see [gen_cfg]) *)
}

let default = { mode = Lockstep; programs = 1000; insns = 24; base_seed = 1L; wide = true }

(* A single-width 128-bit run must stay narrow: its own well-formedness
   oracle (correctly) rejects unrepresentable register values, and there
   is no wide machine to diff against. *)
let gen_cfg cfg =
  { Gen.insns = cfg.insns; Gen.wide = (cfg.wide && cfg.mode <> Cheri128) }

(* Outcome tallies, indexed per [outcome_keys]. *)
let outcome_keys = [| "ok"; "trap-cap"; "trap-other"; "monitor"; "hang"; "rep-divergence"; "mismatch" |]

let k_ok = 0
let k_trap_cap = 1
let k_trap_other = 2
let k_monitor = 3
let k_hang = 4
let k_rep = 5
let k_mismatch = 6

(* A campaign failure: a seed whose program must be shrunk and filed.
   Monitor hits, hangs, and lockstep mismatches qualify; traps and
   representability divergences are expected behaviour. *)
let failure_index = function
  | i when i = k_monitor || i = k_hang || i = k_mismatch -> true
  | _ -> false

type result = {
  cfg : cfg;
  programs_done : int;
  tallies : int64 array; (* indexed per [outcome_keys] *)
  instret : int64; (* joint retirements (lockstep counts the pair once) *)
  wall_s : float; (* this process's share only; 0.0 when wall is off *)
  insn_hist : Obs.Hist.t; (* retired instructions per program *)
  violation_hist : Obs.Hist.t; (* oracle violations per flagged program *)
  failures : (int64 * string) list; (* example failing seeds with reasons (capped) *)
}

let chunk_size = 128
let max_failures = 32

let fingerprint cfg =
  Printf.sprintf "fuzz:%s:programs=%d:insns=%d:base=%Ld:wide=%b" (mode_key cfg.mode) cfg.programs
    cfg.insns cfg.base_seed cfg.wide

(* --- per-chunk worker ---------------------------------------------------- *)

type shard = {
  s_tallies : int64 array;
  s_instret : int64;
  s_insn_hist : Obs.Hist.t;
  s_violation_hist : Obs.Hist.t;
  s_failures : (int64 * string) list; (* in seed order *)
}

let new_insn_hist () = Obs.Hist.create ~name:"fuzz-insns-per-program" ()
let new_violation_hist () = Obs.Hist.create ~name:"fuzz-oracle-violations" ()

(* Run seeds [lo, lo+len) and aggregate locally.  Fresh machines per
   chunk: machine state never crosses a shard boundary, so the chunk
   partition is invisible in the results.

   [engine] overrides the interpreter engine of the single-width and
   lockstep machines.  It is deliberately *not* part of [cfg] (and so
   not part of the checkpoint fingerprint): the engines are required to
   be architecturally indistinguishable, so a campaign result is the
   same function of [cfg] under either — that equivalence is itself
   pinned by the [Engines] mode, which runs both and ignores the
   override. *)
let run_chunk ?engine cfg (lo, len) =
  let gcfg = gen_cfg cfg in
  let tallies = Array.make (Array.length outcome_keys) 0L in
  let instret = ref 0L in
  let ih = new_insn_hist () in
  let vh = new_violation_hist () in
  let failures = ref [] in
  let note idx seed retired reason nviol =
    tallies.(idx) <- Int64.add tallies.(idx) 1L;
    instret := Int64.add !instret (Int64.of_int retired);
    Obs.Hist.observe_int ih retired;
    if nviol > 0 then Obs.Hist.observe_int vh nviol;
    match reason with
    | Some r when failure_index idx && List.length !failures < max_failures ->
        failures := (seed, r) :: !failures
    | _ -> ()
  in
  let note_single seed (outcome, retired) =
    match outcome with
    | Exec.Clean -> note k_ok seed retired None 0
    | Exec.Cap_trap _ -> note k_trap_cap seed retired None 0
    | Exec.Other_trap _ -> note k_trap_other seed retired None 0
    | Exec.Hang -> note k_hang seed retired (Some "instruction budget exhausted") 0
    | Exec.Monitor vs ->
        note k_monitor seed retired
          (Some (Fmt.str "%a" (Fmt.list ~sep:Fmt.semi Fault.Monitor.pp_violation) vs))
          (List.length vs)
  in
  (match cfg.mode with
  | Cheri | Cheri128 ->
      let width = if cfg.mode = Cheri then Machine.W256 else Machine.W128 in
      let m = Gen.create_machine ?engine width in
      for i = 0 to len - 1 do
        let seed = Int64.add cfg.base_seed (Int64.of_int (lo + i)) in
        let program = Gen.generate gcfg seed in
        note_single seed (Exec.run m gcfg ~seed ~program)
      done
  | Lockstep ->
      let m256 = Gen.create_machine ?engine Machine.W256 in
      let m128 = Gen.create_machine ?engine Machine.W128 in
      for i = 0 to len - 1 do
        let seed = Int64.add cfg.base_seed (Int64.of_int (lo + i)) in
        let program = Gen.generate gcfg seed in
        match Lockstep.run gcfg ~seed ~program ~m256 ~m128 with
        | Lockstep.Joint (o, retired) -> note_single seed (o, retired)
        | Lockstep.Representability d -> note k_rep seed d.Lockstep.step None 0
        | Lockstep.Mismatch d -> note k_mismatch seed d.Lockstep.step (Some d.Lockstep.what) 0
      done
  | Engines ->
      let m_sb, m_plain = Englock.create_pair () in
      for i = 0 to len - 1 do
        let seed = Int64.add cfg.base_seed (Int64.of_int (lo + i)) in
        let program = Gen.generate gcfg seed in
        match Englock.run gcfg ~seed ~program ~m_sb ~m_plain with
        | Englock.Agree (o, retired) -> note_single seed (o, retired)
        | Englock.Engine_mismatch { what } -> note k_mismatch seed 0 (Some what) 0
      done);
  {
    s_tallies = tallies;
    s_instret = !instret;
    s_insn_hist = ih;
    s_violation_hist = vh;
    s_failures = List.rev !failures;
  }

(* --- the campaign loop --------------------------------------------------- *)

(* Fixed chunk grid at absolute seed indices: the first chunk of a
   resumed range may be partial (up to the next multiple of
   [chunk_size]), every later one is grid-aligned. *)
let chunks_between start stop =
  let rec go i acc =
    if i >= stop then List.rev acc
    else
      let e = min stop (((i / chunk_size) + 1) * chunk_size) in
      go e ((i, e - i) :: acc)
  in
  go start []

exception Resume_mismatch of string

let run ?(jobs = 1) ?checkpoint ?(checkpoint_every = 2048) ?(resume = false) ?stop_after
    ?(wall = true) ?engine cfg =
  let fp = fingerprint cfg in
  let n_keys = Array.length outcome_keys in
  let tallies = Array.make n_keys 0L in
  let instret = ref 0L in
  let ih = new_insn_hist () in
  let vh = new_violation_hist () in
  let failures = ref [] in
  let start =
    if not resume then 0
    else
      match checkpoint with
      | None -> raise (Resume_mismatch "--resume requires --checkpoint FILE")
      | Some path -> (
          match Fault.Checkpoint.load path with
          | Error msg -> raise (Resume_mismatch msg)
          | Ok c ->
              if c.Fault.Checkpoint.kind <> "fuzz" then
                raise
                  (Resume_mismatch
                     (Printf.sprintf "%s: checkpoint kind %S is not a fuzz campaign" path
                        c.Fault.Checkpoint.kind));
              if c.Fault.Checkpoint.fingerprint <> fp then
                raise
                  (Resume_mismatch
                     (Printf.sprintf "%s: checkpoint is for a different campaign\n  have %s\n  want %s"
                        path c.Fault.Checkpoint.fingerprint fp));
              Array.iteri
                (fun i key ->
                  match List.assoc_opt key c.Fault.Checkpoint.tallies with
                  | Some v -> tallies.(i) <- v
                  | None -> ())
                outcome_keys;
              (match List.assoc_opt "instret" c.Fault.Checkpoint.counters with
              | Some v -> instret := v
              | None -> ());
              (match c.Fault.Checkpoint.hists with
              | [ h1; h2 ] ->
                  Obs.Hist.merge ih h1;
                  Obs.Hist.merge vh h2
              | _ -> raise (Resume_mismatch (path ^ ": expected two histograms in checkpoint")));
              c.Fault.Checkpoint.next)
  in
  let stop =
    match stop_after with Some n -> min cfg.programs (start + n) | None -> cfg.programs
  in
  let ndone = ref start in
  let save () =
    match checkpoint with
    | None -> ()
    | Some path ->
        Fault.Checkpoint.save path
          {
            Fault.Checkpoint.kind = "fuzz";
            fingerprint = fp;
            total = cfg.programs;
            next = !ndone;
            tallies = Array.to_list (Array.mapi (fun i k -> (k, tallies.(i))) outcome_keys);
            counters = [ ("instret", !instret) ];
            hists = [ ih; vh ];
          }
  in
  let t0 = if wall then Unix.gettimeofday () else 0.0 in
  let next_ckpt = ref (((start / checkpoint_every) + 1) * checkpoint_every) in
  let pending = ref (chunks_between start stop) in
  while !pending <> [] do
    let rec take k xs = if k = 0 then ([], xs) else match xs with [] -> ([], []) | x :: tl -> let a, b = take (k - 1) tl in (x :: a, b) in
    let batch, rest = take (max 1 jobs) !pending in
    pending := rest;
    let shards = Exp.Pool.map ~jobs (run_chunk ?engine cfg) batch in
    List.iter
      (fun s ->
        Array.iteri (fun i v -> tallies.(i) <- Int64.add tallies.(i) v) s.s_tallies;
        instret := Int64.add !instret s.s_instret;
        Obs.Hist.merge ih s.s_insn_hist;
        Obs.Hist.merge vh s.s_violation_hist;
        List.iter
          (fun f -> if List.length !failures < max_failures then failures := f :: !failures)
          s.s_failures;
        ndone := !ndone + Int64.to_int (Array.fold_left Int64.add 0L s.s_tallies))
      shards;
    if checkpoint <> None && (!ndone >= !next_ckpt || !pending = []) then begin
      save ();
      while !next_ckpt <= !ndone do
        next_ckpt := !next_ckpt + checkpoint_every
      done
    end
  done;
  let wall_s = if wall then Unix.gettimeofday () -. t0 else 0.0 in
  {
    cfg;
    programs_done = !ndone;
    tallies;
    instret = !instret;
    wall_s;
    insn_hist = ih;
    violation_hist = vh;
    failures = List.rev !failures;
  }

(* --- reporting ----------------------------------------------------------- *)

(* A campaign is clean when no oracle fired, nothing hung, and the
   machines never observably disagreed (representability divergences are
   classified, expected behaviour). *)
let clean r =
  Int64.equal r.tallies.(k_monitor) 0L
  && Int64.equal r.tallies.(k_hang) 0L
  && Int64.equal r.tallies.(k_mismatch) 0L

let fuzz_mips r =
  if r.wall_s <= 0.0 then 0.0 else Int64.to_float r.instret /. r.wall_s /. 1e6

(* Export through the lib/obs schema so `cheri_diff` bands fuzz
   throughput like any other benchmark: the run's instret drives
   sim_mips, and the outcome tallies ride along as spans. *)
let export_entry r =
  let counters = Obs.Counters.create () in
  Obs.Counters.set counters Obs.Counters.instret r.instret;
  Obs.Counters.set_int counters Obs.Counters.samples r.programs_done;
  let spans =
    Array.to_list
      (Array.mapi
         (fun i key ->
           let c = Obs.Counters.create () in
           Obs.Counters.set c Obs.Counters.instret r.tallies.(i);
           ("outcome:" ^ key, c))
         outcome_keys)
  in
  {
    Obs.Export.bench = "fuzz";
    mode = mode_key r.cfg.mode;
    param = r.cfg.programs;
    wall_s = r.wall_s;
    counters;
    spans;
  }

(* --- replay and shrinking ------------------------------------------------ *)

(* A harness bound to one (cfg, seed): runs an arbitrary candidate
   program under exactly the campaign's execution discipline and reports
   [Some reason] when it is a campaign failure.  This is the predicate
   the shrinker minimizes against, so a minimized program is a true
   reproducer under the original seed's machine world. *)
let make_harness ?engine cfg ~seed =
  let gcfg = gen_cfg cfg in
  let of_single = function
    | Exec.Monitor vs, _ ->
        Some (Fmt.str "%a" (Fmt.list ~sep:Fmt.semi Fault.Monitor.pp_violation) vs)
    | Exec.Hang, _ -> Some "instruction budget exhausted"
    | _ -> None
  in
  match cfg.mode with
  | Cheri | Cheri128 ->
      let width = if cfg.mode = Cheri then Machine.W256 else Machine.W128 in
      let m = Gen.create_machine ?engine width in
      fun program -> of_single (Exec.run m gcfg ~seed ~program)
  | Lockstep ->
      let m256 = Gen.create_machine ?engine Machine.W256 in
      let m128 = Gen.create_machine ?engine Machine.W128 in
      fun program ->
        (match Lockstep.run gcfg ~seed ~program ~m256 ~m128 with
        | Lockstep.Mismatch d -> Some d.Lockstep.what
        | Lockstep.Joint (o, n) -> of_single (o, n)
        | Lockstep.Representability _ -> None)
  | Engines ->
      let m_sb, m_plain = Englock.create_pair () in
      fun program ->
        (match Englock.run gcfg ~seed ~program ~m_sb ~m_plain with
        | Englock.Engine_mismatch { what } -> Some what
        | Englock.Agree (o, n) -> of_single (o, n))

(* Re-derive, re-check, and minimize the failure behind [seed]; [None]
   when the seed does not actually fail (e.g. a stale corpus request).
   Returns the corpus record and the shrinker's predicate-check count. *)
let shrink_failure ?engine cfg ~seed =
  let program = Gen.generate (gen_cfg cfg) seed in
  let failing = make_harness ?engine cfg ~seed in
  match failing program with
  | None -> None
  | Some reason ->
      let minimized, checks = Shrink.minimize ~check:(fun p -> failing p <> None) program in
      let reason = match failing minimized with Some r -> r | None -> reason in
      Some
        ( {
            Corpus.seed;
            mode = mode_key cfg.mode;
            wide = (gen_cfg cfg).Gen.wide;
            insns = cfg.insns;
            reason;
            program = minimized;
          },
          checks )

(* Deterministic single-program replay: run [program] (by default the
   seed's generated program) under the campaign discipline and describe
   the outcome.  Returns the description and whether it is a failure. *)
let replay ?program ?engine cfg ~seed =
  let gcfg = gen_cfg cfg in
  let program = match program with Some p -> p | None -> Gen.generate gcfg seed in
  match cfg.mode with
  | Cheri | Cheri128 ->
      let width = if cfg.mode = Cheri then Machine.W256 else Machine.W128 in
      let m = Gen.create_machine ?engine width in
      let outcome, retired = Exec.run m gcfg ~seed ~program in
      ( Fmt.str "%a (%d retired)" Exec.pp_outcome outcome retired,
        match outcome with Exec.Monitor _ | Exec.Hang -> true | _ -> false )
  | Lockstep ->
      let m256 = Gen.create_machine ?engine Machine.W256 in
      let m128 = Gen.create_machine ?engine Machine.W128 in
      let outcome = Lockstep.run gcfg ~seed ~program ~m256 ~m128 in
      ( Fmt.str "%a" Lockstep.pp_outcome outcome,
        match outcome with
        | Lockstep.Mismatch _ | Lockstep.Joint (Exec.Monitor _, _) | Lockstep.Joint (Exec.Hang, _)
          ->
            true
        | _ -> false )
  | Engines ->
      let m_sb, m_plain = Englock.create_pair () in
      let outcome = Englock.run gcfg ~seed ~program ~m_sb ~m_plain in
      ( Fmt.str "%a" Englock.pp_outcome outcome,
        match outcome with
        | Englock.Engine_mismatch _
        | Englock.Agree (Exec.Monitor _, _)
        | Englock.Agree (Exec.Hang, _) ->
            true
        | _ -> false )

let pp ppf r =
  Fmt.pf ppf "fuzz campaign: mode=%s programs=%d insns=%d base-seed=%Ld wide=%b@."
    (mode_key r.cfg.mode) r.programs_done r.cfg.insns r.cfg.base_seed (gen_cfg r.cfg).Gen.wide;
  Array.iteri
    (fun i key -> if r.tallies.(i) <> 0L then Fmt.pf ppf "  %-16s %Ld@." key r.tallies.(i))
    outcome_keys;
  Fmt.pf ppf "  %-16s %Ld@." "instret" r.instret;
  if r.wall_s > 0.0 then Fmt.pf ppf "  %-16s %.2f (%.1f Mi/s)@." "wall_s" r.wall_s (fuzz_mips r);
  if r.failures <> [] then begin
    Fmt.pf ppf "  failing seeds:@.";
    List.iter (fun (seed, reason) -> Fmt.pf ppf "    %Ld: %s@." seed reason) r.failures
  end
