(* Self-contained deterministic PRNG for fault-injection campaigns:
   splitmix64 (Steele, Lea & Flood, OOPSLA'14).  One 64-bit word of state,
   full period, excellent avalanche — and, unlike [Random], the stream is
   stable across OCaml versions, so a campaign seed names the exact same
   fault forever. *)

type t = { mutable state : int64 }

let create seed = { state = seed }

let next t =
  t.state <- Int64.add t.state 0x9E37_79B9_7F4A_7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58_476D_1CE4_E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D0_49BB_1331_11EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* [int64 t bound] is uniform-enough in [0, bound) for fault-site selection
   (the modulo bias is < 2^-40 for any bound a campaign uses). *)
let int64 t bound =
  if Int64.compare bound 0L <= 0 then invalid_arg "Prng.int64: bound <= 0";
  Int64.unsigned_rem (next t) bound

let int t bound = Int64.to_int (int64 t (Int64.of_int bound))
let bool t = Int64.logand (next t) 1L = 1L
let choose t l = List.nth l (int t (List.length l))
