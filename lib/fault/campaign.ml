(* Seeded fault-injection campaigns over the Olden kernels.

   One campaign = one benchmark x one pointer mode x N seeds.  Every seed
   names exactly one fault ([Injector.plan]); the faulted run is compared
   against a golden (fault-free) run of the same binary and classified:

     masked        the program produced the golden output and exit code
     detected-cap  the first trap was a CP2 capability exception
     detected-trap the first trap was any other exception (TLB, address
                   error, overflow, ...), or the kernel model itself died
     sdc           silent data corruption: ran to completion, wrong output
     hang          watchdog proved a loop, or the budget ran out

   The paper's Sections 3-4 claim is that capabilities turn pointer
   corruption into precise exceptions; the campaign quantifies it as
   detected-cap mass that the unprotected baseline simply does not have. *)

type mode = Baseline | Cheri | Cheri128

let mode_name = function Baseline -> "baseline" | Cheri -> "cheri" | Cheri128 -> "cheri128"

let mode_of_string = function
  | "baseline" | "legacy" -> Some Baseline
  | "cheri" -> Some Cheri
  | "cheri128" -> Some Cheri128
  | _ -> None

let layout_mode = function
  | Baseline -> Minic.Layout.Legacy
  | Cheri -> Minic.Layout.Cheri
  | Cheri128 -> Minic.Layout.Cheri128

(* [Detected_monitor]: no trap, but the sampled invariant monitor flagged a
   violation while the program was still running — corruption that would
   otherwise have been silent (masked or SDC) surfaced as a diagnostic.
   Only the capability machine has the tags and bounded capabilities the
   monitor's oracles are defined over, so this class is structurally empty
   for the unprotected baseline. *)
type outcome = Masked | Detected_cap | Detected_trap | Detected_monitor | Sdc | Hang

let all_outcomes = [ Masked; Detected_cap; Detected_trap; Detected_monitor; Sdc; Hang ]

let outcome_name = function
  | Masked -> "masked"
  | Detected_cap -> "detected: capability exception"
  | Detected_trap -> "detected: other trap"
  | Detected_monitor -> "detected: invariant monitor"
  | Sdc -> "silent data corruption"
  | Hang -> "hang (watchdog/budget)"

type record = {
  seed : int64;
  outcome : outcome;
  injection : string; (* what was corrupted, e.g. "cap c3 bit 217" *)
  monitor_flags : int; (* violations at the first monitor sweep that flagged *)
}

type config = {
  bench : string;
  mode : mode;
  seeds : int;
  base_seed : int64;
  param : int; (* benchmark size parameter (e.g. treeadd levels) *)
  sites : Injector.site list;
  monitor : bool; (* run the invariant sweep after every faulted run *)
}

let default_config =
  {
    bench = "treeadd";
    mode = Cheri;
    seeds = 100;
    base_seed = 1L;
    param = 8;
    sites = Injector.all_sites;
    monitor = true;
  }

type summary = {
  config : config;
  golden_exit : int;
  golden_output : string;
  golden_instret : int64;
  records : record list; (* the seeds this process actually ran *)
  prior : (outcome * int) list;
      (* outcome tallies carried over from a resumed checkpoint: seeds
         [0, seeds - |records|) of the same campaign, classified by an
         earlier (interrupted) process.  Empty for a fresh run. *)
}

let count s o =
  (match List.assoc_opt o s.prior with Some n -> n | None -> 0)
  + List.length (List.filter (fun r -> r.outcome = o) s.records)

let fraction s o =
  if s.config.seeds = 0 then 0.0 else 100.0 *. float_of_int (count s o) /. float_of_int s.config.seeds

(* Detected = a precise trap or a monitor diagnostic fired before the
   program could finish with silently corrupt state. *)
let detected_fraction s =
  fraction s Detected_cap +. fraction s Detected_trap +. fraction s Detected_monitor

(* --- machine plumbing --------------------------------------------------- *)

let fresh_machine ?engine mode =
  let config =
    match mode with
    | Cheri128 -> { Machine.default_config with Machine.cap_width = Machine.W128 }
    | Baseline | Cheri -> Machine.default_config
  in
  let m = Machine.create ~config () in
  (match engine with Some e -> Machine.set_engine m e | None -> ());
  (* Campaigns measure detection, not cycles: functional mode makes a
     100-seed sweep interactive. *)
  Machine.set_timing m false;
  m

let compile cfg =
  let src = List.assoc cfg.bench Olden.Minic_src.all in
  let src = Olden.Minic_src.instantiate ~iters:1 src ~param:cfg.param in
  Asm.Assembler.assemble (Minic.Driver.compile ~mode:(layout_mode cfg.mode) src)

(* The fault-free reference execution.  Besides the output, exit code and
   instruction count (the injection window), it records the program's live
   footprint: every allocation (via the runtime's trace.alloc markers,
   rounded to malloc's 32-byte granularity) and the deepest stack extent.
   Memory faults target exactly these regions — the bump allocator grabs
   64 KB arenas from the kernel, so injecting uniformly over [heap_base,
   brk) would mostly upset words no instruction ever reads. *)
type golden = {
  exit_code : int;
  output : string;
  instret : int64;
  brk : int64;
  stack : int64 * int64; (* deepest stack window, (addr, len) *)
  live : (int64 * int64) array; (* allocations + stack window, (addr, len) *)
}

let golden_run ?engine cfg program =
  let m = fresh_machine ?engine cfg.mode in
  let k = Os.Kernel.attach m in
  let allocs = ref [] in
  Machine.set_trace_hook m (fun _ marker size addr ->
      match marker with
      | Beri.Insn.M_alloc ->
          allocs := (addr, Int64.logand (Int64.add size 31L) (-32L)) :: !allocs
      | _ -> ());
  let min_sp = ref k.Os.Kernel.stack_top in
  Machine.set_step_hook m
    (Some
       (fun m ->
         let sp = Machine.gpr m Beri.Regs.sp in
         if Int64.unsigned_compare sp !min_sp < 0 then min_sp := sp));
  match Os.Kernel.run_result ~max_insns:2_000_000_000L k program with
  | Machine.Exited code, out ->
      let stack = (!min_sp, Int64.sub k.Os.Kernel.stack_top !min_sp) in
      {
        exit_code = code;
        output = out;
        instret = Int64.of_int m.Machine.instret;
        brk = k.Os.Kernel.brk;
        stack;
        live = Array.of_list (List.rev (stack :: !allocs));
      }
  | abnormal, _ ->
      Fmt.failwith "campaign: golden run of %s/%s did not exit cleanly: %a" cfg.bench
        (mode_name cfg.mode) Machine.pp_run_result abnormal

(* The unprotected baseline has no capability registers or tag table
   carrying program state, so those two fault sites do not exist on it.
   To keep the per-mode injection *rate* comparable, their mass remaps to
   the corresponding architectural structure (register file / memory)
   rather than being dropped. *)
let effective_sites cfg =
  match cfg.mode with
  | Baseline ->
      List.map
        (function
          | Injector.Cap_reg -> Injector.Gpr | Injector.Tag_bit -> Injector.Mem_word | s -> s)
        cfg.sites
  | Cheri | Cheri128 -> cfg.sites

(* How often the sampled invariant monitor runs, in retired instructions.
   Between samples corruption is only caught by the trap machinery; a
   smaller period catches more transient violations at proportional cost
   (the monitor only starts sampling once the injection has fired).
   Native int: the period check runs on every retired instruction, and
   [Machine.instret] is a native int — going through [Int64.rem] boxed a
   fresh Int64 per retirement on the hot path. *)
let monitor_period = 512

(* One faulted run under seed [seed]. *)
let faulted_run ?engine cfg ~program ~(golden : golden) ~heap_len seed =
  let m = fresh_machine ?engine cfg.mode in
  let k = Os.Kernel.attach m in
  let first_fault = ref None in
  Os.Kernel.set_fault_handler k (fun _k f ->
      if !first_fault = None then first_fault := Some f.Os.Kernel.exc;
      Machine.Halt 139);
  let inj =
    Injector.plan ~seed ~sites:(effective_sites cfg) ~regions:golden.live ~window:golden.instret
      ()
  in
  Os.Kernel.exec k program;
  (* The monitor sweeps the register file, the heap, and the stack window
     the golden run reached (with a page of slack for deeper faulted
     runs).  Its root delegation is the kernel's user-space grant. *)
  let root = Cap.Capability.make ~perms:Cap.Perms.all ~base:0L ~length:k.Os.Kernel.user_top in
  let stack_base = Int64.sub (fst golden.stack) 4096L in
  let stack_len = Int64.sub k.Os.Kernel.stack_top stack_base in
  let monitor_flags = ref 0 in
  let sweep () =
    let violations =
      Monitor.check ~root m ~base:Os.Layout.heap_base ~len:heap_len
      @ Monitor.check_memory ~root m ~base:stack_base ~len:stack_len
    in
    if violations <> [] && !monitor_flags = 0 then monitor_flags := List.length violations
  in
  (* One step hook multiplexes the injector and the sampled monitor; the
     monitor only runs on post-injection state (anything earlier is the
     golden execution) and stops after its first hit. *)
  Machine.set_step_hook m
    (Some
       (fun m ->
         Injector.poll inj m;
         if
           cfg.monitor && Injector.fired inj && !monitor_flags = 0
           && m.Machine.instret mod monitor_period = 0
         then sweep ()));
  let budget = Int64.add (Int64.mul golden.instret 4L) 100_000L in
  let result = Machine.run_result ~max_insns:budget ~watchdog:1024 m in
  (* Final sweep: corruption that persists to the end of the run is
     detectable even if every sample missed it. *)
  if cfg.monitor && !monitor_flags = 0 then sweep ();
  let outcome =
    match result with
    | Machine.Budget_exhausted _ | Machine.Watchdog_hang _ -> Hang
    | Machine.Trap_unhandled _ -> Detected_trap
    | Machine.Exited code -> (
        match !first_fault with
        (* On the baseline a CP2 fault can only come from the almighty
           legacy root: the access ran off the top of the modelled address
           space.  Real legacy hardware would take a TLB or bus fault
           there, so it counts as a generic trap, not capability
           detection. *)
        | Some (Beri.Cp0.Cp2 _) when cfg.mode <> Baseline -> Detected_cap
        | Some _ -> Detected_trap
        | None ->
            if !monitor_flags > 0 then Detected_monitor
            else if code = golden.exit_code && String.equal (Os.Kernel.console k) golden.output
            then Masked
            else Sdc)
  in
  {
    seed;
    outcome;
    injection = (match Injector.description inj with Some d -> d | None -> "<did not fire>");
    monitor_flags = !monitor_flags;
  }

(* Stable short outcome keys for checkpoint tallies (the long
   [outcome_name] strings are display text, not a file format). *)
let outcome_key = function
  | Masked -> "masked"
  | Detected_cap -> "detected-cap"
  | Detected_trap -> "detected-trap"
  | Detected_monitor -> "detected-monitor"
  | Sdc -> "sdc"
  | Hang -> "hang"

(* The checkpoint fingerprint: everything that determines the per-seed
   classification.  Resuming under a different config would silently mix
   incomparable outcome streams, so [run] refuses on mismatch. *)
let fingerprint cfg =
  Printf.sprintf "fault:%s:%s:seeds=%d:base=%Ld:param=%d:sites=%s:monitor=%b" cfg.bench
    (mode_name cfg.mode) cfg.seeds cfg.base_seed cfg.param
    (String.concat "," (List.map Injector.site_name cfg.sites))
    cfg.monitor

(* [bus]: when given, every classified injection is emitted as a
   structured "fault-campaign" event on the shared lib/obs event bus, so
   campaign verdicts interleave with spans and kernel faults in one
   machine-readable stream.

   [checkpoint]: path of a Checkpoint file rewritten every
   [checkpoint_every] classified seeds (and at completion).  With
   [resume], a matching checkpoint's cursor and tallies are folded in and
   the campaign continues at the first unclassified seed — every seed is
   deterministic, so the resumed summary's counts equal an uninterrupted
   run's.  [stop_after n] classifies at most [n] seeds this call (the
   deterministic stand-in for an interruption; used by the resume tests
   and nonsensical without [checkpoint]). *)
let run ?bus ?checkpoint ?(checkpoint_every = 64) ?(resume = false) ?stop_after ?engine cfg =
  let program = compile cfg in
  let golden = golden_run ?engine cfg program in
  (* The invariant monitor still sweeps the whole heap the golden run
     touched (plus a page of slack for allocator state). *)
  let heap_len = Int64.add (Int64.sub golden.brk Os.Layout.heap_base) 4096L in
  let fp = fingerprint cfg in
  let start, prior =
    match checkpoint with
    | Some path when resume && Sys.file_exists path -> (
        match Checkpoint.load path with
        | Error msg -> Fmt.failwith "campaign: cannot resume: %s" msg
        | Ok c ->
            if not (String.equal c.Checkpoint.kind "fault" && String.equal c.Checkpoint.fingerprint fp)
            then
              Fmt.failwith "campaign: checkpoint %s was written by a different campaign (%s)" path
                c.Checkpoint.fingerprint;
            let prior =
              List.filter_map
                (fun o ->
                  match List.assoc_opt (outcome_key o) c.Checkpoint.tallies with
                  | Some n when Int64.compare n 0L > 0 -> Some (o, Int64.to_int n)
                  | _ -> None)
                all_outcomes
            in
            (c.Checkpoint.next, prior))
    | _ -> (0, [])
  in
  let records = ref [] in
  let ndone = ref start in
  let save () =
    match checkpoint with
    | None -> ()
    | Some path ->
        let tallies =
          List.map
            (fun o ->
              let n =
                (match List.assoc_opt o prior with Some n -> n | None -> 0)
                + List.length (List.filter (fun r -> r.outcome = o) !records)
              in
              (outcome_key o, Int64.of_int n))
            all_outcomes
        in
        Checkpoint.save path
          {
            Checkpoint.kind = "fault";
            fingerprint = fp;
            total = cfg.seeds;
            next = !ndone;
            tallies;
            counters = [];
            hists = [];
          }
  in
  let stop = match stop_after with Some n -> min cfg.seeds (start + n) | None -> cfg.seeds in
  for i = start to stop - 1 do
    let r = faulted_run ?engine cfg ~program ~golden ~heap_len (Int64.add cfg.base_seed (Int64.of_int i)) in
    (match bus with
    | Some bus ->
        Obs.Event.emit bus ~kind:"fault-campaign" ~name:(outcome_name r.outcome)
          [
            ("bench", Obs.Json.String cfg.bench);
            ("mode", Obs.Json.String (mode_name cfg.mode));
            ("seed", Obs.Json.Int r.seed);
            ("injection", Obs.Json.String r.injection);
            ("monitor_flags", Obs.Json.Int (Int64.of_int r.monitor_flags));
          ]
    | None -> ());
    records := r :: !records;
    incr ndone;
    if !ndone mod checkpoint_every = 0 then save ()
  done;
  save ();
  {
    config = cfg;
    golden_exit = golden.exit_code;
    golden_output = golden.output;
    golden_instret = golden.instret;
    records = List.rev !records;
    prior;
  }

(* --- reporting ----------------------------------------------------------- *)

let pp_table ppf (summaries : summary list) =
  match summaries with
  | [] -> ()
  | first :: _ ->
      Fmt.pf ppf "fault-injection coverage: %s (param %d, %d seeds/mode, sites: %s)@,"
        first.config.bench first.config.param first.config.seeds
        (String.concat "," (List.map Injector.site_name first.config.sites));
      Fmt.pf ppf "%-32s" "outcome";
      List.iter (fun s -> Fmt.pf ppf " %12s" (mode_name s.config.mode)) summaries;
      Fmt.pf ppf "@,";
      List.iter
        (fun o ->
          Fmt.pf ppf "%-32s" (outcome_name o);
          List.iter (fun s -> Fmt.pf ppf " %11.1f%%" (fraction s o)) summaries;
          Fmt.pf ppf "@,")
        all_outcomes;
      Fmt.pf ppf "%-32s" "detected total";
      List.iter (fun s -> Fmt.pf ppf " %11.1f%%" (detected_fraction s)) summaries;
      Fmt.pf ppf "@,";
      Fmt.pf ppf "%-32s" "golden instret";
      List.iter (fun s -> Fmt.pf ppf " %12Ld" s.golden_instret) summaries;
      Fmt.pf ppf "@,"

let print_table summaries = Fmt.pr "@[<v>%a@]@." pp_table summaries
