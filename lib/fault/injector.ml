(* Deterministic, seed-driven fault injector.

   Models single-event upsets in the structures the paper's protection
   argument (Sections 3-4) is about: general-purpose registers, capability
   registers (any bit of the 256-bit image, or the tag), physical memory
   words, and tag-table bits.  A planned injection fires exactly once, at a
   PRNG-chosen retired-instruction count, via [Machine.set_step_hook] — the
   cycle and cache models are untouched, and a machine with no injector
   armed pays nothing.

   Memory faults target the *live* footprint of the program — the caller
   passes the regions the golden run actually touched (its allocations and
   its stack window) rather than the whole address space, so upsets land on
   state the program depends on instead of dead arena padding.  This is the
   standard refinement in fault-injection campaigns: uniform injection over
   a sparse address space measures the sparsity, not the protection.

   Note the two deliberately *architecture-subversive* sites:
     - [Mem_word] flips a bit through [Mem.Phys] directly, without clearing
       the line's tag — the hardware-fault analogue of the forgery that
       [Machine.store_scalar] architecturally prevents;
     - [Tag_bit] can *set* a tag over arbitrary data, forging a capability
       out of thin air.
   The campaign measures how often the capability machinery (or the
   invariant monitor) still catches the consequences. *)

type site = Gpr | Cap_reg | Mem_word | Tag_bit

let all_sites = [ Gpr; Cap_reg; Mem_word; Tag_bit ]
let site_name = function Gpr -> "gpr" | Cap_reg -> "cap" | Mem_word -> "mem" | Tag_bit -> "tag"

let site_of_string = function
  | "gpr" -> Some Gpr
  | "cap" -> Some Cap_reg
  | "mem" -> Some Mem_word
  | "tag" -> Some Tag_bit
  | _ -> None

(* Capability registers the compiler and kernel actually populate: $c0 (the
   legacy data root every load/store is relative to), $c1 (the call-shuffle
   scratch), $c3..$c10 (the codegen temporary pool and return register), and
   the PCC (encoded as 32).  Upsetting a register nothing ever reads would
   measure the register file's sparsity, not the protection model. *)
let cap_targets = [| 0; 1; 3; 4; 5; 6; 7; 8; 9; 10; 32 |]

type t = {
  prng : Prng.t;
  sites : site list;
  regions : (int64 * int64) array; (* live (addr, len) windows for Mem_word/Tag_bit *)
  at_instret : int64; (* fire just before this retired-instruction count *)
  mutable injected : string option; (* description, once fired *)
}

(* [plan ~seed ~sites ~regions ~window] draws the injection time uniformly
   from [0, window) (the golden run's instruction count).  All further
   choices (site, target, bit) are drawn from the same stream at fire time,
   so one seed fully determines one fault. *)
let plan ~seed ?(sites = all_sites) ~regions ~window () =
  if sites = [] then invalid_arg "Injector.plan: empty site list";
  let prng = Prng.create seed in
  let at = if Int64.compare window 0L <= 0 then 0L else Prng.int64 prng window in
  { prng; sites; regions; at_instret = at; injected = None }

let flip_bit64 v bit = Int64.logxor v (Int64.shift_left 1L bit)

let inject_gpr t (m : Machine.t) =
  let reg = 1 + Prng.int t.prng 31 and bit = Prng.int t.prng 64 in
  Machine.set_gpr m reg (flip_bit64 (Machine.gpr m reg) bit);
  Printf.sprintf "gpr r%d bit %d" reg bit

(* Flip one bit of a capability register: either the tag, or one of the
   256 architectural image bits (byte 16+ is the base, 24+ the length,
   the low flags word carries sealed/perms/otype — see Capability).  The
   corruption goes through the serialised image, so it models a register-
   file upset without widening the capability API. *)
let inject_cap t (m : Machine.t) =
  let reg = cap_targets.(Prng.int t.prng (Array.length cap_targets)) in
  (* 32 = PCC *)
  let c = if reg = 32 then m.Machine.pcc else Machine.cap m reg in
  let descr, c' =
    if Prng.int t.prng 9 = 0 then
      ( "tag",
        Cap.Capability.of_bytes ~tag:(not (Cap.Capability.tag c)) (Cap.Capability.to_bytes c) )
    else begin
      let bit = Prng.int t.prng 256 in
      let image = Cap.Capability.to_bytes c in
      Bytes.set image (bit / 8)
        (Char.chr (Char.code (Bytes.get image (bit / 8)) lxor (1 lsl (bit mod 8))));
      (Printf.sprintf "bit %d" bit, Cap.Capability.of_bytes ~tag:(Cap.Capability.tag c) image)
    end
  in
  if reg = 32 then m.Machine.pcc <- c' else Machine.set_cap m reg c';
  Printf.sprintf "cap %s %s" (if reg = 32 then "pcc" else Printf.sprintf "c%d" reg) descr

(* Pick the [k]-th granule of size [unit] across the live regions (each
   region contributes [len / unit] granules starting at its base rounded
   down to a granule boundary). *)
let nth_granule regions ~unit k =
  let rec go i k =
    if i >= Array.length regions then None
    else
      let addr, len = regions.(i) in
      let here = Int64.div len unit in
      if Int64.unsigned_compare k here < 0 then
        Some (Int64.add (Int64.mul (Int64.div addr unit) unit) (Int64.mul k unit))
      else go (i + 1) (Int64.sub k here)
  in
  go 0 k

let total_granules regions ~unit =
  Array.fold_left (fun acc (_, len) -> Int64.add acc (Int64.div len unit)) 0L regions

let inject_mem t (m : Machine.t) =
  let words = total_granules t.regions ~unit:8L in
  if Int64.compare words 0L <= 0 then "mem <empty range>"
  else begin
    let addr =
      match nth_granule t.regions ~unit:8L (Prng.int64 t.prng words) with
      | Some a -> a
      | None -> assert false
    in
    let bit = Prng.int t.prng 64 in
    (* A hardware upset: the word changes but the line's tag does not. *)
    Mem.Phys.write_u64 m.Machine.phys addr (flip_bit64 (Mem.Phys.read_u64 m.Machine.phys addr) bit);
    Printf.sprintf "mem 0x%Lx bit %d" addr bit
  end

let inject_tag t (m : Machine.t) =
  let line_bytes = Int64.of_int (Mem.Tags.granularity m.Machine.tags) in
  let lines = total_granules t.regions ~unit:line_bytes in
  if Int64.compare lines 0L <= 0 then "tag <empty range>"
  else begin
    let addr =
      match nth_granule t.regions ~unit:line_bytes (Prng.int64 t.prng lines) with
      | Some a -> a
      | None -> assert false
    in
    let old = Mem.Tags.get m.Machine.tags addr in
    Mem.Tags.set m.Machine.tags addr (not old);
    Printf.sprintf "tag line 0x%Lx %s" addr (if old then "cleared" else "forged")
  end

let inject_now t m =
  match Prng.choose t.prng t.sites with
  | Gpr -> inject_gpr t m
  | Cap_reg -> inject_cap t m
  | Mem_word -> inject_mem t m
  | Tag_bit -> inject_tag t m

(* [poll t m] fires the planned injection if its time has come (and it has
   not fired already).  Callers that multiplex the machine's single step
   hook — e.g. a campaign that also samples an invariant monitor — call
   this from their own hook; standalone users just [arm]. *)
let poll t (m : Machine.t) =
  if t.injected = None && Int64.compare (Int64.of_int m.Machine.instret) t.at_instret >= 0 then
    t.injected <- Some (inject_now t m)

(* Hook the planned injection into [Machine.step].  The hook self-disarms
   after firing so steady-state runs pay one comparison per step. *)
let arm t (m : Machine.t) =
  Machine.set_step_hook m
    (Some
       (fun m ->
         poll t m;
         if t.injected <> None then Machine.set_step_hook m None))

let description t = t.injected
let fired t = t.injected <> None
