(* Campaign checkpoints: a periodic JSON snapshot of a seeded campaign's
   cursor and aggregated results, shared by the fault-injection campaign
   (`cheri_fault --checkpoint/--resume`) and the fuzzer (`cheri_fuzz`).

   A checkpoint deliberately stores no per-seed records: every seed is
   deterministic, so the cursor plus the running tallies reconstruct the
   campaign exactly.  [--resume] continues at [next] with the prior
   tallies folded in, which makes a resumed campaign's final report
   byte-identical to an uninterrupted one — provided the config matches,
   which [fingerprint] enforces (resuming a checkpoint written by a
   different campaign is a hard error, not a silent restart).

   Schema (one JSON object per file):

     { "schema": "cheri-campaign-checkpoint/1",
       "kind": "fault" | "fuzz",
       "fingerprint": <config digest string>,
       "total": <seeds in the whole campaign>,
       "next": <first seed index not yet accounted for>,
       "tallies": { <outcome>: <count>, ... },
       "counters": { <name>: <int64>, ... },
       "hists": [ <full-fidelity histogram>, ... ] }

   Histograms round-trip at full fidelity (every non-empty bucket, not
   the elided rendering of [Obs.Hist.to_json]) so a resumed campaign's
   exported distributions match the uninterrupted run exactly. *)

type t = {
  kind : string; (* which campaign wrote it: "fault" | "fuzz" *)
  fingerprint : string; (* config digest; resume refuses a mismatch *)
  total : int; (* seeds in the whole campaign *)
  next : int; (* first seed index not yet accounted for *)
  tallies : (string * int64) list; (* outcome name -> count so far *)
  counters : (string * int64) list; (* aggregate counters (instret, ...) *)
  hists : Obs.Hist.t list;
}

let schema = "cheri-campaign-checkpoint/1"

(* --- serialization ------------------------------------------------------ *)

let hist_to_json (h : Obs.Hist.t) =
  let buckets =
    List.map
      (fun (k, n) ->
        Obs.Json.List [ Obs.Json.Int (Int64.of_int k); Obs.Json.Int (Int64.of_int n) ])
      (Obs.Hist.nonempty h)
  in
  Obs.Json.Obj
    [
      ("name", Obs.Json.String h.Obs.Hist.name);
      ("total", Obs.Json.Int (Int64.of_int h.Obs.Hist.total));
      ("sum", Obs.Json.Int h.Obs.Hist.sum);
      ("min", Obs.Json.Int h.Obs.Hist.vmin);
      ("max", Obs.Json.Int h.Obs.Hist.vmax);
      ("counts", Obs.Json.List buckets);
    ]

let assoc_to_json kvs = Obs.Json.Obj (List.map (fun (k, v) -> (k, Obs.Json.Int v)) kvs)

let to_json c =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String schema);
      ("kind", Obs.Json.String c.kind);
      ("fingerprint", Obs.Json.String c.fingerprint);
      ("total", Obs.Json.Int (Int64.of_int c.total));
      ("next", Obs.Json.Int (Int64.of_int c.next));
      ("tallies", assoc_to_json c.tallies);
      ("counters", assoc_to_json c.counters);
      ("hists", Obs.Json.List (List.map hist_to_json c.hists));
    ]

(* --- parsing ------------------------------------------------------------ *)

exception Malformed of string

let get key j =
  match Obs.Json.member key j with Some v -> v | None -> raise (Malformed ("missing " ^ key))

let get_string key j =
  match get key j with Obs.Json.String s -> s | _ -> raise (Malformed (key ^ ": expected string"))

let get_i64 key j =
  match get key j with Obs.Json.Int i -> i | _ -> raise (Malformed (key ^ ": expected integer"))

let get_int key j = Int64.to_int (get_i64 key j)

let get_assoc key j =
  match get key j with
  | Obs.Json.Obj fields ->
      List.map
        (fun (k, v) ->
          match v with
          | Obs.Json.Int i -> (k, i)
          | _ -> raise (Malformed (key ^ "." ^ k ^ ": expected integer")))
        fields
  | _ -> raise (Malformed (key ^ ": expected object"))

let hist_of_json j =
  let h = Obs.Hist.create ~name:(get_string "name" j) () in
  h.Obs.Hist.total <- get_int "total" j;
  h.Obs.Hist.sum <- get_i64 "sum" j;
  h.Obs.Hist.vmin <- get_i64 "min" j;
  h.Obs.Hist.vmax <- get_i64 "max" j;
  (match get "counts" j with
  | Obs.Json.List pairs ->
      List.iter
        (function
          | Obs.Json.List [ Obs.Json.Int k; Obs.Json.Int n ] ->
              let k = Int64.to_int k in
              if k < 0 || k >= Obs.Hist.buckets then raise (Malformed "hist bucket out of range");
              h.Obs.Hist.counts.(k) <- Int64.to_int n
          | _ -> raise (Malformed "hist counts: expected [bucket, count] pairs"))
        pairs
  | _ -> raise (Malformed "hist counts: expected list"));
  h

let of_json j =
  (match get_string "schema" j with
  | s when String.equal s schema -> ()
  | s -> raise (Malformed (Printf.sprintf "unsupported schema %S (want %S)" s schema)));
  {
    kind = get_string "kind" j;
    fingerprint = get_string "fingerprint" j;
    total = get_int "total" j;
    next = get_int "next" j;
    tallies = get_assoc "tallies" j;
    counters = get_assoc "counters" j;
    hists =
      (match get "hists" j with
      | Obs.Json.List hs -> List.map hist_of_json hs
      | _ -> raise (Malformed "hists: expected list"));
  }

(* --- file I/O ----------------------------------------------------------- *)

(* Write-then-rename: a campaign killed mid-checkpoint leaves the previous
   complete checkpoint in place, never a truncated file. *)
let save path c =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (Obs.Json.to_string (to_json c));
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp path

let load path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    of_json (Obs.Json.parse s)
  with
  | c -> Ok c
  | exception Malformed msg -> Error (Printf.sprintf "%s: %s" path msg)
  | exception Obs.Json.Parse_error (msg, off) ->
      Error (Printf.sprintf "%s: JSON parse error at byte %d: %s" path off msg)
  | exception Sys_error msg -> Error msg
