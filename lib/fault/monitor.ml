(* Security-invariant monitor: after-step (or post-run) oracles over the
   architectural state, reporting violations as structured diagnostics
   rather than exceptions.

   The oracles are the executable-model analogue of the machine-checked
   invariants in the CHERIoT-Ibex and CHERI-C verification work:

     - *capability well-formedness*: every live capability (register file,
       PCC, and every tagged memory line) must decode to a value the
       machine could legitimately have derived — bounds that do not wrap
       the address space, a 128-bit-representable shape on the compressed
       machine, and no dangling object type on an unsealed capability;

     - *tag/data integrity*: a tagged line must hold a well-formed
       capability image (a forged tag over plain data is exactly what this
       oracle catches);

     - *reachable-capability monotonicity*: every capability reachable
       from the running domain must convey a subset of the rights of the
       domain's root delegation ([rights_subset]), the Section 4.2
       transitive-closure property. *)

type violation = {
  oracle : string; (* "well-formed" | "tag-integrity" | "monotonicity" *)
  subject : string; (* which register / memory line *)
  detail : string;
}

let pp_violation ppf v = Fmt.pf ppf "%s: %s — %s" v.oracle v.subject v.detail

(* [well_formed ~cap_width c] is [None] when [c] could be a legitimately
   derived capability, or [Some reason]. *)
let well_formed ~cap_width c =
  if not (Cap.Capability.tag c) then None
  else if Cap.U64.add_overflows (Cap.Capability.base c) (Cap.Capability.length c) then
    Some
      (Fmt.str "bounds wrap the address space (base=%a length=%a)" Cap.U64.pp
         (Cap.Capability.base c) Cap.U64.pp (Cap.Capability.length c))
  else if (not (Cap.Capability.is_sealed c)) && Cap.Capability.otype c <> 0 then
    Some (Fmt.str "unsealed capability carries otype 0x%x" (Cap.Capability.otype c))
  else
    match cap_width with
    | Machine.W128 when not (Cap.Cap128.representable c) ->
        Some "not representable in the 128-bit compressed format"
    | _ -> None

let check_one ~cap_width ~root ~subject c acc =
  let acc =
    match well_formed ~cap_width c with
    | Some detail -> { oracle = "well-formed"; subject; detail } :: acc
    | None -> acc
  in
  match root with
  | Some root when Cap.Capability.tag c && not (Cap.Capability.rights_subset c root) ->
      {
        oracle = "monotonicity";
        subject;
        detail = Fmt.str "%a exceeds the domain root %a" Cap.Capability.pp c Cap.Capability.pp root;
      }
      :: acc
  | _ -> acc

(* Scan the capability register file and PCC.  The fuzzer runs this on
   every retired instruction, so the clean path renders no subject
   strings: the register's name is only materialised when one of the
   oracles actually fires. *)
let reg_subject i = if i < 0 then "pcc" else Printf.sprintf "register c%d" i

let check_regs ?root (m : Machine.t) =
  let cap_width = m.Machine.config.Machine.cap_width in
  let acc = ref [] in
  let scan i c =
    (match well_formed ~cap_width c with
    | Some detail -> acc := { oracle = "well-formed"; subject = reg_subject i; detail } :: !acc
    | None -> ());
    match root with
    | Some root when Cap.Capability.tag c && not (Cap.Capability.rights_subset c root) ->
        acc :=
          {
            oracle = "monotonicity";
            subject = reg_subject i;
            detail =
              Fmt.str "%a exceeds the domain root %a" Cap.Capability.pp c Cap.Capability.pp root;
          }
          :: !acc
    | _ -> ()
  in
  for i = 0 to 31 do
    scan i (Machine.cap m i)
  done;
  scan (-1) m.Machine.pcc;
  List.rev !acc

(* Scan every tagged line in [base, base+len): decode it exactly as a CLC
   would and apply the oracles.  Tag/data integrity means a tagged line
   *is* a well-formed, monotonic capability. *)
let check_memory ?root (m : Machine.t) ~base ~len =
  let cap_width = m.Machine.config.Machine.cap_width in
  let tags = m.Machine.tags in
  let line_bytes = Mem.Tags.granularity tags in
  let line = Int64.of_int line_bytes in
  (* Cover [base, base+len) in full: the first line rounds down and the
     last rounds up, so an unaligned [base] does not shift the window off
     its tail and a [len] that is not a granularity multiple still scans
     the partial last line. *)
  let first = Int64.div base line in
  let count =
    if Int64.compare len 0L <= 0 then 0
    else
      let last = Int64.div (Int64.sub (Int64.add base len) 1L) line in
      Int64.to_int (Int64.add (Int64.sub last first) 1L)
  in
  let acc = ref [] in
  for i = 0 to count - 1 do
    let addr = Int64.mul (Int64.add first (Int64.of_int i)) (Int64.of_int line_bytes) in
    if Mem.Tags.get tags addr then begin
      let c =
        match cap_width with
        | Machine.W256 -> Cap.Capability.of_bytes ~tag:true (Mem.Phys.read_bytes m.Machine.phys addr 32)
        | Machine.W128 ->
            Cap.Cap128.decompress ~tag:true
              (Cap.Cap128.of_bytes (Mem.Phys.read_bytes m.Machine.phys addr 16))
      in
      let subject = Printf.sprintf "line 0x%Lx" addr in
      let before = !acc in
      acc := check_one ~cap_width ~root ~subject c before;
      (* A tagged line that failed either oracle is also a tag-integrity
         violation: the tag asserts "this is a valid capability". *)
      if !acc != before then
        acc := { oracle = "tag-integrity"; subject; detail = "tagged line is not a valid capability" } :: !acc
    end
  done;
  List.rev !acc

(* Full sweep: register file plus the given memory window (typically the
   heap and stack — scanning all of physical memory would be exact but a
   campaign-scale cost). *)
let check ?root (m : Machine.t) ~base ~len = check_regs ?root m @ check_memory ?root m ~base ~len
