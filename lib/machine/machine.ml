(* The CHERI machine: BERI's MIPS64 pipeline with the CP2 capability
   coprocessor (Figure 2), an in-order single-issue execution model with a
   cycle cost of one per instruction plus memory-hierarchy penalties.

   Privilege structure: user code runs *simulated* (fetched, decoded, and
   executed from the memory image); the kernel is a *native* model — an
   OCaml callback invoked on every exception, mirroring how the paper's
   FreeBSD kernel sits below the user program.  The callback inspects and
   mutates the architectural state, then resumes or halts.

   Addressing (Section 4.1): legacy MIPS loads and stores are implicitly
   offset via capability register 0 (C0) and bounded by it; instruction
   fetch is validated against PCC.  Capability-relative accesses name their
   capability register explicitly. *)

open Beri

type exn_ctx = { exc : Cp0.exc; victim_pc : int64 }

(* What the kernel tells the machine to do after handling an exception. *)
type kernel_action =
  | Resume_at of int64 (* continue execution at this PC *)
  | Halt of int (* stop the machine with this exit code *)
  | Fatal (* the kernel cannot handle it: [run] reports [Trap_unhandled] *)

exception Halted of int

(* Raised by [step] when the kernel returns [Fatal]; [run] catches it and
   turns it into a [Trap_unhandled] result with a diagnostic snapshot. *)
exception Unhandled of exn_ctx

(* Raised internally while executing one instruction; [step] catches it. *)
exception Exn of Cp0.exc * int64 (* exception, bad virtual address *)

(* Capability width: the 256-bit research format or the 128-bit
   compressed format of Section 4.1 (the ablation of Section 8's
   "CHERI will benefit from capability compression"). *)
type cap_width = W256 | W128

(* Interpreter engine.  [Plain] retires one instruction per [step];
   [Superblock] additionally translates hot straight-line regions into
   pre-decoded micro-op arrays executed by a tight loop that charges the
   same architectural costs per element.  The two engines are
   architecturally identical — every counter, trap, and observable store
   matches bit for bit — so the choice is a host-speed knob only. *)
type engine = Plain | Superblock

let engine_to_string = function Plain -> "plain" | Superblock -> "superblock"

let engine_of_string = function
  | "plain" -> Some Plain
  | "superblock" -> Some Superblock
  | _ -> None

type config = {
  mem_size : int;
  hierarchy : Mem.Hierarchy.config;
  mult_cycles : int;
  div_cycles : int;
  cap_width : cap_width;
}

let default_config =
  {
    mem_size = 64 * 1024 * 1024;
    hierarchy = Mem.Hierarchy.default_config;
    mult_cycles = 4;
    div_cycles = 32;
    cap_width = W256;
  }

type t = {
  config : config;
  regs : Regs.t;
  caps : Cap.Capability.t array; (* 32 capability registers; index 0 = C0 *)
  mutable pcc : Cap.Capability.t;
  mutable pc : int64;
  cp0 : Cp0.t;
  phys : Mem.Phys.t;
  tags : Mem.Tags.t;
  hier : Mem.Hierarchy.t;
  mutable cycles : int;
  mutable instret : int;
  mutable ll_bit : bool;
  mutable ll_addr : int64;
  mutable kernel : t -> exn_ctx -> kernel_action;
  mutable on_trace : t -> Insn.marker -> int64 -> int64 -> unit;
  mutable on_step : (t -> unit) option;
      (* called before each instruction; [None] (the default) keeps the
         hot path free of any per-step work.  Fault injectors hook here. *)
  mutable probe : Obs.Probe.t option;
      (* observability hook (lib/obs): instruction classification, PC
         sampling, and shadow-call-stack tracking.  [None] (the default)
         costs one match per step and nothing else; a probe never touches
         architectural state or the cycle count, so probed and unprobed
         runs are architecturally identical. *)
  mutable on_store : (int64 -> int -> int64 -> unit) option;
      (* store-stream observer: [f addr kind payload] after every retired
         store.  [kind] is the access width in bytes for a scalar store;
         0 marks a capability store, whose payload is a digest of the
         stored capability's architectural fields ([cap_digest]).  [None]
         (the default) costs one match per store.  The differential
         fuzzer diffs this stream across capability widths, so the
         payload must not depend on the in-memory image format. *)
  mutable timing : bool; (* drive the cache/TLB model (off = fast functional mode) *)
  mutable stores : int; (* retired stores, of any width (hang-detector fuel) *)
  mutable kernel_entries : int; (* exceptions dispatched to the kernel *)
  (* Decoded-instruction cache: direct-mapped on [pc lsr 2], tagged with
     the full (int) PC, -1 = empty.  Purely an interpreter optimisation:
     the architectural I-fetch (PCC check, TLB, I-cache model) still
     happens every step; only binary decode is memoized.  A conflicting
     PC simply takes the full fetch-and-decode path, which charges the
     same architectural costs — so collisions affect host speed only,
     never simulated counters.  Invalidated on [invalidate_icache] (the
     loader calls it). *)
  decode_pc : int array;
  decode_insn : Insn.t array;
  (* Superblock tier above the decode cache: hot straight-line regions
     translated into pre-decoded arrays of micro-ops ([sb_code], tagged by
     head PC in [sb_pc], -1 = empty) and executed by a tight loop.  Blocks
     are formed *exclusively from decode-cache-resident entries* — so a
     translation can never observe instruction bytes the plain engine
     would not — and are retired by [invalidate_icache] plus a store
     snoop ([sb_snoop]): any store landing inside a translated region
     flushes the tier, after which re-translation sees exactly the decode
     cache the plain engine would.  Host-side only; architectural
     behaviour is identical under both engines. *)
  mutable engine : engine;
  sb_pc : int array;
  sb_code : Insn.t array array;
  sb_snoop : Mem.Snoop.t;
  (* Byte-per-page map of every physical page the decode cache has been
     filled from since the last [invalidate_icache].  Superblocks are
     formed exclusively from decode-resident entries, so the map also
     covers every translated region.  [restore] consults it: a rewound
     page flagged here may hold bytes some warm decode entry was formed
     from, so the warm tiers are invalidated — the SMC-coherence
     contract extended across checkpoint/restore.  (Page-granular, not a
     convex hull like [sb_snoop]: the hull of code regions would span
     the data pages between them and false-positive on every chunk's
     mailbox writes.) *)
  code_pages : Bytes.t;
  mutable sb_translations : int; (* superblocks formed (host counter) *)
  mutable sb_dispatches : int; (* block entries (host counter) *)
  mutable sb_retired : int; (* instructions retired inside blocks *)
}

(* 2^14 slots x 4-byte insns = direct coverage of 64 KB of code, far more
   than any workload's hot loops. *)
let decode_slots = 1 lsl 14

let decode_mask = decode_slots - 1

(* Superblock table: direct-mapped on the head PC.  Heads are branch
   targets and fall-throughs after control transfers — far fewer than
   instructions — so 2^12 slots cover every workload's hot region set. *)
let sb_slots = 1 lsl 12

let sb_mask = sb_slots - 1

(* Longest straight-line run a single block may cover.  Long enough that
   real basic blocks never split; short enough that a block is always a
   bounded unit of work between budget/watchdog checks. *)
let max_sb_len = 64

(* The reset kernel: a bare machine treats any syscall as "exit 0" and has
   no handler for anything else.  Unhandled exceptions stop the machine
   with a structured [Trap_unhandled] outcome (carrying a state snapshot)
   rather than tearing the process down with [Failure]. *)
let default_kernel _t ctx = match ctx.exc with Cp0.Syscall -> Halt 0 | _ -> Fatal

let create ?(config = default_config) () =
  {
    config;
    regs = Regs.create ();
    caps = Array.make 32 Cap.Capability.almighty;
    pcc = Cap.Capability.almighty;
    pc = 0L;
    cp0 = Cp0.create ();
    phys = Mem.Phys.create ~size_bytes:config.mem_size;
    tags =
      Mem.Tags.create
        ~line_bytes:(match config.cap_width with W256 -> 32 | W128 -> 16)
        ~mem_size:config.mem_size ();
    hier = Mem.Hierarchy.create ~config:config.hierarchy ();
    cycles = 0;
    instret = 0;
    ll_bit = false;
    ll_addr = 0L;
    kernel = default_kernel;
    on_trace = (fun _ _ _ _ -> ());
    on_step = None;
    probe = None;
    on_store = None;
    timing = true;
    stores = 0;
    kernel_entries = 0;
    decode_pc = Array.make decode_slots (-1);
    decode_insn = Array.make decode_slots Insn.Syscall;
    engine = Superblock;
    sb_pc = Array.make sb_slots (-1);
    sb_code = Array.make sb_slots [||];
    sb_snoop = Mem.Snoop.create ();
    code_pages = Bytes.make (max 1 ((config.mem_size + 4095) lsr 12)) '\000';
    sb_translations = 0;
    sb_dispatches = 0;
    sb_retired = 0;
  }

let set_kernel t f = t.kernel <- f
let set_engine t e = t.engine <- e
let engine t = t.engine
let set_trace_hook t f = t.on_trace <- f
let set_step_hook t f = t.on_step <- f
let set_store_hook t f = t.on_store <- f

(* Attach (or detach, with [None]) the observability probe.  A probe that
   carries an attribution table additionally hooks the memory hierarchy
   and the tag table: the installed closures read [t.pc] — which still
   holds the in-flight instruction's address during execute — so every
   miss, DRAM transfer, and tag write lands on the PC that caused it. *)
let set_probe t p =
  t.probe <- p;
  match Option.bind p Obs.Probe.attrib with
  | Some a ->
      t.hier.Mem.Hierarchy.on_event <-
        Some (fun ev ~addr -> Obs.Attrib.record a ~pc:t.pc ~addr ev);
      Mem.Tags.set_on_write t.tags
        (Some (fun ~set ~addr -> Obs.Attrib.record a ~pc:t.pc ~addr (Obs.Attrib.Tag_write set)))
  | None ->
      t.hier.Mem.Hierarchy.on_event <- None;
      Mem.Tags.set_on_write t.tags None
let set_timing t b = t.timing <- b

let gpr t i = Regs.get t.regs i
let set_gpr t i v = Regs.set t.regs i v
let cap t i = t.caps.(i)
let set_cap t i c = t.caps.(i) <- c

(* Convenience: identity-map a virtual range with full permissions. *)
let map_identity t ~vaddr ~len prot = Mem.Tlb.map t.hier.Mem.Hierarchy.tlb ~vaddr ~len prot

let charge t n = if t.timing then t.cycles <- t.cycles + n

(* Retire every superblock.  Called by [invalidate_icache] and by the
   store snoop when a store lands inside a translated region (the
   SMC-coherence contract: translations must never outlive a write to
   the bytes they were formed from — stale *decode-cache* entries are the
   plain engine's documented behaviour until [invalidate_icache], and
   re-translation reproduces exactly that, but a block pinned before the
   store could otherwise disagree with what the plain engine's
   direct-mapped cache would serve after a conflict eviction). *)
let flush_superblocks t =
  Array.fill t.sb_pc 0 sb_slots (-1);
  Mem.Snoop.clear t.sb_snoop

(* Store snoop: probe the coherence filter; on intersection with any
   translated region, retire the tier.  Two integer compares per store in
   the common (miss) case. *)
let snoop_store t ~addr ~size =
  if Mem.Snoop.hit t.sb_snoop ~addr:(Int64.to_int addr) ~size then flush_superblocks t

(* --- diagnostic snapshots ---------------------------------------------- *)

(* A self-contained picture of the architectural state, attached to every
   abnormal [run] outcome so campaigns and tests get a diagnosable failure
   instead of a bare backtrace. *)
type snapshot = {
  snap_cause : string;
  snap_pc : int64;
  snap_exc : Cp0.exc option; (* last exception dispatched, if any *)
  snap_badvaddr : int64;
  snap_capcause : Cap.Cause.t;
  snap_capreg : int;
  snap_insn_word : int option; (* raw instruction word at PC, if readable *)
  snap_gprs : int64 array;
  snap_hi : int64;
  snap_lo : int64;
  snap_caps : Cap.Capability.t array;
  snap_pcc : Cap.Capability.t;
  snap_instret : int64;
  snap_cycles : int64;
}

let snapshot ?(cause = "snapshot") t =
  {
    snap_cause = cause;
    snap_pc = t.pc;
    snap_exc = t.cp0.Cp0.last_exc;
    snap_badvaddr = t.cp0.Cp0.badvaddr;
    snap_capcause = t.cp0.Cp0.capcause;
    snap_capreg = t.cp0.Cp0.capcause_reg;
    snap_insn_word = (try Some (Mem.Phys.read_u32 t.phys t.pc) with _ -> None);
    snap_gprs = Array.init 32 (fun i -> Regs.get t.regs i);
    snap_hi = t.regs.Regs.hi;
    snap_lo = t.regs.Regs.lo;
    snap_caps = Array.copy t.caps;
    snap_pcc = t.pcc;
    snap_instret = Int64.of_int t.instret;
    snap_cycles = Int64.of_int t.cycles;
  }

let pp_snapshot ppf s =
  Fmt.pf ppf "@[<v>%s@,pc=0x%Lx  instret=%Ld  cycles=%Ld" s.snap_cause s.snap_pc
    s.snap_instret s.snap_cycles;
  (match s.snap_insn_word with
  | Some w -> Fmt.pf ppf "@,insn=0x%08x" w
  | None -> Fmt.pf ppf "@,insn=<unreadable>");
  (match s.snap_exc with
  | Some e ->
      Fmt.pf ppf "@,cause=%s  badvaddr=0x%Lx" (Cp0.exc_to_string e) s.snap_badvaddr;
      (match e with
      | Cp0.Cp2 _ ->
          Fmt.pf ppf "  capcause=%s/C%d" (Cap.Cause.to_string s.snap_capcause) s.snap_capreg
      | _ -> ())
  | None -> ());
  Array.iteri
    (fun i v -> if not (Int64.equal v 0L) then Fmt.pf ppf "@,r%-2d = 0x%Lx" i v)
    s.snap_gprs;
  Array.iteri
    (fun i c ->
      if Cap.Capability.tag c && not (Cap.Capability.equal c Cap.Capability.almighty) then
        Fmt.pf ppf "@,c%-2d = %a" i Cap.Capability.pp c)
    s.snap_caps;
  Fmt.pf ppf "@,pcc = %a@]" Cap.Capability.pp s.snap_pcc

(* How a [run] ended.  Every abnormal outcome carries a snapshot; none of
   them raises, so campaign drivers can classify millions of runs without
   ever seeing a [Failure _] backtrace. *)
type run_result =
  | Exited of int (* the kernel halted the machine with this exit code *)
  | Trap_unhandled of exn_ctx * snapshot (* no handler accepted the exception *)
  | Budget_exhausted of snapshot (* [max_insns] spent without halting *)
  | Watchdog_hang of snapshot (* architectural state repeated: a provable hang *)

(* Conventional process-style exit codes for abnormal outcomes (the shell's
   124 = timed out, 125 = watchdog, 134 = SIGABRT conventions). *)
let exit_code = function
  | Exited code -> code
  | Budget_exhausted _ -> 124
  | Watchdog_hang _ -> 125
  | Trap_unhandled _ -> 134

let pp_run_result ppf = function
  | Exited code -> Fmt.pf ppf "exited %d" code
  | Trap_unhandled (ctx, s) ->
      Fmt.pf ppf "@[<v>unhandled trap: %s at pc=0x%Lx@,%a@]" (Cp0.exc_to_string ctx.exc)
        ctx.victim_pc pp_snapshot s
  | Budget_exhausted s -> Fmt.pf ppf "@[<v>instruction budget exhausted@,%a@]" pp_snapshot s
  | Watchdog_hang s -> Fmt.pf ppf "@[<v>watchdog: machine hang@,%a@]" pp_snapshot s

(* --- 64-bit helpers ---------------------------------------------------- *)

let sext32 v = Int64.of_int32 (Int64.to_int32 v)
let sext16 v = if v land 0x8000 <> 0 then Int64.of_int (v - 0x10000) else Int64.of_int v
let bool64 b = if b then 1L else 0L

(* --- memory access ----------------------------------------------------- *)

(* Access sizes are 1/2/4/8/16/32; map them to static [Int64] constants so
   [check_cap] doesn't allocate a fresh box per check (twice per
   instruction: fetch + data). *)
let size64 = function
  | 1 -> 1L
  | 2 -> 2L
  | 4 -> 4L
  | 8 -> 8L
  | 16 -> 16L
  | 32 -> 32L
  | n -> Int64.of_int n

let check_cap t ~reg c access ~addr ~size =
  match Cap.Capability.check_access c access ~addr ~size:(size64 size) with
  | Ok () -> ()
  | Error cause ->
      t.cp0.Cp0.capcause <- cause;
      t.cp0.Cp0.capcause_reg <- reg;
      raise (Exn (Cp0.Cp2 cause, addr))

(* Sizes are powers of two and addresses sit below 2^63, so alignment is a
   native-int mask — no boxed [Int64.rem]. *)
let check_alignment addr size store =
  if size > 1 && Int64.to_int addr land (size - 1) <> 0 then
    raise (Exn ((if store then Cp0.Address_error_store else Cp0.Address_error_load), addr))

let check_page t addr ~write ~size =
  let tlb = t.hier.Mem.Hierarchy.tlb in
  let prot = Mem.Tlb.protection tlb addr in
  if not prot.Mem.Tlb.valid then
    raise (Exn ((if write then Cp0.Tlb_store else Cp0.Tlb_load), addr));
  if write && not prot.Mem.Tlb.writable then raise (Exn (Cp0.Tlb_store, addr));
  (* Accesses must not straddle a page boundary in this model; our ABI
     aligns all scalars naturally so this cannot occur for valid code. *)
  ignore size;
  prot

let data_penalty t ~addr ~size ~write =
  if t.timing then charge t (Mem.Hierarchy.access_data t.hier ~addr ~size ~write)

(* Scalar load through an explicit capability [c] (register index [reg]). *)
let load_scalar t ~reg c ~addr ~width ~unsigned =
  let size = Insn.width_bytes width in
  check_alignment addr size false;
  check_cap t ~reg c Cap.Capability.Load ~addr ~size;
  ignore (check_page t addr ~write:false ~size);
  data_penalty t ~addr ~size ~write:false;
  try
    match (width, unsigned) with
    | Insn.B, true -> Int64.of_int (Mem.Phys.read_u8 t.phys addr)
    | Insn.B, false ->
        let v = Mem.Phys.read_u8 t.phys addr in
        Int64.of_int (if v land 0x80 <> 0 then v - 0x100 else v)
    | Insn.H, true -> Int64.of_int (Mem.Phys.read_u16 t.phys addr)
    | Insn.H, false -> sext16 (Mem.Phys.read_u16 t.phys addr)
    | Insn.W, true -> Int64.of_int (Mem.Phys.read_u32 t.phys addr)
    | Insn.W, false -> sext32 (Int64.of_int (Mem.Phys.read_u32 t.phys addr))
    | Insn.D, _ -> Mem.Phys.read_u64 t.phys addr
  with Mem.Phys.Bus_error a -> raise (Exn (Cp0.Address_error_load, a))

let store_scalar t ~reg c ~addr ~width v =
  let size = Insn.width_bytes width in
  check_alignment addr size true;
  check_cap t ~reg c Cap.Capability.Store ~addr ~size;
  ignore (check_page t addr ~write:true ~size);
  data_penalty t ~addr ~size ~write:true;
  (try
     match width with
     | Insn.B -> Mem.Phys.write_u8 t.phys addr (Int64.to_int (Int64.logand v 0xFFL))
     | Insn.H -> Mem.Phys.write_u16 t.phys addr (Int64.to_int (Int64.logand v 0xFFFFL))
     | Insn.W -> Mem.Phys.write_u32 t.phys addr (Int64.to_int (Int64.logand v 0xFFFF_FFFFL))
     | Insn.D -> Mem.Phys.write_u64 t.phys addr v
   with Mem.Phys.Bus_error a -> raise (Exn (Cp0.Address_error_store, a)));
  t.stores <- t.stores + 1;
  snoop_store t ~addr ~size;
  (* A general-purpose store clears the tag of the overlapped line(s):
     the architectural rule that makes in-memory capabilities unforgeable. *)
  Mem.Tags.clear_range t.tags addr size;
  if t.ll_bit && Mem.Tags.line_index t.tags addr = Mem.Tags.line_index t.tags t.ll_addr
  then t.ll_bit <- false;
  match t.on_store with Some f -> f addr size v | None -> ()

let cap_size t = match t.config.cap_width with W256 -> 32 | W128 -> 16

(* Digest of a stored capability's architectural fields: what the
   store-stream observer sees for a capability store.  Deliberately built
   from the register-file view (not the memory image, which is 32 bytes
   on W256 and 16 on W128), so equal capabilities stored on either width
   produce equal payloads.  An untagged store collapses to a constant:
   its field bits are dead (any dereference traps), and on the compressed
   machine they are format-dependent residue a cross-width diff must not
   see. *)
let cap_digest v =
  if not (Cap.Capability.tag v) then 5L
  else begin
    let mix h x =
      let h = Int64.mul (Int64.logxor h x) 0xFF51_AFD7_ED55_8CCDL in
      Int64.logxor h (Int64.shift_right_logical h 33)
    in
    let h = mix 0x9E37_79B9_7F4A_7C15L (Cap.Capability.base v) in
    let h = mix h (Cap.Capability.length v) in
    let h = mix h (Int64.of_int (Cap.Perms.to_int (Cap.Capability.perms v))) in
    let h = mix h (Int64.of_int (Cap.Capability.otype v)) in
    mix h (if Cap.Capability.is_sealed v then 7L else 11L)
  end

let load_cap t ~reg c ~addr =
  let size = cap_size t in
  check_alignment addr size false;
  check_cap t ~reg c Cap.Capability.Load_cap ~addr ~size;
  let prot = check_page t addr ~write:false ~size in
  data_penalty t ~addr ~size ~write:false;
  try
    let tag = Mem.Tags.get t.tags addr in
    (* The CHERI page-table extension: a page without the capability-load
       bit yields data with the tag stripped (Section 6.1), giving the OS
       shared mappings that cannot carry capabilities between processes. *)
    let tag = tag && prot.Mem.Tlb.cap_load in
    let c =
      match t.config.cap_width with
      | W256 ->
          (* Word-granule image read: one bounds check, four word loads,
             no intermediate buffer. *)
          let i = Mem.Phys.image_index t.phys addr 32 in
          Cap.Capability.of_words ~tag
            ~flags:(Mem.Phys.get_u64 t.phys i)
            ~reserved:(Mem.Phys.get_u64 t.phys (i + 8))
            ~base:(Mem.Phys.get_u64 t.phys (i + 16))
            ~length:(Mem.Phys.get_u64 t.phys (i + 24))
      | W128 ->
          Cap.Cap128.decompress ~tag (Cap.Cap128.of_bytes (Mem.Phys.read_bytes t.phys addr 16))
    in
    (match t.probe with
    | Some p when Cap.Capability.tag c ->
        Obs.Probe.note_cap_bounds p ~len:(Cap.Capability.length c)
    | _ -> ());
    c
  with Mem.Phys.Bus_error a -> raise (Exn (Cp0.Address_error_load, a))

let store_cap t ~reg c ~addr v =
  let size = cap_size t in
  check_alignment addr size true;
  check_cap t ~reg c Cap.Capability.Store_cap ~addr ~size;
  let prot = check_page t addr ~write:true ~size in
  if Cap.Capability.tag v && not prot.Mem.Tlb.cap_store then begin
    t.cp0.Cp0.capcause <- Cap.Cause.Permit_store_capability_violation;
    t.cp0.Cp0.capcause_reg <- reg;
    raise (Exn (Cp0.Cp2 Cap.Cause.Permit_store_capability_violation, addr))
  end;
  (match t.config.cap_width with
  | W256 ->
      data_penalty t ~addr ~size ~write:true;
      (* Word-granule image write: one bounds check, four word stores,
         no intermediate buffer.  (The 256-bit image cannot fail to
         encode, so materialising it after the penalty charge changes
         nothing observable.) *)
      (try
         let i = Mem.Phys.image_index t.phys addr 32 in
         Mem.Phys.set_u64 t.phys i (Cap.Capability.flags_word v);
         Mem.Phys.set_u64 t.phys (i + 8) (Cap.Capability.reserved_word v);
         Mem.Phys.set_u64 t.phys (i + 16) (Cap.Capability.base v);
         Mem.Phys.set_u64 t.phys (i + 24) (Cap.Capability.length v)
       with Mem.Phys.Bus_error a -> raise (Exn (Cp0.Address_error_store, a)))
  | W128 ->
      (* The compressed machine refuses to store a capability whose
         bounds the 128-bit format cannot represent exactly — checked
         before any penalty is charged, as with a buffered image. *)
      let image =
        match Cap.Cap128.compress v with
        | Ok c -> Cap.Cap128.to_bytes c
        | Error cause ->
            t.cp0.Cp0.capcause <- cause;
            t.cp0.Cp0.capcause_reg <- reg;
            raise (Exn (Cp0.Cp2 cause, addr))
      in
      data_penalty t ~addr ~size ~write:true;
      (try Mem.Phys.write_bytes t.phys addr image
       with Mem.Phys.Bus_error a -> raise (Exn (Cp0.Address_error_store, a))));
  t.stores <- t.stores + 1;
  snoop_store t ~addr ~size;
  (match t.probe with
  | Some p when Cap.Capability.tag v ->
      Obs.Probe.note_cap_bounds p ~len:(Cap.Capability.length v)
  | _ -> ());
  Mem.Tags.set t.tags addr (Cap.Capability.tag v);
  match t.on_store with Some f -> f addr 0 (cap_digest v) | None -> ()

(* --- CP2 helpers -------------------------------------------------------- *)

let cap_op t ~reg result =
  match result with
  | Ok c -> c
  | Error cause ->
      t.cp0.Cp0.capcause <- cause;
      t.cp0.Cp0.capcause_reg <- reg;
      raise (Exn (Cp0.Cp2 cause, 0L))

(* Effective address of a capability-relative access: base + index + imm. *)
let cap_ea c rt_val imm = Int64.add (Cap.Capability.base c) (Int64.add rt_val (Int64.of_int imm))

(* Effective address of a legacy access: C0-relative (Section 4.1). *)
let legacy_ea t base offset =
  let va = Int64.add (gpr t base) (sext16 (offset land 0xFFFF)) in
  Int64.add (Cap.Capability.base t.caps.(0)) va

let branch_target pc offset = Int64.add pc (Int64.of_int (4 + (offset * 4)))

(* --- the interpreter ----------------------------------------------------- *)

let overflow_add a b =
  let s = Int64.add a b in
  (Int64.logxor s a) < 0L && (Int64.logxor s b) < 0L

(* Execute one decoded instruction.  Returns the next PC. *)
let execute t insn =
  let pc = t.pc in
  let next = Int64.add pc 4L in
  match insn with
  | Insn.Add (d, s, u) ->
      let a = sext32 (gpr t s) and b = sext32 (gpr t u) in
      let sum = Int64.add a b in
      (* 32-bit signed overflow: the 64-bit sum of sign-extended operands
         falls outside the 32-bit range *)
      if not (Int64.equal (sext32 sum) sum) then raise (Exn (Cp0.Overflow, 0L));
      set_gpr t d sum;
      next
  | Insn.Addu (d, s, u) -> set_gpr t d (sext32 (Int64.add (gpr t s) (gpr t u))); next
  | Insn.Dadd (d, s, u) ->
      if overflow_add (gpr t s) (gpr t u) then raise (Exn (Cp0.Overflow, 0L));
      set_gpr t d (Int64.add (gpr t s) (gpr t u));
      next
  | Insn.Daddu (d, s, u) -> set_gpr t d (Int64.add (gpr t s) (gpr t u)); next
  | Insn.Sub (d, s, u) ->
      let diff = Int64.sub (sext32 (gpr t s)) (sext32 (gpr t u)) in
      if not (Int64.equal (sext32 diff) diff) then raise (Exn (Cp0.Overflow, 0L));
      set_gpr t d diff;
      next
  | Insn.Subu (d, s, u) -> set_gpr t d (sext32 (Int64.sub (gpr t s) (gpr t u))); next
  | Insn.Dsubu (d, s, u) -> set_gpr t d (Int64.sub (gpr t s) (gpr t u)); next
  | Insn.And (d, s, u) -> set_gpr t d (Int64.logand (gpr t s) (gpr t u)); next
  | Insn.Or (d, s, u) -> set_gpr t d (Int64.logor (gpr t s) (gpr t u)); next
  | Insn.Xor (d, s, u) -> set_gpr t d (Int64.logxor (gpr t s) (gpr t u)); next
  | Insn.Nor (d, s, u) -> set_gpr t d (Int64.lognot (Int64.logor (gpr t s) (gpr t u))); next
  | Insn.Slt (d, s, u) -> set_gpr t d (bool64 (Int64.compare (gpr t s) (gpr t u) < 0)); next
  | Insn.Sltu (d, s, u) -> set_gpr t d (bool64 (Int64.unsigned_compare (gpr t s) (gpr t u) < 0)); next
  | Insn.Addiu (r, s, i) -> set_gpr t r (sext32 (Int64.add (gpr t s) (sext16 (i land 0xFFFF)))); next
  | Insn.Daddiu (r, s, i) -> set_gpr t r (Int64.add (gpr t s) (sext16 (i land 0xFFFF))); next
  | Insn.Andi (r, s, i) -> set_gpr t r (Int64.logand (gpr t s) (Int64.of_int (i land 0xFFFF))); next
  | Insn.Ori (r, s, i) -> set_gpr t r (Int64.logor (gpr t s) (Int64.of_int (i land 0xFFFF))); next
  | Insn.Xori (r, s, i) -> set_gpr t r (Int64.logxor (gpr t s) (Int64.of_int (i land 0xFFFF))); next
  | Insn.Slti (r, s, i) -> set_gpr t r (bool64 (Int64.compare (gpr t s) (sext16 (i land 0xFFFF)) < 0)); next
  | Insn.Sltiu (r, s, i) ->
      set_gpr t r (bool64 (Int64.unsigned_compare (gpr t s) (sext16 (i land 0xFFFF)) < 0));
      next
  | Insn.Lui (r, i) -> set_gpr t r (sext32 (Int64.shift_left (Int64.of_int (i land 0xFFFF)) 16)); next
  | Insn.Sll (d, s, sa) -> set_gpr t d (sext32 (Int64.shift_left (gpr t s) sa)); next
  | Insn.Srl (d, s, sa) ->
      set_gpr t d (sext32 (Int64.shift_right_logical (Int64.logand (gpr t s) 0xFFFF_FFFFL) sa));
      next
  | Insn.Sra (d, s, sa) -> set_gpr t d (sext32 (Int64.shift_right (sext32 (gpr t s)) sa)); next
  | Insn.Dsll (d, s, sa) -> set_gpr t d (Int64.shift_left (gpr t s) sa); next
  | Insn.Dsrl (d, s, sa) -> set_gpr t d (Int64.shift_right_logical (gpr t s) sa); next
  | Insn.Dsra (d, s, sa) -> set_gpr t d (Int64.shift_right (gpr t s) sa); next
  | Insn.Dsll32 (d, s, sa) -> set_gpr t d (Int64.shift_left (gpr t s) (sa + 32)); next
  | Insn.Dsrl32 (d, s, sa) -> set_gpr t d (Int64.shift_right_logical (gpr t s) (sa + 32)); next
  | Insn.Sllv (d, u, s) -> set_gpr t d (sext32 (Int64.shift_left (gpr t u) (Int64.to_int (gpr t s) land 31))); next
  | Insn.Srlv (d, u, s) ->
      set_gpr t d (sext32 (Int64.shift_right_logical (Int64.logand (gpr t u) 0xFFFF_FFFFL)
                      (Int64.to_int (gpr t s) land 31)));
      next
  | Insn.Srav (d, u, s) -> set_gpr t d (sext32 (Int64.shift_right (sext32 (gpr t u)) (Int64.to_int (gpr t s) land 31))); next
  | Insn.Dsllv (d, u, s) -> set_gpr t d (Int64.shift_left (gpr t u) (Int64.to_int (gpr t s) land 63)); next
  | Insn.Dsrlv (d, u, s) -> set_gpr t d (Int64.shift_right_logical (gpr t u) (Int64.to_int (gpr t s) land 63)); next
  | Insn.Dsrav (d, u, s) -> set_gpr t d (Int64.shift_right (gpr t u) (Int64.to_int (gpr t s) land 63)); next
  | Insn.Mult (s, u) ->
      charge t t.config.mult_cycles;
      let p = Int64.mul (sext32 (gpr t s)) (sext32 (gpr t u)) in
      t.regs.Regs.lo <- sext32 p;
      t.regs.Regs.hi <- sext32 (Int64.shift_right p 32);
      next
  | Insn.Multu (s, u) ->
      charge t t.config.mult_cycles;
      let a = Int64.logand (gpr t s) 0xFFFF_FFFFL and b = Int64.logand (gpr t u) 0xFFFF_FFFFL in
      let p = Int64.mul a b in
      t.regs.Regs.lo <- sext32 p;
      t.regs.Regs.hi <- sext32 (Int64.shift_right_logical p 32);
      next
  | Insn.Dmult (s, u) | Insn.Dmultu (s, u) ->
      charge t t.config.mult_cycles;
      (* 128-bit product truncated to LO; HI receives the (approximate) high
         word — full 128-bit multiply is not needed by any workload. *)
      t.regs.Regs.lo <- Int64.mul (gpr t s) (gpr t u);
      t.regs.Regs.hi <- 0L;
      next
  | Insn.Div (s, u) ->
      charge t t.config.div_cycles;
      let a = sext32 (gpr t s) and b = sext32 (gpr t u) in
      if Int64.equal b 0L then begin
        t.regs.Regs.lo <- 0L;
        t.regs.Regs.hi <- 0L
      end
      else begin
        t.regs.Regs.lo <- sext32 (Int64.div a b);
        t.regs.Regs.hi <- sext32 (Int64.rem a b)
      end;
      next
  | Insn.Divu (s, u) ->
      charge t t.config.div_cycles;
      let a = Int64.logand (gpr t s) 0xFFFF_FFFFL and b = Int64.logand (gpr t u) 0xFFFF_FFFFL in
      if Int64.equal b 0L then begin
        t.regs.Regs.lo <- 0L;
        t.regs.Regs.hi <- 0L
      end
      else begin
        t.regs.Regs.lo <- sext32 (Int64.unsigned_div a b);
        t.regs.Regs.hi <- sext32 (Int64.unsigned_rem a b)
      end;
      next
  | Insn.Ddiv (s, u) ->
      charge t t.config.div_cycles;
      if Int64.equal (gpr t u) 0L then begin
        t.regs.Regs.lo <- 0L;
        t.regs.Regs.hi <- 0L
      end
      else begin
        t.regs.Regs.lo <- Int64.div (gpr t s) (gpr t u);
        t.regs.Regs.hi <- Int64.rem (gpr t s) (gpr t u)
      end;
      next
  | Insn.Ddivu (s, u) ->
      charge t t.config.div_cycles;
      if Int64.equal (gpr t u) 0L then begin
        t.regs.Regs.lo <- 0L;
        t.regs.Regs.hi <- 0L
      end
      else begin
        t.regs.Regs.lo <- Int64.unsigned_div (gpr t s) (gpr t u);
        t.regs.Regs.hi <- Int64.unsigned_rem (gpr t s) (gpr t u)
      end;
      next
  | Insn.Mfhi d -> set_gpr t d t.regs.Regs.hi; next
  | Insn.Mflo d -> set_gpr t d t.regs.Regs.lo; next
  | Insn.Mthi s -> t.regs.Regs.hi <- gpr t s; next
  | Insn.Mtlo s -> t.regs.Regs.lo <- gpr t s; next
  | Insn.Load (w, u, r, b, o) ->
      let addr = legacy_ea t b o in
      set_gpr t r (load_scalar t ~reg:0 t.caps.(0) ~addr ~width:w ~unsigned:u);
      next
  | Insn.Store (w, r, b, o) ->
      let addr = legacy_ea t b o in
      store_scalar t ~reg:0 t.caps.(0) ~addr ~width:w (gpr t r);
      next
  | Insn.Lld (r, b, o) ->
      let addr = legacy_ea t b o in
      let v = load_scalar t ~reg:0 t.caps.(0) ~addr ~width:Insn.D ~unsigned:false in
      t.ll_bit <- true;
      t.ll_addr <- addr;
      set_gpr t r v;
      next
  | Insn.Scd (r, b, o) ->
      let addr = legacy_ea t b o in
      if t.ll_bit && Int64.equal addr t.ll_addr then begin
        store_scalar t ~reg:0 t.caps.(0) ~addr ~width:Insn.D (gpr t r);
        t.ll_bit <- false;
        set_gpr t r 1L
      end
      else set_gpr t r 0L;
      next
  | Insn.J target ->
      Int64.logor (Int64.logand next 0xFFFF_FFFF_F000_0000L) (Int64.of_int (target * 4))
  | Insn.Jal target ->
      set_gpr t Regs.ra next;
      Int64.logor (Int64.logand next 0xFFFF_FFFF_F000_0000L) (Int64.of_int (target * 4))
  | Insn.Jr s -> gpr t s
  | Insn.Jalr (d, s) ->
      let dest = gpr t s in
      set_gpr t d next;
      dest
  | Insn.Beq (s, u, o) -> if Int64.equal (gpr t s) (gpr t u) then branch_target pc o else next
  | Insn.Bne (s, u, o) -> if not (Int64.equal (gpr t s) (gpr t u)) then branch_target pc o else next
  | Insn.Blez (s, o) -> if Int64.compare (gpr t s) 0L <= 0 then branch_target pc o else next
  | Insn.Bgtz (s, o) -> if Int64.compare (gpr t s) 0L > 0 then branch_target pc o else next
  | Insn.Bltz (s, o) -> if Int64.compare (gpr t s) 0L < 0 then branch_target pc o else next
  | Insn.Bgez (s, o) -> if Int64.compare (gpr t s) 0L >= 0 then branch_target pc o else next
  | Insn.Syscall -> raise (Exn (Cp0.Syscall, 0L))
  | Insn.Break -> raise (Exn (Cp0.Breakpoint, 0L))
  | Insn.Eret ->
      if not (Cp0.in_kernel_mode t.cp0) then raise (Exn (Cp0.Reserved_instruction, 0L));
      t.cp0.Cp0.exl <- false;
      t.cp0.Cp0.epc
  | Insn.Mfc0 (r, d) ->
      if not (Cp0.in_kernel_mode t.cp0) then raise (Exn (Cp0.Coprocessor_unusable, 0L));
      set_gpr t r (Cp0.read t.cp0 d);
      next
  | Insn.Mtc0 (r, d) ->
      if not (Cp0.in_kernel_mode t.cp0) then raise (Exn (Cp0.Coprocessor_unusable, 0L));
      Cp0.write t.cp0 d (gpr t r);
      next
  | Insn.Trace (m, a, b) ->
      t.on_trace t m (gpr t a) (gpr t b);
      next
  (* --- CP2 ----------------------------------------------------------- *)
  | Insn.CGetBase (d, cb) -> set_gpr t d (Cap.Capability.base t.caps.(cb)); next
  | Insn.CGetLen (d, cb) -> set_gpr t d (Cap.Capability.length t.caps.(cb)); next
  | Insn.CGetTag (d, cb) -> set_gpr t d (bool64 (Cap.Capability.tag t.caps.(cb))); next
  | Insn.CGetPerm (d, cb) ->
      set_gpr t d (Int64.of_int (Cap.Perms.to_int (Cap.Capability.perms t.caps.(cb))));
      next
  | Insn.CGetPCC (d, cd) ->
      t.caps.(cd) <- t.pcc;
      set_gpr t d pc;
      next
  | Insn.CGetCause d ->
      set_gpr t d
        (Int64.of_int
           ((Cap.Cause.code t.cp0.Cp0.capcause lsl 8) lor t.cp0.Cp0.capcause_reg));
      next
  | Insn.CIncBase (cd, cb, rt) ->
      t.caps.(cd) <- cap_op t ~reg:cb (Cap.Capability.inc_base t.caps.(cb) (gpr t rt));
      next
  | Insn.CSetLen (cd, cb, rt) ->
      t.caps.(cd) <- cap_op t ~reg:cb (Cap.Capability.set_len t.caps.(cb) (gpr t rt));
      next
  | Insn.CClearTag (cd, cb) ->
      t.caps.(cd) <- Cap.Capability.clear_tag t.caps.(cb);
      next
  | Insn.CAndPerm (cd, cb, rt) ->
      t.caps.(cd) <-
        cap_op t ~reg:cb
          (Cap.Capability.and_perm t.caps.(cb)
             (Cap.Perms.of_int (Int64.to_int (Int64.logand (gpr t rt) 0x7FFF_FFFFL))));
      next
  | Insn.CMove (cd, cb) ->
      t.caps.(cd) <- t.caps.(cb);
      next
  | Insn.CToPtr (rd, cb, ct) ->
      set_gpr t rd (Cap.Capability.to_ptr t.caps.(cb) ~relative_to:t.caps.(ct));
      next
  | Insn.CFromPtr (cd, cb, rt) ->
      t.caps.(cd) <- cap_op t ~reg:cb (Cap.Capability.from_ptr t.caps.(cb) (gpr t rt));
      next
  | Insn.CBTU (cb, o) ->
      if not (Cap.Capability.tag t.caps.(cb)) then branch_target pc o else next
  | Insn.CBTS (cb, o) ->
      if Cap.Capability.tag t.caps.(cb) then branch_target pc o else next
  | Insn.CLC (cd, cb, rt, i) ->
      let c = t.caps.(cb) in
      t.caps.(cd) <- load_cap t ~reg:cb c ~addr:(cap_ea c (gpr t rt) i);
      next
  | Insn.CSC (cs, cb, rt, i) ->
      let c = t.caps.(cb) in
      store_cap t ~reg:cb c ~addr:(cap_ea c (gpr t rt) i) t.caps.(cs);
      next
  | Insn.CLoad (w, u, rd, cb, rt, i) ->
      let c = t.caps.(cb) in
      set_gpr t rd (load_scalar t ~reg:cb c ~addr:(cap_ea c (gpr t rt) i) ~width:w ~unsigned:u);
      next
  | Insn.CStore (w, rs, cb, rt, i) ->
      let c = t.caps.(cb) in
      store_scalar t ~reg:cb c ~addr:(cap_ea c (gpr t rt) i) ~width:w (gpr t rs);
      next
  | Insn.CLLD (rd, cb) ->
      let c = t.caps.(cb) in
      let addr = Cap.Capability.base c in
      let v = load_scalar t ~reg:cb c ~addr ~width:Insn.D ~unsigned:false in
      t.ll_bit <- true;
      t.ll_addr <- addr;
      set_gpr t rd v;
      next
  | Insn.CSCD (rd, rs, cb) ->
      let c = t.caps.(cb) in
      let addr = Cap.Capability.base c in
      if t.ll_bit && Int64.equal addr t.ll_addr then begin
        store_scalar t ~reg:cb c ~addr ~width:Insn.D (gpr t rs);
        t.ll_bit <- false;
        set_gpr t rd 1L
      end
      else set_gpr t rd 0L;
      next
  | Insn.CJR cb ->
      let c = t.caps.(cb) in
      check_cap t ~reg:cb c Cap.Capability.Execute ~addr:(Cap.Capability.base c) ~size:4;
      t.pcc <- c;
      Cap.Capability.base c
  | Insn.CJALR (cd, cb) ->
      let c = t.caps.(cb) in
      check_cap t ~reg:cb c Cap.Capability.Execute ~addr:(Cap.Capability.base c) ~size:4;
      (* Link: derive a return capability whose base is the return point —
         a monotonic restriction of the current PCC. *)
      let delta = Int64.sub next (Cap.Capability.base t.pcc) in
      t.caps.(cd) <- cap_op t ~reg:cd (Cap.Capability.inc_base t.pcc delta);
      t.pcc <- c;
      Cap.Capability.base c
  | Insn.CSeal (cd, cs, ct) ->
      let authority = t.caps.(ct) in
      let ot = Int64.to_int (Int64.logand (Cap.Capability.base authority) 0xFF_FFFFL) in
      t.caps.(cd) <- cap_op t ~reg:cs (Cap.Capability.seal t.caps.(cs) ~authority ~otype:ot);
      next
  | Insn.CUnseal (cd, cs, ct) ->
      let authority = t.caps.(ct) in
      let ot = Int64.to_int (Int64.logand (Cap.Capability.base authority) 0xFF_FFFFL) in
      t.caps.(cd) <-
        cap_op t ~reg:cs (Cap.Capability.unseal t.caps.(cs) ~authority ~otype:ot);
      next
  | Insn.CCall (_, _) ->
      t.cp0.Cp0.capcause <- Cap.Cause.Call_trap;
      raise (Exn (Cp0.Cp2 Cap.Cause.Call_trap, 0L))
  | Insn.CReturn ->
      t.cp0.Cp0.capcause <- Cap.Cause.Return_trap;
      raise (Exn (Cp0.Cp2 Cap.Cause.Return_trap, 0L))

(* Fetch the instruction word at PC, validated against PCC (Section 4.4:
   the absolute PC is checked against PCC in Execute). *)
let fetch t =
  check_cap t ~reg:0xFF t.pcc Cap.Capability.Execute ~addr:t.pc ~size:4;
  let prot = Mem.Tlb.protection t.hier.Mem.Hierarchy.tlb t.pc in
  if not (prot.Mem.Tlb.valid && prot.Mem.Tlb.executable) then
    raise (Exn (Cp0.Tlb_load, t.pc));
  if t.timing then charge t (Mem.Hierarchy.access_insn t.hier ~addr:t.pc);
  try Mem.Phys.read_u32 t.phys t.pc
  with Mem.Phys.Bus_error a -> raise (Exn (Cp0.Address_error_load, a))

(* Execute a single instruction, routing exceptions to the kernel model. *)
let invalidate_icache t =
  Array.fill t.decode_pc 0 decode_slots (-1);
  Bytes.fill t.code_pages 0 (Bytes.length t.code_pages) '\000';
  flush_superblocks t

(* Route an in-flight exception to the kernel model: the shared tail of
   [step] and the superblock executor, so both engines dispatch traps
   through byte-identical CP0 state updates. *)
let dispatch_exn t exc badv =
  t.cp0.Cp0.epc <- t.pc;
  t.cp0.Cp0.badvaddr <- badv;
  t.cp0.Cp0.last_exc <- Some exc;
  t.cp0.Cp0.exl <- true;
  t.ll_bit <- false;
  t.kernel_entries <- t.kernel_entries + 1;
  let ctx = { exc; victim_pc = t.pc } in
  match t.kernel t ctx with
  | Resume_at pc ->
      t.cp0.Cp0.exl <- false;
      t.pc <- pc
  | Halt code -> raise (Halted code)
  | Fatal -> raise (Unhandled ctx)

let step t =
  (match t.on_step with Some f -> f t | None -> ());
  try
    let ipc = Int64.to_int t.pc in
    (* The int tag must represent the 64-bit PC faithfully: [Int64.to_int]
       alone wraps modulo 2^63, so e.g. 0x8000_0000_0000_1000 and 0x1000
       would share a tag and the cache could serve one PC's decode for the
       other.  A PC the native int cannot hold bypasses the cache (full
       fetch path, architecturally identical); such PCs trap on fetch in
       every real workload anyway. *)
    let representable = Int64.equal (Int64.of_int ipc) t.pc in
    let slot = (ipc lsr 2) land decode_mask in
    let insn =
      if representable && Array.unsafe_get t.decode_pc slot = ipc then begin
        (* Decode-cache hit.  Architectural fetch costs still apply. *)
        check_cap t ~reg:0xFF t.pcc Cap.Capability.Execute ~addr:t.pc ~size:4;
        if t.timing then charge t (Mem.Hierarchy.access_insn t.hier ~addr:t.pc);
        Array.unsafe_get t.decode_insn slot
      end
      else begin
        let word = fetch t in
        let insn =
          try Code.decode word
          with Code.Decode_error _ -> raise (Exn (Cp0.Reserved_instruction, 0L))
        in
        if representable then begin
          Array.unsafe_set t.decode_pc slot ipc;
          Array.unsafe_set t.decode_insn slot insn;
          (* Every decode-cache fill flags its page for [restore]'s SMC
             check; superblock regions are subsets of decode-resident
             PCs, so one site covers both tiers.  [fetch] bounds-checked
             the PC, so the page index is in range. *)
          Bytes.unsafe_set t.code_pages (ipc lsr 12) '\001'
        end;
        insn
      end
    in
    (match insn with
    | Insn.Trace _ -> () (* instrumentation: free, and excluded from instret *)
    | _ ->
        t.instret <- t.instret + 1;
        charge t 1;
        (* Observability probe: classify + sample over exactly the
           instret population (markers excluded, faulting fetches
           counted — the same convention as instret itself). *)
        (match t.probe with Some p -> Obs.Probe.note p insn ~pc:t.pc | None -> ()));
    t.pc <- execute t insn;
    (* Shadow call stack for the profiler's collapsed-stack output: calls
       and returns are reported after execute, when register-indirect
       targets are known.  The minic ABI returns via `jr $ra`. *)
    match t.probe with
    | None -> ()
    | Some p -> (
        match insn with
        | Insn.Jal _ | Insn.Jalr _ | Insn.CJALR _ -> Obs.Probe.enter_frame p ~callee:t.pc
        | Insn.Jr s when s = Regs.ra -> Obs.Probe.exit_frame p
        | _ -> ())
  with Exn (exc, badv) -> dispatch_exn t exc badv

(* --- the superblock tier ------------------------------------------------ *)

(* An instruction that ends a straight-line region: anything whose next PC
   may differ from pc+4 (control transfers and always-trapping
   instructions) plus trace markers, which have their own retirement
   convention.  Everything else returns [next] from [execute]. *)
let block_terminator = function
  | Insn.J _ | Insn.Jal _ | Insn.Jr _ | Insn.Jalr _
  | Insn.Beq _ | Insn.Bne _ | Insn.Blez _ | Insn.Bgtz _ | Insn.Bltz _ | Insn.Bgez _
  | Insn.Syscall | Insn.Break | Insn.Eret | Insn.Trace _
  | Insn.CBTU _ | Insn.CBTS _ | Insn.CJR _ | Insn.CJALR _
  | Insn.CCall _ | Insn.CReturn -> true
  | _ -> false

(* Try to form a superblock headed at [ipc] (a faithful int PC) and pin it
   in table slot [slot].  Formation reads *only decode-cache-resident*
   entries — it stops at the first cold slot — so translation can never
   observe instruction bytes the plain engine would not have decoded, and
   a cold head doubles as the hotness gate: code translates on its second
   visit, once the first pass has warmed the decode cache.  Returns the
   pinned code array ([||] when the head is cold or a terminator). *)
let translate t ipc slot =
  let buf = Array.make max_sb_len Insn.Syscall in
  let n = ref 0 in
  let continue_ = ref true in
  while !continue_ && !n < max_sb_len do
    let a = ipc + (!n * 4) in
    let dslot = (a lsr 2) land decode_mask in
    if Array.unsafe_get t.decode_pc dslot = a then begin
      let insn = Array.unsafe_get t.decode_insn dslot in
      if block_terminator insn then continue_ := false
      else begin
        Array.unsafe_set buf !n insn;
        incr n
      end
    end
    else continue_ := false
  done;
  if !n = 0 then begin
    (* Pin an empty block for a *warm* terminator head so re-dispatch is a
       single compare; a cold head stays unpinned and will be retried once
       the decode cache has warmed. *)
    let dslot = (ipc lsr 2) land decode_mask in
    if Array.unsafe_get t.decode_pc dslot = ipc then begin
      Array.unsafe_set t.sb_pc slot ipc;
      Array.unsafe_set t.sb_code slot [||]
    end;
    [||]
  end
  else begin
    let code = Array.sub buf 0 !n in
    Array.unsafe_set t.sb_pc slot ipc;
    Array.unsafe_set t.sb_code slot code;
    t.sb_translations <- t.sb_translations + 1;
    Mem.Snoop.cover t.sb_snoop ~lo:ipc ~hi:(ipc + (!n * 4));
    code
  end

(* Execute up to [n] elements of a pinned block whose head is the current
   PC.  Per element this is exactly [step]'s decode-hit path — step hook,
   PCC execute check, I-side hierarchy access when [timing], instret,
   [charge t 1], probe note, execute — minus the per-step dispatch,
   tagging, and exception-frame overhead, which is where the speed comes
   from.  Elements are straight-line, so [execute] always returns pc+4
   and no shadow-call-stack events can occur inside a block.  A trap
   dispatches through [dispatch_exn] and ends the block. *)
let exec_block t code n =
  t.sb_dispatches <- t.sb_dispatches + 1;
  let i = ref 0 in
  let unhooked = match (t.on_step, t.probe) with None, None -> true | _ -> false in
  (* PCC cannot change inside a block (every PCC-writing instruction is a
     terminator), and [check_access] is pure, so when the whole [n]-element
     range passes the execute check once, the per-element checks are
     no-ops and can be hoisted.  If the hoisted check fails, the
     per-element checks run so the trap surfaces at exactly the PC — and
     with exactly the cause — the plain engine would report. *)
  let pcc_ok =
    match
      Cap.Capability.check_access t.pcc Cap.Capability.Execute ~addr:t.pc
        ~size:(Int64.of_int (n * 4))
    with
    | Ok () -> true
    | Error _ -> false
  in
  (try
     if unhooked then
       (* Unhooked fast path: the common case for full-size runs. *)
       while !i < n do
         let insn = Array.unsafe_get code !i in
         if not pcc_ok then
           check_cap t ~reg:0xFF t.pcc Cap.Capability.Execute ~addr:t.pc ~size:4;
         if t.timing then charge t (Mem.Hierarchy.access_insn t.hier ~addr:t.pc);
         t.instret <- t.instret + 1;
         charge t 1;
         t.pc <- execute t insn;
         incr i
       done
     else
       (* Hook-aware variant: same architectural sequence, hooks invoked
          at exactly the points [step] would invoke them. *)
       while !i < n do
         (match t.on_step with Some f -> f t | None -> ());
         let insn = Array.unsafe_get code !i in
         if not pcc_ok then
           check_cap t ~reg:0xFF t.pcc Cap.Capability.Execute ~addr:t.pc ~size:4;
         if t.timing then charge t (Mem.Hierarchy.access_insn t.hier ~addr:t.pc);
         t.instret <- t.instret + 1;
         charge t 1;
         (match t.probe with Some p -> Obs.Probe.note p insn ~pc:t.pc | None -> ());
         t.pc <- execute t insn;
         incr i
       done
   with Exn (exc, badv) -> dispatch_exn t exc badv);
  t.sb_retired <- t.sb_retired + !i

(* One unit of work under the superblock engine: retire up to [fuel]
   instructions through a block pinned at the current PC, or fall back to
   a single generic [step] (which also warms the decode cache that
   formation feeds on).  [fuel] lets the run loop align block boundaries
   with its budget and watchdog sampling points, keeping both engines'
   outcomes identical instruction for instruction. *)
let sb_step t ~fuel =
  let ipc = Int64.to_int t.pc in
  if fuel <= 0 || not (Int64.equal (Int64.of_int ipc) t.pc) then step t
  else begin
    let slot = (ipc lsr 2) land sb_mask in
    let code =
      if Array.unsafe_get t.sb_pc slot = ipc then Array.unsafe_get t.sb_code slot
      else translate t ipc slot
    in
    let n = Array.length code in
    if n = 0 then step t else exec_block t code (if fuel < n then fuel else n)
  end

(* --- the hardened run loop --------------------------------------------- *)

(* A digest of the full architectural state: PC, GPRs, capability register
   file, and the monotone side-effect counters (stores, kernel entries).
   Two equal digests taken at the same PC with equal side-effect counters
   mean memory has not changed between the samples and the register state
   repeated — on this deterministic machine that is a provable hang. *)
let state_digest t =
  let mix h v =
    let h = Int64.mul (Int64.logxor h v) 0xFF51_AFD7_ED55_8CCDL in
    Int64.logxor h (Int64.shift_right_logical h 33)
  in
  let h = ref (mix 0x9E37_79B9_7F4A_7C15L t.pc) in
  for i = 1 to 31 do
    h := mix !h t.regs.Regs.r.(i)
  done;
  h := mix !h t.regs.Regs.hi;
  h := mix !h t.regs.Regs.lo;
  let mix_cap c =
    h := mix !h (Cap.Capability.base c);
    h := mix !h (Cap.Capability.length c);
    h := mix !h (Int64.of_int (Cap.Perms.to_int (Cap.Capability.perms c)));
    h := mix !h (Int64.of_int (Cap.Capability.otype c));
    h := mix !h (if Cap.Capability.tag c then 3L else 5L);
    h := mix !h (if Cap.Capability.is_sealed c then 7L else 11L)
  in
  Array.iter mix_cap t.caps;
  mix_cap t.pcc;
  h := mix !h (Int64.of_int t.stores);
  h := mix !h (Int64.of_int t.kernel_entries);
  h := mix !h (if t.ll_bit then 13L else 17L);
  !h

(* PC-history hang detector: every [watchdog] retired instructions, record
   (PC, state digest) in a small ring; a revisit of a recorded observation
   proves an infinite loop (see [state_digest]).  The sampling makes the
   detector probabilistic for long loop periods — the instruction budget
   remains the backstop — but it catches the tight spin loops injected
   faults actually produce within a couple of sampling windows. *)
let watchdog_ring = 64

(* Run until the kernel halts the machine, [max_insns] is exceeded, or the
   [watchdog] (a sampling interval in instructions; 0 disables) proves a
   hang.  Never raises: stray OCaml exceptions out of a native kernel
   callback degrade to [Trap_unhandled] so that campaign drivers survive
   corrupted syscall arguments. *)
let run_result ?(max_insns = Int64.max_int) ?(watchdog = 0) t =
  let start = t.instret in
  (* The budget arrives as an int64 for API stability; clamp it into the
     native-int domain the retirement counter lives in. *)
  let budget =
    if Int64.compare max_insns (Int64.of_int max_int) >= 0 then max_int
    else Int64.to_int max_insns
  in
  let wd = if watchdog > 0 then watchdog else 0 in
  let hist_pc = Array.make watchdog_ring Int64.minus_one in
  let hist_digest = Array.make watchdog_ring 0L in
  let hist_len = ref 0 and hist_next = ref 0 in
  let outcome = ref None in
  (try
     while !outcome = None do
       if t.instret - start >= budget then
         outcome :=
           Some (Budget_exhausted (snapshot ~cause:"instruction budget exhausted" t))
       else begin
         (match t.engine with
         | Plain -> step t
         | Superblock ->
             (* Clip the block so it can never run past the instruction
                budget or through a watchdog sampling point: with the clip
                in place the loop observes the same (instret, pc, digest)
                sequence at every check under both engines. *)
             let progress = t.instret - start in
             let fuel = budget - progress in
             let fuel = if wd > 0 then min fuel (wd - (progress mod wd)) else fuel in
             sb_step t ~fuel);
         if wd > 0 && (t.instret - start) mod wd = 0 then begin
           let d = state_digest t in
           let repeat = ref false in
           for i = 0 to !hist_len - 1 do
             if Int64.equal hist_pc.(i) t.pc && Int64.equal hist_digest.(i) d then
               repeat := true
           done;
           if !repeat then
             outcome :=
               Some
                 (Watchdog_hang
                    (snapshot ~cause:"watchdog: architectural state repeated" t))
           else begin
             hist_pc.(!hist_next) <- t.pc;
             hist_digest.(!hist_next) <- d;
             hist_next := (!hist_next + 1) mod watchdog_ring;
             if !hist_len < watchdog_ring then incr hist_len
           end
         end
       end
     done
   with
  | Halted code -> outcome := Some (Exited code)
  | Unhandled ctx ->
      outcome := Some (Trap_unhandled (ctx, snapshot ~cause:"unhandled trap" t))
  | e ->
      (* A native kernel callback tripped over corrupted state (e.g. a
         syscall argument pointing outside physical memory).  Report it as
         an unhandled trap rather than unwinding the whole process. *)
      let ctx =
        {
          exc = (match t.cp0.Cp0.last_exc with Some exc -> exc | None -> Cp0.Trap);
          victim_pc = t.pc;
        }
      in
      outcome :=
        Some
          (Trap_unhandled
             (ctx, snapshot ~cause:("kernel model error: " ^ Printexc.to_string e) t)));
  match !outcome with Some r -> r | None -> assert false

(* The legacy integer-exit-code interface.  Abnormal outcomes map to
   conventional shell-style codes ([exit_code]) and print their snapshot on
   stderr — they indicate a machine-level problem no kernel handled. *)
let run ?max_insns ?watchdog t =
  match run_result ?max_insns ?watchdog t with
  | Exited code -> code
  | abnormal ->
      Fmt.epr "[machine] %a@." pp_run_result abnormal;
      exit_code abnormal

(* --- the observability counter file ------------------------------------- *)

(* Snapshot the machine's view of the lib/obs counter file: retirement
   and cycle counters from the core, cache/TLB/tag-controller events
   from the memory hierarchy, and instruction-class counters from the
   probe (zero when no probe is attached).  Building a fresh counter
   file per read keeps the hot path free of any per-step obs stores;
   spans diff two reads. *)
let read_counters t =
  let c = Obs.Counters.create () in
  Obs.Counters.set_int c Obs.Counters.instret t.instret;
  Obs.Counters.set_int c Obs.Counters.cycles t.cycles;
  Obs.Counters.set_int c Obs.Counters.retired_stores t.stores;
  Obs.Counters.set_int c Obs.Counters.kernel_entries t.kernel_entries;
  Obs.Counters.set_int c Obs.Counters.sb_translations t.sb_translations;
  Obs.Counters.set_int c Obs.Counters.sb_dispatches t.sb_dispatches;
  Obs.Counters.set_int c Obs.Counters.sb_retired t.sb_retired;
  Mem.Hierarchy.fill_counters t.hier c;
  (match t.probe with Some p -> Obs.Probe.fill p c | None -> ());
  c

(* --- architectural checkpoint / restore --------------------------------- *)

(* A post-boot architectural checkpoint: the warm-server fast-reset
   primitive (docs/PERFORMANCE.md).  [checkpoint] captures every piece of
   architectural state — register files, CP0, physical memory (arming
   dirty-page tracking so [restore] only touches pages written since),
   tag table, TLB, cache-hierarchy model state, and the architectural
   counters.  [restore] puts all of it back bit-exactly while
   deliberately keeping the *host-side* decode cache and superblock
   translations warm: hits charge identical architectural costs, so
   replay from a restored checkpoint is observationally equal to replay
   from the moment the checkpoint was taken.

   Staleness across the rewind is impossible: [code_pages] flags every
   page the decode cache was filled from, and the physical memory's
   dirty map records every page written since the checkpoint.  If the
   two intersect, some warm entry may describe bytes the restore
   rewinds — whichever order the store and the decode happened in — and
   the warm tiers are invalidated.  Host hooks (kernel callback,
   trace/step/store hooks, probe) and the engine selection are
   deliberately not part of the checkpoint; they are configuration, not
   architectural state. *)
type checkpoint = {
  ck_regs : Regs.t;
  ck_caps : Cap.Capability.t array;
  ck_pcc : Cap.Capability.t;
  ck_pc : int64;
  ck_mode : Cp0.mode;
  ck_exl : bool;
  ck_epc : int64;
  ck_badvaddr : int64;
  ck_last_exc : Cp0.exc option;
  ck_count : int64;
  ck_capcause : Cap.Cause.t;
  ck_capcause_reg : int;
  ck_phys : Mem.Phys.snapshot;
  ck_tags : Mem.Tags.snapshot;
  ck_hier : Mem.Hierarchy.snapshot;
  ck_cycles : int;
  ck_instret : int;
  ck_ll_bit : bool;
  ck_ll_addr : int64;
  ck_stores : int;
  ck_kernel_entries : int;
}

let checkpoint t =
  {
    ck_regs = Regs.copy t.regs;
    ck_caps = Array.copy t.caps;
    ck_pcc = t.pcc;
    ck_pc = t.pc;
    ck_mode = t.cp0.Cp0.mode;
    ck_exl = t.cp0.Cp0.exl;
    ck_epc = t.cp0.Cp0.epc;
    ck_badvaddr = t.cp0.Cp0.badvaddr;
    ck_last_exc = t.cp0.Cp0.last_exc;
    ck_count = t.cp0.Cp0.count;
    ck_capcause = t.cp0.Cp0.capcause;
    ck_capcause_reg = t.cp0.Cp0.capcause_reg;
    ck_phys = Mem.Phys.snapshot t.phys;
    ck_tags = Mem.Tags.snapshot t.tags;
    ck_hier = Mem.Hierarchy.snapshot t.hier;
    ck_cycles = t.cycles;
    ck_instret = t.instret;
    ck_ll_bit = t.ll_bit;
    ck_ll_addr = t.ll_addr;
    ck_stores = t.stores;
    ck_kernel_entries = t.kernel_entries;
  }

(* Restore the machine to [c]; returns the number of physical pages
   rewound.  O(dirty pages), not O(memory). *)
let restore t (c : checkpoint) =
  (* Decide SMC coherence before the dirty map is cleared. *)
  let dirty = Mem.Phys.dirty_pages t.phys in
  let smc =
    List.exists
      (fun p -> p < Bytes.length t.code_pages && Bytes.unsafe_get t.code_pages p <> '\000')
      dirty
  in
  List.iter
    (fun p -> Mem.Tags.restore_page t.tags c.ck_tags ~page_bytes:Mem.Phys.page_bytes p)
    dirty;
  let pages = Mem.Phys.restore t.phys c.ck_phys in
  Mem.Hierarchy.restore t.hier c.ck_hier;
  Regs.load t.regs c.ck_regs;
  Array.blit c.ck_caps 0 t.caps 0 32;
  t.pcc <- c.ck_pcc;
  t.pc <- c.ck_pc;
  t.cp0.Cp0.mode <- c.ck_mode;
  t.cp0.Cp0.exl <- c.ck_exl;
  t.cp0.Cp0.epc <- c.ck_epc;
  t.cp0.Cp0.badvaddr <- c.ck_badvaddr;
  t.cp0.Cp0.last_exc <- c.ck_last_exc;
  t.cp0.Cp0.count <- c.ck_count;
  t.cp0.Cp0.capcause <- c.ck_capcause;
  t.cp0.Cp0.capcause_reg <- c.ck_capcause_reg;
  t.cycles <- c.ck_cycles;
  t.instret <- c.ck_instret;
  t.ll_bit <- c.ck_ll_bit;
  t.ll_addr <- c.ck_ll_addr;
  t.stores <- c.ck_stores;
  t.kernel_entries <- c.ck_kernel_entries;
  if smc then invalidate_icache t;
  pages
