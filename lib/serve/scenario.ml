(* The multi-compartment request-serving scenario: memory layout, worker
   programs, and the generated router.

   One simulated machine hosts:

     - a *router* program (handwritten assembly, generated here with the
       layout constants baked in) whose boot section plays the trusted
       loader — it derives each worker's code/data capabilities from the
       delegated address space, restricts their permissions, seals both
       with the worker's object type (CSeal, Section 11), and stores the
       sealed pairs in a table — and whose [serve] section validates one
       request from the mailbox, derives a payload capability bounded to
       the bytes actually received, and enters the routed worker;

     - N *worker* units (parser / allocator / checksum mini-C programs
       compiled by the minic driver in cheri mode), each with a private
       code and data region.

   Two isolation modes build from the same sources and the same region
   layout, so their cycle counts differ only by the protection mechanism:

     - [Compart]: each worker entered through a sealed-cap CCall; its C0
       is its private data region, its PCC its private text; a malformed
       request's capability violation traps *inside the compartment* and
       the kernel unwinds the trusted stack.
     - [Mono]: the monolithic baseline — same workers at the same
       addresses, entered by a direct jalr with the router's full-space
       C0/PCC; only the payload capability still bounds the request. *)

(* --- memory layout (16 MiB machine) ------------------------------------- *)

let mem_size = 0x100_0000

(* Router text/data sit at the assembler defaults (0x1_0000 / 0x10_0000). *)
let mailbox = 0x18_0000L
let payload_addr = Int64.add mailbox 32L

(* Mailbox header: kind(+0), declared_len(+8), actual_len(+16), route(+24),
   payload words from +32. *)
let max_workers = 8
let n_kinds = 8
let code_base i = 0x30_0000 + (i * 0x2_0000)
let code_len = 0x2_0000
let data_base i = 0x40_0000 + (i * 0x8_0000)
let data_len = 0x8_0000
let heap_off = 0x1_0000 (* per-request bump-allocator arena ... *)
let heap_end_off = 0x7_0000 (* ... up to here; stack above it *)
let stack_off = data_len - 64 (* 32-aligned: frames hold capability spills *)
let otype i = 0x40 + i

type isolation = Mono | Compart

let isolation_name = function Mono -> "mono" | Compart -> "compart"

(* --- worker programs (mini-C) ------------------------------------------- *)

(* Every worker exports [handle(req, kind, len)]: in cheri mode the
   payload pointer arrives as a capability in $c3 and the two ints in
   $a0/$a1.  [len] is the *declared* length from the request header — the
   worker trusts it, and the router-bounded capability is what catches a
   lying header.  Returns a small non-negative response code.  [main] is
   required by the minic driver but never runs under the veneer. *)

let parser_src =
  {|
int handle(int *req, int kind, int len) {
  int i = 0;
  int tokens = 0;
  int acc = 0;
  while (i < len) {
    int v = req[i];
    if (v % 7 == kind % 7) tokens = tokens + 1;
    acc = acc + v;
    i = i + 1;
  }
  return (tokens * 256 + acc % 251) % 65536;
}

int main(void) { return 0; }
|}

let alloc_src =
  {|
struct node {
  struct node *next;
  int value;
};

int handle(int *req, int kind, int len) {
  struct node *head = NULL;
  int i = 0;
  while (i < len) {
    struct node *n = (struct node*) malloc(sizeof(struct node));
    n->value = req[i];
    n->next = head;
    head = n;
    i = i + 1;
  }
  int sum = 0;
  while (head != NULL) {
    sum = sum + head->value;
    head = head->next;
  }
  return (sum + kind) % 65536;
}

int main(void) { return 0; }
|}

let checksum_src =
  {|
int handle(int *req, int kind, int len) {
  int h = 40503 + kind;
  int i = 0;
  while (i < len) {
    h = h ^ req[i];
    h = h * 16777619;
    h = h ^ (h >> 13);
    h = h & 1073741823;
    i = i + 1;
  }
  return h % 65536;
}

int main(void) { return 0; }
|}

let worker_kinds = [| ("parser", parser_src); ("alloc", alloc_src); ("checksum", checksum_src) |]
let worker_name w = fst worker_kinds.(w mod Array.length worker_kinds)
let worker_src w = snd worker_kinds.(w mod Array.length worker_kinds)

(* The display name of worker [w] — program kind plus slot, e.g.
   "alloc#1" — shared by the attribution region labels, the per-
   compartment latency histograms, and the trace's track names. *)
let worker_label w = Printf.sprintf "%s#%d" (worker_name w) w

(* otype -> compartment name, for the trace collector's track labels. *)
let otype_labels ~n = List.init n (fun w -> (otype w, worker_label w))

(* Address-range labels for the attribution layer (Obs.Attrib): the
   router's own text and data, the mailbox, and every worker
   compartment's code and data regions.  With these installed, the
   per-region miss table reads as compartment names instead of bare hex
   bases — cache misses become attributable to the compartment that
   caused them. *)
let region_labels ~n =
  let worker w =
    let name = worker_label w in
    [
      (Int64.of_int (code_base w), Int64.of_int code_len, name);
      (Int64.of_int (data_base w), Int64.of_int data_len, name ^ "/data");
    ]
  in
  [
    (0x1_0000L, 0x1_0000L, "router");
    (0x10_0000L, 0x1_0000L, "router/data");
    (mailbox, 0x1_0000L, "mailbox");
  ]
  @ List.concat (List.init n worker)

(* --- worker unit builds -------------------------------------------------- *)

(* A worker unit ready to install: the assembled image, where to place its
   segments, and the heap-arena seeds the host writes before each request
   (so the bump allocator never reaches the sbrk path — each request gets
   a fresh deterministic arena). *)
type unit_img = {
  name : string;
  segments : (int64 * string) list; (* final physical placement *)
  heap_cur_addr : int64;
  heap_end_addr : int64;
  heap_cur_val : int64;
  heap_end_val : int64;
}

let find_symbol program name =
  match Asm.Assembler.symbol program name with
  | Some a -> a
  | None -> invalid_arg ("Scenario: unit lacks symbol " ^ name)

(* The veneer is the first code in the unit, so it sits at the unit's
   text base — exactly where a CCall lands (PC := base of the unsealed
   code capability).  The compartment veneer rebases SP to the top of the
   private data region (legacy loads/stores are C0-relative); the mono
   veneer is a plain call thunk preserving $ra in $s4, which the minic
   register allocator never touches. *)
let compart_veneer =
  Printf.sprintf "  .text\nserve_entry:\n  dli $sp, %d\n  jal handle\n  creturn\n" stack_off

let mono_veneer = "  .text\nserve_entry:\n  move $s4, $ra\n  jal handle\n  move $ra, $s4\n  jr $ra\n"

let build_unit ~isolation w =
  let asm = Minic.Driver.compile ~mode:Minic.Layout.Cheri (worker_src w) in
  let cbase = Int64.of_int (code_base w) and dbase = Int64.of_int (data_base w) in
  match isolation with
  | Compart ->
      (* Data assembled at offset 0: the compartment addresses its region
         C0-relative, so symbols are region offsets and the host relocates
         the data segment to the region base at install time. *)
      let program =
        Asm.Assembler.assemble ~text_base:cbase ~data_base:0L (compart_veneer ^ asm)
      in
      let relocate (addr, bytes) =
        if Int64.unsigned_compare addr cbase >= 0 then (addr, bytes)
        else (Int64.add dbase addr, bytes)
      in
      {
        name = worker_name w;
        segments = List.map relocate program.Asm.Assembler.segments;
        heap_cur_addr = Int64.add dbase (find_symbol program "__heap_cur");
        heap_end_addr = Int64.add dbase (find_symbol program "__heap_end");
        heap_cur_val = Int64.of_int heap_off;
        heap_end_val = Int64.of_int heap_end_off;
      }
  | Mono ->
      (* Same region, absolute addressing: C0 is the router's full space,
         so symbols and heap values are physical addresses. *)
      let program =
        Asm.Assembler.assemble ~text_base:cbase ~data_base:dbase (mono_veneer ^ asm)
      in
      {
        name = worker_name w;
        segments = program.Asm.Assembler.segments;
        heap_cur_addr = find_symbol program "__heap_cur";
        heap_end_addr = find_symbol program "__heap_end";
        heap_cur_val = Int64.add dbase (Int64.of_int heap_off);
        heap_end_val = Int64.add dbase (Int64.of_int heap_end_off);
      }

(* --- the router ---------------------------------------------------------- *)

(* Permission masks for the sealed pair (Cap.Perms bit values): the code
   capability executes and loads, the data capability moves data and
   capabilities (minic spills caps C0-relative) — neither can do both. *)
let code_perm_mask = 0b0000111 (* global|execute|load *)
let data_perm_mask = 0b0111101 (* global|load|store|load_cap|store_cap *)

let router_source ~isolation ~n =
  if n < 1 || n > max_workers then invalid_arg "Scenario.router_source: n";
  if n land (n - 1) <> 0 then invalid_arg "Scenario.router_source: n not a power of 2";
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "  .text";
  line "_start:";
  (match isolation with
  | Mono -> ()
  | Compart ->
      (* Trusted loader: mint and stash each worker's sealed pair. *)
      for i = 0 to n - 1 do
        line "  # worker %d: derive, restrict, seal, stash" i;
        line "  dli $t0, %d" (code_base i);
        line "  cincbase $c4, $c0, $t0";
        line "  dli $t1, %d" code_len;
        line "  csetlen $c4, $c4, $t1";
        line "  li $t2, %d" code_perm_mask;
        line "  candperm $c4, $c4, $t2";
        line "  dli $t0, %d" (data_base i);
        line "  cincbase $c5, $c0, $t0";
        line "  dli $t1, %d" data_len;
        line "  csetlen $c5, $c5, $t1";
        line "  li $t2, %d" data_perm_mask;
        line "  candperm $c5, $c5, $t2";
        line "  li $t3, %d" (otype i);
        line "  cincbase $c6, $c0, $t3";
        line "  li $t8, 1";
        line "  csetlen $c6, $c6, $t8";
        line "  cseal $c4, $c4, $c6";
        line "  cseal $c5, $c5, $c6";
        line "  dli $t9, table+%d" (i * 64);
        line "  csc $c4, $t9, 0($c0)";
        line "  csc $c5, $t9, 32($c0)"
      done;
      (* Drop the loader's working capabilities: nothing unsealed about
         the workers survives in the register file. *)
      line "  ccleartag $c4";
      line "  ccleartag $c5";
      line "  ccleartag $c6");
  line "  li $a0, 0";
  line "  li $v0, 1";
  line "  syscall";
  line "";
  line "serve:";
  line "  dli $t0, %Ld" mailbox;
  line "  ld $t1, 0($t0)           # kind";
  line "  sltiu $t2, $t1, %d" n_kinds;
  line "  beqz $t2, serve_reject";
  line "  ld $t2, 16($t0)          # actual_len (words)";
  line "  ld $t3, 24($t0)          # route";
  line "  andi $t3, $t3, %d" (n - 1);
  line "  # payload capability, bounded to the words actually received";
  line "  dli $t8, %Ld" payload_addr;
  line "  cincbase $c3, $c0, $t8";
  line "  dsll $t9, $t2, 3";
  line "  csetlen $c3, $c3, $t9";
  line "  move $a0, $t1            # kind";
  line "  ld $a1, 8($t0)           # declared_len (the header's claim)";
  (match isolation with
  | Compart ->
      line "  # sealed pair for the routed worker";
      line "  dsll $t9, $t3, 6";
      line "  dli $t8, table";
      line "  daddu $t8, $t8, $t9";
      line "  clc $c1, $t8, 0($c0)";
      line "  clc $c2, $t8, 32($c0)";
      line "  ccall $c1, $c2"
  | Mono ->
      line "  # direct call into the routed worker's veneer";
      line "  dsll $t9, $t3, 17";
      line "  dli $t8, %d" (code_base 0);
      line "  daddu $t8, $t8, $t9";
      line "  jalr $t8");
  line "  move $a0, $v0";
  line "  li $v0, 1";
  line "  syscall";
  line "serve_reject:";
  line "  li $a0, -1";
  line "  li $v0, 1";
  line "  syscall";
  line "";
  line "  .data";
  line "table:";
  line "  .space %d" (max_workers * 64);
  Buffer.contents b

(* --- build memoization ---------------------------------------------------- *)

(* Router assembly and worker-unit compilation are pure functions of
   (isolation, n): memoize them process-wide so neither the warm pool nor
   the cold path re-assembles identical programs for every chunk.  The
   cached values are immutable after construction — an assembled program's
   symbol table is only ever read — so sharing one across Exp.Pool domains
   is safe; the mutex guards only the tables. *)
let memo_lock = Mutex.create ()
let router_memo : (isolation * int, Asm.Assembler.program) Hashtbl.t = Hashtbl.create 8
let units_memo : (isolation * int, unit_img array) Hashtbl.t = Hashtbl.create 8

let memoized tbl key build =
  Mutex.lock memo_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock memo_lock)
    (fun () ->
      match Hashtbl.find_opt tbl key with
      | Some v -> v
      | None ->
          let v = build () in
          Hashtbl.replace tbl key v;
          v)

(* The assembled router for (isolation, n), built once per process. *)
let router_program ~isolation ~n =
  memoized router_memo (isolation, n) (fun () ->
      Asm.Assembler.assemble (router_source ~isolation ~n))

(* The worker-unit images for (isolation, n), built once per process. *)
let units ~isolation ~n =
  memoized units_memo (isolation, n) (fun () -> Array.init n (build_unit ~isolation))
