(* The request-serving workload generator: a deterministic, seeded stream
   of synthetic requests for the multi-compartment server scenario
   (ROADMAP item 2, "heavy traffic from millions of users").

   Requests are generated per fixed-size chunk from a splitmix64 stream
   ([Fault.Prng]) keyed on (base_seed, chunk_index), so any chunk of the
   stream is computable independently of the others — the same discipline
   the fault and fuzz campaigns use to make domain-parallel sweeps
   byte-identical for any --jobs.  The stream does not depend on the
   server configuration (compartment count, isolation mode): the router
   masks the raw routing key, so every sweep point replays the *same*
   requests and per-request latencies pair up across configurations.

   The mix models production traffic shape:
     - sizes: mostly small (1-16 words), some medium (17-64), a tail of
       large requests (65..max_words);
     - burstiness: occasional bursts of 8-32 consecutive large requests
       pinned to one routing key (a hot client hammering one backend);
     - malformed fraction: 1 in [malformed_denom] requests is broken,
       half with an out-of-range kind (the router must reject it without
       a domain crossing), half with a lying declared_len > actual_len
       (the worker's bounded payload capability must trap). *)

module Prng = Fault.Prng

type request = {
  kind : int; (* operation selector; >= n_kinds marks it malformed *)
  declared_len : int; (* header-claimed payload length, words *)
  actual_len : int; (* payload words actually transmitted *)
  route : int; (* raw routing key; the router masks it to a worker *)
  payload_seed : int64; (* seeds the per-request payload word stream *)
}

type mix = {
  max_words : int; (* largest well-formed payload, words *)
  malformed_denom : int; (* 1 in this many requests malformed; 0 = none *)
  burst_denom : int; (* 1 in this many requests starts a burst; 0 = none *)
}

let default_mix = { max_words = 256; malformed_denom = 32; burst_denom = 16 }

(* How the server must handle a request — the generator-side oracle the
   smoke tallies pin. *)
type expected = Expect_served | Expect_reject_kind | Expect_reject_trap

let expected req =
  if req.kind >= 8 then Expect_reject_kind
  else if req.declared_len > req.actual_len then Expect_reject_trap
  else Expect_served

(* Size class of a request's transmitted payload, matching the
   generator's mix bands: small (1-16 words), medium (17-64), large
   (65+).  Keyed on actual_len so malformed requests classify by what
   was really sent, not by the lying header. *)
let size_classes = 3
let size_class req = if req.actual_len <= 16 then 0 else if req.actual_len <= 64 then 1 else 2
let size_class_name = function 0 -> "small" | 1 -> "medium" | _ -> "large"

(* Payload word [i] of a request: non-negative 20-bit values, so worker
   arithmetic (sums, token counts) stays positive and small. *)
let payload_word seed i =
  let p = Prng.create (Int64.add seed (Int64.of_int i)) in
  Int64.logand (Prng.next p) 0xF_FFFFL

(* Distinct odd multiplier per chunk index keeps neighbouring chunks'
   streams uncorrelated (same trick as the fuzz campaign's program
   seeds). *)
let chunk_seed base_seed index =
  Int64.add base_seed (Int64.mul 0x5851_F42D_4C95_7F2DL (Int64.of_int (index + 1)))

let gen_chunk ~mix ~base_seed ~index ~count =
  if mix.max_words < 2 then invalid_arg "Workload.gen_chunk: max_words < 2";
  let rng = Prng.create (chunk_seed base_seed index) in
  let burst = ref 0 and burst_route = ref 0 in
  Array.init count (fun _ ->
      if !burst = 0 && mix.burst_denom > 0 && Prng.int rng mix.burst_denom = 0 then begin
        burst := 8 + Prng.int rng 25;
        burst_route := Prng.int rng 1024
      end;
      let in_burst = !burst > 0 in
      if in_burst then decr burst;
      let route = if in_burst then !burst_route else Prng.int rng 1024 in
      let large_floor = min 65 (mix.max_words - 1) in
      let actual_len =
        if in_burst then large_floor + Prng.int rng (mix.max_words - large_floor)
        else
          let roll = Prng.int rng 100 in
          if roll < 70 then 1 + Prng.int rng 16
          else if roll < 95 then 17 + Prng.int rng 48
          else large_floor + Prng.int rng (mix.max_words - large_floor)
      in
      let kind = Prng.int rng 8 in
      let kind, declared_len =
        if mix.malformed_denom > 0 && Prng.int rng mix.malformed_denom = 0 then
          if Prng.bool rng then (8 + Prng.int rng 8, actual_len) (* bad kind *)
          else (kind, actual_len + 1 + Prng.int rng 64) (* lying header *)
        else (kind, actual_len)
      in
      { kind; declared_len; actual_len; route; payload_seed = Prng.next rng })
