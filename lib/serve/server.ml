(* One request-serving machine instance: boot the router and its worker
   units on a fresh simulated machine, then replay requests one at a time
   through the mailbox.

   The host plays the network front-end: it writes each request's header
   and payload into the mailbox region (DMA-like physical writes — no
   cycles charged, no architectural state touched), points the machine at
   the router's [serve] entry, and runs until the router exits with the
   response code.  Malformed requests must be rejected without
   terminating the server loop: an out-of-range kind is bounced by the
   router itself, and a lying declared_len trips the worker's bounded
   payload capability — the kernel fault handler converts the trap into a
   rejection, and the host unwinds the trusted stack to recover the
   router's domain. *)

open Beri

type response =
  | Served of int (* response code from the worker *)
  | Rejected_kind (* router bounced it before any domain crossing *)
  | Rejected_trap of Cp0.exc * Cap.Cause.t (* capability trap inside the worker *)
  | Abnormal of string (* should never happen; the smoke tallies pin it at 0 *)

(* The response stream's small-integer encoding, shared by the sweep's
   cross-isolation digest and the trace's request-end marker. *)
let response_code = function
  | Served c -> c + 10
  | Rejected_kind -> 1
  | Rejected_trap _ -> 2
  | Abnormal _ -> 3

type t = {
  machine : Machine.t;
  kernel : Os.Kernel.t;
  isolation : Scenario.isolation;
  n_workers : int;
  mutable serve_pc : int64;
  stack_ptr : int64;
  units : Scenario.unit_img array;
  (* The observability scope of the *current chunk*: mutable because a
     pooled server gets a fresh scope from [reset] for every chunk it
     serves, exactly as a cold-booted server gets fresh ones from
     [create] — warm and cold chunks observe through identical, empty
     collectors. *)
  mutable span : Obs.Span.t; (* kernel "ccall" span: in-compartment time *)
  mutable crossing : Obs.Hist.t; (* per-crossing duration histogram (cycles) *)
  mutable trace : Obs.Trace.t option; (* cycle-timestamped request/kernel timeline *)
  mutable series : Obs.Series.t option; (* retirement-driven counter time-series *)
  mutable last_trap : (Cp0.exc * Cap.Cause.t) option;
  mutable checkpoint : (Machine.checkpoint * Os.Kernel.checkpoint * Obs.Series.t option) option;
      (* the post-boot architectural state [reset] rewinds to, plus a
         frozen copy of the boot-period counter series: a cold server's
         sampler runs from [create], so its chunk series opens with the
         boot samples — every warm chunk clones this prefix (and the
         sampler's delta base / next boundary) to match byte-for-byte *)
}

let request_budget = 2_000_000L
let boot_budget = 1_000_000L

let config = { Machine.default_config with Machine.mem_size = Scenario.mem_size }

(* Install a fresh per-chunk observability scope: a new crossing
   histogram and "ccall" span, the chunk's trace collector (or none),
   and the series step hook (or none).  Shared by [create] and [reset]
   so a warm chunk starts with exactly the collectors a cold one gets. *)
let install_obs ~trace ~series t =
  let crossing = Obs.Hist.create ~name:"domain crossing [cycles]" () in
  let span =
    Obs.Span.create ~durations:crossing ~read:(fun () -> Os.Kernel.read_counters t.kernel) ()
  in
  (* The kernel records CCall/CReturn/trap trace events itself (it owns
     the cycle of each transition), so the span does not get the trace —
     phase events belong to coarser phases, not kernel crossings. *)
  (match trace with
  | Some tr ->
      Obs.Trace.set_labels tr (Scenario.otype_labels ~n:t.n_workers);
      (* Only sampled requests record: stay disarmed through boot and
         until the first [begin_request]. *)
      Obs.Trace.skip_request tr
  | None -> ());
  Os.Kernel.set_obs ~span ?trace t.kernel;
  (match series with
  | Some s ->
      Machine.set_step_hook t.machine
        (Some (fun m -> Obs.Series.tick s ~instret:m.Machine.instret))
  | None -> Machine.set_step_hook t.machine None);
  t.span <- span;
  t.crossing <- crossing;
  t.trace <- trace;
  t.series <- series

let create ?(engine = Machine.Superblock) ?attrib ?trace ?series_interval ~isolation ~n () =
  if n < 1 || n > Scenario.max_workers then invalid_arg "Server.create: n";
  if n land (n - 1) <> 0 then
    (* serve_one routes with [route land (n_workers - 1)], which silently
       misroutes for a non-power-of-two worker count. *)
    invalid_arg "Server.create: n must be a power of two";
  let machine = Machine.create ~config () in
  Machine.set_engine machine engine;
  (* An attribution table labels the scenario's regions so misses come
     back per compartment; sweeps never pass one (the probe perturbs
     nothing architectural, but there is no reason to pay for it). *)
  (match attrib with
  | Some a ->
      Obs.Attrib.set_labels a (Scenario.region_labels ~n);
      Machine.set_probe machine (Some (Obs.Probe.create ~attrib:a ()))
  | None -> ());
  let kernel = Os.Kernel.attach machine in
  let t =
    {
      machine;
      kernel;
      isolation;
      n_workers = n;
      serve_pc = 0L;
      stack_ptr = Int64.sub kernel.Os.Kernel.stack_top 64L;
      units = Scenario.units ~isolation ~n;
      span = Obs.Span.create ~read:(fun () -> Os.Kernel.read_counters kernel) ();
      crossing = Obs.Hist.create ~name:"domain crossing [cycles]" ();
      trace = None;
      series = None;
      last_trap = None;
      checkpoint = None;
    }
  in
  let series =
    Option.map
      (fun interval ->
        Obs.Series.create ~interval ~read:(fun () -> Os.Kernel.read_counters kernel) ())
      series_interval
  in
  install_obs ~trace ~series t;
  Os.Kernel.set_fault_handler kernel (fun _k fault ->
      t.last_trap <- Some (fault.Os.Kernel.exc, fault.Os.Kernel.capcause);
      Machine.Halt (-2));
  t

(* Write a unit's heap-arena seeds: a fresh deterministic bump-allocator
   arena per request, so [malloc] never reaches the sbrk path. *)
let seed_heap t (u : Scenario.unit_img) =
  Mem.Phys.write_u64 t.machine.Machine.phys u.Scenario.heap_cur_addr u.Scenario.heap_cur_val;
  Mem.Phys.write_u64 t.machine.Machine.phys u.Scenario.heap_end_addr u.Scenario.heap_end_val

(* Boot: load the router via the kernel (full-space delegation), install
   the worker units, and run the router's [_start] — in compartment mode
   the trusted loader that seals the worker capability pairs. *)
let boot t =
  let m = t.machine in
  let router = Scenario.router_program ~isolation:t.isolation ~n:t.n_workers in
  Os.Kernel.exec t.kernel router;
  Machine.map_identity m ~vaddr:Scenario.mailbox ~len:0x1_0000 Mem.Tlb.prot_rwx;
  Array.iteri
    (fun i u ->
      Machine.map_identity m
        ~vaddr:(Int64.of_int (Scenario.code_base i))
        ~len:Scenario.code_len Mem.Tlb.prot_rwx;
      Machine.map_identity m
        ~vaddr:(Int64.of_int (Scenario.data_base i))
        ~len:Scenario.data_len Mem.Tlb.prot_rwx;
      List.iter
        (fun (addr, bytes) -> Mem.Phys.write_bytes m.Machine.phys addr (Bytes.of_string bytes))
        u.Scenario.segments;
      seed_heap t u)
    t.units;
  Machine.invalidate_icache m;
  (match Machine.run_result ~max_insns:boot_budget m with
  | Machine.Exited 0 -> ()
  | r -> Fmt.failwith "Server.boot: router boot failed: %a" Machine.pp_run_result r);
  (match Asm.Assembler.symbol router "serve" with
  | Some pc -> t.serve_pc <- pc
  | None -> invalid_arg "Server.boot: router lacks a serve symbol");
  (* Arm the fast-reset point: everything architectural as of this
     instant, plus the boot-period sample prefix each warm chunk's
     series must open with.  [reset] rewinds to here in O(dirty pages). *)
  t.checkpoint <-
    Some (Machine.checkpoint m, Os.Kernel.checkpoint t.kernel, Option.map Obs.Series.copy t.series)

(* Rewind a booted server to its post-boot state and hand it a fresh
   observability scope: the warm-pool replacement for [create] + [boot].
   Architectural state (registers, memory, tags, TLB, cache models,
   counters) returns bit-exactly to the checkpoint, so a chunk served
   after [reset] produces byte-identical responses, latencies, counters,
   and trace events to one served from a cold boot; the host-side decode
   cache and superblock translations deliberately stay warm (they charge
   identical architectural costs on hits, and [Machine.restore]
   invalidates them if any rewound page intersects decoded code). *)
let reset ?trace ?series_interval t =
  match t.checkpoint with
  | None -> invalid_arg "Server.reset: server was never booted"
  | Some (mck, kck, boot_series) ->
      ignore (Machine.restore t.machine mck : int);
      Os.Kernel.restore t.kernel kck;
      t.last_trap <- None;
      (* A cold chunk's series starts sampling at [create], so its
         timeline opens with the boot-period samples; a warm chunk gets
         the same prefix — and the same sampler state — by cloning the
         checkpointed boot series.  That only exists if the server was
         created with a sampler at the same interval, so a pool must
         boot its servers with the interval its chunks will use. *)
      let series =
        match series_interval with
        | None -> None
        | Some interval -> (
            match boot_series with
            | Some bs when Obs.Series.interval bs = interval -> Some (Obs.Series.copy bs)
            | Some _ -> invalid_arg "Server.reset: series interval differs from boot"
            | None -> invalid_arg "Server.reset: server was booted without a series")
      in
      install_obs ~trace ~series t

(* --- the request path ----------------------------------------------------- *)

let write_request t (req : Workload.request) =
  let phys = t.machine.Machine.phys in
  Mem.Phys.write_u64 phys Scenario.mailbox (Int64.of_int req.Workload.kind);
  Mem.Phys.write_u64 phys (Int64.add Scenario.mailbox 8L) (Int64.of_int req.Workload.declared_len);
  Mem.Phys.write_u64 phys (Int64.add Scenario.mailbox 16L) (Int64.of_int req.Workload.actual_len);
  Mem.Phys.write_u64 phys (Int64.add Scenario.mailbox 24L) (Int64.of_int req.Workload.route);
  for i = 0 to req.Workload.actual_len - 1 do
    Mem.Phys.write_u64 phys
      (Int64.add Scenario.payload_addr (Int64.of_int (i * 8)))
      (Workload.payload_word req.Workload.payload_seed i)
  done

(* Serve one request; returns the response and its latency in simulated
   cycles.  The server loop survives every malformed request: traps
   unwind the trusted stack and restore the router's domain. *)
let serve_one ?trace_id t (req : Workload.request) =
  let m = t.machine in
  write_request t req;
  let w = req.Workload.route land (t.n_workers - 1) in
  seed_heap t t.units.(w);
  m.Machine.pc <- t.serve_pc;
  Machine.set_gpr m Regs.sp t.stack_ptr;
  m.Machine.cp0.Cp0.exl <- false;
  t.last_trap <- None;
  let c0 = m.Machine.cycles in
  (match t.trace with
  | Some tr -> (
      match trace_id with
      | Some id ->
          Obs.Trace.begin_request tr ~ts:c0 ~id ~kind:req.Workload.kind
            ~declared:req.Workload.declared_len ~actual:req.Workload.actual_len
            ~route:req.Workload.route ~worker:w
      | None -> Obs.Trace.skip_request tr)
  | None -> ());
  let result = Machine.run_result ~max_insns:request_budget m in
  if Os.Kernel.trusted_stack_depth t.kernel > 0 then Os.Kernel.unwind_trusted_stack t.kernel;
  let latency = m.Machine.cycles - c0 in
  let response =
    match result with
    | Machine.Exited code when code >= 0 -> Served code
    | Machine.Exited (-1) -> Rejected_kind
    | Machine.Exited (-2) -> (
        match t.last_trap with
        | Some (exc, cause) -> Rejected_trap (exc, cause)
        | None -> Abnormal "halt -2 without a recorded fault")
    | Machine.Exited code -> Abnormal (Printf.sprintf "unexpected exit %d" code)
    | r -> Abnormal (Fmt.str "%a" Machine.pp_run_result r)
  in
  (match (t.trace, trace_id) with
  | Some tr, Some _ ->
      Obs.Trace.end_request tr ~ts:(c0 + latency) ~code:(response_code response)
  | _ -> ());
  (response, latency)

let counters t = Os.Kernel.read_counters t.kernel
let kernel t = t.kernel
