(* The compartment-count sweep: replay the same request stream through
   the monolithic and compartmentalized servers for each N and measure
   what the sealed-cap domain crossings cost.

   Determinism contract (same as the fault/fuzz campaigns): work is cut
   into fixed-size chunks at absolute indices, each chunk runs on a fresh
   machine seeded only by (base_seed, chunk_index), and [Exp.Pool.map]
   returns chunk results in input order — so the merged result is
   byte-identical for any --jobs and for either interpreter engine (the
   engines are proven bit-exact; only wall clocks differ, and --no-wall
   zeroes those).

   The crossing-cost numbers are honest paired differences: point
   (compart, N) and point (mono, N) replay the *identical* request
   sequence, so cost[i] = latency_compart[i] - latency_mono[i] isolates
   the protection mechanism — trap entry, trusted-stack push/pop, the
   sealed-pair loads, and the cache perturbation of the domain switch —
   from the workload itself.  As a cross-isolation oracle, the response
   digests of the two modes must be identical: same workers, same
   payloads, same bounds, so every request must produce the same response
   code whether or not a compartment boundary was in the way. *)

module Prng = Fault.Prng

(* Tracing attachment: stride-sample 1-in-[stride] requests into a
   bounded ring of [capacity] events, and (optionally) sample the
   counter file every [series] retirements.  The stride phase is
   derived from the workload seed, so which requests are sampled is a
   property of the stream, not of the chunking — byte-identical for any
   --jobs. *)
type trace_cfg = {
  stride : int; (* sample 1-in-this-many requests; <= 1 = all *)
  capacity : int; (* trace ring capacity, events *)
  series : int option; (* counter-sample interval, retirements *)
}

let default_trace = { stride = 64; capacity = 1 lsl 16; series = None }

type cfg = {
  requests : int;
  base_seed : int64;
  mix : Workload.mix;
  ns : int list; (* compartment counts to sweep (powers of two) *)
  engine : Machine.engine;
  jobs : int;
  no_wall : bool; (* zero wall clocks: fully deterministic output *)
  trace : trace_cfg option; (* None: no collector, zero overhead *)
  cold : bool;
      (* true: boot a fresh server for every chunk (the pre-pooling
         behaviour, kept as an escape hatch and as the bit-exactness
         reference); false: serve each chunk from a per-domain warm
         server rewound by [Server.reset] *)
}

let default_cfg =
  {
    requests = 100_000;
    base_seed = 0xC0FFEEL;
    mix = Workload.default_mix;
    ns = [ 1; 2; 4; 8 ];
    engine = Machine.Superblock;
    jobs = 1;
    no_wall = false;
    trace = None;
    cold = false;
  }

let chunk_size = 4096

type point = { isolation : Scenario.isolation; n : int }

let point_name p = Printf.sprintf "%s/N=%d" (Scenario.isolation_name p.isolation) p.n

type point_result = {
  point : point;
  requests : int;
  served : int;
  rejected_kind : int;
  rejected_trap : int;
  abnormal : int;
  digest : int64; (* response-stream digest: the cross-isolation oracle *)
  latencies : int array; (* per-request simulated cycles, stream order *)
  counters : Obs.Counters.t; (* architectural counters over all requests *)
  ccall_span : Obs.Counters.t; (* in-compartment aggregate (kernel span) *)
  crossing : Obs.Hist.t; (* per-crossing duration histogram *)
  class_hists : Obs.Hist.t array; (* latency per size-class x accepted/rejected *)
  comp_hists : Obs.Hist.t array; (* latency per worker compartment *)
  trace : Obs.Trace.t option; (* merged sweep-wide event timeline *)
  series : Obs.Series.t option; (* merged counter time-series *)
  wall_s : float;
}

(* Crossing cost for one N: percentiles of the paired per-request latency
   difference (compart - mono) over the identical stream. *)
type crossing_cost = { cost_n : int; p50 : int; p90 : int; p99 : int; mean : float }

type result = {
  cfg : cfg;
  points : point_result list;
  costs : crossing_cost list;
  digests_match : bool;
  wall_s : float;
      (* host wall clock of the whole sweep (fan-out included) — the
         honest denominator for host-side serving throughput; 0 under
         --no-wall so deterministic exports stay byte-identical *)
}

(* --- chunk execution ------------------------------------------------------ *)

let mix64 x =
  let p = Prng.create x in
  Prng.next p

let fold_digest d code = mix64 (Int64.logxor d (Int64.of_int (code + 0x1000)))
let response_code = Server.response_code

(* Which request ids a trace samples: abs_id mod stride = offset, with
   the offset drawn from the workload seed so the sampled set is pinned
   to the stream (chunking- and jobs-independent) but not always id 0. *)
let trace_offset (cfg : cfg) =
  match cfg.trace with
  | Some tc when tc.stride > 1 ->
      Int64.to_int
        (Int64.rem
           (Int64.logand (mix64 cfg.base_seed) 0x3FFF_FFFF_FFFF_FFFFL)
           (Int64.of_int tc.stride))
  | _ -> 0

let traced_request (cfg : cfg) abs_id =
  match cfg.trace with
  | None -> false
  | Some tc -> tc.stride <= 1 || abs_id mod tc.stride = trace_offset cfg

(* Per-request latency classification: one histogram per (size class,
   accepted/rejected) cell and one per worker compartment. *)
let class_hist_count = Workload.size_classes * 2

let class_hist_name i =
  Printf.sprintf "lat/%s/%s"
    (Workload.size_class_name (i / 2))
    (if i mod 2 = 0 then "served" else "rejected")

let make_class_hists () =
  Array.init class_hist_count (fun i -> Obs.Hist.create ~name:(class_hist_name i) ())

let make_comp_hists n =
  Array.init n (fun w -> Obs.Hist.create ~name:("comp/" ^ Scenario.worker_label w) ())

type chunk_out = {
  ch_latencies : int array;
  ch_served : int;
  ch_rejected_kind : int;
  ch_rejected_trap : int;
  ch_abnormal : int;
  ch_digest : int64;
  ch_counters : Obs.Counters.t;
  ch_ccall : Obs.Counters.t;
  ch_crossing : Obs.Hist.t;
  ch_class : Obs.Hist.t array;
  ch_comp : Obs.Hist.t array;
  ch_trace : Obs.Trace.t option;
  ch_series : Obs.Series.t option;
  ch_end_cycles : int; (* chunk machine's final cycle count (merge offset) *)
  ch_end_instret : int;
  ch_wall : float;
}

(* The warm-server pool: one booted machine per (isolation, n, engine,
   series interval) that this domain has seen, rewound by [Server.reset]
   between chunks instead of rebuilt by [create] + [boot].  The series
   interval is part of the key because a chunk's counter series opens
   with boot-period samples — a server can only be rewound into a chunk
   whose sampler matches the one it booted under.  Chunk output is
   bit-identical either way (the restore is architecturally exact and
   every observer is chunk-scoped); only host-side boot work is saved.
   Domain-local (see [Exp.Pool.Cache]): at most [cap] live servers per
   pool domain, about 35 MB each at the scenario's 16 MiB memory. *)
let server_pool :
    (Scenario.isolation * int * Machine.engine * int option, Server.t) Exp.Pool.Cache.t =
  Exp.Pool.Cache.create ~cap:16 ()

let run_chunk (cfg : cfg) point ~index ~count =
  let t0 = Unix.gettimeofday () in
  let trace =
    match cfg.trace with
    | Some tc -> Some (Obs.Trace.create ~capacity:tc.capacity ())
    | None -> None
  in
  let series_interval =
    match cfg.trace with Some { series; _ } -> series | None -> None
  in
  let server =
    if cfg.cold then begin
      let s =
        Server.create ~engine:cfg.engine ?trace ?series_interval ~isolation:point.isolation
          ~n:point.n ()
      in
      Server.boot s;
      s
    end
    else begin
      let s =
        Exp.Pool.Cache.find_or_make server_pool
          (point.isolation, point.n, cfg.engine, series_interval)
          (fun () ->
            (* Boot without a trace: a cold server's collector is
               disarmed until its first request anyway, so booting
               traceless is observationally identical. *)
            let s =
              Server.create ~engine:cfg.engine ?series_interval ~isolation:point.isolation
                ~n:point.n ()
            in
            Server.boot s;
            s)
      in
      Server.reset ?trace ?series_interval s;
      s
    end
  in
  let reqs = Workload.gen_chunk ~mix:cfg.mix ~base_seed:cfg.base_seed ~index ~count in
  let before = Server.counters server in
  let served = ref 0
  and rejected_kind = ref 0
  and rejected_trap = ref 0
  and abnormal = ref 0
  and digest = ref 0L in
  let class_h = make_class_hists () in
  let comp_h = make_comp_hists point.n in
  let latencies =
    Array.mapi
      (fun j req ->
        let abs_id = (index * chunk_size) + j in
        let trace_id = if traced_request cfg abs_id then Some abs_id else None in
        let response, latency = Server.serve_one ?trace_id server req in
        let is_served = match response with Server.Served _ -> true | _ -> false in
        (match response with
        | Server.Served _ -> incr served
        | Server.Rejected_kind -> incr rejected_kind
        | Server.Rejected_trap _ -> incr rejected_trap
        | Server.Abnormal _ -> incr abnormal);
        Obs.Hist.observe_int
          class_h.((Workload.size_class req * 2) + if is_served then 0 else 1)
          latency;
        (* Rejected-kind requests never reach a worker; everything else
           is attributable to the routed compartment. *)
        (match response with
        | Server.Rejected_kind -> ()
        | _ ->
            Obs.Hist.observe_int
              comp_h.(req.Workload.route land (point.n - 1))
              latency);
        digest := fold_digest !digest (response_code response);
        latency)
      reqs
  in
  let ch_counters = Obs.Counters.diff (Server.counters server) before in
  let ch_ccall =
    match Obs.Span.find server.Server.span "ccall" with
    | Some c -> Obs.Counters.copy c
    | None -> Obs.Counters.create ()
  in
  {
    ch_latencies = latencies;
    ch_served = !served;
    ch_rejected_kind = !rejected_kind;
    ch_rejected_trap = !rejected_trap;
    ch_abnormal = !abnormal;
    ch_digest = !digest;
    ch_counters;
    ch_ccall;
    ch_crossing = server.Server.crossing;
    ch_class = class_h;
    ch_comp = comp_h;
    ch_trace = trace;
    ch_series = server.Server.series;
    ch_end_cycles = server.Server.machine.Machine.cycles;
    ch_end_instret = server.Server.machine.Machine.instret;
    ch_wall = Unix.gettimeofday () -. t0;
  }

(* --- the sweep ------------------------------------------------------------ *)

let chunks_of (cfg : cfg) =
  let n = (cfg.requests + chunk_size - 1) / chunk_size in
  List.init n (fun i ->
      (i, if i = n - 1 then cfg.requests - (i * chunk_size) else chunk_size))

let merge_chunks (cfg : cfg) point outs =
  let crossing = Obs.Hist.create ~name:"domain crossing [cycles]" () in
  let counters = Obs.Counters.create () and ccall = Obs.Counters.create () in
  let class_hists = make_class_hists () in
  let comp_hists = make_comp_hists point.n in
  let served = ref 0
  and rejected_kind = ref 0
  and rejected_trap = ref 0
  and abnormal = ref 0
  and digest = ref 0L
  and wall = ref 0.0 in
  (* Each chunk's trace and series carry that chunk machine's own clock
     (starting at 0); shifting chunk i by the cumulative cycle/instret
     totals of chunks 0..i-1 reconstructs one monotonic sweep-wide
     timeline, identical for any --jobs. *)
  let trace =
    match cfg.trace with
    | Some _ ->
        let total =
          List.fold_left
            (fun acc ch ->
              acc + match ch.ch_trace with Some tr -> Obs.Trace.length tr | None -> 0)
            0 outs
        in
        let tr = Obs.Trace.create ~capacity:total () in
        Obs.Trace.set_labels tr (Scenario.otype_labels ~n:point.n);
        Some tr
    | None -> None
  in
  let series =
    match cfg.trace with
    | Some { series = Some interval; _ } -> Some (Obs.Series.create ~interval ())
    | _ -> None
  in
  let cyc_off = ref 0 and ins_off = ref 0 in
  List.iter
    (fun ch ->
      served := !served + ch.ch_served;
      rejected_kind := !rejected_kind + ch.ch_rejected_kind;
      rejected_trap := !rejected_trap + ch.ch_rejected_trap;
      abnormal := !abnormal + ch.ch_abnormal;
      digest := mix64 (Int64.logxor !digest ch.ch_digest);
      Obs.Counters.accumulate counters ch.ch_counters;
      Obs.Counters.accumulate ccall ch.ch_ccall;
      Obs.Hist.merge crossing ch.ch_crossing;
      Array.iteri (fun i h -> Obs.Hist.merge class_hists.(i) h) ch.ch_class;
      Array.iteri (fun i h -> Obs.Hist.merge comp_hists.(i) h) ch.ch_comp;
      (match (trace, ch.ch_trace) with
      | Some into, Some src -> Obs.Trace.append src ~ts_offset:!cyc_off ~into
      | _ -> ());
      (match (series, ch.ch_series) with
      | Some into, Some src ->
          Obs.Series.append src ~instret_offset:!ins_off ~cycles_offset:!cyc_off ~into
      | _ -> ());
      cyc_off := !cyc_off + ch.ch_end_cycles;
      ins_off := !ins_off + ch.ch_end_instret;
      wall := !wall +. ch.ch_wall)
    outs;
  (match series with Some s -> Obs.Series.sanitize s | None -> ());
  {
    point;
    requests = cfg.requests;
    served = !served;
    rejected_kind = !rejected_kind;
    rejected_trap = !rejected_trap;
    abnormal = !abnormal;
    digest = !digest;
    latencies = Array.concat (List.map (fun ch -> ch.ch_latencies) outs);
    counters;
    ccall_span = ccall;
    crossing;
    class_hists;
    comp_hists;
    trace;
    series;
    wall_s = (if cfg.no_wall then 0.0 else !wall);
  }

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0
  else
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let crossing_cost mono compart =
  let n = min (Array.length mono.latencies) (Array.length compart.latencies) in
  let deltas = Array.init n (fun i -> compart.latencies.(i) - mono.latencies.(i)) in
  let sum = Array.fold_left ( + ) 0 deltas in
  Array.sort compare deltas;
  {
    cost_n = compart.point.n;
    p50 = percentile deltas 0.50;
    p90 = percentile deltas 0.90;
    p99 = percentile deltas 0.99;
    mean = (if n = 0 then 0.0 else float_of_int sum /. float_of_int n);
  }

let run cfg =
  List.iter
    (fun n ->
      if n < 1 || n > Scenario.max_workers || n land (n - 1) <> 0 then
        invalid_arg "Sweep.run: ns must be powers of two in [1, 8]")
    cfg.ns;
  let t0 = Unix.gettimeofday () in
  let points =
    List.concat_map
      (fun n -> [ { isolation = Scenario.Mono; n }; { isolation = Scenario.Compart; n } ])
      cfg.ns
  in
  let chunks = chunks_of cfg in
  let units =
    List.concat_map (fun point -> List.map (fun (i, c) -> (point, i, c)) chunks) points
  in
  let outs =
    Exp.Pool.map ~jobs:cfg.jobs
      (fun (point, index, count) -> (point, run_chunk cfg point ~index ~count))
      units
  in
  let results =
    List.map
      (fun point ->
        let mine = List.filter_map (fun (p, o) -> if p = point then Some o else None) outs in
        merge_chunks cfg point mine)
      points
  in
  let find iso n =
    List.find (fun r -> r.point.isolation = iso && r.point.n = n) results
  in
  let costs =
    List.map (fun n -> crossing_cost (find Scenario.Mono n) (find Scenario.Compart n)) cfg.ns
  in
  let digests_match =
    List.for_all
      (fun n ->
        Int64.equal (find Scenario.Mono n).digest (find Scenario.Compart n).digest)
      cfg.ns
  in
  {
    cfg;
    points = results;
    costs;
    digests_match;
    wall_s = (if cfg.no_wall then 0.0 else Unix.gettimeofday () -. t0);
  }

(* --- reporting ------------------------------------------------------------ *)

let sorted_latencies pr =
  let a = Array.copy pr.latencies in
  Array.sort compare a;
  a

let requests_per_s (pr : point_result) =
  if pr.wall_s <= 0.0 then 0.0 else float_of_int pr.requests /. pr.wall_s

(* Host-side serving throughput over the whole sweep: every point
   replays the full request stream, so the numerator is requests x
   points; the denominator is the sweep's real wall clock, fan-out
   included (unlike a point's [wall_s], which sums per-chunk clocks
   across domains).  Zero under --no-wall. *)
let host_requests_per_s r =
  if r.wall_s <= 0.0 then 0.0
  else float_of_int (r.cfg.requests * List.length r.points) /. r.wall_s

let pp_result ppf r =
  Fmt.pf ppf "@[<v>";
  Fmt.pf ppf "%d requests, seed 0x%Lx, engine %s, %d jobs@,@," r.cfg.requests
    r.cfg.base_seed
    (Machine.engine_to_string r.cfg.engine)
    r.cfg.jobs;
  Fmt.pf ppf "%-14s %9s %8s %8s %6s %10s %9s %9s %10s %10s@," "point" "served"
    "rej-kind" "rej-trap" "abn" "req/s" "lat-p50" "lat-p99" "ccalls" "ctx-saves";
  List.iter
    (fun pr ->
      let s = sorted_latencies pr in
      Fmt.pf ppf "%-14s %9d %8d %8d %6d %10.0f %9d %9d %10Ld %10Ld@," (point_name pr.point)
        pr.served pr.rejected_kind pr.rejected_trap pr.abnormal (requests_per_s pr)
        (percentile s 0.50) (percentile s 0.99)
        (Obs.Counters.get pr.counters Obs.Counters.ccalls)
        (Obs.Counters.get pr.counters Obs.Counters.ctx_saves))
    r.points;
  Fmt.pf ppf "@,crossing cost (compart - mono, paired per-request cycles):@,";
  Fmt.pf ppf "%-6s %9s %9s %9s %10s@," "N" "p50" "p90" "p99" "mean";
  List.iter
    (fun c ->
      Fmt.pf ppf "%-6d %9d %9d %9d %10.1f@," c.cost_n c.p50 c.p90 c.p99 c.mean)
    r.costs;
  Fmt.pf ppf "@,response digests %s across isolation modes"
    (if r.digests_match then "match" else "MISMATCH");
  if r.wall_s > 0.0 then
    Fmt.pf ppf "@,host throughput: %.0f requests/s (%d requests x %d points in %.2f s, %s path)"
      (host_requests_per_s r) r.cfg.requests (List.length r.points) r.wall_s
      (if r.cfg.cold then "cold" else "warm");
  Fmt.pf ppf "@]"

(* --- JSON export (cheri-serve/1) ------------------------------------------ *)

(* The serve JSON must be byte-identical across interpreter engines, so
   zero the superblock host-side counters (the obs-schema export keeps
   them; the diff policy ignores them there). *)
let architectural_counters c =
  let c = Obs.Counters.copy c in
  Obs.Counters.set_int c Obs.Counters.samples 0;
  Obs.Counters.set_int c Obs.Counters.sb_translations 0;
  Obs.Counters.set_int c Obs.Counters.sb_dispatches 0;
  Obs.Counters.set_int c Obs.Counters.sb_retired 0;
  c

let point_to_json pr =
  let s = sorted_latencies pr in
  Obs.Json.Obj
    [
      ("isolation", Obs.Json.String (Scenario.isolation_name pr.point.isolation));
      ("n", Obs.Json.Int (Int64.of_int pr.point.n));
      ("requests", Obs.Json.Int (Int64.of_int pr.requests));
      ("served", Obs.Json.Int (Int64.of_int pr.served));
      ("rejected_kind", Obs.Json.Int (Int64.of_int pr.rejected_kind));
      ("rejected_trap", Obs.Json.Int (Int64.of_int pr.rejected_trap));
      ("abnormal", Obs.Json.Int (Int64.of_int pr.abnormal));
      ("digest", Obs.Json.String (Printf.sprintf "0x%Lx" pr.digest));
      ("wall_s", Obs.Json.Float pr.wall_s);
      ("requests_per_s", Obs.Json.Float (requests_per_s pr));
      ( "latency_cycles",
        Obs.Json.Obj
          [
            ("p50", Obs.Json.Int (Int64.of_int (percentile s 0.50)));
            ("p90", Obs.Json.Int (Int64.of_int (percentile s 0.90)));
            ("p99", Obs.Json.Int (Int64.of_int (percentile s 0.99)));
          ] );
      ("counters", Obs.Counters.to_json (architectural_counters pr.counters));
      ( "ccall_span",
        Obs.Json.Obj
          [
            ("instret", Obs.Json.Int (Obs.Counters.get pr.ccall_span Obs.Counters.instret));
            ("cycles", Obs.Json.Int (Obs.Counters.get pr.ccall_span Obs.Counters.cycles));
          ] );
      ("crossing_hist", Obs.Hist.to_json pr.crossing);
      ( "class_hists",
        Obs.Json.List (Array.to_list (Array.map Obs.Hist.to_json pr.class_hists)) );
      ( "compartment_hists",
        Obs.Json.List (Array.to_list (Array.map Obs.Hist.to_json pr.comp_hists)) );
    ]

(* cheri-serve/2 adds per-point `class_hists` (latency per size-class x
   accepted/rejected) and `compartment_hists` (latency per worker). *)
let to_json r =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "cheri-serve/2");
      ("requests", Obs.Json.Int (Int64.of_int r.cfg.requests));
      ("seed", Obs.Json.String (Printf.sprintf "0x%Lx" r.cfg.base_seed));
      ("digests_match", Obs.Json.Bool r.digests_match);
      (* Host-side fields (additive to /2): zero under --no-wall, so the
         deterministic report stays byte-identical warm or cold. *)
      ("wall_s", Obs.Json.Float r.wall_s);
      ("host_requests_per_s", Obs.Json.Float (host_requests_per_s r));
      ("points", Obs.Json.List (List.map point_to_json r.points));
      ( "crossing_cost",
        Obs.Json.List
          (List.map
             (fun c ->
               Obs.Json.Obj
                 [
                   ("n", Obs.Json.Int (Int64.of_int c.cost_n));
                   ("p50", Obs.Json.Int (Int64.of_int c.p50));
                   ("p90", Obs.Json.Int (Int64.of_int c.p90));
                   ("p99", Obs.Json.Int (Int64.of_int c.p99));
                   ("mean", Obs.Json.Float c.mean);
                 ])
             r.costs) );
    ]

(* --- obs-schema export (bench serve / cheri_diff) ------------------------- *)

(* The latency percentiles and crossing costs ride in pseudo-spans (the
   span schema carries instret/cycles pairs): deterministic architectural
   numbers, so the diff harness pins them exactly. *)
let obs_entries r =
  let pseudo_span name cycles =
    let c = Obs.Counters.create () in
    Obs.Counters.set_int c Obs.Counters.cycles cycles;
    (name, c)
  in
  List.map
    (fun pr ->
      let s = sorted_latencies pr in
      (* Architectural counters only (sb_* / samples zeroed): those
         host-side fields depend on how warm the engine's translation
         caches are, so leaving them in would make the export differ
         between warm-pool and --cold runs of the same sweep.  The diff
         policy already ignores them, so committed baselines that
         predate the zeroing still compare clean. *)
      let spans =
        (if Int64.equal (Obs.Counters.get pr.ccall_span Obs.Counters.instret) 0L then []
         else [ ("ccall", architectural_counters pr.ccall_span) ])
        @ [
            pseudo_span "lat_p50" (percentile s 0.50);
            pseudo_span "lat_p99" (percentile s 0.99);
          ]
        @
        match
          ( pr.point.isolation,
            List.find_opt (fun c -> c.cost_n = pr.point.n) r.costs )
        with
        | Scenario.Compart, Some c ->
            [ pseudo_span "xcost_p50" c.p50; pseudo_span "xcost_p99" c.p99 ]
        | _ -> []
      in
      {
        Obs.Export.bench = "serve";
        mode = Scenario.isolation_name pr.point.isolation;
        param = pr.point.n;
        wall_s = pr.wall_s;
        counters = architectural_counters pr.counters;
        spans;
      })
    r.points

(* --- trace exports --------------------------------------------------------- *)

(* The full Chrome trace-event document (Perfetto / about://tracing):
   one process per sweep point, duration tracks from the trace, counter
   tracks from the series. *)
let chrome_json r =
  let parts =
    List.concat
      (List.mapi
         (fun i pr ->
           let pid = i + 1 in
           (match pr.trace with
           | Some tr -> Obs.Trace.to_chrome_events ~pid ~process:(point_name pr.point) tr
           | None -> [])
           @ match pr.series with Some s -> Obs.Series.to_chrome_events ~pid s | None -> [])
         r.points)
  in
  Obs.Trace.chrome_document parts

(* cheri-obs-trace/1: the diffable digest of a traced sweep, in the
   bench-file shape so Obs.Baseline loads it and Obs.Diff pins it.  Each
   point is one entry; the spans object carries the per-request-class
   and per-compartment latency histograms as integer field sets, plus
   the trace/series cardinalities.  Everything is architectural, so the
   file is byte-identical for any --jobs and either engine. *)
let trace_obs_json r =
  let hist_fields h =
    [
      ("total", Obs.Json.Int (Int64.of_int h.Obs.Hist.total));
      ("sum", Obs.Json.Int h.Obs.Hist.sum);
      ("min", Obs.Json.Int (if h.Obs.Hist.total = 0 then 0L else h.Obs.Hist.vmin));
      ("max", Obs.Json.Int h.Obs.Hist.vmax);
      ("p50", Obs.Json.Int (Obs.Hist.quantile h 0.50));
      ("p99", Obs.Json.Int (Obs.Hist.quantile h 0.99));
    ]
  in
  let entry pr =
    let c = architectural_counters pr.counters in
    let spans =
      List.map (fun h -> (h.Obs.Hist.name, Obs.Json.Obj (hist_fields h)))
        (Array.to_list pr.class_hists @ Array.to_list pr.comp_hists)
      @ [
          ( "trace/events",
            Obs.Json.Obj
              [
                ( "recorded",
                  Obs.Json.Int
                    (Int64.of_int
                       (match pr.trace with Some tr -> Obs.Trace.recorded tr | None -> 0)) );
                ( "dropped",
                  Obs.Json.Int
                    (Int64.of_int
                       (match pr.trace with Some tr -> Obs.Trace.dropped tr | None -> 0)) );
              ] );
          ( "series/samples",
            Obs.Json.Obj
              [
                ( "count",
                  Obs.Json.Int
                    (Int64.of_int
                       (match pr.series with Some s -> Obs.Series.count s | None -> 0)) );
              ] );
        ]
    in
    Obs.Json.Obj
      [
        ("bench", Obs.Json.String "trace");
        ("mode", Obs.Json.String (Scenario.isolation_name pr.point.isolation));
        ("param", Obs.Json.Int (Int64.of_int pr.point.n));
        ("cycles", Obs.Json.Int (Obs.Counters.get c Obs.Counters.cycles));
        ("instret", Obs.Json.Int (Obs.Counters.get c Obs.Counters.instret));
        ("wall_s", Obs.Json.Float 0.0);
        ("sim_mips", Obs.Json.Float 0.0);
        ( "counters",
          Obs.Json.Obj
            (List.map (fun (n, v) -> (n, Obs.Json.Int v)) (Obs.Export.counter_fields c)) );
        ("spans", Obs.Json.Obj spans);
      ]
  in
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String Obs.Export.schema_trace);
      ("interp_instr_per_s", Obs.Json.Float 0.0);
      ("benchmarks", Obs.Json.List (List.map entry r.points));
    ]
