(** Sandboxing of unmodified legacy code (§5.3): "Conventional binaries
    are sandboxed in micro-address spaces within existing processes by
    constraining C0 and PCC." *)

type t

(** [enter machine ~base ~length ~entry] saves the host context and
    installs a restricted C0/PCC over [base, base+length): the sandboxed
    code's ordinary MIPS loads, stores, and fetches are transparently
    relocated and bounded, and it receives no capability rights at all.
    @raise Invalid_argument when [entry] lies outside the region. *)
val enter : Machine.t -> base:int64 -> length:int64 -> entry:int64 -> t

(** Restore the host context saved at {!enter}. *)
val leave : Machine.t -> t -> unit

(** [fault_report sandbox fault] renders a kernel fault raised inside the
    sandbox for trap reporting: the sandbox-relative PC, the faulting
    instruction's disassembly, the capability cause, and the [instret] /
    [cycles] counters at the trap. *)
val fault_report : t -> Kernel.fault -> string
