(** Sandboxing of unmodified legacy code (§5.3): "Conventional binaries
    are sandboxed in micro-address spaces within existing processes by
    constraining C0 and PCC." *)

type t

(** [enter machine ~base ~length ~entry] saves the host context and
    installs a restricted C0/PCC over [base, base+length): the sandboxed
    code's ordinary MIPS loads, stores, and fetches are transparently
    relocated and bounded, and it receives no capability rights at all.
    @raise Invalid_argument when [entry] lies outside the region. *)
val enter : Machine.t -> base:int64 -> length:int64 -> entry:int64 -> t

(** Restore the host context saved at {!enter}. *)
val leave : Machine.t -> t -> unit

(** [seal_pair ~otype ~code_base ~code_length ~data_base ~data_length]
    mints a compartment's sealed code/data capability pair (§5.2, §11):
    the code capability spans the compartment text (execute, no store),
    the data capability spans its private region (data and capability
    load/store, no execute); both are sealed with [otype] under the
    kernel's omnipotent sealing authority.  Install the pair in C1/C2 and
    CCall to enter the compartment.
    @raise Invalid_argument when [otype] is unrepresentable. *)
val seal_pair :
  otype:int ->
  code_base:int64 ->
  code_length:int64 ->
  data_base:int64 ->
  data_length:int64 ->
  Cap.Capability.t * Cap.Capability.t

(** [fault_report sandbox fault] renders a kernel fault raised inside the
    sandbox for trap reporting: the sandbox-relative PC, the faulting
    instruction's disassembly, the capability cause, and the [instret] /
    [cycles] counters at the trap. *)
val fault_report : t -> Kernel.fault -> string
