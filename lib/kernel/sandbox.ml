(* Sandboxing of unmodified (capability-unaware) code (Section 5.3):
   "Conventional binaries are sandboxed in micro-address spaces within
   existing processes by constraining C0 and PCC."

   [enter] installs a restricted C0/PCC pair covering only the sandbox
   region and jumps to the sandbox entry point; legacy loads, stores, and
   fetches inside the sandbox are then implicitly bounded.  Any attempt to
   reach outside raises a CP2 exception, which the kernel fault handler
   observes.  The sandboxed code needs no recompilation — its ordinary
   MIPS loads and stores are offset and bounded via C0 transparently. *)

open Beri

type t = {
  base : int64;
  length : int64;
  entry : int64; (* absolute address of the sandbox entry point *)
  saved : Context.t; (* host context to restore on exit *)
}

(* Enter a sandbox: [base]/[length] delimit the micro-address space;
   [entry] is the absolute entry address within it.  Returns the sandbox
   handle for [leave]. *)
let enter (m : Machine.t) ~base ~length ~entry =
  if Int64.unsigned_compare entry base < 0
     || Int64.unsigned_compare entry (Int64.add base length) >= 0 then
    invalid_arg "Sandbox.enter: entry outside sandbox";
  let saved = Context.save m in
  let data_perms =
    Cap.Perms.union Cap.Perms.load (Cap.Perms.union Cap.Perms.store Cap.Perms.global)
  in
  let region perms = Cap.Capability.make ~perms ~base ~length in
  (* The sandbox receives a no-capability view: it can neither load nor
     store capabilities, so it cannot exfiltrate authority. *)
  Machine.set_cap m 0 (region data_perms);
  for i = 1 to 31 do
    Machine.set_cap m i Cap.Capability.null
  done;
  m.Machine.pcc <- region (Cap.Perms.union Cap.Perms.execute Cap.Perms.global);
  m.Machine.pc <- entry;
  (* Legacy code addresses memory C0-relative, so rebase SP to the top of
     the sandbox region. *)
  Machine.set_gpr m Regs.sp (Int64.sub length 32L);
  { base; length; entry; saved }

let leave (m : Machine.t) t = Context.restore m t.saved

(* Mint a sealed code/data capability pair for a compartment (Sections 5.2
   and 11): the trusted loader derives a code capability over the
   compartment's text and a data capability over its private region, then
   seals both with the compartment's object type so only a CCall through
   the kernel can unseal them.  The data capability carries capability
   load/store rights — capability-aware compartments spill capabilities
   C0-relative — but, unlike [enter]'s legacy sandboxes, never execute. *)
let seal_pair ~otype ~code_base ~code_length ~data_base ~data_length =
  let authority =
    Cap.Capability.make ~perms:Cap.Perms.all ~base:0L ~length:Cap.U64.max_value
  in
  let union = List.fold_left Cap.Perms.union Cap.Perms.global in
  let code =
    Cap.Capability.make
      ~perms:(union [ Cap.Perms.execute; Cap.Perms.load ])
      ~base:code_base ~length:code_length
  and data =
    Cap.Capability.make
      ~perms:
        (union
           [ Cap.Perms.load; Cap.Perms.store; Cap.Perms.load_cap; Cap.Perms.store_cap ])
      ~base:data_base ~length:data_length
  in
  match
    ( Cap.Capability.seal code ~authority ~otype,
      Cap.Capability.seal data ~authority ~otype )
  with
  | Ok c, Ok d -> (c, d)
  | Error e, _ | _, Error e ->
      invalid_arg ("Sandbox.seal_pair: " ^ Cap.Cause.to_string e)

(* Trap reporting: render a kernel fault raised inside the sandbox, with
   the sandbox-relative PC, the faulting instruction's disassembly, and
   the retirement counters that make the trap reproducible. *)
let fault_report t (f : Kernel.fault) =
  let rel = Int64.sub f.Kernel.pc t.base in
  Fmt.str
    "sandbox [0x%Lx,+0x%Lx) trap: %s at pc=0x%Lx (sandbox+0x%Lx) [%s] badvaddr=0x%Lx capcause=%s/C%d instret=%Ld cycles=%Ld"
    t.base t.length
    (Cp0.exc_to_string f.Kernel.exc)
    f.Kernel.pc rel f.Kernel.disasm f.Kernel.badvaddr
    (Cap.Cause.to_string f.Kernel.capcause)
    f.Kernel.capreg f.Kernel.instret f.Kernel.cycles
