(* A miniature supervisor modelling the paper's FreeBSD extensions
   (Section 4.3):

     - on process start the *entire user virtual address space* is delegated
       to the user capability register file (C0/PCC spanning it);
     - the kernel handles syscalls (exit, putchar, write, sbrk, counters);
     - the kernel saves and restores per-thread capability register state on
       context switches ([Context]);
     - CCall/CReturn trap to the kernel, which implements the protected
       procedure call over a trusted stack (Section 11: "Our current
       prototype traps to the OS to emulate a protected procedure-call
       instruction").

   The kernel is a native model: it manipulates machine state directly from
   OCaml rather than running privileged simulated code (DESIGN.md). *)

open Beri

(* Syscall numbers (v0). *)
let sys_exit = 1
let sys_putchar = 2
let sys_sbrk = 3
let sys_write = 4
let sys_cycles = 5
let sys_instret = 6
let sys_print_int = 7

type fault = {
  exc : Cp0.exc;
  pc : int64;
  badvaddr : int64;
  capcause : Cap.Cause.t;
  capreg : int;
  instret : int64; (* retired instructions at the trap *)
  cycles : int64; (* model cycles at the trap *)
  disasm : string; (* disassembly of the faulting instruction *)
}

type t = {
  machine : Machine.t;
  mutable brk : int64;
  heap_limit : int64;
  stack_top : int64;
  user_top : int64;
  output : Buffer.t;
  mutable syscall_count : int;
  mutable fault_handler : (t -> fault -> Machine.kernel_action) option;
  mutable trusted_stack : frame list;
  mutable ccalls : int;
  mutable creturns : int;
  mutable ctx_saves : int; (* trusted-stack frames pushed (CCall entry) *)
  mutable ctx_restores : int; (* frames popped (CReturn or unwind) *)
  mutable obs_span : Obs.Span.t option;
      (* when set, CCall/CReturn domain transitions open/close a
         "ccall" span — sandbox time shows up as a phase. *)
  mutable obs_bus : Obs.Event.bus option;
      (* when set, kernel-visible faults are emitted as structured
         events on the shared bus. *)
  mutable obs_trace : Obs.Trace.t option;
      (* when set, CCall/CReturn/unwind transitions and faults are
         recorded as cycle-timestamped trace events — the kernel track
         and per-compartment spans of the exported timeline. *)
}

and frame = {
  saved_pcc : Cap.Capability.t;
  saved_c0 : Cap.Capability.t;
  return_pc : int64;
  frame_otype : int; (* the sealed pair's object type: names the compartment *)
}

(* The CHERI ABI defines eight capability argument registers (Section 5.1):
   C3..C10 carry capability arguments; C1/C2 are caller-save temporaries,
   C26 is the invoked data capability. *)
let idc_reg = 26

let machine t = t.machine
let console t = Buffer.contents t.output

let sbrk t delta =
  let old = t.brk in
  let nbrk = Int64.add t.brk delta in
  if Int64.unsigned_compare nbrk t.heap_limit > 0 || Int64.compare nbrk Layout.heap_base < 0
  then Int64.minus_one (* ENOMEM *)
  else begin
    if Int64.compare nbrk old > 0 then
      Machine.map_identity t.machine ~vaddr:old
        ~len:(Int64.to_int (Int64.sub nbrk old))
        Mem.Tlb.prot_rwx;
    t.brk <- nbrk;
    old
  end

let handle_syscall t =
  let m = t.machine in
  t.syscall_count <- t.syscall_count + 1;
  let num = Int64.to_int (Machine.gpr m Regs.v0) in
  let a0 = Machine.gpr m Regs.a0 in
  if num = sys_exit then Machine.Halt (Int64.to_int a0)
  else begin
    (match num with
    | n when n = sys_putchar ->
        Buffer.add_char t.output (Char.chr (Int64.to_int a0 land 0xFF));
        Machine.set_gpr m Regs.v0 0L
    | n when n = sys_write ->
        let len = Int64.to_int (Machine.gpr m Regs.a1) in
        let bytes = Mem.Phys.read_bytes m.Machine.phys a0 len in
        Buffer.add_bytes t.output bytes;
        Machine.set_gpr m Regs.v0 (Int64.of_int len)
    | n when n = sys_sbrk -> Machine.set_gpr m Regs.v0 (sbrk t a0)
    | n when n = sys_print_int ->
        Buffer.add_string t.output (Int64.to_string a0);
        Buffer.add_char t.output '\n';
        Machine.set_gpr m Regs.v0 0L
    | n when n = sys_cycles -> Machine.set_gpr m Regs.v0 (Int64.of_int m.Machine.cycles)
    | n when n = sys_instret -> Machine.set_gpr m Regs.v0 (Int64.of_int m.Machine.instret)
    | _ -> Machine.set_gpr m Regs.v0 Int64.minus_one);
    Machine.Resume_at (Int64.add m.Machine.cp0.Cp0.epc 4L)
  end

(* Protected procedure call (trap-emulated CCall): unseal the code/data pair,
   push a trusted-stack frame, and enter the callee's domain. *)
let handle_ccall t =
  let m = t.machine in
  t.ccalls <- t.ccalls + 1;
  (* By convention CCall's operands are in C1 (sealed code) and C2 (sealed
     data); the decoded operand registers were validated by the trap. *)
  let code = Machine.cap m 1 and data = Machine.cap m 2 in
  let fail cause =
    m.Machine.cp0.Cp0.capcause <- cause;
    Machine.Halt 96
  in
  if not (Cap.Capability.tag code && Cap.Capability.tag data) then fail Cap.Cause.Tag_violation
  else if not (Cap.Capability.is_sealed code && Cap.Capability.is_sealed data) then
    fail Cap.Cause.Seal_violation
  else if Cap.Capability.otype code <> Cap.Capability.otype data then
    fail Cap.Cause.Type_violation
  else begin
    let authority =
      Cap.Capability.make ~perms:Cap.Perms.all ~base:0L ~length:Cap.U64.max_value
    in
    let ot = Cap.Capability.otype code in
    match
      ( Cap.Capability.unseal code ~authority ~otype:ot,
        Cap.Capability.unseal data ~authority ~otype:ot )
    with
    | Ok ucode, Ok udata ->
        (match t.obs_span with Some s -> Obs.Span.enter s "ccall" | None -> ());
        (match t.obs_trace with
        | Some tr -> Obs.Trace.ccall tr ~ts:m.Machine.cycles ~otype:ot
        | None -> ());
        t.ctx_saves <- t.ctx_saves + 1;
        t.trusted_stack <-
          {
            saved_pcc = m.Machine.pcc;
            saved_c0 = Machine.cap m 0;
            return_pc = Int64.add m.Machine.cp0.Cp0.epc 4L;
            frame_otype = ot;
          }
          :: t.trusted_stack;
        m.Machine.pcc <- ucode;
        Machine.set_cap m 0 udata;
        Machine.set_cap m idc_reg udata;
        Machine.Resume_at (Cap.Capability.base ucode)
    | Error c, _ | _, Error c -> fail c
  end

let handle_creturn t =
  let m = t.machine in
  t.creturns <- t.creturns + 1;
  match t.trusted_stack with
  | [] ->
      (* CReturn with no matching CCall is an architectural error, not a
         generic failure: report it with the precise capability cause. *)
      m.Machine.cp0.Cp0.capcause <- Cap.Cause.Return_trap;
      Machine.Halt 97
  | frame :: rest ->
      t.trusted_stack <- rest;
      t.ctx_restores <- t.ctx_restores + 1;
      (match t.obs_span with Some s -> Obs.Span.exit s | None -> ());
      (match t.obs_trace with
      | Some tr ->
          Obs.Trace.creturn tr ~ts:m.Machine.cycles ~otype:frame.frame_otype ~unwound:false
      | None -> ());
      m.Machine.pcc <- frame.saved_pcc;
      Machine.set_cap m 0 frame.saved_c0;
      Machine.Resume_at frame.return_pc

(* Pop every trusted-stack frame, restoring the outermost caller's
   PCC/C0.  Used by server loops to recover the router's domain after a
   fault inside a worker compartment aborted the protected call chain. *)
let unwind_trusted_stack t =
  let m = t.machine in
  (* Each popped frame is a truncated protected call: record it as an
     unwound return so the trace's worker span still closes — at the
     trap cycle, flagged unwound — instead of dangling open. *)
  let note frame =
    t.ctx_restores <- t.ctx_restores + 1;
    (match t.obs_span with Some s -> Obs.Span.exit s | None -> ());
    match t.obs_trace with
    | Some tr -> Obs.Trace.creturn tr ~ts:m.Machine.cycles ~otype:frame.frame_otype ~unwound:true
    | None -> ()
  in
  let rec pop = function
    | [] -> ()
    | [ frame ] ->
        note frame;
        m.Machine.pcc <- frame.saved_pcc;
        Machine.set_cap m 0 frame.saved_c0
    | frame :: rest ->
        note frame;
        pop rest
  in
  pop t.trusted_stack;
  t.trusted_stack <- []

let trusted_stack_depth t = List.length t.trusted_stack

(* The faulting instruction's disassembly, recovered from the memory image
   at the victim PC (best-effort: the PC itself may be corrupt). *)
let disasm_at (m : Machine.t) pc =
  match Mem.Phys.read_u32 m.Machine.phys pc with
  | w -> Asm.Disasm.word w
  | exception _ -> "<unreadable>"

let default_fault t fault =
  ignore t;
  Fmt.epr "[kernel] fatal fault at pc=0x%Lx: %s [%s] (badvaddr=0x%Lx, instret=%Ld, cycles=%Ld)@."
    fault.pc (Cp0.exc_to_string fault.exc) fault.disasm fault.badvaddr fault.instret
    fault.cycles;
  Machine.Halt 139

let handler t (ctx : Machine.exn_ctx) =
  match ctx.Machine.exc with
  | Cp0.Syscall -> handle_syscall t
  | Cp0.Cp2 Cap.Cause.Call_trap -> handle_ccall t
  | Cp0.Cp2 Cap.Cause.Return_trap -> handle_creturn t
  | exc -> (
      let fault =
        {
          exc;
          pc = ctx.Machine.victim_pc;
          badvaddr = t.machine.Machine.cp0.Cp0.badvaddr;
          capcause = t.machine.Machine.cp0.Cp0.capcause;
          capreg = t.machine.Machine.cp0.Cp0.capcause_reg;
          instret = Int64.of_int t.machine.Machine.instret;
          cycles = Int64.of_int t.machine.Machine.cycles;
          disasm = disasm_at t.machine ctx.Machine.victim_pc;
        }
      in
      (match t.obs_trace with
      | Some tr ->
          Obs.Trace.trap tr
            ~ts:(Int64.to_int fault.cycles)
            ~exc:(Cp0.exc_to_string exc)
            ~cause:(Cap.Cause.to_string fault.capcause)
            ~pc:fault.pc
      | None -> ());
      (match t.obs_bus with
      | Some bus ->
          Obs.Event.emit bus ~kind:"fault" ~name:(Cp0.exc_to_string exc)
            [
              ("pc", Obs.Json.Int fault.pc);
              ("badvaddr", Obs.Json.Int fault.badvaddr);
              ("capcause", Obs.Json.String (Cap.Cause.to_string fault.capcause));
              ("capreg", Obs.Json.Int (Int64.of_int fault.capreg));
              ("instret", Obs.Json.Int fault.instret);
              ("cycles", Obs.Json.Int fault.cycles);
              ("disasm", Obs.Json.String fault.disasm);
            ]
      | None -> ());
      match t.fault_handler with
      | Some f -> f t fault
      | None -> default_fault t fault)

let attach machine =
  (* The memory layout scales with the machine: the stack sits in the top
     megabyte, the heap grows from Layout.heap_base up to a 16 MB margin
     below the stack, and the whole space is delegated on exec. *)
  let mem = Int64.of_int (Mem.Phys.size machine.Machine.phys) in
  let stack_top = mem in
  let heap_limit = Int64.sub mem 0x110_0000L in
  let t =
    {
      machine;
      brk = Layout.heap_base;
      heap_limit;
      stack_top;
      user_top = mem;
      output = Buffer.create 256;
      syscall_count = 0;
      fault_handler = None;
      trusted_stack = [];
      ccalls = 0;
      creturns = 0;
      ctx_saves = 0;
      ctx_restores = 0;
      obs_span = None;
      obs_bus = None;
      obs_trace = None;
    }
  in
  Machine.set_kernel machine (fun _m ctx -> handler t ctx);
  t

let set_fault_handler t f = t.fault_handler <- Some f

(* Attach observability plumbing: an optional span scope for domain
   transitions, an optional event bus for faults, and an optional trace
   collector for the cycle-timestamped timeline. *)
let set_obs ?span ?bus ?trace t =
  t.obs_span <- span;
  t.obs_bus <- bus;
  t.obs_trace <- trace

(* The kernel's view of the counter file: everything the machine and the
   memory hierarchy report, plus the OS-level event counts only the
   kernel model knows (syscalls, protected procedure calls). *)
let read_counters t =
  let c = Machine.read_counters t.machine in
  Obs.Counters.set_int c Obs.Counters.syscalls t.syscall_count;
  Obs.Counters.set_int c Obs.Counters.ccalls t.ccalls;
  Obs.Counters.set_int c Obs.Counters.creturns t.creturns;
  Obs.Counters.set_int c Obs.Counters.ctx_saves t.ctx_saves;
  Obs.Counters.set_int c Obs.Counters.ctx_restores t.ctx_restores;
  c

(* Boot a user program (Section 4.3): load the image, delegate the whole
   user address space to the capability register file, point SP at the top
   of the stack, and drop to user mode at the entry point. *)
let exec t (program : Asm.Assembler.program) =
  let m = t.machine in
  Asm.Assembler.load m program;
  let stack_base = Int64.sub t.stack_top 0x10_0000L in
  Machine.map_identity m ~vaddr:stack_base
    ~len:(Int64.to_int (Int64.sub t.stack_top stack_base))
    Mem.Tlb.prot_rwx;
  (* Delegate the entire user virtual address space. *)
  let user_space =
    Cap.Capability.make ~perms:Cap.Perms.all ~base:0L ~length:t.user_top
  in
  for i = 0 to 31 do
    Machine.set_cap m i user_space
  done;
  m.Machine.pcc <- user_space;
  Machine.set_gpr m Regs.sp (Int64.sub t.stack_top 32L);
  m.Machine.cp0.Cp0.mode <- Cp0.User;
  m.Machine.pc <- program.Asm.Assembler.entry;
  t.brk <- Layout.heap_base

(* Convenience: assemble, boot, run to completion; returns (exit code,
   console output). *)
let run_program ?(max_insns = 200_000_000L) t source =
  let program = Asm.Assembler.assemble source in
  exec t program;
  let code = Machine.run ~max_insns t.machine in
  (code, console t)

(* Structured variant for campaign drivers: boot a pre-assembled program
   and report the full [Machine.run_result] (plus console output) instead
   of collapsing abnormal outcomes to an exit code. *)
let run_result ?(max_insns = 200_000_000L) ?watchdog t program =
  exec t program;
  let result = Machine.run_result ~max_insns ?watchdog t.machine in
  (result, console t)

(* --- kernel checkpoint / restore ---------------------------------------- *)

(* The native kernel model's half of the warm-server checkpoint: the
   machine's [Machine.checkpoint] captures architectural state, this
   captures the kernel bookkeeping that lives beside it — heap break,
   trusted stack (an immutable frame list, shared structurally), the
   syscall/crossing counters, and the console length (restore truncates
   rather than copies: replay after restore appends the same bytes). *)
type checkpoint = {
  ck_brk : int64;
  ck_syscall_count : int;
  ck_trusted_stack : frame list;
  ck_ccalls : int;
  ck_creturns : int;
  ck_ctx_saves : int;
  ck_ctx_restores : int;
  ck_output_len : int;
}

let checkpoint t =
  {
    ck_brk = t.brk;
    ck_syscall_count = t.syscall_count;
    ck_trusted_stack = t.trusted_stack;
    ck_ccalls = t.ccalls;
    ck_creturns = t.creturns;
    ck_ctx_saves = t.ctx_saves;
    ck_ctx_restores = t.ctx_restores;
    ck_output_len = Buffer.length t.output;
  }

let restore t (c : checkpoint) =
  t.brk <- c.ck_brk;
  t.syscall_count <- c.ck_syscall_count;
  t.trusted_stack <- c.ck_trusted_stack;
  t.ccalls <- c.ck_ccalls;
  t.creturns <- c.ck_creturns;
  t.ctx_saves <- c.ck_ctx_saves;
  t.ctx_restores <- c.ck_ctx_restores;
  Buffer.truncate t.output c.ck_output_len
