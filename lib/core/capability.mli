(** The CHERI-256 memory capability (Figure 1 of the paper).

    A capability is an unforgeable reference to a linear range
    [\[base, base+length)] of the virtual address space, carrying a
    permissions vector.  The tag bit distinguishes a valid capability from
    256 bits of plain data.

    Every manipulation operation is {e monotonic}: it can only reduce the
    rights conveyed.  This is the architectural property that makes the
    transitive closure of reachable capabilities a protection domain
    (Section 4.2 of the paper). *)

type t

(** {1 Distinguished values} *)

(** The reset capability: every permission over the whole 64-bit address
    space.  All capability registers hold it at reset so an unaware OS
    runs unconstrained (Section 4.3). *)
val almighty : t

(** The canonical untagged value; represents NULL. *)
val null : t

(** [make ~perms ~base ~length] is a fresh tagged, unsealed capability.
    Only trusted code (kernel model, test harnesses) may call this —
    simulated programs can only {e derive} capabilities. *)
val make : perms:Perms.t -> base:U64.t -> length:U64.t -> t

(** {1 Field accessors (CGetBase / CGetLen / CGetTag / CGetPerm)} *)

val base : t -> U64.t
val length : t -> U64.t
val tag : t -> bool
val perms : t -> Perms.t
val otype : t -> int
val is_sealed : t -> bool

(** Exclusive top of the segment, [base + length] (may wrap to 0 for the
    almighty capability). *)
val top : t -> U64.t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Monotonic manipulation (Table 1)} *)

(** [inc_base c delta]: advance the base by [delta], shrinking the length
    (CIncBase).  Fails with [Length_violation] if [delta > length], or
    [Tag_violation]/[Seal_violation] as appropriate. *)
val inc_base : t -> U64.t -> (t, Cause.t) result

(** [set_len c len]: reduce the length to [len] (CSetLen).  Extending is a
    [Length_violation]. *)
val set_len : t -> U64.t -> (t, Cause.t) result

(** [and_perm c mask]: intersect the permissions with [mask] (CAndPerm). *)
val and_perm : t -> Perms.t -> (t, Cause.t) result

(** [clear_tag c]: invalidate (CClearTag).  Always permitted. *)
val clear_tag : t -> t

(** {1 Pointer interoperation (Section 4.3)} *)

(** [to_ptr c ~relative_to] derives the C0-relative integer pointer
    (CToPtr); an untagged capability converts to 0. *)
val to_ptr : t -> relative_to:t -> U64.t

(** [from_ptr c0 ptr] re-derives a capability for [ptr] within [c0]
    (CFromPtr); [ptr = 0] yields {!null}. *)
val from_ptr : t -> U64.t -> (t, Cause.t) result

(** {1 Sealing (Section 11 domain-crossing extension)} *)

(** [seal c ~authority ~otype] seals [c] with object type [otype]; the
    [authority] capability must carry [Permit_Seal] and its segment must
    cover [otype]. *)
val seal : t -> authority:t -> otype:int -> (t, Cause.t) result

(** [unseal c ~authority ~otype]: inverse of {!seal}; the otype must
    match. *)
val unseal : t -> authority:t -> otype:int -> (t, Cause.t) result

(** {1 Access checking} *)

type access = Load | Store | Execute | Load_cap | Store_cap

(** [check_access c access ~addr ~size] validates a [size]-byte access at
    absolute address [addr] through [c]: tag set, unsealed, permission
    granted, in bounds.  This single function implements the check applied
    by every capability-relative load, store, and instruction fetch. *)
val check_access : t -> access -> addr:U64.t -> size:U64.t -> (unit, Cause.t) result

(** [rights_subset a b]: the rights conveyed by [a] are a subset of those
    of [b].  Monotonicity of the manipulation operations is stated (and
    property-tested) in terms of this relation. *)
val rights_subset : t -> t -> bool

(** {1 The 256-bit memory image} *)

(** 32: the in-memory size in bytes.  The tag is not part of the image —
    it lives in the tag table. *)
val size_bytes : int

(** Word-granule image codec — the 32-byte image as four little-endian
    64-bit words (flags, reserved, base, length), letting hot paths move
    capabilities through memory without an intermediate buffer.  The
    flags word packs sealed/perms/otype plus the uninterpreted high
    byte; every bit round-trips. *)

val flags_word : t -> U64.t

val reserved_word : t -> U64.t

val of_words : tag:bool -> flags:U64.t -> reserved:U64.t -> base:U64.t -> length:U64.t -> t

(** Serialize to the 32-byte image (losslessly — registers may hold plain
    data). *)
val to_bytes : t -> bytes

(** [of_bytes ~tag b] deserializes; the caller supplies the tag bit from
    the tag table. *)
val of_bytes : tag:bool -> bytes -> t
