(* The CHERI-256 memory capability (Figure 1 of the paper).

   A capability is an unforgeable reference to a linear range
   [base, base+length) of the virtual address space, carrying a permissions
   vector.  The tag bit distinguishes a valid capability from 256 bits of
   ordinary data occupying a capability register or a capability-sized,
   capability-aligned memory location.

   All manipulation operations are *monotonic*: they can only reduce the
   rights conveyed (shrink bounds, drop permissions, clear the tag).  This is
   the architectural property that makes the reachable-capability closure a
   protection domain (Section 4.2).

   The [otype]/[sealed] fields model the experimentation fields the paper
   reserves (Section 4.1 / Section 11): sealing renders a capability
   immutable and non-dereferenceable until it is unsealed or invoked via a
   protected call, which is how domain crossing is built. *)

type t = {
  tag : bool;
  sealed : bool;
  perms : Perms.t;
  otype : int; (* 24-bit object type; meaningful only when [sealed] *)
  base : U64.t;
  length : U64.t;
  (* Reserved bits of the 256-bit image.  Capability registers may hold
     plain data (Section 4.2: an untagged register is just 256 bits), so
     the in-memory image must round-trip *exactly* — these fields carry the
     bits no architectural field covers. *)
  flags_rest : int; (* bits 56..63 of the flags word *)
  reserved : U64.t; (* bytes 8..15 *)
}

let otype_mask = 0xFF_FFFF

(* The reset / almighty capability: grants every permission over the whole
   64-bit address space.  On CPU reset all capability registers hold this
   value so that an unaware OS runs unconstrained (Section 4.3). *)
let almighty =
  {
    tag = true;
    sealed = false;
    perms = Perms.all;
    otype = 0;
    base = 0L;
    length = U64.max_value;
    flags_rest = 0;
    reserved = 0L;
  }

(* The null capability: the canonical untagged value, used to represent a
   NULL pointer and the contents of a cleared capability register. *)
let null =
  { tag = false; sealed = false; perms = Perms.none; otype = 0; base = 0L; length = 0L;
    flags_rest = 0; reserved = 0L }

let make ~perms ~base ~length =
  { tag = true; sealed = false; perms; otype = 0; base; length; flags_rest = 0; reserved = 0L }

(* Accessors (CGetBase / CGetLen / CGetTag / CGetPerm). *)
let base c = c.base
let length c = c.length
let tag c = c.tag
let perms c = c.perms
let otype c = c.otype
let is_sealed c = c.sealed

(* Exclusive top of the segment; wraps to 0 for the almighty capability,
   which [U64.in_range] handles. *)
let top c = U64.add c.base c.length

let equal a b =
  a.tag = b.tag && a.sealed = b.sealed
  && Perms.equal a.perms b.perms
  && a.otype = b.otype && U64.equal a.base b.base
  && U64.equal a.length b.length
  && a.flags_rest = b.flags_rest
  && U64.equal a.reserved b.reserved

let pp ppf c =
  Fmt.pf ppf "{tag=%b%s base=%a length=%a perms=[%a]%s}" c.tag
    (if c.sealed then " sealed" else "")
    U64.pp c.base U64.pp c.length Perms.pp c.perms
    (if c.sealed then Printf.sprintf " otype=0x%x" c.otype else "")

(* --- Monotonic manipulation ----------------------------------------- *)

let check_unsealed c =
  if not c.tag then Error Cause.Tag_violation
  else if c.sealed then Error Cause.Seal_violation
  else Ok c

(* CIncBase: advance the base by [delta] and shrink the length to match.
   Strictly reduces the extent; the new segment is a subset of the old. *)
let inc_base c delta =
  match check_unsealed c with
  | Error _ as e -> e
  | Ok c ->
      if U64.gt delta c.length then Error Cause.Length_violation
      else
        Ok { c with base = U64.add c.base delta; length = U64.sub c.length delta }

(* CSetLen: reduce the length.  Extending is a length violation. *)
let set_len c len =
  match check_unsealed c with
  | Error _ as e -> e
  | Ok c ->
      if U64.gt len c.length then Error Cause.Length_violation
      else Ok { c with length = len }

(* CAndPerm: intersect the permissions vector with a mask — rights can only
   be disclaimed, never acquired. *)
let and_perm c mask =
  match check_unsealed c with
  | Error _ as e -> e
  | Ok c -> Ok { c with perms = Perms.inter c.perms mask }

(* CClearTag: invalidate.  Always permitted; the result is plain data. *)
let clear_tag c = { c with tag = false }

(* CToPtr: derive a C0-relative integer pointer from a capability.  An
   untagged capability converts to 0 (the NULL pointer), supporting
   pointer/capability round trips for legacy interoperation (Section 4.3). *)
let to_ptr c ~relative_to:c0 =
  if not c.tag then 0L else U64.sub c.base c0.base

(* CFromPtr: the inverse — rederive a capability for [ptr] within [c0].
   A zero pointer produces the canonical null capability rather than a
   capability at c0's base ("CIncBase with support for NULL casts"). *)
let from_ptr c0 ptr =
  if U64.equal ptr 0L then Ok null else inc_base c0 ptr

(* --- Sealing (protected domain crossing support) --------------------- *)

let seal c ~authority ~otype:ot =
  if not c.tag then Error Cause.Tag_violation
  else if c.sealed then Error Cause.Seal_violation
  else if not authority.tag then Error Cause.Tag_violation
  else if authority.sealed then Error Cause.Seal_violation
  else if not (Perms.has authority.perms Perms.seal) then
    Error Cause.Permit_seal_violation
  else if ot < 0 || ot > otype_mask then Error Cause.Type_violation
  else if
    (* The authority's segment must cover the otype, treating otypes as an
       address space of their own. *)
    not (U64.in_range ~addr:(Int64.of_int ot) ~size:1L ~base:authority.base
           ~length:authority.length)
  then Error Cause.Length_violation
  else Ok { c with sealed = true; otype = ot }

let unseal c ~authority ~otype:ot =
  if not c.tag then Error Cause.Tag_violation
  else if not c.sealed then Error Cause.Seal_violation
  else if c.otype <> ot then Error Cause.Type_violation
  else if not (Perms.has authority.perms Perms.seal) then
    Error Cause.Permit_seal_violation
  else if
    not (U64.in_range ~addr:(Int64.of_int ot) ~size:1L ~base:authority.base
           ~length:authority.length)
  then Error Cause.Length_violation
  else Ok { c with sealed = false; otype = 0 }

(* --- Access checks ---------------------------------------------------- *)

type access = Load | Store | Execute | Load_cap | Store_cap

let perm_of_access = function
  | Load -> Perms.load
  | Store -> Perms.store
  | Execute -> Perms.execute
  | Load_cap -> Perms.load_cap
  | Store_cap -> Perms.store_cap

let cause_of_access = function
  | Load -> Cause.Permit_load_violation
  | Store -> Cause.Permit_store_violation
  | Execute -> Cause.Permit_execute_violation
  | Load_cap -> Cause.Permit_load_capability_violation
  | Store_cap -> Cause.Permit_store_capability_violation

(* [check_access c access ~addr ~size] validates a [size]-byte access at
   absolute virtual address [addr] through capability [c]: the tag must be
   set, the capability unsealed, the permission granted, and the access
   in bounds.  Returns the architectural cause on failure.  This single
   function implements the checks applied by every capability-relative
   load, store, and instruction fetch. *)
let check_access c access ~addr ~size =
  if not c.tag then Error Cause.Tag_violation
  else if c.sealed then Error Cause.Seal_violation
  else if not (Perms.has c.perms (perm_of_access access)) then
    Error (cause_of_access access)
  else if not (U64.in_range ~addr ~size ~base:c.base ~length:c.length) then
    Error Cause.Length_violation
  else Ok ()

(* [rights_subset a b]: the rights conveyed by [a] are a subset of those of
   [b].  Used by property tests to state monotonicity, and by the kernel to
   validate delegations. *)
let rights_subset a b =
  (not a.tag)
  || (b.tag
     && Perms.subset a.perms b.perms
     && U64.ge a.base b.base
     && U64.le (top a) (U64.add b.base b.length)
     && U64.le a.length b.length)

(* --- Memory image ------------------------------------------------------ *)

(* In-memory layout of a 256-bit capability (little-endian):
     bytes  0.. 7 : flags word — bit 0 sealed; bits 1..31 perms;
                    bits 32..55 otype; bits 56..63 uninterpreted
     bytes  8..15 : uninterpreted
     bytes 16..23 : base
     bytes 24..31 : length
   The tag is *not* part of the 32 bytes: it lives in the tag table
   (Section 4.2), exactly as in hardware.  Every bit of the image maps to
   a record field, so load/store round-trips are exact even for registers
   holding plain data. *)

let size_bytes = 32

(* Word-granule image accessors: the flags word packs sealed/perms/otype
   and the uninterpreted high byte.  [of_words]/[flags_word] let the
   machine's CLC/CSC path move capabilities through memory as four
   64-bit words without materialising an intermediate [Bytes] buffer
   (that allocation was measurable on the simulator's hot path);
   [of_bytes]/[to_bytes] below are the same codec over a buffer. *)
let flags_word c =
  Int64.logor
    (if c.sealed then 1L else 0L)
    (Int64.logor
       (Int64.shift_left (Int64.of_int (Perms.to_int c.perms)) 1)
       (Int64.logor
          (Int64.shift_left (Int64.of_int c.otype) 32)
          (Int64.shift_left (Int64.of_int c.flags_rest) 56)))

let reserved_word c = c.reserved

let of_words ~tag ~flags ~reserved ~base ~length =
  let sealed = Int64.logand flags 1L = 1L in
  let perms =
    Perms.of_int (Int64.to_int (Int64.logand (Int64.shift_right_logical flags 1) 0x7FFF_FFFFL))
  in
  let otype =
    Int64.to_int (Int64.logand (Int64.shift_right_logical flags 32) (Int64.of_int otype_mask))
  in
  let flags_rest = Int64.to_int (Int64.shift_right_logical flags 56) in
  { tag; sealed; perms; otype; base; length; flags_rest; reserved }

let to_bytes c =
  let b = Bytes.make size_bytes '\000' in
  Bytes.set_int64_le b 0 (flags_word c);
  Bytes.set_int64_le b 8 c.reserved;
  Bytes.set_int64_le b 16 c.base;
  Bytes.set_int64_le b 24 c.length;
  b

let of_bytes ~tag b =
  if Bytes.length b <> size_bytes then invalid_arg "Capability.of_bytes";
  of_words ~tag ~flags:(Bytes.get_int64_le b 0) ~reserved:(Bytes.get_int64_le b 8)
    ~base:(Bytes.get_int64_le b 16) ~length:(Bytes.get_int64_le b 24)
