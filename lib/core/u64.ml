(* Unsigned 64-bit arithmetic helpers on top of [Int64].

   The CHERI-256 capability format uses full 64-bit unsigned base and length
   fields.  OCaml's native [int] is 63-bit, so every architectural quantity
   in this code base is an [Int64.t] interpreted as unsigned.  This module
   centralises the unsigned comparisons and the overflow-sensitive bounds
   arithmetic so that the rest of the model never touches signedness
   directly. *)

type t = int64

let zero = 0L
let one = 1L
let max_value = 0xFFFF_FFFF_FFFF_FFFFL

let of_int = Int64.of_int
let to_int = Int64.to_int
let add = Int64.add
let sub = Int64.sub
let mul = Int64.mul
let logand = Int64.logand
let logor = Int64.logor
let logxor = Int64.logxor
let lognot = Int64.lognot
let shift_left = Int64.shift_left
let shift_right_logical = Int64.shift_right_logical
let shift_right = Int64.shift_right

(* Unsigned comparisons via the sign-flip trick: a <u b iff
   (a xor 2^63) <s (b xor 2^63).  Written with primitive [Int64] ops only
   (xor, typed comparison) so the native compiler keeps every
   intermediate unboxed — [Int64.unsigned_compare] would allocate two
   boxed subtractions per call, and these run several times per simulated
   instruction (every capability bounds check). *)
let flip = Int64.min_int
let compare a b = Stdlib.compare (Int64.logxor a flip) (Int64.logxor b flip)
let equal = Int64.equal
let lt a b = Int64.logxor a flip < Int64.logxor b flip
let le a b = Int64.logxor a flip <= Int64.logxor b flip
let gt a b = Int64.logxor a flip > Int64.logxor b flip
let ge a b = Int64.logxor a flip >= Int64.logxor b flip
let min a b = if le a b then a else b
let max a b = if ge a b then a else b

let div = Int64.unsigned_div
let rem = Int64.unsigned_rem

(* [add_overflows a b] is true when the unsigned sum wraps past 2^64. *)
let add_overflows a b =
  let s = Int64.add a b in
  lt s a

(* [in_range ~addr ~size ~base ~length] checks that the [size]-byte access
   starting at [addr] lies entirely within the segment [base, base+length).
   The arithmetic is careful about 2^64 wrap-around: a segment with
   base=0, length=2^64-1 must admit an access at address 2^64-2 of size 1. *)
let in_range ~addr ~size ~base ~length =
  (* Spelled out with primitive ops (xor-flip unsigned comparisons, raw
     subtraction) rather than [le]/[ge] so the native compiler unboxes
     the intermediates: this runs on every capability bounds check. *)
  Int64.logxor size flip <= Int64.logxor length flip
  && Int64.logxor addr flip >= Int64.logxor base flip
  && Int64.logxor (Int64.sub addr base) flip <= Int64.logxor (Int64.sub length size) flip

(* Alignment helpers; [align] must be a power of two. *)
let is_aligned v align = equal (logand v (sub align 1L)) 0L
let align_down v align = logand v (lognot (sub align 1L))

let align_up v align =
  let down = align_down v align in
  if equal down v then v else add down align

(* Smallest power of two >= v (saturating at 2^63 for the model's use on
   allocation sizes, which are far smaller). *)
let round_up_pow2 v =
  if le v 1L then 1L
  else
    let rec go p = if ge p v then p else go (shift_left p 1) in
    go 1L

let pp ppf v = Fmt.pf ppf "0x%Lx" v
let to_string v = Printf.sprintf "0x%Lx" v
