(* Sandboxing unmodified legacy code (Section 5.3).

     dune exec examples/sandbox.exe

   A capability-unaware MIPS blob is loaded into a micro-address space and
   entered with C0/PCC restricted to that region.  Its ordinary loads and
   stores are transparently relocated and bounded; the escape attempt
   below (reading the host's "secret" outside the sandbox) raises a CP2
   exception without the blob being recompiled — the incremental-adoption
   story of Section 4.3. *)

(* The legacy blob: plain MIPS, no capability instructions.  It believes it
   owns a flat address space starting at 0. *)
let legacy_blob =
  {|
  .text 0x80000
entry:
  # normal work, sandbox-relative addresses
  li $t0, 0x100
  li $t1, 1234
  sw $t1, 0($t0)          # scratch store inside the sandbox
  lw $t2, 0($t0)

  # escape attempt: read absolute 0x40000 (the host secret)
  lui $t3, 4
  lw $t4, 0($t3)
  break
|}

let secret = 0xC0FFEEL

let () =
  let machine = Machine.create () in
  let kernel = Os.Kernel.attach machine in
  Machine.map_identity machine ~vaddr:0L ~len:(1 lsl 20) Mem.Tlb.prot_rwx;
  (* Host state: a secret value outside the sandbox. *)
  Mem.Phys.write_u64 machine.Machine.phys 0x40000L secret;
  let program = Asm.Assembler.assemble legacy_blob in
  Asm.Assembler.load machine program;
  Fmt.pr "entering sandbox [0x80000, 0x82000) at its entry point...@.";
  let sandbox = Os.Sandbox.enter machine ~base:0x80000L ~length:0x2000L ~entry:0x80000L in
  Os.Kernel.set_fault_handler kernel (fun _k fault ->
      Fmt.pr "%s@." (Os.Sandbox.fault_report sandbox fault);
      Machine.Halt 55);
  let exit_code = Machine.run ~max_insns:10_000L machine in
  Os.Sandbox.leave machine sandbox;
  (* The in-sandbox store was relocated: sandbox-relative 0x100 landed at
     physical 0x80100, not 0x100. *)
  let relocated = Mem.Phys.read_u32 machine.Machine.phys 0x80100L in
  let host_0x100 = Mem.Phys.read_u32 machine.Machine.phys 0x100L in
  Fmt.pr "exit code: %d (55 = confined by the CP2 exception)@." exit_code;
  Fmt.pr "sandbox store landed at 0x80100 = %d (host 0x100 untouched: %d)@." relocated
    host_0x100;
  Fmt.pr "escape register $t4 = 0x%Lx (the secret 0x%Lx was never read)@."
    (Machine.gpr machine 11) secret;
  assert (exit_code = 55);
  assert (relocated = 1234 && host_0x100 = 0)
