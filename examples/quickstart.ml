(* Quickstart: boot the CHERI machine, run a capability-aware program, and
   watch the hardware catch an out-of-bounds access.

     dune exec examples/quickstart.exe

   The program derives a bounded capability for a 64-byte buffer with
   CIncBase/CSetLen, uses it for stores and loads, and then walks one byte
   past the end — raising a CP2 length-violation exception that the kernel
   model reports. *)

let program =
  {|
# -- a capability-aware routine: fill a buffer through a bounded capability
main:
  la $t0, buffer
  cincbase $c1, $c0, $t0      # c1 = capability based at `buffer`
  li $t1, 64
  csetlen $c1, $c1, $t1       # ... 64 bytes long
  li $t2, 0xD                 # Global|Load|Store: drop everything else
  candperm $c1, $c1, $t2

  # fill the buffer via the capability (hardware bounds checks, free)
  li $t3, 0                   # index
fill:
  csd $t3, $t3, 0($c1)        # buffer[i] = i, checked by CP2
  daddiu $t3, $t3, 8
  sltiu $at, $t3, 64
  bnez $at, fill

  # read one value back and print it
  li $t3, 24
  cld $a0, $t3, 0($c1)
  li $v0, 7                   # print_int
  syscall

  # now walk off the end: buffer[64] -- the CP2 traps
  li $t3, 64
  cld $a0, $t3, 0($c1)

  li $v0, 1                   # (never reached)
  li $a0, 0
  syscall

  .data
  .align 5
buffer: .space 128
|}

let () =
  let machine = Machine.create () in
  let kernel = Os.Kernel.attach machine in
  Os.Kernel.set_fault_handler kernel (fun _k fault ->
      Fmt.pr "CP2 exception at pc=0x%Lx: %s (capability register C%d)@."
        fault.Os.Kernel.pc
        (Cap.Cause.to_string fault.Os.Kernel.capcause)
        fault.Os.Kernel.capreg;
      Machine.Halt 42);
  let exit_code, console = Os.Kernel.run_program kernel program in
  Fmt.pr "console output: %s@." (String.trim console);
  Fmt.pr "exit code: %d (42 = our fault handler ran)@." exit_code;
  Fmt.pr "cycles: %d, instructions: %d@." machine.Machine.cycles machine.Machine.instret;
  assert (exit_code = 42)
