(* trace-smoke: the cycle-timestamped causal trace as a standing test
   (`dune build @trace-smoke`, pulled into `dune runtest`).

   One 5000-request traced sweep (N=2, both isolation modes, 1-in-8
   stride sampling, a 25k-retirement counter series, wall clocks off);
   the request count exceeds one chunk so the shard-in-order timestamp
   merge is exercised.  Oracles:

     - determinism: the Chrome trace-event JSON and the cheri-obs-trace/1
       digest are byte-identical for --jobs 1 vs 3 and for either
       interpreter engine;
     - validity: every (pid, tid) track has strictly increasing
       timestamps and balanced B/E nesting (Perfetto-loadable by
       construction);
     - causality: per point, the request spans on the timeline sum to
       exactly the simulated latencies of the sampled requests — and in
       a stride-1 run, to the point's total counter-file cycles;
     - zero perturbation: an untraced run of the same sweep produces a
       byte-identical cheri-serve/2 report (same counters, latencies,
       digests — the collector never touches architectural state);
     - the committed baseline: the cheri-obs-trace/1 export must diff
       clean against bench/baselines/TRACE_obs.json.

   After an intentional behaviour change, regenerate the baseline with

     dune exec test/trace_smoke.exe -- --write bench/baselines/TRACE_obs.json
*)

let fail fmt = Fmt.kstr (fun s -> prerr_endline ("trace-smoke: " ^ s); exit 1) fmt

let trace_cfg = { Serve.Sweep.stride = 8; capacity = 1 lsl 14; series = Some 25_000 }

let cfg ?(engine = Machine.Superblock) jobs =
  {
    Serve.Sweep.default_cfg with
    Serve.Sweep.requests = 5000;
    ns = [ 2 ];
    engine;
    jobs;
    no_wall = true;
    trace = Some trace_cfg;
  }

(* --- Chrome trace-event validation ----------------------------------------- *)

let str name e =
  match Obs.Json.member name e with
  | Some (Obs.Json.String s) -> s
  | _ -> fail "trace event lacks string field %S" name

let int_field name e =
  match Option.bind (Obs.Json.member name e) Obs.Json.to_int_opt with
  | Some v -> Int64.to_int v
  | None -> fail "trace event lacks integer field %S" name

let events_of doc =
  match Obs.Json.member "traceEvents" doc with
  | Some (Obs.Json.List l) -> l
  | _ -> fail "chrome document lacks a traceEvents list"

(* Strictly increasing timestamps per (pid, tid) track and balanced B/E
   nesting.  [allow_contiguous] permits a B at the timestamp of the
   preceding E on the same track — back-to-back spans, which stride-1
   request sampling produces by construction. *)
let validate_chrome ~allow_contiguous doc =
  let last : (int * int, int * string) Hashtbl.t = Hashtbl.create 16 in
  let depth : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  let counter_last : (int * string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let ph = str "ph" e in
      let pid = int_field "pid" e in
      match ph with
      | "M" -> ()
      | "C" ->
          let key = (pid, str "name" e) in
          let ts = int_field "ts" e in
          (match Hashtbl.find_opt counter_last key with
          | Some prev when prev >= ts ->
              fail "counter track (%d, %s): ts %d after %d" pid (snd key) ts prev
          | _ -> ());
          Hashtbl.replace counter_last key ts
      | "B" | "E" | "i" ->
          let tid = int_field "tid" e in
          let ts = int_field "ts" e in
          (match Hashtbl.find_opt last (pid, tid) with
          | Some (prev, prev_ph) ->
              let ok =
                ts > prev || (allow_contiguous && ts = prev && prev_ph = "E" && ph = "B")
              in
              if not ok then
                fail "track (%d, %d): ts %d (%s) does not advance past %d (%s)" pid tid ts ph
                  prev prev_ph
          | None -> ());
          Hashtbl.replace last (pid, tid) (ts, ph);
          let d = Option.value (Hashtbl.find_opt depth (pid, tid)) ~default:0 in
          (match ph with
          | "B" -> Hashtbl.replace depth (pid, tid) (d + 1)
          | "E" ->
              if d = 0 then fail "track (%d, %d): E with no open B at ts %d" pid tid ts;
              Hashtbl.replace depth (pid, tid) (d - 1)
          | _ -> ())
      | ph -> fail "unexpected event phase %S" ph)
    (events_of doc);
  Hashtbl.iter
    (fun (pid, tid) d -> if d <> 0 then fail "track (%d, %d): %d unclosed B events" pid tid d)
    depth

(* Sum of request-span durations (tid 1) per pid, from the exported
   document — the exporter-side view of the sampled latencies. *)
let request_span_sums doc =
  let sums : (int, int) Hashtbl.t = Hashtbl.create 4 in
  let open_b : (int, int) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun e ->
      let ph = str "ph" e in
      if (ph = "B" || ph = "E") && int_field "tid" e = 1 then begin
        let pid = int_field "pid" e in
        let ts = int_field "ts" e in
        match ph with
        | "B" -> Hashtbl.replace open_b pid ts
        | _ ->
            let b =
              match Hashtbl.find_opt open_b pid with
              | Some b -> b
              | None -> fail "pid %d: request E without B" pid
            in
            Hashtbl.remove open_b pid;
            Hashtbl.replace sums pid (Option.value (Hashtbl.find_opt sums pid) ~default:0 + (ts - b))
      end)
    (events_of doc);
  sums

let check_request_sums ~label cfg (r : Serve.Sweep.result) =
  let doc = Serve.Sweep.chrome_json r in
  let sums = request_span_sums doc in
  List.iteri
    (fun i (pr : Serve.Sweep.point_result) ->
      let expected = ref 0 in
      Array.iteri
        (fun abs_id lat -> if Serve.Sweep.traced_request cfg abs_id then expected := !expected + lat)
        pr.Serve.Sweep.latencies;
      let got = Option.value (Hashtbl.find_opt sums (i + 1)) ~default:0 in
      if got <> !expected then
        fail "%s %s: request spans sum to %d cycles, sampled latencies to %d" label
          (Serve.Sweep.point_name pr.Serve.Sweep.point)
          got !expected)
    r.Serve.Sweep.points

let () =
  match Sys.argv with
  | [| _; "--write"; path |] ->
      let r = Serve.Sweep.run (cfg 1) in
      if not r.Serve.Sweep.digests_match then fail "digest mismatch across isolation modes";
      Obs.Json.to_file path (Serve.Sweep.trace_obs_json r);
      Printf.printf "trace-smoke: wrote baseline %s\n" path
  | [| _; baseline_path |] -> (
      let r = Serve.Sweep.run (cfg 1) in
      if not r.Serve.Sweep.digests_match then fail "digest mismatch across isolation modes";
      let chrome = Obs.Json.to_string (Serve.Sweep.chrome_json r) in
      let tobs = Obs.Json.to_string (Serve.Sweep.trace_obs_json r) in
      (* Determinism: --jobs and engine must not move a byte. *)
      let r3 = Serve.Sweep.run (cfg 3) in
      if not (String.equal chrome (Obs.Json.to_string (Serve.Sweep.chrome_json r3))) then
        fail "3-domain chrome trace differs from sequential";
      if not (String.equal tobs (Obs.Json.to_string (Serve.Sweep.trace_obs_json r3))) then
        fail "3-domain trace digest differs from sequential";
      let rp = Serve.Sweep.run (cfg ~engine:Machine.Plain 1) in
      if not (String.equal chrome (Obs.Json.to_string (Serve.Sweep.chrome_json rp))) then
        fail "plain-engine chrome trace differs from superblock";
      if not (String.equal tobs (Obs.Json.to_string (Serve.Sweep.trace_obs_json rp))) then
        fail "plain-engine trace digest differs from superblock";
      (* Validity and causality of the exported timeline. *)
      validate_chrome ~allow_contiguous:false (Serve.Sweep.chrome_json r);
      check_request_sums ~label:"stride-8" (cfg 1) r;
      (* Zero perturbation: the untraced sweep must report byte-identical
         counters, latencies, and digests. *)
      let untraced =
        Serve.Sweep.run { (cfg 1) with Serve.Sweep.trace = None }
      in
      if
        not
          (String.equal
             (Obs.Json.to_string (Serve.Sweep.to_json r))
             (Obs.Json.to_string (Serve.Sweep.to_json untraced)))
      then fail "tracing perturbed the sweep report";
      (* Stride 1: every request sampled, so the request spans must sum
         to the point's total counter-file cycles. *)
      let mini_cfg =
        {
          Serve.Sweep.default_cfg with
          Serve.Sweep.requests = 512;
          ns = [ 1 ];
          no_wall = true;
          trace = Some { Serve.Sweep.stride = 1; capacity = 1 lsl 13; series = None };
        }
      in
      let mini = Serve.Sweep.run mini_cfg in
      validate_chrome ~allow_contiguous:true (Serve.Sweep.chrome_json mini);
      check_request_sums ~label:"stride-1" mini_cfg mini;
      let mini_sums = request_span_sums (Serve.Sweep.chrome_json mini) in
      List.iteri
        (fun i (pr : Serve.Sweep.point_result) ->
          let total =
            Int64.to_int (Obs.Counters.get pr.Serve.Sweep.counters Obs.Counters.cycles)
          in
          let got = Option.value (Hashtbl.find_opt mini_sums (i + 1)) ~default:0 in
          if got <> total then
            fail "stride-1 %s: request spans sum to %d cycles, counter file says %d"
              (Serve.Sweep.point_name pr.Serve.Sweep.point)
              got total)
        mini.Serve.Sweep.points;
      (* The committed baseline: exact architectural diff. *)
      match Obs.Baseline.load baseline_path with
      | Error msg -> fail "%s" msg
      | Ok committed -> (
          match Obs.Baseline.of_string tobs with
          | Error msg -> fail "live trace export does not load: %s" msg
          | Ok live ->
              let report = Obs.Diff.run committed live in
              Fmt.pr "trace-smoke: %s vs live {trace x mono,compart, N=2}@.%a@." baseline_path
                Obs.Diff.pp report;
              exit (Obs.Diff.exit_code report)))
  | _ ->
      Printf.eprintf "usage: trace_smoke (BASELINE.json | --write BASELINE.json)\n";
      exit 2
