(* Tests for the fault-injection subsystem: PRNG and campaign determinism,
   the invariant monitor's oracles, and the satellite claim of the
   robustness experiment — the same single-bit upset in a spilled pointer
   raises a precise capability exception under CHERI but silently corrupts
   data on the unprotected baseline. *)

let heap = Os.Layout.heap_base

(* --- PRNG ----------------------------------------------------------------- *)

let test_prng_determinism () =
  let a = Fault.Prng.create 42L and b = Fault.Prng.create 42L in
  for i = 0 to 99 do
    Alcotest.(check int64)
      (Printf.sprintf "draw %d" i)
      (Fault.Prng.next a) (Fault.Prng.next b)
  done;
  let c = Fault.Prng.create 43L in
  Alcotest.(check bool)
    "different seeds diverge" false
    (List.init 8 (fun _ -> Fault.Prng.next a) = List.init 8 (fun _ -> Fault.Prng.next c))

let test_prng_bounds () =
  let p = Fault.Prng.create 7L in
  for _ = 0 to 999 do
    let v = Fault.Prng.int p 31 in
    if v < 0 || v >= 31 then Alcotest.failf "Prng.int out of bounds: %d" v
  done

(* --- campaign determinism -------------------------------------------------- *)

let small_config mode =
  {
    Fault.Campaign.bench = "treeadd";
    mode;
    seeds = 20;
    base_seed = 1L;
    param = 4;
    sites = Fault.Injector.all_sites;
    monitor = true;
  }

let test_campaign_determinism () =
  let run () =
    let s = Fault.Campaign.run (small_config Fault.Campaign.Cheri) in
    List.map
      (fun (r : Fault.Campaign.record) ->
        (r.Fault.Campaign.seed, r.Fault.Campaign.outcome, r.Fault.Campaign.injection))
      s.Fault.Campaign.records
  in
  let first = run () and second = run () in
  Alcotest.(check bool) "same seeds give identical outcomes" true (first = second)

(* The headline property of the campaign (and of the paper's Sections 3-4):
   the capability machine detects strictly more injected faults than the
   unprotected baseline, and capability exceptions exist only there.  The
   seed set is fixed, so this is a deterministic check, not a statistical
   one. *)
let test_campaign_cheri_exceeds_baseline () =
  (* param 7 gives the fault sites a real working set (127 tree nodes) —
     at toy sizes the stack window dominates and the modes stop
     differentiating. *)
  let cheri =
    Fault.Campaign.run { (small_config Fault.Campaign.Cheri) with seeds = 100; param = 7 }
  in
  let base =
    Fault.Campaign.run { (small_config Fault.Campaign.Baseline) with seeds = 100; param = 7 }
  in
  Alcotest.(check int)
    "baseline never raises a capability exception" 0
    (Fault.Campaign.count base Fault.Campaign.Detected_cap);
  Alcotest.(check bool)
    (Printf.sprintf "cheri detected %.1f%% > baseline %.1f%%"
       (Fault.Campaign.detected_fraction cheri)
       (Fault.Campaign.detected_fraction base))
    true
    (Fault.Campaign.detected_fraction cheri > Fault.Campaign.detected_fraction base)

(* --- invariant monitor ----------------------------------------------------- *)

let test_monitor_clean_on_golden_state () =
  (* A fault-free run must sweep clean: the monitor's oracles hold on every
     legitimately derived state, so any flag it ever raises is caused by an
     injection. *)
  let m = Machine.create () in
  Machine.set_timing m false;
  let k = Os.Kernel.attach m in
  let src = List.assoc "treeadd" Olden.Minic_src.all in
  let asm =
    Minic.Driver.compile ~mode:Minic.Layout.Cheri
      (Olden.Minic_src.instantiate ~iters:1 src ~param:4)
  in
  let code, _ = Os.Kernel.run_program ~max_insns:10_000_000L k asm in
  Alcotest.(check int) "golden exit" 0 code;
  let root = Cap.Capability.make ~perms:Cap.Perms.all ~base:0L ~length:k.Os.Kernel.user_top in
  let violations =
    Fault.Monitor.check ~root m ~base:heap ~len:(Int64.sub k.Os.Kernel.brk heap)
  in
  Alcotest.(check int) "no violations on golden state" 0 (List.length violations)

let test_monitor_flags_forged_tag () =
  let m = Machine.create () in
  (* Plain data on a heap line: the words that decode as base and length
     sum past 2^64, which no derivable capability's bounds can. *)
  Mem.Phys.write_u64 m.Machine.phys heap 0xDEAD_BEEF_DEAD_BEEFL;
  Mem.Phys.write_u64 m.Machine.phys (Int64.add heap 16L) 0xDEAD_BEEF_DEAD_BEEFL;
  Mem.Phys.write_u64 m.Machine.phys (Int64.add heap 24L) 0xFFFF_FFFF_FFFF_FFFFL;
  Alcotest.(check int) "clean before the flip" 0
    (List.length (Fault.Monitor.check_memory m ~base:heap ~len:32L));
  (* ...then a tag-bit upset forges a "capability" over it. *)
  Mem.Tags.set m.Machine.tags heap true;
  let violations = Fault.Monitor.check_memory m ~base:heap ~len:32L in
  Alcotest.(check bool) "forged tag is flagged" true (violations <> []);
  Alcotest.(check bool) "includes the tag-integrity oracle" true
    (List.exists (fun (v : Fault.Monitor.violation) -> v.Fault.Monitor.oracle = "tag-integrity") violations)

let test_monitor_flags_nonmonotonic_register () =
  let m = Machine.create () in
  (* A root covering only the low megabyte... *)
  let root = Cap.Capability.make ~perms:Cap.Perms.all ~base:0L ~length:0x10_0000L in
  (* ...and a register claiming more than the root delegates. *)
  Machine.set_cap m 5 (Cap.Capability.make ~perms:Cap.Perms.all ~base:0L ~length:0x20_0000L);
  let violations = Fault.Monitor.check_regs ~root m in
  Alcotest.(check bool) "monotonicity violation flagged" true
    (List.exists
       (fun (v : Fault.Monitor.violation) ->
         v.Fault.Monitor.oracle = "monotonicity" && v.Fault.Monitor.subject = "register c5")
       violations)

(* --- check_memory window rounding ------------------------------------------ *)

(* Regressions for the sweep-window arithmetic: [base, base+len) must be
   covered in full.  The old code floored both ends, so a partial tail
   line — or a window whose unaligned base pushed its end past the last
   whole line — escaped the sweep entirely. *)

let forge_line m addr =
  (* An invalid capability image (unsealed but otype=1) under a forged
     tag: flags word bit 32 is the otype field's low bit. *)
  Mem.Phys.write_u64 m.Machine.phys addr (Int64.shift_left 1L 32);
  Mem.Tags.set m.Machine.tags addr true

let test_monitor_window_partial_tail () =
  let m = Machine.create () in
  let g = Int64.of_int (Mem.Tags.granularity m.Machine.tags) in
  (* Bad line starts at 2g; the window [0, 2g+8) only reaches 8 bytes into
     it, but those bytes are tagged and must be swept. *)
  forge_line m (Int64.add heap (Int64.mul 2L g));
  let violations =
    Fault.Monitor.check_memory m ~base:heap ~len:(Int64.add (Int64.mul 2L g) 8L)
  in
  Alcotest.(check bool) "partial tail line is swept" true (violations <> [])

let test_monitor_window_unaligned_base () =
  let m = Machine.create () in
  let g = Int64.of_int (Mem.Tags.granularity m.Machine.tags) in
  (* Bad line at heap+g; window starts 8 bytes into the previous line and
     spans g bytes, so it ends 8 bytes into the bad line. *)
  forge_line m (Int64.add heap g);
  let violations = Fault.Monitor.check_memory m ~base:(Int64.add heap 8L) ~len:g in
  Alcotest.(check bool) "unaligned base still reaches the last line" true (violations <> [])

(* --- seeded oracle violations ----------------------------------------------- *)

(* One deliberate violation per oracle, each reported by exactly the
   expected oracle (forged tags over garbage additionally imply
   tag-integrity; that pairing is part of the contract). *)

let oracle_names violations =
  List.sort_uniq compare (List.map (fun (v : Fault.Monitor.violation) -> v.Fault.Monitor.oracle) violations)

let test_oracle_forged_tag_over_data () =
  let m = Machine.create () in
  forge_line m heap;
  let violations = Fault.Monitor.check_memory m ~base:heap ~len:32L in
  Alcotest.(check (list string))
    "well-formed + tag-integrity, nothing else" [ "tag-integrity"; "well-formed" ]
    (oracle_names violations)

let test_oracle_unsealed_with_otype () =
  let m = Machine.create () in
  (* Forge the register value through the serialized form: the public
     constructors cannot build an unsealed capability carrying an otype,
     which is exactly why holding one violates well-formedness. *)
  let b = Bytes.make 32 '\000' in
  Bytes.set_int64_le b 0 (Int64.shift_left 1L 32);
  Bytes.set_int64_le b 24 16L;
  Machine.set_cap m 9 (Cap.Capability.of_bytes ~tag:true b);
  let violations = Fault.Monitor.check_regs m in
  Alcotest.(check (list string)) "well-formed only" [ "well-formed" ] (oracle_names violations);
  Alcotest.(check bool) "names register c9" true
    (List.exists (fun (v : Fault.Monitor.violation) -> v.Fault.Monitor.subject = "register c9") violations)

let test_oracle_unrepresentable_on_w128 () =
  let config = { Machine.default_config with Machine.cap_width = Machine.W128 } in
  let m = Machine.create ~config () in
  (* Fine on the 256-bit machine, but the length exceeds the compressed
     format's 40-bit field. *)
  let c = Cap.Capability.make ~perms:Cap.Perms.all ~base:0L ~length:(Int64.shift_left 1L 45) in
  Alcotest.(check bool) "not representable" false (Cap.Cap128.representable c);
  Machine.set_cap m 9 c;
  let violations = Fault.Monitor.check_regs m in
  Alcotest.(check (list string)) "well-formed only" [ "well-formed" ] (oracle_names violations)

let test_oracle_monotonicity () =
  let m = Machine.create () in
  let root = Cap.Capability.make ~perms:Cap.Perms.all ~base:0L ~length:4096L in
  Machine.set_cap m 9 (Cap.Capability.make ~perms:Cap.Perms.all ~base:0L ~length:8192L);
  let violations = Fault.Monitor.check_regs ~root m in
  Alcotest.(check (list string)) "monotonicity only" [ "monotonicity" ] (oracle_names violations)

(* --- campaign checkpoint/resume --------------------------------------------- *)

let summary_tallies (s : Fault.Campaign.summary) =
  List.map (fun o -> Fault.Campaign.count s o) Fault.Campaign.all_outcomes

let test_campaign_checkpoint_resume () =
  let cfg = small_config Fault.Campaign.Cheri in
  let full = Fault.Campaign.run cfg in
  let path = Filename.temp_file "cheri-fault-ckpt" ".json" in
  (* Interrupt after 8 seeds, then resume to the end. *)
  let _ = Fault.Campaign.run ~checkpoint:path ~checkpoint_every:4 ~stop_after:8 cfg in
  let resumed = Fault.Campaign.run ~checkpoint:path ~resume:true cfg in
  Sys.remove path;
  Alcotest.(check (list int))
    "resumed tallies equal uninterrupted" (summary_tallies full) (summary_tallies resumed)

(* --- seeded bounds corruption: detection vs silent corruption --------------- *)

(* Both programs build a 64-byte object at the heap base, plant 42 at
   offset 48, spill the pointer to heap+128, reload it, and read offset 48
   back.  A step hook models the same single-event upset in the spilled
   pointer in both: one bit of the stored image flips.  Under CHERI the
   flipped bit zeroes the capability's length, so the reload-and-dereference
   raises a precise length-violation exception; on the baseline the flipped
   bit moves the pointer 64 bytes up, so the dereference silently returns
   the decoy value planted there. *)

let run_with_upset ~upset src =
  let m = Machine.create () in
  let k = Os.Kernel.attach m in
  let trapped = ref None in
  Os.Kernel.set_fault_handler k (fun _k f ->
      trapped := Some f.Os.Kernel.capcause;
      Machine.Halt 77);
  let program = Asm.Assembler.assemble src in
  Os.Kernel.exec k program;
  let done_ = ref false in
  Machine.set_step_hook m
    (Some
       (fun m ->
         if (not !done_) && upset m then done_ := true));
  let code = Machine.run ~max_insns:1_000_000L m in
  (code, !trapped, !done_)

let spill = Int64.add heap 128L

let cheri_victim =
  {|
main:
  li $a0, 4096
  li $v0, 3
  syscall                   # map the heap page
  move $t0, $v0
  cincbase $c1, $c0, $t0    # c1 = 64-byte object at the heap base
  li $t1, 64
  csetlen $c1, $c1, $t1
  li $t3, 42
  csd $t3, $zero, 48($c1)   # object[48] = 42
  daddiu $t2, $t0, 128
  cincbase $c2, $c0, $t2    # c2 = the spill slot at heap+128
  li $t1, 32
  csetlen $c2, $c2, $t1
  csc $c1, $zero, 0($c2)    # spill the object capability
  clc $c3, $zero, 0($c2)    # reload it (corrupted in memory by then)
  cld $v1, $zero, 48($c3)   # CHERI: length violation right here
  move $a0, $v1
  li $v0, 1
  syscall
|}

let baseline_victim =
  {|
main:
  li $a0, 4096
  li $v0, 3
  syscall
  move $t0, $v0
  li $t3, 42
  sd $t3, 48($t0)           # object[48] = 42
  li $t4, 7
  sd $t4, 112($t0)          # decoy at heap+64+48
  sd $t0, 128($t0)          # spill the pointer
  ld $t5, 128($t0)          # reload it (corrupted in memory by then)
  ld $v1, 48($t5)           # baseline: silently reads the decoy
  move $a0, $v1
  li $v0, 1
  syscall
|}

let test_bounds_corruption_cheri_traps () =
  (* Fire once the capability image lands in the spill slot (its line's tag
     is set), then flip bit 6 of the length word: 64 becomes 0. *)
  let upset m =
    if Mem.Tags.get m.Machine.tags spill then begin
      let len_addr = Int64.add spill 24L in
      Mem.Phys.write_u64 m.Machine.phys len_addr
        (Int64.logxor (Mem.Phys.read_u64 m.Machine.phys len_addr) 64L);
      true
    end
    else false
  in
  let code, trapped, fired = run_with_upset ~upset cheri_victim in
  Alcotest.(check bool) "upset fired" true fired;
  Alcotest.(check int) "killed by the fault handler" 77 code;
  match trapped with
  | Some Cap.Cause.Length_violation -> ()
  | Some c -> Alcotest.failf "wrong capability cause: %s" (Cap.Cause.to_string c)
  | None -> Alcotest.fail "no capability exception raised"

let test_bounds_corruption_baseline_silent () =
  (* The same upset shape on the legacy layout: flip bit 6 of the spilled
     pointer once it is in memory, moving it from heap+0 to heap+64. *)
  let upset m =
    if Mem.Phys.read_u64 m.Machine.phys spill = heap then begin
      Mem.Phys.write_u64 m.Machine.phys spill (Int64.logxor heap 64L);
      true
    end
    else false
  in
  let code, trapped, fired = run_with_upset ~upset baseline_victim in
  Alcotest.(check bool) "upset fired" true fired;
  Alcotest.(check bool) "no trap of any kind" true (trapped = None);
  Alcotest.(check int) "exits normally with corrupt data" 7 code

let suites =
  [
    ( "fault",
      [
        Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
        Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
        Alcotest.test_case "campaign determinism" `Quick test_campaign_determinism;
        Alcotest.test_case "cheri detects more than baseline" `Quick
          test_campaign_cheri_exceeds_baseline;
        Alcotest.test_case "monitor clean on golden state" `Quick test_monitor_clean_on_golden_state;
        Alcotest.test_case "monitor flags forged tag" `Quick test_monitor_flags_forged_tag;
        Alcotest.test_case "monitor flags non-monotonic register" `Quick
          test_monitor_flags_nonmonotonic_register;
        Alcotest.test_case "sweep window covers partial tail line" `Quick
          test_monitor_window_partial_tail;
        Alcotest.test_case "sweep window survives unaligned base" `Quick
          test_monitor_window_unaligned_base;
        Alcotest.test_case "oracle: forged tag over plain data" `Quick
          test_oracle_forged_tag_over_data;
        Alcotest.test_case "oracle: unsealed capability with otype" `Quick
          test_oracle_unsealed_with_otype;
        Alcotest.test_case "oracle: unrepresentable on w128" `Quick
          test_oracle_unrepresentable_on_w128;
        Alcotest.test_case "oracle: monotonicity against the root" `Quick test_oracle_monotonicity;
        Alcotest.test_case "campaign checkpoint/resume equivalence" `Quick
          test_campaign_checkpoint_resume;
        Alcotest.test_case "bounds corruption traps under cheri" `Quick
          test_bounds_corruption_cheri_traps;
        Alcotest.test_case "bounds corruption silent on baseline" `Quick
          test_bounds_corruption_baseline_silent;
      ] );
  ]
