(* regress-smoke: the differential regression harness as a standing
   test.  Runs a tiny fixed set of Olden kernels (treeadd param 6 in all
   three pointer modes — seconds, not the full fig4 sweep) via the same
   Exp.Obs_bench definition `bench --json` uses, rebuilds the live
   baseline in memory, and diffs it against the committed
   `bench/baselines/SMOKE_obs.json` with the default exact-match policy:
   any architectural counter drift — instret, cycles, cache/TLB/tag
   events, capability mix, span aggregates — fails `dune runtest`.

     dune build @regress-smoke                 # just this check
     dune exec test/regress_smoke.exe -- --write bench/baselines/SMOKE_obs.json
                                               # regenerate after an
                                               # intentional change

   Wall-clock fields are still recorded (so the committed file doubles
   as a throughput snapshot) but only ever flagged, never fatal: the
   file travels across hosts. *)

let entries () =
  try Exp.Obs_bench.smoke_entries ()
  with Exp.Obs_bench.Run_failed _ as e ->
    Printf.eprintf "regress-smoke: %s\n" (Printexc.to_string e);
    exit 2

let () =
  match Sys.argv with
  | [| _; "--write"; path |] ->
      Obs.Export.write_file path (entries ());
      Printf.printf "regress-smoke: wrote baseline %s\n" path
  | [| _; baseline_path |] -> (
      match Obs.Baseline.load baseline_path with
      | Error msg ->
          Printf.eprintf "regress-smoke: %s\n" msg;
          exit 2
      | Ok committed ->
          let live = Obs.Baseline.of_entries (entries ()) in
          let report = Obs.Diff.run committed live in
          Fmt.pr "regress-smoke: %s vs live {%s x %s, param %d}@.%a@." baseline_path
            Exp.Obs_bench.smoke_bench
            (String.concat "," (List.map Minic.Layout.mode_name Exp.Fig4.modes))
            Exp.Obs_bench.smoke_param Obs.Diff.pp report;
          exit (Obs.Diff.exit_code report))
  | _ ->
      Printf.eprintf "usage: regress_smoke (BASELINE.json | --write BASELINE.json)\n";
      exit 2
