(* regress-smoke: the differential regression harness as a standing
   test.  Runs a tiny fixed set of Olden kernels (treeadd param 6 in all
   three pointer modes — seconds, not the full fig4 sweep), rebuilds the
   live baseline in memory, and diffs it against the committed
   `bench/baselines/SMOKE_obs.json` with the default exact-match policy:
   any architectural counter drift — instret, cycles, cache/TLB/tag
   events, capability mix, span aggregates — fails `dune runtest`.

     dune build @regress-smoke                 # just this check
     dune exec test/regress_smoke.exe -- --write bench/baselines/SMOKE_obs.json
                                               # regenerate after an
                                               # intentional change

   Wall-clock fields are still recorded (so the committed file doubles
   as a throughput snapshot) but only ever flagged, never fatal: the
   file travels across hosts. *)

let modes = [ Minic.Layout.Legacy; Minic.Layout.Softcheck; Minic.Layout.Cheri ]
let bench = "treeadd"
let param = 6

let entries () =
  let source = List.assoc bench Olden.Minic_src.all in
  List.map
    (fun mode ->
      (* The probe mirrors bench/main.exe: capability/branch classes live
         in the counter file only when a probe is attached. *)
      let probe = Obs.Probe.create () in
      let t0 = Unix.gettimeofday () in
      let r = Exp.Bench_run.run ~probe ~bench ~mode ~param source in
      let wall_s = Unix.gettimeofday () -. t0 in
      if r.Exp.Bench_run.exit_code <> 0 then begin
        Printf.eprintf "regress-smoke: %s/%s exited %d\n" bench (Minic.Layout.mode_name mode)
          r.Exp.Bench_run.exit_code;
        exit 2
      end;
      {
        Obs.Export.bench;
        mode = Minic.Layout.mode_name mode;
        param;
        wall_s;
        counters = r.Exp.Bench_run.counters;
        spans = r.Exp.Bench_run.spans;
      })
    modes

let () =
  match Sys.argv with
  | [| _; "--write"; path |] ->
      Obs.Export.write_file path (entries ());
      Printf.printf "regress-smoke: wrote baseline %s\n" path
  | [| _; baseline_path |] -> (
      match Obs.Baseline.load baseline_path with
      | Error msg ->
          Printf.eprintf "regress-smoke: %s\n" msg;
          exit 2
      | Ok committed ->
          let live = Obs.Baseline.of_entries (entries ()) in
          let report = Obs.Diff.run committed live in
          Fmt.pr "regress-smoke: %s vs live {%s x %s, param %d}@.%a@." baseline_path bench
            (String.concat "," (List.map Minic.Layout.mode_name modes))
            param Obs.Diff.pp report;
          exit (Obs.Diff.exit_code report))
  | _ ->
      Printf.eprintf "usage: regress_smoke (BASELINE.json | --write BASELINE.json)\n";
      exit 2
