(* Standing fuzz smoke test (`dune build @fuzz-smoke`, pulled into
   `dune runtest`): a small seeded campaign in each harness with the
   exact outcome tallies asserted.

   The pinned numbers are a determinism oracle, not a statistical
   expectation: the generator is a pure function of the seed, so any
   drift here means the generator, the machines, or the harness changed
   behaviour — which is exactly what this test exists to surface.  If
   you changed one of those *deliberately*, rerun

     dune exec bin/cheri_fuzz.exe -- --programs 400 --no-wall
     dune exec bin/cheri_fuzz.exe -- --programs 256 --mode cheri --no-wall
     dune exec bin/cheri_fuzz.exe -- --programs 256 --mode engines --no-wall
     dune exec bin/cheri_fuzz.exe -- --programs 256 --mode kernel --no-wall

   and update the constants below. *)

let fail fmt = Fmt.kstr (fun s -> prerr_endline ("fuzz-smoke: " ^ s); exit 1) fmt

let check name (r : Fuzz.Campaign.result) expected_tallies expected_instret =
  if not (Fuzz.Campaign.clean r) then fail "%s: campaign not clean:@.%a" name Fuzz.Campaign.pp r;
  let tallies = Array.to_list r.Fuzz.Campaign.tallies in
  if tallies <> expected_tallies then
    fail "%s: tallies drifted:@.%a" name Fuzz.Campaign.pp r;
  if r.Fuzz.Campaign.instret <> expected_instret then
    fail "%s: instret drifted (%Ld, want %Ld)" name r.Fuzz.Campaign.instret expected_instret;
  Fmt.pr "fuzz-smoke: %s ok (%d programs, %Ld instret)@." name r.Fuzz.Campaign.programs_done
    r.Fuzz.Campaign.instret

let () =
  (* outcome_keys order: ok trap-cap trap-other monitor hang rep-divergence mismatch *)
  check "lockstep/400"
    (Fuzz.Campaign.run ~wall:false
       { Fuzz.Campaign.default with Fuzz.Campaign.programs = 400 })
    [ 213L; 90L; 0L; 0L; 0L; 97L; 0L ]
    7153L;
  check "cheri/256"
    (Fuzz.Campaign.run ~wall:false
       {
         Fuzz.Campaign.default with
         Fuzz.Campaign.mode = Fuzz.Campaign.Cheri;
         programs = 256;
         wide = false;
       })
    [ 171L; 85L; 0L; 0L; 0L; 0L; 0L ]
    5356L;
  (* Engine differential: superblock vs plain on identical W256 machines
     with timing on — any tally here other than agreement-by-class would
     be an engine bug, and [check] already rejects unclean campaigns. *)
  check "engines/256"
    (Fuzz.Campaign.run ~wall:false
       {
         Fuzz.Campaign.default with
         Fuzz.Campaign.mode = Fuzz.Campaign.Engines;
         programs = 256;
       })
    [ 186L; 70L; 0L; 0L; 0L; 0L; 0L ]
    5460L;
  (* Kernel protected-call surface (Fuzz.Kfuzz): scenario ops against the
     pure CCall/CReturn contract model.  outcome_keys order: entered
     refused-tag refused-seal refused-type returned empty-return
     mismatch. *)
  let kr =
    Fuzz.Kfuzz.run ~wall:false { Fuzz.Kfuzz.default with Fuzz.Kfuzz.programs = 256 }
  in
  if not (Fuzz.Kfuzz.clean kr) then fail "kernel/256: campaign not clean:@.%a" Fuzz.Kfuzz.pp kr;
  let ktallies = Array.to_list kr.Fuzz.Kfuzz.tallies in
  if ktallies <> [ 2099L; 663L; 694L; 701L; 1713L; 274L; 0L ] then
    fail "kernel/256: tallies drifted:@.%a" Fuzz.Kfuzz.pp kr;
  Fmt.pr "fuzz-smoke: kernel/256 ok (%d scenarios)@." kr.Fuzz.Kfuzz.programs_done
