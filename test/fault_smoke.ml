(* fault-smoke: a 20-injection treeadd campaign in both pointer modes,
   run under `dune runtest` via the fault-smoke alias.  It is the cheap
   end-to-end check that the fault subsystem stays alive: the campaign
   must complete without an escaping exception, be reproducible, and the
   capability machine must never detect *less* than the unprotected
   baseline.  (The strict-dominance property is asserted at a larger seed
   count in test_fault.ml; 20 seeds keep this smoke test instant.) *)

let config mode =
  {
    Fault.Campaign.bench = "treeadd";
    mode;
    seeds = 20;
    base_seed = 1L;
    param = 5;
    sites = Fault.Injector.all_sites;
    monitor = true;
  }

let () =
  let run mode = Fault.Campaign.run (config mode) in
  let cheri = run Fault.Campaign.Cheri in
  let base = run Fault.Campaign.Baseline in
  Fault.Campaign.print_table [ base; cheri ];
  let cheri' = run Fault.Campaign.Cheri in
  let outcomes (s : Fault.Campaign.summary) =
    List.map (fun (r : Fault.Campaign.record) -> r.Fault.Campaign.outcome) s.Fault.Campaign.records
  in
  if outcomes cheri <> outcomes cheri' then begin
    prerr_endline "fault-smoke: campaign is not reproducible for a fixed seed set";
    exit 1
  end;
  if Fault.Campaign.detected_fraction cheri < Fault.Campaign.detected_fraction base then begin
    Printf.eprintf "fault-smoke: cheri detected %.1f%% < baseline %.1f%%\n"
      (Fault.Campaign.detected_fraction cheri)
      (Fault.Campaign.detected_fraction base);
    exit 1
  end;
  print_endline "fault-smoke: ok"
