(* Tests for the multi-compartment request-serving subsystem (lib/serve):
   workload generator determinism and classification, scenario unit
   builds, and the server request paths — served, router-rejected, and
   capability-trap-rejected — in both isolation modes. *)

let default_mix = Serve.Workload.default_mix

(* --- workload ------------------------------------------------------------- *)

let test_workload_deterministic () =
  let gen () =
    Serve.Workload.gen_chunk ~mix:default_mix ~base_seed:7L ~index:3 ~count:512
  in
  Alcotest.(check bool) "same seed, same chunk" true (gen () = gen ());
  let other = Serve.Workload.gen_chunk ~mix:default_mix ~base_seed:7L ~index:4 ~count:512 in
  Alcotest.(check bool) "different index, different chunk" true (gen () <> other)

let test_workload_classification () =
  let reqs = Serve.Workload.gen_chunk ~mix:default_mix ~base_seed:7L ~index:0 ~count:2048 in
  let count e =
    Array.fold_left (fun n r -> if Serve.Workload.expected r = e then n + 1 else n) 0 reqs
  in
  let served = count Serve.Workload.Expect_served in
  let kind = count Serve.Workload.Expect_reject_kind in
  let trap = count Serve.Workload.Expect_reject_trap in
  Alcotest.(check int) "partition" 2048 (served + kind + trap);
  (* ~1/32 malformed, split between the two classes. *)
  Alcotest.(check bool) "some bad kinds" true (kind > 0);
  Alcotest.(check bool) "some lying headers" true (trap > 0);
  Alcotest.(check bool) "mostly well-formed" true (served > 1850);
  Array.iter
    (fun (r : Serve.Workload.request) ->
      Alcotest.(check bool) "actual_len positive" true (r.Serve.Workload.actual_len >= 1);
      Alcotest.(check bool) "actual_len bounded" true
        (r.Serve.Workload.actual_len <= default_mix.Serve.Workload.max_words))
    reqs

let test_workload_no_malformed () =
  let mix = { default_mix with Serve.Workload.malformed_denom = 0 } in
  let reqs = Serve.Workload.gen_chunk ~mix ~base_seed:7L ~index:0 ~count:1024 in
  Array.iter
    (fun r ->
      Alcotest.(check bool) "all well-formed" true
        (Serve.Workload.expected r = Serve.Workload.Expect_served))
    reqs

(* --- scenario unit builds -------------------------------------------------- *)

let test_build_unit_layout () =
  List.iter
    (fun isolation ->
      for w = 0 to 2 do
        let u = Serve.Scenario.build_unit ~isolation w in
        let cbase = Int64.of_int (Serve.Scenario.code_base w) in
        (* The veneer must sit exactly at the unit's text base — that is
           where CCall lands (base of the unsealed code capability). *)
        Alcotest.(check bool)
          (u.Serve.Scenario.name ^ ": text at code base")
          true
          (List.exists (fun (a, _) -> a = cbase) u.Serve.Scenario.segments);
        List.iter
          (fun (addr, bytes) ->
            let ok_text =
              Int64.unsigned_compare addr cbase >= 0
              && Int64.unsigned_compare
                   (Int64.add addr (Int64.of_int (String.length bytes)))
                   (Int64.add cbase (Int64.of_int Serve.Scenario.code_len))
                 <= 0
            in
            let dbase = Int64.of_int (Serve.Scenario.data_base w) in
            let ok_data =
              Int64.unsigned_compare addr dbase >= 0
              && Int64.unsigned_compare
                   (Int64.add addr (Int64.of_int (String.length bytes)))
                   (Int64.add dbase (Int64.of_int Serve.Scenario.data_len))
                 <= 0
            in
            Alcotest.(check bool) "segment within the unit's regions" true (ok_text || ok_data))
          u.Serve.Scenario.segments
      done)
    [ Serve.Scenario.Mono; Serve.Scenario.Compart ]

(* --- the server ------------------------------------------------------------ *)

let request ?(kind = 0) ?(declared = 4) ?(actual = 4) ?(route = 0) ?(seed = 99L) () =
  {
    Serve.Workload.kind;
    declared_len = declared;
    actual_len = actual;
    route;
    payload_seed = seed;
  }

let boot isolation n =
  let s = Serve.Server.create ~isolation ~n () in
  Serve.Server.boot s;
  s

let test_serve_and_isolation_equivalence () =
  (* The same requests through both isolation modes must produce the
     same responses: the compartment boundary is invisible to a correct
     client. *)
  let compart = boot Serve.Scenario.Compart 2 and mono = boot Serve.Scenario.Mono 2 in
  for route = 0 to 3 do
    let req = request ~kind:route ~route ~seed:(Int64.of_int (route * 17)) () in
    let rc, _ = Serve.Server.serve_one compart req in
    let rm, _ = Serve.Server.serve_one mono req in
    (match rc with
    | Serve.Server.Served _ -> ()
    | _ -> Alcotest.fail "compartment request not served");
    Alcotest.(check bool) "responses agree across isolation" true (rc = rm)
  done;
  let k = Serve.Server.kernel compart in
  Alcotest.(check int) "one crossing per request" 4 k.Os.Kernel.ccalls;
  Alcotest.(check int) "every crossing returned" 4 k.Os.Kernel.creturns;
  Alcotest.(check int) "stack drained" 0 (Os.Kernel.trusted_stack_depth k)

let test_reject_bad_kind () =
  let s = boot Serve.Scenario.Compart 2 in
  let r, _ = Serve.Server.serve_one s (request ~kind:9 ()) in
  Alcotest.(check bool) "router bounces it" true (r = Serve.Server.Rejected_kind);
  let k = Serve.Server.kernel s in
  Alcotest.(check int) "no domain crossing" 0 k.Os.Kernel.ccalls

let test_reject_lying_header () =
  (* declared_len > actual_len: the router bounds the payload capability
     to the received words, so the worker's over-read traps inside the
     compartment with a length violation — and the server loop
     survives. *)
  let s = boot Serve.Scenario.Compart 2 in
  let r, _ = Serve.Server.serve_one s (request ~declared:12 ~actual:4 ()) in
  (match r with
  | Serve.Server.Rejected_trap (_, cause) ->
      Alcotest.(check string) "length violation"
        (Cap.Cause.to_string Cap.Cause.Length_violation)
        (Cap.Cause.to_string cause)
  | _ -> Alcotest.fail "lying header not trapped");
  let k = Serve.Server.kernel s in
  Alcotest.(check int) "trap unwound the trusted stack" 0 (Os.Kernel.trusted_stack_depth k);
  (* The server keeps serving after the trap. *)
  match Serve.Server.serve_one s (request ()) with
  | Serve.Server.Served _, _ -> ()
  | _ -> Alcotest.fail "server loop did not survive the trap"

let test_counters_flow () =
  let s = boot Serve.Scenario.Compart 1 in
  let before = Serve.Server.counters s in
  (match Serve.Server.serve_one s (request ()) with
  | Serve.Server.Served _, _ -> ()
  | _ -> Alcotest.fail "request not served");
  let d = Obs.Counters.diff (Serve.Server.counters s) before in
  Alcotest.(check int64) "one ccall" 1L (Obs.Counters.get d Obs.Counters.ccalls);
  Alcotest.(check int64) "one creturn" 1L (Obs.Counters.get d Obs.Counters.creturns);
  Alcotest.(check int64) "one context save" 1L (Obs.Counters.get d Obs.Counters.ctx_saves);
  Alcotest.(check int64) "one context restore" 1L (Obs.Counters.get d Obs.Counters.ctx_restores)

(* The empty-sample guard: percentiles of no observations are 0, and a
   sweep whose every request is malformed (no served latencies anywhere
   in a class) must complete without raising. *)
let test_percentile_empty () =
  Alcotest.(check int) "p50 of nothing" 0 (Serve.Sweep.percentile [||] 0.50);
  Alcotest.(check int) "p99 of nothing" 0 (Serve.Sweep.percentile [||] 0.99);
  Alcotest.(check int) "p50 of one" 7 (Serve.Sweep.percentile [| 7 |] 0.50)

let test_all_malformed_sweep () =
  let cfg =
    {
      Serve.Sweep.default_cfg with
      Serve.Sweep.requests = 256;
      mix = { Serve.Workload.default_mix with Serve.Workload.malformed_denom = 1 };
      ns = [ 1 ];
      no_wall = true;
    }
  in
  let r = Serve.Sweep.run cfg in
  Alcotest.(check bool) "digests match" true r.Serve.Sweep.digests_match;
  List.iter
    (fun (pr : Serve.Sweep.point_result) ->
      Alcotest.(check int) "nothing served" 0 pr.Serve.Sweep.served;
      Alcotest.(check int) "all rejected" 256
        (pr.Serve.Sweep.rejected_kind + pr.Serve.Sweep.rejected_trap))
    r.Serve.Sweep.points;
  (* The report renders (percentiles over empty served classes included)
     without raising. *)
  ignore (Obs.Json.to_string (Serve.Sweep.to_json r));
  ignore (Fmt.str "%a" Serve.Sweep.pp_result r)

(* Attaching the trace collector and the counter series must not move a
   single architectural number. *)
let test_trace_zero_perturbation () =
  let base =
    {
      Serve.Sweep.default_cfg with
      Serve.Sweep.requests = 128;
      ns = [ 2 ];
      no_wall = true;
    }
  in
  let traced =
    {
      base with
      Serve.Sweep.trace =
        Some { Serve.Sweep.stride = 4; capacity = 1 lsl 12; series = Some 10_000 };
    }
  in
  let plain = Serve.Sweep.run base and r = Serve.Sweep.run traced in
  Alcotest.(check string) "report identical"
    (Obs.Json.to_string (Serve.Sweep.to_json plain))
    (Obs.Json.to_string (Serve.Sweep.to_json r));
  List.iter
    (fun (pr : Serve.Sweep.point_result) ->
      match pr.Serve.Sweep.trace with
      | None -> Alcotest.fail "traced sweep lost its collector"
      | Some tr -> Alcotest.(check bool) "events recorded" true (Obs.Trace.recorded tr > 0))
    r.Serve.Sweep.points

(* The warm-server pool's whole contract: a sweep served by rewinding
   pooled servers ([Server.reset]) must produce byte-identical exports
   to one that cold-boots every chunk — the full cheri-serve report,
   the obs-schema export, the trace digest, and the Chrome document
   (responses, latencies, counters, series, and trace events all ride
   in those four).  6000 requests = two chunks per point, so the second
   chunk of each point really reuses a server the first chunk dirtied. *)
let test_warm_cold_bit_identical () =
  let cfg cold =
    {
      Serve.Sweep.default_cfg with
      Serve.Sweep.requests = 6000;
      ns = [ 2 ];
      no_wall = true;
      cold;
      trace = Some { Serve.Sweep.stride = 8; capacity = 1 lsl 14; series = Some 2000 };
    }
  in
  let rc = Serve.Sweep.run (cfg true) and rw = Serve.Sweep.run (cfg false) in
  Alcotest.(check string) "cheri-serve report identical"
    (Obs.Json.to_string (Serve.Sweep.to_json rc))
    (Obs.Json.to_string (Serve.Sweep.to_json rw));
  Alcotest.(check string) "obs export identical"
    (Obs.Json.to_string (Obs.Export.summary (Serve.Sweep.obs_entries rc)))
    (Obs.Json.to_string (Obs.Export.summary (Serve.Sweep.obs_entries rw)));
  Alcotest.(check string) "trace digest identical"
    (Obs.Json.to_string (Serve.Sweep.trace_obs_json rc))
    (Obs.Json.to_string (Serve.Sweep.trace_obs_json rw));
  Alcotest.(check string) "chrome trace identical"
    (Obs.Json.to_string (Serve.Sweep.chrome_json rc))
    (Obs.Json.to_string (Serve.Sweep.chrome_json rw))

(* [serve_one] routes with [route land (n - 1)]: a non-power-of-two
   worker count would silently misroute, so [create] must refuse it. *)
let test_non_power_of_two_rejected () =
  List.iter
    (fun n ->
      match Serve.Server.create ~isolation:Serve.Scenario.Compart ~n () with
      | _ -> Alcotest.failf "n=%d accepted" n
      | exception Invalid_argument _ -> ())
    [ 3; 5; 6; 7 ];
  match Serve.Server.reset (Serve.Server.create ~isolation:Serve.Scenario.Mono ~n:1 ()) with
  | () -> Alcotest.fail "reset of a never-booted server accepted"
  | exception Invalid_argument _ -> ()

(* The per-request-class histograms partition the stream: the class
   totals sum to the request count, and rejected cells match the
   tallies. *)
let test_class_hists_partition () =
  let cfg =
    { Serve.Sweep.default_cfg with Serve.Sweep.requests = 512; ns = [ 2 ]; no_wall = true }
  in
  let r = Serve.Sweep.run cfg in
  List.iter
    (fun (pr : Serve.Sweep.point_result) ->
      let total =
        Array.fold_left (fun acc h -> acc + Obs.Hist.total h) 0 pr.Serve.Sweep.class_hists
      in
      Alcotest.(check int) "class cells partition the stream" pr.Serve.Sweep.requests total;
      let rejected =
        Array.to_list pr.Serve.Sweep.class_hists
        |> List.filteri (fun i _ -> i mod 2 = 1)
        |> List.fold_left (fun acc h -> acc + Obs.Hist.total h) 0
      in
      Alcotest.(check int) "rejected cells match the tallies"
        (pr.Serve.Sweep.rejected_kind + pr.Serve.Sweep.rejected_trap + pr.Serve.Sweep.abnormal)
        rejected;
      let comp_total =
        Array.fold_left (fun acc h -> acc + Obs.Hist.total h) 0 pr.Serve.Sweep.comp_hists
      in
      Alcotest.(check int) "compartment cells cover all routed requests"
        (pr.Serve.Sweep.requests - pr.Serve.Sweep.rejected_kind)
        comp_total)
    r.Serve.Sweep.points

let suites =
  [
    ( "serve-workload",
      [
        Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
        Alcotest.test_case "classification" `Quick test_workload_classification;
        Alcotest.test_case "malformed off" `Quick test_workload_no_malformed;
      ] );
    ( "serve-server",
      [
        Alcotest.test_case "unit layout" `Quick test_build_unit_layout;
        Alcotest.test_case "isolation equivalence" `Quick test_serve_and_isolation_equivalence;
        Alcotest.test_case "reject bad kind" `Quick test_reject_bad_kind;
        Alcotest.test_case "reject lying header" `Quick test_reject_lying_header;
        Alcotest.test_case "counters flow" `Quick test_counters_flow;
      ] );
    ( "serve-sweep",
      [
        Alcotest.test_case "percentile of empty" `Quick test_percentile_empty;
        Alcotest.test_case "all-malformed sweep" `Quick test_all_malformed_sweep;
        Alcotest.test_case "trace zero perturbation" `Quick test_trace_zero_perturbation;
        Alcotest.test_case "class hists partition" `Quick test_class_hists_partition;
        Alcotest.test_case "warm = cold bit-identical" `Quick test_warm_cold_bit_identical;
        Alcotest.test_case "non-power-of-two rejected" `Quick test_non_power_of_two_rejected;
      ] );
  ]
