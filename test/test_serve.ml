(* Tests for the multi-compartment request-serving subsystem (lib/serve):
   workload generator determinism and classification, scenario unit
   builds, and the server request paths — served, router-rejected, and
   capability-trap-rejected — in both isolation modes. *)

let default_mix = Serve.Workload.default_mix

(* --- workload ------------------------------------------------------------- *)

let test_workload_deterministic () =
  let gen () =
    Serve.Workload.gen_chunk ~mix:default_mix ~base_seed:7L ~index:3 ~count:512
  in
  Alcotest.(check bool) "same seed, same chunk" true (gen () = gen ());
  let other = Serve.Workload.gen_chunk ~mix:default_mix ~base_seed:7L ~index:4 ~count:512 in
  Alcotest.(check bool) "different index, different chunk" true (gen () <> other)

let test_workload_classification () =
  let reqs = Serve.Workload.gen_chunk ~mix:default_mix ~base_seed:7L ~index:0 ~count:2048 in
  let count e =
    Array.fold_left (fun n r -> if Serve.Workload.expected r = e then n + 1 else n) 0 reqs
  in
  let served = count Serve.Workload.Expect_served in
  let kind = count Serve.Workload.Expect_reject_kind in
  let trap = count Serve.Workload.Expect_reject_trap in
  Alcotest.(check int) "partition" 2048 (served + kind + trap);
  (* ~1/32 malformed, split between the two classes. *)
  Alcotest.(check bool) "some bad kinds" true (kind > 0);
  Alcotest.(check bool) "some lying headers" true (trap > 0);
  Alcotest.(check bool) "mostly well-formed" true (served > 1850);
  Array.iter
    (fun (r : Serve.Workload.request) ->
      Alcotest.(check bool) "actual_len positive" true (r.Serve.Workload.actual_len >= 1);
      Alcotest.(check bool) "actual_len bounded" true
        (r.Serve.Workload.actual_len <= default_mix.Serve.Workload.max_words))
    reqs

let test_workload_no_malformed () =
  let mix = { default_mix with Serve.Workload.malformed_denom = 0 } in
  let reqs = Serve.Workload.gen_chunk ~mix ~base_seed:7L ~index:0 ~count:1024 in
  Array.iter
    (fun r ->
      Alcotest.(check bool) "all well-formed" true
        (Serve.Workload.expected r = Serve.Workload.Expect_served))
    reqs

(* --- scenario unit builds -------------------------------------------------- *)

let test_build_unit_layout () =
  List.iter
    (fun isolation ->
      for w = 0 to 2 do
        let u = Serve.Scenario.build_unit ~isolation w in
        let cbase = Int64.of_int (Serve.Scenario.code_base w) in
        (* The veneer must sit exactly at the unit's text base — that is
           where CCall lands (base of the unsealed code capability). *)
        Alcotest.(check bool)
          (u.Serve.Scenario.name ^ ": text at code base")
          true
          (List.exists (fun (a, _) -> a = cbase) u.Serve.Scenario.segments);
        List.iter
          (fun (addr, bytes) ->
            let ok_text =
              Int64.unsigned_compare addr cbase >= 0
              && Int64.unsigned_compare
                   (Int64.add addr (Int64.of_int (String.length bytes)))
                   (Int64.add cbase (Int64.of_int Serve.Scenario.code_len))
                 <= 0
            in
            let dbase = Int64.of_int (Serve.Scenario.data_base w) in
            let ok_data =
              Int64.unsigned_compare addr dbase >= 0
              && Int64.unsigned_compare
                   (Int64.add addr (Int64.of_int (String.length bytes)))
                   (Int64.add dbase (Int64.of_int Serve.Scenario.data_len))
                 <= 0
            in
            Alcotest.(check bool) "segment within the unit's regions" true (ok_text || ok_data))
          u.Serve.Scenario.segments
      done)
    [ Serve.Scenario.Mono; Serve.Scenario.Compart ]

(* --- the server ------------------------------------------------------------ *)

let request ?(kind = 0) ?(declared = 4) ?(actual = 4) ?(route = 0) ?(seed = 99L) () =
  {
    Serve.Workload.kind;
    declared_len = declared;
    actual_len = actual;
    route;
    payload_seed = seed;
  }

let boot isolation n =
  let s = Serve.Server.create ~isolation ~n () in
  Serve.Server.boot s;
  s

let test_serve_and_isolation_equivalence () =
  (* The same requests through both isolation modes must produce the
     same responses: the compartment boundary is invisible to a correct
     client. *)
  let compart = boot Serve.Scenario.Compart 2 and mono = boot Serve.Scenario.Mono 2 in
  for route = 0 to 3 do
    let req = request ~kind:route ~route ~seed:(Int64.of_int (route * 17)) () in
    let rc, _ = Serve.Server.serve_one compart req in
    let rm, _ = Serve.Server.serve_one mono req in
    (match rc with
    | Serve.Server.Served _ -> ()
    | _ -> Alcotest.fail "compartment request not served");
    Alcotest.(check bool) "responses agree across isolation" true (rc = rm)
  done;
  let k = Serve.Server.kernel compart in
  Alcotest.(check int) "one crossing per request" 4 k.Os.Kernel.ccalls;
  Alcotest.(check int) "every crossing returned" 4 k.Os.Kernel.creturns;
  Alcotest.(check int) "stack drained" 0 (Os.Kernel.trusted_stack_depth k)

let test_reject_bad_kind () =
  let s = boot Serve.Scenario.Compart 2 in
  let r, _ = Serve.Server.serve_one s (request ~kind:9 ()) in
  Alcotest.(check bool) "router bounces it" true (r = Serve.Server.Rejected_kind);
  let k = Serve.Server.kernel s in
  Alcotest.(check int) "no domain crossing" 0 k.Os.Kernel.ccalls

let test_reject_lying_header () =
  (* declared_len > actual_len: the router bounds the payload capability
     to the received words, so the worker's over-read traps inside the
     compartment with a length violation — and the server loop
     survives. *)
  let s = boot Serve.Scenario.Compart 2 in
  let r, _ = Serve.Server.serve_one s (request ~declared:12 ~actual:4 ()) in
  (match r with
  | Serve.Server.Rejected_trap (_, cause) ->
      Alcotest.(check string) "length violation"
        (Cap.Cause.to_string Cap.Cause.Length_violation)
        (Cap.Cause.to_string cause)
  | _ -> Alcotest.fail "lying header not trapped");
  let k = Serve.Server.kernel s in
  Alcotest.(check int) "trap unwound the trusted stack" 0 (Os.Kernel.trusted_stack_depth k);
  (* The server keeps serving after the trap. *)
  match Serve.Server.serve_one s (request ()) with
  | Serve.Server.Served _, _ -> ()
  | _ -> Alcotest.fail "server loop did not survive the trap"

let test_counters_flow () =
  let s = boot Serve.Scenario.Compart 1 in
  let before = Serve.Server.counters s in
  (match Serve.Server.serve_one s (request ()) with
  | Serve.Server.Served _, _ -> ()
  | _ -> Alcotest.fail "request not served");
  let d = Obs.Counters.diff (Serve.Server.counters s) before in
  Alcotest.(check int64) "one ccall" 1L (Obs.Counters.get d Obs.Counters.ccalls);
  Alcotest.(check int64) "one creturn" 1L (Obs.Counters.get d Obs.Counters.creturns);
  Alcotest.(check int64) "one context save" 1L (Obs.Counters.get d Obs.Counters.ctx_saves);
  Alcotest.(check int64) "one context restore" 1L (Obs.Counters.get d Obs.Counters.ctx_restores)

let suites =
  [
    ( "serve-workload",
      [
        Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
        Alcotest.test_case "classification" `Quick test_workload_classification;
        Alcotest.test_case "malformed off" `Quick test_workload_no_malformed;
      ] );
    ( "serve-server",
      [
        Alcotest.test_case "unit layout" `Quick test_build_unit_layout;
        Alcotest.test_case "isolation equivalence" `Quick test_serve_and_isolation_equivalence;
        Alcotest.test_case "reject bad kind" `Quick test_reject_bad_kind;
        Alcotest.test_case "reject lying header" `Quick test_reject_lying_header;
        Alcotest.test_case "counters flow" `Quick test_counters_flow;
      ] );
  ]
