(* Parallel-determinism check: the `--jobs N` Domain-pool fan-out must be
   invisible in the output.

   Two guarantees are asserted, both on the smoke export set (treeadd
   param 6 x three pointer modes — the same Exp.Obs_bench definition
   `bench --json` and regress-smoke use):

   1. Byte identity: the serialized export produced with jobs=4 equals
      the one produced sequentially, byte for byte.  Both runs disable
      wall-clock measurement (`~wall:false`, the library form of
      `--no-wall`), because host timing is the one thing that genuinely
      differs run to run; everything else — entry order, every counter,
      every span — must not.

   2. Architectural fidelity: the jobs=4 run also diffs clean against
      the committed `bench/baselines/SMOKE_obs.json` under the
      exact-match policy, i.e. parallel runs reproduce the same oracle
      counters as the sequential baseline (the committed file's /2
      schema predates per-run sim_mips; host-timing fields are banded or
      skipped, never exact — so this passes on any host). *)

let jobs = 4

(* The fuzz campaign makes the same promise: the 128-seed shard grid is
   fixed at absolute indices and shard results merge in seed order, so
   the export must not depend on the domain count. *)
let check_fuzz_determinism () =
  let cfg = { Fuzz.Campaign.default with Fuzz.Campaign.programs = 300 } in
  let entry r = Obs.Json.to_string (Obs.Export.summary [ Fuzz.Campaign.export_entry r ]) in
  let seq = entry (Fuzz.Campaign.run ~jobs:1 ~wall:false cfg) in
  let par = entry (Fuzz.Campaign.run ~jobs ~wall:false cfg) in
  if not (String.equal seq par) then begin
    Printf.eprintf
      "par-determ: fuzz jobs=%d export differs from sequential\n--- sequential ---\n%s\n--- \
       jobs=%d ---\n%s\n"
      jobs seq jobs par;
    exit 1
  end;
  Printf.printf "par-determ: fuzz jobs=%d export is byte-identical to sequential (%d bytes)\n" jobs
    (String.length seq)

let () =
  check_fuzz_determinism ();
  let seq = Exp.Obs_bench.smoke_entries ~jobs:1 ~wall:false () in
  let par = Exp.Obs_bench.smoke_entries ~jobs ~wall:false () in
  let seq_json = Obs.Json.to_string (Obs.Export.summary seq) in
  let par_json = Obs.Json.to_string (Obs.Export.summary par) in
  if not (String.equal seq_json par_json) then begin
    Printf.eprintf
      "par-determ: jobs=%d export differs from sequential\n--- sequential ---\n%s\n--- jobs=%d \
       ---\n%s\n"
      jobs seq_json jobs par_json;
    exit 1
  end;
  Printf.printf "par-determ: jobs=%d export is byte-identical to sequential (%d bytes)\n" jobs
    (String.length seq_json);
  let baseline_path =
    match Sys.argv with [| _; p |] -> p | _ -> "bench/baselines/SMOKE_obs.json"
  in
  match Obs.Baseline.load baseline_path with
  | Error msg ->
      Printf.eprintf "par-determ: %s\n" msg;
      exit 2
  | Ok committed ->
      let report = Obs.Diff.run committed (Obs.Baseline.of_entries par) in
      Fmt.pr "par-determ: jobs=%d vs %s@.%a@." jobs baseline_path Obs.Diff.pp report;
      exit (Obs.Diff.exit_code report)
