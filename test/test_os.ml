(* Tests for the kernel model: syscall edge cases, heap limits, protected
   call failure paths, and the Section 11 revocation sweep. *)

open Beri

let fresh () =
  let m = Machine.create () in
  let k = Os.Kernel.attach m in
  (m, k)

let run ?(fault = None) source =
  let m, k = fresh () in
  (match fault with Some f -> Os.Kernel.set_fault_handler k f | None -> ());
  let code, out = Os.Kernel.run_program ~max_insns:10_000_000L k source in
  (code, out, m, k)

(* --- syscalls ------------------------------------------------------------- *)

let test_write_syscall () =
  let code, out, _, _ =
    run
      {|
main:
  la $a0, msg
  li $a1, 5
  li $v0, 4
  syscall
  li $v0, 1
  li $a0, 0
  syscall
  .data
msg: .asciiz "hello"
|}
  in
  Alcotest.(check int) "exit" 0 code;
  Alcotest.(check string) "console" "hello" out

let test_unknown_syscall () =
  let code, _, _, _ =
    run
      {|
main:
  li $v0, 999
  syscall       # unknown: returns -1, does not kill the process
  li $t0, -1
  bne $v0, $t0, bad
  li $a0, 0
  li $v0, 1
  syscall
bad:
  li $a0, 1
  li $v0, 1
  syscall
|}
  in
  Alcotest.(check int) "survives unknown syscall" 0 code

let test_sbrk_limit () =
  (* Asking for more heap than Layout.heap_limit fails with -1 rather than
     mapping anything. *)
  let code, _, _, _ =
    run
      {|
main:
  li $a0, 0x7FFFFFFF
  li $v0, 3
  syscall
  li $t0, -1
  bne $v0, $t0, bad
  li $a0, 0
  li $v0, 1
  syscall
bad:
  li $a0, 1
  li $v0, 1
  syscall
|}
  in
  Alcotest.(check int) "sbrk beyond limit fails" 0 code

let test_cycles_counter () =
  let code, out, _, _ =
    run
      {|
main:
  li $v0, 5
  syscall
  move $t0, $v0
  li $t1, 50
loop:
  daddiu $t1, $t1, -1
  bgtz $t1, loop
  li $v0, 5
  syscall
  dsubu $a0, $v0, $t0
  li $v0, 7
  syscall
  li $v0, 1
  li $a0, 0
  syscall
|}
  in
  Alcotest.(check int) "exit" 0 code;
  let elapsed = int_of_string (String.trim out) in
  Alcotest.(check bool) "cycle counter advances" true (elapsed >= 100)

(* --- protected call failure paths -------------------------------------------- *)

(* Every refusal must also report the precise architectural cause in the
   capability-cause register, not just a generic failure code. *)
let check_cause what expected (m : Machine.t) =
  Alcotest.(check string) what
    (Cap.Cause.to_string expected)
    (Cap.Cause.to_string m.Machine.cp0.Cp0.capcause)

let test_ccall_untagged_rejected () =
  (* CCall with an untagged operand: Tag_violation before anything else. *)
  let code, _, m, _ =
    run
      {|
main:
  cmove $c1, $c0
  ccleartag $c1
  cmove $c2, $c0
  ccall $c1, $c2
  li $v0, 1
  li $a0, 0
  syscall
|}
  in
  Alcotest.(check int) "refused" 96 code;
  check_cause "tag violation" Cap.Cause.Tag_violation m

let test_ccall_unsealed_rejected () =
  (* CCall with unsealed operands must be refused by the kernel handler. *)
  let code, _, m, _ =
    run
      {|
main:
  cmove $c1, $c0
  cmove $c2, $c0
  ccall $c1, $c2
  li $v0, 1
  li $a0, 0
  syscall
|}
  in
  Alcotest.(check int) "refused" 96 code;
  check_cause "seal violation" Cap.Cause.Seal_violation m

let test_ccall_otype_mismatch_rejected () =
  let code, _, m, _ =
    run
      {|
main:
  li $t0, 5
  cincbase $c4, $c0, $t0
  li $t1, 2
  csetlen $c4, $c4, $t1      # authority for otypes 5..6
  la $t2, main
  cincbase $c5, $c0, $t2
  cseal $c1, $c5, $c4        # otype 5
  li $t0, 6
  cincbase $c6, $c0, $t0
  li $t1, 1
  csetlen $c6, $c6, $t1      # authority for otype 6
  cincbase $c7, $c0, $zero
  cseal $c2, $c7, $c6        # otype 6: mismatch
  ccall $c1, $c2
  li $v0, 1
  li $a0, 0
  syscall
|}
  in
  Alcotest.(check int) "type mismatch refused" 96 code;
  check_cause "type violation" Cap.Cause.Type_violation m

let test_creturn_without_call () =
  let code, _, m, _ = run "main:\n  creturn\n" in
  Alcotest.(check int) "empty trusted stack" 97 code;
  check_cause "return trap" Cap.Cause.Return_trap m

let test_nested_ccall () =
  (* Two levels of protected calls push and pop the trusted stack in
     order. *)
  let code, _, _, k =
    run
      {|
main:
  li $t0, 9
  cincbase $c4, $c0, $t0
  li $t1, 1
  csetlen $c4, $c4, $t1
  la $t2, inner
  cincbase $c5, $c0, $t2
  cseal $c1, $c5, $c4
  la $t3, buf
  cincbase $c6, $c0, $t3
  cseal $c2, $c6, $c4
  # prepare the level-2 pair for the compartment
  la $t2, leaf
  cincbase $c5, $c0, $t2
  cseal $c8, $c5, $c4
  cmove $c9, $c2
  ccall $c1, $c2           # level 1
  move $a0, $v1
  li $v0, 1
  syscall

inner:
  # Inside the compartment C0 is the (small) invoked data capability, so
  # the level-2 sealed pair cannot be rebuilt here — main stashed it in
  # c8/c9, and ordinary registers survive domain crossing.
  cmove $c1, $c8
  cmove $c2, $c9
  ccall $c1, $c2           # level 2
  daddiu $v1, $v1, 1
  creturn

leaf:
  li $v1, 41
  creturn

  .data
  .align 5
buf: .space 32
|}
  in
  Alcotest.(check int) "nested result" 42 code;
  Alcotest.(check int) "two protected calls" 2 k.Os.Kernel.ccalls;
  Alcotest.(check int) "two context saves" 2 k.Os.Kernel.ctx_saves;
  Alcotest.(check int) "two context restores" 2 k.Os.Kernel.ctx_restores;
  Alcotest.(check int) "trusted stack drained" 0 (List.length k.Os.Kernel.trusted_stack)

let test_unwind_trusted_stack () =
  (* A fault inside a nested compartment leaves frames on the trusted
     stack; unwinding pops them all, counts the restores, and recovers
     the *outermost* caller's PCC and C0. *)
  let m, k = fresh () in
  let outer_pcc = Cap.Capability.make ~perms:Cap.Perms.all ~base:0x1000L ~length:0x1000L in
  let outer_c0 = Cap.Capability.make ~perms:Cap.Perms.all ~base:0x8000L ~length:0x1000L in
  m.Machine.pcc <- outer_pcc;
  Machine.set_cap m 0 outer_c0;
  let code, data =
    Os.Sandbox.seal_pair ~otype:7 ~code_base:0x2000L ~code_length:0x100L ~data_base:0x9000L
      ~data_length:0x100L
  in
  Machine.set_cap m 1 code;
  Machine.set_cap m 2 data;
  let enter () =
    m.Machine.cp0.Cp0.epc <- 0x1000L;
    match Os.Kernel.handle_ccall k with
    | Machine.Resume_at _ -> ()
    | _ -> Alcotest.fail "ccall refused"
  in
  enter ();
  enter ();
  Alcotest.(check int) "two frames" 2 (Os.Kernel.trusted_stack_depth k);
  Os.Kernel.unwind_trusted_stack k;
  Alcotest.(check int) "drained" 0 (Os.Kernel.trusted_stack_depth k);
  Alcotest.(check int) "restores counted" 2 k.Os.Kernel.ctx_restores;
  Alcotest.(check bool) "outermost pcc recovered" true
    (Cap.Capability.base m.Machine.pcc = Cap.Capability.base outer_pcc);
  Alcotest.(check bool) "outermost c0 recovered" true
    (Cap.Capability.base (Machine.cap m 0) = Cap.Capability.base outer_c0)

(* --- revocation (Section 11) --------------------------------------------------- *)

let test_revoke_sweeps_memory_and_registers () =
  let m, _ = fresh () in
  Machine.map_identity m ~vaddr:0L ~len:(1 lsl 20) Mem.Tlb.prot_rwx;
  (* A delegated process would hold bounded capabilities; the reset-state
     almighty registers would all intersect any region. *)
  for i = 0 to 31 do
    Machine.set_cap m i Cap.Capability.null
  done;
  m.Machine.pcc <-
    Cap.Capability.make ~perms:Cap.Perms.execute ~base:0x10000L ~length:0x1000L;
  (* Two capabilities in memory: one into the doomed region, one not. *)
  let doomed = Cap.Capability.make ~perms:Cap.Perms.all ~base:0x5000L ~length:0x100L in
  let safe = Cap.Capability.make ~perms:Cap.Perms.all ~base:0x9000L ~length:0x100L in
  Mem.Phys.write_bytes m.Machine.phys 0x1000L (Cap.Capability.to_bytes doomed);
  Mem.Tags.set m.Machine.tags 0x1000L true;
  Mem.Phys.write_bytes m.Machine.phys 0x1020L (Cap.Capability.to_bytes safe);
  Mem.Tags.set m.Machine.tags 0x1020L true;
  (* And one in a register. *)
  Machine.set_cap m 7 doomed;
  Machine.set_cap m 8 safe;
  let stats = Os.Revoke.revoke m ~base:0x5000L ~length:0x100L in
  Alcotest.(check int) "memory revocations" 1 stats.Os.Revoke.memory_capabilities_revoked;
  Alcotest.(check int) "register revocations" 1 stats.Os.Revoke.register_capabilities_revoked;
  Alcotest.(check bool) "doomed memory tag cleared" false (Mem.Tags.get m.Machine.tags 0x1000L);
  Alcotest.(check bool) "safe memory tag kept" true (Mem.Tags.get m.Machine.tags 0x1020L);
  Alcotest.(check bool) "doomed register untagged" false
    (Cap.Capability.tag (Machine.cap m 7));
  Alcotest.(check bool) "safe register kept" true (Cap.Capability.tag (Machine.cap m 8))

let test_use_after_revoke_traps () =
  (* End to end: a program stores a capability, the kernel revokes the
     region, the program's later dereference through the revoked
     capability raises a tag violation. *)
  let m, k = fresh () in
  let trapped = ref None in
  Os.Kernel.set_fault_handler k (fun _ f ->
      trapped := Some f.Os.Kernel.capcause;
      Machine.Halt 61);
  let program =
    Asm.Assembler.assemble
      {|
main:
  la $t0, object
  cincbase $c1, $c0, $t0
  li $t1, 32
  csetlen $c1, $c1, $t1
  li $t2, 7
  csd $t2, $zero, 0($c1)    # use before revocation: fine
  trace.phase_begin $zero   # signal the harness to revoke now
  cld $v1, $zero, 0($c1)    # use after revocation: tag violation
  move $a0, $v1
  li $v0, 1
  syscall
  .data
  .align 5
object: .space 32
|}
  in
  let revoked = ref false in
  Machine.set_trace_hook m (fun m marker _ _ ->
      if marker = Insn.M_phase_begin && not !revoked then begin
        revoked := true;
        let base = Option.get (Asm.Assembler.symbol program "object") in
        ignore (Os.Revoke.revoke m ~base ~length:32L)
      end);
  Os.Kernel.exec k program;
  let code = Machine.run ~max_insns:10_000L m in
  Alcotest.(check int) "trapped" 61 code;
  match !trapped with
  | Some Cap.Cause.Tag_violation -> ()
  | Some c -> Alcotest.failf "wrong cause %s" (Cap.Cause.to_string c)
  | None -> Alcotest.fail "no trap"

let test_live_roots () =
  let m, _ = fresh () in
  Machine.set_cap m 5 (Cap.Capability.make ~perms:Cap.Perms.all ~base:0x4000L ~length:0x40L);
  let roots = Os.Revoke.live_capability_roots m in
  Alcotest.(check bool) "found the root" true
    (List.exists (fun (b, l) -> b = 0x4000L && l = 0x40L) roots);
  (* registers hold the almighty capability by default: those roots too *)
  Alcotest.(check bool) "nonempty" true (List.length roots > 0)

let suites =
  [
    ( "kernel-syscalls",
      [
        Alcotest.test_case "write" `Quick test_write_syscall;
        Alcotest.test_case "unknown syscall" `Quick test_unknown_syscall;
        Alcotest.test_case "sbrk limit" `Quick test_sbrk_limit;
        Alcotest.test_case "cycle counter" `Quick test_cycles_counter;
      ] );
    ( "protected-calls",
      [
        Alcotest.test_case "untagged rejected" `Quick test_ccall_untagged_rejected;
        Alcotest.test_case "unsealed rejected" `Quick test_ccall_unsealed_rejected;
        Alcotest.test_case "otype mismatch rejected" `Quick test_ccall_otype_mismatch_rejected;
        Alcotest.test_case "creturn without call" `Quick test_creturn_without_call;
        Alcotest.test_case "nested calls" `Quick test_nested_ccall;
        Alcotest.test_case "unwind trusted stack" `Quick test_unwind_trusted_stack;
      ] );
    ( "revocation",
      [
        Alcotest.test_case "sweep memory and registers" `Quick
          test_revoke_sweeps_memory_and_registers;
        Alcotest.test_case "use after revoke traps" `Quick test_use_after_revoke_traps;
        Alcotest.test_case "live roots" `Quick test_live_roots;
      ] );
  ]
