(* serve-smoke: the multi-compartment request-serving sweep as a
   standing test (`dune build @serve-smoke`, pulled into `dune
   runtest`).

   One 2000-request sweep over N in {1,2,4,8}, both isolation modes,
   wall clocks off.  Four oracles:

     - pinned request tallies: the workload generator is a pure function
       of the seed, so the served / rejected-kind / rejected-trap split
       is exact — drift means the generator, the workers, or the
       router's rejection paths changed behaviour;
     - the cross-isolation digest: the same stream through the sealed
       CCall router and the monolithic baseline must produce identical
       response streams;
     - parallel determinism: the full cheri-serve JSON built with a
       3-domain pool must be byte-identical to the sequential one;
     - warm/cold identity: the sweep serves chunks from warm pooled
       servers ([Server.reset]) by default; its JSON must be
       byte-identical to a --cold run that boots every chunk afresh;
     - the committed baseline: the obs-schema export must diff clean
       against bench/baselines/SERVE_obs.json (exact architectural
       counters, latency and crossing-cost pseudo-spans included).

   After an intentional behaviour change, regenerate the baseline with

     dune exec test/serve_smoke.exe -- --write bench/baselines/SERVE_obs.json
*)

let fail fmt = Fmt.kstr (fun s -> prerr_endline ("serve-smoke: " ^ s); exit 1) fmt

let cfg jobs =
  {
    Serve.Sweep.default_cfg with
    Serve.Sweep.requests = 2000;
    jobs;
    no_wall = true;
  }

let () =
  match Sys.argv with
  | [| _; "--write"; path |] ->
      let r = Serve.Sweep.run (cfg 1) in
      if not r.Serve.Sweep.digests_match then fail "digest mismatch across isolation modes";
      Obs.Export.write_file path (Serve.Sweep.obs_entries r);
      Printf.printf "serve-smoke: wrote baseline %s\n" path
  | [| _; baseline_path |] -> (
      let r = Serve.Sweep.run (cfg 1) in
      if not r.Serve.Sweep.digests_match then fail "digest mismatch across isolation modes";
      List.iter
        (fun (p : Serve.Sweep.point_result) ->
          let name = Serve.Sweep.point_name p.Serve.Sweep.point in
          if
            (p.Serve.Sweep.served, p.Serve.Sweep.rejected_kind, p.Serve.Sweep.rejected_trap,
             p.Serve.Sweep.abnormal)
            <> (1948, 24, 28, 0)
          then
            fail "%s: tallies drifted (%d served, %d rej-kind, %d rej-trap, %d abnormal)" name
              p.Serve.Sweep.served p.Serve.Sweep.rejected_kind p.Serve.Sweep.rejected_trap
              p.Serve.Sweep.abnormal)
        r.Serve.Sweep.points;
      let sequential = Obs.Json.to_string (Serve.Sweep.to_json r) in
      let pooled = Obs.Json.to_string (Serve.Sweep.to_json (Serve.Sweep.run (cfg 3))) in
      if not (String.equal sequential pooled) then
        fail "3-domain sweep JSON differs from sequential";
      let cold =
        Obs.Json.to_string
          (Serve.Sweep.to_json (Serve.Sweep.run { (cfg 1) with Serve.Sweep.cold = true }))
      in
      if not (String.equal sequential cold) then
        fail "warm-pool sweep JSON differs from cold-boot reference";
      match Obs.Baseline.load baseline_path with
      | Error msg -> fail "%s" msg
      | Ok committed ->
          let live = Obs.Baseline.of_entries (Serve.Sweep.obs_entries r) in
          let report = Obs.Diff.run committed live in
          Fmt.pr "serve-smoke: %s vs live {serve x mono,compart, N in 1,2,4,8}@.%a@."
            baseline_path Obs.Diff.pp report;
          exit (Obs.Diff.exit_code report))
  | _ ->
      Printf.eprintf "usage: serve_smoke (BASELINE.json | --write BASELINE.json)\n";
      exit 2
