(* Property tests for the memory subsystem models: physical memory
   round-trips, tag-table semantics, cache residency, and TLB reach. *)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let prop_phys_roundtrip =
  QCheck.Test.make ~count:300 ~name:"scalar store/load roundtrip"
    QCheck.(pair (int_bound 0xFFF0) (int_bound 3))
    (fun (addr, width) ->
      let p = Mem.Phys.create ~size_bytes:0x10000 in
      let a = Int64.of_int addr in
      match width with
      | 0 ->
          Mem.Phys.write_u8 p a 0xAB;
          Mem.Phys.read_u8 p a = 0xAB
      | 1 ->
          Mem.Phys.write_u16 p a 0xBEEF;
          Mem.Phys.read_u16 p a = 0xBEEF
      | 2 ->
          Mem.Phys.write_u32 p a 0xDEADBEEF;
          Mem.Phys.read_u32 p a = 0xDEADBEEF
      | _ ->
          Mem.Phys.write_u64 p a 0x0123456789ABCDEFL;
          Int64.equal (Mem.Phys.read_u64 p a) 0x0123456789ABCDEFL)

let prop_phys_bus_error =
  QCheck.Test.make ~count:100 ~name:"out-of-range access raises Bus_error"
    QCheck.(int_range 0xFFF9 0x11000)
    (fun addr ->
      let p = Mem.Phys.create ~size_bytes:0x10000 in
      match Mem.Phys.read_u64 p (Int64.of_int addr) with
      | _ -> addr + 8 <= 0x10000
      | exception Mem.Phys.Bus_error _ -> addr + 8 > 0x10000)

let prop_tags_store_clears =
  QCheck.Test.make ~count:300 ~name:"any overlapping data store clears the tag"
    QCheck.(pair (int_bound 1000) (int_range 1 16))
    (fun (line, size) ->
      let t = Mem.Tags.create ~mem_size:0x10000 () in
      let line_addr = Int64.of_int (line * 32 mod 0xF000) in
      Mem.Tags.set t line_addr true;
      (* a store overlapping any byte of the line clears it *)
      let off = size mod 32 in
      Mem.Tags.clear_range t (Int64.add line_addr (Int64.of_int off)) size;
      not (Mem.Tags.get t line_addr))

let prop_tags_neighbours_unaffected =
  QCheck.Test.make ~count:300 ~name:"stores do not clear other lines' tags"
    QCheck.(int_bound 500)
    (fun line ->
      let t = Mem.Tags.create ~mem_size:0x10000 () in
      let a = Int64.of_int (line * 32) in
      let next = Int64.add a 32L in
      Mem.Tags.set t a true;
      Mem.Tags.set t next true;
      Mem.Tags.clear_range t a 32;
      (not (Mem.Tags.get t a)) && Mem.Tags.get t next)

let prop_cache_rehit =
  QCheck.Test.make ~count:200 ~name:"immediate re-access always hits"
    QCheck.(pair (int_bound 0xFFFFF) bool)
    (fun (addr, write) ->
      let c = Mem.Cache.create ~name:"p" ~size_bytes:4096 ~line_bytes:32 ~assoc:2 in
      ignore (Mem.Cache.access c ~addr:(Int64.of_int addr) ~write);
      Mem.Cache.access c ~addr:(Int64.of_int addr) ~write:false = Mem.Cache.Hit)

let prop_cache_working_set =
  QCheck.Test.make ~count:100 ~name:"a set's associativity worth of lines co-resides"
    QCheck.(int_bound 0xFFFF)
    (fun base ->
      let assoc = 4 in
      let c = Mem.Cache.create ~name:"p" ~size_bytes:4096 ~line_bytes:32 ~assoc in
      let sets = 4096 / (32 * assoc) in
      (* assoc addresses mapping to the same set *)
      let addrs =
        List.init assoc (fun i -> Int64.of_int ((base * 32) + (i * sets * 32)))
      in
      List.iter (fun a -> ignore (Mem.Cache.access c ~addr:a ~write:false)) addrs;
      List.for_all (fun a -> Mem.Cache.access c ~addr:a ~write:false = Mem.Cache.Hit) addrs)

let prop_tlb_reach =
  QCheck.Test.make ~count:100 ~name:"TLB holds exactly its capacity"
    QCheck.(int_range 2 16)
    (fun entries ->
      let t = Mem.Tlb.create ~entries () in
      Mem.Tlb.map t ~vaddr:0L ~len:(4096 * (entries + 1)) Mem.Tlb.prot_rwx;
      (* touch [entries] distinct pages, then re-touch: all resident *)
      let pages = List.init entries (fun i -> Int64.of_int (i * 4096)) in
      List.iter (fun p -> ignore (Mem.Tlb.touch t p)) pages;
      let all_hit = List.for_all (fun p -> Mem.Tlb.touch t p) pages in
      (* one more page evicts exactly the least recently used (page 0);
         probing mutates recency, so check MRU first, then the victim *)
      ignore (Mem.Tlb.touch t (Int64.of_int (entries * 4096)));
      let mru_resident = Mem.Tlb.touch t (Int64.of_int ((entries - 1) * 4096)) in
      let lru_evicted = not (Mem.Tlb.touch t 0L) in
      all_hit && mru_resident && lru_evicted)

(* Snapshot/restore with dirty-page tracking: every page written after
   [snapshot] is tracked, [restore] rewinds the whole memory to the
   snapshot image (touching only those pages), and the dirty map comes
   back empty so a following restore is O(nothing). *)
let prop_phys_snapshot_roundtrip =
  QCheck.Test.make ~count:150 ~name:"snapshot/restore rewinds dirtied pages exactly"
    QCheck.(list_of_size Gen.(int_range 1 8) (int_bound 0xFFF8))
    (fun addrs ->
      let size = 0x10000 in
      let p = Mem.Phys.create ~size_bytes:size in
      for i = 0 to (size / 8) - 1 do
        Mem.Phys.write_u64 p (Int64.of_int (i * 8)) (Int64.of_int ((i * 1103515245) + 12345))
      done;
      let snap = Mem.Phys.snapshot p in
      List.iter (fun a -> Mem.Phys.write_u64 p (Int64.of_int a) 0xDEAD_BEEF_0BAD_F00DL) addrs;
      let dirty = Mem.Phys.dirty_pages p in
      let tracked = List.for_all (fun a -> List.mem (a / Mem.Phys.page_bytes) dirty) addrs in
      let restored = Mem.Phys.restore p snap in
      let intact = ref true in
      for i = 0 to (size / 8) - 1 do
        if
          not
            (Int64.equal
               (Mem.Phys.read_u64 p (Int64.of_int (i * 8)))
               (Int64.of_int ((i * 1103515245) + 12345)))
        then intact := false
      done;
      tracked && restored = List.length dirty && !intact && Mem.Phys.dirty_pages p = [])

(* A snapshot is tied to the dirty map that was cleared when it was
   taken: once a newer snapshot exists, restoring an older one would
   rewind pages the map no longer tracks, so it must be refused. *)
let test_phys_snapshot_stale () =
  let p = Mem.Phys.create ~size_bytes:0x1800 in
  (* non-page-multiple size: the last (partial) page restores clamped *)
  Mem.Phys.write_u64 p 0x1400L 7L;
  let s1 = Mem.Phys.snapshot p in
  Mem.Phys.write_u64 p 0x1400L 9L;
  let _s2 = Mem.Phys.snapshot p in
  (match Mem.Phys.restore p s1 with
  | _ -> Alcotest.fail "stale snapshot accepted"
  | exception Invalid_argument _ -> ());
  Alcotest.(check int64) "newer snapshot's image stands" 9L (Mem.Phys.read_u64 p 0x1400L)

(* Tag-table restore is page-granular so Machine.restore can rewind tags
   for exactly the pages whose data it rewinds. *)
let test_tags_restore_page () =
  let t = Mem.Tags.create ~mem_size:0x4000 () in
  Mem.Tags.set t 0x1000L true;
  Mem.Tags.set t 0x2020L true;
  let snap = Mem.Tags.snapshot t in
  Mem.Tags.set t 0x1000L false;
  Mem.Tags.set t 0x2020L false;
  Mem.Tags.set t 0x1040L true;
  Mem.Tags.restore_page t snap ~page_bytes:0x1000 1;
  Alcotest.(check bool) "page 1 tag restored" true (Mem.Tags.get t 0x1000L);
  Alcotest.(check bool) "page 1 spurious tag cleared" false (Mem.Tags.get t 0x1040L);
  Alcotest.(check bool) "page 2 untouched by page-1 restore" false (Mem.Tags.get t 0x2020L);
  Mem.Tags.restore_all t snap;
  Alcotest.(check bool) "restore_all recovers page 2" true (Mem.Tags.get t 0x2020L)

(* Cache.create indexes by shift/mask, so it must reject geometries the
   fast path cannot represent — with messages that say which parameter
   is at fault. *)
let test_cache_geometry_validation () =
  let rejects frag f =
    match f () with
    | _ -> Alcotest.failf "geometry accepted (expected rejection: %s)" frag
    | exception Invalid_argument msg ->
        let nl = String.length frag and hl = String.length msg in
        let rec go i = i + nl <= hl && (String.sub msg i nl = frag || go (i + 1)) in
        Alcotest.(check bool) (Printf.sprintf "error %S mentions %s" msg frag) true (go 0)
  in
  (* non-power-of-two line size *)
  rejects "line_bytes 24" (fun () ->
      Mem.Cache.create ~name:"bad" ~size_bytes:4608 ~line_bytes:24 ~assoc:2);
  (* pow2 lines but a non-pow2 derived set count: 6144 / (32*2) = 96 sets *)
  rejects "not a power of two" (fun () ->
      Mem.Cache.create ~name:"bad" ~size_bytes:6144 ~line_bytes:32 ~assoc:2);
  (* size not divisible by line_bytes*assoc at all *)
  rejects "not a multiple" (fun () ->
      Mem.Cache.create ~name:"bad" ~size_bytes:4100 ~line_bytes:32 ~assoc:2);
  (* and a valid pow2 geometry still constructs *)
  let c = Mem.Cache.create ~name:"ok" ~size_bytes:4096 ~line_bytes:32 ~assoc:2 in
  Alcotest.(check int) "size round-trips" 4096 (Mem.Cache.size_bytes c)

let test_hierarchy_dram_accounting () =
  let h = Mem.Hierarchy.create () in
  Mem.Tlb.map h.Mem.Hierarchy.tlb ~vaddr:0L ~len:0x100000 Mem.Tlb.prot_rwx;
  (* 1000 distinct lines: all compulsory misses reach DRAM *)
  for i = 0 to 999 do
    ignore (Mem.Hierarchy.access_data h ~addr:(Int64.of_int (i * 32)) ~size:8 ~write:false)
  done;
  Alcotest.(check bool) "DRAM read bytes counted" true (h.Mem.Hierarchy.dram_read_bytes >= 1000 * 32);
  (* re-touch: all resident in L2 (32KB < 64KB), no new DRAM traffic *)
  let before = h.Mem.Hierarchy.dram_read_bytes in
  for i = 0 to 999 do
    ignore (Mem.Hierarchy.access_data h ~addr:(Int64.of_int (i * 32)) ~size:8 ~write:false)
  done;
  Alcotest.(check int) "steady state" before h.Mem.Hierarchy.dram_read_bytes

let test_hierarchy_writeback () =
  let h = Mem.Hierarchy.create () in
  Mem.Tlb.map h.Mem.Hierarchy.tlb ~vaddr:0L ~len:0x4000000 Mem.Tlb.prot_rwx;
  (* dirty many lines, then evict them with a large sweep: writebacks *)
  for i = 0 to 4095 do
    ignore (Mem.Hierarchy.access_data h ~addr:(Int64.of_int (i * 32)) ~size:8 ~write:true)
  done;
  for i = 0 to 16383 do
    ignore
      (Mem.Hierarchy.access_data h ~addr:(Int64.of_int (0x100000 + (i * 32))) ~size:8 ~write:false)
  done;
  Alcotest.(check bool) "writebacks reached DRAM" true (h.Mem.Hierarchy.dram_write_bytes > 0)

let suites =
  [
    qsuite "mem-properties"
      [
        prop_phys_roundtrip;
        prop_phys_bus_error;
        prop_tags_store_clears;
        prop_tags_neighbours_unaffected;
        prop_cache_rehit;
        prop_cache_working_set;
        prop_tlb_reach;
        prop_phys_snapshot_roundtrip;
      ];
    ( "mem-snapshot",
      [
        Alcotest.test_case "stale snapshot refused" `Quick test_phys_snapshot_stale;
        Alcotest.test_case "tags restore by page" `Quick test_tags_restore_page;
      ] );
    ( "mem-hierarchy",
      [
        Alcotest.test_case "cache geometry validation" `Quick test_cache_geometry_validation;
        Alcotest.test_case "DRAM accounting" `Quick test_hierarchy_dram_accounting;
        Alcotest.test_case "writeback traffic" `Quick test_hierarchy_writeback;
      ] );
  ]
