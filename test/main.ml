let () =
  Alcotest.run "cheri"
    (Test_cap.suites @ Test_isa.suites @ Test_machine.suites @ Test_mem.suites @ Test_asm.suites @ Test_os.suites
   @ Test_olden.suites @ Test_models.suites @ Test_minic.suites @ Test_fault.suites
   @ Test_obs.suites @ Test_fuzz.suites @ Test_serve.suites)
