(* Tests for the observational-correctness fuzzer: generator determinism
   and encodability, the single-width and lockstep harnesses on seeded
   smoke campaigns, the shrinker, the failure corpus, and checkpointed
   resume equivalence. *)

let narrow = { Fuzz.Gen.insns = 24; wide = false }
let wide = { Fuzz.Gen.insns = 24; wide = true }

(* --- generator -------------------------------------------------------------- *)

let test_gen_determinism () =
  let a = Fuzz.Gen.generate wide 42L and b = Fuzz.Gen.generate wide 42L in
  Alcotest.(check bool) "same seed, same program" true (a = b);
  let c = Fuzz.Gen.generate wide 43L in
  Alcotest.(check bool) "different seed, different program" true (a <> c)

(* Every generated instruction must survive the encoder round trip: the
   generator's whole vocabulary fits the real instruction formats (CLC's
   scaled 11-bit immediate, CLoad's signed 8-bit, ...). *)
let test_gen_encodable () =
  for seed = 1 to 200 do
    let program = Fuzz.Gen.generate wide (Int64.of_int seed) in
    Array.iter
      (fun insn ->
        let round = Beri.Code.decode (Beri.Code.encode insn) in
        if round <> insn then
          Alcotest.failf "seed %d: %a does not round-trip (got %a)" seed Beri.Insn.pp insn
            Beri.Insn.pp round)
      program
  done

(* --- harnesses --------------------------------------------------------------- *)

let small cfg = { cfg with Fuzz.Campaign.programs = 200; base_seed = 1L }

let run cfg = Fuzz.Campaign.run ~wall:false cfg

let test_single_width_clean () =
  (* Monitor oracles on every retirement over 200 programs: anything the
     generator produces must keep the machine's invariants. *)
  let r = run (small { Fuzz.Campaign.default with mode = Fuzz.Campaign.Cheri; wide = false }) in
  Alcotest.(check bool) "no monitor/hang failures" true (Fuzz.Campaign.clean r);
  Alcotest.(check int) "all programs ran" 200 r.Fuzz.Campaign.programs_done

let test_single_width_agree () =
  (* With narrow bounds the two widths are observationally identical, so
     even their outcome tallies and joint retirement counts agree. *)
  let r256 = run (small { Fuzz.Campaign.default with mode = Fuzz.Campaign.Cheri; wide = false }) in
  let r128 = run (small { Fuzz.Campaign.default with mode = Fuzz.Campaign.Cheri128; wide = false }) in
  Alcotest.(check (list int64))
    "tallies agree across widths"
    (Array.to_list r256.Fuzz.Campaign.tallies)
    (Array.to_list r128.Fuzz.Campaign.tallies);
  Alcotest.(check int64) "instret agrees" r256.Fuzz.Campaign.instret r128.Fuzz.Campaign.instret

let test_lockstep_clean_or_classified () =
  let r = run (small Fuzz.Campaign.default) in
  Alcotest.(check bool) "no mismatch/monitor/hang" true (Fuzz.Campaign.clean r);
  Alcotest.(check bool) "representability divergences occurred and were classified" true
    (Int64.compare r.Fuzz.Campaign.tallies.(Fuzz.Campaign.k_rep) 0L > 0)

(* --- shrinking --------------------------------------------------------------- *)

let test_shrink_synthetic () =
  (* Predicate: program still contains a CCall and a CReturn.  The noise
     around them must all shrink away. *)
  let open Beri.Insn in
  let program =
    [|
      Daddiu (8, 8, 1); CCall (3, 4); Dsll (9, 9, 3); Load (D, false, 10, 20, 0);
      Daddiu (9, 9, 7); CReturn; Store (D, 10, 20, 8); Daddiu (10, 10, -1);
    |]
  in
  let check p =
    Array.exists (function CCall _ -> true | _ -> false) p
    && Array.exists (function CReturn -> true | _ -> false) p
  in
  let minimized, checks = Fuzz.Shrink.minimize ~check program in
  Alcotest.(check int) "shrunk to the two pinned instructions" 2 (Array.length minimized);
  Alcotest.(check bool) "spent some predicate checks" true (checks > 0);
  let again, _ = Fuzz.Shrink.minimize ~check minimized in
  Alcotest.(check bool) "minimization is idempotent" true (again = minimized)

let test_shrink_real_trap () =
  (* Minimize against the real harness: find a seed whose program ends in
     a capability length trap, then shrink while preserving exactly that
     trap.  The reproducer must come out small. *)
  let gcfg = narrow in
  let m = Fuzz.Gen.create_machine Machine.W256 in
  let is_length_trap seed p =
    match Fuzz.Exec.run m gcfg ~seed ~program:p with
    | Fuzz.Exec.Cap_trap c, _ -> Cap.Cause.equal c Cap.Cause.Length_violation
    | _ -> false
  in
  let seed =
    let rec find s =
      if s > 200L then Alcotest.fail "no length-trapping seed in 1..200"
      else if is_length_trap s (Fuzz.Gen.generate gcfg s) then s
      else find (Int64.add s 1L)
    in
    find 1L
  in
  let program = Fuzz.Gen.generate gcfg seed in
  let minimized, _ = Fuzz.Shrink.minimize ~check:(is_length_trap seed) program in
  Alcotest.(check bool)
    (Printf.sprintf "shrunk %d -> %d instructions (<= 10)" (Array.length program)
       (Array.length minimized))
    true
    (Array.length minimized <= 10);
  Alcotest.(check bool) "reproducer still traps" true (is_length_trap seed minimized)

(* --- corpus ------------------------------------------------------------------ *)

let test_corpus_roundtrip () =
  let f =
    {
      Fuzz.Corpus.seed = 4242L;
      mode = "lockstep";
      wide = true;
      insns = 24;
      reason = "c5: length 0x10 vs 0x11";
      program = Fuzz.Gen.generate wide 4242L;
    }
  in
  let dir = Filename.temp_file "cheri-fuzz-corpus" "" in
  Sys.remove dir;
  let path = Fuzz.Corpus.save ~dir f in
  (match Fuzz.Corpus.load path with
  | Error msg -> Alcotest.fail msg
  | Ok g ->
      Alcotest.(check int64) "seed survives" f.Fuzz.Corpus.seed g.Fuzz.Corpus.seed;
      Alcotest.(check string) "mode survives" f.Fuzz.Corpus.mode g.Fuzz.Corpus.mode;
      Alcotest.(check string) "reason survives" f.Fuzz.Corpus.reason g.Fuzz.Corpus.reason;
      Alcotest.(check bool) "program survives the word encoding" true
        (f.Fuzz.Corpus.program = g.Fuzz.Corpus.program));
  Sys.remove path;
  Sys.rmdir dir

(* --- checkpoints ------------------------------------------------------------- *)

let test_checkpoint_roundtrip () =
  let h = Obs.Hist.create ~name:"h" () in
  List.iter (Obs.Hist.observe_int h) [ 1; 5; 900; 77; 12 ];
  let c =
    {
      Fault.Checkpoint.kind = "fuzz";
      fingerprint = "fuzz:lockstep:programs=10:insns=24:base=1:wide=true";
      total = 10;
      next = 7;
      tallies = [ ("ok", 3L); ("trap-cap", 4L) ];
      counters = [ ("instret", 555L) ];
      hists = [ h ];
    }
  in
  let path = Filename.temp_file "cheri-fuzz-ckpt" ".json" in
  Fault.Checkpoint.save path c;
  (match Fault.Checkpoint.load path with
  | Error msg -> Alcotest.fail msg
  | Ok c' ->
      Alcotest.(check string) "kind" c.Fault.Checkpoint.kind c'.Fault.Checkpoint.kind;
      Alcotest.(check string) "fingerprint" c.Fault.Checkpoint.fingerprint
        c'.Fault.Checkpoint.fingerprint;
      Alcotest.(check int) "next" c.Fault.Checkpoint.next c'.Fault.Checkpoint.next;
      Alcotest.(check bool) "tallies" true (c.Fault.Checkpoint.tallies = c'.Fault.Checkpoint.tallies);
      Alcotest.(check bool) "counters" true
        (c.Fault.Checkpoint.counters = c'.Fault.Checkpoint.counters);
      (match c'.Fault.Checkpoint.hists with
      | [ h' ] ->
          Alcotest.(check int) "hist total" h.Obs.Hist.total h'.Obs.Hist.total;
          Alcotest.(check int64) "hist sum" h.Obs.Hist.sum h'.Obs.Hist.sum;
          Alcotest.(check bool) "hist buckets" true (Obs.Hist.nonempty h = Obs.Hist.nonempty h')
      | _ -> Alcotest.fail "expected one histogram"));
  Sys.remove path

let export_bytes r = Obs.Json.to_string (Obs.Export.summary [ Fuzz.Campaign.export_entry r ])

let test_campaign_resume_identical () =
  let cfg = { (small Fuzz.Campaign.default) with Fuzz.Campaign.programs = 300 } in
  let full = Fuzz.Campaign.run ~jobs:4 ~wall:false cfg in
  let path = Filename.temp_file "cheri-fuzz-resume" ".json" in
  (* Interrupt after 150 programs (mid-chunk: 150 is not a multiple of the
     128-seed shard), then resume with a different domain count. *)
  let _ = Fuzz.Campaign.run ~jobs:2 ~wall:false ~checkpoint:path ~stop_after:150 cfg in
  let resumed = Fuzz.Campaign.run ~jobs:4 ~wall:false ~checkpoint:path ~resume:true cfg in
  Sys.remove path;
  Alcotest.(check string)
    "resumed export is byte-identical to uninterrupted" (export_bytes full) (export_bytes resumed)

let test_campaign_resume_rejects_mismatch () =
  let cfg = { (small Fuzz.Campaign.default) with Fuzz.Campaign.programs = 64 } in
  let path = Filename.temp_file "cheri-fuzz-resume-mismatch" ".json" in
  let _ = Fuzz.Campaign.run ~wall:false ~checkpoint:path ~stop_after:32 cfg in
  let other = { cfg with Fuzz.Campaign.base_seed = 99L } in
  (match Fuzz.Campaign.run ~wall:false ~checkpoint:path ~resume:true other with
  | _ -> Alcotest.fail "resume accepted a checkpoint from a different campaign"
  | exception Fuzz.Campaign.Resume_mismatch _ -> ());
  Sys.remove path

let suites =
  [
    ( "fuzz",
      [
        Alcotest.test_case "generator determinism" `Quick test_gen_determinism;
        Alcotest.test_case "generator emits only encodable programs" `Quick test_gen_encodable;
        Alcotest.test_case "single-width campaign sweeps clean" `Quick test_single_width_clean;
        Alcotest.test_case "narrow campaigns agree across widths" `Quick test_single_width_agree;
        Alcotest.test_case "lockstep clean or classified" `Quick test_lockstep_clean_or_classified;
        Alcotest.test_case "shrinker: synthetic predicate" `Quick test_shrink_synthetic;
        Alcotest.test_case "shrinker: real capability trap" `Quick test_shrink_real_trap;
        Alcotest.test_case "corpus round trip" `Quick test_corpus_roundtrip;
        Alcotest.test_case "checkpoint round trip" `Quick test_checkpoint_roundtrip;
        Alcotest.test_case "resume is byte-identical" `Quick test_campaign_resume_identical;
        Alcotest.test_case "resume rejects foreign checkpoints" `Quick
          test_campaign_resume_rejects_mismatch;
      ] );
  ]
