(* Tests for the execution stack: instruction encode/decode, the
   interpreter's MIPS semantics, CHERI capability semantics at the ISA
   level, tagged memory, the kernel model (syscalls, CCall), sandboxing,
   and the cache/TLB performance model. *)

open Beri

let exec_program ?(fault_handler = None) source =
  let m = Machine.create () in
  let k = Os.Kernel.attach m in
  (match fault_handler with Some f -> Os.Kernel.set_fault_handler k f | None -> ());
  let program = Asm.Assembler.assemble source in
  Os.Kernel.exec k program;
  let code = Machine.run ~max_insns:10_000_000L m in
  (code, k, m)

let check_exit what expected source =
  let code, _, _ = exec_program source in
  Alcotest.(check int) what expected code

(* Exit with the value in $v1 (by moving it to $a0). *)
let exit_with_v1 = "\n  move $a0, $v1\n  li $v0, 1\n  syscall\n"

(* --- encode/decode ------------------------------------------------------ *)

let gen_insn =
  let open QCheck.Gen in
  let reg = int_bound 31 in
  let imm16 = int_bound 0xFFFF in
  let simm16 = map (fun v -> v - 32768) (int_bound 0xFFFF) in
  let simm8 = map (fun v -> v - 128) (int_bound 0xFF) in
  let sa = int_bound 31 in
  let width = oneofl [ Insn.B; Insn.H; Insn.W; Insn.D ] in
  oneof
    [
      map3 (fun a b c -> Insn.Addu (a, b, c)) reg reg reg;
      map3 (fun a b c -> Insn.Daddu (a, b, c)) reg reg reg;
      map3 (fun a b c -> Insn.Sltu (a, b, c)) reg reg reg;
      map3 (fun a b c -> Insn.Daddiu (a, b, c)) reg reg simm16;
      map3 (fun a b c -> Insn.Ori (a, b, c)) reg reg imm16;
      map3 (fun a b c -> Insn.Dsll (a, b, c)) reg reg sa;
      map2 (fun a b -> Insn.Lui (a, b)) reg imm16;
      map2 (fun a b -> Insn.Mult (a, b)) reg reg;
      (let* w = width and* u = QCheck.Gen.bool and* t = reg and* b = reg and* o = simm16 in
       return (Insn.Load (w, (match w with Insn.D -> false | _ -> u), t, b, o)));
      (let* w = width and* t = reg and* b = reg and* o = simm16 in
       return (Insn.Store (w, t, b, o)));
      map (fun t -> Insn.J t) (int_bound 0x3FFFFFF);
      map3 (fun a b c -> Insn.Beq (a, b, c)) reg reg simm16;
      map2 (fun a b -> Insn.CGetBase (a, b)) reg reg;
      map3 (fun a b c -> Insn.CIncBase (a, b, c)) reg reg reg;
      map3 (fun a b c -> Insn.CSetLen (a, b, c)) reg reg reg;
      map3 (fun a b c -> Insn.CAndPerm (a, b, c)) reg reg reg;
      map2 (fun a b -> Insn.CBTU (a, b)) reg simm16;
      map2 (fun a b -> Insn.CBTS (a, b)) reg simm16;
      (let* cd = reg and* cb = reg and* rt = reg and* i = int_bound 63 in
       return (Insn.CLC (cd, cb, rt, 32 * (i - 32))));
      (let* cs = reg and* cb = reg and* rt = reg and* i = int_bound 63 in
       return (Insn.CSC (cs, cb, rt, 32 * (i - 32))));
      (let* w = width and* u = QCheck.Gen.bool and* rd = reg and* cb = reg and* rt = reg
       and* i = simm8 in
       return (Insn.CLoad (w, u, rd, cb, rt, i)));
      (let* w = width and* rs = reg and* cb = reg and* rt = reg and* i = simm8 in
       return (Insn.CStore (w, rs, cb, rt, i)));
      map2 (fun a b -> Insn.CJALR (a, b)) reg reg;
      map3 (fun a b c -> Insn.CSeal (a, b, c)) reg reg reg;
      map2 (fun a b -> Insn.CCall (a, b)) reg reg;
      return Insn.CReturn;
      return Insn.Syscall;
      return Insn.Eret;
      (let* m = oneofl [ Insn.M_alloc; Insn.M_free; Insn.M_phase_begin; Insn.M_phase_end ]
       and* a = reg and* b = reg in
       return (Insn.Trace (m, a, b)));
    ]

let prop_code_roundtrip =
  QCheck.Test.make ~count:2000 ~name:"encode/decode roundtrip"
    (QCheck.make ~print:Insn.to_string gen_insn)
    (fun insn -> Code.decode (Code.encode insn) = insn)

let prop_decode_total =
  QCheck.Test.make ~count:2000 ~name:"decode never misattributes"
    QCheck.(int_bound 0x3FFFFFFF)
    (fun w ->
      (* Decoding an arbitrary word either fails or yields an instruction
         whose canonical encoding decodes back to itself — decode cannot
         conflate two distinct instructions (don't-care fields aside). *)
      match Code.decode w with
      | insn -> Code.decode (Code.encode insn) = insn
      | exception Code.Decode_error _ -> true)

(* --- basic execution ----------------------------------------------------- *)

let test_arith () =
  check_exit "arith result" 42
    ({|
main:
  li $t0, 6
  li $t1, 7
  mult $t0, $t1
  mflo $v1
|}
    ^ exit_with_v1)

let test_memory () =
  check_exit "store/load roundtrip" 123
    ({|
main:
  li $t0, 0x300000   # within the heap region? use data segment instead
  la $t0, buf
  li $t1, 123
  sd $t1, 0($t0)
  ld $v1, 0($t0)
  b done
done:
|}
    ^ exit_with_v1 ^ "\n.data\nbuf: .space 64\n")

let test_subword_memory () =
  check_exit "byte/halfword sign extension" 3
    ({|
main:
  la $t0, buf
  li $t1, 0xFFFF
  sh $t1, 0($t0)
  lh $t2, 0($t0)     # -1
  lhu $t3, 0($t0)    # 65535
  li $t4, 0xFFFF
  bne $t3, $t4, fail
  li $t4, -1
  bne $t2, $t4, fail
  li $v1, 3
  b done
fail:
  li $v1, 99
done:
|}
    ^ exit_with_v1 ^ "\n.data\nbuf: .space 16\n")

let test_branches_loops () =
  (* sum 1..10 = 55 *)
  check_exit "loop sum" 55
    ({|
main:
  li $t0, 10
  li $v1, 0
loop:
  daddu $v1, $v1, $t0
  daddiu $t0, $t0, -1
  bgtz $t0, loop
|}
    ^ exit_with_v1)

let test_function_call () =
  check_exit "jal/jr" 21
    ({|
main:
  li $a0, 20
  jal incr
  move $v1, $v0
  b done
incr:
  daddiu $v0, $a0, 1
  jr $ra
done:
|}
    ^ exit_with_v1)

let test_console () =
  let _, k, _ =
    exec_program
      {|
main:
  li $a0, 72      # 'H'
  li $v0, 2
  syscall
  li $a0, 105     # 'i'
  li $v0, 2
  syscall
  li $v0, 1
  li $a0, 0
  syscall
|}
  in
  Alcotest.(check string) "console" "Hi" (Os.Kernel.console k)

let test_sbrk () =
  check_exit "sbrk returns old brk and maps pages" 7
    ({|
main:
  li $a0, 4096
  li $v0, 3
  syscall          # v0 = old brk = heap base
  move $t0, $v0
  li $t1, 7
  sd $t1, 0($t0)
  ld $v1, 0($t0)
|}
    ^ exit_with_v1)

(* --- CHERI semantics at ISA level ---------------------------------------- *)

let test_cap_derive_and_access () =
  check_exit "capability bounds ok" 5
    ({|
main:
  la $t0, buf
  cincbase $c1, $c0, $t0     # c1 = cap at buf
  li $t1, 32
  csetlen $c1, $c1, $t1      # 32-byte object
  li $t2, 5
  csd $t2, $zero, 0($c1)     # store via capability
  cld $v1, $zero, 0($c1)     # load back
|}
    ^ exit_with_v1 ^ "\n.data\nbuf: .space 64\n")

let test_cap_bounds_trap () =
  let trapped = ref None in
  let handler _k (fault : Os.Kernel.fault) =
    trapped := Some fault.Os.Kernel.capcause;
    Machine.Halt 77
  in
  let code, _, _ =
    exec_program ~fault_handler:(Some handler)
      ({|
main:
  la $t0, buf
  cincbase $c1, $c0, $t0
  li $t1, 32
  csetlen $c1, $c1, $t1
  li $t2, 32
  cld $v1, $t2, 0($c1)    # one past the end: length violation
|}
      ^ exit_with_v1 ^ "\n.data\nbuf: .space 64\n")
  in
  Alcotest.(check int) "trap exit" 77 code;
  match !trapped with
  | Some Cap.Cause.Length_violation -> ()
  | Some c -> Alcotest.failf "wrong cause: %s" (Cap.Cause.to_string c)
  | None -> Alcotest.fail "no CP2 fault observed"

let test_cap_perm_trap () =
  let trapped = ref None in
  let handler _k (fault : Os.Kernel.fault) =
    trapped := Some fault.Os.Kernel.capcause;
    Machine.Halt 78
  in
  let code, _, _ =
    exec_program ~fault_handler:(Some handler)
      ({|
main:
  la $t0, buf
  cincbase $c1, $c0, $t0
  li $t1, 32
  csetlen $c1, $c1, $t1
  li $t1, 0x15            # Global|Load|Load_cap: no store permission
  candperm $c1, $c1, $t1
  li $t2, 5
  csd $t2, $zero, 0($c1)  # must trap: store permission disclaimed
|}
      ^ exit_with_v1 ^ "\n.data\nbuf: .space 64\n")
  in
  Alcotest.(check int) "trap exit" 78 code;
  match !trapped with
  | Some Cap.Cause.Permit_store_violation -> ()
  | Some c -> Alcotest.failf "wrong cause: %s" (Cap.Cause.to_string c)
  | None -> Alcotest.fail "no CP2 fault observed"

let test_tag_clear_on_data_store () =
  check_exit "data store clears in-memory capability tag" 1
    ({|
main:
  la $t0, slot
  cincbase $c1, $c0, $t0
  li $t1, 32
  csetlen $c1, $c1, $t1
  csc $c2, $zero, 0($c1)    # store a (valid) capability: tag set
  clc $c3, $zero, 0($c1)
  cgettag $t2, $c3
  beqz $t2, fail            # must be tagged after CSC/CLC
  li $t3, 0xAB
  csb $t3, $zero, 0($c1)    # general-purpose store: clears the tag
  clc $c4, $zero, 0($c1)
  cgettag $t4, $c4
  bnez $t4, fail            # must be untagged now
  li $v1, 1
  b done
fail:
  li $v1, 0
done:
|}
    ^ exit_with_v1 ^ "\n.data\n.align 5\nslot: .space 32\n")

let test_memcpy_preserves_caps () =
  (* CLC/CSC copy 256-bit blocks obliviously (Section 4.2): a memcpy loop
     moving capability-sized blocks preserves tags for capabilities and
     keeps data untagged. *)
  check_exit "capability-oblivious memcpy" 1
    ({|
main:
  la $t0, src
  cincbase $c1, $c0, $t0
  li $t1, 64
  csetlen $c1, $c1, $t1
  csc $c0, $zero, 0($c1)     # src[0] = a capability
  li $t2, 0x1234
  csd $t2, $zero, 32($c1)    # src[32] = plain data
  la $t0, dst
  cincbase $c2, $c0, $t0
  csetlen $c2, $c2, $t1
  # copy two 32-byte blocks through capability registers
  clc $c3, $zero, 0($c1)
  csc $c3, $zero, 0($c2)
  clc $c3, $zero, 32($c1)
  csc $c3, $zero, 32($c2)
  clc $c4, $zero, 0($c2)
  cgettag $t3, $c4
  beqz $t3, fail             # capability survived with tag
  clc $c5, $zero, 32($c2)
  cgettag $t4, $c5
  bnez $t4, fail             # data stayed untagged
  cld $t5, $zero, 32($c2)
  li $t6, 0x1234
  bne $t5, $t6, fail         # and its value survived
  li $v1, 1
  b done
fail:
  li $v1, 0
done:
|}
    ^ exit_with_v1 ^ "\n.data\n.align 5\nsrc: .space 64\ndst: .space 64\n")

let test_cap_branches () =
  check_exit "cbtu/cbts" 1
    ({|
main:
  ccleartag $c1, $c1
  cbtu $c1, was_untagged
  li $v1, 0
  b done
was_untagged:
  cbts $c0, was_tagged
  li $v1, 0
  b done
was_tagged:
  li $v1, 1
done:
|}
    ^ exit_with_v1)

let test_ctoptr_roundtrip () =
  check_exit "ctoptr/cfromptr" 1
    ({|
main:
  la $t0, buf
  cincbase $c1, $c0, $t0
  ctoptr $t1, $c1, $c0
  bne $t1, $t0, fail        # pointer equals original address (C0 base 0)
  cfromptr $c2, $c0, $t1
  cgetbase $t2, $c2
  bne $t2, $t0, fail
  # NULL handling
  cfromptr $c3, $c0, $zero
  cgettag $t3, $c3
  bnez $t3, fail            # NULL cast yields untagged capability
  li $v1, 1
  b done
fail:
  li $v1, 0
done:
|}
    ^ exit_with_v1 ^ "\n.data\nbuf: .space 8\n")

let test_cjalr () =
  check_exit "cjalr/cjr capability call" 9
    ({|
main:
  la $t0, callee
  cincbase $c12, $c0, $t0   # code capability for callee
  cjalr $c17, $c12          # link into c17
  b done                    # after return
callee:
  li $v1, 9
  cjr $c17                  # return via link capability
done:
|}
    ^ exit_with_v1)

let test_ccall_creturn () =
  (* Build a sealed code/data pair, CCall into it, observe the domain ran
     with the unsealed data capability, then CReturn back. *)
  let code, k, _ =
    exec_program
      ({|
main:
  # authority capability for otype 42: base 42, len 1, with Permit_Seal
  li $t0, 42
  cincbase $c4, $c0, $t0
  li $t1, 1
  csetlen $c4, $c4, $t1
  # code capability for the compartment
  la $t2, compartment
  cincbase $c5, $c0, $t2
  cseal $c1, $c5, $c4       # sealed code cap (otype 42)
  # data capability: the compartment's private buffer
  la $t3, private
  cincbase $c6, $c0, $t3
  li $t4, 32
  csetlen $c6, $c6, $t4
  cseal $c2, $c6, $c4       # sealed data cap (otype 42)
  ccall $c1, $c2
  # back from compartment: v1 was set by it through its private data
  move $a0, $v1
  li $v0, 1
  syscall

compartment:
  li $t5, 33
  csd $t5, $zero, 0($c26)   # write through invoked data capability
  cld $v1, $zero, 0($c26)
  creturn
|}
      ^ "\n.data\n.align 5\nprivate: .space 32\n")
  in
  Alcotest.(check int) "compartment result" 33 code;
  Alcotest.(check int) "one protected call" 1 k.Os.Kernel.ccalls

let test_sealed_cap_unusable () =
  let trapped = ref None in
  let handler _k (fault : Os.Kernel.fault) =
    trapped := Some fault.Os.Kernel.capcause;
    Machine.Halt 79
  in
  let code, _, _ =
    exec_program ~fault_handler:(Some handler)
      ({|
main:
  li $t0, 7
  cincbase $c4, $c0, $t0
  li $t1, 1
  csetlen $c4, $c4, $t1
  la $t2, buf
  cincbase $c5, $c0, $t2
  cseal $c6, $c5, $c4
  cld $v1, $zero, 0($c6)   # dereferencing a sealed capability traps
|}
      ^ exit_with_v1 ^ "\n.data\nbuf: .space 32\n")
  in
  Alcotest.(check int) "trap exit" 79 code;
  match !trapped with
  | Some Cap.Cause.Seal_violation -> ()
  | Some c -> Alcotest.failf "wrong cause: %s" (Cap.Cause.to_string c)
  | None -> Alcotest.fail "no CP2 fault observed"

(* --- legacy sandboxing (Section 5.3) -------------------------------------- *)

let test_sandbox_confines_legacy_code () =
  (* Legacy (capability-unaware) code in a sandbox: its ordinary loads and
     stores are bounded by the restricted C0.  The sandboxed blob below
     tries to read address 0x20000 — outside its micro-address space —
     and must take a CP2 length violation, invisible to itself. *)
  let m = Machine.create () in
  let k = Os.Kernel.attach m in
  let escaped = ref false and trapped = ref None in
  Os.Kernel.set_fault_handler k (fun _ fault ->
      trapped := Some fault.Os.Kernel.exc;
      Machine.Halt 55);
  let program =
    Asm.Assembler.assemble
      {|
  .text 0x40000
sandbox_entry:
  li $t0, 0x1000
  sw $t0, 0($t0)       # in-bounds store: allowed (C0-relative)
  lui $t1, 2           # 0x20000: beyond the sandbox's 8 KB
  lw $t2, 0($t1)       # must trap
  sw $t2, 4($t0)
  break
|}
  in
  Asm.Assembler.load m program;
  Machine.map_identity m ~vaddr:0L ~len:(1 lsl 20) Mem.Tlb.prot_rwx;
  let _sandbox = Os.Sandbox.enter m ~base:0x40000L ~length:0x2000L ~entry:0x40000L in
  (match Machine.run ~max_insns:1_000L m with
  | 55 -> ()
  | code -> Alcotest.failf "unexpected exit %d" code
  | exception _ -> escaped := true);
  Alcotest.(check bool) "did not escape" false !escaped;
  match !trapped with
  | Some (Cp0.Cp2 Cap.Cause.Length_violation) -> ()
  | Some e -> Alcotest.failf "wrong exception: %s" (Cp0.exc_to_string e)
  | None -> Alcotest.fail "no fault observed"

(* Note: the sandboxed store above goes to sandbox-relative 0x1000, i.e.
   physical 0x41000 — C0-relative addressing relocates the sandbox. *)

let test_sandbox_relocation () =
  let m = Machine.create () in
  let _k = Os.Kernel.attach m in
  let program =
    Asm.Assembler.assemble
      {|
  .text 0x40000
entry:
  li $t0, 0x100
  li $t1, 77
  sw $t1, 0($t0)     # sandbox-relative address 0x100
  break
|}
  in
  Asm.Assembler.load m program;
  Machine.map_identity m ~vaddr:0L ~len:(1 lsl 20) Mem.Tlb.prot_rwx;
  let sandbox = Os.Sandbox.enter m ~base:0x40000L ~length:0x2000L ~entry:0x40000L in
  Os.Kernel.set_fault_handler (Os.Kernel.attach m) (fun _ _ -> Machine.Halt 0);
  ignore (Machine.run ~max_insns:100L m);
  Os.Sandbox.leave m sandbox;
  Alcotest.(check int) "store landed inside sandbox" 77
    (Mem.Phys.read_u32 m.Machine.phys 0x40100L)

(* --- context switching ---------------------------------------------------- *)

let test_context_roundtrip () =
  let m = Machine.create () in
  Machine.set_gpr m 5 123L;
  Machine.set_cap m 7 (Cap.Capability.make ~perms:Cap.Perms.load ~base:0x100L ~length:0x10L);
  let ctx = Os.Context.save m in
  Machine.set_gpr m 5 0L;
  Machine.set_cap m 7 Cap.Capability.null;
  m.Machine.pc <- 0xDEADL;
  Os.Context.restore m ctx;
  Alcotest.(check int64) "gpr restored" 123L (Machine.gpr m 5);
  Alcotest.(check bool) "cap restored" true
    (Cap.Capability.equal (Machine.cap m 7)
       (Cap.Capability.make ~perms:Cap.Perms.load ~base:0x100L ~length:0x10L));
  Alcotest.(check int) "switch footprint" (256 + 1056) Os.Context.switch_bytes

(* --- performance model ----------------------------------------------------- *)

let test_cache_model () =
  let c = Mem.Cache.create ~name:"t" ~size_bytes:1024 ~line_bytes:32 ~assoc:2 in
  (* 1024 B / 32 B = 32 lines; 16 sets x 2 ways. *)
  ignore (Mem.Cache.access c ~addr:0L ~write:false);
  Alcotest.(check int) "first touch misses" 1 c.Mem.Cache.misses;
  ignore (Mem.Cache.access c ~addr:16L ~write:false);
  Alcotest.(check int) "same line hits" 1 c.Mem.Cache.hits;
  (* Three distinct lines mapping to set 0 with assoc 2: eviction. *)
  ignore (Mem.Cache.access c ~addr:512L ~write:true);
  ignore (Mem.Cache.access c ~addr:1024L ~write:false);
  ignore (Mem.Cache.access c ~addr:0L ~write:false);
  Alcotest.(check int) "lru eviction misses" 4 c.Mem.Cache.misses;
  (* The dirty line at 512 was evicted by the re-touch of 0. *)
  ignore (Mem.Cache.access c ~addr:512L ~write:false);
  Alcotest.(check bool) "writeback happened" true (c.Mem.Cache.writebacks >= 1)

let test_tlb_model () =
  let tlb = Mem.Tlb.create ~entries:2 () in
  Mem.Tlb.map tlb ~vaddr:0L ~len:(4096 * 4) Mem.Tlb.prot_rwx;
  ignore (Mem.Tlb.touch tlb 0L);
  ignore (Mem.Tlb.touch tlb 4096L);
  Alcotest.(check bool) "hit on resident page" true (Mem.Tlb.touch tlb 0L);
  ignore (Mem.Tlb.touch tlb 8192L);
  (* Capacity 2: page 4096 was LRU and got evicted. *)
  Alcotest.(check bool) "miss after eviction" false (Mem.Tlb.touch tlb 4096L);
  Alcotest.(check bool) "protection lookup" true (Mem.Tlb.protection tlb 0L).Mem.Tlb.valid;
  Alcotest.(check bool) "unmapped invalid" false (Mem.Tlb.protection tlb 0x100000L).Mem.Tlb.valid

let test_timing_counts () =
  let _, _, m =
    exec_program
      ({|
main:
  li $t0, 100
loop:
  daddiu $t0, $t0, -1
  bgtz $t0, loop
  li $v1, 0
|}
      ^ exit_with_v1)
  in
  Alcotest.(check bool) "instructions counted" true (m.Machine.instret > 200);
  Alcotest.(check bool) "cycles >= instructions" true (m.Machine.cycles >= m.Machine.instret)

(* Decode-cache coherence under self-modifying code.  The interpreter
   caches decoded instructions by PC; like real MIPS I-caches, stores are
   NOT snooped — code that rewrites itself must execute an explicit
   synchronization (here [Machine.invalidate_icache], the model's
   CACHE/SYNCI).  This pins down both halves of that contract: without
   the flush the stale decode is (observably) still executed, and after
   the flush the newly stored word is fetched and decoded. *)
let test_smc_decode_coherence () =
  let m = Machine.create () in
  Machine.set_timing m false;
  Machine.set_kernel m (fun _ ctx ->
      match ctx.Machine.exc with
      | Cp0.Breakpoint -> Machine.Halt 0
      | e -> Alcotest.failf "unexpected exception: %s" (Cp0.exc_to_string e));
  Machine.map_identity m ~vaddr:0L ~len:(1 lsl 20) Mem.Tlb.prot_rwx;
  (* target: v1 <- 1, then break *)
  let target = 0x10000L in
  Mem.Phys.write_u32 m.Machine.phys target (Code.encode (Insn.Daddiu (3, 0, 1)));
  Mem.Phys.write_u32 m.Machine.phys (Int64.add target 4L) (Code.encode Insn.Break);
  (* patcher: sw $t1, 0($t0), then break — a store through the machine's
     own data path, aimed at the already-executed target PC.  Placed near
     the target so it does not alias the target's direct-mapped decode
     slot (which would flush the entry by collision and mask the staleness
     this test is about). *)
  let patcher = 0x10100L in
  Mem.Phys.write_u32 m.Machine.phys patcher (Code.encode (Insn.Store (Insn.W, 9, 8, 0)));
  Mem.Phys.write_u32 m.Machine.phys (Int64.add patcher 4L) (Code.encode Insn.Break);
  let run_at pc =
    m.Machine.pc <- pc;
    ignore (Machine.run ~max_insns:100L m)
  in
  run_at target;
  Alcotest.(check int64) "original insn executed" 1L (Machine.gpr m 3);
  (* machine-store the replacement word (v1 <- 2) over the target PC *)
  Machine.set_gpr m 8 target;
  Machine.set_gpr m 9 (Int64.of_int (Code.encode (Insn.Daddiu (3, 0, 2))));
  run_at patcher;
  Alcotest.(check int) "memory holds the new word"
    (Code.encode (Insn.Daddiu (3, 0, 2)))
    (Mem.Phys.read_u32 m.Machine.phys target);
  (* without synchronization the decode cache still serves the old insn *)
  Machine.set_gpr m 3 0L;
  run_at target;
  Alcotest.(check int64) "stale decode without invalidate" 1L (Machine.gpr m 3);
  (* explicit flush: the new instruction becomes visible *)
  Machine.invalidate_icache m;
  Machine.set_gpr m 3 0L;
  run_at target;
  Alcotest.(check int64) "new insn after invalidate_icache" 2L (Machine.gpr m 3)

(* The superblock tier above the decode cache adds a second place stale
   code could hide: a pinned block carries its own pre-decoded copy of
   the instructions.  Unlike the decode cache, translated regions ARE
   store-snooped — a store into a covered range retires the whole tier —
   so a pinned block can never serve a decode the plain engine's
   direct-mapped cache would already have replaced.  The architectural
   contract stays exactly the plain engine's: stale until
   [invalidate_icache], fresh after.  This pins the snoop (through the
   host-side translation counter) and the contract. *)
let test_smc_superblock_coherence () =
  let m = Machine.create () in
  Machine.set_timing m false;
  Machine.set_kernel m (fun _ ctx ->
      match ctx.Machine.exc with
      | Cp0.Breakpoint -> Machine.Halt 0
      | e -> Alcotest.failf "unexpected exception: %s" (Cp0.exc_to_string e));
  Machine.map_identity m ~vaddr:0L ~len:(1 lsl 20) Mem.Tlb.prot_rwx;
  let target = 0x10000L in
  Mem.Phys.write_u32 m.Machine.phys target (Code.encode (Insn.Daddiu (3, 0, 1)));
  Mem.Phys.write_u32 m.Machine.phys (Int64.add target 4L) (Code.encode (Insn.Daddiu (4, 0, 7)));
  Mem.Phys.write_u32 m.Machine.phys (Int64.add target 8L) (Code.encode Insn.Break);
  let patcher = 0x10100L in
  Mem.Phys.write_u32 m.Machine.phys patcher (Code.encode (Insn.Store (Insn.W, 9, 8, 0)));
  Mem.Phys.write_u32 m.Machine.phys (Int64.add patcher 4L) (Code.encode Insn.Break);
  let run_at pc =
    m.Machine.pc <- pc;
    ignore (Machine.run ~max_insns:100L m)
  in
  (* first pass warms the decode cache; the second pins a superblock *)
  run_at target;
  run_at target;
  Alcotest.(check bool) "superblock pinned" true (m.Machine.sb_translations > 0);
  let formed = m.Machine.sb_translations in
  (* patch the block's second instruction through the machine's own data
     path: the store intersects a translated region, retiring the tier *)
  Machine.set_gpr m 8 (Int64.add target 4L);
  Machine.set_gpr m 9 (Int64.of_int (Code.encode (Insn.Daddiu (4, 0, 9))));
  run_at patcher;
  Machine.set_gpr m 4 0L;
  run_at target;
  Alcotest.(check bool) "block re-translated after store snoop" true
    (m.Machine.sb_translations > formed);
  (* re-translation reads the still-stale decode cache: same observable
     staleness as the plain engine until the explicit synchronization *)
  Alcotest.(check int64) "stale decode without invalidate" 7L (Machine.gpr m 4);
  Machine.invalidate_icache m;
  Machine.set_gpr m 4 0L;
  run_at target;
  Alcotest.(check int64) "new insn after invalidate_icache" 9L (Machine.gpr m 4)

(* Trap-heavy engine differential: a hot straight-line block whose load
   walks off the end of its capability must produce identical
   architectural results under the plain and superblock engines — same
   trap, same EPC, same retired/cycle counts (the superblock tier
   charges its own I-side costs), same data flow. *)
let test_engine_trap_differential () =
  let source =
    {|
main:
  la $t0, buf
  cincbase $c1, $c0, $t0
  li $t1, 64
  csetlen $c1, $c1, $t1
  li $t2, 0
  li $t3, 0
loop:
  cld $v1, $t3, 0($c1)    # traps once $t3 walks past the 64-byte bound
  daddu $t2, $t2, $v1
  daddiu $t3, $t3, 8
  b loop
|}
    ^ "\n.data\n.align 5\nbuf: .space 64\n"
  in
  let run engine =
    let m = Machine.create () in
    Machine.set_engine m engine;
    let k = Os.Kernel.attach m in
    Os.Kernel.set_fault_handler k (fun _ (fault : Os.Kernel.fault) ->
        Machine.Halt (100 + Cap.Cause.code fault.Os.Kernel.capcause));
    Os.Kernel.exec k (Asm.Assembler.assemble source);
    let code = Machine.run ~max_insns:100_000L m in
    (code, m)
  in
  let code_p, mp = run Machine.Plain in
  let code_s, ms = run Machine.Superblock in
  Alcotest.(check int) "exit codes agree" code_p code_s;
  Alcotest.(check int) "length violation"
    (100 + Cap.Cause.code Cap.Cause.Length_violation)
    code_s;
  Alcotest.(check int) "instret agrees" mp.Machine.instret ms.Machine.instret;
  Alcotest.(check int) "cycles agree" mp.Machine.cycles ms.Machine.cycles;
  Alcotest.(check int64) "accumulator agrees" (Machine.gpr mp 10) (Machine.gpr ms 10);
  Alcotest.(check int64) "epc agrees" mp.Machine.cp0.Cp0.epc ms.Machine.cp0.Cp0.epc

(* Checkpoint/restore round-trip: freeze a machine mid-program, let it
   run to completion, rewind, and rerun — digest, counters, and memory
   must retrace exactly.  This is the contract the serving pool's warm
   reset stands on. *)
let test_checkpoint_restore_roundtrip () =
  let m = Machine.create () in
  Machine.set_engine m Machine.Superblock;
  let k = Os.Kernel.attach m in
  let source =
    {|
main:
  li $t0, 0x200000
  li $a0, 0x400000
  li $v0, 3
  syscall
  li $t1, 0
  li $t2, 2000
loop:
  sd $t1, 0($t0)
  daddiu $t0, $t0, 64
  daddiu $t1, $t1, 3
  daddiu $t2, $t2, -1
  bgtz $t2, loop
  li $v0, 1
  li $a0, 0
  syscall
|}
  in
  Os.Kernel.exec k (Asm.Assembler.assemble source);
  (* partway into the loop *)
  ignore (Machine.run_result ~max_insns:500L m);
  let mid =
    (Machine.state_digest m, m.Machine.cycles, m.Machine.instret,
     Mem.Phys.read_u64 m.Machine.phys 0x207D00L)
  in
  let ck = Machine.checkpoint m in
  let code = Machine.run ~max_insns:1_000_000L m in
  Alcotest.(check int) "first run exits" 0 code;
  let fin =
    (Machine.state_digest m, m.Machine.cycles, m.Machine.instret,
     Mem.Phys.read_u64 m.Machine.phys 0x207D00L)
  in
  Alcotest.(check bool) "the probe word was written after the checkpoint" true (mid <> fin);
  let pages = Machine.restore m ck in
  Alcotest.(check bool) "restore rewound dirtied pages" true (pages > 0);
  Alcotest.(check bool) "restored state matches the checkpoint instant" true
    (mid
    = (Machine.state_digest m, m.Machine.cycles, m.Machine.instret,
       Mem.Phys.read_u64 m.Machine.phys 0x207D00L));
  let code = Machine.run ~max_insns:1_000_000L m in
  Alcotest.(check int) "rerun exits" 0 code;
  Alcotest.(check bool) "rerun retraces the first run exactly" true
    (fin
    = (Machine.state_digest m, m.Machine.cycles, m.Machine.instret,
       Mem.Phys.read_u64 m.Machine.phys 0x207D00L))

(* SMC coherence across restore, both directions: (a) code decoded (and
   superblock-pinned) after the checkpoint must not survive a rewind of
   its page — restore intersects the rewound dirty pages with the pages
   the decode cache was filled from and flushes on overlap; (b) the
   store-snoop over translated regions keeps working after a restore, so
   post-restore patches still retire stale superblocks. *)
let test_checkpoint_smc_coherence () =
  let m = Machine.create () in
  Machine.set_engine m Machine.Superblock;
  Machine.set_timing m false;
  Machine.set_kernel m (fun _ ctx ->
      match ctx.Machine.exc with
      | Cp0.Breakpoint -> Machine.Halt 0
      | e -> Alcotest.failf "unexpected exception: %s" (Cp0.exc_to_string e));
  Machine.map_identity m ~vaddr:0L ~len:(1 lsl 20) Mem.Tlb.prot_rwx;
  let target = 0x10000L in
  let original = Code.encode (Insn.Daddiu (3, 0, 1)) in
  Mem.Phys.write_u32 m.Machine.phys target original;
  Mem.Phys.write_u32 m.Machine.phys (Int64.add target 4L) (Code.encode Insn.Break);
  let patcher = 0x10100L in
  Mem.Phys.write_u32 m.Machine.phys patcher (Code.encode (Insn.Store (Insn.W, 9, 8, 0)));
  Mem.Phys.write_u32 m.Machine.phys (Int64.add patcher 4L) (Code.encode Insn.Break);
  let run_at pc =
    m.Machine.pc <- pc;
    ignore (Machine.run ~max_insns:100L m)
  in
  (* two passes pin a superblock over the target before the checkpoint *)
  run_at target;
  run_at target;
  Alcotest.(check int64) "original insn executed" 1L (Machine.gpr m 3);
  let ck = Machine.checkpoint m in
  (* post-checkpoint SMC: patch, synchronize, execute the new code — the
     decode cache and superblock tier now hold the patched instruction *)
  Machine.set_gpr m 8 target;
  Machine.set_gpr m 9 (Int64.of_int (Code.encode (Insn.Daddiu (3, 0, 2))));
  run_at patcher;
  Machine.invalidate_icache m;
  Machine.set_gpr m 3 0L;
  run_at target;
  Alcotest.(check int64) "patched insn executed after sync" 2L (Machine.gpr m 3);
  (* rewind: memory holds the original word again, and the cached decode
     of the patched one must not be served *)
  ignore (Machine.restore m ck : int);
  Alcotest.(check int) "restore rewound the patch" original
    (Mem.Phys.read_u32 m.Machine.phys target);
  Machine.set_gpr m 3 0L;
  run_at target;
  Alcotest.(check int64) "original insn executes after restore" 1L (Machine.gpr m 3);
  (* re-pin (two passes), then patch after the restore: the
     translated-region snoop must still retire the superblock, which
     re-forms from the still-warm (stale) decode cache on the next run —
     the plain engine's staleness contract, then freshness after sync *)
  run_at target;
  run_at target;
  let formed = m.Machine.sb_translations in
  Machine.set_gpr m 8 target;
  Machine.set_gpr m 9 (Int64.of_int (Code.encode (Insn.Daddiu (3, 0, 9))));
  run_at patcher;
  Machine.set_gpr m 3 0L;
  run_at target;
  Alcotest.(check bool) "superblock re-translated after post-restore store" true
    (m.Machine.sb_translations > formed);
  Alcotest.(check int64) "stale decode until sync" 1L (Machine.gpr m 3);
  Machine.invalidate_icache m;
  Machine.set_gpr m 3 0L;
  run_at target;
  Alcotest.(check int64) "post-restore patch visible after sync" 9L (Machine.gpr m 3)

let test_tag_controller_traffic () =
  (* Touching lots of distinct lines drives tag-table fills through the tag
     cache; its miss count must stay tiny relative to data misses (the
     paper: the 8 KB tag cache "does not noticeably degrade performance"). *)
  let m = Machine.create () in
  let k = Os.Kernel.attach m in
  let source =
    {|
main:
  li $t0, 0x200000
  li $a0, 0x400000
  li $v0, 3
  syscall
  li $t1, 8192
loop:
  sd $t1, 0($t0)
  daddiu $t0, $t0, 64
  daddiu $t1, $t1, -1
  bgtz $t1, loop
  li $v0, 1
  li $a0, 0
  syscall
|}
  in
  let code, _ = Os.Kernel.run_program k source in
  Alcotest.(check int) "ran" 0 code;
  let tag_misses = m.Machine.hier.Mem.Hierarchy.tag_cache.Mem.Cache.misses in
  let data_misses = m.Machine.hier.Mem.Hierarchy.l1d.Mem.Cache.misses in
  Alcotest.(check bool) "tag cache miss rate tiny" true (tag_misses * 10 < data_misses)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let suites =
  [
    qsuite "isa-encoding" [ prop_code_roundtrip; prop_decode_total ];
    ( "machine-mips",
      [
        Alcotest.test_case "arithmetic" `Quick test_arith;
        Alcotest.test_case "memory" `Quick test_memory;
        Alcotest.test_case "sub-word memory" `Quick test_subword_memory;
        Alcotest.test_case "branches and loops" `Quick test_branches_loops;
        Alcotest.test_case "function calls" `Quick test_function_call;
        Alcotest.test_case "console syscalls" `Quick test_console;
        Alcotest.test_case "sbrk" `Quick test_sbrk;
      ] );
    ( "machine-cheri",
      [
        Alcotest.test_case "derive and access" `Quick test_cap_derive_and_access;
        Alcotest.test_case "bounds trap" `Quick test_cap_bounds_trap;
        Alcotest.test_case "permission trap" `Quick test_cap_perm_trap;
        Alcotest.test_case "tag cleared by data store" `Quick test_tag_clear_on_data_store;
        Alcotest.test_case "capability-oblivious memcpy" `Quick test_memcpy_preserves_caps;
        Alcotest.test_case "tag branches" `Quick test_cap_branches;
        Alcotest.test_case "ctoptr/cfromptr" `Quick test_ctoptr_roundtrip;
        Alcotest.test_case "cjalr/cjr" `Quick test_cjalr;
        Alcotest.test_case "ccall/creturn" `Quick test_ccall_creturn;
        Alcotest.test_case "sealed capability unusable" `Quick test_sealed_cap_unusable;
      ] );
    ( "sandbox",
      [
        Alcotest.test_case "confines legacy code" `Quick test_sandbox_confines_legacy_code;
        Alcotest.test_case "C0 relocation" `Quick test_sandbox_relocation;
      ] );
    ( "kernel",
      [ Alcotest.test_case "context save/restore" `Quick test_context_roundtrip ] );
    ( "perf-model",
      [
        Alcotest.test_case "cache LRU/writeback" `Quick test_cache_model;
        Alcotest.test_case "TLB reach" `Quick test_tlb_model;
        Alcotest.test_case "cycle accounting" `Quick test_timing_counts;
        Alcotest.test_case "SMC decode coherence" `Quick test_smc_decode_coherence;
        Alcotest.test_case "SMC superblock coherence" `Quick test_smc_superblock_coherence;
        Alcotest.test_case "engine trap differential" `Quick test_engine_trap_differential;
        Alcotest.test_case "tag controller traffic" `Quick test_tag_controller_traffic;
        Alcotest.test_case "checkpoint/restore round-trip" `Quick test_checkpoint_restore_roundtrip;
        Alcotest.test_case "checkpoint SMC coherence" `Quick test_checkpoint_smc_coherence;
      ] );
  ]

(* --- whole-machine monotonicity ------------------------------------------- *)

(* The paper's core security argument (Section 4.2): "a protection domain
   is defined by the transitive closure of memory capabilities reachable
   from its capability register set."  We state it as an executable
   property: starting from a register file holding only capabilities
   derived from two roots (a data root and the code root PCC), NO sequence
   of capability instructions can produce a reachable capability that
   exceeds those roots — whether in a register or in tagged memory. *)

let data_root =
  Cap.Capability.make ~perms:Cap.Perms.all ~base:0x200000L ~length:0x10000L

let within_roots code_root c =
  (not (Cap.Capability.tag c))
  || Cap.Capability.rights_subset c data_root
  || Cap.Capability.rights_subset c code_root

let gen_cap_insn =
  let open QCheck.Gen in
  let creg = int_range 1 31 in
  let gpr = int_range 1 15 in
  oneof
    [
      map3 (fun a b c -> Insn.CIncBase (a, b, c)) creg creg gpr;
      map3 (fun a b c -> Insn.CSetLen (a, b, c)) creg creg gpr;
      map3 (fun a b c -> Insn.CAndPerm (a, b, c)) creg creg gpr;
      map2 (fun a b -> Insn.CMove (a, b)) creg creg;
      map2 (fun a b -> Insn.CClearTag (a, b)) creg creg;
      map3 (fun a b c -> Insn.CFromPtr (a, b, c)) creg creg gpr;
      map3 (fun a b c -> Insn.CToPtr (a, b, c)) gpr creg creg;
      map2 (fun a b -> Insn.CGetBase (a, b)) gpr creg;
      map2 (fun a b -> Insn.CGetLen (a, b)) gpr creg;
      map2 (fun a b -> Insn.CGetPerm (a, b)) gpr creg;
      map2 (fun a b -> Insn.CGetPCC (a, b)) gpr creg;
      map3 (fun a b c -> Insn.CSeal (a, b, c)) creg creg creg;
      map3 (fun a b c -> Insn.CUnseal (a, b, c)) creg creg creg;
      (* capability stores/loads within the data region *)
      (let* cs = creg and* cb = creg and* slot = int_bound 63 in
       return (Insn.CSC (cs, cb, 0, 32 * slot)));
      (let* cd = creg and* cb = creg and* slot = int_bound 63 in
       return (Insn.CLC (cd, cb, 0, 32 * slot)));
      (* scalar stores that should strip tags, never forge *)
      (let* rs = gpr and* cb = creg and* imm = int_bound 100 in
       return (Insn.CStore (Insn.D, rs, cb, 0, imm)));
      (* GPR noise *)
      map3 (fun a b c -> Insn.Daddiu (a, b, c)) gpr gpr (int_bound 4096);
      map3 (fun a b c -> Insn.Xor (a, b, c)) gpr gpr gpr;
    ]

let prop_machine_monotonic =
  QCheck.Test.make ~count:60 ~name:"no instruction sequence escapes the protection domain"
    (QCheck.make
       ~print:(fun insns -> String.concat "\n" (List.map Insn.to_string insns))
       (QCheck.Gen.list_size (QCheck.Gen.int_range 10 60) gen_cap_insn))
    (fun insns ->
      let m = Machine.create () in
      Machine.set_timing m false;
      (* kernel: on any fault, skip the faulting instruction *)
      Machine.set_kernel m (fun m ctx ->
          match ctx.Machine.exc with
          | Cp0.Syscall | Cp0.Breakpoint -> Machine.Halt 0
          | _ -> Machine.Resume_at (Int64.add m.Machine.cp0.Cp0.epc 4L));
      Machine.map_identity m ~vaddr:0L ~len:(4 * 1024 * 1024) Mem.Tlb.prot_rwx;
      (* program image *)
      let text_base = 0x10000L in
      List.iteri
        (fun i insn ->
          Mem.Phys.write_u32 m.Machine.phys
            (Int64.add text_base (Int64.of_int (4 * i)))
            (Code.encode insn))
        insns;
      Mem.Phys.write_u32 m.Machine.phys
        (Int64.add text_base (Int64.of_int (4 * List.length insns)))
        (Code.encode Insn.Break);
      let code_root =
        Cap.Capability.make
          ~perms:(Cap.Perms.union Cap.Perms.execute Cap.Perms.global)
          ~base:text_base ~length:0x1000L
      in
      (* initial domain: data root in every capability register *)
      for i = 0 to 31 do
        Machine.set_cap m i data_root
      done;
      m.Machine.pcc <- code_root;
      m.Machine.pc <- text_base;
      (* seed GPRs with small values so derivations do something *)
      for i = 1 to 15 do
        Machine.set_gpr m i (Int64.of_int (i * 24))
      done;
      ignore (Machine.run ~max_insns:(Int64.of_int (4 * List.length insns + 16)) m);
      (* closure check: registers *)
      let ok_regs =
        List.for_all
          (fun i -> within_roots code_root (Machine.cap m i))
          (List.init 32 Fun.id)
      in
      (* closure check: every tagged line in memory *)
      let ok_mem = ref true in
      let line = ref 0L in
      while Int64.to_int !line < 4 * 1024 * 1024 do
        if Mem.Tags.get m.Machine.tags !line then begin
          let c =
            Cap.Capability.of_bytes ~tag:true (Mem.Phys.read_bytes m.Machine.phys !line 32)
          in
          if not (within_roots code_root c) then ok_mem := false
        end;
        line := Int64.add !line 32L
      done;
      ok_regs && !ok_mem)

let suites =
  suites
  @ [ qsuite "machine-security" [ prop_machine_monotonic ] ]
