(* obs-smoke: a profiled treeadd/cheri run under `dune runtest` via the
   obs-smoke alias — the cheap end-to-end check that the observability
   subsystem stays alive.  It must produce a non-empty disasm-annotated
   hot-PC table, balanced alloc/compute spans, and be bit-for-bit
   reproducible (counter file, sample totals, collapsed stacks). *)

let run () = Exp.Profiled.run ~bench:"treeadd" ~mode:Minic.Layout.Cheri ~param:8 ()

let fail fmt = Fmt.kstr (fun s -> prerr_endline ("obs-smoke: " ^ s); exit 1) fmt

let () =
  let a = run () in
  Fmt.pr "%a@.@.%a@."
    (Obs.Span.pp_totals
       ~total_cycles:(Obs.Counters.get a.Exp.Profiled.counters Obs.Counters.cycles))
    a.Exp.Profiled.spans Exp.Profiled.pp_hot a;
  if a.Exp.Profiled.result.Exp.Bench_run.exit_code <> 0 then
    fail "treeadd exited %d" a.Exp.Profiled.result.Exp.Bench_run.exit_code;
  if a.Exp.Profiled.hot = [] then fail "empty hot-PC table";
  if a.Exp.Profiled.total_samples = 0 then fail "no samples taken";
  List.iter
    (fun name ->
      if not (List.mem_assoc name a.Exp.Profiled.spans) then fail "missing %s span" name)
    [ "alloc"; "compute" ];
  let b = run () in
  if not (Obs.Counters.equal a.Exp.Profiled.counters b.Exp.Profiled.counters) then
    fail "counter file is not reproducible";
  if a.Exp.Profiled.collapsed <> b.Exp.Profiled.collapsed then
    fail "collapsed stacks are not reproducible";
  print_endline "obs-smoke: ok"
