(* Tests for lib/obs, the observability subsystem: the JSON emitter, the
   counter file and its arithmetic, the event bus, the sampling profiler,
   and — the properties the subsystem lives or dies by — that the
   counters agree exactly with the machine and memory-hierarchy internals
   they mirror, that everything is bit-for-bit deterministic, and that
   attaching the hooks does not perturb the architectural execution. *)

let counters = Alcotest.testable Obs.Counters.pp Obs.Counters.equal

(* --- JSON emitter ------------------------------------------------------- *)

let test_json_escaping () =
  let open Obs.Json in
  Alcotest.(check string)
    "string escaping" {|"a\"b\\c\nd\te\u0001"|}
    (to_string (String "a\"b\\c\nd\te\001"));
  Alcotest.(check string)
    "nested structure" {|{"k":[1,true,null,"s"],"f":1.5}|}
    (to_string (Obj [ ("k", List [ Int 1L; Bool true; Null; String "s" ]); ("f", Float 1.5) ]));
  Alcotest.(check string) "nan degrades to null" "null" (to_string (Float Float.nan));
  Alcotest.(check string) "inf degrades to null" "null" (to_string (Float Float.infinity));
  Alcotest.(check string)
    "int64 beyond 2^53 stays exact" "9007199254740993"
    (to_string (Int 9007199254740993L))

(* --- JSON parser ---------------------------------------------------------- *)

let json = Alcotest.testable Obs.Json.pp ( = )

let parse_ok s =
  match Obs.Json.of_string s with
  | Ok v -> v
  | Error msg -> Alcotest.failf "parse %S failed: %s" s msg

let test_json_parse () =
  let open Obs.Json in
  Alcotest.check json "scalars"
    (List [ Null; Bool true; Bool false; Int 42L; Int (-17L); Float 1.5; String "hi" ])
    (parse_ok {| [null, true, false, 42, -17, 1.5, "hi"] |});
  Alcotest.check json "nested object"
    (Obj [ ("a", List [ Int 1L ]); ("b", Obj [ ("c", String "d") ]) ])
    (parse_ok {|{"a":[1],"b":{"c":"d"}}|});
  Alcotest.check json "empty containers" (List [ Obj []; List [] ]) (parse_ok "[{}, []]");
  Alcotest.check json "string escapes"
    (String "a\"b\\c\nd\te/")
    (parse_ok {|"a\"b\\c\nd\te\/"|});
  Alcotest.check json "unicode escapes incl. surrogate pair"
    (String "A\xc2\xa2\xe2\x82\xac\xf0\x9d\x84\x9e")
    (parse_ok "\"A\\u00a2\\u20ac\\ud834\\udd1e\"");
  Alcotest.check json "max int64 stays exact"
    (Int Int64.max_int)
    (parse_ok "9223372036854775807");
  Alcotest.check json "min int64 stays exact"
    (Int Int64.min_int)
    (parse_ok "-9223372036854775808");
  Alcotest.check json "beyond int64 degrades to float"
    (Float 1e19)
    (parse_ok "10000000000000000000");
  Alcotest.check json "exponent floats" (Float 2.5e3) (parse_ok "2.5e3");
  List.iter
    (fun bad ->
      match Obs.Json.of_string bad with
      | Ok v -> Alcotest.failf "parse %S unexpectedly succeeded: %s" bad (Obs.Json.to_string v)
      | Error _ -> ())
    [ ""; "{"; {|{"a":}|}; "[1,]"; "nul"; {|"unterminated|}; "1 2"; {|"\q"|}; {|"\ud834"|} ]

(* Emit -> parse is the identity on every value the exporters produce. *)
let test_json_roundtrip () =
  let open Obs.Json in
  let v =
    Obj
      [
        ("neg", Int (-123456789L));
        ("big", Int 9007199254740993L);
        ("min", Int Int64.min_int);
        ("f", Float 0.0625);
        ("s", String "tab\t\"quote\"\x01");
        ("l", List [ Null; Bool true; Obj [ ("x", Int 1L) ] ]);
      ]
  in
  Alcotest.check json "roundtrip" v (parse_ok (to_string v));
  (* Non-integral floats round-trip through %.12g; integral ones come
     back as Int (the emitter prints them without a point). *)
  List.iter
    (fun f ->
      Alcotest.check json
        (Printf.sprintf "float %g roundtrips" f)
        (Float f)
        (parse_ok (to_string (Float f))))
    [ 0.5; 1.5; 0.0625; 1e-3 ];
  Alcotest.check json "integral float parses as Int" (Int 100L) (parse_ok (to_string (Float 100.0)))

(* --- counter arithmetic -------------------------------------------------- *)

let test_counter_arithmetic () =
  let a = Obs.Counters.create () and b = Obs.Counters.create () in
  Obs.Counters.set a Obs.Counters.instret 100L;
  Obs.Counters.set a Obs.Counters.cycles 250L;
  Obs.Counters.set b Obs.Counters.instret 30L;
  Obs.Counters.set b Obs.Counters.cycles 50L;
  let d = Obs.Counters.diff a b in
  Alcotest.(check int64) "diff instret" 70L (Obs.Counters.get d Obs.Counters.instret);
  Alcotest.(check int64) "diff cycles" 200L (Obs.Counters.get d Obs.Counters.cycles);
  Obs.Counters.accumulate b d;
  Alcotest.check counters "before + diff = after" a b;
  Alcotest.(check int)
    "names cover every index" Obs.Counters.count
    (List.length (Obs.Counters.to_assoc a));
  let c = Obs.Counters.copy a in
  Alcotest.check counters "copy equals source" a c;
  Obs.Counters.incr c Obs.Counters.instret;
  Alcotest.(check bool) "copy is independent" false (Obs.Counters.equal a c);
  Obs.Counters.reset c;
  Alcotest.check counters "reset is all zero" (Obs.Counters.create ()) c

let test_counter_ratios () =
  let c = Obs.Counters.create () in
  Obs.Counters.set c Obs.Counters.l1d_hits 75L;
  Obs.Counters.set c Obs.Counters.l1d_misses 25L;
  Alcotest.(check (float 1e-9))
    "miss rate" 25.0
    (Obs.Counters.miss_rate_pct c ~hits:Obs.Counters.l1d_hits ~misses:Obs.Counters.l1d_misses);
  Alcotest.(check (float 1e-9)) "zero denominator" 0.0 (Obs.Counters.ratio_pct 5L 0L)

(* --- event bus ------------------------------------------------------------ *)

let test_event_bus () =
  let bus = Obs.Event.create () in
  let buf = Buffer.create 256 in
  let seen = ref [] in
  (* seq advances even with no sinks attached ... *)
  Obs.Event.emit bus ~kind:"early" [];
  Obs.Event.subscribe bus (Obs.Event.jsonl_sink buf);
  Obs.Event.subscribe bus (fun e -> seen := e :: !seen);
  Obs.Event.emit bus ~kind:"span-enter" ~name:"alloc" [];
  Obs.Event.emit bus ~kind:"alloc" [ ("bytes", Obs.Json.Int 64L) ];
  let lines =
    String.split_on_char '\n' (Buffer.contents buf) |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one JSONL line per event" 2 (List.length lines);
  Alcotest.(check string)
    "JSONL shape" {|{"seq":1,"kind":"span-enter","name":"alloc"}|} (List.hd lines);
  (* ... so sinks subscribed later still see a total order. *)
  Alcotest.(check (list int))
    "sequence numbers" [ 2; 1 ]
    (List.map (fun (e : Obs.Event.t) -> e.Obs.Event.seq) !seen)

(* --- sampling profiler ----------------------------------------------------- *)

let test_profile_sampling () =
  let p = Obs.Profile.create ~period:10 () in
  for i = 1 to 100 do
    ignore (Obs.Profile.step p (Int64.of_int (0x1000 + (i mod 3))))
  done;
  Alcotest.(check int) "100 steps / period 10 = 10 samples" 10 (Obs.Profile.total_samples p);
  let top = Obs.Profile.top p ~n:5 in
  Alcotest.(check int) "three distinct pcs" 3 (List.length top);
  Alcotest.(check int)
    "samples sum to total" 10
    (List.fold_left (fun acc (_, n) -> acc + n) 0 top);
  Alcotest.check_raises "period must be positive"
    (Invalid_argument "Profile.create: period must be positive") (fun () ->
      ignore (Obs.Profile.create ~period:0 ()))

let test_profile_stacks () =
  let p = Obs.Profile.create ~period:1 () in
  Obs.Profile.call p 0x100L;
  Obs.Profile.call p 0x200L;
  ignore (Obs.Profile.step p 0x204L);
  Obs.Profile.ret p;
  ignore (Obs.Profile.step p 0x104L);
  Obs.Profile.ret p;
  Obs.Profile.ret p (* unbalanced return is ignored *);
  ignore (Obs.Profile.step p 0x8L);
  let resolve pc = match pc with 0x100L -> "f" | 0x200L -> "g" | _ -> "?" in
  Alcotest.(check (list string))
    "collapsed stacks" [ "all 1"; "all;f 1"; "all;f;g 1" ]
    (Obs.Profile.collapsed ~resolve p)

(* --- log2 histograms -------------------------------------------------------- *)

let test_hist () =
  let open Obs.Hist in
  Alcotest.(check int) "bucket of 0" 0 (bucket_of 0L);
  Alcotest.(check int) "bucket of 1" 1 (bucket_of 1L);
  Alcotest.(check int) "bucket of 7" 3 (bucket_of 7L);
  Alcotest.(check int) "bucket of 8" 4 (bucket_of 8L);
  Alcotest.(check int) "bucket of max_int64" 63 (bucket_of Int64.max_int);
  Alcotest.(check (pair int64 int64)) "bounds of bucket 0" (0L, 1L) (bucket_bounds 0);
  Alcotest.(check (pair int64 int64)) "bounds of bucket 4" (8L, 16L) (bucket_bounds 4);
  let h = create ~name:"t" () in
  Alcotest.(check int) "empty total" 0 (total h);
  Alcotest.(check (float 1e-9)) "empty mean" 0.0 (mean h);
  Alcotest.(check int64) "empty quantile" 0L (quantile h 0.99);
  List.iter (observe_int h) [ 0; 1; 3; 8; 8; 100 ];
  Alcotest.(check int) "total counts observations" 6 (total h);
  Alcotest.(check (float 1e-9)) "mean" 20.0 (mean h);
  Alcotest.(check (list (pair int int)))
    "nonempty buckets" [ (0, 1); (1, 1); (2, 1); (4, 2); (7, 1) ]
    (nonempty h);
  Alcotest.(check int64) "median is the [2,4) bucket's upper bound" 4L (quantile h 0.5);
  Alcotest.(check int64) "p100 clamps to the observed max" 100L (quantile h 1.0);
  let h2 = create ~name:"t2" () in
  List.iter (observe_int h2) [ 2; 1000 ];
  merge h h2;
  Alcotest.(check int) "merge adds totals" 8 (total h);
  Alcotest.(check int64) "merge tracks max" 1000L (quantile h 1.0);
  (* negative observations clamp to zero rather than corrupting buckets *)
  observe h (-5L);
  Alcotest.(check (list (pair int int)))
    "negative clamps to bucket 0"
    [ (0, 2); (1, 1); (2, 2); (4, 2); (7, 1); (10, 1) ]
    (nonempty h);
  (match to_json h with
  | Obs.Json.Obj fields ->
      Alcotest.(check bool) "json has buckets" true (List.mem_assoc "buckets" fields)
  | _ -> Alcotest.fail "hist json is not an object")

(* --- counters vs machine & hierarchy internals ------------------------------ *)

let loop_program =
  {|
main:
  li $t0, 50
loop:
  sd $t0, 0($sp)
  ld $t1, 0($sp)
  daddiu $t0, $t0, -1
  bgtz $t0, loop
  li $v0, 1
  li $a0, 0
  syscall
|}

let test_counters_match_machine () =
  let m = Machine.create () in
  let k = Os.Kernel.attach m in
  let code, _ = Os.Kernel.run_program k loop_program in
  Alcotest.(check int) "clean exit" 0 code;
  let c = Os.Kernel.read_counters k in
  let get = Obs.Counters.get c in
  Alcotest.(check int64)
    "instret matches machine" (Int64.of_int m.Machine.instret) (get Obs.Counters.instret);
  Alcotest.(check int64)
    "cycles match machine" (Int64.of_int m.Machine.cycles) (get Obs.Counters.cycles);
  Alcotest.(check int64)
    "stores match machine" (Int64.of_int m.Machine.stores) (get Obs.Counters.retired_stores);
  Alcotest.(check int64)
    "kernel entries match machine" (Int64.of_int m.Machine.kernel_entries)
    (get Obs.Counters.kernel_entries);
  let hier = m.Machine.hier in
  Alcotest.(check int)
    "l1d hits+misses match hierarchy"
    (hier.Mem.Hierarchy.l1d.Mem.Cache.hits + hier.Mem.Hierarchy.l1d.Mem.Cache.misses)
    (Int64.to_int (Int64.add (get Obs.Counters.l1d_hits) (get Obs.Counters.l1d_misses)));
  Alcotest.(check int)
    "l1i hits+misses match hierarchy"
    (hier.Mem.Hierarchy.l1i.Mem.Cache.hits + hier.Mem.Hierarchy.l1i.Mem.Cache.misses)
    (Int64.to_int (Int64.add (get Obs.Counters.l1i_hits) (get Obs.Counters.l1i_misses)));
  Alcotest.(check int)
    "tlb hits match hierarchy" hier.Mem.Hierarchy.tlb.Mem.Tlb.hits
    (Int64.to_int (get Obs.Counters.tlb_hits));
  Alcotest.(check int)
    "loads match hierarchy" hier.Mem.Hierarchy.loads (Int64.to_int (get Obs.Counters.loads));
  Alcotest.(check bool)
    "instret is positive" true
    (Int64.compare (get Obs.Counters.instret) 0L > 0)

(* --- the benchmark harness ---------------------------------------------------- *)

let bench_result ?probe ?bus () =
  let source = List.assoc "treeadd" Olden.Minic_src.all in
  Exp.Bench_run.run ?probe ?bus ~bench:"treeadd" ~mode:Minic.Layout.Cheri ~param:6 source

let test_bench_counters_consistent () =
  let r = bench_result () in
  Alcotest.(check int) "clean exit" 0 r.Exp.Bench_run.exit_code;
  let get = Obs.Counters.get r.Exp.Bench_run.counters in
  Alcotest.(check int64) "result.instrs is the counter" r.Exp.Bench_run.instrs
    (get Obs.Counters.instret);
  Alcotest.(check int64) "result.cycles is the counter" r.Exp.Bench_run.cycles
    (get Obs.Counters.cycles);
  (* The fig4 phase split comes from the span aggregates. *)
  let span name = List.assoc name r.Exp.Bench_run.spans in
  Alcotest.(check int64)
    "alloc phase = alloc span" r.Exp.Bench_run.phases.Exp.Bench_run.alloc_cycles
    (Obs.Counters.get (span "alloc") Obs.Counters.cycles);
  Alcotest.(check int64)
    "compute phase = compute span" r.Exp.Bench_run.phases.Exp.Bench_run.compute_cycles
    (Obs.Counters.get (span "compute") Obs.Counters.cycles);
  let phase_sum =
    Int64.add r.Exp.Bench_run.phases.Exp.Bench_run.alloc_cycles
      r.Exp.Bench_run.phases.Exp.Bench_run.compute_cycles
  in
  Alcotest.(check bool)
    "phases sum within the total" true
    (Int64.compare phase_sum r.Exp.Bench_run.cycles <= 0);
  Alcotest.(check bool)
    "phases cover most of the run" true
    (Int64.to_float phase_sum > 0.5 *. Int64.to_float r.Exp.Bench_run.cycles)

(* Attaching the probe (and an event bus) must not change the
   architectural execution: same instret, cycles, output, exit code. *)
let test_hooks_do_not_perturb () =
  let bare = bench_result () in
  let profile = Obs.Profile.create ~period:97 () in
  let attrib = Obs.Attrib.create () in
  let probe = Obs.Probe.create ~profile ~attrib () in
  let bus = Obs.Event.create () in
  let events = Buffer.create 4096 in
  Obs.Event.subscribe bus (Obs.Event.jsonl_sink events);
  let hooked = bench_result ~probe ~bus () in
  Alcotest.(check int64) "instret unchanged" bare.Exp.Bench_run.instrs hooked.Exp.Bench_run.instrs;
  Alcotest.(check int64) "cycles unchanged" bare.Exp.Bench_run.cycles hooked.Exp.Bench_run.cycles;
  Alcotest.(check int) "exit unchanged" bare.Exp.Bench_run.exit_code hooked.Exp.Bench_run.exit_code;
  Alcotest.(check (list string))
    "output unchanged" bare.Exp.Bench_run.output hooked.Exp.Bench_run.output;
  (* The hooked run produced data the bare run could not have. *)
  Alcotest.(check bool) "profiler sampled" true (Obs.Profile.total_samples profile > 0);
  Alcotest.(check bool) "events flowed" true (Buffer.length events > 0);
  Alcotest.(check bool)
    "misses were attributed" true
    (Obs.Attrib.total attrib Obs.Attrib.c_l1d_miss > 0);
  Alcotest.(check bool)
    "probe counted capability ops" true
    (Int64.compare
       (Obs.Counters.get hooked.Exp.Bench_run.counters Obs.Counters.cap_ops)
       0L
    > 0);
  (* Sample count is instret / period (to within the final partial period). *)
  let expect = Int64.to_int (Int64.div hooked.Exp.Bench_run.instrs 97L) in
  let got = Obs.Profile.total_samples profile in
  Alcotest.(check bool)
    (Printf.sprintf "sample count %d ~ instret/period %d" got expect)
    true
    (abs (got - expect) <= 1)

(* Counters, hot-PC tables, and collapsed stacks are bit-for-bit
   reproducible: the sampler is driven by retirement, not wall time. *)
let test_deterministic () =
  let go () =
    Exp.Profiled.run ~bench:"treeadd" ~mode:Minic.Layout.Cheri ~param:6 ~period:31 ~top:10 ()
  in
  let a = go () and b = go () in
  Alcotest.check counters "counter file identical" a.Exp.Profiled.counters
    b.Exp.Profiled.counters;
  Alcotest.(check int)
    "sample totals identical" a.Exp.Profiled.total_samples b.Exp.Profiled.total_samples;
  Alcotest.(check (list (pair int64 int)))
    "hot pcs identical"
    (List.map (fun (h : Exp.Profiled.hot) -> (h.Exp.Profiled.pc, h.Exp.Profiled.samples)) a.Exp.Profiled.hot)
    (List.map (fun (h : Exp.Profiled.hot) -> (h.Exp.Profiled.pc, h.Exp.Profiled.samples)) b.Exp.Profiled.hot);
  Alcotest.(check (list string))
    "collapsed stacks identical" a.Exp.Profiled.collapsed b.Exp.Profiled.collapsed;
  Alcotest.(check (list string))
    "span names identical"
    (List.map fst a.Exp.Profiled.spans)
    (List.map fst b.Exp.Profiled.spans);
  List.iter2
    (fun (n, ca) (_, cb) -> Alcotest.check counters ("span " ^ n ^ " identical") ca cb)
    a.Exp.Profiled.spans b.Exp.Profiled.spans;
  Alcotest.(check bool) "hot table non-empty" true (a.Exp.Profiled.hot <> []);
  (* Symbolization resolved the minic entry points, not raw addresses. *)
  Alcotest.(check bool)
    "some hot pc symbolizes to a label" true
    (List.exists
       (fun (h : Exp.Profiled.hot) ->
         not (String.length h.Exp.Profiled.where > 1 && h.Exp.Profiled.where.[0] = '0'))
       a.Exp.Profiled.hot)

(* The export schema round-trips the counter names. *)
let test_export_schema () =
  let r = bench_result () in
  let entry =
    {
      Obs.Export.bench = "treeadd";
      mode = "cheri";
      param = 6;
      wall_s = 0.25;
      counters = r.Exp.Bench_run.counters;
      spans = r.Exp.Bench_run.spans;
    }
  in
  let json = Obs.Json.to_string (Obs.Export.summary [ entry ]) in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "schema tag present" true
    (contains (Printf.sprintf {|"schema":%S|} Obs.Export.schema_version) json);
  Alcotest.(check bool) "sim_mips exported" true (contains {|"sim_mips":|} json);
  (* Every counter name except the dropped `samples` appears as a key. *)
  Array.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "counter %s %s" name (if name = "samples" then "dropped" else "exported"))
        (name <> "samples")
        (contains (Printf.sprintf "%S:" name) json))
    Obs.Counters.names;
  Alcotest.(check bool)
    "throughput computed" true
    (Obs.Export.interp_instr_per_s [ entry ] > 0.0)

(* --- baseline loader & differ ------------------------------------------------- *)

(* A serialized export parses back into exactly the structure a live run
   produces: write -> load is the identity under the differ. *)
let test_baseline_roundtrip () =
  let r = bench_result () in
  let entry =
    {
      Obs.Export.bench = "treeadd";
      mode = "cheri";
      param = 6;
      wall_s = 0.25;
      counters = r.Exp.Bench_run.counters;
      spans = r.Exp.Bench_run.spans;
    }
  in
  let live = Obs.Baseline.of_entries [ entry ] in
  let loaded =
    match Obs.Baseline.of_string (Obs.Json.to_string (Obs.Export.summary [ entry ])) with
    | Ok t -> t
    | Error msg -> Alcotest.failf "baseline load failed: %s" msg
  in
  Alcotest.(check string) "schema" Obs.Export.schema_version loaded.Obs.Baseline.schema;
  Alcotest.(check int) "one entry" 1 (List.length loaded.Obs.Baseline.entries);
  let report = Obs.Diff.run live loaded in
  Alcotest.(check bool)
    (Fmt.str "live == loaded (%a)" Obs.Diff.pp report)
    true (Obs.Diff.ok report);
  Alcotest.(check int) "no rows at all" 0 (List.length report.Obs.Diff.rows);
  (* counters survive by value, in schema order, without `samples` *)
  let e = List.hd loaded.Obs.Baseline.entries in
  Alcotest.(check bool) "samples dropped" false (List.mem_assoc "samples" e.Obs.Baseline.counters);
  Alcotest.(check (option int64))
    "instret survives"
    (Some (Obs.Counters.get r.Exp.Bench_run.counters Obs.Counters.instret))
    (List.assoc_opt "instret" e.Obs.Baseline.counters)

let v1_doc =
  {|{"schema":"cheri-obs-bench/1","interp_instr_per_s":1000.0,
     "benchmarks":[{"bench":"treeadd","mode":"cheri","param":6,"wall_s":0.5,
       "counters":{"instret":100,"cycles":200,"samples":0},
       "spans":{"alloc":{"instret":10,"cycles":20}}}]}|}

(* /2 dropped `samples` from exports; entries otherwise look like /1. *)
let v2_doc =
  {|{"schema":"cheri-obs-bench/2","interp_instr_per_s":1000.0,
     "benchmarks":[{"bench":"treeadd","mode":"cheri","param":6,"wall_s":0.5,
       "counters":{"instret":100,"cycles":200},
       "spans":{"alloc":{"instret":10,"cycles":20}}}]}|}

(* /3 added a per-entry `sim_mips` throughput field. *)
let v3_doc =
  {|{"schema":"cheri-obs-bench/3","interp_instr_per_s":1000.0,
     "benchmarks":[{"bench":"treeadd","mode":"cheri","param":6,"wall_s":0.5,
       "sim_mips":4.25,
       "counters":{"instret":100,"cycles":200},
       "spans":{"alloc":{"instret":10,"cycles":20}}}]}|}

let test_baseline_versions () =
  (match Obs.Baseline.of_string v1_doc with
  | Error msg -> Alcotest.failf "schema /1 rejected: %s" msg
  | Ok t ->
      Alcotest.(check string) "v1 schema kept" "cheri-obs-bench/1" t.Obs.Baseline.schema;
      let e = List.hd t.Obs.Baseline.entries in
      Alcotest.(check string) "key" "treeadd/cheri/6" (Obs.Baseline.key e);
      Alcotest.(check (option int64))
        "v1 samples loaded" (Some 0L)
        (List.assoc_opt "samples" e.Obs.Baseline.counters);
      Alcotest.(check (option (list (pair string int64))))
        "span fields loaded"
        (Some [ ("instret", 10L); ("cycles", 20L) ])
        (List.assoc_opt "alloc" e.Obs.Baseline.spans);
      (* Pre-/3 files have no sim_mips; the loader defaults it. *)
      Alcotest.(check (float 0.0)) "v1 sim_mips defaults" 0.0 e.Obs.Baseline.sim_mips);
  (match Obs.Baseline.of_string v2_doc with
  | Error msg -> Alcotest.failf "schema /2 rejected: %s" msg
  | Ok t ->
      Alcotest.(check string) "v2 schema kept" "cheri-obs-bench/2" t.Obs.Baseline.schema;
      let e = List.hd t.Obs.Baseline.entries in
      Alcotest.(check string) "v2 key" "treeadd/cheri/6" (Obs.Baseline.key e);
      Alcotest.(check (float 0.0)) "v2 sim_mips defaults" 0.0 e.Obs.Baseline.sim_mips);
  (match Obs.Baseline.of_string v3_doc with
  | Error msg -> Alcotest.failf "schema /3 rejected: %s" msg
  | Ok t ->
      Alcotest.(check string) "v3 schema kept" "cheri-obs-bench/3" t.Obs.Baseline.schema;
      let e = List.hd t.Obs.Baseline.entries in
      Alcotest.(check string) "v3 key" "treeadd/cheri/6" (Obs.Baseline.key e);
      Alcotest.(check (float 0.0001)) "v3 sim_mips loaded" 4.25 e.Obs.Baseline.sim_mips);
  (* sim_mips must be a number when present. *)
  (match
     Obs.Baseline.of_string
       {|{"schema":"cheri-obs-bench/3","interp_instr_per_s":1.0,
          "benchmarks":[{"bench":"a","mode":"m","param":1,"wall_s":0.1,
            "sim_mips":"fast","counters":{}}]}|}
   with
  | Ok _ -> Alcotest.fail "non-numeric sim_mips accepted"
  | Error _ -> ());
  let reject doc frag =
    match Obs.Baseline.of_string doc with
    | Ok _ -> Alcotest.failf "expected rejection (%s)" frag
    | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "error %S mentions %s" msg frag)
          true
          (let nl = String.length frag and hl = String.length msg in
           let rec go i = i + nl <= hl && (String.sub msg i nl = frag || go (i + 1)) in
           go 0)
  in
  reject {|{"schema":"cheri-obs-bench/99","interp_instr_per_s":1.0,"benchmarks":[]}|}
    "unsupported schema";
  reject
    {|{"schema":"cheri-obs-bench/2","interp_instr_per_s":1.0,
       "benchmarks":[{"bench":"a","mode":"m","param":1,"wall_s":0.1,"counters":{}},
                     {"bench":"a","mode":"m","param":1,"wall_s":0.1,"counters":{}}]}|}
    "duplicate";
  reject {|{"schema":"cheri-obs-bench/2","interp_instr_per_s":1.0,
            "benchmarks":[{"mode":"m","param":1,"wall_s":0.1,"counters":{}}]}|}
    "bench"

(* The differ: exact-match architectural counters decide the exit code;
   wall clock only gets a band; `samples` deltas are ignored. *)
let test_diff_policy () =
  let parse doc =
    match Obs.Baseline.of_string doc with
    | Ok t -> t
    | Error msg -> Alcotest.failf "bad fixture: %s" msg
  in
  let doc counters wall =
    Printf.sprintf
      {|{"schema":"cheri-obs-bench/1","interp_instr_per_s":1000.0,
         "benchmarks":[{"bench":"b","mode":"m","param":1,"wall_s":%s,
           "counters":{%s},"spans":{"alloc":{"cycles":7}}}]}|}
      wall counters
  in
  let a = parse (doc {|"instret":100,"samples":3|} "1.0") in
  (* identical -> ok, exit 0 *)
  let r = Obs.Diff.run a a in
  Alcotest.(check bool) "identical ok" true (Obs.Diff.ok r);
  Alcotest.(check int) "identical exit 0" 0 (Obs.Diff.exit_code r);
  (* an architectural counter differs -> regression, exit 1 *)
  let b = parse (doc {|"instret":101,"samples":3|} "1.0") in
  let r = Obs.Diff.run a b in
  Alcotest.(check bool) "arch delta not ok" false (Obs.Diff.ok r);
  Alcotest.(check int) "arch delta exit 1" 1 (Obs.Diff.exit_code r);
  Alcotest.(check int) "one arch mismatch" 1 r.Obs.Diff.arch_mismatches;
  (* samples differs (v1 vs probe config) -> ignored by policy *)
  let c = parse (doc {|"instret":100,"samples":999|} "1.0") in
  Alcotest.(check bool) "samples ignored" true (Obs.Diff.ok (Obs.Diff.run a c));
  (* a span counter differs -> architectural *)
  let d =
    parse
      {|{"schema":"cheri-obs-bench/1","interp_instr_per_s":1000.0,
         "benchmarks":[{"bench":"b","mode":"m","param":1,"wall_s":1.0,
           "counters":{"instret":100,"samples":3},"spans":{"alloc":{"cycles":8}}}]}|}
  in
  let r = Obs.Diff.run a d in
  Alcotest.(check bool) "span delta not ok" false (Obs.Diff.ok r);
  (* wall clock out of band -> flagged but not fatal by default *)
  let e = parse (doc {|"instret":100,"samples":3|} "10.0") in
  let r = Obs.Diff.run a e in
  Alcotest.(check bool) "wall delta ok by default" true (Obs.Diff.ok r);
  Alcotest.(check int) "wall delta flagged" 1 r.Obs.Diff.wall_flagged;
  let strict = { Obs.Diff.default_policy with Obs.Diff.fail_on_wall = true } in
  Alcotest.(check bool)
    "wall delta fatal under strict" false
    (Obs.Diff.ok (Obs.Diff.run ~policy:strict a e));
  (* a run missing on one side -> regression both ways *)
  let none =
    parse {|{"schema":"cheri-obs-bench/1","interp_instr_per_s":1000.0,"benchmarks":[]}|}
  in
  let r = Obs.Diff.run a none in
  Alcotest.(check int) "missing counted" 1 r.Obs.Diff.missing;
  Alcotest.(check bool) "missing not ok" false (Obs.Diff.ok r);
  Alcotest.(check bool) "appearing not ok" false (Obs.Diff.ok (Obs.Diff.run none a))

(* --- miss attribution ---------------------------------------------------------- *)

(* The acceptance invariant: for every miss class the per-PC table, the
   per-region table, and the running totals agree — and equal the
   whole-run counter file, because the events fire at exactly the sites
   that feed the counters. *)
let test_attrib_sums_match_counters () =
  let r = Exp.Profiled.run ~bench:"treeadd" ~mode:Minic.Layout.Cheri ~param:6 () in
  Alcotest.(check int) "clean exit" 0 r.Exp.Profiled.result.Exp.Bench_run.exit_code;
  let a = r.Exp.Profiled.attrib in
  let counter i = Int64.to_int (Obs.Counters.get r.Exp.Profiled.counters i) in
  List.iter
    (fun (cls, idx, name) ->
      Alcotest.(check int)
        (name ^ ": pc table sums to total")
        (Obs.Attrib.total a cls) (Obs.Attrib.pc_total a cls);
      Alcotest.(check int)
        (name ^ ": region table sums to total")
        (Obs.Attrib.total a cls)
        (Obs.Attrib.region_total a cls);
      Alcotest.(check int)
        (name ^ ": attribution total equals the whole-run counter")
        (counter idx) (Obs.Attrib.total a cls))
    [
      (Obs.Attrib.c_l1i_miss, Obs.Counters.l1i_misses, "l1i_miss");
      (Obs.Attrib.c_l1d_miss, Obs.Counters.l1d_misses, "l1d_miss");
      (Obs.Attrib.c_l2_miss, Obs.Counters.l2_misses, "l2_miss");
      (Obs.Attrib.c_tlb_miss, Obs.Counters.tlb_misses, "tlb_miss");
      (Obs.Attrib.c_tag_miss, Obs.Counters.tag_misses, "tag_miss");
      (Obs.Attrib.c_dram_read_bytes, Obs.Counters.dram_read_bytes, "dram_read_bytes");
      (Obs.Attrib.c_dram_write_bytes, Obs.Counters.dram_write_bytes, "dram_write_bytes");
    ];
  (* a cheri run moves tagged capabilities: tag writes and bounds flowed *)
  Alcotest.(check bool) "tag sets observed" true (Obs.Attrib.total a Obs.Attrib.c_tag_sets > 0);
  Alcotest.(check bool)
    "cap bounds histogram fed" true
    (Obs.Hist.total
       (List.nth (Obs.Attrib.hists a) 3)
    > 0);
  (* span durations flowed into the profiled report's histogram *)
  Alcotest.(check bool) "span durations observed" true (Obs.Hist.total r.Exp.Profiled.durations > 0);
  (* the hot-PC table and attribution agree the run was attributed *)
  Alcotest.(check bool)
    "some PC attributed a D-miss" true
    (Obs.Attrib.top_pcs a ~by:Obs.Attrib.c_l1d_miss ~n:1 () <> [])

(* --- trace collector ------------------------------------------------------- *)

let test_trace_ring () =
  let tr = Obs.Trace.create ~capacity:4 () in
  for i = 0 to 9 do
    Obs.Trace.phase_begin tr ~ts:i (Printf.sprintf "p%d" i)
  done;
  Alcotest.(check int) "ring holds capacity" 4 (Obs.Trace.length tr);
  Alcotest.(check int) "every record counted" 10 (Obs.Trace.recorded tr);
  Alcotest.(check int) "overflow dropped oldest" 6 (Obs.Trace.dropped tr);
  (* Oldest-first: the survivors are the last four pushes. *)
  match Obs.Trace.events tr with
  | { Obs.Trace.ts = 6; _ } :: _ -> ()
  | e :: _ -> Alcotest.fail (Printf.sprintf "oldest survivor at ts %d, expected 6" e.Obs.Trace.ts)
  | [] -> Alcotest.fail "ring empty"

let test_trace_arming () =
  let tr = Obs.Trace.create () in
  (* Armed from creation (profiled runs have no request stream). *)
  Obs.Trace.ccall tr ~ts:1 ~otype:0x40;
  Alcotest.(check int) "armed by default" 1 (Obs.Trace.recorded tr);
  Obs.Trace.skip_request tr;
  Obs.Trace.ccall tr ~ts:2 ~otype:0x40;
  Alcotest.(check int) "disarmed records nothing" 1 (Obs.Trace.recorded tr);
  Obs.Trace.begin_request tr ~ts:3 ~id:7 ~kind:1 ~declared:4 ~actual:4 ~route:0 ~worker:0;
  Obs.Trace.ccall tr ~ts:4 ~otype:0x41;
  Obs.Trace.end_request tr ~ts:5 ~code:11;
  Obs.Trace.ccall tr ~ts:6 ~otype:0x41;
  Alcotest.(check int) "request window recorded, tail did not" 4 (Obs.Trace.recorded tr);
  let reqs = List.map (fun e -> e.Obs.Trace.req) (Obs.Trace.events tr) in
  Alcotest.(check (list int)) "request id stamped" [ -1; 7; 7; 7 ] reqs

let test_trace_chrome_balance () =
  let tr = Obs.Trace.create () in
  Obs.Trace.set_labels tr [ (0x40, "w0") ];
  Obs.Trace.begin_request tr ~ts:10 ~id:0 ~kind:2 ~declared:8 ~actual:8 ~route:0 ~worker:0;
  Obs.Trace.ccall tr ~ts:12 ~otype:0x40;
  (* An unwound creturn still closes the worker span... *)
  Obs.Trace.trap tr ~ts:20 ~exc:"CP2" ~cause:"length" ~pc:0x1000L;
  Obs.Trace.creturn tr ~ts:20 ~otype:0x40 ~unwound:true;
  Obs.Trace.end_request tr ~ts:21 ~code:2;
  (* ...and a dangling open is retracted rather than exported. *)
  Obs.Trace.begin_request tr ~ts:30 ~id:1 ~kind:0 ~declared:1 ~actual:1 ~route:1 ~worker:0;
  Obs.Trace.ccall tr ~ts:31 ~otype:0x40;
  let events = Obs.Trace.to_chrome_events ~pid:1 ~process:"test" tr in
  let ph e = match Obs.Json.member "ph" e with Some (Obs.Json.String s) -> s | _ -> "?" in
  let opens = List.length (List.filter (fun e -> ph e = "B") events)
  and closes = List.length (List.filter (fun e -> ph e = "E") events) in
  Alcotest.(check int) "balanced B/E" opens closes;
  Alcotest.(check int) "one request + one worker span survive" 2 opens;
  Alcotest.(check int) "trap instant exported" 1
    (List.length (List.filter (fun e -> ph e = "i") events));
  (* Round-trips through the serializer as valid JSON. *)
  match Obs.Json.of_string (Obs.Json.to_string (Obs.Trace.chrome_document events)) with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg

let test_series_boundaries () =
  let c = Obs.Counters.create () in
  let read () = Obs.Counters.copy c in
  let s = Obs.Series.create ~interval:100 ~read () in
  let step n =
    for _ = 1 to n do
      Obs.Counters.incr c Obs.Counters.instret;
      Obs.Counters.incr c Obs.Counters.cycles;
      Obs.Series.tick s ~instret:(Int64.to_int (Obs.Counters.get c Obs.Counters.instret))
    done
  in
  step 99;
  Alcotest.(check int) "below the boundary: no sample" 0 (Obs.Series.count s);
  step 1;
  Alcotest.(check int) "boundary sampled" 1 (Obs.Series.count s);
  step 250;
  Alcotest.(check int) "every interval sampled once" 3 (Obs.Series.count s);
  let deltas =
    List.map
      (fun (smp : Obs.Series.sample) -> Obs.Counters.get smp.Obs.Series.delta Obs.Counters.instret)
      (Obs.Series.samples s)
  in
  Alcotest.(check (list int64)) "deltas partition the stream" [ 100L; 100L; 100L ] deltas;
  (* Merging with offsets preserves order and shifts boundaries. *)
  let merged = Obs.Series.create ~interval:100 () in
  Obs.Series.append s ~instret_offset:0 ~cycles_offset:0 ~into:merged;
  Obs.Series.append s ~instret_offset:1000 ~cycles_offset:1000 ~into:merged;
  Alcotest.(check int) "merged sample count" 6 (Obs.Series.count merged);
  match List.rev (Obs.Series.samples merged) with
  | last :: _ -> Alcotest.(check int) "offset applied" 1300 last.Obs.Series.at_instret
  | [] -> Alcotest.fail "merged series empty"

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "json escaping" `Quick test_json_escaping;
        Alcotest.test_case "json parse" `Quick test_json_parse;
        Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "counter arithmetic" `Quick test_counter_arithmetic;
        Alcotest.test_case "counter ratios" `Quick test_counter_ratios;
        Alcotest.test_case "event bus" `Quick test_event_bus;
        Alcotest.test_case "profile sampling" `Quick test_profile_sampling;
        Alcotest.test_case "profile stacks" `Quick test_profile_stacks;
        Alcotest.test_case "counters match machine" `Quick test_counters_match_machine;
        Alcotest.test_case "bench counters consistent" `Quick test_bench_counters_consistent;
        Alcotest.test_case "hooks do not perturb" `Quick test_hooks_do_not_perturb;
        Alcotest.test_case "deterministic" `Quick test_deterministic;
        Alcotest.test_case "export schema" `Quick test_export_schema;
        Alcotest.test_case "log2 histograms" `Quick test_hist;
        Alcotest.test_case "baseline roundtrip" `Quick test_baseline_roundtrip;
        Alcotest.test_case "baseline versions" `Quick test_baseline_versions;
        Alcotest.test_case "diff policy" `Quick test_diff_policy;
        Alcotest.test_case "attrib sums match counters" `Quick test_attrib_sums_match_counters;
        Alcotest.test_case "trace ring" `Quick test_trace_ring;
        Alcotest.test_case "trace arming" `Quick test_trace_arming;
        Alcotest.test_case "trace chrome balance" `Quick test_trace_chrome_balance;
        Alcotest.test_case "series boundaries" `Quick test_series_boundaries;
      ] );
  ]
