(* Tests for lib/obs, the observability subsystem: the JSON emitter, the
   counter file and its arithmetic, the event bus, the sampling profiler,
   and — the properties the subsystem lives or dies by — that the
   counters agree exactly with the machine and memory-hierarchy internals
   they mirror, that everything is bit-for-bit deterministic, and that
   attaching the hooks does not perturb the architectural execution. *)

let counters = Alcotest.testable Obs.Counters.pp Obs.Counters.equal

(* --- JSON emitter ------------------------------------------------------- *)

let test_json_escaping () =
  let open Obs.Json in
  Alcotest.(check string)
    "string escaping" {|"a\"b\\c\nd\te\u0001"|}
    (to_string (String "a\"b\\c\nd\te\001"));
  Alcotest.(check string)
    "nested structure" {|{"k":[1,true,null,"s"],"f":1.5}|}
    (to_string (Obj [ ("k", List [ Int 1L; Bool true; Null; String "s" ]); ("f", Float 1.5) ]));
  Alcotest.(check string) "nan degrades to null" "null" (to_string (Float Float.nan));
  Alcotest.(check string) "inf degrades to null" "null" (to_string (Float Float.infinity));
  Alcotest.(check string)
    "int64 beyond 2^53 stays exact" "9007199254740993"
    (to_string (Int 9007199254740993L))

(* --- counter arithmetic -------------------------------------------------- *)

let test_counter_arithmetic () =
  let a = Obs.Counters.create () and b = Obs.Counters.create () in
  Obs.Counters.set a Obs.Counters.instret 100L;
  Obs.Counters.set a Obs.Counters.cycles 250L;
  Obs.Counters.set b Obs.Counters.instret 30L;
  Obs.Counters.set b Obs.Counters.cycles 50L;
  let d = Obs.Counters.diff a b in
  Alcotest.(check int64) "diff instret" 70L (Obs.Counters.get d Obs.Counters.instret);
  Alcotest.(check int64) "diff cycles" 200L (Obs.Counters.get d Obs.Counters.cycles);
  Obs.Counters.accumulate b d;
  Alcotest.check counters "before + diff = after" a b;
  Alcotest.(check int)
    "names cover every index" Obs.Counters.count
    (List.length (Obs.Counters.to_assoc a));
  let c = Obs.Counters.copy a in
  Alcotest.check counters "copy equals source" a c;
  Obs.Counters.incr c Obs.Counters.instret;
  Alcotest.(check bool) "copy is independent" false (Obs.Counters.equal a c);
  Obs.Counters.reset c;
  Alcotest.check counters "reset is all zero" (Obs.Counters.create ()) c

let test_counter_ratios () =
  let c = Obs.Counters.create () in
  Obs.Counters.set c Obs.Counters.l1d_hits 75L;
  Obs.Counters.set c Obs.Counters.l1d_misses 25L;
  Alcotest.(check (float 1e-9))
    "miss rate" 25.0
    (Obs.Counters.miss_rate_pct c ~hits:Obs.Counters.l1d_hits ~misses:Obs.Counters.l1d_misses);
  Alcotest.(check (float 1e-9)) "zero denominator" 0.0 (Obs.Counters.ratio_pct 5L 0L)

(* --- event bus ------------------------------------------------------------ *)

let test_event_bus () =
  let bus = Obs.Event.create () in
  let buf = Buffer.create 256 in
  let seen = ref [] in
  (* seq advances even with no sinks attached ... *)
  Obs.Event.emit bus ~kind:"early" [];
  Obs.Event.subscribe bus (Obs.Event.jsonl_sink buf);
  Obs.Event.subscribe bus (fun e -> seen := e :: !seen);
  Obs.Event.emit bus ~kind:"span-enter" ~name:"alloc" [];
  Obs.Event.emit bus ~kind:"alloc" [ ("bytes", Obs.Json.Int 64L) ];
  let lines =
    String.split_on_char '\n' (Buffer.contents buf) |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one JSONL line per event" 2 (List.length lines);
  Alcotest.(check string)
    "JSONL shape" {|{"seq":1,"kind":"span-enter","name":"alloc"}|} (List.hd lines);
  (* ... so sinks subscribed later still see a total order. *)
  Alcotest.(check (list int))
    "sequence numbers" [ 2; 1 ]
    (List.map (fun (e : Obs.Event.t) -> e.Obs.Event.seq) !seen)

(* --- sampling profiler ----------------------------------------------------- *)

let test_profile_sampling () =
  let p = Obs.Profile.create ~period:10 () in
  for i = 1 to 100 do
    ignore (Obs.Profile.step p (Int64.of_int (0x1000 + (i mod 3))))
  done;
  Alcotest.(check int) "100 steps / period 10 = 10 samples" 10 (Obs.Profile.total_samples p);
  let top = Obs.Profile.top p ~n:5 in
  Alcotest.(check int) "three distinct pcs" 3 (List.length top);
  Alcotest.(check int)
    "samples sum to total" 10
    (List.fold_left (fun acc (_, n) -> acc + n) 0 top);
  Alcotest.check_raises "period must be positive"
    (Invalid_argument "Profile.create: period must be positive") (fun () ->
      ignore (Obs.Profile.create ~period:0 ()))

let test_profile_stacks () =
  let p = Obs.Profile.create ~period:1 () in
  Obs.Profile.call p 0x100L;
  Obs.Profile.call p 0x200L;
  ignore (Obs.Profile.step p 0x204L);
  Obs.Profile.ret p;
  ignore (Obs.Profile.step p 0x104L);
  Obs.Profile.ret p;
  Obs.Profile.ret p (* unbalanced return is ignored *);
  ignore (Obs.Profile.step p 0x8L);
  let resolve pc = match pc with 0x100L -> "f" | 0x200L -> "g" | _ -> "?" in
  Alcotest.(check (list string))
    "collapsed stacks" [ "all 1"; "all;f 1"; "all;f;g 1" ]
    (Obs.Profile.collapsed ~resolve p)

(* --- counters vs machine & hierarchy internals ------------------------------ *)

let loop_program =
  {|
main:
  li $t0, 50
loop:
  sd $t0, 0($sp)
  ld $t1, 0($sp)
  daddiu $t0, $t0, -1
  bgtz $t0, loop
  li $v0, 1
  li $a0, 0
  syscall
|}

let test_counters_match_machine () =
  let m = Machine.create () in
  let k = Os.Kernel.attach m in
  let code, _ = Os.Kernel.run_program k loop_program in
  Alcotest.(check int) "clean exit" 0 code;
  let c = Os.Kernel.read_counters k in
  let get = Obs.Counters.get c in
  Alcotest.(check int64) "instret matches machine" m.Machine.instret (get Obs.Counters.instret);
  Alcotest.(check int64) "cycles match machine" m.Machine.cycles (get Obs.Counters.cycles);
  Alcotest.(check int64) "stores match machine" m.Machine.stores (get Obs.Counters.retired_stores);
  Alcotest.(check int64)
    "kernel entries match machine" m.Machine.kernel_entries (get Obs.Counters.kernel_entries);
  let hier = m.Machine.hier in
  Alcotest.(check int)
    "l1d hits+misses match hierarchy"
    (hier.Mem.Hierarchy.l1d.Mem.Cache.hits + hier.Mem.Hierarchy.l1d.Mem.Cache.misses)
    (Int64.to_int (Int64.add (get Obs.Counters.l1d_hits) (get Obs.Counters.l1d_misses)));
  Alcotest.(check int)
    "l1i hits+misses match hierarchy"
    (hier.Mem.Hierarchy.l1i.Mem.Cache.hits + hier.Mem.Hierarchy.l1i.Mem.Cache.misses)
    (Int64.to_int (Int64.add (get Obs.Counters.l1i_hits) (get Obs.Counters.l1i_misses)));
  Alcotest.(check int)
    "tlb hits match hierarchy" hier.Mem.Hierarchy.tlb.Mem.Tlb.hits
    (Int64.to_int (get Obs.Counters.tlb_hits));
  Alcotest.(check int)
    "loads match hierarchy" hier.Mem.Hierarchy.loads (Int64.to_int (get Obs.Counters.loads));
  Alcotest.(check bool)
    "instret is positive" true
    (Int64.compare (get Obs.Counters.instret) 0L > 0)

(* --- the benchmark harness ---------------------------------------------------- *)

let bench_result ?probe ?bus () =
  let source = List.assoc "treeadd" Olden.Minic_src.all in
  Exp.Bench_run.run ?probe ?bus ~bench:"treeadd" ~mode:Minic.Layout.Cheri ~param:6 source

let test_bench_counters_consistent () =
  let r = bench_result () in
  Alcotest.(check int) "clean exit" 0 r.Exp.Bench_run.exit_code;
  let get = Obs.Counters.get r.Exp.Bench_run.counters in
  Alcotest.(check int64) "result.instrs is the counter" r.Exp.Bench_run.instrs
    (get Obs.Counters.instret);
  Alcotest.(check int64) "result.cycles is the counter" r.Exp.Bench_run.cycles
    (get Obs.Counters.cycles);
  (* The fig4 phase split comes from the span aggregates. *)
  let span name = List.assoc name r.Exp.Bench_run.spans in
  Alcotest.(check int64)
    "alloc phase = alloc span" r.Exp.Bench_run.phases.Exp.Bench_run.alloc_cycles
    (Obs.Counters.get (span "alloc") Obs.Counters.cycles);
  Alcotest.(check int64)
    "compute phase = compute span" r.Exp.Bench_run.phases.Exp.Bench_run.compute_cycles
    (Obs.Counters.get (span "compute") Obs.Counters.cycles);
  let phase_sum =
    Int64.add r.Exp.Bench_run.phases.Exp.Bench_run.alloc_cycles
      r.Exp.Bench_run.phases.Exp.Bench_run.compute_cycles
  in
  Alcotest.(check bool)
    "phases sum within the total" true
    (Int64.compare phase_sum r.Exp.Bench_run.cycles <= 0);
  Alcotest.(check bool)
    "phases cover most of the run" true
    (Int64.to_float phase_sum > 0.5 *. Int64.to_float r.Exp.Bench_run.cycles)

(* Attaching the probe (and an event bus) must not change the
   architectural execution: same instret, cycles, output, exit code. *)
let test_hooks_do_not_perturb () =
  let bare = bench_result () in
  let profile = Obs.Profile.create ~period:97 () in
  let probe = Obs.Probe.create ~profile () in
  let bus = Obs.Event.create () in
  let events = Buffer.create 4096 in
  Obs.Event.subscribe bus (Obs.Event.jsonl_sink events);
  let hooked = bench_result ~probe ~bus () in
  Alcotest.(check int64) "instret unchanged" bare.Exp.Bench_run.instrs hooked.Exp.Bench_run.instrs;
  Alcotest.(check int64) "cycles unchanged" bare.Exp.Bench_run.cycles hooked.Exp.Bench_run.cycles;
  Alcotest.(check int) "exit unchanged" bare.Exp.Bench_run.exit_code hooked.Exp.Bench_run.exit_code;
  Alcotest.(check (list string))
    "output unchanged" bare.Exp.Bench_run.output hooked.Exp.Bench_run.output;
  (* The hooked run produced data the bare run could not have. *)
  Alcotest.(check bool) "profiler sampled" true (Obs.Profile.total_samples profile > 0);
  Alcotest.(check bool) "events flowed" true (Buffer.length events > 0);
  Alcotest.(check bool)
    "probe counted capability ops" true
    (Int64.compare
       (Obs.Counters.get hooked.Exp.Bench_run.counters Obs.Counters.cap_ops)
       0L
    > 0);
  (* Sample count is instret / period (to within the final partial period). *)
  let expect = Int64.to_int (Int64.div hooked.Exp.Bench_run.instrs 97L) in
  let got = Obs.Profile.total_samples profile in
  Alcotest.(check bool)
    (Printf.sprintf "sample count %d ~ instret/period %d" got expect)
    true
    (abs (got - expect) <= 1)

(* Counters, hot-PC tables, and collapsed stacks are bit-for-bit
   reproducible: the sampler is driven by retirement, not wall time. *)
let test_deterministic () =
  let go () =
    Exp.Profiled.run ~bench:"treeadd" ~mode:Minic.Layout.Cheri ~param:6 ~period:31 ~top:10 ()
  in
  let a = go () and b = go () in
  Alcotest.check counters "counter file identical" a.Exp.Profiled.counters
    b.Exp.Profiled.counters;
  Alcotest.(check int)
    "sample totals identical" a.Exp.Profiled.total_samples b.Exp.Profiled.total_samples;
  Alcotest.(check (list (pair int64 int)))
    "hot pcs identical"
    (List.map (fun (h : Exp.Profiled.hot) -> (h.Exp.Profiled.pc, h.Exp.Profiled.samples)) a.Exp.Profiled.hot)
    (List.map (fun (h : Exp.Profiled.hot) -> (h.Exp.Profiled.pc, h.Exp.Profiled.samples)) b.Exp.Profiled.hot);
  Alcotest.(check (list string))
    "collapsed stacks identical" a.Exp.Profiled.collapsed b.Exp.Profiled.collapsed;
  Alcotest.(check (list string))
    "span names identical"
    (List.map fst a.Exp.Profiled.spans)
    (List.map fst b.Exp.Profiled.spans);
  List.iter2
    (fun (n, ca) (_, cb) -> Alcotest.check counters ("span " ^ n ^ " identical") ca cb)
    a.Exp.Profiled.spans b.Exp.Profiled.spans;
  Alcotest.(check bool) "hot table non-empty" true (a.Exp.Profiled.hot <> []);
  (* Symbolization resolved the minic entry points, not raw addresses. *)
  Alcotest.(check bool)
    "some hot pc symbolizes to a label" true
    (List.exists
       (fun (h : Exp.Profiled.hot) ->
         not (String.length h.Exp.Profiled.where > 1 && h.Exp.Profiled.where.[0] = '0'))
       a.Exp.Profiled.hot)

(* The export schema round-trips the counter names. *)
let test_export_schema () =
  let r = bench_result () in
  let entry =
    {
      Obs.Export.bench = "treeadd";
      mode = "cheri";
      param = 6;
      wall_s = 0.25;
      counters = r.Exp.Bench_run.counters;
      spans = r.Exp.Bench_run.spans;
    }
  in
  let json = Obs.Json.to_string (Obs.Export.summary [ entry ]) in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "schema tag present" true (contains {|"schema":"cheri-obs-bench/1"|} json);
  (* Every counter name appears as a key in every benchmark entry. *)
  Array.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "counter %s exported" name)
        true
        (contains (Printf.sprintf "%S:" name) json))
    Obs.Counters.names;
  Alcotest.(check bool)
    "throughput computed" true
    (Obs.Export.interp_instr_per_s [ entry ] > 0.0)

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "json escaping" `Quick test_json_escaping;
        Alcotest.test_case "counter arithmetic" `Quick test_counter_arithmetic;
        Alcotest.test_case "counter ratios" `Quick test_counter_ratios;
        Alcotest.test_case "event bus" `Quick test_event_bus;
        Alcotest.test_case "profile sampling" `Quick test_profile_sampling;
        Alcotest.test_case "profile stacks" `Quick test_profile_stacks;
        Alcotest.test_case "counters match machine" `Quick test_counters_match_machine;
        Alcotest.test_case "bench counters consistent" `Quick test_bench_counters_consistent;
        Alcotest.test_case "hooks do not perturb" `Quick test_hooks_do_not_perturb;
        Alcotest.test_case "deterministic" `Quick test_deterministic;
        Alcotest.test_case "export schema" `Quick test_export_schema;
      ] );
  ]
