lib/core/cap128.ml: Bytes Capability Cause Fmt Int64 Perms U64
