lib/core/u64.ml: Fmt Int64 Printf
