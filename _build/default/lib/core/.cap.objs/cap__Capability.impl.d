lib/core/capability.ml: Bytes Cause Fmt Int64 Perms Printf U64
