lib/core/u64.mli: Format
