lib/core/cause.ml: Fmt
