lib/core/cause.mli: Format
