lib/core/perms.ml: Fmt List Printf
