lib/core/capability.mli: Cause Format Perms U64
