lib/core/cap128.mli: Capability Cause Format
