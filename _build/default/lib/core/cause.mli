(** Capability exception causes.

    When a capability check fails, the CP2 coprocessor raises an exception
    carrying one of these cause codes (mirroring the CHERI ISA reference,
    UCAM-CL-TR-850) plus the offending register number. *)

type t =
  | None_
  | Length_violation  (** access outside [\[base, base+length)] *)
  | Tag_violation  (** operation through an untagged capability *)
  | Seal_violation  (** dereference or mutation of a sealed capability *)
  | Type_violation  (** otype mismatch on unseal/CCall *)
  | Call_trap  (** CCall: trap to the kernel's protected-call handler *)
  | Return_trap  (** CReturn: trap to the kernel's return handler *)
  | User_defined_violation
  | Non_exact_bounds
      (** a compressed (128-bit) capability could not represent the bounds *)
  | Permit_execute_violation
  | Permit_load_violation
  | Permit_store_violation
  | Permit_load_capability_violation
  | Permit_store_capability_violation
  | Permit_store_local_capability_violation
  | Permit_seal_violation
  | Access_system_registers_violation

(** The architectural 8-bit cause code. *)
val code : t -> int

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
