(* Capability exception causes.  When a capability check fails the CHERI
   coprocessor raises a CP2 exception with a cause code identifying the
   violated rule and the offending capability register.  These mirror the
   cause codes of the CHERI ISA reference (UCAM-CL-TR-850). *)

type t =
  | None_
  | Length_violation
  | Tag_violation
  | Seal_violation
  | Type_violation
  | Call_trap (* CCall: trap to the kernel's protected-call handler *)
  | Return_trap (* CReturn: trap to the kernel's return handler *)
  | User_defined_violation
  | Non_exact_bounds (* compressed (128-bit) capability could not represent requested bounds *)
  | Permit_execute_violation
  | Permit_load_violation
  | Permit_store_violation
  | Permit_load_capability_violation
  | Permit_store_capability_violation
  | Permit_store_local_capability_violation
  | Permit_seal_violation
  | Access_system_registers_violation

let code = function
  | None_ -> 0x00
  | Length_violation -> 0x01
  | Tag_violation -> 0x02
  | Seal_violation -> 0x03
  | Type_violation -> 0x04
  | Call_trap -> 0x05
  | Return_trap -> 0x06
  | User_defined_violation -> 0x09
  | Non_exact_bounds -> 0x0A
  | Permit_execute_violation -> 0x11
  | Permit_load_violation -> 0x12
  | Permit_store_violation -> 0x13
  | Permit_load_capability_violation -> 0x14
  | Permit_store_capability_violation -> 0x15
  | Permit_store_local_capability_violation -> 0x16
  | Permit_seal_violation -> 0x17
  | Access_system_registers_violation -> 0x18

let to_string = function
  | None_ -> "none"
  | Length_violation -> "length violation"
  | Tag_violation -> "tag violation"
  | Seal_violation -> "seal violation"
  | Type_violation -> "type violation"
  | Call_trap -> "call trap"
  | Return_trap -> "return trap"
  | User_defined_violation -> "user-defined violation"
  | Non_exact_bounds -> "non-exact bounds"
  | Permit_execute_violation -> "permit-execute violation"
  | Permit_load_violation -> "permit-load violation"
  | Permit_store_violation -> "permit-store violation"
  | Permit_load_capability_violation -> "permit-load-capability violation"
  | Permit_store_capability_violation -> "permit-store-capability violation"
  | Permit_store_local_capability_violation ->
      "permit-store-local-capability violation"
  | Permit_seal_violation -> "permit-seal violation"
  | Access_system_registers_violation -> "access-system-registers violation"

let pp ppf c = Fmt.string ppf (to_string c)
let equal (a : t) b = a = b
