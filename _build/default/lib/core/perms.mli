(** The 31-bit permissions vector of a CHERI-256 capability (Figure 1).

    A set bit grants the corresponding right.  Five permissions are
    architecturally meaningful in the 2014 paper (load, store, execute,
    load-capability, store-capability); the rest model the prototype's
    experimentation bits (sealing) and a 16-bit user-defined region. *)

type t

(** {1 Individual permissions} *)

val global : t
val execute : t
val load : t
val store : t
val load_cap : t
val store_cap : t
val store_local_cap : t
val seal : t
val set_type : t

(** [user n] is user-defined permission bit [n], for [0 <= n <= 15].
    @raise Invalid_argument otherwise. *)
val user : int -> t

(** {1 The lattice} *)

(** Every permission. *)
val all : t

(** No permissions. *)
val none : t

(** [of_int v] masks [v] to the low 31 bits. *)
val of_int : int -> t

val to_int : t -> int
val union : t -> t -> t
val inter : t -> t -> t

(** [diff a b] removes [b]'s permissions from [a]. *)
val diff : t -> t -> t

(** [subset a b] is true when every permission in [a] is also in [b]. *)
val subset : t -> t -> bool

(** [has p bit] is true when [p] grants [bit]. *)
val has : t -> t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
