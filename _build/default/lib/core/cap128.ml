(* A 128-bit compressed capability.

   Section 4.1 of the paper: "An implementation intended for widespread
   deployment would likely use a denser representation — for example,
   128 bits using 40-bit virtual addresses or the Low-Fat Pointer
   approach."  The limit study's "128b CHERI" column models exactly this.

   We implement the 40-bit-virtual-address variant: base and length are
   each held exactly in 40 bits, the permissions vector is reduced to
   16 bits, and the object type to 16 bits.  Compression is *exact or
   refused*: a capability whose fields do not fit raises
   [Cause.Non_exact_bounds] rather than silently widening bounds, so the
   security property is preserved (bounds never grow). *)

type t = { lo : int64; hi : int64 }

let va_bits = 40
let va_mask = Int64.sub (Int64.shift_left 1L va_bits) 1L
let perms_mask = 0xFFFF
let otype_mask = 0xFFFF

(* Field packing:
     hi: bits 0..39 base, bits 40..55 perms, bit 56 sealed
     lo: bits 0..39 length, bits 40..55 otype *)

let fits_va v = U64.le v va_mask

(* The almighty capability (length 2^64-1) is special-cased: length of all
   ones in the 40-bit field with the sealed bit's neighbour (hi bit 57)
   marks the whole-address-space capability, so a freshly reset register
   file remains representable. *)
let whole_space_flag = Int64.shift_left 1L 57

(* Bounds and otype must fit exactly; the 16-bit permissions field simply
   has fewer bits than the research format's 31 (the denser encoding the
   paper describes), so compression *masks* permissions — a monotonic
   reduction of rights, never a widening. *)
let representable (c : Capability.t) =
  (not (Capability.tag c))
  || (Capability.otype c land lnot otype_mask = 0
     && fits_va (Capability.base c)
     && (fits_va (Capability.length c) || U64.equal (Capability.length c) U64.max_value))

let compress (c : Capability.t) =
  if not (representable c) then Error Cause.Non_exact_bounds
  else
    let whole = U64.equal (Capability.length c) U64.max_value in
    let hi =
      Int64.logor
        (Int64.logand (Capability.base c) va_mask)
        (Int64.logor
           (Int64.shift_left (Int64.of_int (Perms.to_int (Capability.perms c) land perms_mask)) 40)
           (Int64.logor
              (if Capability.is_sealed c then Int64.shift_left 1L 56 else 0L)
              (if whole then whole_space_flag else 0L)))
    in
    let lo =
      Int64.logor
        (Int64.logand (Capability.length c) va_mask)
        (Int64.shift_left (Int64.of_int (Capability.otype c land otype_mask)) 40)
    in
    Ok { lo; hi }

let decompress ~tag { lo; hi } : Capability.t =
  let base = Int64.logand hi va_mask in
  let perms =
    Perms.of_int (Int64.to_int (Int64.logand (Int64.shift_right_logical hi 40) 0xFFFFL))
  in
  let sealed = Int64.logand (Int64.shift_right_logical hi 56) 1L = 1L in
  let whole = Int64.logand hi whole_space_flag <> 0L in
  let length = if whole then U64.max_value else Int64.logand lo va_mask in
  let otype = Int64.to_int (Int64.logand (Int64.shift_right_logical lo 40) 0xFFFFL) in
  let c = Capability.make ~perms ~base ~length in
  let c = if tag then c else Capability.clear_tag c in
  (* Reconstruct sealing state via the record from Capability; we rebuild by
     sealing against a synthetic authority only when flagged. *)
  if not sealed then c
  else
    match
      Capability.seal c
        ~authority:(Capability.make ~perms:Perms.all ~base:0L ~length:U64.max_value)
        ~otype
    with
    | Ok s -> if tag then s else Capability.clear_tag s
    | Error _ -> c

let size_bytes = 16

let to_bytes t =
  let b = Bytes.make size_bytes '\000' in
  Bytes.set_int64_le b 0 t.lo;
  Bytes.set_int64_le b 8 t.hi;
  b

let of_bytes b =
  if Bytes.length b <> size_bytes then invalid_arg "Cap128.of_bytes";
  { lo = Bytes.get_int64_le b 0; hi = Bytes.get_int64_le b 8 }

let equal a b = Int64.equal a.lo b.lo && Int64.equal a.hi b.hi
let pp ppf t = Fmt.pf ppf "{hi=0x%Lx lo=0x%Lx}" t.hi t.lo
