(** Unsigned 64-bit arithmetic on top of [Int64].

    Every architectural quantity in the model — addresses, capability base
    and length fields — is an [Int64.t] interpreted as unsigned.  This
    module centralises the unsigned comparisons and the overflow-sensitive
    bounds arithmetic. *)

type t = int64

val zero : t
val one : t

(** 2{^64} - 1, the length of the almighty capability. *)
val max_value : t

val of_int : int -> t
val to_int : t -> int
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t
val shift_left : t -> int -> t
val shift_right_logical : t -> int -> t
val shift_right : t -> int -> t

(** Unsigned comparison, [Int64.unsigned_compare]. *)
val compare : t -> t -> int

val equal : t -> t -> bool
val lt : t -> t -> bool
val le : t -> t -> bool
val gt : t -> t -> bool
val ge : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** Unsigned division / remainder. *)
val div : t -> t -> t

val rem : t -> t -> t

(** [add_overflows a b] is true when the unsigned sum wraps past 2{^64}. *)
val add_overflows : t -> t -> bool

(** [in_range ~addr ~size ~base ~length] checks that the [size]-byte access
    starting at [addr] lies entirely within the segment
    [\[base, base+length)], with correct behaviour at the 2{^64} wrap. *)
val in_range : addr:t -> size:t -> base:t -> length:t -> bool

(** Alignment helpers; the alignment must be a power of two. *)
val is_aligned : t -> t -> bool

val align_down : t -> t -> t
val align_up : t -> t -> t

(** Smallest power of two greater than or equal to the argument. *)
val round_up_pow2 : t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
