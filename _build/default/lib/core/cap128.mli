(** The 128-bit compressed capability of Section 4.1 ("128 bits using
    40-bit virtual addresses"), as modelled by the limit study's
    "128b CHERI" configuration.

    Base and length are held exactly in 40 bits each, permissions in 16
    bits, and the object type in 16 bits.  Compression is exact-or-refused
    ({!Cause.Non_exact_bounds}): bounds never grow silently. *)

type t

(** Virtual address width of the compressed format. *)
val va_bits : int

(** [representable c] is true when [c] compresses losslessly: fields within
    range, or [c] untagged (plain data). *)
val representable : Capability.t -> bool

(** [compress c] packs [c]; fails with [Non_exact_bounds] when not
    {!representable}. *)
val compress : Capability.t -> (t, Cause.t) result

(** [decompress ~tag t] recovers the architectural capability; the tag
    comes from the tag table. *)
val decompress : tag:bool -> t -> Capability.t

(** 16: the in-memory size in bytes. *)
val size_bytes : int

val to_bytes : t -> bytes
val of_bytes : bytes -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
