(* The 31-bit permissions vector of a CHERI-256 capability (Figure 1 of the
   paper).  A set bit grants the corresponding right.  The paper names five
   architectural permissions (load data, store data, execute, load
   capability, store capability); the remaining bits are reserved for
   experimentation — we model the ones the 2014 prototype used for sealing
   and exception handling, plus a user-defined region. *)

type t = int (* bits 0..30 *)

(* Bit assignments.  These follow the CHERI ISA layout: the low bits carry
   the architecturally meaningful permissions. *)
let global = 1 lsl 0
let execute = 1 lsl 1
let load = 1 lsl 2
let store = 1 lsl 3
let load_cap = 1 lsl 4
let store_cap = 1 lsl 5
let store_local_cap = 1 lsl 6
let seal = 1 lsl 7
let set_type = 1 lsl 8
(* bits 9..14 reserved; bits 15..30 user-defined *)
let user_shift = 15

let mask = (1 lsl 31) - 1
let all = mask
let none = 0

let user n =
  if n < 0 || n > 15 then invalid_arg "Perms.user";
  1 lsl (user_shift + n)

let of_int v = v land mask
let to_int p = p

let union = ( lor )
let inter = ( land )
let diff a b = a land lnot b land mask

(* [subset a b]: every permission in [a] is also in [b]. *)
let subset a b = a land lnot b = 0
let has p bit = p land bit = bit
let equal (a : t) b = a = b

let names =
  [ (global, "Global");
    (execute, "Permit_Execute");
    (load, "Permit_Load");
    (store, "Permit_Store");
    (load_cap, "Permit_Load_Capability");
    (store_cap, "Permit_Store_Capability");
    (store_local_cap, "Permit_Store_Local_Capability");
    (seal, "Permit_Seal");
    (set_type, "Permit_Set_Type") ]

let pp ppf p =
  let named = List.filter (fun (bit, _) -> has p bit) names in
  let extra = diff p (List.fold_left (fun acc (b, _) -> acc lor b) 0 names) in
  let strs = List.map snd named in
  let strs = if extra <> 0 then strs @ [ Printf.sprintf "0x%x" extra ] else strs in
  if strs = [] then Fmt.string ppf "(none)"
  else Fmt.(list ~sep:(any "|") string) ppf strs
