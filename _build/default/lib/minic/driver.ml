(* The compiler driver: minic source -> assembly text for one of the three
   pointer-lowering modes. *)

exception Error of string

let compile ~(mode : Layout.mode) source =
  try
    let program = Parser.parse_program source in
    let layout = Layout.create mode program in
    Codegen.compile_program layout program
  with
  | Lexer.Error (line, m) -> raise (Error (Printf.sprintf "lex error at line %d: %s" line m))
  | Parser.Error (line, m) ->
      raise (Error (Printf.sprintf "parse error at line %d: %s" line m))
  | Layout.Error m | Codegen.Error m -> raise (Error m)
