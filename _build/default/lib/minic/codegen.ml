(* minic code generation: AST -> BERI/CHERI assembly text.

   One code generator, three pointer-lowering strategies (Layout.mode):

     Legacy    pointer = GPR holding an address; ld/sd, no checks.
     Cheri     pointer = capability register; CIncBase/CSetLen at
               allocation, CLC/CSC/CLx/CSx for accesses — all checking
               implicit (Section 5.1).
     Softcheck pointer = (addr, base, end) GPR triple, 24 bytes in
               memory; explicit compare-and-branch checks before each
               dereference (the CCured stand-in of Section 8).

   Code generation is deliberately simple (no register allocation across
   statements, no scheduling): both compared configurations flow through
   the same generator, so its naivety cancels out of relative overheads —
   the property the Figure 4 reproduction needs. *)

open Ast

exception Error of string

let err fmt = Fmt.kstr (fun m -> raise (Error m)) fmt

(* --- machine values ------------------------------------------------------- *)

type value =
  | VInt of string (* register name holding an integer *)
  | VPtr of string (* legacy pointer: address in a GPR *)
  | VCap of string (* cheri pointer: capability register *)
  | VFat of string * string * string (* softcheck: addr, base, end *)

type env = {
  layout : Layout.t;
  buf : Buffer.t;
  mutable label_id : int;
  mutable gpr_free : string list;
  mutable cap_free : string list;
  (* name -> (frame offset, type) *)
  mutable locals : (string * (int * ty)) list;
  mutable frame_size : int;
  globals : (string, ty) Hashtbl.t;
  funcs : (string, ty * ty list) Hashtbl.t;
  structs_of_ptr : unit; (* placeholder to keep the record non-trivial *)
  mutable current_fn : string;
}

(* Temporaries must not alias the argument registers: $t4..$t7 are the
   o32 names for $a4..$a7, so they are excluded.  $k0/$k1/$gp are free for
   user code in this system (the kernel is a native model and the ABI has
   no global pointer), and $v1 doubles as a temporary outside call
   boundaries. *)
let temp_gprs =
  [ "$t0"; "$t1"; "$t2"; "$t3"; "$t8"; "$s0"; "$s1"; "$s2"; "$s3"; "$v1"; "$k0"; "$k1"; "$gp" ]
let temp_caps = [ "$c3"; "$c4"; "$c5"; "$c6"; "$c7"; "$c8"; "$c9"; "$c10" ]
let int_args = [ "$a0"; "$a1"; "$a2"; "$a3"; "$a4"; "$a5"; "$a6"; "$a7" ]

let emit env fmt = Fmt.kstr (fun s -> Buffer.add_string env.buf ("  " ^ s ^ "\n")) fmt
let emit_label env l = Buffer.add_string env.buf (l ^ ":\n")

let fresh_label env prefix =
  env.label_id <- env.label_id + 1;
  Printf.sprintf "__%s_%d" prefix env.label_id

let alloc_gpr env =
  match env.gpr_free with
  | r :: rest ->
      env.gpr_free <- rest;
      r
  | [] -> err "expression too complex: out of temporary registers (in %s)" env.current_fn

let alloc_cap env =
  match env.cap_free with
  | r :: rest ->
      env.cap_free <- rest;
      r
  | [] -> err "expression too complex: out of capability registers (in %s)" env.current_fn

let free_reg env r =
  if List.mem r temp_gprs && not (List.mem r env.gpr_free) then
    env.gpr_free <- r :: env.gpr_free

let free_cap env c =
  if List.mem c temp_caps && not (List.mem c env.cap_free) then
    env.cap_free <- c :: env.cap_free

let free_value env = function
  | VInt r | VPtr r -> free_reg env r
  | VCap c -> free_cap env c
  | VFat (a, b, e) ->
      free_reg env a;
      free_reg env b;
      free_reg env e

(* --- typing --------------------------------------------------------------- *)

let rec type_of env e =
  match e with
  | Int _ -> Tint
  | Null -> Tptr Tvoid
  | Sizeof _ -> Tint
  | Var name -> (
      match List.assoc_opt name env.locals with
      | Some (_, ty) -> ty
      | None -> (
          match Hashtbl.find_opt env.globals name with
          | Some ty -> ty
          | None -> err "unknown variable %s" name))
  | Binop ((Add | Sub), a, b) -> (
      match (type_of env a, type_of env b) with
      | (Tptr _ as p), _ -> p
      | _, (Tptr _ as p) -> p
      | _ -> Tint)
  | Binop _ -> Tint
  | Unop _ -> Tint
  | Call (name, _) -> (
      match name with
      | "malloc" -> Tptr Tvoid
      | "free" | "print_int" | "print_char" | "phase_begin" | "phase_end" | "exit" -> Tvoid
      | "random" | "cycles" | "instret" -> Tint
      | _ -> (
          match Hashtbl.find_opt env.funcs name with
          | Some (ret, _) -> ret
          | None -> err "unknown function %s" name))
  | Field (b, f) -> (
      match type_of env b with
      | Tptr (Tstruct s) -> snd (Layout.field env.layout s f)
      | ty -> err "-> applied to non-struct-pointer (%a)" Ast.pp_ty ty)
  | Addr_field (b, f) -> (
      match type_of env b with
      | Tptr (Tstruct s) -> Tptr (snd (Layout.field env.layout s f))
      | ty -> err "&-> applied to non-struct-pointer (%a)" Ast.pp_ty ty)
  | Index (b, _) -> (
      match type_of env b with
      | Tptr elem -> elem
      | ty -> err "indexing non-pointer (%a)" Ast.pp_ty ty)
  | Cast (ty, _) -> ty

let is_ptr_ty = function Tptr _ -> true | _ -> false

let elem_size env = function
  | Tptr Tvoid -> 1
  | Tptr elem -> Layout.sizeof env.layout elem
  | ty -> err "element size of non-pointer %a" Ast.pp_ty ty

(* --- frame handling -------------------------------------------------------- *)

let mode env = env.layout.Layout.mode

(* Reserve a frame slot for a type; returns its offset from $fp. *)
let frame_slot env ty =
  let size, align =
    match ty with
    | Tptr _ -> (Layout.ptr_size (mode env), Layout.ptr_align (mode env))
    | _ -> (8, 8)
  in
  let off = Layout.align_to env.frame_size align in
  env.frame_size <- off + size;
  off

(* --- null and moves --------------------------------------------------------- *)

(* Materialize a null pointer value. *)
let null_value env =
  match mode env with
  | Layout.Legacy ->
      let r = alloc_gpr env in
      emit env "move %s, $zero" r;
      VPtr r
  | Layout.Cheri | Layout.Cheri128 ->
      let c = alloc_cap env in
      emit env "cfromptr %s, $c0, $zero" c;
      VCap c
  | Layout.Softcheck ->
      let a = alloc_gpr env and b = alloc_gpr env and e = alloc_gpr env in
      emit env "move %s, $zero" a;
      emit env "move %s, $zero" b;
      emit env "move %s, $zero" e;
      VFat (a, b, e)

(* Coerce Null literals (typed Tptr Tvoid) into the representation used by
   the context. *)
let as_int = function
  | VInt r | VPtr r -> r
  | VFat (a, _, _) -> a
  | VCap _ -> err "capability used as integer"

(* --- loads and stores through pointer values --------------------------------- *)

(* Emit a bounds check for [addr_reg, addr_reg+size) within [base, end). *)
let softcheck_bounds env ~addr ~base ~end_ ~size =
  let tmp = alloc_gpr env in
  emit env "sltu $at, %s, %s" addr base;
  emit env "bnez $at, __bounds_fail";
  emit env "daddiu %s, %s, %d" tmp addr size;
  emit env "sltu $at, %s, %s" end_ tmp;
  emit env "bnez $at, __bounds_fail";
  free_reg env tmp

(* Load a scalar (int) of 8 bytes at [ptr + offset_reg? + imm]. *)
let load_int env ptr ~imm ~(index : string option) =
  let dst = alloc_gpr env in
  (match (ptr, mode env) with
  | VPtr p, (Layout.Legacy | Layout.Softcheck) -> (
      match index with
      | None -> emit env "ld %s, %d(%s)" dst imm p
      | Some idx ->
          emit env "daddu $at, %s, %s" p idx;
          emit env "ld %s, %d($at)" dst imm)
  | VFat (a, b, e), _ ->
      let addr = alloc_gpr env in
      (match index with
      | None -> emit env "daddiu %s, %s, %d" addr a imm
      | Some idx ->
          emit env "daddu %s, %s, %s" addr a idx;
          if imm <> 0 then emit env "daddiu %s, %s, %d" addr addr imm);
      softcheck_bounds env ~addr ~base:b ~end_:e ~size:8;
      emit env "ld %s, 0(%s)" dst addr;
      free_reg env addr
  | VPtr _, (Layout.Cheri | Layout.Cheri128) -> err "cheri mode: raw pointer dereference"
  | VCap c, _ -> (
      match index with
      | None ->
          if imm >= -128 && imm < 128 then emit env "cld %s, $zero, %d(%s)" dst imm c
          else begin
            emit env "li $at, %d" imm;
            emit env "cld %s, $at, 0(%s)" dst c
          end
      | Some idx ->
          if imm = 0 then emit env "cld %s, %s, 0(%s)" dst idx c
          else begin
            emit env "daddiu $at, %s, %d" idx imm;
            emit env "cld %s, $at, 0(%s)" dst c
          end)
  | VInt _, _ -> err "dereferencing an integer");
  VInt dst

let store_int env ptr ~imm ~(index : string option) src =
  match (ptr, mode env) with
  | VPtr p, (Layout.Legacy | Layout.Softcheck) -> (
      match index with
      | None -> emit env "sd %s, %d(%s)" src imm p
      | Some idx ->
          emit env "daddu $at, %s, %s" p idx;
          emit env "sd %s, %d($at)" src imm)
  | VFat (a, b, e), _ ->
      let addr = alloc_gpr env in
      (match index with
      | None -> emit env "daddiu %s, %s, %d" addr a imm
      | Some idx ->
          emit env "daddu %s, %s, %s" addr a idx;
          if imm <> 0 then emit env "daddiu %s, %s, %d" addr addr imm);
      softcheck_bounds env ~addr ~base:b ~end_:e ~size:8;
      emit env "sd %s, 0(%s)" src addr;
      free_reg env addr
  | VPtr _, (Layout.Cheri | Layout.Cheri128) -> err "cheri mode: raw pointer store"
  | VCap c, _ -> (
      match index with
      | None ->
          if imm >= -128 && imm < 128 then emit env "csd %s, $zero, %d(%s)" src imm c
          else begin
            emit env "li $at, %d" imm;
            emit env "csd %s, $at, 0(%s)" src c
          end
      | Some idx ->
          if imm = 0 then emit env "csd %s, %s, 0(%s)" src idx c
          else begin
            emit env "daddiu $at, %s, %d" idx imm;
            emit env "csd %s, $at, 0(%s)" src c
          end)
  | VInt _, _ -> err "storing through an integer"

(* Load a pointer-typed field at [ptr + imm (+index)].  The loaded pointer's
   bounds, under softcheck, come from its 24-byte home. *)
let load_ptr env ptr ~imm ~(index : string option) =
  match mode env with
  | Layout.Legacy -> ( match load_int env ptr ~imm ~index with VInt r -> VPtr r | v -> v)
  | Layout.Softcheck -> (
      match ptr with
      | VFat (pa, pb, pe) ->
          (* CCured-style coalescing: one 24-byte bounds check covers the
             three component loads. *)
          let addr = alloc_gpr env in
          (match index with
          | None -> emit env "daddiu %s, %s, %d" addr pa imm
          | Some idx ->
              emit env "daddu %s, %s, %s" addr pa idx;
              if imm <> 0 then emit env "daddiu %s, %s, %d" addr addr imm);
          softcheck_bounds env ~addr ~base:pb ~end_:pe ~size:24;
          let a = alloc_gpr env and b = alloc_gpr env and e = alloc_gpr env in
          emit env "ld %s, 0(%s)" a addr;
          emit env "ld %s, 8(%s)" b addr;
          emit env "ld %s, 16(%s)" e addr;
          free_reg env addr;
          VFat (a, b, e)
      | _ ->
          let a = as_int (load_int env ptr ~imm ~index) in
          let b = as_int (load_int env ptr ~imm:(imm + 8) ~index) in
          let e = as_int (load_int env ptr ~imm:(imm + 16) ~index) in
          VFat (a, b, e))
  | Layout.Cheri | Layout.Cheri128 -> (
      match ptr with
      | VCap c ->
          let dst = alloc_cap env in
          (match index with
          | None ->
              if imm mod 16 = 0 && imm >= -16384 && imm < 16384 then
                emit env "clc %s, $zero, %d(%s)" dst imm c
              else begin
                emit env "li $at, %d" imm;
                emit env "clc %s, $at, 0(%s)" dst c
              end
          | Some idx ->
              if imm = 0 then emit env "clc %s, %s, 0(%s)" dst idx c
              else begin
                emit env "daddiu $at, %s, %d" idx imm;
                emit env "clc %s, $at, 0(%s)" dst c
              end);
          VCap dst
      | _ -> err "cheri mode: pointer not in capability register")

let store_ptr env ptr ~imm ~(index : string option) (v : value) =
  match (mode env, v) with
  | Layout.Legacy, (VPtr r | VInt r) -> store_int env ptr ~imm ~index r
  | Layout.Softcheck, VFat (a, b, e) -> (
      match ptr with
      | VFat (pa, pb, pe) ->
          (* one coalesced 24-byte check for the three component stores *)
          let addr = alloc_gpr env in
          (match index with
          | None -> emit env "daddiu %s, %s, %d" addr pa imm
          | Some idx ->
              emit env "daddu %s, %s, %s" addr pa idx;
              if imm <> 0 then emit env "daddiu %s, %s, %d" addr addr imm);
          softcheck_bounds env ~addr ~base:pb ~end_:pe ~size:24;
          emit env "sd %s, 0(%s)" a addr;
          emit env "sd %s, 8(%s)" b addr;
          emit env "sd %s, 16(%s)" e addr;
          free_reg env addr
      | _ ->
          store_int env ptr ~imm ~index a;
          store_int env ptr ~imm:(imm + 8) ~index b;
          store_int env ptr ~imm:(imm + 16) ~index e)
  | (Layout.Cheri | Layout.Cheri128), VCap src -> (
      match ptr with
      | VCap c -> (
          match index with
          | None ->
              if imm mod 16 = 0 && imm >= -16384 && imm < 16384 then
                emit env "csc %s, $zero, %d(%s)" src imm c
              else begin
                emit env "li $at, %d" imm;
                emit env "csc %s, $at, 0(%s)" src c
              end
          | Some idx ->
              if imm = 0 then emit env "csc %s, %s, 0(%s)" src idx c
              else begin
                emit env "daddiu $at, %s, %d" idx imm;
                emit env "csc %s, $at, 0(%s)" src c
              end)
      | _ -> err "cheri mode: pointer not in capability register")
  | _, _ -> err "pointer store representation mismatch"

(* --- local variable access ---------------------------------------------------- *)

let local_addr_into_at env off = emit env "daddiu $at, $fp, %d" off

let read_local env name =
  match List.assoc_opt name env.locals with
  | None -> None
  | Some (off, ty) ->
      Some
        (match (ty, mode env) with
        | Tptr _, Layout.Legacy ->
            let r = alloc_gpr env in
            emit env "ld %s, %d($fp)" r off;
            VPtr r
        | Tptr _, Layout.Softcheck ->
            let a = alloc_gpr env and b = alloc_gpr env and e = alloc_gpr env in
            emit env "ld %s, %d($fp)" a off;
            emit env "ld %s, %d($fp)" b (off + 8);
            emit env "ld %s, %d($fp)" e (off + 16);
            VFat (a, b, e)
        | Tptr _, (Layout.Cheri | Layout.Cheri128) ->
            let c = alloc_cap env in
            (* frame slots for capabilities are 32-aligned, so the scaled
               CLC immediate addresses them in one instruction *)
            emit env "clc %s, $fp, %d($c0)" c off;
            VCap c
        | _, _ ->
            let r = alloc_gpr env in
            emit env "ld %s, %d($fp)" r off;
            VInt r)

let write_local env name (v : value) =
  match List.assoc_opt name env.locals with
  | None -> err "unknown local %s" name
  | Some (off, ty) -> (
      match (ty, v, mode env) with
      | Tptr _, VFat (a, b, e), Layout.Softcheck ->
          emit env "sd %s, %d($fp)" a off;
          emit env "sd %s, %d($fp)" b (off + 8);
          emit env "sd %s, %d($fp)" e (off + 16)
      | Tptr _, VCap c, (Layout.Cheri | Layout.Cheri128) ->
          emit env "csc %s, $fp, %d($c0)" c off
      | _, (VInt r | VPtr r), _ -> emit env "sd %s, %d($fp)" r off
      | _ -> err "representation mismatch storing %s" name)

(* --- global variable access ----------------------------------------------------- *)

let global_label name = "g_" ^ name

let read_global env name ty =
  match (ty, mode env) with
  | Tptr _, Layout.Legacy ->
      let r = alloc_gpr env in
      emit env "la $at, %s" (global_label name);
      emit env "ld %s, 0($at)" r;
      VPtr r
  | Tptr _, Layout.Softcheck ->
      let a = alloc_gpr env and b = alloc_gpr env and e = alloc_gpr env in
      emit env "la $at, %s" (global_label name);
      emit env "ld %s, 0($at)" a;
      emit env "ld %s, 8($at)" b;
      emit env "ld %s, 16($at)" e;
      VFat (a, b, e)
  | Tptr _, (Layout.Cheri | Layout.Cheri128) ->
      let c = alloc_cap env in
      emit env "la $at, %s" (global_label name);
      emit env "clc %s, $at, 0($c0)" c;
      VCap c
  | _, _ ->
      let r = alloc_gpr env in
      emit env "la $at, %s" (global_label name);
      emit env "ld %s, 0($at)" r;
      VInt r

let write_global env name ty v =
  match (ty, v, mode env) with
  | Tptr _, VFat (a, b, e), Layout.Softcheck ->
      emit env "la $at, %s" (global_label name);
      emit env "sd %s, 0($at)" a;
      emit env "sd %s, 8($at)" b;
      emit env "sd %s, 16($at)" e
  | Tptr _, VCap c, (Layout.Cheri | Layout.Cheri128) ->
      emit env "la $at, %s" (global_label name);
      emit env "csc %s, $at, 0($c0)" c
  | _, (VInt r | VPtr r), _ ->
      emit env "la $at, %s" (global_label name);
      emit env "sd %s, 0($at)" r
  | _ -> err "representation mismatch storing global %s" name

(* --- value management across calls ------------------------------------------------ *)

(* Push/pop one machine value in a 32-byte, 32-aligned stack cell (keeps
   $sp capability-aligned; the larger spill footprint of capability
   registers is a real CHERI cost the paper notes in Section 5.1). *)
let push_value env v =
  emit env "daddiu $sp, $sp, -32";
  (match v with
  | VInt r | VPtr r -> emit env "sd %s, 0($sp)" r
  | VCap c -> emit env "csc %s, $sp, 0($c0)" c
  | VFat (a, b, e) ->
      emit env "sd %s, 0($sp)" a;
      emit env "sd %s, 8($sp)" b;
      emit env "sd %s, 16($sp)" e);
  free_value env v

let pop_value env shape =
  let v =
    match shape with
    | `Int ->
        let r = alloc_gpr env in
        emit env "ld %s, 0($sp)" r;
        VInt r
    | `Ptr -> (
        match mode env with
        | Layout.Legacy ->
            let r = alloc_gpr env in
            emit env "ld %s, 0($sp)" r;
            VPtr r
        | Layout.Cheri | Layout.Cheri128 ->
            let c = alloc_cap env in
            emit env "clc %s, $sp, 0($c0)" c;
            VCap c
        | Layout.Softcheck ->
            let a = alloc_gpr env and b = alloc_gpr env and e = alloc_gpr env in
            emit env "ld %s, 0($sp)" a;
            emit env "ld %s, 8($sp)" b;
            emit env "ld %s, 16($sp)" e;
            VFat (a, b, e))
  in
  emit env "daddiu $sp, $sp, 32";
  v

(* Registers currently in use (allocated from the pools). *)
let live_temps env =
  let gprs = List.filter (fun r -> not (List.mem r env.gpr_free)) temp_gprs in
  let caps = List.filter (fun c -> not (List.mem c env.cap_free)) temp_caps in
  (gprs, caps)

let save_live_except env ~gprs:exclude_gprs ~caps:exclude_caps =
  let gprs, caps = live_temps env in
  let gprs = List.filter (fun r -> not (List.mem r exclude_gprs)) gprs in
  let caps = List.filter (fun c -> not (List.mem c exclude_caps)) caps in
  List.iter (fun r -> emit env "daddiu $sp, $sp, -32"; emit env "sd %s, 0($sp)" r) gprs;
  List.iter (fun c -> emit env "daddiu $sp, $sp, -32"; emit env "csc %s, $sp, 0($c0)" c) caps;
  (gprs, caps)

let save_live env =
  let gprs, caps = live_temps env in
  List.iter (fun r -> emit env "daddiu $sp, $sp, -32"; emit env "sd %s, 0($sp)" r) gprs;
  List.iter (fun c -> emit env "daddiu $sp, $sp, -32"; emit env "csc %s, $sp, 0($c0)" c) caps;
  (gprs, caps)

let restore_live env (gprs, caps) =
  List.iter
    (fun c -> emit env "clc %s, $sp, 0($c0)" c; emit env "daddiu $sp, $sp, 32")
    (List.rev caps);
  List.iter
    (fun r -> emit env "ld %s, 0($sp)" r; emit env "daddiu $sp, $sp, 32")
    (List.rev gprs);
  (* Re-mark them as allocated: remove from free lists. *)
  env.gpr_free <- List.filter (fun r -> not (List.mem r gprs)) env.gpr_free;
  env.cap_free <- List.filter (fun c -> not (List.mem c caps)) env.cap_free

(* --- argument passing ---------------------------------------------------------------- *)

(* Registers consumed by a parameter list, in order. *)
let arg_slots env (param_tys : ty list) =
  let rec go tys ints caps acc =
    match tys with
    | [] -> List.rev acc
    | ty :: rest -> (
        match (ty, mode env) with
        | Tptr _, (Layout.Cheri | Layout.Cheri128) -> (
            match caps with
            | c :: caps' -> go rest ints caps' (`Cap c :: acc)
            | [] -> err "too many capability arguments")
        | Tptr _, Layout.Softcheck -> (
            match ints with
            | a :: b :: c :: ints' -> go rest ints' caps (`Fat (a, b, c) :: acc)
            | _ -> err "too many fat-pointer arguments")
        | _, _ -> (
            match ints with
            | a :: ints' -> go rest ints' caps (`Int a :: acc)
            | [] -> err "too many integer arguments"))
  in
  go param_tys int_args [ "$c3"; "$c4"; "$c5"; "$c6"; "$c7"; "$c8" ] []

(* --- expression code generation --------------------------------------------------------- *)

(* Convert a pointer value to a plain integer (its address) for equality
   and ordering; untagged capabilities convert to 0, so NULL tests work. *)
let ptr_to_int env v =
  match v with
  | VInt r | VPtr r -> VInt r
  | VFat (a, b, e) ->
      free_reg env b;
      free_reg env e;
      VInt a
  | VCap c ->
      let r = alloc_gpr env in
      emit env "ctoptr %s, %s, $c0" r c;
      free_cap env c;
      VInt r

let rec gen_expr env (e : expr) : value =
  match e with
  | Int v ->
      let r = alloc_gpr env in
      emit env "li %s, %Ld" r v;
      VInt r
  | Null -> null_value env
  | Sizeof ty ->
      let r = alloc_gpr env in
      emit env "li %s, %d" r (Layout.sizeof env.layout ty);
      VInt r
  | Var name -> (
      match read_local env name with
      | Some v -> v
      | None -> (
          match Hashtbl.find_opt env.globals name with
          | Some ty -> read_global env name ty
          | None -> err "unknown variable %s" name))
  | Cast (ty, e) -> (
      let v = gen_expr env e in
      (* Casts change the static type; representations already agree
         except int<->pointer casts, which we restrict. *)
      match (ty, v) with
      | Tptr _, (VCap _ | VFat _ | VPtr _) -> v
      | Tptr _, VInt _ -> err "casting integers to pointers is not supported"
      | _, v -> ptr_to_int env v)
  | Unop (op, a) -> (
      let va = gen_expr env a in
      let r = as_int va in
      let dst = alloc_gpr env in
      (match op with
      | Neg -> emit env "dsubu %s, $zero, %s" dst r
      | Not -> emit env "sltiu %s, %s, 1" dst r
      | Bnot -> emit env "nor %s, %s, $zero" dst r);
      free_value env va;
      VInt dst)
  | Binop (And, a, b) ->
      let out = alloc_gpr env in
      let l_false = fresh_label env "and_false" and l_end = fresh_label env "and_end" in
      let va = gen_expr env (Binop (Ne, a, Int 0L)) in
      emit env "beqz %s, %s" (as_int va) l_false;
      free_value env va;
      let vb = gen_expr env (Binop (Ne, b, Int 0L)) in
      emit env "move %s, %s" out (as_int vb);
      free_value env vb;
      emit env "b %s" l_end;
      emit_label env l_false;
      emit env "move %s, $zero" out;
      emit_label env l_end;
      VInt out
  | Binop (Or, a, b) ->
      let out = alloc_gpr env in
      let l_true = fresh_label env "or_true" and l_end = fresh_label env "or_end" in
      let va = gen_expr env (Binop (Ne, a, Int 0L)) in
      emit env "bnez %s, %s" (as_int va) l_true;
      free_value env va;
      let vb = gen_expr env (Binop (Ne, b, Int 0L)) in
      emit env "move %s, %s" out (as_int vb);
      free_value env vb;
      emit env "b %s" l_end;
      emit_label env l_true;
      emit env "li %s, 1" out;
      emit_label env l_end;
      VInt out
  | Binop (op, a, b) -> gen_binop env op a b
  | Field (base, fname) -> (
      match type_of env base with
      | Tptr (Tstruct s) ->
          let off, fty = Layout.field env.layout s fname in
          let pv = gen_expr_ptr env base in
          let result =
            if is_ptr_ty fty then load_ptr env pv ~imm:off ~index:None
            else load_int env pv ~imm:off ~index:None
          in
          free_value env pv;
          result
      | ty -> err "-> on %a" Ast.pp_ty ty)
  | Addr_field (base, fname) -> (
      match type_of env base with
      | Tptr (Tstruct s) ->
          let off, _fty = Layout.field env.layout s fname in
          let pv = gen_expr_ptr env base in
          gen_ptr_offset env pv off
      | ty -> err "&-> on %a" Ast.pp_ty ty)
  | Index (base, idx) -> (
      let bty = type_of env base in
      let size = elem_size env bty in
      let elem = match bty with Tptr e -> e | _ -> err "index of non-pointer" in
      let pv = gen_expr_ptr env base in
      let iv = gen_expr env idx in
      let off = alloc_gpr env in
      emit env "li $at, %d" size;
      emit env "dmult %s, $at" (as_int iv);
      emit env "mflo %s" off;
      free_value env iv;
      let result =
        if is_ptr_ty elem then load_ptr env pv ~imm:0 ~index:(Some off)
        else load_int env pv ~imm:0 ~index:(Some off)
      in
      free_reg env off;
      free_value env pv;
      result)
  | Call (name, args) -> gen_call env name args

(* Evaluate an expression that must be a pointer. *)
and gen_expr_ptr env e =
  let v = gen_expr env e in
  match (v, mode env) with
  | (VPtr _ | VFat _ | VCap _), _ -> v
  | VInt _, _ -> err "expected pointer expression"

(* Pointer displaced by a byte offset (for &p->f and p+i). *)
and gen_ptr_offset env pv off =
  if off = 0 then pv
  else
    match pv with
    | VPtr p ->
        let r = alloc_gpr env in
        emit env "daddiu %s, %s, %d" r p off;
        free_reg env p;
        VPtr r
    | VFat (a, b, e) ->
        let r = alloc_gpr env in
        emit env "daddiu %s, %s, %d" r a off;
        free_reg env a;
        VFat (r, b, e)
    | VCap c ->
        (* CIncBase: monotonic non-decreasing base — the hardware rule that
           forbids growing a capability back (Section 5.1: no native
           pointer subtraction). *)
        let d = alloc_cap env in
        emit env "li $at, %d" off;
        emit env "cincbase %s, %s, $at" d c;
        free_cap env c;
        VCap d
    | VInt _ -> err "offsetting a non-pointer"

and gen_binop env op a b =
  let ta = type_of env a and tb = type_of env b in
  match (op, ta, tb) with
  (* pointer +/- integer *)
  | Add, Tptr _, _ ->
      let size = elem_size env ta in
      let pv = gen_expr_ptr env a in
      let iv = gen_expr env b in
      let scaled = alloc_gpr env in
      emit env "li $at, %d" size;
      emit env "dmult %s, $at" (as_int iv);
      emit env "mflo %s" scaled;
      free_value env iv;
      let out =
        match pv with
        | VPtr p ->
            let r = alloc_gpr env in
            emit env "daddu %s, %s, %s" r p scaled;
            free_reg env p;
            VPtr r
        | VFat (x, bs, e) ->
            let r = alloc_gpr env in
            emit env "daddu %s, %s, %s" r x scaled;
            free_reg env x;
            VFat (r, bs, e)
        | VCap c ->
            let d = alloc_cap env in
            emit env "cincbase %s, %s, %s" d c scaled;
            free_cap env c;
            VCap d
        | VInt _ -> err "pointer add"
      in
      free_reg env scaled;
      out
  | Sub, Tptr _, Tptr _ ->
      err "pointer subtraction is not supported by CHERI capabilities (Section 5.1)"
  (* pointer comparisons: compare addresses (NULL-safe) *)
  | (Eq | Ne | Lt | Le | Gt | Ge), Tptr _, _ | (Eq | Ne | Lt | Le | Gt | Ge), _, Tptr _ ->
      let va = ptr_to_int env (gen_expr env a) in
      let vb = ptr_to_int env (gen_expr env b) in
      gen_int_compare env op va vb
  | _ ->
      let va = gen_expr env a in
      let vb = gen_expr env b in
      gen_int_arith env op va vb

and gen_int_compare env op va vb =
  let ra = as_int va and rb = as_int vb in
  let dst = alloc_gpr env in
  (match op with
  | Eq ->
      emit env "xor %s, %s, %s" dst ra rb;
      emit env "sltiu %s, %s, 1" dst dst
  | Ne ->
      emit env "xor %s, %s, %s" dst ra rb;
      emit env "sltu %s, $zero, %s" dst dst
  | Lt -> emit env "slt %s, %s, %s" dst ra rb
  | Gt -> emit env "slt %s, %s, %s" dst rb ra
  | Le ->
      emit env "slt %s, %s, %s" dst rb ra;
      emit env "xori %s, %s, 1" dst dst
  | Ge ->
      emit env "slt %s, %s, %s" dst ra rb;
      emit env "xori %s, %s, 1" dst dst
  | _ -> err "not a comparison");
  free_value env va;
  free_value env vb;
  VInt dst

and gen_int_arith env op va vb =
  match op with
  | Eq | Ne | Lt | Le | Gt | Ge -> gen_int_compare env op va vb
  | _ ->
      let ra = as_int va and rb = as_int vb in
      let dst = alloc_gpr env in
      (match op with
      | Add -> emit env "daddu %s, %s, %s" dst ra rb
      | Sub -> emit env "dsubu %s, %s, %s" dst ra rb
      | Mul ->
          emit env "dmult %s, %s" ra rb;
          emit env "mflo %s" dst
      | Div ->
          emit env "ddiv %s, %s" ra rb;
          emit env "mflo %s" dst
      | Mod ->
          emit env "ddiv %s, %s" ra rb;
          emit env "mfhi %s" dst
      | Band -> emit env "and %s, %s, %s" dst ra rb
      | Bor -> emit env "or %s, %s, %s" dst ra rb
      | Bxor -> emit env "xor %s, %s, %s" dst ra rb
      | Shl -> emit env "dsllv %s, %s, %s" dst ra rb
      | Shr -> emit env "dsrav %s, %s, %s" dst ra rb
      | Eq | Ne | Lt | Le | Gt | Ge | And | Or -> err "unreachable");
      free_value env va;
      free_value env vb;
      VInt dst

and gen_call env name args =
  (* Inline builtins that compile to a syscall or marker. *)
  let inline_syscall num =
    match args with
    | [] ->
        let gprs, caps = save_live env in
        emit env "li $v0, %d" num;
        emit env "syscall";
        let dst = alloc_gpr env in
        emit env "move %s, $v0" dst;
        restore_live env (gprs, caps);
        VInt dst
    | [ a ] ->
        let va = gen_expr env a in
        let r = as_int (ptr_to_int env va) in
        emit env "move $a0, %s" r;
        free_reg env r;
        let gprs, caps = save_live env in
        emit env "li $v0, %d" num;
        emit env "syscall";
        let dst = alloc_gpr env in
        emit env "move %s, $v0" dst;
        restore_live env (gprs, caps);
        VInt dst
    | _ -> err "%s takes at most one argument" name
  in
  match (name, args) with
  | "exit", [ _ ] -> inline_syscall 1
  | "print_char", [ _ ] -> inline_syscall 2
  | "print_int", [ _ ] -> inline_syscall 7
  | "cycles", [] -> inline_syscall 5
  | "instret", [] -> inline_syscall 6
  | "phase_begin", [ a ] ->
      let va = gen_expr env a in
      emit env "trace.phase_begin %s" (as_int va);
      free_value env va;
      VInt (let r = alloc_gpr env in emit env "move %s, $zero" r; r)
  | "phase_end", [] ->
      emit env "trace.phase_end";
      VInt (let r = alloc_gpr env in emit env "move %s, $zero" r; r)
  | _ ->
      (* Regular call (including __malloc/free/random runtime entries). *)
      let callee, param_tys, ret_ty =
        match name with
        | "malloc" -> ("__malloc", [ Tint ], Tptr Tvoid)
        | "free" -> ("__free", [ Tptr Tvoid ], Tvoid)
        | "random" -> ("__random", [ Tint ], Tint)
        | _ -> (
            match Hashtbl.find_opt env.funcs name with
            | Some (ret, ps) -> (name, ps, ret)
            | None -> err "unknown function %s" name)
      in
      if List.length args <> List.length param_tys then
        err "%s expects %d arguments" name (List.length param_tys);
      (* Evaluate arguments into temporaries. *)
      let vals = List.map (gen_expr env) args in
      (* Save the enclosing expression's live temporaries — everything in
         use that is not an argument value. *)
      let arg_gprs =
        List.concat_map
          (function VInt r | VPtr r -> [ r ] | VFat (a, b, e) -> [ a; b; e ] | VCap _ -> [])
          vals
      in
      let arg_caps = List.concat_map (function VCap c -> [ c ] | _ -> []) vals in
      let live = save_live_except env ~gprs:arg_gprs ~caps:arg_caps in
      (* Shuffle argument values into their registers, never clobbering a
         still-pending source (cycles are broken through a scratch). *)
      let slots = arg_slots env param_tys in
      let moves =
        List.concat
          (List.map2
             (fun v slot ->
               match (v, slot) with
               | (VInt r | VPtr r), `Int a -> [ (`G, r, a) ]
               | VCap x, `Cap c -> [ (`C, x, c) ]
               | VFat (x, y, z), `Fat (a, b, e) -> [ (`G, x, a); (`G, y, b); (`G, z, e) ]
               | VCap _, `Int _ -> err "capability passed where integer expected"
               | _, `Cap _ -> err "integer passed where capability expected"
               | _, `Fat _ | VFat _, `Int _ -> err "argument representation mismatch")
             vals slots)
      in
      let emit_move kind src dst =
        if src <> dst then
          match kind with
          | `G -> emit env "move %s, %s" dst src
          | `C -> emit env "cmove %s, %s" dst src
      in
      let rec schedule moves =
        match moves with
        | [] -> ()
        | _ -> (
            let is_pending_src reg =
              List.exists (fun (_, src, dst) -> src = reg && src <> dst) moves
            in
            match
              List.find_opt (fun (_, src, dst) -> src = dst || not (is_pending_src dst)) moves
            with
            | Some ((kind, src, dst) as m) ->
                emit_move kind src dst;
                schedule (List.filter (fun m' -> m' <> m) moves)
            | None ->
                (* cycle: park one source in a scratch register *)
                let (kind, src, dst), rest =
                  match moves with m :: rest -> (m, rest) | [] -> assert false
                in
                let scratch = match kind with `G -> "$t9" | `C -> "$c1" in
                emit_move kind src scratch;
                schedule
                  ((kind, scratch, dst)
                  :: List.map
                       (fun (k, s2, d2) -> if s2 = src then (k, scratch, d2) else (k, s2, d2))
                       rest))
      in
      schedule moves;
      List.iter (free_value env) vals;
      emit env "jal %s" callee;
      (* Secure the result in fresh temporaries BEFORE restoring the saved
         registers: the return registers ($v0/$v1/$t9/$c3) may themselves
         be among the live registers about to be restored. *)
      let result =
        match (ret_ty, mode env) with
        | Tvoid, _ ->
            let r = alloc_gpr env in
            emit env "move %s, $zero" r;
            VInt r
        | Tptr _, Layout.Legacy ->
            let r = alloc_gpr env in
            emit env "move %s, $v0" r;
            VPtr r
        | Tptr _, (Layout.Cheri | Layout.Cheri128) ->
            let c = alloc_cap env in
            emit env "cmove %s, $c3" c;
            VCap c
        | Tptr _, Layout.Softcheck ->
            (* $v1 is also an allocatable temporary: secure it before any
               destination could be $v1 itself; $t9 next; $v0 is never in
               the pool. *)
            let b = alloc_gpr env in
            emit env "move %s, $v1" b;
            let e = alloc_gpr env in
            emit env "move %s, $t9" e;
            let a = alloc_gpr env in
            emit env "move %s, $v0" a;
            VFat (a, b, e)
        | _, _ ->
            let r = alloc_gpr env in
            emit env "move %s, $v0" r;
            VInt r
      in
      restore_live env live;
      result

(* --- statements ------------------------------------------------------------------ *)

let move_to_return env v =
  match (v, mode env) with
  | VCap c, (Layout.Cheri | Layout.Cheri128) -> emit env "cmove $c3, %s" c
  | VFat (a, b, e), Layout.Softcheck ->
      (* $v1 may itself hold a component: write it last ($t9 and $v0 are
         never allocatable sources). *)
      emit env "move $t9, %s" e;
      emit env "move $v0, %s" a;
      emit env "move $v1, %s" b
  | (VInt r | VPtr r), _ -> emit env "move $v0, %s" r
  | _, _ -> err "return value representation mismatch"

let rec gen_stmt env ret_label (s : stmt) =
  match s with
  | Block ss -> List.iter (gen_stmt env ret_label) ss
  | Expr e ->
      let v = gen_expr env e in
      free_value env v
  | Decl (ty, name, init) ->
      let off = frame_slot env ty in
      env.locals <- (name, (off, ty)) :: env.locals;
      (match init with
      | Some e ->
          let v = gen_expr env e in
          write_local env name v;
          free_value env v
      | None -> ())
  | Assign (lhs, rhs) -> (
      match lhs with
      | Var name when List.mem_assoc name env.locals ->
          let v = gen_expr env rhs in
          write_local env name v;
          free_value env v
      | Var name -> (
          match Hashtbl.find_opt env.globals name with
          | Some ty ->
              let v = gen_expr env rhs in
              write_global env name ty v;
              free_value env v
          | None -> err "unknown variable %s" name)
      | Field (base, fname) -> (
          match type_of env base with
          | Tptr (Tstruct sname) ->
              let off, fty = Layout.field env.layout sname fname in
              let pv = gen_expr_ptr env base in
              let v = gen_expr env rhs in
              if is_ptr_ty fty then store_ptr env pv ~imm:off ~index:None v
              else store_int env pv ~imm:off ~index:None (as_int v);
              free_value env v;
              free_value env pv
          | ty -> err "assigning through %a" Ast.pp_ty ty)
      | Index (base, idx) ->
          let bty = type_of env base in
          let size = elem_size env bty in
          let elem = match bty with Tptr e -> e | _ -> err "index of non-pointer" in
          let pv = gen_expr_ptr env base in
          let iv = gen_expr env idx in
          let off = alloc_gpr env in
          emit env "li $at, %d" size;
          emit env "dmult %s, $at" (as_int iv);
          emit env "mflo %s" off;
          free_value env iv;
          let v = gen_expr env rhs in
          if is_ptr_ty elem then store_ptr env pv ~imm:0 ~index:(Some off) v
          else store_int env pv ~imm:0 ~index:(Some off) (as_int v);
          free_value env v;
          free_reg env off;
          free_value env pv
      | _ -> err "unsupported assignment target")
  | If (cond, then_, else_) ->
      let l_else = fresh_label env "else" and l_end = fresh_label env "endif" in
      let c = ptr_to_int env (gen_expr env cond) in
      emit env "beqz %s, %s" (as_int c) l_else;
      free_value env c;
      List.iter (gen_stmt env ret_label) then_;
      emit env "b %s" l_end;
      emit_label env l_else;
      List.iter (gen_stmt env ret_label) else_;
      emit_label env l_end
  | While (cond, body) ->
      let l_top = fresh_label env "loop" and l_end = fresh_label env "endloop" in
      emit_label env l_top;
      let c = ptr_to_int env (gen_expr env cond) in
      emit env "beqz %s, %s" (as_int c) l_end;
      free_value env c;
      List.iter (gen_stmt env ret_label) body;
      emit env "b %s" l_top;
      emit_label env l_end
  | Return e ->
      (match e with
      | Some e ->
          let v = gen_expr env e in
          move_to_return env v;
          free_value env v
      | None -> emit env "move $v0, $zero");
      emit env "b %s" ret_label

(* --- functions --------------------------------------------------------------------- *)

let gen_function env (f : func) =
  env.current_fn <- f.fname;
  env.locals <- [];
  env.frame_size <- 0;
  env.gpr_free <- temp_gprs;
  env.cap_free <- temp_caps;
  let ret_label = fresh_label env "ret" in
  (* Generate the body into a scratch buffer so the final frame size is
     known when the prologue is emitted. *)
  let outer = Buffer.contents env.buf in
  Buffer.clear env.buf;
  (* Parameters land in frame slots. *)
  let slots = arg_slots env (List.map fst f.params) in
  List.iter2
    (fun (ty, name) slot ->
      let off = frame_slot env ty in
      env.locals <- (name, (off, ty)) :: env.locals;
      match slot with
      | `Int r -> emit env "sd %s, %d($fp)" r off
      | `Cap c -> emit env "csc %s, $fp, %d($c0)" c off
      | `Fat (a, b, e) ->
          emit env "sd %s, %d($fp)" a off;
          emit env "sd %s, %d($fp)" b (off + 8);
          emit env "sd %s, %d($fp)" e (off + 16))
    f.params slots;
  List.iter (gen_stmt env ret_label) f.body;
  emit env "move $v0, $zero" (* implicit return 0 / void *);
  let body = Buffer.contents env.buf in
  Buffer.clear env.buf;
  Buffer.add_string env.buf outer;
  let frame = Layout.align_to env.frame_size 32 in
  emit_label env f.fname;
  emit env "daddiu $sp, $sp, %d" (-(frame + 32));
  emit env "sd $ra, %d($sp)" frame;
  emit env "sd $fp, %d($sp)" (frame + 8);
  emit env "move $fp, $sp";
  Buffer.add_string env.buf body;
  emit_label env ret_label;
  emit env "ld $ra, %d($sp)" frame;
  emit env "ld $fp, %d($sp)" (frame + 8);
  emit env "daddiu $sp, $sp, %d" (frame + 32);
  emit env "jr $ra"

(* --- whole program -------------------------------------------------------------------- *)

let compile_program layout (p : program) =
  let env =
    {
      layout;
      buf = Buffer.create 65536;
      label_id = 0;
      gpr_free = temp_gprs;
      cap_free = temp_caps;
      locals = [];
      frame_size = 0;
      globals = Hashtbl.create 16;
      funcs = Hashtbl.create 16;
      structs_of_ptr = ();
      current_fn = "<top>";
    }
  in
  List.iter (fun (ty, name) -> Hashtbl.replace env.globals name ty) p.globals;
  List.iter
    (fun f -> Hashtbl.replace env.funcs f.fname (f.ret, List.map fst f.params))
    p.funcs;
  if not (Hashtbl.mem env.funcs "main") then err "program has no main function";
  Buffer.add_string env.buf "  .text\n";
  emit_label env "_start";
  emit env "jal main";
  emit env "move $a0, $v0";
  emit env "li $v0, 1";
  emit env "syscall";
  List.iter (gen_function env) p.funcs;
  Buffer.add_string env.buf (Runtime_asm.runtime (mode env));
  (* data section *)
  Buffer.add_string env.buf "\n  .data\n";
  Buffer.add_string env.buf Runtime_asm.data;
  List.iter
    (fun (ty, name) ->
      match (ty, mode env) with
      | Tptr _, (Layout.Cheri | Layout.Cheri128) ->
          Buffer.add_string env.buf "  .align 5\n";
          Buffer.add_string env.buf (global_label name ^ ": .space 32\n")
      | Tptr _, Layout.Softcheck ->
          Buffer.add_string env.buf (global_label name ^ ": .space 24\n")
      | _ -> Buffer.add_string env.buf (global_label name ^ ": .dword 0\n"))
    p.globals;
  Buffer.contents env.buf
