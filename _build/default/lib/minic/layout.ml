(* Mode-dependent data layout.

   The three compilation modes correspond to the paper's Figure 4
   configurations:
     - [Legacy]: conventional MIPS code generation, 8-byte pointers, no
       checks (the "unsafe MIPS baseline");
     - [Cheri]: pointers are 256-bit capabilities (32 bytes, 32-byte
       aligned); bounds and permissions checked by hardware on every
       dereference;
     - [Cheri128]: the Section 4.1 compressed format — 16-byte
       capabilities on a machine configured with [Machine.W128] (the
       Section 8 "capability compression" ablation);
     - [Softcheck]: CCured-style software fat pointers
       {addr, base, end} = 24 bytes, with explicit check code.

   sizeof and field offsets therefore differ per mode — exactly why the
   paper's Olden ports must be recompiled rather than relinked. *)

open Ast

type mode = Legacy | Cheri | Cheri128 | Softcheck

let mode_name = function
  | Legacy -> "legacy"
  | Cheri -> "cheri"
  | Cheri128 -> "cheri128"
  | Softcheck -> "softcheck"

let ptr_size = function Legacy -> 8 | Cheri -> 32 | Cheri128 -> 16 | Softcheck -> 24
let ptr_align = function Legacy -> 8 | Cheri -> 32 | Cheri128 -> 16 | Softcheck -> 8

(* Both capability widths share the capability code generator. *)
let is_cheri = function Cheri | Cheri128 -> true | Legacy | Softcheck -> false

exception Error of string

let err fmt = Fmt.kstr (fun m -> raise (Error m)) fmt

type struct_layout = {
  size : int;
  align : int;
  offsets : (string * (int * ty)) list; (* field -> offset, type *)
}

type t = {
  mode : mode;
  structs : (string, struct_layout) Hashtbl.t;
  defs : (string, struct_def) Hashtbl.t;
}

let align_to v a = (v + a - 1) / a * a

let rec size_align t = function
  | Tint -> (8, 8)
  | Tvoid -> err "sizeof(void)"
  | Tptr _ -> (ptr_size t.mode, ptr_align t.mode)
  | Tstruct name ->
      let l = struct_layout t name in
      (l.size, l.align)

and struct_layout t name =
  match Hashtbl.find_opt t.structs name with
  | Some l -> l
  | None ->
      let def =
        match Hashtbl.find_opt t.defs name with
        | Some d -> d
        | None -> err "unknown struct %s" name
      in
      let offsets, size, align =
        List.fold_left
          (fun (offs, off, align) (ty, fname) ->
            let s, a = size_align t ty in
            let off = align_to off a in
            ((fname, (off, ty)) :: offs, off + s, max align a))
          ([], 0, 8) def.fields
      in
      let l = { size = align_to size align; align; offsets = List.rev offsets } in
      Hashtbl.replace t.structs name l;
      l

let field t sname fname =
  let l = struct_layout t sname in
  match List.assoc_opt fname l.offsets with
  | Some x -> x
  | None -> err "struct %s has no field %s" sname fname

let create mode (program : program) =
  let t = { mode; structs = Hashtbl.create 16; defs = Hashtbl.create 16 } in
  List.iter (fun d -> Hashtbl.replace t.defs d.sname d) program.structs;
  (* Force layouts now so cycles and unknown types fail early. *)
  List.iter (fun (d : struct_def) -> ignore (struct_layout t d.sname)) program.structs;
  t

let sizeof t ty = fst (size_align t ty)
