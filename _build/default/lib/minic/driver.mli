(** The minic compiler driver. *)

exception Error of string

(** [compile ~mode source] translates a minic program to BERI/CHERI
    assembly text under the given pointer lowering.  The output assembles
    with [Asm.Assembler.assemble] and runs under the kernel model (on a
    [Machine.W128] machine for [Cheri128]).
    @raise Error with a located message on any lex/parse/type/codegen
    failure. *)
val compile : mode:Layout.mode -> string -> string
