(* The minic language: the C-like subset used to port the Olden kernels to
   the simulated machine (DESIGN.md explains its role as the stand-in for
   the paper's LLVM/Clang adaptation).

   Pointer-relevant semantics follow C: structs live behind pointers,
   pointers are typed, arrays are accessed by indexing.  The
   [__capability] qualifier of the paper's Clang extension is accepted on
   pointer types; under `-mode cheri` *all* pointers are lowered to
   capabilities (the whole-program adaptation the paper applies to Olden),
   so the qualifier is informative only. *)

type ty =
  | Tint (* 64-bit integer *)
  | Tvoid
  | Tptr of ty (* possibly __capability-qualified; qualifier erased *)
  | Tstruct of string

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or (* short-circuit *)
  | Band | Bor | Bxor | Shl | Shr

type unop = Neg | Not | Bnot

type expr =
  | Int of int64
  | Null
  | Var of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list
  | Field of expr * string (* e->f : e has pointer-to-struct type *)
  | Index of expr * expr (* e[i] *)
  | Addr_field of expr * string (* &e->f : pointer to a field *)
  | Sizeof of ty
  | Cast of ty * expr

type stmt =
  | Expr of expr
  | Decl of ty * string * expr option
  | Assign of expr * expr (* lvalue = rvalue *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr option
  | Block of stmt list

type func = {
  fname : string;
  ret : ty;
  params : (ty * string) list;
  body : stmt list;
}

type struct_def = { sname : string; fields : (ty * string) list }

type program = {
  structs : struct_def list;
  globals : (ty * string) list;
  funcs : func list;
}

let rec pp_ty ppf = function
  | Tint -> Fmt.string ppf "int"
  | Tvoid -> Fmt.string ppf "void"
  | Tptr t -> Fmt.pf ppf "%a*" pp_ty t
  | Tstruct s -> Fmt.pf ppf "struct %s" s

let ty_equal a b =
  let rec go a b =
    match (a, b) with
    | Tint, Tint | Tvoid, Tvoid -> true
    | Tptr a, Tptr b -> go a b
    | Tstruct a, Tstruct b -> String.equal a b
    | _ -> false
  in
  go a b
