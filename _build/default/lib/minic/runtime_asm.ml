(* The minic runtime library, in assembly, specialized per mode.

   __malloc is a bump allocator that acquires memory from the kernel in
   64 KB sbrk chunks — the amortization Section 4.2 notes real allocators
   perform ("malloc() implementations typically amortize kernel entry").
   Its epilogue is where the three modes differ, and is exactly the code
   the paper describes:

     legacy     return the raw address;
     cheri      CIncBase + CSetLen construct the bounded capability
                ("a malloc() that returns a capability will use the
                CIncBase and CSetLen instructions", Section 5.1);
     softcheck  return the (addr, base, end) triple in three registers.

   Every allocation emits a trace.alloc marker so the harness can split
   Figure 4's allocation and computation phases without perturbing the
   cycle counts (markers are free in the machine model). *)

let malloc_common =
  {|
__malloc:
  daddiu $t0, $a0, 31
  li $at, -32
  and $t0, $t0, $at          # size rounded to 32
  la $t1, __heap_cur
  ld $t2, 0($t1)             # cur
  la $t3, __heap_end
  ld $t4, 0($t3)             # end
  daddu $t5, $t2, $t0
  sltu $at, $t4, $t5         # end < cur + size ?
  beqz $at, __malloc_ok
  # grow the arena: grant = max(size, 64 KB); sbrk is contiguous
  move $t6, $t0
  li $t7, 65536
  sltu $at, $t7, $t6
  bnez $at, __malloc_grant
  move $t6, $t7
__malloc_grant:
  move $t8, $a0
  move $a0, $t6
  li $v0, 3
  syscall                    # v0 = old brk
  move $a0, $t8
  bnez $t2, __malloc_grown
  move $t2, $v0              # first allocation: start of arena
__malloc_grown:
  daddu $t4, $v0, $t6
  sd $t4, 0($t3)             # new end
  daddu $t5, $t2, $t0
__malloc_ok:
  sd $t5, 0($t1)             # cur += size
  move $v0, $t2
  trace.alloc $a0, $v0
|}

let runtime (mode : Layout.mode) =
  let malloc_epilogue =
    match mode with
    | Layout.Legacy -> "  jr $ra\n"
    | Layout.Cheri | Layout.Cheri128 ->
        (* the two instructions of Section 5.1 *)
        "  cfromptr $c3, $c0, $v0\n  csetlen $c3, $c3, $t0\n  jr $ra\n"
    | Layout.Softcheck -> "  move $v1, $v0\n  daddu $t9, $v0, $t0\n  jr $ra\n"
  in
  let free_body =
    match mode with
    | Layout.Cheri | Layout.Cheri128 -> "__free:\n  ctoptr $v1, $c3, $c0\n  trace.free $v1\n  jr $ra\n"
    | Layout.Legacy | Layout.Softcheck -> "__free:\n  trace.free $a0\n  jr $ra\n"
  in
  malloc_common ^ malloc_epilogue ^ free_body
  ^ {|
__random:
  la $v1, __rand_state
  ld $v0, 0($v1)
  dsll $at, $v0, 13
  xor $v0, $v0, $at
  dsrl $at, $v0, 7
  xor $v0, $v0, $at
  dsll $at, $v0, 17
  xor $v0, $v0, $at
  sd $v0, 0($v1)
  dsrl $v0, $v0, 1
  ddivu $v0, $a0
  mfhi $v0
  jr $ra
__bounds_fail:
  li $a0, 97
  li $v0, 1
  syscall
|}

let data =
  {|__heap_cur: .dword 0
__heap_end: .dword 0
__rand_state: .dword 0x9E3779B97F4A7C15
|}
