(* Hand-written lexer for minic. *)

type token =
  | INT of int64
  | IDENT of string
  | KW of string (* int, void, struct, if, else, while, for, return, sizeof, __capability *)
  | PUNCT of string (* operators and delimiters *)
  | EOF

exception Error of int * string (* line, message *)

let keywords =
  [ "int"; "void"; "struct"; "if"; "else"; "while"; "for"; "return"; "sizeof";
    "__capability"; "NULL" ]

type t = { src : string; mutable pos : int; mutable line : int }

let create src = { src; pos = 0; line = 1 }

let peek_char t = if t.pos < String.length t.src then Some t.src.[t.pos] else None
let advance t = t.pos <- t.pos + 1

let is_ident_start c = c = '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_ident c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec skip_ws t =
  match peek_char t with
  | Some (' ' | '\t' | '\r') ->
      advance t;
      skip_ws t
  | Some '\n' ->
      t.line <- t.line + 1;
      advance t;
      skip_ws t
  | Some '/' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '/' ->
      while peek_char t <> None && peek_char t <> Some '\n' do
        advance t
      done;
      skip_ws t
  | Some '/' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '*' ->
      advance t;
      advance t;
      let rec go () =
        match peek_char t with
        | None -> raise (Error (t.line, "unterminated comment"))
        | Some '*' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '/' ->
            advance t;
            advance t
        | Some c ->
            if c = '\n' then t.line <- t.line + 1;
            advance t;
            go ()
      in
      go ();
      skip_ws t
  | _ -> ()

let two_char_ops = [ "->"; "<="; ">="; "=="; "!="; "&&"; "||"; "<<"; ">>" ]

let next t =
  skip_ws t;
  match peek_char t with
  | None -> (EOF, t.line)
  | Some c when is_digit c ->
      let start = t.pos in
      if c = '0' && t.pos + 1 < String.length t.src
         && (t.src.[t.pos + 1] = 'x' || t.src.[t.pos + 1] = 'X') then begin
        advance t;
        advance t;
        while
          match peek_char t with
          | Some c -> is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
          | None -> false
        do
          advance t
        done
      end
      else
        while match peek_char t with Some c -> is_digit c | None -> false do
          advance t
        done;
      let text = String.sub t.src start (t.pos - start) in
      (INT (Int64.of_string text), t.line)
  | Some c when is_ident_start c ->
      let start = t.pos in
      while match peek_char t with Some c -> is_ident c | None -> false do
        advance t
      done;
      let text = String.sub t.src start (t.pos - start) in
      if List.mem text keywords then (KW text, t.line) else (IDENT text, t.line)
  | Some c ->
      if t.pos + 1 < String.length t.src then begin
        let two = String.sub t.src t.pos 2 in
        if List.mem two two_char_ops then begin
          advance t;
          advance t;
          (PUNCT two, t.line)
        end
        else begin
          advance t;
          (PUNCT (String.make 1 c), t.line)
        end
      end
      else begin
        advance t;
        (PUNCT (String.make 1 c), t.line)
      end

(* Tokenize the whole input (with line numbers). *)
let tokenize src =
  let t = create src in
  let rec go acc =
    match next t with
    | EOF, line -> List.rev ((EOF, line) :: acc)
    | tok -> go (tok :: acc)
  in
  go []

let token_to_string = function
  | INT v -> Int64.to_string v
  | IDENT s -> s
  | KW s -> s
  | PUNCT s -> Printf.sprintf "%S" s
  | EOF -> "<eof>"
