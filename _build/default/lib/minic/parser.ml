(* Recursive-descent parser for minic. *)

open Ast

exception Error of int * string

type t = { mutable toks : (Lexer.token * int) list }

let err t fmt =
  let line = match t.toks with (_, l) :: _ -> l | [] -> 0 in
  Fmt.kstr (fun m -> raise (Error (line, m))) fmt

let peek t = match t.toks with (tok, _) :: _ -> tok | [] -> Lexer.EOF

let peek2 t = match t.toks with _ :: (tok, _) :: _ -> tok | _ -> Lexer.EOF

let advance t = match t.toks with _ :: rest -> t.toks <- rest | [] -> ()

let eat t tok =
  if peek t = tok then advance t
  else err t "expected %s, found %s" (Lexer.token_to_string tok) (Lexer.token_to_string (peek t))

let eat_punct t s = eat t (Lexer.PUNCT s)

let ident t =
  match peek t with
  | Lexer.IDENT s ->
      advance t;
      s
  | tok -> err t "expected identifier, found %s" (Lexer.token_to_string tok)

(* type := ("int" | "void" | "struct" IDENT) ("*" | "__capability")* *)
let is_type_start t =
  match peek t with Lexer.KW ("int" | "void" | "struct") -> true | _ -> false

let parse_type t =
  let base =
    match peek t with
    | Lexer.KW "int" ->
        advance t;
        Tint
    | Lexer.KW "void" ->
        advance t;
        Tvoid
    | Lexer.KW "struct" ->
        advance t;
        Tstruct (ident t)
    | tok -> err t "expected type, found %s" (Lexer.token_to_string tok)
  in
  let rec stars ty =
    match peek t with
    | Lexer.PUNCT "*" ->
        advance t;
        stars (Tptr ty)
    | Lexer.KW "__capability" ->
        advance t;
        stars ty (* qualifier erased: cheri mode capabilities all pointers *)
    | _ -> ty
  in
  stars base

(* --- expressions, precedence climbing --- *)

let rec parse_expr t = parse_or t

and parse_or t =
  let lhs = parse_and t in
  let rec go lhs =
    match peek t with
    | Lexer.PUNCT "||" ->
        advance t;
        go (Binop (Or, lhs, parse_and t))
    | _ -> lhs
  in
  go lhs

and parse_and t =
  let lhs = parse_bitor t in
  let rec go lhs =
    match peek t with
    | Lexer.PUNCT "&&" ->
        advance t;
        go (Binop (And, lhs, parse_bitor t))
    | _ -> lhs
  in
  go lhs

and parse_bitor t =
  let lhs = parse_bitxor t in
  let rec go lhs =
    match peek t with
    | Lexer.PUNCT "|" ->
        advance t;
        go (Binop (Bor, lhs, parse_bitxor t))
    | _ -> lhs
  in
  go lhs

and parse_bitxor t =
  let lhs = parse_bitand t in
  let rec go lhs =
    match peek t with
    | Lexer.PUNCT "^" ->
        advance t;
        go (Binop (Bxor, lhs, parse_bitand t))
    | _ -> lhs
  in
  go lhs

and parse_bitand t =
  let lhs = parse_equality t in
  let rec go lhs =
    match peek t with
    | Lexer.PUNCT "&" ->
        advance t;
        go (Binop (Band, lhs, parse_equality t))
    | _ -> lhs
  in
  go lhs

and parse_equality t =
  let lhs = parse_relational t in
  let rec go lhs =
    match peek t with
    | Lexer.PUNCT "==" ->
        advance t;
        go (Binop (Eq, lhs, parse_relational t))
    | Lexer.PUNCT "!=" ->
        advance t;
        go (Binop (Ne, lhs, parse_relational t))
    | _ -> lhs
  in
  go lhs

and parse_relational t =
  let lhs = parse_shift t in
  let rec go lhs =
    match peek t with
    | Lexer.PUNCT "<" ->
        advance t;
        go (Binop (Lt, lhs, parse_shift t))
    | Lexer.PUNCT "<=" ->
        advance t;
        go (Binop (Le, lhs, parse_shift t))
    | Lexer.PUNCT ">" ->
        advance t;
        go (Binop (Gt, lhs, parse_shift t))
    | Lexer.PUNCT ">=" ->
        advance t;
        go (Binop (Ge, lhs, parse_shift t))
    | _ -> lhs
  in
  go lhs

and parse_shift t =
  let lhs = parse_additive t in
  let rec go lhs =
    match peek t with
    | Lexer.PUNCT "<<" ->
        advance t;
        go (Binop (Shl, lhs, parse_additive t))
    | Lexer.PUNCT ">>" ->
        advance t;
        go (Binop (Shr, lhs, parse_additive t))
    | _ -> lhs
  in
  go lhs

and parse_additive t =
  let lhs = parse_multiplicative t in
  let rec go lhs =
    match peek t with
    | Lexer.PUNCT "+" ->
        advance t;
        go (Binop (Add, lhs, parse_multiplicative t))
    | Lexer.PUNCT "-" ->
        advance t;
        go (Binop (Sub, lhs, parse_multiplicative t))
    | _ -> lhs
  in
  go lhs

and parse_multiplicative t =
  let lhs = parse_unary t in
  let rec go lhs =
    match peek t with
    | Lexer.PUNCT "*" ->
        advance t;
        go (Binop (Mul, lhs, parse_unary t))
    | Lexer.PUNCT "/" ->
        advance t;
        go (Binop (Div, lhs, parse_unary t))
    | Lexer.PUNCT "%" ->
        advance t;
        go (Binop (Mod, lhs, parse_unary t))
    | _ -> lhs
  in
  go lhs

and parse_unary t =
  match peek t with
  | Lexer.PUNCT "-" ->
      advance t;
      Unop (Neg, parse_unary t)
  | Lexer.PUNCT "!" ->
      advance t;
      Unop (Not, parse_unary t)
  | Lexer.PUNCT "~" ->
      advance t;
      Unop (Bnot, parse_unary t)
  | Lexer.PUNCT "&" ->
      advance t;
      (* address-of: only &e->f is supported (field pointers) *)
      let e = parse_unary t in
      (match e with
      | Field (b, f) -> Addr_field (b, f)
      | _ -> err t "only &expr->field is supported")
  | Lexer.PUNCT "(" when is_cast t ->
      advance t;
      let ty = parse_type t in
      eat_punct t ")";
      Cast (ty, parse_unary t)
  | _ -> parse_postfix t

(* A '(' starts a cast iff followed by a type keyword. *)
and is_cast t =
  match peek2 t with Lexer.KW ("int" | "void" | "struct") -> true | _ -> false

and parse_postfix t =
  let e = parse_primary t in
  let rec go e =
    match peek t with
    | Lexer.PUNCT "->" ->
        advance t;
        go (Field (e, ident t))
    | Lexer.PUNCT "[" ->
        advance t;
        let i = parse_expr t in
        eat_punct t "]";
        go (Index (e, i))
    | _ -> e
  in
  go e

and parse_primary t =
  match peek t with
  | Lexer.INT v ->
      advance t;
      Int v
  | Lexer.KW "NULL" ->
      advance t;
      Null
  | Lexer.KW "sizeof" ->
      advance t;
      eat_punct t "(";
      let ty = parse_type t in
      eat_punct t ")";
      Sizeof ty
  | Lexer.IDENT name ->
      advance t;
      if peek t = Lexer.PUNCT "(" then begin
        advance t;
        let rec args acc =
          if peek t = Lexer.PUNCT ")" then List.rev acc
          else begin
            let a = parse_expr t in
            if peek t = Lexer.PUNCT "," then begin
              advance t;
              args (a :: acc)
            end
            else List.rev (a :: acc)
          end
        in
        let a = args [] in
        eat_punct t ")";
        Call (name, a)
      end
      else Var name
  | Lexer.PUNCT "(" ->
      advance t;
      let e = parse_expr t in
      eat_punct t ")";
      e
  | tok -> err t "unexpected token %s" (Lexer.token_to_string tok)

(* --- statements --- *)

let rec parse_stmt t =
  match peek t with
  | Lexer.PUNCT "{" -> Block (parse_block t)
  | Lexer.KW "if" ->
      advance t;
      eat_punct t "(";
      let cond = parse_expr t in
      eat_punct t ")";
      let then_ = stmt_as_list t in
      let else_ =
        if peek t = Lexer.KW "else" then begin
          advance t;
          stmt_as_list t
        end
        else []
      in
      If (cond, then_, else_)
  | Lexer.KW "while" ->
      advance t;
      eat_punct t "(";
      let cond = parse_expr t in
      eat_punct t ")";
      While (cond, stmt_as_list t)
  | Lexer.KW "for" ->
      advance t;
      eat_punct t "(";
      let init = if peek t = Lexer.PUNCT ";" then None else Some (parse_simple t) in
      eat_punct t ";";
      let cond = if peek t = Lexer.PUNCT ";" then Int 1L else parse_expr t in
      eat_punct t ";";
      let step = if peek t = Lexer.PUNCT ")" then None else Some (parse_simple t) in
      eat_punct t ")";
      let body = stmt_as_list t in
      let loop = While (cond, body @ Option.to_list step) in
      Block (Option.to_list init @ [ loop ])
  | Lexer.KW "return" ->
      advance t;
      let e = if peek t = Lexer.PUNCT ";" then None else Some (parse_expr t) in
      eat_punct t ";";
      Return e
  | Lexer.KW ("int" | "void" | "struct") ->
      let ty = parse_type t in
      let name = ident t in
      let init =
        if peek t = Lexer.PUNCT "=" then begin
          advance t;
          Some (parse_expr t)
        end
        else None
      in
      eat_punct t ";";
      Decl (ty, name, init)
  | _ ->
      let s = parse_simple t in
      eat_punct t ";";
      s

and parse_simple t =
  let e = parse_expr t in
  if peek t = Lexer.PUNCT "=" then begin
    advance t;
    let rhs = parse_expr t in
    Assign (e, rhs)
  end
  else Expr e

and stmt_as_list t = match parse_stmt t with Block ss -> ss | s -> [ s ]

and parse_block t =
  eat_punct t "{";
  let rec go acc =
    if peek t = Lexer.PUNCT "}" then begin
      advance t;
      List.rev acc
    end
    else go (parse_stmt t :: acc)
  in
  go []

(* --- top level --- *)

let parse_program src =
  let t = { toks = Lexer.tokenize src } in
  let structs = ref [] and globals = ref [] and funcs = ref [] in
  let rec go () =
    match peek t with
    | Lexer.EOF -> ()
    | Lexer.KW "struct" when (match peek2 t with Lexer.IDENT _ -> true | _ -> false)
                             && (match t.toks with
                                | _ :: _ :: (Lexer.PUNCT "{", _) :: _ -> true
                                | _ -> false) ->
        advance t;
        let name = ident t in
        eat_punct t "{";
        let rec fields acc =
          if peek t = Lexer.PUNCT "}" then begin
            advance t;
            List.rev acc
          end
          else begin
            let ty = parse_type t in
            let fname = ident t in
            eat_punct t ";";
            fields ((ty, fname) :: acc)
          end
        in
        let fs = fields [] in
        eat_punct t ";";
        structs := { sname = name; fields = fs } :: !structs;
        go ()
    | _ when is_type_start t ->
        let ty = parse_type t in
        let name = ident t in
        if peek t = Lexer.PUNCT "(" then begin
          advance t;
          let rec params acc =
            if peek t = Lexer.PUNCT ")" then List.rev acc
            else begin
              let pty = parse_type t in
              let pname = ident t in
              if peek t = Lexer.PUNCT "," then begin
                advance t;
                params ((pty, pname) :: acc)
              end
              else List.rev ((pty, pname) :: acc)
            end
          in
          let ps = if peek t = Lexer.KW "void" then (advance t; []) else params [] in
          eat_punct t ")";
          let body = parse_block t in
          funcs := { fname = name; ret = ty; params = ps; body } :: !funcs;
          go ()
        end
        else begin
          eat_punct t ";";
          globals := (ty, name) :: !globals;
          go ()
        end
    | tok -> err t "unexpected top-level token %s" (Lexer.token_to_string tok)
  in
  go ();
  { structs = List.rev !structs; globals = List.rev !globals; funcs = List.rev !funcs }
