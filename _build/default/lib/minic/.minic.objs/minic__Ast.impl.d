lib/minic/ast.ml: Fmt String
