lib/minic/runtime_asm.ml: Layout
