lib/minic/driver.ml: Codegen Layout Lexer Parser Printf
