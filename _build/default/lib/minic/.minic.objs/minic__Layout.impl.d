lib/minic/layout.ml: Ast Fmt Hashtbl List
