lib/minic/codegen.ml: Ast Buffer Fmt Hashtbl Layout List Printf Runtime_asm
