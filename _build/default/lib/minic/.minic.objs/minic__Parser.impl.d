lib/minic/parser.ml: Ast Fmt Lexer List Option
