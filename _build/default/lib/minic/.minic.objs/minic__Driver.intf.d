lib/minic/driver.mli: Layout
