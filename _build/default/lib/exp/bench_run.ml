(* Compile-and-execute harness for the Section 8 experiments: runs a minic
   source on the simulated machine and collects the measurements Figures 4
   and 5 are built from — cycles split by benchmark phase (the trace
   markers are free, so instrumentation does not perturb the clock),
   instruction counts, cache/TLB statistics, and heap footprint. *)

type phase_times = { alloc_cycles : int64; compute_cycles : int64 }

type result = {
  bench : string;
  mode : Minic.Layout.mode;
  exit_code : int;
  output : string list; (* print_int lines *)
  cycles : int64;
  instrs : int64;
  phases : phase_times;
  heap_bytes : int64;
  l1d_misses : int;
  l2_misses : int;
  tlb_misses : int;
}

let phase_alloc = 0L
let phase_compute = 1L

(* A machine configured for the mode: cheri128 code needs the 128-bit
   capability machine (16-byte capability accesses, 16-byte tag lines);
   [big_mem] (paper-size workloads) provisions 512 MB. *)
let machine_for ?(big_mem = false) (mode : Minic.Layout.mode) =
  let config =
    match mode with
    | Minic.Layout.Cheri128 -> { Machine.default_config with Machine.cap_width = Machine.W128 }
    | _ -> Machine.default_config
  in
  let config =
    if big_mem then { config with Machine.mem_size = 512 * 1024 * 1024 } else config
  in
  Machine.create ~config ()

(* Execute [source] (after @PARAM@ substitution) under [mode]. *)
let run ?(max_insns = 20_000_000_000L) ?(iters = 1) ?(big_mem = false) ~bench ~mode ~param
    source =
  let source = Olden.Minic_src.instantiate ~iters source ~param in
  let asm = Minic.Driver.compile ~mode source in
  let m = machine_for ~big_mem mode in
  let k = Os.Kernel.attach m in
  let alloc = ref 0L and compute = ref 0L in
  let allocated_bytes = ref 0L in
  let current = ref None in
  Machine.set_trace_hook m (fun m marker a _b ->
      match marker with
      | Beri.Insn.M_phase_begin -> current := Some (a, m.Machine.cycles)
      | Beri.Insn.M_phase_end -> (
          match !current with
          | Some (id, start) ->
              let dt = Int64.sub m.Machine.cycles start in
              if Int64.equal id phase_alloc then alloc := Int64.add !alloc dt
              else if Int64.equal id phase_compute then compute := Int64.add !compute dt;
              current := None
          | None -> ())
      | Beri.Insn.M_alloc -> allocated_bytes := Int64.add !allocated_bytes a
      | Beri.Insn.M_free -> ());
  let exit_code, console = Os.Kernel.run_program ~max_insns k asm in
  let output =
    String.split_on_char '\n' console |> List.filter (fun s -> String.trim s <> "")
  in
  {
    bench;
    mode;
    exit_code;
    output;
    cycles = m.Machine.cycles;
    instrs = m.Machine.instret;
    phases = { alloc_cycles = !alloc; compute_cycles = !compute };
    heap_bytes = !allocated_bytes;
    l1d_misses = m.Machine.hier.Mem.Hierarchy.l1d.Mem.Cache.misses;
    l2_misses = m.Machine.hier.Mem.Hierarchy.l2.Mem.Cache.misses;
    tlb_misses = m.Machine.hier.Mem.Hierarchy.tlb.Mem.Tlb.misses;
  }

let pct_overhead ~baseline v =
  if Int64.equal baseline 0L then 0.0
  else 100.0 *. Int64.to_float (Int64.sub v baseline) /. Int64.to_float baseline
