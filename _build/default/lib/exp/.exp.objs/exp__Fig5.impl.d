lib/exp/fig5.ml: Bench_run Int64 List Minic Olden
