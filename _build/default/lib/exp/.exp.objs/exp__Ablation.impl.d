lib/exp/ablation.ml: Bench_run Int64 List Machine Mem Minic Olden Os
