lib/exp/fig4.ml: Bench_run List Minic Olden
