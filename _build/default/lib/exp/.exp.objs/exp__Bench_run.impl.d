lib/exp/bench_run.ml: Beri Int64 List Machine Mem Minic Olden Os String
