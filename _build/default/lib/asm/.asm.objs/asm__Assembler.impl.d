lib/asm/assembler.ml: Array Beri Buffer Bytes Cap Char Code Fmt Hashtbl Insn Int64 List Machine Mem Option Printf Regs String
