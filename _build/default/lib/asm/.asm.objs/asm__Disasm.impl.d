lib/asm/disasm.ml: Beri Int64 List Machine Mem Printf
