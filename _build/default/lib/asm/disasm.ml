(* Disassembler: binary words back to assembly text, used by debug tooling
   and the encode/decode round-trip tests. *)

let word w =
  match Beri.Code.decode w with
  | insn -> Beri.Insn.to_string insn
  | exception Beri.Code.Decode_error _ -> Printf.sprintf ".word 0x%08x" w

(* Disassemble [count] instructions starting at [addr] in a machine's
   memory. *)
let range (m : Machine.t) ~addr ~count =
  List.init count (fun i ->
      let a = Int64.add addr (Int64.of_int (4 * i)) in
      let w = Mem.Phys.read_u32 m.Machine.phys a in
      Printf.sprintf "%8Lx:  %08x  %s" a w (word w))
