(* A two-pass assembler for the BERI/CHERI dialect.

   Syntax, per line:
     [label:] [mnemonic operands] [# comment]
   Directives: .text [addr], .data [addr], .org addr, .align n, .byte,
   .half, .word, .dword, .space n, .asciiz "s".
   Pseudo-instructions: li, dli, la, move, nop, b, beqz, bnez, neg, not.

   Registers are written $0..$31 or by ABI name ($a0, $sp, ...); capability
   registers are $c0..$c31.  Immediates accept decimal, 0x hex, and 'label'
   or 'label+offset' references.  Branches take label targets; the
   assembler computes the PC-relative word offset. *)

open Beri

type program = {
  segments : (int64 * string) list; (* load address, raw bytes *)
  entry : int64;
  symbols : (string, int64) Hashtbl.t;
}

exception Error of int * string (* line number, message *)

let err line fmt = Fmt.kstr (fun m -> raise (Error (line, m))) fmt

(* --- tokenizing -------------------------------------------------------- *)

let strip_comment s =
  let cut c s = match String.index_opt s c with Some i -> String.sub s 0 i | None -> s in
  s |> cut '#' |> cut ';'

let split_operands s =
  (* Split on commas not inside quotes. *)
  let out = ref [] and buf = Buffer.create 16 and in_str = ref false in
  String.iter
    (fun c ->
      if c = '"' then begin
        in_str := not !in_str;
        Buffer.add_char buf c
      end
      else if c = ',' && not !in_str then begin
        out := Buffer.contents buf :: !out;
        Buffer.clear buf
      end
      else Buffer.add_char buf c)
    s;
  out := Buffer.contents buf :: !out;
  List.rev_map String.trim !out |> List.filter (fun s -> s <> "")

let reg_table =
  let t = Hashtbl.create 64 in
  Array.iteri (fun i name -> Hashtbl.replace t ("$" ^ name) i) Insn.reg_names;
  for i = 0 to 31 do
    Hashtbl.replace t (Printf.sprintf "$%d" i) i
  done;
  (* common aliases: o32-style $t4..$t7 for the n64 $a4..$a7 slots *)
  Hashtbl.replace t "$s8" 30;
  Hashtbl.replace t "$t4" 8;
  Hashtbl.replace t "$t5" 9;
  Hashtbl.replace t "$t6" 10;
  Hashtbl.replace t "$t7" 11;
  t

let parse_reg line s =
  match Hashtbl.find_opt reg_table (String.lowercase_ascii s) with
  | Some r -> r
  | None -> err line "unknown register %S" s

let parse_creg line s =
  let s = String.lowercase_ascii s in
  let fail () = err line "unknown capability register %S" s in
  if String.length s >= 3 && s.[0] = '$' && s.[1] = 'c' then
    match int_of_string_opt (String.sub s 2 (String.length s - 2)) with
    | Some r when r >= 0 && r < 32 -> r
    | _ -> fail ()
  else fail ()

(* Immediate: integer literal, or symbol[+/-offset]. *)
let parse_imm line symbols s =
  let parse_int s = Int64.of_string_opt s in
  match parse_int s with
  | Some v -> v
  | None -> (
      let sym, off =
        match (String.index_opt s '+', String.index_opt s '-') with
        | Some i, _ ->
            ( String.trim (String.sub s 0 i),
              Int64.of_string (String.trim (String.sub s (i + 1) (String.length s - i - 1))) )
        | None, Some i when i > 0 ->
            ( String.trim (String.sub s 0 i),
              Int64.neg
                (Int64.of_string (String.trim (String.sub s (i + 1) (String.length s - i - 1)))) )
        | None, _ -> (String.trim s, 0L)
      in
      match Hashtbl.find_opt symbols sym with
      | Some v -> Int64.add v off
      | None -> err line "undefined symbol %S" sym)

(* offset(base) where base is a register or capability register. *)
let parse_mem line symbols s =
  match String.index_opt s '(' with
  | None -> err line "expected offset(reg), got %S" s
  | Some i ->
      let off = String.trim (String.sub s 0 i) in
      let close = String.index s ')' in
      let base = String.trim (String.sub s (i + 1) (close - i - 1)) in
      let off = if off = "" then 0L else parse_imm line symbols off in
      (Int64.to_int off, base)

(* --- instruction table -------------------------------------------------- *)

(* The number of machine instructions a statement expands to (pass 1). *)
let statement_size mnemonic ops =
  match (mnemonic, ops) with
  | "li", [ _; imm ] | "dli", [ _; imm ] -> (
      (* Worst-case when the immediate is symbolic; exact when literal. *)
      match Int64.of_string_opt imm with
      | Some v when Int64.compare v (-32768L) >= 0 && Int64.compare v 32767L <= 0 -> 1
      | _ -> 2)
  | "la", _ -> 2
  | _ -> 1

let fits16s v = Int64.compare v (-32768L) >= 0 && Int64.compare v 32767L <= 0

(* Expand one statement into machine instructions (pass 2).  [pc] is the
   address of the first emitted instruction. *)
let expand line symbols pc mnemonic ops =
  let reg = parse_reg line and creg = parse_creg line in
  let imm s = parse_imm line symbols s in
  let imm_int s = Int64.to_int (imm s) in
  let branch_off target_str n_before =
    (* Offset is relative to the instruction after the branch. *)
    let target = imm target_str in
    let branch_pc = Int64.add pc (Int64.of_int (4 * n_before)) in
    let diff = Int64.sub target (Int64.add branch_pc 4L) in
    if Int64.rem diff 4L <> 0L then err line "misaligned branch target";
    let off = Int64.to_int (Int64.div diff 4L) in
    if off < -32768 || off > 32767 then err line "branch target out of range";
    off
  in
  let jump_target s =
    let t = imm s in
    if Int64.rem t 4L <> 0L then err line "misaligned jump target";
    Int64.to_int (Int64.div (Int64.logand t 0x0FFF_FFFFL) 4L)
  in
  let mem s = parse_mem line symbols s in
  let rrr f = match ops with
    | [ d; s; t ] -> [ f (reg d) (reg s) (reg t) ]
    | _ -> err line "%s expects rd, rs, rt" mnemonic
  in
  let rri f = match ops with
    | [ d; s; i ] -> [ f (reg d) (reg s) (imm_int i) ]
    | _ -> err line "%s expects rd, rs, imm" mnemonic
  in
  let shift f = rri f in
  let load w u = match ops with
    | [ r; m ] ->
        let off, base = mem m in
        [ Insn.Load (w, u, reg r, parse_reg line base, off) ]
    | _ -> err line "%s expects rt, offset(base)" mnemonic
  in
  let store w = match ops with
    | [ r; m ] ->
        let off, base = mem m in
        [ Insn.Store (w, reg r, parse_reg line base, off) ]
    | _ -> err line "%s expects rt, offset(base)" mnemonic
  in
  let cload w u = match ops with
    | [ rd; rt; m ] ->
        let off, base = mem m in
        [ Insn.CLoad (w, u, reg rd, parse_creg line base, reg rt, off) ]
    | _ -> err line "%s expects rd, rt, offset($cb)" mnemonic
  in
  let cstore w = match ops with
    | [ rs; rt; m ] ->
        let off, base = mem m in
        [ Insn.CStore (w, reg rs, parse_creg line base, reg rt, off) ]
    | _ -> err line "%s expects rs, rt, offset($cb)" mnemonic
  in
  match (mnemonic, ops) with
  | "nop", [] -> [ Insn.nop ]
  | "add", _ -> rrr (fun d s t -> Insn.Add (d, s, t))
  | "addu", _ -> rrr (fun d s t -> Insn.Addu (d, s, t))
  | "dadd", _ -> rrr (fun d s t -> Insn.Dadd (d, s, t))
  | "daddu", _ -> rrr (fun d s t -> Insn.Daddu (d, s, t))
  | "sub", _ -> rrr (fun d s t -> Insn.Sub (d, s, t))
  | "subu", _ -> rrr (fun d s t -> Insn.Subu (d, s, t))
  | "dsubu", _ -> rrr (fun d s t -> Insn.Dsubu (d, s, t))
  | "and", _ -> rrr (fun d s t -> Insn.And (d, s, t))
  | "or", _ -> rrr (fun d s t -> Insn.Or (d, s, t))
  | "xor", _ -> rrr (fun d s t -> Insn.Xor (d, s, t))
  | "nor", _ -> rrr (fun d s t -> Insn.Nor (d, s, t))
  | "slt", _ -> rrr (fun d s t -> Insn.Slt (d, s, t))
  | "sltu", _ -> rrr (fun d s t -> Insn.Sltu (d, s, t))
  | "addiu", _ -> rri (fun d s i -> Insn.Addiu (d, s, i))
  | "daddiu", _ -> rri (fun d s i -> Insn.Daddiu (d, s, i))
  | "andi", _ -> rri (fun d s i -> Insn.Andi (d, s, i))
  | "ori", _ -> rri (fun d s i -> Insn.Ori (d, s, i))
  | "xori", _ -> rri (fun d s i -> Insn.Xori (d, s, i))
  | "slti", _ -> rri (fun d s i -> Insn.Slti (d, s, i))
  | "sltiu", _ -> rri (fun d s i -> Insn.Sltiu (d, s, i))
  | "lui", [ r; i ] -> [ Insn.Lui (reg r, imm_int i) ]
  | "sll", _ -> shift (fun d t sa -> Insn.Sll (d, t, sa))
  | "srl", _ -> shift (fun d t sa -> Insn.Srl (d, t, sa))
  | "sra", _ -> shift (fun d t sa -> Insn.Sra (d, t, sa))
  | "dsll", _ -> shift (fun d t sa -> Insn.Dsll (d, t, sa))
  | "dsrl", _ -> shift (fun d t sa -> Insn.Dsrl (d, t, sa))
  | "dsra", _ -> shift (fun d t sa -> Insn.Dsra (d, t, sa))
  | "dsll32", _ -> shift (fun d t sa -> Insn.Dsll32 (d, t, sa))
  | "dsrl32", _ -> shift (fun d t sa -> Insn.Dsrl32 (d, t, sa))
  | "sllv", _ -> rrr (fun d t s -> Insn.Sllv (d, t, s))
  | "srlv", _ -> rrr (fun d t s -> Insn.Srlv (d, t, s))
  | "srav", _ -> rrr (fun d t s -> Insn.Srav (d, t, s))
  | "dsllv", _ -> rrr (fun d t s -> Insn.Dsllv (d, t, s))
  | "dsrlv", _ -> rrr (fun d t s -> Insn.Dsrlv (d, t, s))
  | "dsrav", _ -> rrr (fun d t s -> Insn.Dsrav (d, t, s))
  | "mult", [ s; t ] -> [ Insn.Mult (reg s, reg t) ]
  | "multu", [ s; t ] -> [ Insn.Multu (reg s, reg t) ]
  | "dmult", [ s; t ] -> [ Insn.Dmult (reg s, reg t) ]
  | "dmultu", [ s; t ] -> [ Insn.Dmultu (reg s, reg t) ]
  | "div", [ s; t ] -> [ Insn.Div (reg s, reg t) ]
  | "divu", [ s; t ] -> [ Insn.Divu (reg s, reg t) ]
  | "ddiv", [ s; t ] -> [ Insn.Ddiv (reg s, reg t) ]
  | "ddivu", [ s; t ] -> [ Insn.Ddivu (reg s, reg t) ]
  | "mfhi", [ d ] -> [ Insn.Mfhi (reg d) ]
  | "mflo", [ d ] -> [ Insn.Mflo (reg d) ]
  | "mthi", [ s ] -> [ Insn.Mthi (reg s) ]
  | "mtlo", [ s ] -> [ Insn.Mtlo (reg s) ]
  | "lb", _ -> load Insn.B false
  | "lbu", _ -> load Insn.B true
  | "lh", _ -> load Insn.H false
  | "lhu", _ -> load Insn.H true
  | "lw", _ -> load Insn.W false
  | "lwu", _ -> load Insn.W true
  | "ld", _ -> load Insn.D false
  | "sb", _ -> store Insn.B
  | "sh", _ -> store Insn.H
  | "sw", _ -> store Insn.W
  | "sd", _ -> store Insn.D
  | "lld", [ r; m ] ->
      let off, base = mem m in
      [ Insn.Lld (reg r, parse_reg line base, off) ]
  | "scd", [ r; m ] ->
      let off, base = mem m in
      [ Insn.Scd (reg r, parse_reg line base, off) ]
  | "j", [ t ] -> [ Insn.J (jump_target t) ]
  | "jal", [ t ] -> [ Insn.Jal (jump_target t) ]
  | "jr", [ s ] -> [ Insn.Jr (reg s) ]
  | "jalr", [ s ] -> [ Insn.Jalr (Regs.ra, reg s) ]
  | "jalr", [ d; s ] -> [ Insn.Jalr (reg d, reg s) ]
  | "beq", [ s; t; o ] -> [ Insn.Beq (reg s, reg t, branch_off o 0) ]
  | "bne", [ s; t; o ] -> [ Insn.Bne (reg s, reg t, branch_off o 0) ]
  | "blez", [ s; o ] -> [ Insn.Blez (reg s, branch_off o 0) ]
  | "bgtz", [ s; o ] -> [ Insn.Bgtz (reg s, branch_off o 0) ]
  | "bltz", [ s; o ] -> [ Insn.Bltz (reg s, branch_off o 0) ]
  | "bgez", [ s; o ] -> [ Insn.Bgez (reg s, branch_off o 0) ]
  | "b", [ o ] -> [ Insn.Beq (0, 0, branch_off o 0) ]
  | "beqz", [ s; o ] -> [ Insn.Beq (reg s, 0, branch_off o 0) ]
  | "bnez", [ s; o ] -> [ Insn.Bne (reg s, 0, branch_off o 0) ]
  | "syscall", [] -> [ Insn.Syscall ]
  | "break", [] -> [ Insn.Break ]
  | "eret", [] -> [ Insn.Eret ]
  | "mfc0", [ r; d ] -> [ Insn.Mfc0 (reg r, imm_int (String.map (fun c -> if c = '$' then ' ' else c) d |> String.trim)) ]
  | "mtc0", [ r; d ] -> [ Insn.Mtc0 (reg r, imm_int (String.map (fun c -> if c = '$' then ' ' else c) d |> String.trim)) ]
  | "trace.alloc", [ a; b ] -> [ Insn.Trace (Insn.M_alloc, reg a, reg b) ]
  | "trace.free", [ a ] -> [ Insn.Trace (Insn.M_free, reg a, 0) ]
  | "trace.phase_begin", [ a ] -> [ Insn.Trace (Insn.M_phase_begin, reg a, 0) ]
  | "trace.phase_end", [] -> [ Insn.Trace (Insn.M_phase_end, 0, 0) ]
  | "move", [ d; s ] -> [ Insn.Daddu (reg d, reg s, 0) ]
  | "neg", [ d; s ] -> [ Insn.Subu (reg d, 0, reg s) ]
  | "not", [ d; s ] -> [ Insn.Nor (reg d, reg s, 0) ]
  | ("li" | "dli"), [ d; i ] ->
      let v = imm i in
      if fits16s v then [ Insn.Daddiu (reg d, 0, Int64.to_int v) ]
      else if Int64.compare v 0L >= 0 && Int64.compare v 0xFFFF_FFFFL <= 0 then
        [ Insn.Lui (reg d, Int64.to_int (Int64.shift_right_logical v 16));
          Insn.Ori (reg d, reg d, Int64.to_int (Int64.logand v 0xFFFFL)) ]
      else err line "immediate %Ld out of 32-bit range for li" v
  | "la", [ d; sym ] ->
      let v = imm sym in
      if Int64.compare v 0L < 0 || Int64.compare v 0x7FFF_FFFFL > 0 then
        err line "address out of la range";
      [ Insn.Lui (reg d, Int64.to_int (Int64.shift_right_logical v 16));
        Insn.Ori (reg d, reg d, Int64.to_int (Int64.logand v 0xFFFFL)) ]
  (* --- CHERI --- *)
  | "cgetbase", [ d; cb ] -> [ Insn.CGetBase (reg d, creg cb) ]
  | "cgetlen", [ d; cb ] -> [ Insn.CGetLen (reg d, creg cb) ]
  | "cgettag", [ d; cb ] -> [ Insn.CGetTag (reg d, creg cb) ]
  | "cgetperm", [ d; cb ] -> [ Insn.CGetPerm (reg d, creg cb) ]
  | "cgetpcc", [ d; cd ] -> [ Insn.CGetPCC (reg d, creg cd) ]
  | "cgetcause", [ d ] -> [ Insn.CGetCause (reg d) ]
  | "cincbase", [ cd; cb; rt ] -> [ Insn.CIncBase (creg cd, creg cb, reg rt) ]
  | "csetlen", [ cd; cb; rt ] -> [ Insn.CSetLen (creg cd, creg cb, reg rt) ]
  | "ccleartag", [ cd; cb ] -> [ Insn.CClearTag (creg cd, creg cb) ]
  | "ccleartag", [ cd ] -> [ Insn.CClearTag (creg cd, creg cd) ]
  | "candperm", [ cd; cb; rt ] -> [ Insn.CAndPerm (creg cd, creg cb, reg rt) ]
  | "cmove", [ cd; cb ] -> [ Insn.CMove (creg cd, creg cb) ]
  | "ctoptr", [ rd; cb; ct ] -> [ Insn.CToPtr (reg rd, creg cb, creg ct) ]
  | "cfromptr", [ cd; cb; rt ] -> [ Insn.CFromPtr (creg cd, creg cb, reg rt) ]
  | "cbtu", [ cb; o ] -> [ Insn.CBTU (creg cb, branch_off o 0) ]
  | "cbts", [ cb; o ] -> [ Insn.CBTS (creg cb, branch_off o 0) ]
  | "clc", [ cd; rt; m ] ->
      let off, base = mem m in
      [ Insn.CLC (creg cd, parse_creg line base, reg rt, off) ]
  | "csc", [ cs; rt; m ] ->
      let off, base = mem m in
      [ Insn.CSC (creg cs, parse_creg line base, reg rt, off) ]
  | "clb", _ -> cload Insn.B false
  | "clbu", _ -> cload Insn.B true
  | "clh", _ -> cload Insn.H false
  | "clhu", _ -> cload Insn.H true
  | "clw", _ -> cload Insn.W false
  | "clwu", _ -> cload Insn.W true
  | "cld", _ -> cload Insn.D false
  | "csb", _ -> cstore Insn.B
  | "csh", _ -> cstore Insn.H
  | "csw", _ -> cstore Insn.W
  | "csd", _ -> cstore Insn.D
  | "clld", [ rd; cb ] -> [ Insn.CLLD (reg rd, creg cb) ]
  | "cscd", [ rd; rs; cb ] -> [ Insn.CSCD (reg rd, reg rs, creg cb) ]
  | "cjr", [ cb ] -> [ Insn.CJR (creg cb) ]
  | "cjalr", [ cd; cb ] -> [ Insn.CJALR (creg cd, creg cb) ]
  | "cseal", [ cd; cs; ct ] -> [ Insn.CSeal (creg cd, creg cs, creg ct) ]
  | "cunseal", [ cd; cs; ct ] -> [ Insn.CUnseal (creg cd, creg cs, creg ct) ]
  | "ccall", [ cs; cb ] -> [ Insn.CCall (creg cs, creg cb) ]
  | "creturn", [] -> [ Insn.CReturn ]
  | _ -> err line "unknown instruction %S (%d operands)" mnemonic (List.length ops)

(* --- assembly ----------------------------------------------------------- *)

type item =
  | Stmt of int * string * string list (* line, mnemonic, operands *)
  | Data of int * [ `Byte of string list | `Half of string list | `Word of string list
                  | `Dword of string list | `Space of int | `Asciiz of string | `Align of int ]

let parse_string line s =
  let s = String.trim s in
  if String.length s < 2 || s.[0] <> '"' || s.[String.length s - 1] <> '"' then
    err line "expected string literal";
  let body = String.sub s 1 (String.length s - 2) in
  let buf = Buffer.create (String.length body) in
  let rec go i =
    if i < String.length body then
      if body.[i] = '\\' && i + 1 < String.length body then begin
        (match body.[i + 1] with
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | '0' -> Buffer.add_char buf '\000'
        | c -> Buffer.add_char buf c);
        go (i + 2)
      end
      else begin
        Buffer.add_char buf body.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let default_text_base = 0x1_0000L
let default_data_base = 0x10_0000L

let assemble ?(text_base = default_text_base) ?(data_base = default_data_base) source =
  let symbols : (string, int64) Hashtbl.t = Hashtbl.create 64 in
  let lines = String.split_on_char '\n' source in
  (* Pass 1: record label addresses and collect items per section. *)
  let text_items = ref [] and data_items = ref [] in
  let text_pc = ref text_base and data_pc = ref data_base in
  let text_start = ref None and data_start = ref None in
  let section = ref `Text in
  let pc () = match !section with `Text -> text_pc | `Data -> data_pc in
  let push item =
    match !section with
    | `Text ->
        if !text_start = None then text_start := Some !text_pc;
        text_items := item :: !text_items
    | `Data ->
        if !data_start = None then data_start := Some !data_pc;
        data_items := item :: !data_items
  in
  let advance n = (pc ()) := Int64.add !(pc ()) (Int64.of_int n) in
  let data_size line = function
    | `Byte vs -> List.length vs
    | `Half vs -> 2 * List.length vs
    | `Word vs -> 4 * List.length vs
    | `Dword vs -> 8 * List.length vs
    | `Space n -> n
    | `Asciiz s -> String.length (parse_string line s) + 1
    | `Align _ -> 0 (* handled specially below *)
  in
  List.iteri
    (fun lineno raw ->
      let line = lineno + 1 in
      let s = String.trim (strip_comment raw) in
      if s <> "" then begin
        (* Labels (possibly several) at the start of the line. *)
        let rec strip_labels s =
          match String.index_opt s ':' with
          | Some i
            when String.for_all
                   (fun c -> c = '_' || c = '.' || c = '$' ||
                             (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                             (c >= '0' && c <= '9'))
                   (String.sub s 0 i) && i > 0 ->
              Hashtbl.replace symbols (String.sub s 0 i) !(pc ());
              strip_labels (String.trim (String.sub s (i + 1) (String.length s - i - 1)))
          | _ -> s
        in
        let s = strip_labels s in
        if s <> "" then begin
          let mnemonic, rest =
            match String.index_opt s ' ' with
            | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
            | None -> (s, "")
          in
          let mnemonic = String.lowercase_ascii mnemonic in
          let ops = split_operands rest in
          match mnemonic with
          | ".text" ->
              section := `Text;
              (match ops with [ a ] -> text_pc := Int64.of_string a | _ -> ())
          | ".data" ->
              section := `Data;
              (match ops with [ a ] -> data_pc := Int64.of_string a | _ -> ())
          | ".org" -> (
              match ops with
              | [ a ] -> (pc ()) := Int64.of_string a
              | _ -> err line ".org expects an address")
          | ".globl" | ".global" | ".ent" | ".end" | ".set" -> ()
          | ".align" -> (
              match ops with
              | [ n ] ->
                  let align = 1 lsl int_of_string n in
                  let aligned = Cap.U64.align_up !(pc ()) (Int64.of_int align) in
                  let pad = Int64.to_int (Int64.sub aligned !(pc ())) in
                  push (Data (line, `Space pad));
                  advance pad
              | _ -> err line ".align expects a power")
          | ".byte" -> push (Data (line, `Byte ops)); advance (List.length ops)
          | ".half" -> push (Data (line, `Half ops)); advance (2 * List.length ops)
          | ".word" -> push (Data (line, `Word ops)); advance (4 * List.length ops)
          | ".dword" | ".quad" -> push (Data (line, `Dword ops)); advance (8 * List.length ops)
          | ".space" -> (
              match ops with
              | [ n ] ->
                  let n = int_of_string n in
                  push (Data (line, `Space n));
                  advance n
              | _ -> err line ".space expects a size")
          | ".asciiz" ->
              let d = `Asciiz rest in
              push (Data (line, d));
              advance (data_size line d)
          | _ ->
              if mnemonic.[0] = '.' then err line "unknown directive %S" mnemonic
              else begin
                push (Stmt (line, mnemonic, ops));
                advance (4 * statement_size mnemonic ops)
              end
        end
      end)
    lines;
  (* Pass 2: emit bytes. *)
  let emit_section base items =
    let buf = Buffer.create 4096 in
    let pc = ref base in
    List.iter
      (fun item ->
        match item with
        | Stmt (line, mnemonic, ops) ->
            let planned = statement_size mnemonic ops in
            let insns = expand line symbols !pc mnemonic ops in
            let insns =
              (* Keep pass-1 size estimates honest by padding with nops. *)
              if List.length insns < planned then
                insns @ List.init (planned - List.length insns) (fun _ -> Insn.nop)
              else if List.length insns > planned then
                err line "internal: statement grew between passes"
              else insns
            in
            List.iter
              (fun insn ->
                let word =
                  try Code.encode insn with Invalid_argument m -> err line "%s" m
                in
                Buffer.add_char buf (Char.chr (word land 0xFF));
                Buffer.add_char buf (Char.chr ((word lsr 8) land 0xFF));
                Buffer.add_char buf (Char.chr ((word lsr 16) land 0xFF));
                Buffer.add_char buf (Char.chr ((word lsr 24) land 0xFF));
                pc := Int64.add !pc 4L)
              insns
        | Data (line, d) -> (
            let add_int n v =
              for i = 0 to n - 1 do
                Buffer.add_char buf (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
              done;
              pc := Int64.add !pc (Int64.of_int n)
            in
            match d with
            | `Byte vs -> List.iter (fun v -> add_int 1 (parse_imm line symbols v)) vs
            | `Half vs -> List.iter (fun v -> add_int 2 (parse_imm line symbols v)) vs
            | `Word vs -> List.iter (fun v -> add_int 4 (parse_imm line symbols v)) vs
            | `Dword vs -> List.iter (fun v -> add_int 8 (parse_imm line symbols v)) vs
            | `Space n ->
                Buffer.add_string buf (String.make n '\000');
                pc := Int64.add !pc (Int64.of_int n)
            | `Asciiz s ->
                let str = parse_string line s in
                Buffer.add_string buf str;
                Buffer.add_char buf '\000';
                pc := Int64.add !pc (Int64.of_int (String.length str + 1))
            | `Align _ -> ()))
      items;
    Buffer.contents buf
  in
  let text_start = Option.value !text_start ~default:text_base in
  let data_start = Option.value !data_start ~default:data_base in
  let text = emit_section text_start (List.rev !text_items) in
  let data = emit_section data_start (List.rev !data_items) in
  let entry =
    match Hashtbl.find_opt symbols "_start" with
    | Some e -> e
    | None -> ( match Hashtbl.find_opt symbols "main" with Some e -> e | None -> text_start)
  in
  let segments =
    List.filter (fun (_, s) -> String.length s > 0) [ (text_start, text); (data_start, data) ]
  in
  { segments; entry; symbols }

(* Load a program into a machine's physical memory (identity-mapped). *)
let load (m : Machine.t) program =
  Machine.invalidate_icache m;
  List.iter
    (fun (base, bytes) ->
      Mem.Phys.write_bytes m.Machine.phys base (Bytes.of_string bytes);
      Machine.map_identity m ~vaddr:base ~len:(String.length bytes) Mem.Tlb.prot_rwx)
    program.segments;
  m.Machine.pc <- program.entry

let symbol program name = Hashtbl.find_opt program.symbols name
