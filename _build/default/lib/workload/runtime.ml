(* The instrumented object-graph runtime the Olden workloads run against.

   It is simultaneously (a) a working heap — objects hold real values, so
   the benchmarks compute real results, checked against reference outputs —
   and (b) a trace source: every allocation and field access is reported to
   the registered sinks.  A deterministic PRNG keeps runs reproducible. *)

type value = VInt of int64 | VPtr of obj option
and obj = { id : int; layout : Event.layout; slots : value array }

type t = {
  mutable next_id : int;
  mutable sinks : Event.sink list;
  mutable rng : int64; (* xorshift64 state *)
  mutable live_objects : int;
  mutable total_allocs : int;
}

let create ?(seed = 0x9E3779B97F4A7C15L) () =
  { next_id = 0; sinks = []; rng = seed; live_objects = 0; total_allocs = 0 }

let add_sink t sink = t.sinks <- sink :: t.sinks
let emit t e = List.iter (fun s -> s e) t.sinks

(* xorshift64*: deterministic pseudo-random stream. *)
let random t bound =
  let x = t.rng in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.rng <- x;
  Int64.to_int (Int64.unsigned_rem x (Int64.of_int bound))

(* Each runtime call also represents real instructions executed between
   memory operations; [compute] lets benchmarks account for arithmetic. *)
let compute t n = emit t (Event.Compute n)

let alloc t ?(region = Event.Heap) layout =
  let id = t.next_id in
  t.next_id <- id + 1;
  t.live_objects <- t.live_objects + 1;
  t.total_allocs <- t.total_allocs + 1;
  let init = function Event.Ptr -> VPtr None | Event.Scalar _ -> VInt 0L in
  let o = { id; layout; slots = Array.map init layout } in
  emit t (Event.Alloc { id; layout; region });
  o

let free t o =
  t.live_objects <- t.live_objects - 1;
  emit t (Event.Free { id = o.id })

let bad_field o i what =
  Fmt.invalid_arg "object #%d field %d: %s" o.id i what

let read_int t o i =
  emit t (Event.Read { obj = o.id; field = i });
  match o.slots.(i) with VInt v -> v | VPtr _ -> bad_field o i "read_int of pointer"

let write_int t o i v =
  emit t (Event.Write { obj = o.id; field = i; ptr_value = false; target = None });
  (match o.layout.(i) with
  | Event.Scalar _ -> ()
  | Event.Ptr -> bad_field o i "write_int to pointer field");
  o.slots.(i) <- VInt v

let read_ptr t o i =
  emit t (Event.Read { obj = o.id; field = i });
  match o.slots.(i) with VPtr p -> p | VInt _ -> bad_field o i "read_ptr of scalar"

let write_ptr t o i p =
  emit t (Event.Write { obj = o.id; field = i; ptr_value = true;
           target = Option.map (fun (p : obj) -> p.id) p });
  (match o.layout.(i) with
  | Event.Ptr -> ()
  | Event.Scalar _ -> bad_field o i "write_ptr to scalar field");
  o.slots.(i) <- VPtr p

(* Stack frames: recursion in the workloads allocates and frees small
   stack objects, exercising the models' stack-protection stories (the
   paper: Mondrian "cannot provide effective protection for ... individual
   stack frames"). *)
let with_frame t layout f =
  let frame = alloc t ~region:Event.Stack layout in
  let r = f frame in
  free t frame;
  r
