(** Object-level trace events for the limit study (paper §7).

    The workloads run against an instrumented object-graph runtime which
    emits these events; each protection model replays the stream, laying
    objects out under its own pointer representation (docs/MODELS.md). *)

type region = Heap | Stack | Global

(** A field is a pointer slot (inflated or shadowed by the models) or a
    scalar of a given byte size. *)
type field = Ptr | Scalar of int

type layout = field array

val layout_fields : layout -> int

(** Byte size of a layout under a pointer representation of [ptr_bytes]. *)
val layout_bytes : ptr_bytes:int -> layout -> int

(** Byte offset of field [i], pointers naturally aligned. *)
val field_offset : ptr_bytes:int -> layout -> int -> int

val field_size : ptr_bytes:int -> field -> int

type t =
  | Alloc of { id : int; layout : layout; region : region }
  | Free of { id : int }
  | Read of { obj : int; field : int }
  | Write of { obj : int; field : int; ptr_value : bool; target : int option }
      (** [target]: id of the pointee when a pointer is stored — lets
          referent-dependent models (Hardbound) find the object's size. *)
  | Compute of int  (** this many non-memory instructions elapsed *)

type sink = t -> unit

val pp : Format.formatter -> t -> unit
