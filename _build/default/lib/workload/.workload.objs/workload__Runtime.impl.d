lib/workload/runtime.ml: Array Event Fmt Int64 List Option
