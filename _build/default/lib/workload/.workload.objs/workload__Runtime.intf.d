lib/workload/runtime.mli: Event
