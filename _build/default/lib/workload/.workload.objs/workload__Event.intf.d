lib/workload/event.mli: Format
