lib/workload/event.ml: Array Fmt
