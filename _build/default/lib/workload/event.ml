(* Object-level trace events for the limit study (Section 7).

   The paper records complete instruction traces of Olden benchmarks on the
   baseline MIPS implementation, then extracts "information relevant to
   bounds checking: C memory-management functions such as malloc() and
   free(), and all memory loads and stores", tracking accesses to objects
   in globals, heap and stack.  Our equivalent: the workloads run against
   an instrumented object-graph runtime which emits *object-level* events —
   allocation with a typed field layout, per-field reads and writes, and
   the surrounding computation.  Each protection model then replays the
   event stream, laying objects out under its own pointer representation
   and simulating the extra memory accesses, instructions, TLB/cache
   behaviour, and system calls that an ideal implementation would incur. *)

type region = Heap | Stack | Global

(* A field is a pointer slot or a scalar of a given byte size.  Pointer
   slots are what the models inflate (fat pointers) or shadow (tables). *)
type field = Ptr | Scalar of int

type layout = field array

let layout_fields (l : layout) = Array.length l

(* Size of a layout under a given pointer representation. *)
let layout_bytes ~ptr_bytes l =
  Array.fold_left
    (fun acc f -> acc + match f with Ptr -> ptr_bytes | Scalar n -> n)
    0 l

(* Byte offset of field [i] under a pointer representation, with pointers
   naturally aligned. *)
let field_offset ~ptr_bytes l i =
  let align v a = (v + a - 1) / a * a in
  let rec go off j =
    match l.(j) with
    | Ptr ->
        let off = align off ptr_bytes in
        if j = i then off else go (off + ptr_bytes) (j + 1)
    | Scalar n ->
        let off = align off (min n 8) in
        if j = i then off else go (off + n) (j + 1)
  in
  go 0 0

let field_size ~ptr_bytes = function Ptr -> ptr_bytes | Scalar n -> n

type t =
  | Alloc of { id : int; layout : layout; region : region }
  | Free of { id : int }
  | Read of { obj : int; field : int }
  | Write of { obj : int; field : int; ptr_value : bool; target : int option }
    (* [target]: id of the object the stored pointer refers to, when a
       pointer is stored — lets models that compress or shadow bounds by
       referent (Hardbound) find the pointee's size. *)
  | Compute of int (* this many non-memory instructions elapsed *)

(* A sink consumes the event stream; protection models implement this. *)
type sink = t -> unit

let pp ppf = function
  | Alloc { id; layout; region } ->
      Fmt.pf ppf "alloc #%d (%d fields, %s)" id (Array.length layout)
        (match region with Heap -> "heap" | Stack -> "stack" | Global -> "global")
  | Free { id } -> Fmt.pf ppf "free #%d" id
  | Read { obj; field } -> Fmt.pf ppf "read #%d.%d" obj field
  | Write { obj; field; ptr_value; target = _ } ->
      Fmt.pf ppf "write #%d.%d%s" obj field (if ptr_value then " (ptr)" else "")
  | Compute n -> Fmt.pf ppf "compute %d" n
