(** The instrumented object-graph runtime the Olden workloads run
    against: a working heap (objects hold real values, so benchmarks
    compute checkable results) that reports every allocation and field
    access to the registered sinks. *)

type value = VInt of int64 | VPtr of obj option
and obj = { id : int; layout : Event.layout; slots : value array }

type t = {
  mutable next_id : int;
  mutable sinks : Event.sink list;
  mutable rng : int64;
  mutable live_objects : int;
  mutable total_allocs : int;
}

val create : ?seed:int64 -> unit -> t

(** Register a trace consumer (a protection-model replayer, a recorder, …). *)
val add_sink : t -> Event.sink -> unit

(** Deterministic xorshift64* PRNG; [random t bound] ∈ [0, bound). *)
val random : t -> int -> int

(** Report [n] instructions of computation between memory operations. *)
val compute : t -> int -> unit

val alloc : t -> ?region:Event.region -> Event.layout -> obj
val free : t -> obj -> unit

(** Typed field access; emits the corresponding event.
    @raise Invalid_argument on pointer/scalar confusion. *)
val read_int : t -> obj -> int -> int64

val write_int : t -> obj -> int -> int64 -> unit
val read_ptr : t -> obj -> int -> obj option
val write_ptr : t -> obj -> int -> obj option -> unit

(** [with_frame t layout f] allocates a stack frame around [f] — the
    recursion shape the stack-protection comparisons need. *)
val with_frame : t -> Event.layout -> (obj -> 'a) -> 'a
