(* The Mondrian memory protection model (Section 6.2), adapted per
   Section 7: "We extend Mondrian to a 40-bit virtual address space, and
   simulate its vector-table model with indices to the first- and
   mid-level tables stretched to 14 bits.  Records are extended to 64 bits
   and hold permissions for 16 nodes rather than 8 ... We assume a
   hardware read of the table but simulate a software table fill."

   Address validity, not pointer safety: pointers stay 8 bytes and there
   are no check instructions — a PLB (Protection Lookaside Buffer) with
   sidecar registers validates accesses in hardware.  Costs:

     - the table is supervisor-maintained, so every *heap* allocate/free
       is a system call (reported via the study's system-call-rate metric)
       plus a software table fill whose instruction count scales with the
       granules spanned.  Stack frames and globals get no per-object
       protection — Mondrian cannot express fine-grained stack protection
       (Table 2 note) — so they cost nothing and gain nothing;
     - PLB misses trigger a hardware table walk (mid + leaf reads; the
       root is registered);
     - each heap allocation is padded by a guard granule, since address
       validity cannot distinguish adjacent objects. *)

let table_base = 0x4000_0000_0000L

(* A 64-bit leaf record holds permissions for 16 nodes (64-bit words) =
   one 128-byte granule. *)
let granule_bytes = 128
let fill_instrs_base = 8
let fill_instrs_per_granule = 4

type state = { plb : Mem.Cache.t }

let leaf_addr vaddr =
  Int64.add table_base (Int64.mul (Int64.div vaddr (Int64.of_int granule_bytes)) 8L)

let create () =
  let t = Replay.create ~name:"Mondrian" ~ptr_bytes:8 () in
  (* PLB + sidecars: 2048 granule entries = 256 KB of reach. *)
  let st = { plb = Mem.Cache.create ~name:"plb" ~size_bytes:16384 ~line_bytes:8 ~assoc:8 } in
  (* Guard padding: Mondrian's tables are word-granular, so two no-access
     guard words around each allocation suffice ("smaller pads are
     possible than with pages"). *)
  t.Replay.pad <- (fun size -> (((size + 7) / 8) * 8 + 16, 8));
  let table_update t (info : Replay.obj_info) =
    if info.Replay.region = Workload.Event.Heap then begin
      Replay.syscall t;
      let granules = ((info.Replay.size + granule_bytes - 1) / granule_bytes) + 1 in
      Replay.instr_both t (fill_instrs_base + (granules * fill_instrs_per_granule));
      for g = 0 to granules - 1 do
        Replay.meta_access t
          (leaf_addr (Int64.add info.Replay.addr (Int64.of_int (g * granule_bytes))))
          8
      done
    end
  in
  t.Replay.on_alloc <- table_update;
  t.Replay.on_free <- table_update;
  t.Replay.on_access <-
    (fun t info (fa : Replay.field_access) ->
      (* PLB lookup per heap access; a miss costs a hardware walk of the
         mid-level and leaf tables. *)
      if info.Replay.region = Workload.Event.Heap then begin
        let key = Int64.div fa.Replay.faddr (Int64.of_int granule_bytes) in
        match Mem.Cache.access st.plb ~addr:(Int64.mul key 8L) ~write:false with
        | Mem.Cache.Hit -> ()
        | Mem.Cache.Miss _ ->
            Replay.meta_access t (Int64.add table_base 0x10000L) 8;
            Replay.meta_access t (leaf_addr fa.Replay.faddr) 8
      end);
  (t, st)
