lib/models/impx.ml: Int64 Replay Workload
