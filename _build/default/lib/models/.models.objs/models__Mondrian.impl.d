lib/models/mondrian.ml: Int64 Mem Replay Workload
