lib/models/runner.ml: Baseline Cheri_model Hardbound Impx List Metrics Mmachine Mondrian Replay Soft_fp Workload
