lib/models/soft_fp.ml: Replay Workload
