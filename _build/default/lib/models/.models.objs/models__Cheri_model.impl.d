lib/models/cheri_model.ml: Metrics Printf Replay
