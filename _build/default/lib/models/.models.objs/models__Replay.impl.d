lib/models/replay.ml: Array Event Hashtbl Int64 Metrics Workload
