lib/models/baseline.ml: Replay
