lib/models/metrics.ml: Hashtbl Int64
