lib/models/criteria.ml: List
