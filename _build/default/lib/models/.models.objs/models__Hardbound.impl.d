lib/models/hardbound.ml: Hashtbl Int64 Mem Option Replay
