lib/models/mmachine.ml: Replay
