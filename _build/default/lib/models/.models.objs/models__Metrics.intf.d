lib/models/metrics.mli: Hashtbl
