lib/models/area.ml: List
