(* Drives the limit study: runs a workload once while every protection
   model consumes the same event stream, then normalizes each model's
   metrics against the baseline (Figure 3). *)

type instance = { model : Replay.t; finish : unit -> unit }

let all_models () =
  let plain m = { model = m; finish = (fun () -> ()) } in
  let baseline = Baseline.create () in
  let c256 = Cheri_model.create_256 () in
  let c128 = Cheri_model.create_128 () in
  let hardbound, _ = Hardbound.create () in
  let mondrian, _ = Mondrian.create () in
  ( baseline,
    [
      plain mondrian;
      plain (Impx.create_table ());
      plain (Impx.create_fp ());
      plain (Soft_fp.create ());
      plain hardbound;
      plain (Mmachine.create ());
      { model = c256; finish = (fun () -> Cheri_model.finish c256) };
      { model = c128; finish = (fun () -> Cheri_model.finish c128) };
    ] )

type result = {
  workload : string;
  checksum : int64;
  baseline : Metrics.t;
  rows : Metrics.row list;
}

(* [run ~name workload] executes [workload] against a fresh runtime with
   every model attached and returns the normalized overhead rows. *)
let run ~name workload =
  let rt = Workload.Runtime.create () in
  let baseline, models = all_models () in
  Workload.Runtime.add_sink rt (Replay.sink baseline);
  List.iter (fun i -> Workload.Runtime.add_sink rt (Replay.sink i.model)) models;
  let checksum = workload rt in
  List.iter (fun i -> i.finish ()) models;
  let rows =
    List.map
      (fun i ->
        Metrics.overhead ~name:i.model.Replay.name ~baseline:baseline.Replay.metrics
          i.model.Replay.metrics)
      models
  in
  { workload = name; checksum; baseline = baseline.Replay.metrics; rows }

(* Average rows across workloads (the figure reports means over the Olden
   suite). *)
let average (results : result list) =
  match results with
  | [] -> []
  | first :: _ ->
      let names = List.map (fun (r : Metrics.row) -> r.Metrics.name) first.rows in
      List.map
        (fun name ->
          let rows =
            List.map
              (fun res -> List.find (fun (r : Metrics.row) -> r.Metrics.name = name) res.rows)
              results
          in
          let n = float_of_int (List.length rows) in
          let avg f = List.fold_left (fun a r -> a +. f r) 0.0 rows /. n in
          {
            Metrics.name;
            o_pages = avg (fun r -> r.Metrics.o_pages);
            o_bytes = avg (fun r -> r.Metrics.o_bytes);
            o_refs = avg (fun r -> r.Metrics.o_refs);
            o_instr_opt = avg (fun r -> r.Metrics.o_instr_opt);
            o_instr_pess = avg (fun r -> r.Metrics.o_instr_pess);
            syscall_count =
              List.fold_left (fun a r -> a + r.Metrics.syscall_count) 0 rows
              / List.length rows;
            storage_bytes =
              List.fold_left (fun a r -> a + r.Metrics.storage_bytes) 0 rows
              / List.length rows;
          })
        names
