(* The M-Machine model (Section 6.5): guarded pointers — unforgeable fat
   pointers *compressed into 64 bits* by restricting segments to power-of-
   two size and alignment.

   Pointers therefore stay 8 bytes (no inflation in data structures), and
   checks are implicit; the model's distinguishing cost is allocation
   padding: every object is rounded up to the next power of two and
   aligned to it, which is why "the M-Machine performs poorly by the page
   metric due to padding allocations to powers of two" (Section 7). *)

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 8

let create () =
  let t = Replay.create ~name:"M-Machine" ~ptr_bytes:8 () in
  (* The guarded pointer's segment must cover the whole allocator chunk —
     header included — rounded to a power of two, and aligned to its size
     (buddy-style placement), which is what makes the paper's M-Machine
     "perform poorly by the page metric". *)
  t.Replay.pad <-
    (fun size ->
      let p = round_pow2 (size + 16) in
      (p, p));
  (* Guarded-pointer creation at allocation: one SETPTR-style instruction. *)
  t.Replay.on_alloc <- (fun t _ -> Replay.instr_both t 1);
  t
