(* The CHERI models of the limit study: capabilities as fat pointers stored
   inline.

     - 256-bit CHERI: every pointer becomes a 32-byte capability.
     - 128-bit CHERI: the compressed representation of Section 4.1
       ("128 bits using 40-bit virtual addresses"), 16 bytes per pointer.

   Per-model costs beyond pointer inflation:
     - allocation executes CIncBase + CSetLen to construct the returned
       capability (Section 5.1) — 2 instructions, under both optimistic
       and pessimistic accounting (bounds checks are implicit in every
       dereference at no instruction cost);
     - loads/stores of capabilities are single wider accesses (CLC/CSC),
       so the *reference count* stays at one per field access;
     - the tag table costs 1 bit per 256 bits of memory in *physical*
       storage; it is indexed physically, lives outside the process
       address space, and its traffic hides behind the tag cache, so it
       contributes storage but neither pages nor per-access references
       (Section 4.2). *)

let tag_table_bits_per_byte = 8 * 32 (* one tag bit covers 32 bytes *)

let create ~bits () =
  let ptr_bytes = bits / 8 in
  let t = Replay.create ~name:(Printf.sprintf "CHERI-%d" bits) ~ptr_bytes () in
  t.Replay.on_alloc <- (fun t _info -> Replay.instr_both t 2);
  t.Replay.pad <- (fun size -> (((size + ptr_bytes - 1) / ptr_bytes) * ptr_bytes, ptr_bytes));
  t.Replay.addr_mode <- `Spill;
  t

let finish t =
  (* Charge tag-table storage for the data footprint. *)
  let footprint = Replay.data_footprint t in
  t.Replay.metrics.Metrics.storage <-
    t.Replay.metrics.Metrics.storage + (footprint / tag_table_bits_per_byte * 8 / 8)

let create_256 () = create ~bits:256 ()
let create_128 () = create ~bits:128 ()
