(* The Hardbound model (Section 6.3), with the paper's Section 7
   adaptation to 64-bit MIPS:

     - base and bounds extended to 64 bits: a 128-bit bounds-table entry
       at a direct offset for every *incompressible* pointer;
     - pointer compression: "Compressed pointers encode up to 1024 bytes
       of length in 8 unused bits in the pointer and require length to be
       4-byte word aligned" — a compressed pointer needs no table entry;
     - "a 2-bit tag for each 64-bit word stored in a separate table in
       memory": tag-table traffic is filtered through a small on-chip tag
       cache, as Hardbound's own evaluation assumes;
     - setbound at allocation: a single instruction;
     - bounds are propagated and checked in hardware — no check
       instructions under either accounting (like CHERI/M-Machine). *)

let bounds_base = 0x5000_0000_0000L
let tag_base = 0x5800_0000_0000L

let compressible size = size <= 1024 && size mod 4 = 0

type state = { tag_cache : Mem.Cache.t }

let create () =
  let t = Replay.create ~name:"Hardbound" ~ptr_bytes:8 () in
  let st = { tag_cache = Mem.Cache.create ~name:"hb-tags" ~size_bytes:2048 ~line_bytes:32 ~assoc:4 } in
  t.Replay.on_alloc <- (fun t _ -> Replay.instr_both t 1);
  t.Replay.on_access <-
    (fun t _info (fa : Replay.field_access) ->
      (* Tag table: 2 bits per 64-bit word; one 32-byte tag line covers
         4 KB of data.  Only tag-cache misses reach memory. *)
      let tag_addr = Int64.add tag_base (Int64.div fa.Replay.faddr 128L) in
      (match Mem.Cache.access st.tag_cache ~addr:tag_addr ~write:fa.Replay.is_write with
      | Mem.Cache.Hit -> ()
      | Mem.Cache.Miss _ -> Replay.meta_access t tag_addr 32);
      if fa.Replay.is_ptr then begin
        (* Does this pointer value need a table entry? *)
        let needs_table =
          match
            if fa.Replay.is_write then
              Option.map (fun id -> Hashtbl.find_opt t.Replay.objects id) fa.Replay.target
              |> Option.join
            else Replay.pointee t fa.Replay.oid fa.Replay.fidx
          with
          | Some pointee -> not (compressible pointee.Replay.size)
          | None -> false
        in
        if needs_table then
          Replay.meta_access t
            (Int64.add bounds_base (Int64.mul (Int64.div fa.Replay.faddr 8L) 16L))
            16
      end);
  (t, st)
