(** The five metrics of the limit study (Figure 3), plus the system-call
    rate and storage overhead §7 discusses. *)

type t = {
  mutable refs : int;  (** individual loads + stores *)
  mutable bytes : int;  (** total bytes read or written *)
  mutable instrs : int;  (** baseline instruction stream *)
  mutable extra_opt : int;  (** extra instructions, optimistic checking *)
  mutable extra_pess : int;  (** extra instructions, pessimistic checking *)
  mutable syscalls : int;
  mutable storage : int;  (** bytes allocated, including metadata *)
  pages : (int64, unit) Hashtbl.t;  (** distinct virtual pages touched *)
}

val create : unit -> t
val page_bytes : int

(** Record one memory access (data or metadata): 1 reference, its bytes,
    and the pages it touches. *)
val access : t -> int64 -> int -> unit

val touch_pages : t -> int64 -> int -> unit
val pages : t -> int
val instrs_opt : t -> int
val instrs_pess : t -> int

(** One model's overheads normalized against the baseline run. *)
type row = {
  name : string;
  o_pages : float;
  o_bytes : float;
  o_refs : float;
  o_instr_opt : float;
  o_instr_pess : float;
  syscall_count : int;
  storage_bytes : int;
}

val overhead : name:string -> baseline:t -> t -> row
