(* Table 2: functional comparison of the protection models against the
   paper's criteria (Section 2 / Section 6). *)

type verdict = Yes | No | Na | Partial of string

type row = {
  mechanism : string;
  unprivileged : verdict;
  fine_grained : verdict;
  unforgeable : verdict;
  access_control : verdict;
  pointer_safety : verdict;
  segment_scalability : verdict;
  domain_scalability : verdict;
  incremental_deployment : verdict;
}

let table =
  [
    {
      mechanism = "MMU";
      unprivileged = No;
      fine_grained = No;
      unforgeable = No;
      access_control = Yes;
      pointer_safety = No;
      segment_scalability = No;
      domain_scalability = No;
      incremental_deployment = Yes;
    };
    {
      mechanism = "Mondrian";
      unprivileged = No;
      fine_grained = Partial "heap only: not stack or globals";
      unforgeable = No;
      access_control = Yes;
      pointer_safety = No;
      segment_scalability = Yes;
      domain_scalability = No;
      incremental_deployment = Yes;
    };
    {
      mechanism = "Hardbound";
      unprivileged = Yes;
      fine_grained = Yes;
      unforgeable = Yes;
      access_control = No;
      pointer_safety = Yes;
      segment_scalability = Yes;
      domain_scalability = Na;
      incremental_deployment = Yes;
    };
    {
      mechanism = "iMPX";
      unprivileged = Yes;
      fine_grained = Yes;
      unforgeable = Yes;
      access_control = No;
      pointer_safety = Yes;
      segment_scalability = Yes;
      domain_scalability = Na;
      incremental_deployment = Yes;
    };
    {
      mechanism = "iMPX Fat Pointers";
      unprivileged = Yes;
      fine_grained = Yes;
      unforgeable = No;
      access_control = No;
      pointer_safety = Yes;
      segment_scalability = Yes;
      domain_scalability = Na;
      incremental_deployment = No;
    };
    {
      mechanism = "M-Machine";
      unprivileged = Yes;
      fine_grained = No;
      unforgeable = Yes;
      access_control = Yes;
      pointer_safety = Yes;
      segment_scalability = Yes;
      domain_scalability = Yes;
      incremental_deployment = No;
    };
    {
      mechanism = "CHERI";
      unprivileged = Yes;
      fine_grained = Yes;
      unforgeable = Yes;
      access_control = Yes;
      pointer_safety = Yes;
      segment_scalability = Yes;
      domain_scalability = Yes;
      incremental_deployment = Yes;
    };
  ]

let verdict_mark = function
  | Yes -> "yes"
  | No -> "-"
  | Na -> "n/a"
  | Partial _ -> "yes*"

let columns =
  [ "Unprivileged"; "Fine-grained"; "Unforgeable"; "Access control"; "Pointer safety";
    "Seg. scale"; "Dom. scale"; "Incremental" ]

let cells r =
  [ r.unprivileged; r.fine_grained; r.unforgeable; r.access_control; r.pointer_safety;
    r.segment_scalability; r.domain_scalability; r.incremental_deployment ]

(* The CHERI row must dominate: [verify_cheri_dominates] checks that no
   other mechanism achieves a criterion CHERI lacks (used in the tests). *)
let verify_cheri_dominates () =
  let cheri = List.find (fun r -> r.mechanism = "CHERI") table in
  List.for_all
    (fun r ->
      List.for_all2
        (fun other ours -> match (other, ours) with Yes, Yes -> true | Yes, _ -> false | _ -> true)
        (cells r) (cells cheri))
    table
