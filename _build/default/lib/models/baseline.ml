(* The unprotected MIPS baseline: 8-byte pointers, no metadata, no checks.
   All overheads in Figure 3 are normalized against this model's counts. *)

let create () = Replay.create ~name:"baseline" ~ptr_bytes:8 ()
