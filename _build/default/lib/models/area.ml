(* Section 9 / Figure 6: FPGA area and timing model.

   A component-level logic-element model calibrated against the published
   synthesis: the Figure 6 breakdown percentages, the 32% logic-element
   overhead of CHERI over BERI, and the 110.84 -> 102.54 MHz fmax drop
   (8.1%).  Components are tagged with whether they exist in BERI, are
   CHERI additions, or grow when capability support is added (the paper:
   the overhead "includes not only the capability coprocessor and the tag
   manager, but also logic in the main pipeline to allow loading and
   storing 256-bit capabilities into the data cache"). *)

type kind =
  | Base (* present and unchanged in BERI *)
  | Cheri_only (* added by the capability extensions *)
  | Widened of float (* present in BERI but grown by this factor in CHERI *)

type component = { name : string; cheri_les : int; kind : kind }

(* Logic-element counts scaled to a ~48k LE CHERI synthesis; percentages
   match Figure 6. *)
let total_cheri_les = 48_000

let pct_of name p kind = { name; cheri_les = int_of_float (float_of_int total_cheri_les *. p /. 100.0); kind }

(* The data path through the pipeline and caches carries 257-bit lines in
   CHERI; we attribute the residual (non-coprocessor, non-tag-cache) area
   delta to those components via widening factors chosen to reproduce the
   aggregate +32%. *)
let components =
  [
    pct_of "BERI Pipeline" 18.6 (Widened 1.25);
    pct_of "Floating Point" 31.8 Base;
    pct_of "Capability Unit" 14.7 Cheri_only;
    pct_of "Tag Cache" 4.0 Cheri_only;
    pct_of "CPro0 & TLB" 7.8 Base;
    pct_of "Level 2 Cache" 6.6 (Widened 1.20);
    pct_of "L1 Data Cache" 4.6 (Widened 1.25);
    pct_of "L1 Instr. Cache" 2.4 Base;
    pct_of "Debug" 4.7 Base;
    pct_of "Multiply & Divide" 2.6 Base;
    pct_of "Branch Predictor" 2.3 Base;
  ]

let cheri_total () = List.fold_left (fun a c -> a + c.cheri_les) 0 components

let beri_les c =
  match c.kind with
  | Base -> c.cheri_les
  | Cheri_only -> 0
  | Widened f -> int_of_float (float_of_int c.cheri_les /. f)

let beri_total () = List.fold_left (fun a c -> a + beri_les c) 0 components

let area_overhead_pct () =
  let b = float_of_int (beri_total ()) and c = float_of_int (cheri_total ()) in
  100.0 *. (c -. b) /. b

let pct c = 100.0 *. float_of_int c.cheri_les /. float_of_int (cheri_total ())

(* Published synthesis frequencies (Section 9). *)
let fmax_beri_mhz = 110.84
let fmax_cheri_mhz = 102.54
(* "our current implementation reduces clock speed by 8.1%" — the paper
   expresses the drop relative to the CHERI frequency:
   (110.84 - 102.54) / 102.54 = 8.1%. *)
let fmax_penalty_pct = 100.0 *. (fmax_beri_mhz -. fmax_cheri_mhz) /. fmax_cheri_mhz

(* Paper-reported values, for the EXPERIMENTS.md comparison. *)
let paper_area_overhead_pct = 32.0
let paper_fmax_penalty_pct = 8.1
