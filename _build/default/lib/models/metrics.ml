(* The five metrics of the limit study (Figure 3), plus the system-call
   rate and storage overhead the text of Section 7 discusses.  Absolute
   counts here; [overhead_pct] turns them into the normalized overheads
   the figure plots. *)

type t = {
  mutable refs : int; (* individual loads + stores *)
  mutable bytes : int; (* total bytes read or written *)
  mutable instrs : int; (* baseline instruction stream *)
  mutable extra_opt : int; (* extra instructions, optimistic checking *)
  mutable extra_pess : int; (* extra instructions, pessimistic checking *)
  mutable syscalls : int;
  mutable storage : int; (* bytes of memory allocated, incl. metadata *)
  pages : (int64, unit) Hashtbl.t; (* distinct virtual pages touched *)
}

let create () =
  {
    refs = 0;
    bytes = 0;
    instrs = 0;
    extra_opt = 0;
    extra_pess = 0;
    syscalls = 0;
    storage = 0;
    pages = Hashtbl.create 4096;
  }

let page_bytes = 4096

let touch_pages m addr size =
  let first = Int64.div addr 4096L in
  let last = Int64.div (Int64.add addr (Int64.of_int (max 1 size - 1))) 4096L in
  let rec go p =
    if Int64.compare p last <= 0 then begin
      if not (Hashtbl.mem m.pages p) then Hashtbl.add m.pages p ();
      go (Int64.add p 1L)
    end
  in
  go first

(* Record one memory access (data or metadata). *)
let access m addr size =
  m.refs <- m.refs + 1;
  m.bytes <- m.bytes + size;
  touch_pages m addr size

let pages m = Hashtbl.length m.pages
let instrs_opt m = m.instrs + m.extra_opt
let instrs_pess m = m.instrs + m.extra_pess

type row = {
  name : string;
  o_pages : float;
  o_bytes : float;
  o_refs : float;
  o_instr_opt : float;
  o_instr_pess : float;
  syscall_count : int;
  storage_bytes : int;
}

let pct base v =
  if base = 0 then 0.0 else 100.0 *. (float_of_int v -. float_of_int base) /. float_of_int base

(* Normalized overhead of [m] against the [baseline] run. *)
let overhead ~name ~baseline m =
  {
    name;
    o_pages = pct (pages baseline) (pages m);
    o_bytes = pct baseline.bytes m.bytes;
    o_refs = pct baseline.refs m.refs;
    o_instr_opt = pct (instrs_opt baseline) (instrs_opt m);
    o_instr_pess = pct (instrs_pess baseline) (instrs_pess m);
    syscall_count = m.syscalls;
    storage_bytes = m.storage;
  }
