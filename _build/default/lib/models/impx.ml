(* The two iMPX models (Section 6.4).

   Table mode ("MPX"): pointers stay 8 bytes (full binary compatibility).
   Bounds live in a two-level hierarchical table: a directory entry (8 B)
   selects a leaf table whose entry is 320 bits (40 B) per pointer-sized
   location — "the original pointer along with 256 bits of metadata".
   Costs:
     - bndldx on every pointer load: 1 instruction + a directory read and
       a leaf read;
     - bndstx on every pointer store: 1 instruction + a directory read and
       a leaf write;
     - explicit bndcl/bndcu checks: 2 instructions per check — once per
       pointer load under optimistic accounting, once per dereference
       (approximated as heap accesses) under pessimistic.
   The table gives iMPX the worst page footprint in Figure 3: "more than
   4 pages for each page of memory containing pointers".

   Fat-pointer mode ("MPX (FP)"): the compiler keeps bounds adjacent to
   the pointer — a 32-byte record (ptr, lower, upper, reserved), better
   locality, no table, but an ABI change.  Loads/stores of a pointer move
   the bounds too (one extra reference), and checks remain explicit. *)

(* --- table mode --------------------------------------------------------- *)

let dir_base = 0x6000_0000_0000L
let leaf_base = 0x7000_0000_0000L
let leaf_entry_bytes = 40
let check_instrs = 2

(* Each leaf table covers 1 MB of address space; one directory entry per
   leaf table. *)
let dir_entry_addr vaddr = Int64.add dir_base (Int64.mul (Int64.div vaddr 1_048_576L) 8L)

let leaf_entry_addr vaddr =
  Int64.add leaf_base (Int64.mul (Int64.div vaddr 8L) (Int64.of_int leaf_entry_bytes))

let create_table () =
  let t = Replay.create ~name:"MPX" ~ptr_bytes:8 () in
  t.Replay.on_access <-
    (fun t info (fa : Replay.field_access) ->
      if fa.Replay.is_ptr then begin
        Replay.instr_both t 1 (* bndldx / bndstx *);
        Replay.meta_access t (dir_entry_addr fa.Replay.faddr) 8;
        Replay.meta_access t (leaf_entry_addr fa.Replay.faddr) leaf_entry_bytes;
        if (not fa.Replay.is_write) && info.Replay.region = Workload.Event.Heap then
          Replay.instr ~opt:check_instrs t
      end;
      if info.Replay.region = Workload.Event.Heap then Replay.instr ~pess:check_instrs t);
  t

(* --- fat-pointer mode ----------------------------------------------------- *)

let create_fp () =
  let t = Replay.create ~name:"MPX (FP)" ~ptr_bytes:32 () in
  t.Replay.addr_mode <- `Spill;
  t.Replay.on_access <-
    (fun t info (fa : Replay.field_access) ->
      if fa.Replay.is_ptr then begin
        (* the bounds half moves as a second (bndmov) access *)
        Replay.extra_refs t 1;
        Replay.instr_both t 1;
        if (not fa.Replay.is_write) && info.Replay.region = Workload.Event.Heap then
          Replay.instr ~opt:check_instrs t
      end;
      if info.Replay.region = Workload.Event.Heap then Replay.instr ~pess:check_instrs t);
  t
