(* Software fat pointers (the "Soft FP" column): the pure-software scheme
   of Cyclone/CCured-style bounds checking.

   A pointer in memory is the triple {ptr, base, bound} = 24 bytes.
   Everything is ordinary instructions:
     - loading a pointer is three 8-byte loads (2 extra refs and 2 extra
       instructions beyond the baseline's single load), and storing is
       three stores;
     - every bounds check costs ~3 instructions (two unsigned compares and
       a branch);
     - optimistic accounting checks once per pointer *load*; pessimistic
       accounting checks at every dereference, approximated as every
       access to a heap object (stack and global accesses are statically
       checkable). *)

let check_instrs = 3

let create () =
  let t = Replay.create ~name:"Soft FP" ~ptr_bytes:24 () in
  t.Replay.addr_mode <- `Spill;
  t.Replay.on_access <-
    (fun t info (fa : Replay.field_access) ->
      if fa.Replay.is_ptr then begin
        (* base+bound words move with the pointer as two further 8-byte
           accesses (their bytes are already in the 24-byte field count) *)
        Replay.extra_refs t 2;
        Replay.instr_both t 2;
        (* optimistic: check once per pointer loaded from a heap object
           (reloads of register spills are statically safe) *)
        if (not fa.Replay.is_write) && info.Replay.region = Workload.Event.Heap then
          Replay.instr ~opt:check_instrs t
      end;
      if info.Replay.region = Workload.Event.Heap then
        Replay.instr ~pess:check_instrs t);
  t
