(* The trace replayer underlying every protection model.

   Replaying an object-level trace under a model means: lay every object
   out in the model's address space (its pointer representation sets the
   object sizes; its allocator sets padding), turn every field access into
   concrete memory accesses, and let the model's hooks add the metadata
   accesses, check instructions, and system calls an ideal implementation
   would add (Section 7: "We simulated extra memory accesses, instructions,
   TLB and cache behavior, and system calls that would result from ideal
   implementations of each model").

   The shared baseline costs — the instruction count of the program itself
   and the allocator's own work — are identical across models so that
   normalized overheads isolate each model's protection costs. *)

open Workload

type obj_info = {
  layout : Event.layout;
  region : Event.region;
  addr : int64;
  size : int;
  mutable live : bool;
}

type t = {
  name : string;
  ptr_bytes : int;
  metrics : Metrics.t;
  objects : (int, obj_info) Hashtbl.t;
  (* pointer values by location, for referent-dependent models *)
  ptr_targets : (int * int, int) Hashtbl.t;
  mutable heap_ptr : int64;
  mutable stack_ptr : int64;
  mutable global_ptr : int64;
  mutable stack_lifo : (int * int64) list; (* (obj id, sp to restore) *)
  (* model hooks *)
  mutable on_alloc : t -> obj_info -> unit;
  mutable on_free : t -> obj_info -> unit;
  mutable on_access : t -> obj_info -> field_access -> unit;
  (* model-specific padding: size -> (padded size, alignment) *)
  mutable pad : int -> int * int;
  (* Address assignment.  [Repack]: the model's allocator lays objects out
     densely under their inflated sizes (metadata-table models, and
     M-Machine, whose power-of-two alignment forces relocation).  [Spill]:
     the paper's accounting for inline fat pointers — "the additional data
     is packed into existing data and the larger structures will only
     sometimes spill onto another page" (Section 7): objects keep their
     baseline placement, and the inflation only extends each object's
     reach, occasionally crossing into the next page. *)
  mutable addr_mode : [ `Repack | `Spill ];
}

and field_access = {
  oid : int; (* object id *)
  fidx : int; (* field index within the object *)
  faddr : int64;
  fsize : int;
  is_ptr : bool;
  is_write : bool;
  target : int option; (* pointee object id, for pointer writes *)
}

let heap_base = 0x1000_0000L
let stack_base = 0x2000_0000L (* grows down from here *)
let global_base = 0x3000_0000L

(* Cost of the program's own allocator (malloc/free bookkeeping), charged
   identically to every model: a handful of instructions and two header
   accesses per allocation.  malloc amortizes kernel entry over many
   allocations (Section 4.2); the baseline allocator syscalls once per
   64 KB of fresh heap. *)
let allocator_instrs = 30
let free_instrs = 10
let sbrk_chunk = 65536

(* Instructions charged per field access in every model: the load/store
   itself plus the address arithmetic and loop control around it (typical
   compiled MIPS runs ~3 instructions per memory operation). *)
let access_instrs = 3

let default_pad size = (((size + 7) / 8) * 8, 8)

let create ~name ~ptr_bytes () =
  {
    name;
    ptr_bytes;
    metrics = Metrics.create ();
    objects = Hashtbl.create 4096;
    ptr_targets = Hashtbl.create 4096;
    heap_ptr = heap_base;
    stack_ptr = stack_base;
    global_ptr = global_base;
    stack_lifo = [];
    on_alloc = (fun _ _ -> ());
    on_free = (fun _ _ -> ());
    on_access = (fun _ _ _ -> ());
    pad = default_pad;
    addr_mode = `Repack;
  }

let instr ?(opt = 0) ?(pess = 0) t =
  t.metrics.Metrics.extra_opt <- t.metrics.Metrics.extra_opt + opt;
  t.metrics.Metrics.extra_pess <- t.metrics.Metrics.extra_pess + pess

(* Extra instructions under both checking disciplines. *)
let instr_both t n = instr ~opt:n ~pess:n t

let syscall t = t.metrics.Metrics.syscalls <- t.metrics.Metrics.syscalls + 1

(* A metadata (table/shadow) access attributed to the model. *)
let meta_access t addr size = Metrics.access t.metrics addr size

(* Additional discrete references within bytes already counted — e.g. a
   24-byte fat pointer loaded as three 8-byte loads is one counted access
   of 24 bytes plus two extra references. *)
let extra_refs t n = t.metrics.Metrics.refs <- t.metrics.Metrics.refs + n

let align_up v a = Int64.logand (Int64.add v (Int64.of_int (a - 1))) (Int64.lognot (Int64.of_int (a - 1)))

let handle t (e : Event.t) =
  let m = t.metrics in
  match e with
  | Event.Compute n -> m.Metrics.instrs <- m.Metrics.instrs + n
  | Event.Alloc { id; layout; region } ->
      let raw = Event.layout_bytes ~ptr_bytes:t.ptr_bytes layout in
      let size, align = t.pad (max raw 1) in
      let baseline_size, _ = default_pad (max (Event.layout_bytes ~ptr_bytes:8 layout) 1) in
      let place_size = match t.addr_mode with `Repack -> size | `Spill -> baseline_size in
      let addr =
        match region with
        | Event.Heap ->
            let a = align_up t.heap_ptr align in
            t.heap_ptr <- Int64.add a (Int64.of_int place_size);
            (* Baseline allocator behaviour: occasional sbrk. *)
            if Int64.rem (Int64.sub t.heap_ptr heap_base) (Int64.of_int sbrk_chunk)
               < Int64.of_int size
            then syscall t;
            a
        | Event.Stack ->
            let sp = Int64.sub t.stack_ptr (Int64.of_int place_size) in
            let sp = Int64.logand sp (Int64.lognot (Int64.of_int (align - 1))) in
            t.stack_lifo <- (id, t.stack_ptr) :: t.stack_lifo;
            t.stack_ptr <- sp;
            sp
        | Event.Global ->
            let a = align_up t.global_ptr align in
            t.global_ptr <- Int64.add a (Int64.of_int place_size);
            a
      in
      let info = { layout; region; addr; size; live = true } in
      Hashtbl.replace t.objects id info;
      m.Metrics.instrs <- m.Metrics.instrs + allocator_instrs;
      m.Metrics.storage <- m.Metrics.storage + size;
      (* Allocator header bookkeeping: identical for every model. *)
      Metrics.access m (Int64.sub addr 16L) 16;
      t.on_alloc t info
  | Event.Free { id } -> (
      match Hashtbl.find_opt t.objects id with
      | None -> ()
      | Some info ->
          info.live <- false;
          m.Metrics.instrs <- m.Metrics.instrs + free_instrs;
          (match info.region with
          | Event.Stack -> (
              (* LIFO stack discipline: pop back to the saved SP. *)
              match t.stack_lifo with
              | (top_id, sp) :: rest when top_id = id ->
                  t.stack_ptr <- sp;
                  t.stack_lifo <- rest
              | _ -> ())
          | Event.Heap | Event.Global -> ());
          t.on_free t info)
  | Event.Read { obj; field } -> (
      match Hashtbl.find_opt t.objects obj with
      | None -> ()
      | Some info ->
          let off = Event.field_offset ~ptr_bytes:t.ptr_bytes info.layout field in
          let fsize = Event.field_size ~ptr_bytes:t.ptr_bytes info.layout.(field) in
          let faddr = Int64.add info.addr (Int64.of_int off) in
          Metrics.access m faddr fsize;
          m.Metrics.instrs <- m.Metrics.instrs + access_instrs;
          let is_ptr = info.layout.(field) = Event.Ptr in
          t.on_access t info
            { oid = obj; fidx = field; faddr; fsize; is_ptr; is_write = false; target = None })
  | Event.Write { obj; field; ptr_value; target } -> (
      match Hashtbl.find_opt t.objects obj with
      | None -> ()
      | Some info ->
          let off = Event.field_offset ~ptr_bytes:t.ptr_bytes info.layout field in
          let fsize = Event.field_size ~ptr_bytes:t.ptr_bytes info.layout.(field) in
          let faddr = Int64.add info.addr (Int64.of_int off) in
          Metrics.access m faddr fsize;
          m.Metrics.instrs <- m.Metrics.instrs + access_instrs;
          if ptr_value then begin
            match target with
            | Some tid -> Hashtbl.replace t.ptr_targets (obj, field) tid
            | None -> Hashtbl.remove t.ptr_targets (obj, field)
          end;
          t.on_access t info
            { oid = obj; fidx = field; faddr; fsize;
              is_ptr = info.layout.(field) = Event.Ptr; is_write = true; target })

let sink t : Event.sink = handle t

(* The object a given pointer field currently points to. *)
let pointee t obj field =
  match Hashtbl.find_opt t.ptr_targets (obj, field) with
  | None -> None
  | Some id -> Hashtbl.find_opt t.objects id

let data_footprint t =
  Int64.to_int
    (Int64.add
       (Int64.sub t.heap_ptr heap_base)
       (Int64.sub t.global_ptr global_base))
