(* Capability revocation by tag sweep (Section 11).

   "The presence of tagged memory also provides opportunities to enforce
   temporal safety.  Tags allow us to identify all references, so we can
   provide accurate garbage collection to low-level languages such as C.
   Possibilities include a non-reuse allocator (to eliminate most dangling
   pointer errors) that periodically runs a tracing pass to identify
   reusable address space."

   Because every capability in the system is identifiable — tagged
   256-bit lines in memory, plus the register file and PCC — revoking a
   region is a precise sweep: clear the tag of every capability whose
   segment intersects the revoked range.  Dangling capabilities then fault
   on their next use (tag violation), giving deterministic temporal
   safety without address-space reuse hazards.

   The same sweep, run in collection mode, *finds* the live capabilities
   instead: the tracing pass of the paper's non-reuse allocator. *)

open Cap

let intersects c ~base ~length =
  Capability.tag c
  && U64.lt (Capability.base c) (U64.add base length)
  && U64.lt base (U64.add (Capability.base c) (Capability.length c))

(* Sweep statistics. *)
type stats = {
  memory_capabilities_scanned : int;
  memory_capabilities_revoked : int;
  register_capabilities_revoked : int;
}

(* [revoke machine ~base ~length] clears the tag of every capability —
   in memory or in the register file — that grants access to any byte of
   [base, base+length).  Returns sweep statistics.  O(tagged lines): the
   tag table tells the sweep exactly where capabilities live, so untagged
   memory is never touched. *)
let revoke (m : Machine.t) ~base ~length =
  let scanned = ref 0 and revoked = ref 0 and regs = ref 0 in
  let mem_size = Mem.Phys.size m.Machine.phys in
  let line = ref 0L in
  let line_bytes = Int64.of_int Mem.Tags.line_bytes in
  while Int64.to_int !line < mem_size do
    if Mem.Tags.get m.Machine.tags !line then begin
      incr scanned;
      let c =
        Capability.of_bytes ~tag:true (Mem.Phys.read_bytes m.Machine.phys !line 32)
      in
      if intersects c ~base ~length then begin
        Mem.Tags.set m.Machine.tags !line false;
        incr revoked
      end
    end;
    line := Int64.add !line line_bytes
  done;
  for i = 0 to 31 do
    let c = Machine.cap m i in
    if intersects c ~base ~length then begin
      Machine.set_cap m i (Capability.clear_tag c);
      incr regs
    end
  done;
  if intersects m.Machine.pcc ~base ~length then begin
    m.Machine.pcc <- Capability.clear_tag m.Machine.pcc;
    incr regs
  end;
  {
    memory_capabilities_scanned = !scanned;
    memory_capabilities_revoked = !revoked;
    register_capabilities_revoked = !regs;
  }

(* [live_capability_roots machine] is the tracing pass of the non-reuse
   allocator: every segment currently reachable from a tagged capability
   anywhere in the system, as (base, length) pairs.  Address space outside
   every returned segment is provably unreferenced and reusable. *)
let live_capability_roots (m : Machine.t) =
  let roots = ref [] in
  let mem_size = Mem.Phys.size m.Machine.phys in
  let line = ref 0L in
  let line_bytes = Int64.of_int Mem.Tags.line_bytes in
  while Int64.to_int !line < mem_size do
    if Mem.Tags.get m.Machine.tags !line then begin
      let c =
        Capability.of_bytes ~tag:true (Mem.Phys.read_bytes m.Machine.phys !line 32)
      in
      roots := (Capability.base c, Capability.length c) :: !roots
    end;
    line := Int64.add !line line_bytes
  done;
  for i = 0 to 31 do
    let c = Machine.cap m i in
    if Capability.tag c then roots := (Capability.base c, Capability.length c) :: !roots
  done;
  !roots
