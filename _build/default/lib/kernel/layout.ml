(* The user virtual-address-space layout used by the kernel model, the
   assembler defaults, and the compiler.  A small fixed layout keeps the
   interpreter's identity mapping simple; sizes are generous for the Olden
   workloads (heap regions up to several MB for the Figure 5 sweep). *)

let text_base = 0x1_0000L
let data_base = 0x10_0000L
let heap_base = 0x20_0000L

(* The stack occupies the top megabyte of the machine's memory and the
   heap may grow to 16 MB below it; [Kernel.attach] derives the actual
   bounds from the machine size (the defaults below describe the standard
   64 MB machine). *)
let stack_top = 0x400_0000L
let stack_base = Int64.sub stack_top 0x10_0000L
let heap_limit = Int64.sub stack_top 0x110_0000L
let user_top = stack_top
