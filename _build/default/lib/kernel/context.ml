(* Per-thread context switching.

   Section 4.3: "The kernel saves and restores per-thread capability-
   register state on context switches."  A context snapshot captures the
   general-purpose file, the full capability file, PCC, and PC; restoring
   one is exactly what the paper's modified FreeBSD does on every switch.
   The capability file dominates the cost: 32 x 32 bytes + PCC, which is
   why the paper notes a smaller register set "would reduce context-switch
   overhead". *)

open Beri

type t = {
  gprs : Regs.t;
  caps : Cap.Capability.t array;
  pcc : Cap.Capability.t;
  pc : int64;
}

let save (m : Machine.t) =
  {
    gprs = Regs.copy m.Machine.regs;
    caps = Array.copy m.Machine.caps;
    pcc = m.Machine.pcc;
    pc = m.Machine.pc;
  }

let restore (m : Machine.t) t =
  Regs.load m.Machine.regs t.gprs;
  Array.blit t.caps 0 m.Machine.caps 0 32;
  m.Machine.pcc <- t.pcc;
  m.Machine.pc <- t.pc

(* Bytes moved per switch — the metric the paper's "context-switch
   overhead" remark refers to: 32 GPRs x 8 B + (32 caps + PCC) x 32 B. *)
let switch_bytes = (32 * 8) + (33 * Cap.Capability.size_bytes)
