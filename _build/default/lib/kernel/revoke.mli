(** Capability revocation by tag sweep — the paper's §11 temporal-safety
    direction ("Tags allow us to identify all references").

    Because every capability in the system is identifiable (tagged lines
    in memory, the register file, PCC), revoking a region is a precise
    sweep: clear the tag of every capability whose segment intersects it.
    Dangling capabilities then fault on next use. *)

type stats = {
  memory_capabilities_scanned : int;
  memory_capabilities_revoked : int;
  register_capabilities_revoked : int;
}

(** [revoke machine ~base ~length] clears every capability granting access
    to any byte of [base, base+length) — including ambient
    whole-address-space registers, which also reach the region. *)
val revoke : Machine.t -> base:int64 -> length:int64 -> stats

(** The tracing pass of the §11 non-reuse allocator: every (base, length)
    segment currently reachable from a tagged capability anywhere in the
    system.  Address space outside all returned segments is provably
    unreferenced. *)
val live_capability_roots : Machine.t -> (int64 * int64) list
