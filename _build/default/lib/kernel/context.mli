(** Per-thread context switching (§4.3: "The kernel saves and restores
    per-thread capability-register state on context switches"). *)

type t

(** Snapshot the GPR file, the full capability file, PCC, and PC. *)
val save : Machine.t -> t

val restore : Machine.t -> t -> unit

(** Bytes moved per switch: 32 GPRs x 8 B + 33 capabilities x 32 B — the
    cost the paper's remark about smaller register files refers to. *)
val switch_bytes : int
