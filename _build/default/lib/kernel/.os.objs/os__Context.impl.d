lib/kernel/context.ml: Array Beri Cap Machine Regs
