lib/kernel/revoke.mli: Machine
