lib/kernel/revoke.ml: Cap Capability Int64 Machine Mem U64
