lib/kernel/context.mli: Machine
