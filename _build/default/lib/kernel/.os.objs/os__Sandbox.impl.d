lib/kernel/sandbox.ml: Beri Cap Context Int64 Machine Regs
