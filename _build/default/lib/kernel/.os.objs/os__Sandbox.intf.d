lib/kernel/sandbox.mli: Machine
