lib/kernel/layout.ml: Int64
