lib/kernel/kernel.ml: Asm Beri Buffer Cap Char Cp0 Fmt Int64 Layout Machine Mem Regs
