lib/mem/hierarchy.ml: Cache Fmt Int64 List Tlb
