lib/mem/cache.ml: Array Fmt Int64 List
