lib/mem/tags.ml: Bytes Char Int64
