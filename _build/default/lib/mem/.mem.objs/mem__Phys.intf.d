lib/mem/phys.mli:
