lib/mem/tags.mli:
