lib/mem/tlb.ml: Hashtbl Int64
