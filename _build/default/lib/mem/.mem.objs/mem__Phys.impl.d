lib/mem/phys.ml: Bytes Char Int32 Int64
