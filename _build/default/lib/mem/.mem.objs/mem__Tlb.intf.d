lib/mem/tlb.mli: Hashtbl
