(* Address translation: a page table plus a TLB reach model.

   The reproduction uses identity virtual-to-physical mapping (each process
   image is loaded at its virtual addresses), so what matters
   architecturally is (a) per-page permissions — including the CHERI page
   table extension bits that authorise capability loads and stores
   (Section 6.1) — and (b) TLB reach: the paper's Figure 5 'steps' come
   from a TLB covering 1 MB (256 entries x 4 KB), which this model
   reproduces by counting hits and misses over a fully-associative LRU
   entry set. *)

let page_bits = 12
let page_bytes = 1 lsl page_bits

type prot = {
  valid : bool;
  writable : bool;
  executable : bool;
  cap_load : bool; (* CHERI PTE extension: authorise capability loads *)
  cap_store : bool; (* ... and capability stores *)
}

let prot_none = { valid = false; writable = false; executable = false; cap_load = false; cap_store = false }
let prot_rwx = { valid = true; writable = true; executable = true; cap_load = true; cap_store = true }

type t = {
  entries : int; (* TLB capacity in page entries *)
  table : (int64, prot) Hashtbl.t; (* the page table: VPN -> protections *)
  resident : (int64, int) Hashtbl.t; (* VPN -> last-use tick, models TLB residency *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(entries = 256) () =
  {
    entries;
    table = Hashtbl.create 1024;
    resident = Hashtbl.create 512;
    tick = 0;
    hits = 0;
    misses = 0;
  }

let vpn addr = Int64.shift_right_logical addr page_bits

let map t ~vaddr ~len prot =
  let first = vpn vaddr in
  let last = vpn (Int64.add vaddr (Int64.of_int (max 1 len - 1))) in
  let rec go p =
    if Int64.compare p last <= 0 then begin
      Hashtbl.replace t.table p prot;
      go (Int64.add p 1L)
    end
  in
  go first

let protection t vaddr =
  match Hashtbl.find_opt t.table (vpn vaddr) with
  | Some p -> p
  | None -> prot_none

(* Touch the TLB for a translation; returns [true] on a TLB hit.  On a miss
   the least-recently-used entry is evicted (modelling the software refill
   the timing model charges for). *)
let touch t vaddr =
  t.tick <- t.tick + 1;
  let p = vpn vaddr in
  match Hashtbl.find_opt t.resident p with
  | Some _ ->
      t.hits <- t.hits + 1;
      Hashtbl.replace t.resident p t.tick;
      true
  | None ->
      t.misses <- t.misses + 1;
      if Hashtbl.length t.resident >= t.entries then begin
        let victim =
          Hashtbl.fold
            (fun k v acc ->
              match acc with
              | Some (_, bv) when bv <= v -> acc
              | _ -> Some (k, v))
            t.resident None
        in
        match victim with Some (k, _) -> Hashtbl.remove t.resident k | None -> ()
      end;
      Hashtbl.replace t.resident p t.tick;
      false

let flush t = Hashtbl.reset t.resident

let unmap t ~vaddr ~len =
  let first = vpn vaddr in
  let last = vpn (Int64.add vaddr (Int64.of_int (max 1 len - 1))) in
  let rec go p =
    if Int64.compare p last <= 0 then begin
      Hashtbl.remove t.table p;
      Hashtbl.remove t.resident p;
      go (Int64.add p 1L)
    end
  in
  go first

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

let mapped_pages t = Hashtbl.length t.table
