(** A set-associative, write-back, write-allocate cache model with LRU
    replacement.

    Purely a performance model: data lives in {!Phys}; the cache tracks
    which lines are resident so both the machine and the trace-replay
    simulators can drive it. *)

type t = {
  name : string;
  line_bytes : int;
  sets : int;
  assoc : int;
  data : line array array;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
}

and line = { mutable tag : int64; mutable valid : bool; mutable dirty : bool; mutable lru : int }

(** [create ~name ~size_bytes ~line_bytes ~assoc] — capacity must be a
    multiple of [line_bytes * assoc].
    @raise Invalid_argument otherwise. *)
val create : name:string -> size_bytes:int -> line_bytes:int -> assoc:int -> t

val size_bytes : t -> int

type outcome =
  | Hit
  | Miss of { writeback : bool }  (** the victim line was dirty *)

(** [access t ~addr ~write] touches the line containing [addr]; on a miss
    the LRU way is evicted and the line installed. *)
val access : t -> addr:int64 -> write:bool -> outcome

(** Line-aligned addresses of every line a [size]-byte access at [addr]
    touches. *)
val lines_spanned : t -> addr:int64 -> size:int -> int64 list

val reset_stats : t -> unit

(** Invalidate every line (drops dirty data — a model-level reset). *)
val flush : t -> unit

val pp_stats : Format.formatter -> t -> unit
