(* A set-associative, write-back, write-allocate cache model with LRU
   replacement.  Purely a performance model: data lives in [Phys]; the
   cache tracks only which lines are resident, so it can be driven by both
   the machine and the trace-replay simulators. *)

type line = { mutable tag : int64; mutable valid : bool; mutable dirty : bool; mutable lru : int }

type t = {
  name : string;
  line_bytes : int;
  sets : int;
  assoc : int;
  data : line array array; (* [set].[way] *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
}

let create ~name ~size_bytes ~line_bytes ~assoc =
  if size_bytes mod (line_bytes * assoc) <> 0 then invalid_arg "Cache.create";
  let sets = size_bytes / (line_bytes * assoc) in
  {
    name;
    line_bytes;
    sets;
    assoc;
    data =
      Array.init sets (fun _ ->
          Array.init assoc (fun _ -> { tag = 0L; valid = false; dirty = false; lru = 0 }));
    tick = 0;
    hits = 0;
    misses = 0;
    writebacks = 0;
  }

let size_bytes t = t.sets * t.assoc * t.line_bytes

let set_of t addr =
  Int64.to_int (Int64.unsigned_rem (Int64.div addr (Int64.of_int t.line_bytes))
                  (Int64.of_int t.sets))

let tag_of t addr = Int64.div addr (Int64.of_int (t.line_bytes * t.sets))

(* Result of touching one line. *)
type outcome = Hit | Miss of { writeback : bool }

(* [access t ~addr ~write] touches the line containing [addr].  On a miss
   the LRU way is evicted (recording a writeback if it was dirty) and the
   new line installed. *)
let access t ~addr ~write =
  t.tick <- t.tick + 1;
  let set = t.data.(set_of t addr) in
  let tag = tag_of t addr in
  let rec find i =
    if i >= t.assoc then None
    else if set.(i).valid && Int64.equal set.(i).tag tag then Some set.(i)
    else find (i + 1)
  in
  match find 0 with
  | Some line ->
      t.hits <- t.hits + 1;
      line.lru <- t.tick;
      if write then line.dirty <- true;
      Hit
  | None ->
      t.misses <- t.misses + 1;
      (* Prefer an invalid way; otherwise evict the least recently used. *)
      let victim =
        match Array.to_list set |> List.find_opt (fun l -> not l.valid) with
        | Some l -> l
        | None ->
            Array.fold_left (fun best l -> if l.lru < best.lru then l else best) set.(0) set
      in
      let writeback = victim.valid && victim.dirty in
      if writeback then t.writebacks <- t.writebacks + 1;
      victim.valid <- true;
      victim.dirty <- write;
      victim.tag <- tag;
      victim.lru <- t.tick;
      Miss { writeback }

(* Lines touched by a [size]-byte access at [addr]. *)
let lines_spanned t ~addr ~size =
  let lb = Int64.of_int t.line_bytes in
  let first = Int64.div addr lb in
  let last = Int64.div (Int64.add addr (Int64.of_int (max 1 size - 1))) lb in
  let rec go acc l =
    if Int64.compare l first < 0 then acc else go (Int64.mul l lb :: acc) (Int64.sub l 1L)
  in
  go [] last

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.writebacks <- 0

let flush t =
  Array.iter (Array.iter (fun l -> l.valid <- false; l.dirty <- false)) t.data

let pp_stats ppf t =
  let total = t.hits + t.misses in
  Fmt.pf ppf "%s: %d accesses, %d misses (%.2f%%), %d writebacks" t.name total
    t.misses
    (if total = 0 then 0.0 else 100.0 *. float_of_int t.misses /. float_of_int total)
    t.writebacks
