(* Olden power: price-directed optimization of a hierarchical power
   network (root -> feeders -> laterals -> branches -> leaves).  Each
   iteration propagates demands up the tree and prices down, until the
   root price converges.  Values are 16.16 fixed point (no floating point
   in the model).  The trace signature: a deep multi-level tree built
   once, then repeatedly traversed with reads and writes at every node. *)

open Workload

(* node: { demand; price; first child; sibling } *)
let node_layout = [| Event.Scalar 8; Event.Scalar 8; Event.Ptr; Event.Ptr |]
let f_demand = 0
let f_price = 1
let f_child = 2
let f_sibling = 3

let fix v = Int64.of_int (v * 65536)
let fix_mul a b = Int64.shift_right (Int64.mul a b) 16

(* Build [n] children under [parent], chained through sibling pointers,
   recursing [depth] more levels with [fanout] children each. *)
let rec build rt ~depth ~fanout =
  let node = Runtime.alloc rt node_layout in
  Runtime.write_int rt node f_price (fix 1);
  if depth > 0 then begin
    let children = List.init fanout (fun _ -> build rt ~depth:(depth - 1) ~fanout) in
    let rec chain = function
      | a :: (b :: _ as rest) ->
          Runtime.write_ptr rt a f_sibling (Some b);
          chain rest
      | _ -> ()
    in
    chain children;
    match children with
    | first :: _ -> Runtime.write_ptr rt node f_child (Some first)
    | [] -> ()
  end;
  node

(* Demand flows up: a leaf demands inversely to price; an inner node sums
   its children's demands plus 1% line loss. *)
let rec compute_demand rt node =
  let price = Runtime.read_int rt node f_price in
  let demand =
    match Runtime.read_ptr rt node f_child with
    | None ->
        (* leaf: demand = 100 / price (fixed point) *)
        Runtime.compute rt 4;
        Int64.div (Int64.mul (fix 100) 65536L) (Int64.max price 1L)
    | Some first ->
        let rec sum acc = function
          | None -> acc
          | Some child ->
              let d = compute_demand rt child in
              sum (Int64.add acc d) (Runtime.read_ptr rt child f_sibling)
        in
        let total = sum 0L (Some first) in
        Runtime.compute rt 2;
        Int64.add total (Int64.div total 100L)
  in
  Runtime.write_int rt node f_demand demand;
  demand

(* Prices flow down: each level marks up its parent's price in proportion
   to its demand share. *)
let rec propagate_price rt node price =
  Runtime.write_int rt node f_price price;
  let demand = Runtime.read_int rt node f_demand in
  let child_price = Int64.add price (fix_mul demand 6L) in
  Runtime.compute rt 3;
  let rec down = function
    | None -> ()
    | Some child ->
        propagate_price rt child child_price;
        down (Runtime.read_ptr rt child f_sibling)
  in
  down (Runtime.read_ptr rt node f_child)

(* [run rt ~depth ~fanout ~iters] returns the root demand after the last
   iteration (a deterministic fixed-point checksum). *)
let run rt ?(iters = 4) ~depth ~fanout () =
  let root = build rt ~depth ~fanout in
  let last = ref 0L in
  for _ = 1 to iters do
    last := compute_demand rt root;
    propagate_price rt root (fix 1)
  done;
  !last

(* The iteration is contractive: demand decreases as prices rise.  Used by
   the tests as a convergence check. *)
let demand_series rt ?(iters = 4) ~depth ~fanout () =
  let root = build rt ~depth ~fanout in
  List.init iters (fun _ ->
      let d = compute_demand rt root in
      propagate_price rt root (fix 1);
      d)
