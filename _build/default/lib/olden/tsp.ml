(* Olden tsp: a divide-and-conquer travelling-salesman heuristic.  Cities
   live in a balanced binary tree partitioned by coordinate; [conquer]
   builds a cyclic tour through the leaves of each subtree and [merge]
   splices subtours together at their closest endpoints.  Distances are
   squared-Euclidean integers (no floating point).  The trace signature:
   tree build, then heavy pointer splicing through prev/next fields. *)

open Workload

(* city node: { x; y; left; right; prev; next } *)
let node_layout =
  [| Event.Scalar 8; Event.Scalar 8; Event.Ptr; Event.Ptr; Event.Ptr; Event.Ptr |]

let f_x = 0
let f_y = 1
let f_left = 2
let f_right = 3
let f_prev = 4
let f_next = 5

(* Build a balanced tree of [n] pseudo-random cities in the box
   [0, span) x [0, span), splitting alternately by x and y. *)
let rec build rt ~n ~axis ~x0 ~y0 ~span =
  if n <= 0 then None
  else begin
    let node = Runtime.alloc rt node_layout in
    let jitter = Runtime.random rt (max 1 (span / 2)) in
    let cx = x0 + (span / 4) + jitter and cy = y0 + (span / 4) + (jitter * 7 mod max 1 (span / 2)) in
    Runtime.write_int rt node f_x (Int64.of_int cx);
    Runtime.write_int rt node f_y (Int64.of_int cy);
    let half = (n - 1) / 2 in
    let rest = n - 1 - half in
    let sub dx dy = build rt ~n:half ~axis:(1 - axis) ~x0:(x0 + dx) ~y0:(y0 + dy) ~span:(span / 2) in
    let sub2 dx dy = build rt ~n:rest ~axis:(1 - axis) ~x0:(x0 + dx) ~y0:(y0 + dy) ~span:(span / 2) in
    if axis = 0 then begin
      Runtime.write_ptr rt node f_left (sub 0 0);
      Runtime.write_ptr rt node f_right (sub2 (span / 2) 0)
    end
    else begin
      Runtime.write_ptr rt node f_left (sub 0 0);
      Runtime.write_ptr rt node f_right (sub2 0 (span / 2))
    end;
    Some node
  end

let dist2 rt a b =
  let ax = Runtime.read_int rt a f_x and ay = Runtime.read_int rt a f_y in
  let bx = Runtime.read_int rt b f_x and by = Runtime.read_int rt b f_y in
  let dx = Int64.sub ax bx and dy = Int64.sub ay by in
  Runtime.compute rt 6;
  Int64.add (Int64.mul dx dx) (Int64.mul dy dy)

(* Cyclic doubly-linked tours. *)
let link rt a b =
  Runtime.write_ptr rt a f_next (Some b);
  Runtime.write_ptr rt b f_prev (Some a)

let next rt n = Option.get (Runtime.read_ptr rt n f_next)

(* Collect a tour's nodes starting at [start]. *)
let tour_nodes rt start =
  let rec go acc n =
    if n.Runtime.id = start.Runtime.id && acc <> [] then List.rev acc
    else go (n :: acc) (next rt n)
  in
  go [] start

(* Splice tour [b] into tour [a] after the endpoint of [a] closest to
   [b]'s head — the Olden merge step, simplified to endpoint splicing. *)
let merge rt a b =
  (* find the node in tour [a] closest to b *)
  let best = ref a and best_d = ref (dist2 rt a b) in
  let rec scan n =
    if n.Runtime.id <> a.Runtime.id then begin
      let d = dist2 rt n b in
      if Int64.compare d !best_d < 0 then begin
        best := n;
        best_d := d
      end;
      scan (next rt n)
    end
  in
  scan (next rt a);
  (* splice: best -> b ... b_last -> best_next *)
  let best_next = next rt !best in
  let b_last = Option.get (Runtime.read_ptr rt b f_prev) in
  link rt !best b;
  link rt b_last best_next;
  a

(* Build the tour for a subtree: conquer children, then merge. *)
let rec conquer rt node =
  let self = node in
  link rt self self (* trivial one-city tour *);
  let with_child field tour =
    match Runtime.read_ptr rt node field with
    | None -> tour
    | Some child -> merge rt tour (conquer rt child)
  in
  self |> with_child f_left |> with_child f_right

let tour_length rt start =
  let nodes = tour_nodes rt start in
  let rec go acc = function
    | a :: (b :: _ as rest) -> go (Int64.add acc (dist2 rt a b)) rest
    | [ last ] -> Int64.add acc (dist2 rt last start)
    | [] -> acc
  in
  go 0L nodes

(* [run rt ~n] builds an [n]-city instance, computes the tour, and returns
   its squared length (the deterministic checksum). *)
let run rt ~n () =
  match build rt ~n ~axis:0 ~x0:0 ~y0:0 ~span:4096 with
  | None -> 0L
  | Some root ->
      let tour = conquer rt root in
      tour_length rt tour

(* For the tests: number of distinct cities on the tour (must equal n). *)
let tour_size rt ~n () =
  match build rt ~n ~axis:0 ~x0:0 ~y0:0 ~span:4096 with
  | None -> 0
  | Some root ->
      let tour = conquer rt root in
      List.length (tour_nodes rt tour)
