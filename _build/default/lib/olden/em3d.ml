(* Olden em3d: electromagnetic wave propagation on a bipartite graph of E
   and H field nodes.  Each node holds a value and a list of dependencies
   (pointers into the other partition) with coefficients; each timestep
   updates every node from its dependencies.  Values are 16.16 fixed-point
   (our port avoids floating point; DESIGN.md). *)

open Workload

(* node: { value; next; deps array ptr; coeffs array ptr } *)
let node_layout = [| Event.Scalar 8; Event.Ptr; Event.Ptr; Event.Ptr |]
let f_value = 0
let f_next = 1
let f_deps = 2
let f_coeffs = 3

let fix_one = 65536L (* 1.0 in 16.16 *)
let fix_mul a b = Int64.shift_right (Int64.mul a b) 16

let make_list_layout degree = Array.make degree Event.Ptr
let make_coeff_layout degree = Array.make degree (Event.Scalar 8)

(* Build a bipartite graph: [n] E-nodes and [n] H-nodes, each depending on
   [degree] pseudo-random nodes of the other partition. *)
let build rt ~n ~degree =
  let mk_nodes () =
    Array.init n (fun _ ->
        let nd = Runtime.alloc rt node_layout in
        Runtime.write_int rt nd f_value (Int64.of_int (Runtime.random rt 65536));
        nd)
  in
  let e_nodes = mk_nodes () and h_nodes = mk_nodes () in
  let link nodes others =
    Array.iter
      (fun nd ->
        let deps = Runtime.alloc rt (make_list_layout degree) in
        let coeffs = Runtime.alloc rt (make_coeff_layout degree) in
        for i = 0 to degree - 1 do
          Runtime.write_ptr rt deps i (Some others.(Runtime.random rt n));
          (* coefficients in (0, 0.5) fixed-point *)
          Runtime.write_int rt coeffs i (Int64.of_int (Runtime.random rt 32768))
        done;
        Runtime.write_ptr rt nd f_deps (Some deps);
        Runtime.write_ptr rt nd f_coeffs (Some coeffs))
      nodes
  in
  link e_nodes h_nodes;
  link h_nodes e_nodes;
  (* Chain each partition into a list, as the Olden code walks lists. *)
  let chain nodes =
    Array.iteri
      (fun i nd -> if i + 1 < n then Runtime.write_ptr rt nd f_next (Some nodes.(i + 1)))
      nodes
  in
  chain e_nodes;
  chain h_nodes;
  (e_nodes.(0), h_nodes.(0))

let compute_nodes rt ~degree first =
  let rec walk = function
    | None -> ()
    | Some nd ->
        let deps = Option.get (Runtime.read_ptr rt nd f_deps) in
        let coeffs = Option.get (Runtime.read_ptr rt nd f_coeffs) in
        let v = ref (Runtime.read_int rt nd f_value) in
        for i = 0 to degree - 1 do
          let dep = Option.get (Runtime.read_ptr rt deps i) in
          let c = Runtime.read_int rt coeffs i in
          v := Int64.sub !v (fix_mul c (Runtime.read_int rt dep f_value));
          Runtime.compute rt 3
        done;
        Runtime.write_int rt nd f_value !v;
        walk (Runtime.read_ptr rt nd f_next)
  in
  walk (Some first)

(* [run rt ~n ~degree ~iters] returns the sum of E-node values after
   [iters] alternating E/H update sweeps. *)
let run rt ?(degree = 4) ?(iters = 4) ~n () =
  let e0, h0 = build rt ~n ~degree in
  for _ = 1 to iters do
    compute_nodes rt ~degree e0;
    compute_nodes rt ~degree h0
  done;
  let rec sum acc = function
    | None -> acc
    | Some nd -> sum (Int64.add acc (Runtime.read_int rt nd f_value)) (Runtime.read_ptr rt nd f_next)
  in
  Int64.logand (sum 0L (Some e0)) 0xFFFF_FFFF_FFFFL

let fix_one_exposed = fix_one
