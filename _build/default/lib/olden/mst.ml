(* Olden mst: minimum spanning tree of a dense graph whose adjacency is
   stored in per-vertex chained hash tables, computed with the classic
   Bentley blue-rule loop.  Paper parameters: mst 1024 0. *)

open Workload

(* vertex: { mindist; next vertex; hash buckets ptr } *)
let vertex_layout = [| Event.Scalar 8; Event.Ptr; Event.Ptr |]
let v_mindist = 0
let v_next = 1
let v_hash = 2

let n_buckets = 32

(* bucket array: 32 pointer slots *)
let buckets_layout = Array.make n_buckets Event.Ptr

(* hash entry: { key (vertex index); weight; next entry } *)
let entry_layout = [| Event.Scalar 8; Event.Scalar 8; Event.Ptr |]
let e_key = 0
let e_weight = 1
let e_next = 2

(* Deterministic edge weight between vertices i and j (symmetric), the
   Olden generator's "random" weights. *)
let weight i j n =
  let i, j = (min i j, max i j) in
  ((i * 3 + j * 7 + (j * j mod 31) + (i * j mod 17)) mod n) + 1

let hash_of_key k = k mod n_buckets

let hash_insert rt v ~key ~w =
  let buckets =
    match Runtime.read_ptr rt v v_hash with
    | Some b -> b
    | None ->
        let b = Runtime.alloc rt buckets_layout in
        Runtime.write_ptr rt v v_hash (Some b);
        b
  in
  let idx = hash_of_key key in
  let entry = Runtime.alloc rt entry_layout in
  Runtime.write_int rt entry e_key (Int64.of_int key);
  Runtime.write_int rt entry e_weight (Int64.of_int w);
  Runtime.write_ptr rt entry e_next (Runtime.read_ptr rt buckets idx);
  Runtime.write_ptr rt buckets idx (Some entry);
  Runtime.compute rt 4

let hash_lookup rt v ~key =
  match Runtime.read_ptr rt v v_hash with
  | None -> None
  | Some buckets ->
      let rec chase = function
        | None -> None
        | Some entry ->
            Runtime.compute rt 3;
            if Int64.to_int (Runtime.read_int rt entry e_key) = key then
              Some (Int64.to_int (Runtime.read_int rt entry e_weight))
            else chase (Runtime.read_ptr rt entry e_next)
      in
      chase (Runtime.read_ptr rt buckets (hash_of_key key))

(* Build [n] vertices; each vertex's hash table maps the index of every
   other vertex within [degree] hops (ring-structured, as in the Olden
   generator's AddEdges) to the edge weight.  The vertices live behind a
   heap-allocated vertex table (one large pointer array, as in the C
   original), so the MST scan's pointer loads come from a big object. *)
let make_graph rt ~n ~degree =
  let table = Runtime.alloc rt (Array.make n Event.Ptr) in
  let vertices =
    Array.init n (fun _ ->
        let v = Runtime.alloc rt vertex_layout in
        Runtime.write_int rt v v_mindist Int64.max_int;
        v)
  in
  Array.iteri (fun i v -> Runtime.write_ptr rt table i (Some v)) vertices;
  Array.iteri
    (fun i v -> if i + 1 < n then Runtime.write_ptr rt v v_next (Some vertices.(i + 1)))
    vertices;
  for i = 0 to n - 1 do
    for d = 1 to degree do
      let j = (i + d) mod n in
      hash_insert rt vertices.(i) ~key:j ~w:(weight i j n);
      hash_insert rt vertices.(j) ~key:i ~w:(weight i j n)
    done
  done;
  table

(* Prim/blue-rule: repeatedly scan the not-yet-inserted vertices, updating
   mindist against the vertex just inserted (one hash lookup each), and
   insert the closest. *)
let compute_mst rt table ~n =
  let in_tree = Array.make n false in
  in_tree.(0) <- true;
  let total = ref 0L in
  let last_inserted = ref 0 in
  for _step = 1 to n - 1 do
    let best = ref (-1) and best_dist = ref Int64.max_int in
    for j = 0 to n - 1 do
      if not in_tree.(j) then begin
        let vj = Option.get (Runtime.read_ptr rt table j) in
        (match hash_lookup rt vj ~key:!last_inserted with
        | Some w ->
            let cur = Runtime.read_int rt vj v_mindist in
            if Int64.compare (Int64.of_int w) cur < 0 then
              Runtime.write_int rt vj v_mindist (Int64.of_int w)
        | None -> ());
        let d = Runtime.read_int rt vj v_mindist in
        Runtime.compute rt 2;
        if Int64.compare d !best_dist < 0 then begin
          best_dist := d;
          best := j
        end
      end
    done;
    in_tree.(!best) <- true;
    last_inserted := !best;
    total := Int64.add !total !best_dist
  done;
  !total

(* [run rt ~n] returns the MST weight of the [n]-vertex graph. *)
let run rt ?(degree = 3) ~n () =
  let table = make_graph rt ~n ~degree in
  compute_mst rt table ~n

(* Reference MST weight computed natively (for the tests): same graph,
   plain Prim. *)
let reference ?(degree = 3) ~n () =
  let adj = Array.make_matrix n n 0 in
  for i = 0 to n - 1 do
    for d = 1 to degree do
      let j = (i + d) mod n in
      adj.(i).(j) <- weight i j n;
      adj.(j).(i) <- weight i j n
    done
  done;
  let in_tree = Array.make n false and dist = Array.make n max_int in
  in_tree.(0) <- true;
  let last = ref 0 and total = ref 0 in
  for _ = 1 to n - 1 do
    let best = ref (-1) and bd = ref max_int in
    for j = 0 to n - 1 do
      if not in_tree.(j) then begin
        if adj.(j).(!last) > 0 && adj.(j).(!last) < dist.(j) then dist.(j) <- adj.(j).(!last);
        if dist.(j) < !bd then begin
          bd := dist.(j);
          best := j
        end
      end
    done;
    in_tree.(!best) <- true;
    last := !best;
    total := !total + !bd
  done;
  Int64.of_int !total
