(* Olden bisort: bitonic sort over a perfect binary tree of random values,
   after Bilardi & Nicolau.  A faithful port of the Olden kernel: value
   swaps and subtree swaps driven by compare-exchange along mirrored tree
   paths.  Paper parameters: bisort 250000 0. *)

open Workload

let node_layout = [| Event.Scalar 8; Event.Ptr; Event.Ptr |]
let f_value = 0
let f_left = 1
let f_right = 2

let frame_layout = [| Event.Ptr; Event.Scalar 8 |]

type dir = Up | Down (* false/true in the C source *)

let flip = function Up -> Down | Down -> Up

(* Build a perfect tree holding [2^levels - 1] random values. *)
let rec build rt levels =
  if levels <= 0 then None
  else begin
    let n = Runtime.alloc rt node_layout in
    Runtime.write_int rt n f_value (Int64.of_int (Runtime.random rt 1_000_000));
    Runtime.write_ptr rt n f_left (build rt (levels - 1));
    Runtime.write_ptr rt n f_right (build rt (levels - 1));
    n |> Option.some
  end

let value rt n = Runtime.read_int rt n f_value
let set_value rt n v = Runtime.write_int rt n f_value v
let left rt n = Runtime.read_ptr rt n f_left
let right rt n = Runtime.read_ptr rt n f_right

let swap_value rt a b =
  let va = value rt a and vb = value rt b in
  set_value rt a vb;
  set_value rt b va

let swap_left rt a b =
  let la = left rt a and lb = left rt b in
  Runtime.write_ptr rt a f_left lb;
  Runtime.write_ptr rt b f_left la

let swap_right rt a b =
  let ra = right rt a and rb = right rt b in
  Runtime.write_ptr rt a f_right rb;
  Runtime.write_ptr rt b f_right ra

let xor_dir cond dir = match dir with Up -> cond | Down -> not cond

(* Bimerge from the Olden source: merges the bitonic sequence rooted at
   [root] (with [spr_val] as the separating value) into order [dir]. *)
let rec bimerge rt root spr_val dir =
  Runtime.with_frame rt frame_layout (fun _f ->
      let rightexchange = xor_dir (Int64.compare (value rt root) spr_val > 0) dir in
      let spr_val =
        if rightexchange then begin
          let tmp = value rt root in
          set_value rt root spr_val;
          tmp
        end
        else spr_val
      in
      let pl = ref (left rt root) and pr = ref (right rt root) in
      let continue_ = ref true in
      while !continue_ do
        match (!pl, !pr) with
        | Some l, Some r ->
            Runtime.compute rt 4;
            let elementexchange = xor_dir (Int64.compare (value rt l) (value rt r) > 0) dir in
            if rightexchange then
              if elementexchange then begin
                swap_value rt l r;
                swap_right rt l r;
                pl := left rt l;
                pr := left rt r
              end
              else begin
                pl := right rt l;
                pr := right rt r
              end
            else if elementexchange then begin
              swap_value rt l r;
              swap_left rt l r;
              pl := right rt l;
              pr := right rt r
            end
            else begin
              pl := left rt l;
              pr := left rt r
            end
        | _ -> continue_ := false
      done;
      match left rt root with
      | None -> spr_val
      | Some l ->
          let ls = bimerge rt l (value rt root) dir in
          set_value rt root ls;
          let rs =
            match right rt root with
            | Some r -> bimerge rt r spr_val dir
            | None -> spr_val
          in
          rs)

(* Bisort: recursively sort both halves in opposite directions, then merge
   the resulting bitonic sequence. *)
let rec bisort rt root spr_val dir =
  Runtime.with_frame rt frame_layout (fun _f ->
      match left rt root with
      | None ->
          if xor_dir (Int64.compare (value rt root) spr_val > 0) dir then begin
            let v = value rt root in
            set_value rt root spr_val;
            v
          end
          else spr_val
      | Some l ->
          let v = bisort rt l (value rt root) dir in
          set_value rt root v;
          let spr_val =
            match right rt root with
            | Some r -> bisort rt r spr_val (flip dir)
            | None -> spr_val
          in
          bimerge rt root spr_val dir)

(* Multiset checksum: the sum of all values including the separator — a
   sort must preserve it. *)
let rec tree_sum rt = function
  | None -> 0L
  | Some n ->
      Int64.add (value rt n) (Int64.add (tree_sum rt (left rt n)) (tree_sum rt (right rt n)))

(* In-order check that the separator chain is consistent: collect values
   and verify [bisort] produced a sequence sorted in direction [dir].
   Following the Olden layout, the sorted order is the tree's "inorder
   with root value in the middle" — we validate sortedness of the inorder
   sequence, which holds for the perfect trees we build. *)
let rec inorder rt acc = function
  | None -> acc
  | Some n ->
      let acc = inorder rt acc (left rt n) in
      let acc = value rt n :: acc in
      inorder rt acc (right rt n)

(* [run rt ~levels] builds a perfect tree of 2^levels - 1 random values,
   sorts ascending, and returns (checksum before, checksum after, sorted
   sequence check). *)
let run rt ~levels =
  let root = build rt levels in
  match root with
  | None -> (0L, 0L, true)
  | Some r ->
      let spr = Int64.of_int (Runtime.random rt 1_000_000) in
      let before = Int64.add (tree_sum rt root) spr in
      let spr' = bisort rt r spr Up in
      let after = Int64.add (tree_sum rt root) spr' in
      (* ascending order: the inorder sequence followed by the returned
         separator (the maximum). *)
      let seq = List.rev (inorder rt [] root) @ [ spr' ] in
      let rec sorted = function
        | a :: (b :: _ as rest) -> Int64.compare a b <= 0 && sorted rest
        | _ -> true
      in
      (before, after, sorted seq)
