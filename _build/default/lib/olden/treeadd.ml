(* Olden treeadd: build a balanced binary tree and sum it recursively.
   Paper parameters: treeadd 21 1 0 (2^21-node tree). *)

open Workload

(* node: { left; right; value } *)
let node_layout = [| Event.Ptr; Event.Ptr; Event.Scalar 8 |]
let f_left = 0
let f_right = 1
let f_value = 2

(* recursion frame: saved node pointer + partial sum *)
let frame_layout = [| Event.Ptr; Event.Scalar 8 |]

let rec build rt depth =
  if depth <= 0 then None
  else begin
    let n = Runtime.alloc rt node_layout in
    Runtime.write_int rt n f_value 1L;
    Runtime.write_ptr rt n f_left (build rt (depth - 1));
    Runtime.write_ptr rt n f_right (build rt (depth - 1));
    Runtime.compute rt 4;
    Some n
  end

let rec sum rt = function
  | None -> 0L
  | Some n ->
      Runtime.with_frame rt frame_layout (fun _f ->
          let l = sum rt (Runtime.read_ptr rt n f_left) in
          let r = sum rt (Runtime.read_ptr rt n f_right) in
          let v = Runtime.read_int rt n f_value in
          Runtime.compute rt 3;
          Int64.add v (Int64.add l r))

(* [run rt ~levels] returns the tree sum: 2^levels - 1. *)
let run rt ~levels =
  let root = build rt levels in
  sum rt root

let expected ~levels = Int64.sub (Int64.shift_left 1L levels) 1L
