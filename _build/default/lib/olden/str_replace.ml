(* Tiny string substitution helper for parameterizing embedded sources. *)

let replace_all s ~needle ~by =
  let buf = Buffer.create (String.length s) in
  let n = String.length needle in
  let rec go i =
    if i > String.length s - n then Buffer.add_substring buf s i (String.length s - i)
    else if String.sub s i n = needle then begin
      Buffer.add_string buf by;
      go (i + n)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf
