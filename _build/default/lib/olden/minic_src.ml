(* The four Section 8 Olden benchmarks as minic sources, compiled in the
   three pointer modes and executed on the simulated machine for the
   Figure 4 / Figure 5 reproduction.

   Each source brackets its build phase with phase_begin(0)/phase_end()
   and its computation phase with phase_begin(1)/phase_end(), giving the
   harness the allocation/computation split of Figure 4.  The "@PARAM@"
   placeholder is substituted by the harness ([instantiate]). *)

let instantiate ?(iters = 1) src ~param =
  let src = Str_replace.replace_all src ~needle:"@PARAM@" ~by:(string_of_int param) in
  Str_replace.replace_all src ~needle:"@ITERS@" ~by:(string_of_int iters)

(* --- treeadd: build a 2^levels-node binary tree, then sum it ------------- *)

let treeadd =
  {|
struct tree {
  struct tree *left;
  struct tree *right;
  int value;
};

struct tree *build(int depth) {
  if (depth <= 0) return NULL;
  struct tree *n = (struct tree*) malloc(sizeof(struct tree));
  n->value = 1;
  n->left = build(depth - 1);
  n->right = build(depth - 1);
  return n;
}

int sum(struct tree *t) {
  if (t == NULL) return 0;
  return t->value + sum(t->left) + sum(t->right);
}

int main(void) {
  phase_begin(0);
  struct tree *root = build(@PARAM@);
  phase_end();
  int total = 0;
  int iter = 0;
  phase_begin(1);
  while (iter < @ITERS@) {
    total = sum(root);
    iter = iter + 1;
  }
  phase_end();
  print_int(total);
  return 0;
}
|}

(* --- bisort: bitonic sort over a perfect tree of random values ------------ *)

let bisort =
  {|
struct node {
  int value;
  struct node *left;
  struct node *right;
};

struct node *build(int levels) {
  if (levels <= 0) return NULL;
  struct node *n = (struct node*) malloc(sizeof(struct node));
  n->value = random(1000000);
  n->left = build(levels - 1);
  n->right = build(levels - 1);
  return n;
}

int bimerge(struct node *root, int spr_val, int dir) {
  int rv = root->value;
  int rightexchange = (rv > spr_val) != dir;
  if (rightexchange) {
    root->value = spr_val;
    spr_val = rv;
  }
  struct node *pl = root->left;
  struct node *pr = root->right;
  while (pl != NULL) {
    int elementexchange = (pl->value > pr->value) != dir;
    if (rightexchange) {
      if (elementexchange) {
        int tmp = pl->value;
        pl->value = pr->value;
        pr->value = tmp;
        struct node *tr = pl->right;
        pl->right = pr->right;
        pr->right = tr;
        pl = pl->left;
        pr = pr->left;
      } else {
        pl = pl->right;
        pr = pr->right;
      }
    } else {
      if (elementexchange) {
        int tmp = pl->value;
        pl->value = pr->value;
        pr->value = tmp;
        struct node *tl = pl->left;
        pl->left = pr->left;
        pr->left = tl;
        pl = pl->right;
        pr = pr->right;
      } else {
        pl = pl->left;
        pr = pr->left;
      }
    }
  }
  if (root->left != NULL) {
    int ls = bimerge(root->left, root->value, dir);
    root->value = ls;
    return bimerge(root->right, spr_val, dir);
  }
  return spr_val;
}

int bisort(struct node *root, int spr_val, int dir) {
  if (root->left == NULL) {
    if ((root->value > spr_val) != dir) {
      int v = root->value;
      root->value = spr_val;
      return v;
    }
    return spr_val;
  }
  root->value = bisort(root->left, root->value, dir);
  spr_val = bisort(root->right, spr_val, 1 - dir);
  return bimerge(root, spr_val, dir);
}

int tree_sum(struct node *t) {
  if (t == NULL) return 0;
  return t->value + tree_sum(t->left) + tree_sum(t->right);
}

int main(void) {
  phase_begin(0);
  struct node *root = build(@PARAM@);
  phase_end();
  int spr = random(1000000);
  int before = tree_sum(root) + spr;
  int spr2 = spr;
  int iter = 0;
  phase_begin(1);
  while (iter < @ITERS@) {
    spr2 = bisort(root, spr2, 0);
    iter = iter + 1;
  }
  phase_end();
  int after = tree_sum(root) + spr2;
  print_int(before - after);   // 0 iff the multiset was preserved
  print_int(after);
  return 0;
}
|}

(* --- perimeter: quadtree perimeter with parent-pointer neighbor finding --- *)

let perimeter =
  {|
struct qt {
  struct qt *nw;
  struct qt *ne;
  struct qt *sw;
  struct qt *se;
  struct qt *parent;
  int color;      // 0 white, 1 black, 2 grey
  int childtype;  // 0 nw, 1 ne, 2 sw, 3 se
};

int g_size;
int g_center;
int g_radius;

// directions: 0 north, 1 south, 2 east, 3 west

int adj(int d, int q) {
  if (d == 0) { if (q == 0 || q == 1) return 1; return 0; }
  if (d == 1) { if (q == 2 || q == 3) return 1; return 0; }
  if (d == 2) { if (q == 1 || q == 3) return 1; return 0; }
  if (q == 0 || q == 2) return 1;
  return 0;
}

int reflect(int d, int q) {
  if (d == 0 || d == 1) {
    if (q == 0) return 2;
    if (q == 1) return 3;
    if (q == 2) return 0;
    return 1;
  }
  if (q == 0) return 1;
  if (q == 1) return 0;
  if (q == 2) return 3;
  return 2;
}

int corner_in(int x, int y) {
  int dx = x - g_center;
  int dy = y - g_center;
  if (dx * dx + dy * dy <= g_radius * g_radius) return 1;
  return 0;
}

// 0 white, 1 black, 2 grey
int classify(int x, int y, int size) {
  int c1 = corner_in(x, y);
  int c2 = corner_in(x + size, y);
  int c3 = corner_in(x, y + size);
  int c4 = corner_in(x + size, y + size);
  int total = c1 + c2 + c3 + c4;
  if (total == 4) return 1;
  if (total > 0) return 2;
  int nx = g_center;
  if (nx < x) nx = x;
  if (nx > x + size) nx = x + size;
  int ny = g_center;
  if (ny < y) ny = y;
  if (ny > y + size) ny = y + size;
  int dx = nx - g_center;
  int dy = ny - g_center;
  if (dx * dx + dy * dy <= g_radius * g_radius) return 2;
  return 0;
}

struct qt *child(struct qt *n, int q) {
  if (q == 0) return n->nw;
  if (q == 1) return n->ne;
  if (q == 2) return n->sw;
  return n->se;
}

struct qt *build(int x, int y, int size, int depth, struct qt *parent, int ct) {
  struct qt *n = (struct qt*) malloc(sizeof(struct qt));
  n->parent = parent;
  n->childtype = ct;
  n->nw = NULL; n->ne = NULL; n->sw = NULL; n->se = NULL;
  int cls = classify(x, y, size);
  if (cls == 2 && depth == 0) {
    n->color = 1;
    return n;
  }
  n->color = cls;
  if (cls == 2) {
    int h = size / 2;
    n->nw = build(x, y + h, h, depth - 1, n, 0);
    n->ne = build(x + h, y + h, h, depth - 1, n, 1);
    n->sw = build(x, y, h, depth - 1, n, 2);
    n->se = build(x + h, y, h, depth - 1, n, 3);
  }
  return n;
}

struct qt *gtequal_adj_neighbor(struct qt *n, int d) {
  struct qt *q;
  if (n->parent != NULL && adj(d, n->childtype)) {
    q = gtequal_adj_neighbor(n->parent, d);
  } else {
    q = n->parent;
  }
  if (q != NULL && q->color == 2) {
    return child(q, reflect(d, n->childtype));
  }
  return q;
}

int sum_adjacent(struct qt *n, int d, int size) {
  if (n->color == 2) {
    int q1; int q2;
    if (d == 0) { q1 = 2; q2 = 3; }
    else { if (d == 1) { q1 = 0; q2 = 1; }
    else { if (d == 2) { q1 = 0; q2 = 2; }
    else { q1 = 1; q2 = 3; } } }
    return sum_adjacent(child(n, q1), d, size / 2)
         + sum_adjacent(child(n, q2), d, size / 2);
  }
  if (n->color == 0) return size;
  return 0;
}

int perimeter(struct qt *n, int size) {
  if (n->color == 2) {
    int total = 0;
    total = total + perimeter(n->nw, size / 2);
    total = total + perimeter(n->ne, size / 2);
    total = total + perimeter(n->sw, size / 2);
    total = total + perimeter(n->se, size / 2);
    return total;
  }
  if (n->color == 1) {
    int total = 0;
    int d = 0;
    while (d < 4) {
      struct qt *nb = gtequal_adj_neighbor(n, d);
      if (nb == NULL) {
        total = total + size;
      } else {
        if (nb->color == 0) total = total + size;
        if (nb->color == 2) total = total + sum_adjacent(nb, d, size);
      }
      d = d + 1;
    }
    return total;
  }
  return 0;
}

int main(void) {
  g_size = 1 << @PARAM@;
  g_center = g_size / 2;
  g_radius = g_size * 4 / 10;
  phase_begin(0);
  struct qt *root = build(0, 0, g_size, @PARAM@, NULL, 0 - 1);
  phase_end();
  phase_begin(1);
  int p = perimeter(root, g_size);
  phase_end();
  print_int(p);
  return 0;
}
|}

(* --- mst: blue-rule MST over hash-table adjacency ------------------------- *)

let mst =
  {|
struct entry {
  int key;
  int weight;
  struct entry *next;
};

struct vertex {
  int mindist;
  struct entry **buckets;   // 32 chained buckets
};

int g_n;

int weight_of(int i, int j) {
  if (i > j) { int t = i; i = j; j = t; }
  return (i * 3 + j * 7 + ((j * j) % 31) + ((i * j) % 17)) % g_n + 1;
}

void hash_insert(struct vertex *v, int key, int w) {
  struct entry *e = (struct entry*) malloc(sizeof(struct entry));
  e->key = key;
  e->weight = w;
  int idx = key % 32;
  e->next = v->buckets[idx];
  v->buckets[idx] = e;
}

int hash_lookup(struct vertex *v, int key) {
  struct entry *e = v->buckets[key % 32];
  while (e != NULL) {
    if (e->key == key) return e->weight;
    e = e->next;
  }
  return 0 - 1;
}

struct vertex **make_graph(int n, int degree) {
  struct vertex **table = (struct vertex**) malloc(n * sizeof(struct vertex*));
  int i = 0;
  while (i < n) {
    struct vertex *v = (struct vertex*) malloc(sizeof(struct vertex));
    v->mindist = 1 << 30;
    v->buckets = (struct entry**) malloc(32 * sizeof(struct entry*));
    int b = 0;
    while (b < 32) { v->buckets[b] = NULL; b = b + 1; }
    table[i] = v;
    i = i + 1;
  }
  i = 0;
  while (i < n) {
    int d = 1;
    while (d <= degree) {
      int j = (i + d) % n;
      hash_insert(table[i], j, weight_of(i, j));
      hash_insert(table[j], i, weight_of(i, j));
      d = d + 1;
    }
    i = i + 1;
  }
  return table;
}

int compute_mst(struct vertex **table, int n, int *in_tree) {
  in_tree[0] = 1;
  int total = 0;
  int last = 0;
  int step = 1;
  while (step < n) {
    int best = 0 - 1;
    int best_dist = 1 << 30;
    int j = 0;
    while (j < n) {
      if (in_tree[j] == 0) {
        struct vertex *vj = table[j];
        int w = hash_lookup(vj, last);
        if (w > 0 && w < vj->mindist) vj->mindist = w;
        if (vj->mindist < best_dist) {
          best_dist = vj->mindist;
          best = j;
        }
      }
      j = j + 1;
    }
    in_tree[best] = 1;
    last = best;
    total = total + best_dist;
    step = step + 1;
  }
  return total;
}

int main(void) {
  g_n = @PARAM@;
  phase_begin(0);
  struct vertex **table = make_graph(g_n, 3);
  int *in_tree = (int*) malloc(g_n * sizeof(int));
  int i = 0;
  while (i < g_n) { in_tree[i] = 0; i = i + 1; }
  phase_end();
  phase_begin(1);
  int total = compute_mst(table, g_n, in_tree);
  phase_end();
  print_int(total);
  return 0;
}
|}

let all = [ ("treeadd", treeadd); ("bisort", bisort); ("perimeter", perimeter); ("mst", mst) ]

(* --- em3d: electromagnetic propagation on a bipartite graph ---------------- *)

let em3d =
  {|
struct node {
  int value;
  struct node *next;
  struct node **deps;
  int *coeffs;
};

int g_n;

struct node *make_nodes(int n) {
  struct node *head = NULL;
  int i = 0;
  while (i < n) {
    struct node *nd = (struct node*) malloc(sizeof(struct node));
    nd->value = random(65536);
    nd->next = head;
    nd->deps = NULL;
    nd->coeffs = NULL;
    head = nd;
    i = i + 1;
  }
  return head;
}

struct node *pick(struct node *list, int k) {
  struct node *p = list;
  while (k > 0) {
    p = p->next;
    if (p == NULL) p = list;
    k = k - 1;
  }
  return p;
}

void link_nodes(struct node *from, struct node *others, int degree) {
  struct node *p = from;
  while (p != NULL) {
    p->deps = (struct node**) malloc(degree * sizeof(struct node*));
    p->coeffs = (int*) malloc(degree * sizeof(int));
    int i = 0;
    while (i < degree) {
      p->deps[i] = pick(others, random(g_n));
      p->coeffs[i] = random(32768);
      i = i + 1;
    }
    p = p->next;
  }
}

void compute(struct node *list, int degree) {
  struct node *p = list;
  while (p != NULL) {
    int v = p->value;
    int i = 0;
    while (i < degree) {
      struct node *d = p->deps[i];
      v = v - ((p->coeffs[i] * d->value) >> 16);
      i = i + 1;
    }
    p->value = v;
    p = p->next;
  }
}

int main(void) {
  g_n = @PARAM@;
  int degree = 4;
  phase_begin(0);
  struct node *e_nodes = make_nodes(g_n);
  struct node *h_nodes = make_nodes(g_n);
  link_nodes(e_nodes, h_nodes, degree);
  link_nodes(h_nodes, e_nodes, degree);
  phase_end();
  phase_begin(1);
  int iter = 0;
  while (iter < @ITERS@) {
    compute(e_nodes, degree);
    compute(h_nodes, degree);
    iter = iter + 1;
  }
  phase_end();
  int total = 0;
  struct node *p = e_nodes;
  while (p != NULL) { total = total + p->value; p = p->next; }
  print_int(total & 0xFFFFFFFF);
  return 0;
}
|}

(* --- health: hierarchical hospital simulation (allocates AND frees) -------- *)

let health =
  {|
struct village {
  struct village *c0;
  struct village *c1;
  struct village *c2;
  struct village *c3;
  struct village *parent;
  struct patient *waiting;
  int treated;
};

struct patient {
  int time;
  int hops;
  struct patient *next;
};

int g_treated;

struct village *build(int depth, struct village *parent) {
  struct village *v = (struct village*) malloc(sizeof(struct village));
  v->parent = parent;
  v->waiting = NULL;
  v->treated = 0;
  v->c0 = NULL; v->c1 = NULL; v->c2 = NULL; v->c3 = NULL;
  if (depth > 0) {
    v->c0 = build(depth - 1, v);
    v->c1 = build(depth - 1, v);
    v->c2 = build(depth - 1, v);
    v->c3 = build(depth - 1, v);
  }
  return v;
}

void push(struct village *v, struct patient *p) {
  p->next = v->waiting;
  v->waiting = p;
}

void step(struct village *v, int depth) {
  if (v->c0 != NULL) {
    step(v->c0, depth - 1);
    step(v->c1, depth - 1);
    step(v->c2, depth - 1);
    step(v->c3, depth - 1);
  }
  struct patient *list = v->waiting;
  v->waiting = NULL;
  while (list != NULL) {
    struct patient *next = list->next;
    if (list->time <= 1) {
      g_treated = g_treated + 1;
      v->treated = v->treated + 1;
      free(list);
    } else {
      list->time = list->time - 1;
      if (random(10) < 2 && v->parent != NULL) {
        list->hops = list->hops + 1;
        push(v->parent, list);
      } else {
        push(v, list);
      }
    }
    list = next;
  }
  if (depth == 0 && random(3) == 0) {
    struct patient *p = (struct patient*) malloc(sizeof(struct patient));
    p->time = 1 + random(4);
    p->hops = 0;
    push(v, p);
  }
}

int main(void) {
  g_treated = 0;
  phase_begin(0);
  struct village *root = build(@PARAM@, NULL);
  phase_end();
  phase_begin(1);
  int s = 0;
  while (s < @ITERS@) {
    step(root, @PARAM@);
    s = s + 1;
  }
  phase_end();
  print_int(g_treated);
  return 0;
}
|}

let extended = [ ("em3d", em3d); ("health", health) ]
let all = all @ extended
