(* Olden health: discrete-event simulation of a hierarchical health-care
   system.  A 4-ary tree of villages; patients are generated at leaf
   villages, wait in linked lists, are treated or referred up the tree.
   The interesting trace property: continuous allocation *and freeing* of
   small list cells, unlike the build-once benchmarks. *)

open Workload

(* village: { children x4; parent; waiting list head; treated count } *)
let village_layout =
  [| Event.Ptr; Event.Ptr; Event.Ptr; Event.Ptr; Event.Ptr; Event.Ptr; Event.Scalar 8 |]

let v_child i = i
let v_parent = 4
let v_waiting = 5
let v_treated = 6

(* patient cell: { remaining treatment time; hops; next } *)
let patient_layout = [| Event.Scalar 8; Event.Scalar 8; Event.Ptr |]
let p_time = 0
let p_hops = 1
let p_next = 2

let rec build rt depth parent =
  let v = Runtime.alloc rt village_layout in
  Runtime.write_ptr rt v v_parent parent;
  if depth > 0 then
    for i = 0 to 3 do
      Runtime.write_ptr rt v (v_child i) (Some (build rt (depth - 1) (Some v)))
    done;
  v

let push_patient rt v p =
  Runtime.write_ptr rt p p_next (Runtime.read_ptr rt v v_waiting);
  Runtime.write_ptr rt v v_waiting (Some p)

(* One timestep over the subtree: treat the waiting patients (decrement
   their remaining time; finished ones are freed and counted; unlucky ones
   are referred to the parent), then maybe admit a new patient at leaves. *)
let rec step rt v ~depth ~treated =
  for i = 0 to 3 do
    match Runtime.read_ptr rt v (v_child i) with
    | Some c -> step rt c ~depth:(depth - 1) ~treated
    | None -> ()
  done;
  (* Process this village's waiting list. *)
  let rec process = function
    | None -> ()
    | Some p ->
        let next = Runtime.read_ptr rt p p_next in
        let t = Runtime.read_int rt p p_time in
        Runtime.compute rt 3;
        if Int64.compare t 1L <= 0 then begin
          (* treated: free the cell *)
          incr treated;
          Runtime.write_int rt v v_treated
            (Int64.add (Runtime.read_int rt v v_treated) 1L);
          Runtime.free rt p
        end
        else if Runtime.random rt 10 < 2 then begin
          (* referred up the hierarchy *)
          Runtime.write_int rt p p_time (Int64.sub t 1L);
          Runtime.write_int rt p p_hops (Int64.add (Runtime.read_int rt p p_hops) 1L);
          match Runtime.read_ptr rt v v_parent with
          | Some parent -> push_patient rt parent p
          | None -> push_patient rt v p
        end
        else begin
          Runtime.write_int rt p p_time (Int64.sub t 1L);
          push_patient rt v p
        end;
        process next
  in
  let waiting = Runtime.read_ptr rt v v_waiting in
  Runtime.write_ptr rt v v_waiting None;
  process waiting;
  (* Leaves admit a new patient with probability 1/3. *)
  if depth = 0 && Runtime.random rt 3 = 0 then begin
    let p = Runtime.alloc rt patient_layout in
    Runtime.write_int rt p p_time (Int64.of_int (1 + Runtime.random rt 4));
    push_patient rt v p
  end

(* [run rt ~levels ~steps] returns the number of treated patients. *)
let run rt ~levels ~steps =
  let root = build rt levels None in
  let treated = ref 0 in
  for _ = 1 to steps do
    step rt root ~depth:levels ~treated
  done;
  Int64.of_int !treated
