(* Olden perimeter: compute the perimeter of a region represented as a
   quadtree (Samet's algorithm), using parent pointers for neighbor
   finding.  The region is a disc, as in the Olden generator.  Paper
   parameters: perimeter 12 0 (depth-12 tree). *)

open Workload

(* node: { nw; ne; sw; se; parent; color; childtype } *)
let node_layout =
  [| Event.Ptr; Event.Ptr; Event.Ptr; Event.Ptr; Event.Ptr; Event.Scalar 4; Event.Scalar 4 |]

let f_child q = q (* 0 = nw, 1 = ne, 2 = sw, 3 = se *)
let f_parent = 4
let f_color = 5
let f_childtype = 6

let white = 0L
let black = 1L
let grey = 2L

type dir = North | South | East | West

let nw = 0
let ne = 1
let sw = 2
let se = 3

(* Is quadrant [q] adjacent to side [d] of its parent? *)
let adj d q =
  match d with
  | North -> q = nw || q = ne
  | South -> q = sw || q = se
  | East -> q = ne || q = se
  | West -> q = nw || q = sw

(* Mirror quadrant [q] across the axis of side [d]. *)
let reflect d q =
  match d with
  | North | South -> ( match q with 0 -> 2 | 1 -> 3 | 2 -> 0 | _ -> 1)
  | East | West -> ( match q with 0 -> 1 | 1 -> 0 | 2 -> 3 | _ -> 2)

(* --- tree construction -------------------------------------------------- *)

(* Classify the square with corner (x, y) and side [size] against the disc
   of radius [r] centred on the image centre (c, c). *)
let classify ~c ~r x y size =
  let corner_in cx cy =
    let dx = cx - c and dy = cy - c in
    (dx * dx) + (dy * dy) <= r * r
  in
  let corners =
    [ corner_in x y; corner_in (x + size) y; corner_in x (y + size);
      corner_in (x + size) (y + size) ]
  in
  if List.for_all Fun.id corners then `Black
  else if List.exists Fun.id corners then `Grey
  else begin
    (* All corners outside; the disc may still poke into the square. *)
    let clamp v lo hi = max lo (min v hi) in
    let nx = clamp c x (x + size) and ny = clamp c y (y + size) in
    let dx = nx - c and dy = ny - c in
    if (dx * dx) + (dy * dy) <= r * r then `Grey else `White
  end

let rec build rt ~c ~r x y size depth parent childtype =
  let n = Runtime.alloc rt node_layout in
  Runtime.write_ptr rt n f_parent parent;
  Runtime.write_int rt n f_childtype (Int64.of_int childtype);
  (match classify ~c ~r x y size with
  | `Black -> Runtime.write_int rt n f_color black
  | `White -> Runtime.write_int rt n f_color white
  | `Grey ->
      if depth = 0 then
        (* Leaf granularity: a partially covered cell counts as black,
           matching the Olden rasterisation. *)
        Runtime.write_int rt n f_color black
      else begin
        Runtime.write_int rt n f_color grey;
        let h = size / 2 in
        let child q cx cy =
          Runtime.write_ptr rt n (f_child q)
            (Some (build rt ~c ~r cx cy h (depth - 1) (Some n) q))
        in
        child nw x (y + h);
        child ne (x + h) (y + h);
        child sw x y;
        child se (x + h) y
      end);
  Runtime.compute rt 6;
  n

let color rt n = Runtime.read_int rt n f_color
let child rt n q = Runtime.read_ptr rt n (f_child q)

(* --- Samet neighbor finding --------------------------------------------- *)

let rec gtequal_adj_neighbor rt n d =
  let parent = Runtime.read_ptr rt n f_parent in
  let ct = Int64.to_int (Runtime.read_int rt n f_childtype) in
  Runtime.compute rt 3;
  let q =
    match parent with
    | Some p when adj d ct -> gtequal_adj_neighbor rt p d
    | other -> other
  in
  match q with
  | Some qn when Int64.equal (color rt qn) grey -> child rt qn (reflect d ct)
  | other -> other

(* Total length of the [d]-side border of [n]'s subtree that is white, at
   this granularity: counts contributions of smaller neighbors. *)
let rec sum_adjacent rt n d size =
  if Int64.equal (color rt n) grey then begin
    let q1, q2 =
      match d with
      | North -> (sw, se) (* children adjacent to our south side face the caller's north *)
      | South -> (nw, ne)
      | East -> (nw, sw)
      | West -> (ne, se)
    in
    let sub q =
      match child rt n q with Some ch -> sum_adjacent rt ch d (size / 2) | None -> 0
    in
    Runtime.compute rt 2;
    sub q1 + sub q2
  end
  else if Int64.equal (color rt n) white then size
  else 0

let rec perimeter rt n size =
  let col = color rt n in
  Runtime.compute rt 2;
  if Int64.equal col grey then
    List.fold_left
      (fun acc q ->
        match child rt n q with
        | Some ch -> acc + perimeter rt ch (size / 2)
        | None -> acc)
      0 [ nw; ne; sw; se ]
  else if Int64.equal col black then
    List.fold_left
      (fun acc d ->
        match gtequal_adj_neighbor rt n d with
        | None -> acc + size (* image border *)
        | Some nb ->
            let c = color rt nb in
            if Int64.equal c white then acc + size
            else if Int64.equal c grey then acc + sum_adjacent rt nb d size
            else acc)
      0 [ North; South; East; West ]
  else 0

(* [run rt ~levels] builds a depth-[levels] quadtree over a 2^levels-pixel
   image containing a centred disc and returns its perimeter in pixels. *)
let run rt ~levels =
  let size = 1 lsl levels in
  let c = size / 2 and r = size * 4 / 10 in
  let root = build rt ~c ~r 0 0 size levels None (-1) in
  perimeter rt root size

(* Rasterise the tree (for the brute-force cross-check in the tests). *)
let rasterize rt root ~levels =
  let size = 1 lsl levels in
  let grid = Array.make_matrix size size false in
  let rec go n x y s =
    let col = color rt n in
    if Int64.equal col black then
      for i = x to x + s - 1 do
        for j = y to y + s - 1 do
          grid.(i).(j) <- true
        done
      done
    else if Int64.equal col grey then begin
      let h = s / 2 in
      let sub q cx cy = match child rt n q with Some ch -> go ch cx cy h | None -> () in
      sub nw x (y + h);
      sub ne (x + h) (y + h);
      sub sw x y;
      sub se (x + h) y
    end
  in
  go root 0 0 size;
  grid
