lib/olden/health.ml: Event Int64 Runtime Workload
