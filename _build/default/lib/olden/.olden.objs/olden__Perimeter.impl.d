lib/olden/perimeter.ml: Array Event Fun Int64 List Runtime Workload
