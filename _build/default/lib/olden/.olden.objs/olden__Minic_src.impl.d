lib/olden/minic_src.ml: Str_replace
