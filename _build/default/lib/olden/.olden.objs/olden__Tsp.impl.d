lib/olden/tsp.ml: Event Int64 List Option Runtime Workload
