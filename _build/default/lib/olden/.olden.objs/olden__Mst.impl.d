lib/olden/mst.ml: Array Event Int64 Option Runtime Workload
