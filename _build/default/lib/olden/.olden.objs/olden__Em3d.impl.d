lib/olden/em3d.ml: Array Event Int64 Option Runtime Workload
