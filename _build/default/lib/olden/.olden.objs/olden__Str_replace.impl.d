lib/olden/str_replace.ml: Buffer String
