lib/olden/power.ml: Event Int64 List Runtime Workload
