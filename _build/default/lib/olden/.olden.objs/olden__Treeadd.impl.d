lib/olden/treeadd.ml: Event Int64 Runtime Workload
