lib/olden/bisort.ml: Event Int64 List Option Runtime Workload
