(* The BERI instruction set: a 64-bit MIPS IV subset, plus the CHERI
   capability extensions of Table 1 and the Section 11 experimental
   domain-crossing instructions.

   [t] is the decoded form manipulated by the assembler, disassembler and
   interpreter; [Encode]/[Decode] (separate modules) map it to and from the
   32-bit binary encoding documented in docs/ISA.md. *)

type reg = int (* general-purpose register index, 0..31; $0 is hardwired *)
type creg = int (* capability register index, 0..31; C0 is the implicit data capability *)

(* Width of a scalar memory access. *)
type width = B | H | W | D

let width_bytes = function B -> 1 | H -> 2 | W -> 4 | D -> 8

(* Instrumentation markers (reserved opcode space): the simulator's analogue
   of the paper's offline trace annotation — they let compiled programs mark
   allocation events and benchmark phases without perturbing the metrics
   (markers cost zero cycles and are excluded from instruction counts). *)
type marker =
  | M_alloc (* rd = size requested, rt = returned address *)
  | M_free (* rt = address freed *)
  | M_phase_begin (* rd = phase id *)
  | M_phase_end

type t =
  (* --- arithmetic / logic (register) --- *)
  | Add of reg * reg * reg (* 32-bit signed add, traps on overflow *)
  | Addu of reg * reg * reg
  | Dadd of reg * reg * reg
  | Daddu of reg * reg * reg
  | Sub of reg * reg * reg
  | Subu of reg * reg * reg
  | Dsubu of reg * reg * reg
  | And of reg * reg * reg
  | Or of reg * reg * reg
  | Xor of reg * reg * reg
  | Nor of reg * reg * reg
  | Slt of reg * reg * reg
  | Sltu of reg * reg * reg
  (* --- arithmetic / logic (immediate) --- *)
  | Addiu of reg * reg * int
  | Daddiu of reg * reg * int
  | Andi of reg * reg * int
  | Ori of reg * reg * int
  | Xori of reg * reg * int
  | Slti of reg * reg * int
  | Sltiu of reg * reg * int
  | Lui of reg * int
  (* --- shifts --- *)
  | Sll of reg * reg * int
  | Srl of reg * reg * int
  | Sra of reg * reg * int
  | Dsll of reg * reg * int
  | Dsrl of reg * reg * int
  | Dsra of reg * reg * int
  | Dsll32 of reg * reg * int
  | Dsrl32 of reg * reg * int
  | Sllv of reg * reg * reg
  | Srlv of reg * reg * reg
  | Srav of reg * reg * reg
  | Dsllv of reg * reg * reg
  | Dsrlv of reg * reg * reg
  | Dsrav of reg * reg * reg
  (* --- multiply / divide --- *)
  | Mult of reg * reg
  | Multu of reg * reg
  | Dmult of reg * reg
  | Dmultu of reg * reg
  | Div of reg * reg
  | Divu of reg * reg
  | Ddiv of reg * reg
  | Ddivu of reg * reg
  | Mfhi of reg
  | Mflo of reg
  | Mthi of reg
  | Mtlo of reg
  (* --- loads / stores (legacy, implicitly offset via C0: Section 4.1) --- *)
  | Load of width * bool * reg * reg * int (* width, unsigned?, rt, base, offset *)
  | Store of width * reg * reg * int
  | Lld of reg * reg * int (* load linked doubleword *)
  | Scd of reg * reg * int (* store conditional doubleword *)
  (* --- control flow --- *)
  | J of int (* 26-bit region target (word index) *)
  | Jal of int
  | Jr of reg
  | Jalr of reg * reg (* rd, rs *)
  | Beq of reg * reg * int (* signed 16-bit word offset *)
  | Bne of reg * reg * int
  | Blez of reg * int
  | Bgtz of reg * int
  | Bltz of reg * int
  | Bgez of reg * int
  (* --- system --- *)
  | Syscall
  | Break
  | Eret
  | Mfc0 of reg * int (* rt, cp0 register *)
  | Mtc0 of reg * int
  | Trace of marker * reg * reg
  (* --- CHERI: capability inspection (Table 1) --- *)
  | CGetBase of reg * creg
  | CGetLen of reg * creg
  | CGetTag of reg * creg
  | CGetPerm of reg * creg
  | CGetPCC of reg * creg (* move PC to rd and PCC to cd *)
  | CGetCause of reg (* capability cause register, for handlers *)
  (* --- CHERI: capability manipulation (monotonic) --- *)
  | CIncBase of creg * creg * reg
  | CSetLen of creg * creg * reg
  | CClearTag of creg * creg
  | CAndPerm of creg * creg * reg
  | CMove of creg * creg (* raw 257-bit register copy *)
  (* --- CHERI: pointer interoperation --- *)
  | CToPtr of reg * creg * creg
  | CFromPtr of creg * creg * reg
  (* --- CHERI: tag branches --- *)
  | CBTU of creg * int
  | CBTS of creg * int
  (* --- CHERI: memory (capability-relative) --- *)
  | CLC of creg * creg * reg * int (* cd, cb, rt, imm: load capability *)
  | CSC of creg * creg * reg * int
  | CLoad of width * bool * reg * creg * reg * int (* rd, cb, rt, imm *)
  | CStore of width * reg * creg * reg * int
  | CLLD of reg * creg (* load linked via capability *)
  | CSCD of reg * reg * creg (* rd (success), rs (value), cb *)
  (* --- CHERI: control flow --- *)
  | CJR of creg
  | CJALR of creg * creg (* cd (link), cb (target) *)
  (* --- CHERI: sealing and domain crossing (Section 11 extensions) --- *)
  | CSeal of creg * creg * creg (* cd, cs, ct (authority) *)
  | CUnseal of creg * creg * creg
  | CCall of creg * creg (* code capability, data capability: traps *)
  | CReturn (* traps *)

let nop = Sll (0, 0, 0)

(* Register names for the disassembler and assembler. *)
let reg_names =
  [| "zero"; "at"; "v0"; "v1"; "a0"; "a1"; "a2"; "a3";
     "a4"; "a5"; "a6"; "a7"; "t0"; "t1"; "t2"; "t3";
     "s0"; "s1"; "s2"; "s3"; "s4"; "s5"; "s6"; "s7";
     "t8"; "t9"; "k0"; "k1"; "gp"; "sp"; "fp"; "ra" |]

let pp_reg ppf r = Fmt.pf ppf "$%s" reg_names.(r)
let pp_creg ppf r = Fmt.pf ppf "$c%d" r

let width_letter = function B -> "b" | H -> "h" | W -> "w" | D -> "d"

let marker_name = function
  | M_alloc -> "alloc"
  | M_free -> "free"
  | M_phase_begin -> "phase_begin"
  | M_phase_end -> "phase_end"

let pp ppf insn =
  let r = pp_reg and c = pp_creg in
  let rrr m a b cc = Fmt.pf ppf "%s %a, %a, %a" m r a r b r cc in
  let rri m a b i = Fmt.pf ppf "%s %a, %a, %d" m r a r b i in
  match insn with
  | Add (d, s, t) -> rrr "add" d s t
  | Addu (d, s, t) -> rrr "addu" d s t
  | Dadd (d, s, t) -> rrr "dadd" d s t
  | Daddu (d, s, t) -> rrr "daddu" d s t
  | Sub (d, s, t) -> rrr "sub" d s t
  | Subu (d, s, t) -> rrr "subu" d s t
  | Dsubu (d, s, t) -> rrr "dsubu" d s t
  | And (d, s, t) -> rrr "and" d s t
  | Or (d, s, t) -> rrr "or" d s t
  | Xor (d, s, t) -> rrr "xor" d s t
  | Nor (d, s, t) -> rrr "nor" d s t
  | Slt (d, s, t) -> rrr "slt" d s t
  | Sltu (d, s, t) -> rrr "sltu" d s t
  | Addiu (t, s, i) -> rri "addiu" t s i
  | Daddiu (t, s, i) -> rri "daddiu" t s i
  | Andi (t, s, i) -> rri "andi" t s i
  | Ori (t, s, i) -> rri "ori" t s i
  | Xori (t, s, i) -> rri "xori" t s i
  | Slti (t, s, i) -> rri "slti" t s i
  | Sltiu (t, s, i) -> rri "sltiu" t s i
  | Lui (t, i) -> Fmt.pf ppf "lui %a, %d" r t i
  | Sll (d, t, sa) -> rri "sll" d t sa
  | Srl (d, t, sa) -> rri "srl" d t sa
  | Sra (d, t, sa) -> rri "sra" d t sa
  | Dsll (d, t, sa) -> rri "dsll" d t sa
  | Dsrl (d, t, sa) -> rri "dsrl" d t sa
  | Dsra (d, t, sa) -> rri "dsra" d t sa
  | Dsll32 (d, t, sa) -> rri "dsll32" d t sa
  | Dsrl32 (d, t, sa) -> rri "dsrl32" d t sa
  | Sllv (d, t, s) -> rrr "sllv" d t s
  | Srlv (d, t, s) -> rrr "srlv" d t s
  | Srav (d, t, s) -> rrr "srav" d t s
  | Dsllv (d, t, s) -> rrr "dsllv" d t s
  | Dsrlv (d, t, s) -> rrr "dsrlv" d t s
  | Dsrav (d, t, s) -> rrr "dsrav" d t s
  | Mult (s, t) -> Fmt.pf ppf "mult %a, %a" r s r t
  | Multu (s, t) -> Fmt.pf ppf "multu %a, %a" r s r t
  | Dmult (s, t) -> Fmt.pf ppf "dmult %a, %a" r s r t
  | Dmultu (s, t) -> Fmt.pf ppf "dmultu %a, %a" r s r t
  | Div (s, t) -> Fmt.pf ppf "div %a, %a" r s r t
  | Divu (s, t) -> Fmt.pf ppf "divu %a, %a" r s r t
  | Ddiv (s, t) -> Fmt.pf ppf "ddiv %a, %a" r s r t
  | Ddivu (s, t) -> Fmt.pf ppf "ddivu %a, %a" r s r t
  | Mfhi d -> Fmt.pf ppf "mfhi %a" r d
  | Mflo d -> Fmt.pf ppf "mflo %a" r d
  | Mthi s -> Fmt.pf ppf "mthi %a" r s
  | Mtlo s -> Fmt.pf ppf "mtlo %a" r s
  | Load (w, u, t, b, o) ->
      Fmt.pf ppf "l%s%s %a, %d(%a)" (width_letter w) (if u then "u" else "") r t o r b
  | Store (w, t, b, o) -> Fmt.pf ppf "s%s %a, %d(%a)" (width_letter w) r t o r b
  | Lld (t, b, o) -> Fmt.pf ppf "lld %a, %d(%a)" r t o r b
  | Scd (t, b, o) -> Fmt.pf ppf "scd %a, %d(%a)" r t o r b
  | J t -> Fmt.pf ppf "j 0x%x" (t * 4)
  | Jal t -> Fmt.pf ppf "jal 0x%x" (t * 4)
  | Jr s -> Fmt.pf ppf "jr %a" r s
  | Jalr (d, s) -> Fmt.pf ppf "jalr %a, %a" r d r s
  | Beq (s, t, o) -> Fmt.pf ppf "beq %a, %a, %d" r s r t o
  | Bne (s, t, o) -> Fmt.pf ppf "bne %a, %a, %d" r s r t o
  | Blez (s, o) -> Fmt.pf ppf "blez %a, %d" r s o
  | Bgtz (s, o) -> Fmt.pf ppf "bgtz %a, %d" r s o
  | Bltz (s, o) -> Fmt.pf ppf "bltz %a, %d" r s o
  | Bgez (s, o) -> Fmt.pf ppf "bgez %a, %d" r s o
  | Syscall -> Fmt.string ppf "syscall"
  | Break -> Fmt.string ppf "break"
  | Eret -> Fmt.string ppf "eret"
  | Mfc0 (t, d) -> Fmt.pf ppf "mfc0 %a, $%d" r t d
  | Mtc0 (t, d) -> Fmt.pf ppf "mtc0 %a, $%d" r t d
  | Trace (m, a, b) -> Fmt.pf ppf "trace.%s %a, %a" (marker_name m) r a r b
  | CGetBase (d, cb) -> Fmt.pf ppf "cgetbase %a, %a" r d c cb
  | CGetLen (d, cb) -> Fmt.pf ppf "cgetlen %a, %a" r d c cb
  | CGetTag (d, cb) -> Fmt.pf ppf "cgettag %a, %a" r d c cb
  | CGetPerm (d, cb) -> Fmt.pf ppf "cgetperm %a, %a" r d c cb
  | CGetPCC (d, cd) -> Fmt.pf ppf "cgetpcc %a, %a" r d c cd
  | CGetCause d -> Fmt.pf ppf "cgetcause %a" r d
  | CIncBase (cd, cb, rt) -> Fmt.pf ppf "cincbase %a, %a, %a" c cd c cb r rt
  | CSetLen (cd, cb, rt) -> Fmt.pf ppf "csetlen %a, %a, %a" c cd c cb r rt
  | CClearTag (cd, cb) -> Fmt.pf ppf "ccleartag %a, %a" c cd c cb
  | CAndPerm (cd, cb, rt) -> Fmt.pf ppf "candperm %a, %a, %a" c cd c cb r rt
  | CMove (cd, cb) -> Fmt.pf ppf "cmove %a, %a" c cd c cb
  | CToPtr (rd, cb, ct) -> Fmt.pf ppf "ctoptr %a, %a, %a" r rd c cb c ct
  | CFromPtr (cd, cb, rt) -> Fmt.pf ppf "cfromptr %a, %a, %a" c cd c cb r rt
  | CBTU (cb, o) -> Fmt.pf ppf "cbtu %a, %d" c cb o
  | CBTS (cb, o) -> Fmt.pf ppf "cbts %a, %d" c cb o
  | CLC (cd, cb, rt, i) -> Fmt.pf ppf "clc %a, %a, %d(%a)" c cd r rt i c cb
  | CSC (cs, cb, rt, i) -> Fmt.pf ppf "csc %a, %a, %d(%a)" c cs r rt i c cb
  | CLoad (w, u, rd, cb, rt, i) ->
      Fmt.pf ppf "cl%s%s %a, %a, %d(%a)" (width_letter w) (if u then "u" else "")
        r rd r rt i c cb
  | CStore (w, rs, cb, rt, i) ->
      Fmt.pf ppf "cs%s %a, %a, %d(%a)" (width_letter w) r rs r rt i c cb
  | CLLD (rd, cb) -> Fmt.pf ppf "clld %a, 0(%a)" r rd c cb
  | CSCD (rd, rs, cb) -> Fmt.pf ppf "cscd %a, %a, 0(%a)" r rd r rs c cb
  | CJR cb -> Fmt.pf ppf "cjr %a" c cb
  | CJALR (cd, cb) -> Fmt.pf ppf "cjalr %a, %a" c cd c cb
  | CSeal (cd, cs, ct) -> Fmt.pf ppf "cseal %a, %a, %a" c cd c cs c ct
  | CUnseal (cd, cs, ct) -> Fmt.pf ppf "cunseal %a, %a, %a" c cd c cs c ct
  | CCall (cs, cb) -> Fmt.pf ppf "ccall %a, %a" c cs c cb
  | CReturn -> Fmt.string ppf "creturn"

let to_string = Fmt.to_to_string pp
