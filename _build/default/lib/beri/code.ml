(* Binary encoding of the BERI/CHERI instruction set.

   The MIPS subset uses the standard MIPS IV encodings.  The CHERI
   extensions live in the coprocessor-2 opcode space the base architecture
   reserves for them (COP2 = 0x12, LWC2/SWC2/LDC2/SDC2 for the
   capability-relative memory operations); the 2014 paper does not publish
   binary encodings so the CP2 layout here is our own, documented in
   docs/ISA.md.  [decode] is the inverse of [encode] on all constructible
   instructions (a QCheck property in the test suite). *)

exception Decode_error of int

open Insn

(* Field extraction. *)
let bits word hi lo = (word lsr lo) land ((1 lsl (hi - lo + 1)) - 1)
let op word = bits word 31 26
let rs word = bits word 25 21
let rt word = bits word 20 16
let rd word = bits word 15 11
let shamt word = bits word 10 6
let funct word = bits word 5 0
let imm16 word = bits word 15 0
let simm16 word =
  let v = imm16 word in
  if v land 0x8000 <> 0 then v - 0x10000 else v
let target26 word = bits word 25 0

(* Field packing. *)
let r_type ~op:o ~rs:s ~rt:t ~rd:d ~shamt:sa ~funct:f =
  (o lsl 26) lor (s lsl 21) lor (t lsl 16) lor (d lsl 11) lor (sa lsl 6) lor f

let i_type ~op:o ~rs:s ~rt:t ~imm =
  (o lsl 26) lor (s lsl 21) lor (t lsl 16) lor (imm land 0xFFFF)

let j_type ~op:o ~target = (o lsl 26) lor (target land 0x3FF_FFFF)

(* --- MIPS SPECIAL (opcode 0) function codes ---------------------------- *)

let special = 0x00
let regimm = 0x01
let cop0 = 0x10
let cop2 = 0x12
let cop3_trace = 0x13

let f_sll = 0x00 and f_srl = 0x02 and f_sra = 0x03
let f_sllv = 0x04 and f_srlv = 0x06 and f_srav = 0x07
let f_jr = 0x08 and f_jalr = 0x09
let f_syscall = 0x0C and f_break = 0x0D
let f_mfhi = 0x10 and f_mthi = 0x11 and f_mflo = 0x12 and f_mtlo = 0x13
let f_dsllv = 0x14 and f_dsrlv = 0x16 and f_dsrav = 0x17
let f_mult = 0x18 and f_multu = 0x19 and f_div = 0x1A and f_divu = 0x1B
let f_dmult = 0x1C and f_dmultu = 0x1D and f_ddiv = 0x1E and f_ddivu = 0x1F
let f_add = 0x20 and f_addu = 0x21 and f_sub = 0x22 and f_subu = 0x23
let f_and = 0x24 and f_or = 0x25 and f_xor = 0x26 and f_nor = 0x27
let f_slt = 0x2A and f_sltu = 0x2B
let f_dadd = 0x2C and f_daddu = 0x2D and f_dsubu = 0x2F
let f_dsll = 0x38 and f_dsrl = 0x3A and f_dsra = 0x3B
let f_dsll32 = 0x3C and f_dsrl32 = 0x3E

(* --- CP2 register-format function codes (rs field = 0x10) -------------- *)

let cp2_regfmt = 0x10
let cp2_cbtu = 0x0A
let cp2_cbts = 0x0B

let c_getbase = 0 and c_getlen = 1 and c_gettag = 2 and c_getperm = 3
let c_getpcc = 4 and c_getcause = 5
let c_incbase = 6 and c_setlen = 7 and c_cleartag = 8 and c_andperm = 9
let c_move = 10 and c_toptr = 11 and c_fromptr = 12
let c_jr = 13 and c_jalr = 14
let c_seal = 15 and c_unseal = 16 and c_call = 17 and c_return = 18
let c_lld = 19 and c_scd = 20

let cp2_r ~f1 ~f2 ~f3 ~func =
  (cop2 lsl 26) lor (cp2_regfmt lsl 21) lor (f1 lsl 16) lor (f2 lsl 11)
  lor (f3 lsl 6) lor func

let width_code = function B -> 0 | H -> 1 | W -> 2 | D -> 3
let width_of_code = function 0 -> B | 1 -> H | 2 -> W | _ -> D

(* Capability-relative scalar load/store: imm is a signed 8-bit byte offset. *)
let cmem ~opc ~r1 ~cb ~rt ~imm ~w ~u =
  (opc lsl 26) lor (r1 lsl 21) lor (cb lsl 16) lor (rt lsl 11)
  lor ((imm land 0xFF) lsl 3)
  lor (width_code w lsl 1)
  lor (if u then 1 else 0)

let simm8 v = if v land 0x80 <> 0 then v - 0x100 else v
let simm11 v = if v land 0x400 <> 0 then v - 0x800 else v

(* CLC/CSC: imm is a signed 11-bit offset scaled by 16 bytes (the
   alignment of the smaller, 128-bit capability format). *)
let ccap_mem ~opc ~c1 ~cb ~rt ~imm =
  if imm mod 16 <> 0 then invalid_arg "capability load/store offset must be 16-byte aligned";
  (opc lsl 26) lor (c1 lsl 21) lor (cb lsl 16) lor (rt lsl 11)
  lor ((imm / 16) land 0x7FF)

let opc_cload = 0x32 (* LWC2 *)
let opc_cstore = 0x3A (* SWC2 *)
let opc_clc = 0x36 (* LDC2 *)
let opc_csc = 0x3E (* SDC2 *)

let load_op = function
  | B, false -> 0x20
  | H, false -> 0x21
  | W, false -> 0x23
  | B, true -> 0x24
  | H, true -> 0x25
  | W, true -> 0x27
  | D, _ -> 0x37

let store_op = function B -> 0x28 | H -> 0x29 | W -> 0x2B | D -> 0x3F

let marker_code = function
  | M_alloc -> 0
  | M_free -> 1
  | M_phase_begin -> 2
  | M_phase_end -> 3

let marker_of_code = function
  | 0 -> M_alloc
  | 1 -> M_free
  | 2 -> M_phase_begin
  | _ -> M_phase_end

let encode insn =
  let sp ?(rs = 0) ?(rt = 0) ?(rd = 0) ?(shamt = 0) funct =
    r_type ~op:special ~rs ~rt ~rd ~shamt ~funct
  in
  match insn with
  | Add (d, s, t) -> sp ~rs:s ~rt:t ~rd:d f_add
  | Addu (d, s, t) -> sp ~rs:s ~rt:t ~rd:d f_addu
  | Dadd (d, s, t) -> sp ~rs:s ~rt:t ~rd:d f_dadd
  | Daddu (d, s, t) -> sp ~rs:s ~rt:t ~rd:d f_daddu
  | Sub (d, s, t) -> sp ~rs:s ~rt:t ~rd:d f_sub
  | Subu (d, s, t) -> sp ~rs:s ~rt:t ~rd:d f_subu
  | Dsubu (d, s, t) -> sp ~rs:s ~rt:t ~rd:d f_dsubu
  | And (d, s, t) -> sp ~rs:s ~rt:t ~rd:d f_and
  | Or (d, s, t) -> sp ~rs:s ~rt:t ~rd:d f_or
  | Xor (d, s, t) -> sp ~rs:s ~rt:t ~rd:d f_xor
  | Nor (d, s, t) -> sp ~rs:s ~rt:t ~rd:d f_nor
  | Slt (d, s, t) -> sp ~rs:s ~rt:t ~rd:d f_slt
  | Sltu (d, s, t) -> sp ~rs:s ~rt:t ~rd:d f_sltu
  | Addiu (t, s, i) -> i_type ~op:0x09 ~rs:s ~rt:t ~imm:i
  | Daddiu (t, s, i) -> i_type ~op:0x19 ~rs:s ~rt:t ~imm:i
  | Andi (t, s, i) -> i_type ~op:0x0C ~rs:s ~rt:t ~imm:i
  | Ori (t, s, i) -> i_type ~op:0x0D ~rs:s ~rt:t ~imm:i
  | Xori (t, s, i) -> i_type ~op:0x0E ~rs:s ~rt:t ~imm:i
  | Slti (t, s, i) -> i_type ~op:0x0A ~rs:s ~rt:t ~imm:i
  | Sltiu (t, s, i) -> i_type ~op:0x0B ~rs:s ~rt:t ~imm:i
  | Lui (t, i) -> i_type ~op:0x0F ~rs:0 ~rt:t ~imm:i
  | Sll (d, t, sa) -> sp ~rt:t ~rd:d ~shamt:sa f_sll
  | Srl (d, t, sa) -> sp ~rt:t ~rd:d ~shamt:sa f_srl
  | Sra (d, t, sa) -> sp ~rt:t ~rd:d ~shamt:sa f_sra
  | Dsll (d, t, sa) -> sp ~rt:t ~rd:d ~shamt:sa f_dsll
  | Dsrl (d, t, sa) -> sp ~rt:t ~rd:d ~shamt:sa f_dsrl
  | Dsra (d, t, sa) -> sp ~rt:t ~rd:d ~shamt:sa f_dsra
  | Dsll32 (d, t, sa) -> sp ~rt:t ~rd:d ~shamt:sa f_dsll32
  | Dsrl32 (d, t, sa) -> sp ~rt:t ~rd:d ~shamt:sa f_dsrl32
  | Sllv (d, t, s) -> sp ~rs:s ~rt:t ~rd:d f_sllv
  | Srlv (d, t, s) -> sp ~rs:s ~rt:t ~rd:d f_srlv
  | Srav (d, t, s) -> sp ~rs:s ~rt:t ~rd:d f_srav
  | Dsllv (d, t, s) -> sp ~rs:s ~rt:t ~rd:d f_dsllv
  | Dsrlv (d, t, s) -> sp ~rs:s ~rt:t ~rd:d f_dsrlv
  | Dsrav (d, t, s) -> sp ~rs:s ~rt:t ~rd:d f_dsrav
  | Mult (s, t) -> sp ~rs:s ~rt:t f_mult
  | Multu (s, t) -> sp ~rs:s ~rt:t f_multu
  | Dmult (s, t) -> sp ~rs:s ~rt:t f_dmult
  | Dmultu (s, t) -> sp ~rs:s ~rt:t f_dmultu
  | Div (s, t) -> sp ~rs:s ~rt:t f_div
  | Divu (s, t) -> sp ~rs:s ~rt:t f_divu
  | Ddiv (s, t) -> sp ~rs:s ~rt:t f_ddiv
  | Ddivu (s, t) -> sp ~rs:s ~rt:t f_ddivu
  | Mfhi d -> sp ~rd:d f_mfhi
  | Mflo d -> sp ~rd:d f_mflo
  | Mthi s -> sp ~rs:s f_mthi
  | Mtlo s -> sp ~rs:s f_mtlo
  | Load (w, u, t, b, o) -> i_type ~op:(load_op (w, u)) ~rs:b ~rt:t ~imm:o
  | Store (w, t, b, o) -> i_type ~op:(store_op w) ~rs:b ~rt:t ~imm:o
  | Lld (t, b, o) -> i_type ~op:0x34 ~rs:b ~rt:t ~imm:o
  | Scd (t, b, o) -> i_type ~op:0x3C ~rs:b ~rt:t ~imm:o
  | J t -> j_type ~op:0x02 ~target:t
  | Jal t -> j_type ~op:0x03 ~target:t
  | Jr s -> sp ~rs:s f_jr
  | Jalr (d, s) -> sp ~rs:s ~rd:d f_jalr
  | Beq (s, t, o) -> i_type ~op:0x04 ~rs:s ~rt:t ~imm:o
  | Bne (s, t, o) -> i_type ~op:0x05 ~rs:s ~rt:t ~imm:o
  | Blez (s, o) -> i_type ~op:0x06 ~rs:s ~rt:0 ~imm:o
  | Bgtz (s, o) -> i_type ~op:0x07 ~rs:s ~rt:0 ~imm:o
  | Bltz (s, o) -> i_type ~op:regimm ~rs:s ~rt:0x00 ~imm:o
  | Bgez (s, o) -> i_type ~op:regimm ~rs:s ~rt:0x01 ~imm:o
  | Syscall -> sp f_syscall
  | Break -> sp f_break
  | Eret -> r_type ~op:cop0 ~rs:0x10 ~rt:0 ~rd:0 ~shamt:0 ~funct:0x18
  | Mfc0 (t, d) -> r_type ~op:cop0 ~rs:0x00 ~rt:t ~rd:d ~shamt:0 ~funct:0
  | Mtc0 (t, d) -> r_type ~op:cop0 ~rs:0x04 ~rt:t ~rd:d ~shamt:0 ~funct:0
  | Trace (m, a, b) ->
      r_type ~op:cop3_trace ~rs:(marker_code m) ~rt:a ~rd:b ~shamt:0 ~funct:0
  | CGetBase (d, cb) -> cp2_r ~f1:d ~f2:cb ~f3:0 ~func:c_getbase
  | CGetLen (d, cb) -> cp2_r ~f1:d ~f2:cb ~f3:0 ~func:c_getlen
  | CGetTag (d, cb) -> cp2_r ~f1:d ~f2:cb ~f3:0 ~func:c_gettag
  | CGetPerm (d, cb) -> cp2_r ~f1:d ~f2:cb ~f3:0 ~func:c_getperm
  | CGetPCC (d, cd) -> cp2_r ~f1:d ~f2:cd ~f3:0 ~func:c_getpcc
  | CGetCause d -> cp2_r ~f1:d ~f2:0 ~f3:0 ~func:c_getcause
  | CIncBase (cd, cb, rt) -> cp2_r ~f1:cd ~f2:cb ~f3:rt ~func:c_incbase
  | CSetLen (cd, cb, rt) -> cp2_r ~f1:cd ~f2:cb ~f3:rt ~func:c_setlen
  | CClearTag (cd, cb) -> cp2_r ~f1:cd ~f2:cb ~f3:0 ~func:c_cleartag
  | CAndPerm (cd, cb, rt) -> cp2_r ~f1:cd ~f2:cb ~f3:rt ~func:c_andperm
  | CMove (cd, cb) -> cp2_r ~f1:cd ~f2:cb ~f3:0 ~func:c_move
  | CToPtr (rd, cb, ct) -> cp2_r ~f1:rd ~f2:cb ~f3:ct ~func:c_toptr
  | CFromPtr (cd, cb, rt) -> cp2_r ~f1:cd ~f2:cb ~f3:rt ~func:c_fromptr
  | CBTU (cb, o) -> i_type ~op:cop2 ~rs:cp2_cbtu ~rt:cb ~imm:o
  | CBTS (cb, o) -> i_type ~op:cop2 ~rs:cp2_cbts ~rt:cb ~imm:o
  | CLC (cd, cb, rt, i) -> ccap_mem ~opc:opc_clc ~c1:cd ~cb ~rt ~imm:i
  | CSC (cs, cb, rt, i) -> ccap_mem ~opc:opc_csc ~c1:cs ~cb ~rt ~imm:i
  | CLoad (w, u, rd, cb, rt, i) -> cmem ~opc:opc_cload ~r1:rd ~cb ~rt ~imm:i ~w ~u
  | CStore (w, rs, cb, rt, i) -> cmem ~opc:opc_cstore ~r1:rs ~cb ~rt ~imm:i ~w ~u:false
  | CLLD (rd, cb) -> cp2_r ~f1:rd ~f2:cb ~f3:0 ~func:c_lld
  | CSCD (rd, rs, cb) -> cp2_r ~f1:rd ~f2:rs ~f3:cb ~func:c_scd
  | CJR cb -> cp2_r ~f1:cb ~f2:0 ~f3:0 ~func:c_jr
  | CJALR (cd, cb) -> cp2_r ~f1:cd ~f2:cb ~f3:0 ~func:c_jalr
  | CSeal (cd, cs, ct) -> cp2_r ~f1:cd ~f2:cs ~f3:ct ~func:c_seal
  | CUnseal (cd, cs, ct) -> cp2_r ~f1:cd ~f2:cs ~f3:ct ~func:c_unseal
  | CCall (cs, cb) -> cp2_r ~f1:cs ~f2:cb ~f3:0 ~func:c_call
  | CReturn -> cp2_r ~f1:0 ~f2:0 ~f3:0 ~func:c_return

let decode_special word =
  let s = rs word and t = rt word and d = rd word and sa = shamt word in
  match funct word with
  | 0x00 -> Sll (d, t, sa)
  | 0x02 -> Srl (d, t, sa)
  | 0x03 -> Sra (d, t, sa)
  | 0x04 -> Sllv (d, t, s)
  | 0x06 -> Srlv (d, t, s)
  | 0x07 -> Srav (d, t, s)
  | 0x08 -> Jr s
  | 0x09 -> Jalr (d, s)
  | 0x0C -> Syscall
  | 0x0D -> Break
  | 0x10 -> Mfhi d
  | 0x11 -> Mthi s
  | 0x12 -> Mflo d
  | 0x13 -> Mtlo s
  | 0x14 -> Dsllv (d, t, s)
  | 0x16 -> Dsrlv (d, t, s)
  | 0x17 -> Dsrav (d, t, s)
  | 0x18 -> Mult (s, t)
  | 0x19 -> Multu (s, t)
  | 0x1A -> Div (s, t)
  | 0x1B -> Divu (s, t)
  | 0x1C -> Dmult (s, t)
  | 0x1D -> Dmultu (s, t)
  | 0x1E -> Ddiv (s, t)
  | 0x1F -> Ddivu (s, t)
  | 0x20 -> Add (d, s, t)
  | 0x21 -> Addu (d, s, t)
  | 0x22 -> Sub (d, s, t)
  | 0x23 -> Subu (d, s, t)
  | 0x24 -> And (d, s, t)
  | 0x25 -> Or (d, s, t)
  | 0x26 -> Xor (d, s, t)
  | 0x27 -> Nor (d, s, t)
  | 0x2A -> Slt (d, s, t)
  | 0x2B -> Sltu (d, s, t)
  | 0x2C -> Dadd (d, s, t)
  | 0x2D -> Daddu (d, s, t)
  | 0x2F -> Dsubu (d, s, t)
  | 0x38 -> Dsll (d, t, sa)
  | 0x3A -> Dsrl (d, t, sa)
  | 0x3B -> Dsra (d, t, sa)
  | 0x3C -> Dsll32 (d, t, sa)
  | 0x3E -> Dsrl32 (d, t, sa)
  | _ -> raise (Decode_error word)

let decode_cp2 word =
  match rs word with
  | r when r = cp2_cbtu -> CBTU (rt word, simm16 word)
  | r when r = cp2_cbts -> CBTS (rt word, simm16 word)
  | r when r = cp2_regfmt -> (
      let f1 = rt word and f2 = rd word and f3 = shamt word in
      match funct word with
      | f when f = c_getbase -> CGetBase (f1, f2)
      | f when f = c_getlen -> CGetLen (f1, f2)
      | f when f = c_gettag -> CGetTag (f1, f2)
      | f when f = c_getperm -> CGetPerm (f1, f2)
      | f when f = c_getpcc -> CGetPCC (f1, f2)
      | f when f = c_getcause -> CGetCause f1
      | f when f = c_incbase -> CIncBase (f1, f2, f3)
      | f when f = c_setlen -> CSetLen (f1, f2, f3)
      | f when f = c_cleartag -> CClearTag (f1, f2)
      | f when f = c_andperm -> CAndPerm (f1, f2, f3)
      | f when f = c_move -> CMove (f1, f2)
      | f when f = c_toptr -> CToPtr (f1, f2, f3)
      | f when f = c_fromptr -> CFromPtr (f1, f2, f3)
      | f when f = c_jr -> CJR f1
      | f when f = c_jalr -> CJALR (f1, f2)
      | f when f = c_seal -> CSeal (f1, f2, f3)
      | f when f = c_unseal -> CUnseal (f1, f2, f3)
      | f when f = c_call -> CCall (f1, f2)
      | f when f = c_return -> CReturn
      | f when f = c_lld -> CLLD (f1, f2)
      | f when f = c_scd -> CSCD (f1, f2, f3)
      | _ -> raise (Decode_error word))
  | _ -> raise (Decode_error word)

let decode word =
  match op word with
  | 0x00 -> decode_special word
  | 0x01 -> (
      match rt word with
      | 0x00 -> Bltz (rs word, simm16 word)
      | 0x01 -> Bgez (rs word, simm16 word)
      | _ -> raise (Decode_error word))
  | 0x02 -> J (target26 word)
  | 0x03 -> Jal (target26 word)
  | 0x04 -> Beq (rs word, rt word, simm16 word)
  | 0x05 -> Bne (rs word, rt word, simm16 word)
  | 0x06 -> Blez (rs word, simm16 word)
  | 0x07 -> Bgtz (rs word, simm16 word)
  | 0x09 -> Addiu (rt word, rs word, simm16 word)
  | 0x0A -> Slti (rt word, rs word, simm16 word)
  | 0x0B -> Sltiu (rt word, rs word, simm16 word)
  | 0x0C -> Andi (rt word, rs word, imm16 word)
  | 0x0D -> Ori (rt word, rs word, imm16 word)
  | 0x0E -> Xori (rt word, rs word, imm16 word)
  | 0x0F -> Lui (rt word, imm16 word)
  | 0x10 -> (
      match rs word with
      | 0x00 -> Mfc0 (rt word, rd word)
      | 0x04 -> Mtc0 (rt word, rd word)
      | 0x10 when funct word = 0x18 -> Eret
      | _ -> raise (Decode_error word))
  | o when o = cop2 -> decode_cp2 word
  | o when o = cop3_trace -> Trace (marker_of_code (rs word), rt word, rd word)
  | 0x19 -> Daddiu (rt word, rs word, simm16 word)
  | 0x20 -> Load (B, false, rt word, rs word, simm16 word)
  | 0x21 -> Load (H, false, rt word, rs word, simm16 word)
  | 0x23 -> Load (W, false, rt word, rs word, simm16 word)
  | 0x24 -> Load (B, true, rt word, rs word, simm16 word)
  | 0x25 -> Load (H, true, rt word, rs word, simm16 word)
  | 0x27 -> Load (W, true, rt word, rs word, simm16 word)
  | 0x28 -> Store (B, rt word, rs word, simm16 word)
  | 0x29 -> Store (H, rt word, rs word, simm16 word)
  | 0x2B -> Store (W, rt word, rs word, simm16 word)
  | 0x34 -> Lld (rt word, rs word, simm16 word)
  | 0x37 -> Load (D, false, rt word, rs word, simm16 word)
  | 0x3C -> Scd (rt word, rs word, simm16 word)
  | 0x3F -> Store (D, rt word, rs word, simm16 word)
  | o when o = opc_cload ->
      let w = width_of_code (bits word 2 1) in
      CLoad (w, bits word 0 0 = 1, rs word, rt word, rd word, simm8 (bits word 10 3))
  | o when o = opc_cstore ->
      let w = width_of_code (bits word 2 1) in
      CStore (w, rs word, rt word, rd word, simm8 (bits word 10 3))
  | o when o = opc_clc -> CLC (rs word, rt word, rd word, 16 * simm11 (bits word 10 0))
  | o when o = opc_csc -> CSC (rs word, rt word, rd word, 16 * simm11 (bits word 10 0))
  | _ -> raise (Decode_error word)
