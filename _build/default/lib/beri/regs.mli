(** The general-purpose register file: 32 64-bit registers with $0
    hardwired to zero, plus HI/LO. *)

type t = { r : int64 array; mutable hi : int64; mutable lo : int64 }

val create : unit -> t

(** [get t 0] is always 0. *)
val get : t -> int -> int64

(** Writes to register 0 are discarded. *)
val set : t -> int -> int64 -> unit

val copy : t -> t

(** [load t src] overwrites [t] with [src] (context restore). *)
val load : t -> t -> unit

(** {1 ABI register numbers} *)

val zero : int
val at : int
val v0 : int
val v1 : int
val a0 : int
val a1 : int
val a2 : int
val a3 : int
val t0 : int
val t1 : int
val t2 : int
val t3 : int
val s0 : int
val s1 : int
val s2 : int
val s3 : int
val t8 : int
val t9 : int
val k0 : int
val k1 : int
val gp : int
val sp : int
val fp : int
val ra : int
