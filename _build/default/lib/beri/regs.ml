(* The general-purpose register file: 32 64-bit registers with $0 hardwired
   to zero, plus the HI/LO multiply-divide pair. *)

type t = { r : int64 array; mutable hi : int64; mutable lo : int64 }

let create () = { r = Array.make 32 0L; hi = 0L; lo = 0L }

let get t i = if i = 0 then 0L else t.r.(i)

let set t i v = if i <> 0 then t.r.(i) <- v

let copy t = { r = Array.copy t.r; hi = t.hi; lo = t.lo }

let load t src =
  Array.blit src.r 0 t.r 0 32;
  t.hi <- src.hi;
  t.lo <- src.lo

(* Conventional MIPS ABI register assignments used by the assembler,
   compiler, and kernel. *)
let zero = 0
let at = 1
let v0 = 2
let v1 = 3
let a0 = 4
let a1 = 5
let a2 = 6
let a3 = 7
let t0 = 12
let t1 = 13
let t2 = 14
let t3 = 15
let s0 = 16
let s1 = 17
let s2 = 18
let s3 = 19
let t8 = 24
let t9 = 25
let k0 = 26
let k1 = 27
let gp = 28
let sp = 29
let fp = 30
let ra = 31
