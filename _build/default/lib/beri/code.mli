(** Binary encoding of the BERI/CHERI instruction set.

    The MIPS subset uses standard MIPS IV encodings; the CHERI extensions
    live in the coprocessor-2 opcode space (layout in docs/ISA.md).
    [decode] is the inverse of [encode] on all constructible instructions
    (a QCheck property in the test suite). *)

exception Decode_error of int

(** Encode to a 32-bit instruction word.
    @raise Invalid_argument for unencodable operands (e.g. an unaligned
    CLC/CSC offset). *)
val encode : Insn.t -> int

(** Decode a 32-bit word.
    @raise Decode_error on an unallocated encoding. *)
val decode : int -> Insn.t
