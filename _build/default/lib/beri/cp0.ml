(* System coprocessor 0 state: the minimum of the MIPS R4000's CP0 that the
   kernel model needs — privilege mode, exception bookkeeping, and cycle
   count.  Address translation state lives in [Mem.Tlb]. *)

type exc =
  | Interrupt
  | Tlb_load
  | Tlb_store
  | Address_error_load
  | Address_error_store
  | Syscall
  | Breakpoint
  | Reserved_instruction
  | Coprocessor_unusable
  | Overflow
  | Trap
  | Cp2 of Cap.Cause.t (* capability coprocessor exception, cause attached *)

(* MIPS ExcCode values; the CHERI prototype uses 18 (C2E) for CP2. *)
let exc_code = function
  | Interrupt -> 0
  | Tlb_load -> 2
  | Tlb_store -> 3
  | Address_error_load -> 4
  | Address_error_store -> 5
  | Syscall -> 8
  | Breakpoint -> 9
  | Reserved_instruction -> 10
  | Coprocessor_unusable -> 11
  | Overflow -> 12
  | Trap -> 13
  | Cp2 _ -> 18

let exc_to_string = function
  | Interrupt -> "interrupt"
  | Tlb_load -> "TLB load miss"
  | Tlb_store -> "TLB store miss"
  | Address_error_load -> "address error (load)"
  | Address_error_store -> "address error (store)"
  | Syscall -> "syscall"
  | Breakpoint -> "breakpoint"
  | Reserved_instruction -> "reserved instruction"
  | Coprocessor_unusable -> "coprocessor unusable"
  | Overflow -> "arithmetic overflow"
  | Trap -> "trap"
  | Cp2 cause -> "CP2 exception: " ^ Cap.Cause.to_string cause

type mode = Kernel | User

type t = {
  mutable mode : mode;
  mutable exl : bool; (* exception level: set while handling an exception *)
  mutable epc : int64; (* exception return address *)
  mutable badvaddr : int64;
  mutable last_exc : exc option;
  mutable count : int64; (* cycle counter, mirrored from the timing model *)
  mutable capcause : Cap.Cause.t; (* CP2 cause register *)
  mutable capcause_reg : int; (* offending capability register *)
}

let create () =
  {
    mode = Kernel;
    exl = false;
    epc = 0L;
    badvaddr = 0L;
    last_exc = None;
    count = 0L;
    capcause = Cap.Cause.None_;
    capcause_reg = 0;
  }

let in_kernel_mode t = t.mode = Kernel || t.exl

(* Register numbers accepted by MFC0/MTC0. *)
let reg_badvaddr = 8
let reg_count = 9
let reg_status = 12
let reg_cause = 13
let reg_epc = 14

let read t = function
  | n when n = reg_badvaddr -> t.badvaddr
  | n when n = reg_count -> t.count
  | n when n = reg_status ->
      Int64.logor (if t.mode = User then 0x10L else 0L) (if t.exl then 2L else 0L)
  | n when n = reg_cause ->
      Int64.of_int (match t.last_exc with None -> 0 | Some e -> exc_code e lsl 2)
  | n when n = reg_epc -> t.epc
  | _ -> 0L

let write t n v =
  if n = reg_epc then t.epc <- v
  else if n = reg_status then begin
    t.mode <- (if Int64.logand v 0x10L <> 0L then User else Kernel);
    t.exl <- Int64.logand v 2L <> 0L
  end
