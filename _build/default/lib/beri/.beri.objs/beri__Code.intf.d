lib/beri/code.mli: Insn
