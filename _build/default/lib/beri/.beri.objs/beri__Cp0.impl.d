lib/beri/cp0.ml: Cap Int64
