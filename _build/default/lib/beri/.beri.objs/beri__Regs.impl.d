lib/beri/regs.ml: Array
