lib/beri/regs.mli:
