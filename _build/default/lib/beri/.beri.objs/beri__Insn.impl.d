lib/beri/insn.ml: Array Fmt
