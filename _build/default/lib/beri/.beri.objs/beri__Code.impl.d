lib/beri/code.ml: Insn
