(* Temporal safety by tag sweep (Section 11).

     dune exec examples/temporal_safety.exe

   "The presence of tagged memory also provides opportunities to enforce
   temporal safety.  Tags allow us to identify all references..."

   A program frees an object; the (non-reuse) allocator asks the kernel
   to revoke the region.  The sweep clears the tag of every capability
   into it — in memory and in registers — so the program's stale alias
   faults deterministically on next use instead of silently reading
   whatever the allocator later placed there. *)

open Beri

let program =
  {|
main:
  la $t0, object
  cincbase $c1, $c0, $t0
  li $t1, 32
  csetlen $c1, $c1, $t1      # c1 = the allocation
  la $t3, alias_slot         # a data structure keeps an alias in memory
  csc $c1, $t3, 0($c0)

  li $t2, 1234
  csd $t2, $zero, 0($c1)     # normal use

  trace.free $t0             # "free(object)": kernel revokes the region

  la $t3, alias_slot
  clc $c2, $t3, 0($c0)       # reload the stale alias: tag already stripped
  cld $v1, $zero, 0($c2)     # use-after-free: tag violation
  move $a0, $v1
  li $v0, 7
  syscall
  li $v0, 1
  li $a0, 0
  syscall

  .data
  .align 5
object: .space 32
alias_slot: .space 32
|}

let () =
  let machine = Machine.create () in
  let kernel = Os.Kernel.attach machine in
  let trap = ref None in
  Os.Kernel.set_fault_handler kernel (fun _k fault ->
      trap := Some fault.Os.Kernel.capcause;
      Machine.Halt 61);
  let parsed = Asm.Assembler.assemble program in
  let stats = ref None in
  Machine.set_trace_hook machine (fun m marker a _ ->
      if marker = Insn.M_free then begin
        Fmt.pr "free(0x%Lx): kernel revokes the 32-byte region...@." a;
        stats := Some (Os.Revoke.revoke m ~base:a ~length:32L)
      end);
  Os.Kernel.exec kernel parsed;
  let exit_code = Machine.run ~max_insns:10_000L machine in
  (match !stats with
  | Some s ->
      Fmt.pr
        "  swept %d tagged lines; revoked %d in-memory alias(es) and %d register         @.  capabilities (including the process's ambient whole-address-space         @.  registers -- the sweep is precise about everything that could still         @.  reach the region)@."
        s.Os.Revoke.memory_capabilities_scanned s.Os.Revoke.memory_capabilities_revoked
        s.Os.Revoke.register_capabilities_revoked;
      assert (s.Os.Revoke.memory_capabilities_revoked = 1)
  | None -> ());
  Fmt.pr "stale-alias dereference: %s (exit %d)@."
    (match !trap with Some c -> Cap.Cause.to_string c | None -> "(no trap!)")
    exit_code;
  assert (exit_code = 61 && !trap = Some Cap.Cause.Tag_violation);
  Fmt.pr "@.Use-after-free became a deterministic fault, not silent reuse.@."
