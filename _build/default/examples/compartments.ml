(* In-process compartmentalization with sealed capabilities and protected
   calls (Sections 5.3 and 11).

     dune exec examples/compartments.exe

   A "password keeper" compartment holds a secret in its private data
   segment.  The main program receives only a *sealed* code/data
   capability pair: it cannot dereference either (sealed capabilities trap
   on use), but it can CCall through them.  The kernel's trusted stack
   unseals the pair, enters the compartment with its private data
   capability installed, and CReturn restores the caller — mutual-distrust
   domain crossing inside one address space, one UNIX process. *)

let program =
  {|
main:
  # --- set up the compartment (a trusted loader would do this) ---
  # authority capability for otype 7
  li $t0, 7
  cincbase $c4, $c0, $t0
  li $t1, 1
  csetlen $c4, $c4, $t1

  # compartment code capability, sealed
  la $t2, keeper
  cincbase $c5, $c0, $t2
  cseal $c1, $c5, $c4

  # compartment private data (the secret lives here), sealed
  la $t3, vault
  cincbase $c6, $c0, $t3
  li $t4, 32
  csetlen $c6, $c6, $t4
  li $t5, 31337
  csd $t5, $zero, 0($c6)     # loader writes the secret
  cseal $c2, $c6, $c4

  # --- from here on, main holds only the sealed pair in c1/c2 ---

  # 1. direct access through the sealed data capability must trap;
  #    prove it by probing: cgettag works, cld would fault. Instead we
  #    check the seal bit via a protected call that returns a digest.
  ccall $c1, $c2             # enter the compartment
  # back from the compartment: $v1 holds the digest (secret mod 1000)
  move $a0, $v1
  li $v0, 7                  # print_int -> 337
  syscall

  # 2. main still cannot read the secret: try and trap.
  cld $t6, $zero, 0($c2)     # sealed! CP2 seal violation

  li $v0, 1
  li $a0, 0
  syscall

# --- the compartment: runs with C26 = unsealed private data ---
keeper:
  cld $t0, $zero, 0($c26)    # read the secret via the invoked data cap
  li $t1, 1000
  ddivu $t0, $t1
  mfhi $v1                   # digest = secret mod 1000
  creturn

  .data
  .align 5
vault: .space 32
|}

let () =
  let machine = Machine.create () in
  let kernel = Os.Kernel.attach machine in
  let trap = ref None in
  Os.Kernel.set_fault_handler kernel (fun _k fault ->
      trap := Some fault.Os.Kernel.capcause;
      Machine.Halt 77);
  let exit_code, console = Os.Kernel.run_program kernel program in
  Fmt.pr "compartment digest printed by main: %s@." (String.trim console);
  Fmt.pr "protected calls taken (kernel trusted stack): %d@." kernel.Os.Kernel.ccalls;
  Fmt.pr "main's later direct read of the sealed data: %s (exit %d)@."
    (match !trap with Some c -> Cap.Cause.to_string c | None -> "(no trap!)")
    exit_code;
  assert (String.trim console = "337");
  assert (kernel.Os.Kernel.ccalls = 1);
  assert (!trap = Some Cap.Cause.Seal_violation && exit_code = 77);
  Fmt.pr "@.The secret crossed the boundary only as a 3-digit digest.@."
