examples/sandbox.mli:
