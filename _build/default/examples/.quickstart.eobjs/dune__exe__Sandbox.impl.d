examples/sandbox.ml: Asm Beri Fmt Machine Mem Os
