examples/quickstart.ml: Cap Fmt Machine Os String
