examples/quickstart.mli:
