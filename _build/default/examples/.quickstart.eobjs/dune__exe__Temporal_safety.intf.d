examples/temporal_safety.mli:
