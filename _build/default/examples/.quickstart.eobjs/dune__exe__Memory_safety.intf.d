examples/memory_safety.mli:
