examples/temporal_safety.ml: Asm Beri Cap Fmt Insn Machine Os
