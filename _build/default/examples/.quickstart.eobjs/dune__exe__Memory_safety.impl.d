examples/memory_safety.ml: Cap Fmt Machine Minic Os String
