examples/compartments.mli:
