examples/compartments.ml: Cap Fmt Machine Os String
