(* Memory safety for C (Section 5.1): one buggy program, three compilers.

     dune exec examples/memory_safety.exe

   The minic program below overflows a heap buffer — the canonical
   exploitable C bug.  Compiled three ways:

     legacy     plain MIPS: the overflow silently corrupts the adjacent
                allocation (here, an "is_admin" flag — a classic privilege
                escalation);
     softcheck  CCured-style software fat pointers: detected, at a large
                run-time cost;
     cheri      pointers are capabilities: the CP2 raises a length
                violation at the exact faulting store, for free. *)

let buggy_program =
  {|
int main(void) {
  int *name_buf = (int*) malloc(8 * sizeof(int));
  int *is_admin = (int*) malloc(sizeof(int));
  is_admin[0] = 0;

  // "read user input": writes 9 cells into an 8-cell buffer
  int i = 0;
  while (i <= 8) {
    name_buf[i] = 65;
    i = i + 1;
  }

  if (is_admin[0] != 0) {
    print_int(666);    // privilege escalation!
  } else {
    print_int(1);
  }
  return 0;
}
|}

let run mode =
  let asm = Minic.Driver.compile ~mode buggy_program in
  let machine = Machine.create () in
  let kernel = Os.Kernel.attach machine in
  let trap = ref None in
  Os.Kernel.set_fault_handler kernel (fun _k fault ->
      trap := Some fault.Os.Kernel.capcause;
      Machine.Halt 139);
  let exit_code, console = Os.Kernel.run_program kernel asm in
  (exit_code, String.trim console, !trap)

let () =
  Fmt.pr "One buggy C program, three pointer lowerings:@.@.";
  let legacy_exit, legacy_out, _ = run Minic.Layout.Legacy in
  Fmt.pr "  legacy:    exit=%d output=%S@." legacy_exit legacy_out;
  if legacy_out = "666" then
    Fmt.pr "             -> overflow silently corrupted is_admin: escalation!@.";
  let soft_exit, _, _ = run Minic.Layout.Softcheck in
  Fmt.pr "  softcheck: exit=%d (97 = software bounds check fired)@." soft_exit;
  let cheri_exit, _, trap = run Minic.Layout.Cheri in
  Fmt.pr "  cheri:     exit=%d, CP2 cause: %s@." cheri_exit
    (match trap with Some c -> Cap.Cause.to_string c | None -> "(none)");
  assert (legacy_exit = 0 && legacy_out = "666");
  assert (soft_exit = 97);
  assert (cheri_exit = 139 && trap = Some Cap.Cause.Length_violation);
  Fmt.pr "@.The hardware caught exactly what the C standard leaves undefined.@."
