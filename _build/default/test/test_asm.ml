(* Tests for the assembler and disassembler: directives, symbols,
   pseudo-instructions, error reporting, and round-trips. *)

let assemble = Asm.Assembler.assemble

let segment_words program =
  match program.Asm.Assembler.segments with
  | (_, bytes) :: _ ->
      List.init
        (String.length bytes / 4)
        (fun i ->
          Char.code bytes.[4 * i]
          lor (Char.code bytes.[(4 * i) + 1] lsl 8)
          lor (Char.code bytes.[(4 * i) + 2] lsl 16)
          lor (Char.code bytes.[(4 * i) + 3] lsl 24))
  | [] -> []

let test_labels_and_symbols () =
  let p = assemble "start:\n  nop\nmiddle:\n  nop\n  nop\nend_:\n  nop\n" in
  let sym name = Option.get (Asm.Assembler.symbol p name) in
  Alcotest.(check int64) "start" 0x10000L (sym "start");
  Alcotest.(check int64) "middle" 0x10004L (sym "middle");
  Alcotest.(check int64) "end_" 0x1000CL (sym "end_")

let test_entry_selection () =
  let p = assemble "foo:\n  nop\nmain:\n  nop\n" in
  Alcotest.(check int64) "main is entry" 0x10004L p.Asm.Assembler.entry;
  let p = assemble "foo:\n  nop\n_start:\n  nop\nmain:\n  nop\n" in
  Alcotest.(check int64) "_start wins" 0x10004L p.Asm.Assembler.entry

let test_data_directives () =
  let p =
    assemble
      "main:\n  nop\n  .data\nbytes: .byte 1, 2, 3\n  .align 3\nwords: .dword 0x1122334455667788\nstr: .asciiz \"hi\\n\"\n"
  in
  let data =
    List.assoc 0x100000L
      (List.map (fun (b, s) -> (b, s)) p.Asm.Assembler.segments)
  in
  Alcotest.(check char) "byte 0" '\001' data.[0];
  Alcotest.(check char) "byte 2" '\003' data.[2];
  (* .align 3 pads to offset 8 *)
  Alcotest.(check char) "dword LSB" '\x88' data.[8];
  Alcotest.(check char) "dword MSB" '\x11' data.[15];
  Alcotest.(check string) "asciiz" "hi\n\000" (String.sub data 16 4)

let test_branch_offsets () =
  (* backward branch: beq at 0x10004 targeting 0x10000 -> offset -2 *)
  let words = segment_words (assemble "top:\n  nop\n  beq $t0, $t1, top\n") in
  match List.nth words 1 |> Beri.Code.decode with
  | Beri.Insn.Beq (_, _, off) -> Alcotest.(check int) "offset" (-2) off
  | i -> Alcotest.failf "unexpected %s" (Beri.Insn.to_string i)

let test_li_expansion () =
  let words = segment_words (assemble "main:\n  li $t0, 5\n  li $t1, 0x12345678\n") in
  Alcotest.(check int) "small li is 1 insn, big li is 2" 3 (List.length words);
  (match Beri.Code.decode (List.nth words 1) with
  | Beri.Insn.Lui (_, 0x1234) -> ()
  | i -> Alcotest.failf "expected lui, got %s" (Beri.Insn.to_string i));
  match Beri.Code.decode (List.nth words 2) with
  | Beri.Insn.Ori (_, _, 0x5678) -> ()
  | i -> Alcotest.failf "expected ori, got %s" (Beri.Insn.to_string i)

let test_symbol_arithmetic () =
  let words =
    segment_words (assemble "main:\n  la $t0, buf+8\n  nop\n  .data\nbuf: .space 16\n")
  in
  match (Beri.Code.decode (List.nth words 0), Beri.Code.decode (List.nth words 1)) with
  | Beri.Insn.Lui (_, hi), Beri.Insn.Ori (_, _, lo) ->
      Alcotest.(check int) "address" 0x100008 ((hi lsl 16) lor lo)
  | _ -> Alcotest.fail "expected lui/ori"

let test_errors () =
  let fails src =
    match assemble src with
    | exception Asm.Assembler.Error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "unknown mnemonic" true (fails "main:\n  frobnicate $t0\n");
  Alcotest.(check bool) "unknown register" true (fails "main:\n  move $t0, $zz\n");
  Alcotest.(check bool) "undefined symbol" true (fails "main:\n  la $t0, nowhere\n");
  Alcotest.(check bool) "unaligned csc offset" true (fails "main:\n  csc $c1, $t0, 8($c2)\n");
  Alcotest.(check bool) "branch out of range" true
    (fails "main:\n  beq $t0, $t1, far\n  .org 0x80000\nfar:\n  nop\n")

let test_error_line_numbers () =
  match assemble "main:\n  nop\n  bogus $t0\n" with
  | exception Asm.Assembler.Error (3, _) -> ()
  | exception Asm.Assembler.Error (n, _) -> Alcotest.failf "wrong line %d" n
  | _ -> Alcotest.fail "assembled bogus input"

let test_disasm_roundtrip () =
  let src =
    "main:\n  daddu $t0, $t1, $t2\n  cincbase $c1, $c0, $t0\n  clc $c2, $t1, 64($c1)\n  csd $t0, $t1, 8($c2)\n  cjalr $c17, $c12\n"
  in
  let words = segment_words (assemble src) in
  List.iter
    (fun w ->
      let text = Asm.Disasm.word w in
      Alcotest.(check bool)
        (Printf.sprintf "decodable %08x: %s" w text)
        false
        (String.length text >= 5 && String.sub text 0 5 = ".word"))
    words

let prop_assemble_disasm_reassemble =
  (* Any single CP2 register-format instruction survives
     assemble -> disassemble -> reassemble. *)
  QCheck.Test.make ~count:300 ~name:"asm->disasm->asm fixpoint"
    (QCheck.make
       QCheck.Gen.(
         let reg = int_bound 31 in
         oneof
           [
             map3 (fun a b c -> Beri.Insn.CIncBase (a, b, c)) reg reg reg;
             map3 (fun a b c -> Beri.Insn.CAndPerm (a, b, c)) reg reg reg;
             map2 (fun a b -> Beri.Insn.CGetBase (a, b)) reg reg;
             map2 (fun a b -> Beri.Insn.CMove (a, b)) reg reg;
             map3 (fun a b c -> Beri.Insn.Daddu (a, b, c)) reg reg reg;
           ]))
    (fun insn ->
      let text = Beri.Insn.to_string insn in
      let p = assemble ("main:\n  " ^ text ^ "\n") in
      match segment_words p with [ w ] -> Beri.Code.decode w = insn | _ -> false)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let suites =
  [
    ( "assembler",
      [
        Alcotest.test_case "labels and symbols" `Quick test_labels_and_symbols;
        Alcotest.test_case "entry selection" `Quick test_entry_selection;
        Alcotest.test_case "data directives" `Quick test_data_directives;
        Alcotest.test_case "branch offsets" `Quick test_branch_offsets;
        Alcotest.test_case "li expansion" `Quick test_li_expansion;
        Alcotest.test_case "symbol arithmetic" `Quick test_symbol_arithmetic;
        Alcotest.test_case "error reporting" `Quick test_errors;
        Alcotest.test_case "error line numbers" `Quick test_error_line_numbers;
        Alcotest.test_case "disassembler" `Quick test_disasm_roundtrip;
      ] );
    qsuite "assembler-properties" [ prop_assemble_disasm_reassemble ];
  ]
