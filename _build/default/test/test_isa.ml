(* Systematic per-instruction semantics tests: each case runs a tiny
   program on the machine and compares a register against an
   independently computed value.  This is the ISA model's conformance
   table — one row per instruction behaviour worth pinning (sign
   extension, unsigned comparison, 32- vs 64-bit widths, shift amounts,
   HI/LO, overflow traps). *)

open Beri

(* Run [body] with $t0 = a, $t1 = b; return the final $v1. *)
let run_insn ?(a = 0L) ?(b = 0L) body =
  let m = Machine.create () in
  let _k = Os.Kernel.attach m in
  let source =
    Printf.sprintf
      "main:\n  ld $t0, 0($zero)\n  ld $t1, 8($zero)\n%s\n  move $a0, $zero\n  li $v0, 1\n  syscall\n"
      body
  in
  let program = Asm.Assembler.assemble source in
  Asm.Assembler.load m program;
  Machine.map_identity m ~vaddr:0L ~len:(1 lsl 20) Mem.Tlb.prot_rwx;
  Mem.Phys.write_u64 m.Machine.phys 0L a;
  Mem.Phys.write_u64 m.Machine.phys 8L b;
  m.Machine.pc <- program.Asm.Assembler.entry;
  match Machine.run ~max_insns:1_000L m with
  | 0 -> Machine.gpr m Regs.v1
  | code -> Alcotest.failf "unexpected exit %d" code

let check ?(a = 0L) ?(b = 0L) name body expected =
  Alcotest.(check int64) name expected (run_insn ~a ~b body)

(* --- 64-bit arithmetic --------------------------------------------------- *)

let test_arith64 () =
  check "daddu wraps" ~a:Int64.max_int ~b:1L "  daddu $v1, $t0, $t1" Int64.min_int;
  check "dsubu" ~a:10L ~b:3L "  dsubu $v1, $t0, $t1" 7L;
  check "dsubu wraps" ~a:0L ~b:1L "  dsubu $v1, $t0, $t1" (-1L);
  check "daddiu negative" ~a:100L "  daddiu $v1, $t0, -1" 99L;
  check "and" ~a:0xFF0FL ~b:0x0FF0L "  and $v1, $t0, $t1" 0x0F00L;
  check "or" ~a:0xF000L ~b:0x000FL "  or $v1, $t0, $t1" 0xF00FL;
  check "xor" ~a:0xFFFFL ~b:0x0F0FL "  xor $v1, $t0, $t1" 0xF0F0L;
  check "nor" ~a:0L ~b:0L "  nor $v1, $t0, $t1" (-1L)

(* --- 32-bit arithmetic sign extension ------------------------------------- *)

let test_arith32 () =
  (* addu: 32-bit add, result sign-extended *)
  check "addu sign-extends" ~a:0x7FFF_FFFFL ~b:1L "  addu $v1, $t0, $t1"
    0xFFFF_FFFF_8000_0000L;
  check "subu 32-bit" ~a:0L ~b:1L "  subu $v1, $t0, $t1" (-1L);
  check "addiu sign-extends" ~a:0x7FFF_FFFFL "  addiu $v1, $t0, 1" 0xFFFF_FFFF_8000_0000L

(* --- comparisons ------------------------------------------------------------ *)

let test_comparisons () =
  check "slt signed" ~a:(-1L) ~b:1L "  slt $v1, $t0, $t1" 1L;
  check "sltu unsigned" ~a:(-1L) ~b:1L "  sltu $v1, $t0, $t1" 0L;
  check "slti" ~a:(-5L) "  slti $v1, $t0, 0" 1L;
  check "sltiu small" ~a:3L "  sltiu $v1, $t0, 10" 1L;
  check "sltiu sign-extended imm" ~a:(-2L) "  sltiu $v1, $t0, -1" 1L

(* --- shifts ------------------------------------------------------------------- *)

let test_shifts () =
  check "sll 32-bit + extend" ~a:1L "  sll $v1, $t0, 31" 0xFFFF_FFFF_8000_0000L;
  check "srl zero-fills 32" ~a:0xFFFF_FFFF_8000_0000L "  srl $v1, $t0, 31" 1L;
  check "sra sign-fills" ~a:0xFFFF_FFFF_8000_0000L "  sra $v1, $t0, 31" (-1L);
  check "dsll" ~a:1L "  dsll $v1, $t0, 20" 0x10_0000L;
  check "dsrl logical" ~a:(-1L) "  dsrl $v1, $t0, 8" 0x00FF_FFFF_FFFF_FFFFL;
  check "dsrl32 high bits" ~a:(-1L) "  dsrl32 $v1, $t0, 28" 0xFL;
  check "dsra arithmetic" ~a:(-16L) "  dsra $v1, $t0, 2" (-4L);
  check "dsll32" ~a:1L "  dsll32 $v1, $t0, 8" 0x100_0000_0000L;
  check "dsrl32" ~a:0x100_0000_0000L "  dsrl32 $v1, $t0, 8" 1L;
  check "dsllv uses low 6 bits" ~a:1L ~b:66L "  dsllv $v1, $t0, $t1" 4L;
  check "sllv uses low 5 bits" ~a:1L ~b:33L "  sllv $v1, $t0, $t1" 2L

(* --- multiply / divide ----------------------------------------------------------- *)

let test_muldiv () =
  check "mult lo" ~a:7L ~b:6L "  mult $t0, $t1\n  mflo $v1" 42L;
  check "mult hi" ~a:0x7FFF_FFFFL ~b:0x7FFF_FFFFL "  mult $t0, $t1\n  mfhi $v1" 0x3FFF_FFFFL;
  check "mult negative" ~a:(-3L) ~b:4L "  mult $t0, $t1\n  mflo $v1" (-12L);
  check "dmult lo" ~a:0x1_0000_0000L ~b:16L "  dmult $t0, $t1\n  mflo $v1" 0x10_0000_0000L;
  check "div quotient" ~a:100L ~b:7L "  div $t0, $t1\n  mflo $v1" 14L;
  check "div remainder" ~a:100L ~b:7L "  div $t0, $t1\n  mfhi $v1" 2L;
  check "div negative" ~a:(-100L) ~b:7L "  div $t0, $t1\n  mflo $v1" (-14L);
  check "divu treats operands unsigned" ~a:0xFFFF_FFFFL ~b:2L
    "  divu $t0, $t1\n  mflo $v1" 0x7FFF_FFFFL;
  check "ddivu" ~a:(-2L) ~b:2L "  ddivu $t0, $t1\n  mflo $v1" 0x7FFF_FFFF_FFFF_FFFFL;
  check "div by zero yields zero (no trap)" ~a:5L ~b:0L "  div $t0, $t1\n  mflo $v1" 0L;
  check "mthi/mfhi roundtrip" ~a:77L "  mthi $t0\n  mfhi $v1" 77L;
  check "mtlo/mflo roundtrip" ~a:88L "  mtlo $t0\n  mflo $v1" 88L

(* --- lui / immediates -------------------------------------------------------------- *)

let test_immediates () =
  check "lui sign-extends" "  lui $v1, 0x8000" 0xFFFF_FFFF_8000_0000L;
  check "ori zero-extends" ~a:0L "  ori $v1, $t0, 0xFFFF" 0xFFFFL;
  check "andi zero-extends" ~a:(-1L) "  andi $v1, $t0, 0xFF" 0xFFL;
  check "xori" ~a:0xFFL "  xori $v1, $t0, 0x0F" 0xF0L

(* --- branches ------------------------------------------------------------------------ *)

let branch_check name body ~a ~b expected =
  check name ~a ~b
    (Printf.sprintf
       "  li $v1, 0\n%s taken\n  b done\ntaken:\n  li $v1, 1\ndone:" body)
    expected

let test_branches () =
  branch_check "beq taken" "  beq $t0, $t1," ~a:5L ~b:5L 1L;
  branch_check "beq not taken" "  beq $t0, $t1," ~a:5L ~b:6L 0L;
  branch_check "bne" "  bne $t0, $t1," ~a:5L ~b:6L 1L;
  branch_check "blez zero" "  blez $t0," ~a:0L ~b:0L 1L;
  branch_check "blez negative" "  blez $t0," ~a:(-1L) ~b:0L 1L;
  branch_check "blez positive" "  blez $t0," ~a:1L ~b:0L 0L;
  branch_check "bgtz" "  bgtz $t0," ~a:1L ~b:0L 1L;
  branch_check "bltz" "  bltz $t0," ~a:(-1L) ~b:0L 1L;
  branch_check "bgez zero" "  bgez $t0," ~a:0L ~b:0L 1L

(* --- overflow trap ---------------------------------------------------------------------- *)

let test_overflow_traps () =
  let m = Machine.create () in
  let k = Os.Kernel.attach m in
  let trapped = ref false in
  Os.Kernel.set_fault_handler k (fun _ f ->
      if f.Os.Kernel.exc = Cp0.Overflow then trapped := true;
      Machine.Halt 12);
  let code, _ =
    Os.Kernel.run_program k
      "main:\n  lui $t0, 0x7FFF\n  ori $t0, $t0, 0xFFFF\n  li $t1, 1\n  add $v1, $t0, $t1\n  li $v0, 1\n  li $a0, 0\n  syscall\n"
  in
  Alcotest.(check int) "trapped exit" 12 code;
  Alcotest.(check bool) "overflow exception" true !trapped;
  (* addu must NOT trap on the same operands *)
  let m2 = Machine.create () in
  let k2 = Os.Kernel.attach m2 in
  let code2, _ =
    Os.Kernel.run_program k2
      "main:\n  lui $t0, 0x7FFF\n  ori $t0, $t0, 0xFFFF\n  li $t1, 1\n  addu $v1, $t0, $t1\n  li $v0, 1\n  li $a0, 0\n  syscall\n"
  in
  Alcotest.(check int) "addu no trap" 0 code2

(* --- loads/stores widths ------------------------------------------------------------------ *)

let test_memory_widths () =
  check "sb/lb sign" ~a:0x1FFL
    "  la $t2, scratch\n  sb $t0, 0($t2)\n  lb $v1, 0($t2)\n  b end_\n  .data\nscratch: .space 16\n  .text\nend_:"
    (-1L);
  check "sb/lbu zero" ~a:0x1FFL
    "  la $t2, scratch2\n  sb $t0, 0($t2)\n  lbu $v1, 0($t2)\n  b end2_\n  .data\nscratch2: .space 16\n  .text\nend2_:"
    0xFFL;
  check "sw/lw sign" ~a:0xFFFF_FFFFL
    "  la $t2, scratch3\n  sw $t0, 0($t2)\n  lw $v1, 0($t2)\n  b end3_\n  .data\nscratch3: .space 16\n  .text\nend3_:"
    (-1L);
  check "sw/lwu zero" ~a:0xFFFF_FFFFL
    "  la $t2, scratch4\n  sw $t0, 0($t2)\n  lwu $v1, 0($t2)\n  b end4_\n  .data\nscratch4: .space 16\n  .text\nend4_:"
    0xFFFF_FFFFL

let test_llsc () =
  (* LLD/SCD succeed when undisturbed, fail after an intervening store. *)
  check "ll/sc success"
    "  la $t2, cell1\n  lld $t3, 0($t2)\n  li $t3, 9\n  scd $t3, 0($t2)\n  move $v1, $t3\n  b e1_\n  .data\ncell1: .dword 0\n  .text\ne1_:"
    1L;
  check "ll/sc fails after store"
    "  la $t2, cell2\n  lld $t3, 0($t2)\n  sd $zero, 0($t2)\n  li $t3, 9\n  scd $t3, 0($t2)\n  move $v1, $t3\n  b e2_\n  .data\ncell2: .dword 0\n  .text\ne2_:"
    0L

(* --- jumps ----------------------------------------------------------------------------------- *)

let test_jumps () =
  check "jal links ra"
    "  jal target\nback:\n  b done_\ntarget:\n  move $v1, $ra\n  jr $ra\ndone_:\n  la $t3, back\n  xor $v1, $v1, $t3\n  sltiu $v1, $v1, 1"
    1L;
  check "jalr custom link"
    "  la $t2, tgt\n  jalr $t3, $t2\nafter:\n  b dn_\ntgt:\n  la $t4, after\n  xor $v1, $t3, $t4\n  sltiu $v1, $v1, 1\n  jr $t3\ndn_:"
    1L

let suites =
  [
    ( "isa-semantics",
      [
        Alcotest.test_case "64-bit arithmetic" `Quick test_arith64;
        Alcotest.test_case "32-bit sign extension" `Quick test_arith32;
        Alcotest.test_case "comparisons" `Quick test_comparisons;
        Alcotest.test_case "shifts" `Quick test_shifts;
        Alcotest.test_case "multiply/divide" `Quick test_muldiv;
        Alcotest.test_case "immediates" `Quick test_immediates;
        Alcotest.test_case "branches" `Quick test_branches;
        Alcotest.test_case "overflow traps" `Quick test_overflow_traps;
        Alcotest.test_case "memory widths" `Quick test_memory_widths;
        Alcotest.test_case "load-linked/store-conditional" `Quick test_llsc;
        Alcotest.test_case "jumps and links" `Quick test_jumps;
      ] );
  ]
