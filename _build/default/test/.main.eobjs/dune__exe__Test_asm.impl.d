test/test_asm.ml: Alcotest Asm Beri Char List Option Printf QCheck QCheck_alcotest String
