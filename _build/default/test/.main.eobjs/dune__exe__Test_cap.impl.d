test/test_cap.ml: Alcotest Bytes Cap Cap128 Capability Cause Fmt Int64 List Perms QCheck QCheck_alcotest Result U64
