test/test_mem.ml: Alcotest Int64 List Mem QCheck QCheck_alcotest
