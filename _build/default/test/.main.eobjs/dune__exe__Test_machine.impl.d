test/test_machine.ml: Alcotest Asm Beri Cap Code Cp0 Fun Insn Int64 List Machine Mem Os QCheck QCheck_alcotest String
