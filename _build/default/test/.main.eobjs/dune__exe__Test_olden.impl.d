test/test_olden.ml: Alcotest Array Event Gen Int64 List Olden Printf QCheck QCheck_alcotest Runtime Workload
