test/test_models.ml: Alcotest Array Event Fun Hashtbl Int64 Lazy List Models Olden Workload
