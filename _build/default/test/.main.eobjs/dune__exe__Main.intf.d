test/main.mli:
