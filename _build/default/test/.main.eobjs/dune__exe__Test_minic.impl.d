test/test_minic.ml: Alcotest Cap Exp Int64 List Machine Minic Olden Os Printf QCheck QCheck_alcotest String Workload
