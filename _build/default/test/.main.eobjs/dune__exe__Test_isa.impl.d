test/test_isa.ml: Alcotest Asm Beri Cp0 Int64 Machine Mem Os Printf Regs
