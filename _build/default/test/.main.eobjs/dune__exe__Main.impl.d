test/main.ml: Alcotest Test_asm Test_cap Test_isa Test_machine Test_mem Test_minic Test_models Test_olden Test_os
