test/test_os.ml: Alcotest Asm Beri Cap Insn List Machine Mem Option Os String
