(* Tests for the workload runtime and the Olden benchmark ports: layout
   arithmetic, runtime semantics, and benchmark correctness against
   independently computed references. *)

open Workload

let rt () = Runtime.create ()

(* --- layout arithmetic --------------------------------------------------- *)

let test_layout_bytes () =
  let l = [| Event.Ptr; Event.Scalar 4; Event.Ptr; Event.Scalar 8 |] in
  Alcotest.(check int) "8-byte pointers" 28 (Event.layout_bytes ~ptr_bytes:8 l);
  Alcotest.(check int) "32-byte pointers" 76 (Event.layout_bytes ~ptr_bytes:32 l)

let test_field_offsets () =
  let l = [| Event.Scalar 4; Event.Ptr; Event.Scalar 8 |] in
  (* pointer is aligned to its own size *)
  Alcotest.(check int) "scalar first" 0 (Event.field_offset ~ptr_bytes:8 l 0);
  Alcotest.(check int) "ptr aligned to 8" 8 (Event.field_offset ~ptr_bytes:8 l 1);
  Alcotest.(check int) "after ptr" 16 (Event.field_offset ~ptr_bytes:8 l 2);
  Alcotest.(check int) "cap aligned to 32" 32 (Event.field_offset ~ptr_bytes:32 l 1);
  Alcotest.(check int) "after cap" 64 (Event.field_offset ~ptr_bytes:32 l 2)

let prop_offsets_disjoint =
  QCheck.Test.make ~count:200 ~name:"field extents never overlap"
    QCheck.(pair (list_of_size Gen.(int_range 1 6) (int_range 0 2)) (int_range 3 5))
    (fun (spec, ptr_log) ->
      let ptr_bytes = 1 lsl ptr_log in
      let layout =
        Array.of_list
          (List.map (function 0 -> Event.Ptr | 1 -> Event.Scalar 4 | _ -> Event.Scalar 8) spec)
      in
      let extents =
        Array.to_list
          (Array.mapi
             (fun i f ->
               let off = Event.field_offset ~ptr_bytes layout i in
               (off, off + Event.field_size ~ptr_bytes f))
             layout)
      in
      let rec disjoint = function
        | (_, e1) :: ((s2, _) :: _ as rest) -> e1 <= s2 && disjoint rest
        | _ -> true
      in
      disjoint extents)

(* --- runtime semantics ----------------------------------------------------- *)

let test_runtime_values () =
  let t = rt () in
  let o = Runtime.alloc t [| Event.Ptr; Event.Scalar 8 |] in
  Alcotest.(check int64) "scalar default" 0L (Runtime.read_int t o 1);
  Runtime.write_int t o 1 42L;
  Alcotest.(check int64) "scalar roundtrip" 42L (Runtime.read_int t o 1);
  Alcotest.(check bool) "ptr default none" true (Runtime.read_ptr t o 0 = None);
  let p = Runtime.alloc t [| Event.Scalar 8 |] in
  Runtime.write_ptr t o 0 (Some p);
  (match Runtime.read_ptr t o 0 with
  | Some q -> Alcotest.(check int) "ptr roundtrip" p.Runtime.id q.Runtime.id
  | None -> Alcotest.fail "pointer lost");
  Alcotest.check_raises "type confusion rejected"
    (Invalid_argument "object #0 field 0: read_int of pointer") (fun () ->
      ignore (Runtime.read_int t o 0))

let test_runtime_events () =
  let t = rt () in
  let events = ref [] in
  Runtime.add_sink t (fun e -> events := e :: !events);
  let o = Runtime.alloc t [| Event.Ptr; Event.Scalar 8 |] in
  Runtime.write_int t o 1 7L;
  ignore (Runtime.read_int t o 1);
  Runtime.free t o;
  match List.rev !events with
  | [ Event.Alloc { id = 0; _ }; Event.Write { field = 1; ptr_value = false; _ };
      Event.Read { field = 1; _ }; Event.Free { id = 0 } ] ->
      ()
  | evs -> Alcotest.failf "unexpected event stream (%d events)" (List.length evs)

let test_runtime_deterministic () =
  let run () =
    let t = rt () in
    List.init 20 (fun _ -> Runtime.random t 1000)
  in
  Alcotest.(check (list int)) "prng deterministic" (run ()) (run ())

(* --- benchmark correctness -------------------------------------------------- *)

let test_treeadd () =
  List.iter
    (fun levels ->
      Alcotest.(check int64)
        (Printf.sprintf "treeadd %d" levels)
        (Olden.Treeadd.expected ~levels)
        (Olden.Treeadd.run (rt ()) ~levels))
    [ 1; 4; 10 ]

let test_bisort () =
  List.iter
    (fun levels ->
      let before, after, sorted = Olden.Bisort.run (rt ()) ~levels in
      Alcotest.(check int64) (Printf.sprintf "bisort %d multiset preserved" levels) before after;
      Alcotest.(check bool) (Printf.sprintf "bisort %d sorted" levels) true sorted)
    [ 1; 2; 5; 9 ]

let test_perimeter_against_raster () =
  (* Cross-check Samet's neighbor-finding perimeter against a brute-force
     rasterised computation. *)
  List.iter
    (fun levels ->
      let t = rt () in
      let size = 1 lsl levels in
      let c = size / 2 and r = size * 4 / 10 in
      let root = Olden.Perimeter.build t ~c ~r 0 0 size levels None (-1) in
      let fast = Olden.Perimeter.perimeter t root size in
      let grid = Olden.Perimeter.rasterize t root ~levels in
      let black x y = x >= 0 && y >= 0 && x < size && y < size && grid.(x).(y) in
      let brute = ref 0 in
      for x = 0 to size - 1 do
        for y = 0 to size - 1 do
          if black x y then
            List.iter
              (fun (dx, dy) -> if not (black (x + dx) (y + dy)) then incr brute)
              [ (1, 0); (-1, 0); (0, 1); (0, -1) ]
        done
      done;
      Alcotest.(check int) (Printf.sprintf "perimeter depth %d" levels) !brute fast)
    [ 3; 4; 5; 6 ]

let test_mst () =
  List.iter
    (fun n ->
      Alcotest.(check int64)
        (Printf.sprintf "mst %d" n)
        (Olden.Mst.reference ~n ())
        (Olden.Mst.run (rt ()) ~n ()))
    [ 8; 64; 256 ]

let test_em3d_deterministic () =
  let a = Olden.Em3d.run (rt ()) ~n:64 () in
  let b = Olden.Em3d.run (rt ()) ~n:64 () in
  Alcotest.(check int64) "em3d deterministic" a b;
  Alcotest.(check bool) "em3d nonzero" true (a <> 0L)

let test_health () =
  let treated = Olden.Health.run (rt ()) ~levels:3 ~steps:50 in
  Alcotest.(check bool) "patients treated" true (Int64.compare treated 10L > 0);
  let again = Olden.Health.run (rt ()) ~levels:3 ~steps:50 in
  Alcotest.(check int64) "health deterministic" treated again

let test_power () =
  let t = rt () in
  let d = Olden.Power.run t ~depth:3 ~fanout:4 () in
  Alcotest.(check bool) "demand positive" true (Int64.compare d 0L > 0);
  let again = Olden.Power.run (rt ()) ~depth:3 ~fanout:4 () in
  Alcotest.(check int64) "deterministic" d again;
  (* the price iteration is a damped oscillation: successive swings shrink *)
  match Olden.Power.demand_series (rt ()) ~depth:3 ~fanout:4 () with
  | d0 :: d1 :: d2 :: d3 :: _ ->
      let swing a b = Int64.abs (Int64.sub a b) in
      Alcotest.(check bool) "converging" true
        (Int64.compare (swing d3 d2) (swing d1 d0) < 0)
  | _ -> Alcotest.fail "series too short"

let test_tsp () =
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "tour visits all %d cities" n)
        n
        (Olden.Tsp.tour_size (rt ()) ~n ()))
    [ 1; 2; 7; 50; 200 ];
  let l = Olden.Tsp.run (rt ()) ~n:64 () in
  Alcotest.(check bool) "tour length positive" true (Int64.compare l 0L > 0);
  Alcotest.(check int64) "deterministic" l (Olden.Tsp.run (rt ()) ~n:64 ())

let test_health_frees () =
  (* health must actually free patient cells (it exercises Free events). *)
  let t = rt () in
  let frees = ref 0 in
  Runtime.add_sink t (function Event.Free _ -> incr frees | _ -> ());
  let treated = Olden.Health.run t ~levels:3 ~steps:50 in
  Alcotest.(check int) "free per treated patient" (Int64.to_int treated) !frees

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let suites =
  [
    ( "workload",
      [
        Alcotest.test_case "layout sizes" `Quick test_layout_bytes;
        Alcotest.test_case "field offsets" `Quick test_field_offsets;
        Alcotest.test_case "runtime values" `Quick test_runtime_values;
        Alcotest.test_case "runtime events" `Quick test_runtime_events;
        Alcotest.test_case "deterministic prng" `Quick test_runtime_deterministic;
      ] );
    qsuite "workload-properties" [ prop_offsets_disjoint ];
    ( "olden",
      [
        Alcotest.test_case "treeadd sums" `Quick test_treeadd;
        Alcotest.test_case "bisort sorts" `Quick test_bisort;
        Alcotest.test_case "perimeter vs raster" `Quick test_perimeter_against_raster;
        Alcotest.test_case "mst vs reference" `Quick test_mst;
        Alcotest.test_case "em3d deterministic" `Quick test_em3d_deterministic;
        Alcotest.test_case "health treats patients" `Quick test_health;
        Alcotest.test_case "power converges" `Quick test_power;
        Alcotest.test_case "tsp tour" `Quick test_tsp;
        Alcotest.test_case "health frees cells" `Quick test_health_frees;
      ] );
  ]
