(* Tests for the limit-study machinery: the replayer's address assignment
   and metric accounting, each model's distinguishing behaviour, and the
   qualitative Figure 3 / Table 2 invariants the paper reports. *)

open Workload

let feed model events = List.iter (Models.Replay.handle model) events

let simple_alloc ?(region = Event.Heap) id layout = Event.Alloc { id; layout; region }

let ptr_write ?(target = None) obj field = Event.Write { obj; field; ptr_value = true; target }
let int_write obj field = Event.Write { obj; field; ptr_value = false; target = None }
let read obj field = Event.Read { obj; field }

let node = [| Event.Ptr; Event.Ptr; Event.Scalar 8 |]

(* --- replayer core ---------------------------------------------------------- *)

let test_replay_accounting () =
  let m = Models.Baseline.create () in
  feed m [ simple_alloc 0 node; int_write 0 2; read 0 2; read 0 0 ];
  let mx = m.Models.Replay.metrics in
  (* 1 allocator header access + 3 field accesses *)
  Alcotest.(check int) "refs" 4 mx.Models.Metrics.refs;
  Alcotest.(check int) "bytes" (16 + 8 + 8 + 8) mx.Models.Metrics.bytes;
  Alcotest.(check bool) "instrs include allocator" true (mx.Models.Metrics.instrs > 30)

let test_replay_stack_lifo () =
  let m = Models.Baseline.create () in
  let sp0 = m.Models.Replay.stack_ptr in
  feed m [ simple_alloc ~region:Event.Stack 0 node ];
  Alcotest.(check bool) "stack grew down" true
    (Int64.compare m.Models.Replay.stack_ptr sp0 < 0);
  feed m [ Event.Free { id = 0 } ];
  Alcotest.(check int64) "stack popped" sp0 m.Models.Replay.stack_ptr

let test_replay_ptr_inflation () =
  let base = Models.Baseline.create () in
  let c256 = Models.Cheri_model.create_256 () in
  let events = [ simple_alloc 0 node; read 0 0; read 0 2 ] in
  feed base events;
  feed c256 events;
  (* node is 24 B under 8-byte pointers, 72 B under capabilities *)
  Alcotest.(check bool) "capability model moves more bytes" true
    (c256.Models.Replay.metrics.Models.Metrics.bytes
    > base.Models.Replay.metrics.Models.Metrics.bytes);
  Alcotest.(check int) "same reference count"
    base.Models.Replay.metrics.Models.Metrics.refs
    c256.Models.Replay.metrics.Models.Metrics.refs

(* --- model-specific behaviour ------------------------------------------------ *)

let test_mondrian_syscalls () =
  let m, _ = Models.Mondrian.create () in
  feed m
    [ simple_alloc 0 node; simple_alloc ~region:Event.Stack 1 node; Event.Free { id = 0 } ];
  (* one syscall per heap alloc/free; none for the stack frame *)
  Alcotest.(check int) "syscalls" 2 m.Models.Replay.metrics.Models.Metrics.syscalls

let test_mmachine_padding () =
  let m = Models.Mmachine.create () in
  (* 24-byte node + 16-byte header -> 64-byte power-of-two chunk *)
  feed m [ simple_alloc 0 node ];
  let info = Hashtbl.find m.Models.Replay.objects 0 in
  Alcotest.(check int) "pow2 padded" 64 info.Models.Replay.size;
  Alcotest.(check int64) "pow2 aligned" 0L (Int64.rem info.Models.Replay.addr 64L)

let test_hardbound_compression () =
  (* Pointers to small (compressible) objects cost no bounds-table access;
     pointers into a large object do. *)
  let m_small, _ = Models.Hardbound.create () in
  let small_target = simple_alloc 1 node in
  feed m_small
    [ simple_alloc 0 node; small_target; ptr_write ~target:(Some 1) 0 0; read 0 0 ];
  let m_large, _ = Models.Hardbound.create () in
  let big = Array.make 200 (Event.Scalar 8) in
  feed m_large
    [ simple_alloc 0 node; Event.Alloc { id = 1; layout = big; region = Event.Heap };
      ptr_write ~target:(Some 1) 0 0; read 0 0 ];
  Alcotest.(check bool) "incompressible pointer costs table refs" true
    (m_large.Models.Replay.metrics.Models.Metrics.refs
    > m_small.Models.Replay.metrics.Models.Metrics.refs)

let test_impx_table_pages () =
  let base = Models.Baseline.create () in
  let mpx = Models.Impx.create_table () in
  let events =
    List.concat_map
      (fun i ->
        [ simple_alloc i node; ptr_write i 0; read i 0 ])
      (List.init 400 Fun.id)
  in
  feed base events;
  feed mpx events;
  let bp = Models.Metrics.pages base.Models.Replay.metrics in
  let mp = Models.Metrics.pages mpx.Models.Replay.metrics in
  (* "more than 4 pages for each page of memory containing pointers" *)
  Alcotest.(check bool) "table multiplies pages" true (mp >= 4 * bp)

let test_soft_fp_instructions () =
  let m = Models.Soft_fp.create () in
  feed m [ simple_alloc 0 node; ptr_write 0 0; read 0 0 ];
  let mx = m.Models.Replay.metrics in
  Alcotest.(check bool) "software checks cost instructions" true
    (mx.Models.Metrics.extra_opt > 0);
  Alcotest.(check bool) "pessimistic costs at least optimistic" true
    (mx.Models.Metrics.extra_pess >= mx.Models.Metrics.extra_opt)

let test_cheri_alloc_instrs () =
  let m = Models.Cheri_model.create_256 () in
  feed m [ simple_alloc 0 node; read 0 0; read 0 1; read 0 2 ];
  (* CIncBase + CSetLen at allocation; no per-access instructions. *)
  Alcotest.(check int) "2 instructions per allocation" 2
    m.Models.Replay.metrics.Models.Metrics.extra_opt;
  Alcotest.(check int) "same pessimistically" 2
    m.Models.Replay.metrics.Models.Metrics.extra_pess

(* --- Figure 3 qualitative invariants ---------------------------------------- *)

let fig3_rows =
  lazy
    (let results =
       [
         Models.Runner.run ~name:"treeadd" (fun rt -> Olden.Treeadd.run rt ~levels:10);
         Models.Runner.run ~name:"mst" (fun rt -> Olden.Mst.run rt ~n:96 ());
         Models.Runner.run ~name:"perimeter" (fun rt ->
             Int64.of_int (Olden.Perimeter.run rt ~levels:6));
         Models.Runner.run ~name:"bisort" (fun rt ->
             let _, after, _ = Olden.Bisort.run rt ~levels:9 in
             after);
       ]
     in
     Models.Runner.average results)

let row name =
  List.find (fun (r : Models.Metrics.row) -> r.Models.Metrics.name = name) (Lazy.force fig3_rows)

let test_fig3_pages_ranking () =
  (* iMPX has the highest page overhead; M-Machine performs poorly; CHERI
     and the simple fat-pointer approaches stay comparatively small. *)
  let mpx = row "MPX" and mm = row "M-Machine" and c256 = row "CHERI-256" in
  let c128 = row "CHERI-128" and sfp = row "Soft FP" in
  Alcotest.(check bool) "iMPX worst pages" true
    (List.for_all
       (fun (r : Models.Metrics.row) -> mpx.Models.Metrics.o_pages >= r.Models.Metrics.o_pages)
       (Lazy.force fig3_rows));
  Alcotest.(check bool) "M-Machine poor pages" true
    (mm.Models.Metrics.o_pages > c256.Models.Metrics.o_pages);
  Alcotest.(check bool) "fat-pointer pages small" true
    (c128.Models.Metrics.o_pages < 60.0 && sfp.Models.Metrics.o_pages < 60.0)

let test_fig3_bytes_ranking () =
  (* iMPX moves the most bytes; CHERI-256 is traffic-heavy; CHERI-128 is
     competitive; Mondrian stays small. *)
  let mpx = row "MPX" and c256 = row "CHERI-256" and c128 = row "CHERI-128" in
  let mondrian = row "Mondrian" in
  Alcotest.(check bool) "iMPX most bytes" true
    (mpx.Models.Metrics.o_bytes >= c256.Models.Metrics.o_bytes);
  Alcotest.(check bool) "256-bit CHERI heavy" true (c256.Models.Metrics.o_bytes > 80.0);
  Alcotest.(check bool) "128-bit CHERI halves traffic" true
    (c128.Models.Metrics.o_bytes < 0.6 *. c256.Models.Metrics.o_bytes);
  Alcotest.(check bool) "Mondrian small traffic" true
    (mondrian.Models.Metrics.o_bytes < c128.Models.Metrics.o_bytes)

let test_fig3_refs_ranking () =
  (* CHERI, Hardbound, and the M-Machine add (almost) no references; the
     table/software schemes add many. *)
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " negligible refs") true
        ((row name).Models.Metrics.o_refs < 5.0))
    [ "CHERI-256"; "CHERI-128"; "Hardbound"; "M-Machine" ];
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " many refs") true
        ((row name).Models.Metrics.o_refs > 30.0))
    [ "MPX"; "Soft FP" ]

let test_fig3_instr_ranking () =
  (* Hardware fat pointers: optimistic = pessimistic (implicit checks).
     Software schemes: pessimistic costs much more. *)
  List.iter
    (fun name ->
      let r = row name in
      Alcotest.(check (float 0.001)) (name ^ " opt=pess")
        r.Models.Metrics.o_instr_opt r.Models.Metrics.o_instr_pess)
    [ "CHERI-256"; "CHERI-128"; "Hardbound"; "M-Machine" ];
  List.iter
    (fun name ->
      let r = row name in
      Alcotest.(check bool) (name ^ " pess > opt") true
        (r.Models.Metrics.o_instr_pess > r.Models.Metrics.o_instr_opt))
    [ "MPX"; "MPX (FP)"; "Soft FP" ];
  let sfp = row "Soft FP" in
  Alcotest.(check bool) "software FP highest pessimistic" true
    (List.for_all
       (fun (r : Models.Metrics.row) ->
         sfp.Models.Metrics.o_instr_pess >= r.Models.Metrics.o_instr_pess)
       (Lazy.force fig3_rows))

let test_fig3_syscall_rate () =
  (* Only Mondrian needs a syscall per allocation event. *)
  let mondrian = row "Mondrian" in
  Alcotest.(check bool) "Mondrian syscall-heavy" true
    (mondrian.Models.Metrics.syscall_count > 100);
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " few syscalls") true
        ((row name).Models.Metrics.syscall_count < 20))
    [ "CHERI-256"; "MPX"; "Hardbound"; "M-Machine" ]

(* --- Table 2 ------------------------------------------------------------------ *)

let test_table2 () =
  Alcotest.(check int) "seven mechanisms" 7 (List.length Models.Criteria.table);
  Alcotest.(check bool) "CHERI dominates" true (Models.Criteria.verify_cheri_dominates ());
  let row m =
    List.find (fun r -> r.Models.Criteria.mechanism = m) Models.Criteria.table
  in
  Alcotest.(check bool) "MMU not fine grained" true
    ((row "MMU").Models.Criteria.fine_grained = Models.Criteria.No);
  Alcotest.(check bool) "Hardbound lacks access control" true
    ((row "Hardbound").Models.Criteria.access_control = Models.Criteria.No);
  Alcotest.(check bool) "M-Machine not incremental" true
    ((row "M-Machine").Models.Criteria.incremental_deployment = Models.Criteria.No)

(* --- Figure 6 / Section 9 ------------------------------------------------------ *)

let test_area_model () =
  let sum = List.fold_left (fun a c -> a +. Models.Area.pct c) 0.0 Models.Area.components in
  Alcotest.(check bool) "percentages sum to 100" true (abs_float (sum -. 100.0) < 0.5);
  let overhead = Models.Area.area_overhead_pct () in
  Alcotest.(check bool) "area overhead near 32%" true
    (abs_float (overhead -. Models.Area.paper_area_overhead_pct) < 3.0);
  Alcotest.(check bool) "fmax penalty near 8.1%" true
    (abs_float (Models.Area.fmax_penalty_pct -. Models.Area.paper_fmax_penalty_pct) < 0.5)

let suites =
  [
    ( "replay",
      [
        Alcotest.test_case "metric accounting" `Quick test_replay_accounting;
        Alcotest.test_case "stack LIFO" `Quick test_replay_stack_lifo;
        Alcotest.test_case "pointer inflation" `Quick test_replay_ptr_inflation;
      ] );
    ( "models",
      [
        Alcotest.test_case "Mondrian syscalls" `Quick test_mondrian_syscalls;
        Alcotest.test_case "M-Machine pow2 padding" `Quick test_mmachine_padding;
        Alcotest.test_case "Hardbound compression" `Quick test_hardbound_compression;
        Alcotest.test_case "iMPX table pages" `Quick test_impx_table_pages;
        Alcotest.test_case "software FP instructions" `Quick test_soft_fp_instructions;
        Alcotest.test_case "CHERI allocation cost" `Quick test_cheri_alloc_instrs;
      ] );
    ( "fig3-invariants",
      [
        Alcotest.test_case "page ranking" `Quick test_fig3_pages_ranking;
        Alcotest.test_case "byte ranking" `Quick test_fig3_bytes_ranking;
        Alcotest.test_case "reference ranking" `Quick test_fig3_refs_ranking;
        Alcotest.test_case "instruction ranking" `Quick test_fig3_instr_ranking;
        Alcotest.test_case "syscall rate" `Quick test_fig3_syscall_rate;
      ] );
    ( "table2-fig6",
      [
        Alcotest.test_case "Table 2 criteria" `Quick test_table2;
        Alcotest.test_case "area/fmax model" `Quick test_area_model;
      ] );
  ]
