(* Tests for the capability model core (lib/core): U64 arithmetic, the
   permissions lattice, capability manipulation monotonicity, access checks,
   sealing, and the 256/128-bit memory images. *)

open Cap

let u64 = Alcotest.testable (fun ppf v -> U64.pp ppf v) U64.equal
let cap = Alcotest.testable Capability.pp Capability.equal
let cause = Alcotest.testable Cause.pp Cause.equal

let check_ok what = function
  | Ok v -> v
  | Error c -> Alcotest.failf "%s: unexpected capability exception: %s" what (Cause.to_string c)

let check_err what expected = function
  | Ok _ -> Alcotest.failf "%s: expected %s, got Ok" what (Cause.to_string expected)
  | Error c -> Alcotest.check cause what expected c

(* --- U64 -------------------------------------------------------------- *)

let test_u64_compare () =
  Alcotest.(check bool) "unsigned: -1 > 1" true (U64.gt (-1L) 1L);
  Alcotest.(check bool) "0 < max" true (U64.lt 0L U64.max_value);
  Alcotest.(check bool) "max >= max" true (U64.ge U64.max_value U64.max_value);
  Alcotest.(check u64) "min" 1L (U64.min 1L (-1L));
  Alcotest.(check u64) "max" (-1L) (U64.max 1L (-1L))

let test_u64_in_range () =
  let ok = U64.in_range in
  Alcotest.(check bool) "basic inside" true (ok ~addr:10L ~size:4L ~base:8L ~length:16L);
  Alcotest.(check bool) "exact fit" true (ok ~addr:8L ~size:16L ~base:8L ~length:16L);
  Alcotest.(check bool) "one past end" false (ok ~addr:9L ~size:16L ~base:8L ~length:16L);
  Alcotest.(check bool) "below base" false (ok ~addr:7L ~size:1L ~base:8L ~length:16L);
  Alcotest.(check bool) "zero length seg" false (ok ~addr:8L ~size:1L ~base:8L ~length:0L);
  (* Wrap-around: the almighty segment admits the very last byte. *)
  Alcotest.(check bool) "last byte of address space" true
    (ok ~addr:(Int64.sub U64.max_value 1L) ~size:1L ~base:0L ~length:U64.max_value);
  (* High segment near 2^64. *)
  Alcotest.(check bool) "high segment inside" true
    (ok ~addr:0xFFFF_FFFF_FFFF_FFF0L ~size:8L ~base:0xFFFF_FFFF_FFFF_FFF0L ~length:15L);
  Alcotest.(check bool) "high segment overflow" false
    (ok ~addr:0xFFFF_FFFF_FFFF_FFF8L ~size:8L ~base:0xFFFF_FFFF_FFFF_FFF0L ~length:15L)

let test_u64_align () =
  Alcotest.(check u64) "align_down" 32L (U64.align_down 37L 32L);
  Alcotest.(check u64) "align_up" 64L (U64.align_up 37L 32L);
  Alcotest.(check u64) "align_up exact" 64L (U64.align_up 64L 32L);
  Alcotest.(check u64) "pow2 of 1" 1L (U64.round_up_pow2 1L);
  Alcotest.(check u64) "pow2 of 3" 4L (U64.round_up_pow2 3L);
  Alcotest.(check u64) "pow2 of 4" 4L (U64.round_up_pow2 4L);
  Alcotest.(check u64) "pow2 of 1025" 2048L (U64.round_up_pow2 1025L)

let test_u64_divrem () =
  Alcotest.(check u64) "unsigned div" 1L (U64.div (-1L) 0x8000_0000_0000_0000L);
  Alcotest.(check u64) "unsigned rem" 0x7FFF_FFFF_FFFF_FFFFL
    (U64.rem (-1L) 0x8000_0000_0000_0000L)

(* --- Perms ------------------------------------------------------------ *)

let test_perms_lattice () =
  let p = Perms.union Perms.load Perms.store in
  Alcotest.(check bool) "has load" true (Perms.has p Perms.load);
  Alcotest.(check bool) "no exec" false (Perms.has p Perms.execute);
  Alcotest.(check bool) "subset of all" true (Perms.subset p Perms.all);
  Alcotest.(check bool) "all not subset" false (Perms.subset Perms.all p);
  Alcotest.(check bool) "inter" true
    (Perms.equal (Perms.inter p Perms.load) Perms.load);
  Alcotest.(check bool) "diff removes" false
    (Perms.has (Perms.diff p Perms.load) Perms.load)

let test_perms_user () =
  let p = Perms.user 0 and q = Perms.user 15 in
  Alcotest.(check bool) "user distinct" false (Perms.equal p q);
  Alcotest.(check bool) "user within mask" true (Perms.subset (Perms.union p q) Perms.all);
  Alcotest.check_raises "user 16 rejected" (Invalid_argument "Perms.user")
    (fun () -> ignore (Perms.user 16))

(* --- Capability manipulation ------------------------------------------ *)

let heap_cap =
  Capability.make
    ~perms:(Perms.union Perms.load (Perms.union Perms.store Perms.load_cap))
    ~base:0x1000L ~length:0x100L

let test_inc_base () =
  let c = check_ok "inc_base" (Capability.inc_base heap_cap 0x10L) in
  Alcotest.check u64 "base moved" 0x1010L (Capability.base c);
  Alcotest.check u64 "length shrunk" 0xF0L (Capability.length c);
  Alcotest.(check bool) "still tagged" true (Capability.tag c);
  check_err "inc_base past end" Cause.Length_violation
    (Capability.inc_base heap_cap 0x101L);
  let whole = check_ok "inc_base whole" (Capability.inc_base heap_cap 0x100L) in
  Alcotest.check u64 "zero length left" 0L (Capability.length whole)

let test_set_len () =
  let c = check_ok "set_len" (Capability.set_len heap_cap 0x80L) in
  Alcotest.check u64 "length reduced" 0x80L (Capability.length c);
  check_err "set_len grow" Cause.Length_violation (Capability.set_len heap_cap 0x101L);
  let same = check_ok "set_len same" (Capability.set_len heap_cap 0x100L) in
  Alcotest.check cap "unchanged" heap_cap same

let test_and_perm () =
  let c = check_ok "and_perm" (Capability.and_perm heap_cap Perms.load) in
  Alcotest.(check bool) "kept load" true (Perms.has (Capability.perms c) Perms.load);
  Alcotest.(check bool) "dropped store" false (Perms.has (Capability.perms c) Perms.store);
  (* const-qualified pointer: disclaim write permission (Section 5.1). *)
  let const = check_ok "const" (Capability.and_perm heap_cap (Perms.diff Perms.all Perms.store)) in
  check_err "store via const" Cause.Permit_store_violation
    (Capability.check_access const Capability.Store ~addr:0x1000L ~size:8L)

let test_clear_tag () =
  let c = Capability.clear_tag heap_cap in
  Alcotest.(check bool) "untagged" false (Capability.tag c);
  check_err "ops on untagged" Cause.Tag_violation (Capability.inc_base c 0L);
  check_err "access via untagged" Cause.Tag_violation
    (Capability.check_access c Capability.Load ~addr:0x1000L ~size:1L)

let test_ptr_conversions () =
  let c0 = Capability.make ~perms:Perms.all ~base:0x4000L ~length:0x1000L in
  let c = check_ok "derive" (Capability.inc_base c0 0x40L) in
  Alcotest.check u64 "to_ptr" 0x40L (Capability.to_ptr c ~relative_to:c0);
  Alcotest.check u64 "to_ptr untagged = NULL" 0L
    (Capability.to_ptr (Capability.clear_tag c) ~relative_to:c0);
  let back = check_ok "from_ptr" (Capability.from_ptr c0 0x40L) in
  Alcotest.check u64 "round trip base" (Capability.base c) (Capability.base back);
  let nullc = check_ok "from_ptr 0" (Capability.from_ptr c0 0L) in
  Alcotest.check cap "NULL cast" Capability.null nullc

let test_access_checks () =
  let ok = check_ok "load in bounds"
      (Capability.check_access heap_cap Capability.Load ~addr:0x10FFL ~size:1L) in
  ignore ok;
  check_err "load out of bounds" Cause.Length_violation
    (Capability.check_access heap_cap Capability.Load ~addr:0x10FFL ~size:2L);
  check_err "load below base" Cause.Length_violation
    (Capability.check_access heap_cap Capability.Load ~addr:0xFFFL ~size:1L);
  check_err "execute not permitted" Cause.Permit_execute_violation
    (Capability.check_access heap_cap Capability.Execute ~addr:0x1000L ~size:4L);
  check_err "store-cap not permitted" Cause.Permit_store_capability_violation
    (Capability.check_access heap_cap Capability.Store_cap ~addr:0x1000L ~size:32L);
  let r = Capability.check_access Capability.almighty Capability.Execute
      ~addr:0xFFFF_FFFF_0000_0000L ~size:4L in
  ignore (check_ok "almighty executes anywhere" r)

let test_sealing () =
  let authority =
    Capability.make ~perms:(Perms.union Perms.seal Perms.load) ~base:0x20L ~length:0x10L
  in
  let sealed = check_ok "seal" (Capability.seal heap_cap ~authority ~otype:0x25) in
  Alcotest.(check bool) "sealed" true (Capability.is_sealed sealed);
  Alcotest.(check int) "otype" 0x25 (Capability.otype sealed);
  check_err "deref sealed" Cause.Seal_violation
    (Capability.check_access sealed Capability.Load ~addr:0x1000L ~size:1L);
  check_err "mutate sealed" Cause.Seal_violation (Capability.inc_base sealed 0L);
  check_err "reseal" Cause.Seal_violation (Capability.seal sealed ~authority ~otype:0x25);
  check_err "seal otype out of authority" Cause.Length_violation
    (Capability.seal heap_cap ~authority ~otype:0x31);
  check_err "seal without permission" Cause.Permit_seal_violation
    (Capability.seal heap_cap ~authority:heap_cap ~otype:0x25);
  let unsealed = check_ok "unseal" (Capability.unseal sealed ~authority ~otype:0x25) in
  Alcotest.check cap "unseal round trip" heap_cap unsealed;
  check_err "unseal wrong otype" Cause.Type_violation
    (Capability.unseal sealed ~authority ~otype:0x26)

let test_rights_subset () =
  let sub = check_ok "sub" (Capability.inc_base heap_cap 0x10L) in
  Alcotest.(check bool) "derived subset" true (Capability.rights_subset sub heap_cap);
  Alcotest.(check bool) "parent not subset" false (Capability.rights_subset heap_cap sub);
  Alcotest.(check bool) "untagged subset of anything" true
    (Capability.rights_subset (Capability.clear_tag Capability.almighty) Capability.null);
  Alcotest.(check bool) "everything subset of almighty" true
    (Capability.rights_subset heap_cap Capability.almighty)

let test_bytes_roundtrip () =
  let sealed =
    check_ok "seal"
      (Capability.seal heap_cap
         ~authority:(Capability.make ~perms:Perms.all ~base:0L ~length:0x1000L)
         ~otype:0x123)
  in
  List.iter
    (fun c ->
      let b = Capability.to_bytes c in
      Alcotest.(check int) "32 bytes" 32 (Bytes.length b);
      let c' = Capability.of_bytes ~tag:(Capability.tag c) b in
      Alcotest.check cap "roundtrip" c c')
    [ heap_cap; Capability.almighty; Capability.null; sealed ];
  (* A load of the same bytes without the tag yields data, not a capability. *)
  let b = Capability.to_bytes heap_cap in
  let c' = Capability.of_bytes ~tag:false b in
  Alcotest.(check bool) "untagged load" false (Capability.tag c')

(* --- Cap128 ------------------------------------------------------------ *)

let small_cap = Capability.make ~perms:(Perms.union Perms.load Perms.store)
    ~base:0xAB_CDEF_0123L ~length:0x10_0000L

let test_cap128_roundtrip () =
  List.iter
    (fun c ->
      Alcotest.(check bool) "representable" true (Cap128.representable c);
      let t = check_ok "compress" (Cap128.compress c) in
      let c' = Cap128.decompress ~tag:(Capability.tag c) t in
      Alcotest.check cap "roundtrip" c c')
    [ small_cap; Capability.null; Capability.make ~perms:Perms.none ~base:0L ~length:0L ]

let test_cap128_whole_space () =
  (* The reset capability must survive compression. *)
  let c = Capability.make ~perms:(Perms.of_int 0xFFFF) ~base:0L ~length:U64.max_value in
  Alcotest.(check bool) "almighty-length representable" true (Cap128.representable c);
  let t = check_ok "compress" (Cap128.compress c) in
  Alcotest.check cap "roundtrip" c (Cap128.decompress ~tag:true t)

let test_cap128_rejects () =
  let big = Capability.make ~perms:Perms.load ~base:(Int64.shift_left 1L 41) ~length:8L in
  Alcotest.(check bool) "unrepresentable base" false (Cap128.representable big);
  check_err "compress refuses" Cause.Non_exact_bounds (Cap128.compress big);
  let long = Capability.make ~perms:Perms.load ~base:0L ~length:(Int64.shift_left 1L 40) in
  check_err "compress refuses long" Cause.Non_exact_bounds (Cap128.compress long)

let test_cap128_bytes () =
  let t = check_ok "compress" (Cap128.compress small_cap) in
  let b = Cap128.to_bytes t in
  Alcotest.(check int) "16 bytes" 16 (Bytes.length b);
  Alcotest.(check bool) "roundtrip" true (Cap128.equal t (Cap128.of_bytes b))

(* --- Properties --------------------------------------------------------- *)

let gen_perms = QCheck.Gen.map Perms.of_int (QCheck.Gen.int_bound 0x3FFFFFFF)

let gen_cap =
  QCheck.Gen.(
    map3
      (fun p (b, l) tag ->
        let c = Capability.make ~perms:p ~base:b ~length:l in
        if tag then c else Capability.clear_tag c)
      gen_perms
      (pair (map Int64.of_int (int_bound 0xFFFFFF)) (map Int64.of_int (int_bound 0xFFFFFF)))
      bool)

let arb_cap = QCheck.make ~print:(Fmt.to_to_string Capability.pp) gen_cap

let prop_monotonic name f =
  QCheck.Test.make ~count:500 ~name
    (QCheck.pair arb_cap (QCheck.map Int64.of_int QCheck.small_nat))
    (fun (c, v) ->
      match f c v with
      | Error _ -> true
      | Ok c' -> Capability.rights_subset c' c)

let prop_inc_base = prop_monotonic "inc_base monotonic" Capability.inc_base
let prop_set_len = prop_monotonic "set_len monotonic" Capability.set_len

let prop_and_perm =
  QCheck.Test.make ~count:500 ~name:"and_perm monotonic"
    (QCheck.pair arb_cap (QCheck.map Perms.of_int (QCheck.int_bound 0x3FFFFFFF)))
    (fun (c, m) ->
      match Capability.and_perm c m with
      | Error _ -> true
      | Ok c' -> Capability.rights_subset c' c)

let prop_access_within_derived =
  (* Any access permitted through a derived capability is permitted through
     its parent: no manipulation sequence can widen authority. *)
  QCheck.Test.make ~count:500 ~name:"derived access implies parent access"
    (QCheck.quad arb_cap QCheck.small_nat QCheck.small_nat QCheck.small_nat)
    (fun (c, d, off, sz) ->
      let d = Int64.of_int d and off = Int64.of_int off in
      let sz = Int64.of_int (max 1 sz) in
      match Capability.inc_base c d with
      | Error _ -> true
      | Ok c' ->
          let addr = Int64.add (Capability.base c') off in
          (match Capability.check_access c' Capability.Load ~addr ~size:sz with
          | Error _ -> true
          | Ok () ->
              Result.is_ok (Capability.check_access c Capability.Load ~addr ~size:sz)))

let prop_bytes_roundtrip =
  QCheck.Test.make ~count:500 ~name:"256-bit image roundtrip" arb_cap (fun c ->
      Capability.equal c (Capability.of_bytes ~tag:(Capability.tag c) (Capability.to_bytes c)))

let prop_cap128_roundtrip =
  QCheck.Test.make ~count:500 ~name:"128-bit compress/decompress exact" arb_cap
    (fun c ->
      (* Untagged capabilities are opaque data: the 128-bit store preserves
         bits, not field interpretation, so only tagged ones must roundtrip. *)
      if not (Capability.tag c) then QCheck.assume_fail ()
      else
      let c =
        (* Restrict perms to the compressible set; bases/lengths from gen_cap
           already fit in 40 bits. *)
        match Capability.and_perm c (Perms.of_int 0xFFFF) with
        | Ok c -> c
        | Error _ -> QCheck.assume_fail ()
      in
      if not (Cap128.representable c) then QCheck.assume_fail ()
      else
        match Cap128.compress c with
        | Error _ -> false
        | Ok t -> Capability.equal c (Cap128.decompress ~tag:(Capability.tag c) t))

let prop_in_range_sound =
  QCheck.Test.make ~count:1000 ~name:"in_range agrees with integer model"
    QCheck.(quad small_nat small_nat small_nat small_nat)
    (fun (addr, size, base, length) ->
      let i64 = Int64.of_int in
      let expected = addr >= base && size <= length && addr - base <= length - size in
      U64.in_range ~addr:(i64 addr) ~size:(i64 size) ~base:(i64 base) ~length:(i64 length)
      = expected)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let suites =
  [
    ( "u64",
      [
        Alcotest.test_case "unsigned compare" `Quick test_u64_compare;
        Alcotest.test_case "in_range" `Quick test_u64_in_range;
        Alcotest.test_case "alignment" `Quick test_u64_align;
        Alcotest.test_case "unsigned div/rem" `Quick test_u64_divrem;
      ] );
    ( "perms",
      [
        Alcotest.test_case "lattice ops" `Quick test_perms_lattice;
        Alcotest.test_case "user permissions" `Quick test_perms_user;
      ] );
    ( "capability",
      [
        Alcotest.test_case "CIncBase" `Quick test_inc_base;
        Alcotest.test_case "CSetLen" `Quick test_set_len;
        Alcotest.test_case "CAndPerm" `Quick test_and_perm;
        Alcotest.test_case "CClearTag" `Quick test_clear_tag;
        Alcotest.test_case "CToPtr/CFromPtr" `Quick test_ptr_conversions;
        Alcotest.test_case "access checks" `Quick test_access_checks;
        Alcotest.test_case "sealing" `Quick test_sealing;
        Alcotest.test_case "rights_subset" `Quick test_rights_subset;
        Alcotest.test_case "memory image" `Quick test_bytes_roundtrip;
      ] );
    ( "cap128",
      [
        Alcotest.test_case "roundtrip" `Quick test_cap128_roundtrip;
        Alcotest.test_case "whole address space" `Quick test_cap128_whole_space;
        Alcotest.test_case "rejects unrepresentable" `Quick test_cap128_rejects;
        Alcotest.test_case "memory image" `Quick test_cap128_bytes;
      ] );
    qsuite "cap-properties"
      [
        prop_inc_base;
        prop_set_len;
        prop_and_perm;
        prop_access_within_derived;
        prop_bytes_roundtrip;
        prop_cap128_roundtrip;
        prop_in_range_sound;
      ];
  ]
