(* Tests for the minic compiler: language semantics, the three pointer
   lowerings, mode-dependent layout, safety behaviour (the CHERI trap /
   software check / silent-corruption triptych), and agreement of the
   compiled Olden benchmarks with the native reference implementations. *)

let all_modes =
  [ Minic.Layout.Legacy; Minic.Layout.Cheri; Minic.Layout.Cheri128; Minic.Layout.Softcheck ]

let run_mode ?fault_handler mode src =
  let asm = Minic.Driver.compile ~mode src in
  let m = Exp.Bench_run.machine_for mode in
  let k = Os.Kernel.attach m in
  (match fault_handler with Some f -> Os.Kernel.set_fault_handler k f | None -> ());
  let code, out = Os.Kernel.run_program ~max_insns:100_000_000L k asm in
  (code, String.split_on_char '\n' out |> List.filter (fun s -> String.trim s <> ""))

let check_all_modes what src expected =
  List.iter
    (fun mode ->
      let code, out = run_mode mode src in
      Alcotest.(check int) (what ^ " exit " ^ Minic.Layout.mode_name mode) 0 code;
      Alcotest.(check (list string))
        (what ^ " output " ^ Minic.Layout.mode_name mode)
        expected out)
    all_modes

(* --- language semantics --------------------------------------------------- *)

let test_arith_and_control () =
  check_all_modes "arith"
    {|
int main(void) {
  int a = 6 * 7;
  int b = 100 / 7;       // 14
  int c = 100 % 7;       // 2
  int d = (1 << 10) >> 3; // 128
  int e = 0 - 5;
  print_int(a); print_int(b); print_int(c); print_int(d); print_int(e);
  if (a > 40 && b < 20) print_int(1); else print_int(0);
  if (a < 40 || c == 2) print_int(1); else print_int(0);
  int i = 0;
  int total = 0;
  for (i = 1; i <= 10; i = i + 1) total = total + i;
  print_int(total);
  return 0;
}
|}
    [ "42"; "14"; "2"; "128"; "-5"; "1"; "1"; "55" ]

let test_functions_recursion () =
  check_all_modes "fib"
    {|
int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}
int main(void) { print_int(fib(15)); return 0; }
|}
    [ "610" ]

let test_structs_and_pointers () =
  check_all_modes "list"
    {|
struct cell { int v; struct cell *next; };
int main(void) {
  struct cell *head = NULL;
  int i = 0;
  while (i < 10) {
    struct cell *c = (struct cell*) malloc(sizeof(struct cell));
    c->v = i * i;
    c->next = head;
    head = c;
    i = i + 1;
  }
  int total = 0;
  while (head != NULL) {
    total = total + head->v;
    head = head->next;
  }
  print_int(total);   // 285
  return 0;
}
|}
    [ "285" ]

let test_arrays () =
  check_all_modes "arrays"
    {|
int main(void) {
  int *a = (int*) malloc(32 * sizeof(int));
  int i = 0;
  while (i < 32) { a[i] = i; i = i + 1; }
  int total = 0;
  i = 0;
  while (i < 32) { total = total + a[i]; i = i + 1; }
  print_int(total);   // 496
  return 0;
}
|}
    [ "496" ]

let test_ptr_to_ptr () =
  check_all_modes "ptr-to-ptr"
    {|
struct box { int v; };
int main(void) {
  struct box **table = (struct box**) malloc(8 * sizeof(struct box*));
  int i = 0;
  while (i < 8) {
    struct box *b = (struct box*) malloc(sizeof(struct box));
    b->v = i * 3;
    table[i] = b;
    i = i + 1;
  }
  int total = 0;
  i = 0;
  while (i < 8) { total = total + table[i]->v; i = i + 1; }
  print_int(total);   // 84
  return 0;
}
|}
    [ "84" ]

let test_globals () =
  check_all_modes "globals"
    {|
int counter;
struct cell { int v; struct cell *next; };
struct cell *g_head;
void bump(void) { counter = counter + 1; }
int main(void) {
  bump(); bump(); bump();
  g_head = (struct cell*) malloc(sizeof(struct cell));
  g_head->v = 41;
  print_int(counter + g_head->v);
  return 0;
}
|}
    [ "44" ]

let test_sizeof_per_mode () =
  let src =
    {|
struct pair { struct pair *a; struct pair *b; int v; };
int main(void) { print_int(sizeof(struct pair)); print_int(sizeof(int*)); return 0; }
|}
  in
  let expect mode =
    match mode with
    | Minic.Layout.Legacy -> [ "24"; "8" ] (* 8+8+8 *)
    | Minic.Layout.Cheri -> [ "96"; "32" ] (* 32+32+8 padded to 32 *)
    | Minic.Layout.Cheri128 -> [ "48"; "16" ] (* 16+16+8 padded to 16 *)
    | Minic.Layout.Softcheck -> [ "56"; "24" ] (* 24+24+8 *)
  in
  List.iter
    (fun mode ->
      let _, out = run_mode mode src in
      Alcotest.(check (list string)) ("sizeof " ^ Minic.Layout.mode_name mode) (expect mode) out)
    all_modes

let test_random_deterministic () =
  let src =
    {|
int main(void) { print_int(random(1000)); print_int(random(1000)); return 0; }
|}
  in
  let _, a = run_mode Minic.Layout.Legacy src in
  let _, b = run_mode Minic.Layout.Legacy src in
  Alcotest.(check (list string)) "same stream" a b;
  Alcotest.(check int) "two numbers" 2 (List.length a)

(* --- the safety triptych ---------------------------------------------------- *)

(* A classic off-by-one heap overflow: writes one element past an 8-cell
   array, corrupting the adjacent allocation. *)
let overflow_src =
  {|
int main(void) {
  int *a = (int*) malloc(8 * sizeof(int));
  int *b = (int*) malloc(8 * sizeof(int));
  b[0] = 1234;
  int i = 0;
  while (i <= 8) {        // off by one!
    a[i] = 9999;
    i = i + 1;
  }
  print_int(b[0]);
  return 0;
}
|}

let test_overflow_legacy_corrupts () =
  let code, out = run_mode Minic.Layout.Legacy overflow_src in
  Alcotest.(check int) "runs to completion" 0 code;
  (* The overflow silently lands on b[0] (allocations are adjacent, past
     a's 32-byte-rounded block). *)
  Alcotest.(check (list string)) "silent corruption" [ "9999" ] out

let test_overflow_cheri_traps () =
  let trapped = ref None in
  let handler _k (fault : Os.Kernel.fault) =
    trapped := Some fault.Os.Kernel.capcause;
    Machine.Halt 139
  in
  let code, _ = run_mode ~fault_handler:handler Minic.Layout.Cheri overflow_src in
  Alcotest.(check int) "trapped" 139 code;
  match !trapped with
  | Some Cap.Cause.Length_violation -> ()
  | Some c -> Alcotest.failf "wrong cause %s" (Cap.Cause.to_string c)
  | None -> Alcotest.fail "no CP2 exception"

let test_overflow_softcheck_detects () =
  let code, _ = run_mode Minic.Layout.Softcheck overflow_src in
  Alcotest.(check int) "bounds-check exit" 97 code

let test_underflow_cheri_traps () =
  let src =
    {|
int main(void) {
  int *a = (int*) malloc(8 * sizeof(int));
  int i = 0 - 1;
  print_int(a[i]);       // below the allocation
  return 0;
}
|}
  in
  let code, _ =
    run_mode ~fault_handler:(fun _ _ -> Machine.Halt 139) Minic.Layout.Cheri src
  in
  Alcotest.(check int) "underflow trapped" 139 code;
  let code, _ = run_mode Minic.Layout.Softcheck src in
  Alcotest.(check int) "underflow detected in software" 97 code

(* --- compiled Olden benchmarks vs native references --------------------------- *)

let bench_output name param mode =
  let src = List.assoc name Olden.Minic_src.all in
  let src = Olden.Minic_src.instantiate src ~param in
  run_mode mode src

let test_olden_cross_mode_agreement () =
  List.iter
    (fun (name, param) ->
      let outs = List.map (fun m -> bench_output name param m) all_modes in
      match outs with
      | [ (0, a); (0, b); (0, b128); (0, c) ] ->
          Alcotest.(check (list string)) (name ^ " legacy=cheri") a b;
          Alcotest.(check (list string)) (name ^ " legacy=cheri128") a b128;
          Alcotest.(check (list string)) (name ^ " legacy=softcheck") a c
      | _ -> Alcotest.failf "%s: non-zero exit" name)
    [ ("treeadd", 8); ("bisort", 6); ("perimeter", 5); ("mst", 32); ("em3d", 40); ("health", 2) ]

let test_minic_treeadd_value () =
  let _, out = bench_output "treeadd" 10 Minic.Layout.Legacy in
  Alcotest.(check (list string)) "2^10 - 1" [ "1023" ] out

let test_minic_mst_matches_reference () =
  List.iter
    (fun n ->
      let _, out = bench_output "mst" n Minic.Layout.Legacy in
      Alcotest.(check (list string))
        (Printf.sprintf "mst %d" n)
        [ Int64.to_string (Olden.Mst.reference ~n ()) ]
        out)
    [ 16; 64 ]

let test_minic_perimeter_matches_reference () =
  List.iter
    (fun levels ->
      let _, out = bench_output "perimeter" levels Minic.Layout.Legacy in
      let expected = Olden.Perimeter.run (Workload.Runtime.create ()) ~levels in
      Alcotest.(check (list string))
        (Printf.sprintf "perimeter %d" levels)
        [ string_of_int expected ] out)
    [ 4; 6 ]

let test_minic_bisort_preserves_multiset () =
  List.iter
    (fun mode ->
      let code, out = bench_output "bisort" 7 mode in
      Alcotest.(check int) "exit" 0 code;
      match out with
      | [ diff; _sum ] -> Alcotest.(check string) "multiset preserved" "0" diff
      | _ -> Alcotest.fail "unexpected output shape")
    all_modes

(* --- Figure 4 / Figure 5 harness invariants ------------------------------------ *)

let test_fig4_shape () =
  (* At small parameters: both protection schemes cost something, software
     checking costs more than CHERI on every benchmark's computation
     phase or total. *)
  let rows = Exp.Fig4.run_benchmark "treeadd" in
  match rows with
  | [ legacy; soft; cheri ] ->
      Alcotest.(check string) "baseline first" "legacy"
        (Minic.Layout.mode_name legacy.Exp.Fig4.mode);
      Alcotest.(check (float 0.01)) "baseline zero" 0.0 legacy.Exp.Fig4.total_overhead_pct;
      Alcotest.(check bool) "cheri costs > 0" true (cheri.Exp.Fig4.total_overhead_pct > 0.0);
      Alcotest.(check bool) "software costs more than CHERI" true
        (soft.Exp.Fig4.total_overhead_pct > cheri.Exp.Fig4.total_overhead_pct)
  | _ -> Alcotest.fail "expected three rows"

let test_fig5_steps () =
  (* CHERI slowdown grows with working-set size (the Figure 5 staircase):
     compare a cache-resident heap against one past L2 capacity. *)
  let small = Exp.Fig5.run_point ~bench:"treeadd" ~param:7 in
  let large = Exp.Fig5.run_point ~bench:"treeadd" ~param:12 in
  Alcotest.(check bool) "heap grew" true (large.Exp.Fig5.heap_kb > small.Exp.Fig5.heap_kb);
  Alcotest.(check bool) "slowdown grows with working set" true
    (large.Exp.Fig5.slowdown_pct > small.Exp.Fig5.slowdown_pct);
  Alcotest.(check bool) "cache misses explain it" true
    (large.Exp.Fig5.cheri_l1d_misses > large.Exp.Fig5.legacy_l1d_misses)

(* --- compiler error reporting ---------------------------------------------------- *)

let test_errors () =
  let fails src =
    match Minic.Driver.compile ~mode:Minic.Layout.Legacy src with
    | exception Minic.Driver.Error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "missing main" true (fails "int f(void) { return 0; }");
  Alcotest.(check bool) "unknown variable" true (fails "int main(void) { return x; }");
  Alcotest.(check bool) "unknown field" true
    (fails "struct s { int a; }; int main(void) { struct s *p = NULL; return p->b; }");
  Alcotest.(check bool) "parse error" true (fails "int main(void) { return 1 +; }");
  Alcotest.(check bool) "pointer subtraction rejected" true
    (fails
       "int main(void) { int *a = (int*) malloc(8); int *b = a; print_int(a - b); return 0; }")

let suites =
  [
    ( "minic-language",
      [
        Alcotest.test_case "arithmetic and control" `Quick test_arith_and_control;
        Alcotest.test_case "recursion" `Quick test_functions_recursion;
        Alcotest.test_case "structs and pointers" `Quick test_structs_and_pointers;
        Alcotest.test_case "arrays" `Quick test_arrays;
        Alcotest.test_case "pointer to pointer" `Quick test_ptr_to_ptr;
        Alcotest.test_case "globals" `Quick test_globals;
        Alcotest.test_case "sizeof per mode" `Quick test_sizeof_per_mode;
        Alcotest.test_case "deterministic random" `Quick test_random_deterministic;
        Alcotest.test_case "error reporting" `Quick test_errors;
      ] );
    ( "minic-safety",
      [
        Alcotest.test_case "legacy: silent corruption" `Quick test_overflow_legacy_corrupts;
        Alcotest.test_case "cheri: hardware trap" `Quick test_overflow_cheri_traps;
        Alcotest.test_case "softcheck: detected" `Quick test_overflow_softcheck_detects;
        Alcotest.test_case "underflow" `Quick test_underflow_cheri_traps;
      ] );
    ( "minic-olden",
      [
        Alcotest.test_case "cross-mode agreement" `Slow test_olden_cross_mode_agreement;
        Alcotest.test_case "treeadd value" `Quick test_minic_treeadd_value;
        Alcotest.test_case "mst vs reference" `Slow test_minic_mst_matches_reference;
        Alcotest.test_case "perimeter vs reference" `Slow test_minic_perimeter_matches_reference;
        Alcotest.test_case "bisort multiset" `Slow test_minic_bisort_preserves_multiset;
      ] );
    ( "fig4-fig5",
      [
        Alcotest.test_case "fig4 ranking" `Slow test_fig4_shape;
        Alcotest.test_case "fig5 staircase" `Slow test_fig5_steps;
      ] );
  ]

(* --- code generation regressions ---------------------------------------------- *)

(* Each of these programs is a minimal witness for a code-generation bug
   found (and fixed) during development; they run in every mode. *)

let test_regression_many_args () =
  (* $t4..$t7 are the o32 aliases of $a4..$a7: a call with >4 integer
     arguments must not let temporaries alias argument registers. *)
  check_all_modes "six-arg shuffle"
    {|
struct qt { struct qt *p; int v; };
struct qt *build(int x, int y, int size, int depth, struct qt *parent, int ct) {
  struct qt *n = (struct qt*) malloc(sizeof(struct qt));
  n->p = parent;
  n->v = x * 100000 + y * 10000 + size * 1000 + depth * 100 + ct;
  if (depth > 0) { n->p = build(x + 1, y + 1, size, depth - 1, n, ct + 1); }
  return n;
}
int main(void) {
  struct qt *r = build(1, 2, 3, 2, NULL, 4);
  print_int(r->v);          // 123204
  print_int(r->p->v);       // 233105
  print_int(r->p->p->v);    // 343006
  // the leaf's parent field is its builder's node: r->p
  if (r->p->p->p == r->p) print_int(1); else print_int(0);
  return 0;
}
|}
    [ "123204"; "233105"; "343006"; "1" ]

let test_regression_result_vs_restore () =
  (* The call result must be secured before saved live registers are
     restored: the callee's return register may be among them. *)
  check_all_modes "field assigned from recursive call"
    {|
struct node { struct node *left; int v; };
struct node *chain(int n) {
  struct node *c = (struct node*) malloc(sizeof(struct node));
  c->v = n;
  c->left = NULL;
  if (n > 0) { c->left = chain(n - 1); }
  return c;
}
int main(void) {
  struct node *top = chain(5);
  int sum = 0;
  while (top != NULL) { sum = sum * 10 + top->v; top = top->left; }
  print_int(sum);        // 543210
  return 0;
}
|}
    [ "543210" ]

let test_regression_fat_return_paths () =
  (* Fat-pointer returns flow through $v0/$v1/$t9 while $v1 is also an
     allocatable temporary: conditional returns through multiple paths
     must keep base/end intact (a wrong 'end' fires the bounds check). *)
  check_all_modes "conditional pointer returns"
    {|
struct qt { struct qt *parent; int color; int ct; };
struct qt *up(struct qt *n, int d) {
  struct qt *q;
  if (n->parent != NULL && d > 0) {
    q = up(n->parent, d - 1);
  } else {
    q = n->parent;
  }
  if (q != NULL && q->color == 2) {
    return q;
  }
  return q;
}
int main(void) {
  struct qt *a = (struct qt*) malloc(sizeof(struct qt));
  struct qt *b = (struct qt*) malloc(sizeof(struct qt));
  struct qt *c = (struct qt*) malloc(sizeof(struct qt));
  a->parent = NULL; a->color = 2; a->ct = 42;
  b->parent = a; b->color = 1; b->ct = 7;
  c->parent = b; c->color = 1; c->ct = 9;
  struct qt *r = up(c, 5);
  if (r == NULL) { print_int(0); } else { print_int(r->ct); }   // recursion tops out: NULL
  struct qt *s = up(b, 0);
  print_int(s->ct);                                             // b's parent a, color 2: 42
  return 0;
}
|}
    [ "0"; "42" ]

let test_regression_calls_in_expressions () =
  (* Values live across calls (both operands calls, nested calls as
     arguments) must survive via the save/restore protocol. *)
  check_all_modes "calls within expressions"
    {|
int f(int x) { return x * 2; }
int g(int x) { return x + 3; }
int h(int a, int b) { return a * 100 + b; }
int main(void) {
  print_int(f(5) + g(7));          // 20
  print_int(h(f(2), g(1)));        // 404
  print_int(f(g(f(1))));           // 10
  int acc = 1;
  acc = acc + f(acc) + g(acc);     // 1 + 2 + 4 = 7
  print_int(acc);
  return 0;
}
|}
    [ "20"; "404"; "10"; "7" ]

let test_regression_spill_alignment () =
  (* Deep expressions force spills around calls; frames and spill cells
     must stay 32-byte aligned for capability stores. *)
  check_all_modes "deep expression spills"
    {|
struct v { struct v *n; int x; };
int depth(struct v *p) { if (p == NULL) return 0; return 1 + depth(p->n); }
int main(void) {
  struct v *a = (struct v*) malloc(sizeof(struct v));
  struct v *b = (struct v*) malloc(sizeof(struct v));
  a->n = b; b->n = NULL; a->x = 3; b->x = 4;
  print_int(a->x * b->x + depth(a) * depth(b) + (a->x + b->x) * depth(a));  // 12+2+14=28
  return 0;
}
|}
    [ "28" ]

let regression_suite =
  ( "minic-regressions",
    [
      Alcotest.test_case "argument register aliasing" `Slow test_regression_many_args;
      Alcotest.test_case "result vs restore ordering" `Quick test_regression_result_vs_restore;
      Alcotest.test_case "fat return paths" `Quick test_regression_fat_return_paths;
      Alcotest.test_case "calls in expressions" `Quick test_regression_calls_in_expressions;
      Alcotest.test_case "spill alignment" `Quick test_regression_spill_alignment;
    ] )

let suites = suites @ [ regression_suite ]

(* --- differential testing ------------------------------------------------------ *)

(* Random integer expressions, compiled and executed on the machine in two
   modes, compared against a native OCaml evaluator mirroring the ISA's
   64-bit semantics (truncating division, 0 on divide-by-zero, 6-bit
   shift amounts). *)

type iexpr =
  | Lit of int64
  | Add2 of iexpr * iexpr
  | Sub2 of iexpr * iexpr
  | Mul2 of iexpr * iexpr
  | Div2 of iexpr * iexpr
  | Mod2 of iexpr * iexpr
  | And2 of iexpr * iexpr
  | Or2 of iexpr * iexpr
  | Xor2 of iexpr * iexpr
  | Shl2 of iexpr * iexpr
  | Shr2 of iexpr * iexpr
  | Lt2 of iexpr * iexpr
  | Eq2 of iexpr * iexpr

let rec eval_native = function
  | Lit v -> v
  | Add2 (a, b) -> Int64.add (eval_native a) (eval_native b)
  | Sub2 (a, b) -> Int64.sub (eval_native a) (eval_native b)
  | Mul2 (a, b) -> Int64.mul (eval_native a) (eval_native b)
  | Div2 (a, b) ->
      let d = eval_native b in
      if Int64.equal d 0L then 0L else Int64.div (eval_native a) d
  | Mod2 (a, b) ->
      let d = eval_native b in
      if Int64.equal d 0L then 0L else Int64.rem (eval_native a) d
  | And2 (a, b) -> Int64.logand (eval_native a) (eval_native b)
  | Or2 (a, b) -> Int64.logor (eval_native a) (eval_native b)
  | Xor2 (a, b) -> Int64.logxor (eval_native a) (eval_native b)
  | Shl2 (a, b) -> Int64.shift_left (eval_native a) (Int64.to_int (eval_native b) land 63)
  | Shr2 (a, b) -> Int64.shift_right (eval_native a) (Int64.to_int (eval_native b) land 63)
  | Lt2 (a, b) -> if Int64.compare (eval_native a) (eval_native b) < 0 then 1L else 0L
  | Eq2 (a, b) -> if Int64.equal (eval_native a) (eval_native b) then 1L else 0L

let rec render = function
  | Lit v ->
      (* minic literals are non-negative; negatives via subtraction *)
      if Int64.compare v 0L >= 0 then Int64.to_string v
      else Printf.sprintf "(0 - %Ld)" (Int64.neg v)
  | Add2 (a, b) -> Printf.sprintf "(%s + %s)" (render a) (render b)
  | Sub2 (a, b) -> Printf.sprintf "(%s - %s)" (render a) (render b)
  | Mul2 (a, b) -> Printf.sprintf "(%s * %s)" (render a) (render b)
  | Div2 (a, b) -> Printf.sprintf "(%s / %s)" (render a) (render b)
  | Mod2 (a, b) -> Printf.sprintf "(%s %% %s)" (render a) (render b)
  | And2 (a, b) -> Printf.sprintf "(%s & %s)" (render a) (render b)
  | Or2 (a, b) -> Printf.sprintf "(%s | %s)" (render a) (render b)
  | Xor2 (a, b) -> Printf.sprintf "(%s ^ %s)" (render a) (render b)
  | Shl2 (a, b) -> Printf.sprintf "(%s << %s)" (render a) (render b)
  | Shr2 (a, b) -> Printf.sprintf "(%s >> %s)" (render a) (render b)
  | Lt2 (a, b) -> Printf.sprintf "(%s < %s)" (render a) (render b)
  | Eq2 (a, b) -> Printf.sprintf "(%s == %s)" (render a) (render b)

let gen_iexpr =
  QCheck.Gen.(
    (* small budget: register pressure grows with expression depth *)
    int_bound 20 >>= fix (fun self n ->
           if n <= 0 then map (fun v -> Lit (Int64.of_int (v - 500))) (int_bound 1000)
           else
             let sub = self (n / 2) in
             oneof
               [
                 map (fun v -> Lit (Int64.of_int (v - 500))) (int_bound 1000);
                 map2 (fun a b -> Add2 (a, b)) sub sub;
                 map2 (fun a b -> Sub2 (a, b)) sub sub;
                 map2 (fun a b -> Mul2 (a, b)) sub sub;
                 map2 (fun a b -> Div2 (a, b)) sub sub;
                 map2 (fun a b -> Mod2 (a, b)) sub sub;
                 map2 (fun a b -> And2 (a, b)) sub sub;
                 map2 (fun a b -> Or2 (a, b)) sub sub;
                 map2 (fun a b -> Xor2 (a, b)) sub sub;
                 map (fun a -> Shl2 (a, Lit 3L)) sub;
                 map (fun a -> Shr2 (a, Lit 2L)) sub;
                 map2 (fun a b -> Lt2 (a, b)) sub sub;
                 map2 (fun a b -> Eq2 (a, b)) sub sub;
               ]))

let prop_compiler_differential =
  QCheck.Test.make ~count:60 ~name:"compiled expressions match native evaluation"
    (QCheck.make ~print:render gen_iexpr)
    (fun e ->
      let expected = eval_native e in
      let src = Printf.sprintf "int main(void) { print_int(%s); return 0; }" (render e) in
      match
        List.map
          (fun mode -> run_mode mode src)
          [ Minic.Layout.Legacy; Minic.Layout.Cheri ]
      with
      | results ->
          List.for_all
            (function
              | 0, [ out ] -> String.equal out (Int64.to_string expected)
              | _ -> false)
            results
      | exception Minic.Driver.Error _ ->
          (* an over-deep expression exhausting the temporary pool is a
             documented compiler limit, not a semantics bug *)
          QCheck.assume_fail ())

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let suites = suites @ [ qsuite "minic-differential" [ prop_compiler_differential ] ]

(* --- ablation harness --------------------------------------------------------- *)

let test_compression_ablation () =
  match Exp.Ablation.compression ~benches:[ ("treeadd", 10) ] () with
  | [ row ] ->
      Alcotest.(check bool) "128-bit overhead below 256-bit" true
        (row.Exp.Ablation.cheri128_total_pct < row.Exp.Ablation.cheri256_total_pct);
      Alcotest.(check bool) "footprint halves" true
        (row.Exp.Ablation.heap128_kb * 2 <= row.Exp.Ablation.heap256_kb + 1)
  | _ -> Alcotest.fail "expected one row"

let suites =
  suites
  @ [
      ( "ablation",
        [ Alcotest.test_case "capability compression" `Slow test_compression_ablation ] );
    ]
