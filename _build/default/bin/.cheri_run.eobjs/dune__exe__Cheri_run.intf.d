bin/cheri_run.mli:
