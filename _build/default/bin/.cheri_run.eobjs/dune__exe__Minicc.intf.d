bin/minicc.mli:
