bin/cheri_run.ml: Arg Asm Beri Bytes Cap Cmd Cmdliner Fmt In_channel Int64 List Machine Mem Os String Term
