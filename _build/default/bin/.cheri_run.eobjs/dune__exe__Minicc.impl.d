bin/minicc.ml: Arg Beri Cap Cmd Cmdliner Fmt In_channel Machine Minic Os Out_channel Printf Term
